// Benchmarks regenerating the data behind every table and figure of the
// paper. Each benchmark measures the full compile+optimize+execute cycle
// that produces its table's cells and reports the paper's headline numbers
// as custom metrics, so `go test -bench=.` both exercises and reproduces
// the evaluation. The full-grid tables are produced by `go run ./cmd/tables`.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/vm"
)

// measure runs one cell, failing the benchmark on any error.
func measure(b *testing.B, prog *bench.Program, m *machine.Machine, lv pipeline.Level, opts replicate.Options, caches bool) *ease.Run {
	b.Helper()
	run, err := ease.Measure(ease.Request{
		Name: prog.Name, Source: prog.Source, Input: []byte(prog.Input),
		Machine: m, Level: lv, Replication: opts, SimulateCaches: caches,
	})
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkTable1MidLoop reproduces the Table 1 scenario: a loop with its
// exit condition in the middle, 68020 RTLs, SIMPLE vs JUMPS. The metric
// jumps/iter is the per-iteration unconditional jumps JUMPS removes.
func BenchmarkTable1MidLoop(b *testing.B) {
	src := `
int x[2000];
int n = 1500;
int main() {
	int i;
	for (i = 0; i < 2000; i++)
		x[i] = i;
	i = 1;
	while (1) {
		if (i > n)
			break;
		x[i-1] = x[i];
		i++;
	}
	printint(x[0] + x[n-1]);
	return 0;
}`
	p := bench.Program{Name: "table1", Source: src}
	var simple, jumps *ease.Run
	for i := 0; i < b.N; i++ {
		simple = measure(b, &p, machine.M68020, pipeline.Simple, replicate.Options{}, false)
		jumps = measure(b, &p, machine.M68020, pipeline.Jumps, replicate.Options{}, false)
	}
	b.ReportMetric(float64(simple.Dynamic.UncondJumps), "jumps-simple")
	b.ReportMetric(float64(jumps.Dynamic.UncondJumps), "jumps-jumps")
	b.ReportMetric(100*float64(jumps.Dynamic.Exec-simple.Dynamic.Exec)/float64(simple.Dynamic.Exec), "dyn-change-%")
}

// BenchmarkTable2IfElse reproduces the Table 2 scenario: an if-then-else
// whose join is deferred so both paths return separately.
func BenchmarkTable2IfElse(b *testing.B) {
	src := `
int f(int i, int n) {
	if (i > 5)
		i = i / n;
	else
		i = i * n;
	return i;
}
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 5000; i++)
		s += f(i % 11, 3);
	printint(s);
	return 0;
}`
	p := bench.Program{Name: "table2", Source: src}
	var simple, jumps *ease.Run
	for i := 0; i < b.N; i++ {
		simple = measure(b, &p, machine.M68020, pipeline.Simple, replicate.Options{}, false)
		jumps = measure(b, &p, machine.M68020, pipeline.Jumps, replicate.Options{}, false)
	}
	b.ReportMetric(float64(simple.Dynamic.UncondJumps-jumps.Dynamic.UncondJumps), "jumps-removed")
}

// table4Programs is a representative subset used by the per-table
// benchmarks so one benchmark iteration stays in the hundreds of
// milliseconds; cmd/tables runs the full set.
var table4Programs = []string{"wc", "cal", "queens", "sort"}

// BenchmarkTable4Jumps regenerates Table-4 cells: the dynamic fraction of
// unconditional jumps at each level.
func BenchmarkTable4Jumps(b *testing.B) {
	var fr [3]float64
	for i := 0; i < b.N; i++ {
		for li, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
			var sum float64
			for _, name := range table4Programs {
				p := bench.ProgramByName(name)
				run := measure(b, p, machine.SPARC, lv, replicate.Options{}, false)
				sum += run.DynamicJumpFraction()
			}
			fr[li] = 100 * sum / float64(len(table4Programs))
		}
	}
	b.ReportMetric(fr[0], "%jumps-SIMPLE")
	b.ReportMetric(fr[1], "%jumps-LOOPS")
	b.ReportMetric(fr[2], "%jumps-JUMPS")
}

// BenchmarkTable5Counts regenerates Table-5 cells: static growth and
// dynamic savings of JUMPS vs SIMPLE.
func BenchmarkTable5Counts(b *testing.B) {
	var statGrowth, dynChange float64
	for i := 0; i < b.N; i++ {
		var stat, dyn float64
		for _, name := range table4Programs {
			p := bench.ProgramByName(name)
			rs := measure(b, p, machine.M68020, pipeline.Simple, replicate.Options{}, false)
			rj := measure(b, p, machine.M68020, pipeline.Jumps, replicate.Options{}, false)
			stat += 100 * float64(rj.Static.StaticInsts-rs.Static.StaticInsts) / float64(rs.Static.StaticInsts)
			dyn += 100 * float64(rj.Dynamic.Exec-rs.Dynamic.Exec) / float64(rs.Dynamic.Exec)
		}
		statGrowth = stat / float64(len(table4Programs))
		dynChange = dyn / float64(len(table4Programs))
	}
	b.ReportMetric(statGrowth, "static-%")
	b.ReportMetric(dynChange, "dynamic-%")
}

// BenchmarkTable6Cache regenerates Table-6 cells: fetch-cost change with
// the paper's cache geometry.
func BenchmarkTable6Cache(b *testing.B) {
	var delta1k, delta8k float64
	for i := 0; i < b.N; i++ {
		p := bench.ProgramByName("od")
		rs := measure(b, p, machine.SPARC, pipeline.Simple, replicate.Options{}, true)
		rj := measure(b, p, machine.SPARC, pipeline.Jumps, replicate.Options{}, true)
		delta1k = 100 * float64(rj.Caches[0].Cost-rs.Caches[0].Cost) / float64(rs.Caches[0].Cost)
		delta8k = 100 * float64(rj.Caches[6].Cost-rs.Caches[6].Cost) / float64(rs.Caches[6].Cost)
	}
	b.ReportMetric(delta1k, "fetchcost-1K-%")
	b.ReportMetric(delta8k, "fetchcost-8K-%")
}

// BenchmarkFigure1 exercises step 3 of the algorithm (whole-loop
// replication when a collected block heads a natural loop) on the paper's
// Figure 1 shape; see internal/replicate for the structural test.
func BenchmarkFigure1(b *testing.B) {
	src := `
int a[100];
int main() {
	int i, s, n;
	s = 0; n = 50;
	for (i = 0; i < 100; i++) a[i] = i;
	i = 0;
	if (a[0] > 0) goto skip;
	s = 1;
skip:
	while (i < n) {
		s += a[i];
		i++;
	}
	printint(s);
	return 0;
}`
	p := bench.Program{Name: "figure1", Source: src}
	var jumps *ease.Run
	for i := 0; i < b.N; i++ {
		jumps = measure(b, &p, machine.SPARC, pipeline.Jumps, replicate.Options{}, false)
	}
	b.ReportMetric(float64(jumps.Dynamic.UncondJumps), "jumps-left")
}

// BenchmarkFigure2 exercises step 5 (redirecting branches of partially
// copied loops) on an unstructured goto loop like the paper's Figure 2.
func BenchmarkFigure2(b *testing.B) {
	src := `
int main() {
	int i, s;
	i = 0; s = 0;
head:
	s += i;
	if (s > 100000) goto out;
	i++;
	if (i < 1000) goto head;
	i = 0;
	goto head;
out:
	printint(s);
	return 0;
}`
	p := bench.Program{Name: "figure2", Source: src}
	var jumps *ease.Run
	for i := 0; i < b.N; i++ {
		jumps = measure(b, &p, machine.SPARC, pipeline.Jumps, replicate.Options{}, false)
	}
	b.ReportMetric(float64(jumps.Dynamic.UncondJumps), "jumps-left")
}

// BenchmarkAblationHeuristic compares the step-2 sequence heuristics.
func BenchmarkAblationHeuristic(b *testing.B) {
	for _, h := range []struct {
		name string
		h    replicate.Heuristic
	}{
		{"Shortest", replicate.HeurShortest},
		{"Returns", replicate.HeurReturns},
		{"Loops", replicate.HeurLoops},
		{"Frequency", replicate.HeurFrequency},
	} {
		b.Run(h.name, func(b *testing.B) {
			var stat, dyn int64
			for i := 0; i < b.N; i++ {
				stat, dyn = 0, 0
				for _, name := range table4Programs {
					p := bench.ProgramByName(name)
					run := measure(b, p, machine.SPARC, pipeline.Jumps, replicate.Options{Heuristic: h.h}, false)
					stat += int64(run.Static.StaticInsts)
					dyn += run.Dynamic.Exec
				}
			}
			b.ReportMetric(float64(stat), "static-insts")
			b.ReportMetric(float64(dyn), "dyn-insts")
		})
	}
}

// BenchmarkAblationLoopCompletion measures the cost of disabling step 3.
func BenchmarkAblationLoopCompletion(b *testing.B) {
	for _, v := range []struct {
		name string
		off  bool
	}{{"On", false}, {"Off", true}} {
		b.Run(v.name, func(b *testing.B) {
			var dyn int64
			for i := 0; i < b.N; i++ {
				dyn = 0
				for _, name := range table4Programs {
					p := bench.ProgramByName(name)
					run := measure(b, p, machine.SPARC, pipeline.Jumps,
						replicate.Options{NoLoopCompletion: v.off}, false)
					dyn += run.Dynamic.Exec
				}
			}
			b.ReportMetric(float64(dyn), "dyn-insts")
		})
	}
}

// BenchmarkAblationSeqCap sweeps the §6 replication length cap.
func BenchmarkAblationSeqCap(b *testing.B) {
	for _, cap := range []int{0, 4, 16, 64} {
		name := "Unlimited"
		if cap > 0 {
			name = ""
			for d := cap; d > 0; d /= 10 {
				name = string(rune('0'+d%10)) + name
			}
		}
		b.Run(name, func(b *testing.B) {
			var stat int64
			for i := 0; i < b.N; i++ {
				stat = 0
				for _, pn := range table4Programs {
					p := bench.ProgramByName(pn)
					run := measure(b, p, machine.SPARC, pipeline.Jumps,
						replicate.Options{MaxSeqRTLs: cap}, false)
					stat += int64(run.Static.StaticInsts)
				}
			}
			b.ReportMetric(float64(stat), "static-insts")
		})
	}
}

// BenchmarkCompiler measures raw compile+optimize throughput per level.
func BenchmarkCompiler(b *testing.B) {
	p := bench.ProgramByName("compact")
	for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
		b.Run(lv.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := mcc.Compile(p.Source)
				if err != nil {
					b.Fatal(err)
				}
				pipeline.Optimize(prog, pipeline.Config{Machine: machine.SPARC, Level: lv})
			}
		})
	}
}

// BenchmarkCompilerTraced measures the telemetry layer's overhead on the
// compile+optimize cycle. "Off" is the default nil-Tracer configuration —
// compare against BenchmarkCompiler/JUMPS to verify the disabled state costs
// nothing beyond its nil checks (<2% is the budget). "Collector" and "JSONL"
// price the enabled sinks.
func BenchmarkCompilerTraced(b *testing.B) {
	p := bench.ProgramByName("compact")
	for _, v := range []struct {
		name   string
		tracer func() obs.Tracer
	}{
		{"Off", func() obs.Tracer { return nil }},
		{"Collector", func() obs.Tracer { return &obs.Collector{} }},
		{"JSONL", func() obs.Tracer { return obs.NewJSONLWriter(io.Discard) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := mcc.Compile(p.Source)
				if err != nil {
					b.Fatal(err)
				}
				pipeline.Optimize(prog, pipeline.Config{
					Machine: machine.SPARC, Level: pipeline.Jumps, Tracer: v.tracer(),
				})
			}
		})
	}
}

// BenchmarkCompileSuite compiles the full Table-3 suite front-to-back at
// each pipeline level — the macro benchmark behind the `suite` section of
// BENCH_baseline.json (cmd/bench runs the same bench.CompileSuiteBench).
func BenchmarkCompileSuite(b *testing.B) {
	for _, lv := range pipeline.AllLevels() {
		b.Run(lv.String(), bench.CompileSuiteBench(machine.M68020, lv))
	}
}

// BenchmarkStressCompile compiles the synthetic stress function — one
// large goto state machine (difftest.GenerateStress via bench) whose flow
// graph has thousands of blocks — at the JUMPS level with each step-1 path
// engine. The oracle/matrix ratio here is the headline speedup recorded in
// BENCH_baseline.json; sizes this big were infeasible when the matrix was
// the only engine.
func BenchmarkStressCompile(b *testing.B) {
	for _, eng := range []replicate.PathEngine{replicate.EngineOracle, replicate.EngineMatrix} {
		b.Run(eng.String(), bench.StressCompileBench(eng, bench.DefaultStressStates))
	}
}

// BenchmarkVM measures interpreter throughput (instructions/op reported).
func BenchmarkVM(b *testing.B) {
	p := bench.ProgramByName("sieve")
	prog, err := mcc.Compile(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	pipeline.Optimize(prog, pipeline.Config{Machine: machine.SPARC, Level: pipeline.Jumps})
	b.ResetTimer()
	var exec int64
	for i := 0; i < b.N; i++ {
		res, err := vm.Run(prog, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		exec = res.Counts.Exec
	}
	b.ReportMetric(float64(exec), "insts/op")
}

// BenchmarkCacheSim measures the cache simulator on a synthetic stream.
func BenchmarkCacheSim(b *testing.B) {
	bank := cache.NewPaperBank()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := int64(i*4) % 65536
		bank.Fetch(addr, 4)
	}
}
