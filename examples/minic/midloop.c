/* The paper's Table 1 kernel: a loop whose exit condition sits in the
 * middle. Conventional rotation (LOOPS) cannot remove the per-iteration
 * jump; generalized replication (JUMPS) can. Try:
 *
 *	mcc -level jumps -stats -explain examples/minic/midloop.c
 *	mcc -level jumps -trace /tmp/t.jsonl examples/minic/midloop.c
 */
int x[2000];
int n = 1500;

int main() {
	int i;
	for (i = 0; i < 2000; i++)
		x[i] = i;
	i = 1;
	while (1) {
		if (i > n)      /* exit condition in the middle of the loop */
			break;
		x[i-1] = x[i];
		i++;
	}
	printint(x[0] + x[n-1] + x[1999]);
	putchar('\n');
	return 0;
}
