// Ifelse reproduces the paper's Table 2 scenario: an if-then-else followed
// by a return. Code replication copies the code after the construct (here,
// the function epilogue) so the two execution paths return separately and
// the jump over the else-part disappears.
package main

import (
	"fmt"

	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// The paper's Table 2 function.
const src = `
int f(int i, int n) {
	if (i > 5)
		i = i / n;
	else
		i = i * n;
	return i;
}

int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 5000; i++)
		s += f(i % 11, 3);
	printint(s);
	putchar('\n');
	return 0;
}
`

func main() {
	for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Jumps} {
		prog, err := mcc.Compile(src)
		if err != nil {
			panic(err)
		}
		run, err := ease.MeasureProgram(prog, ease.Request{
			Name: "ifelse", Source: src,
			Machine: machine.M68020, Level: lv,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== %s (68020)\n", lv)
		fmt.Println(prog.Func("f"))
		fmt.Printf("executed %d instructions, %d unconditional jumps\n\n",
			run.Dynamic.Exec, run.Dynamic.UncondJumps)
	}
	fmt.Println("Under JUMPS both arms of f end in their own return — the paper's Table 2.")
}
