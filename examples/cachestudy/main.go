// Cachestudy reproduces the paper's Table 6 experiment for one program:
// it simulates the direct-mapped instruction caches (1/2/4/8 KB, 16-byte
// lines, miss = 10x hit, context switches every 10,000 time units) and
// shows how code replication trades a higher miss ratio on small caches for
// lower total fetch cost on larger ones.
package main

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

func main() {
	prog := bench.ProgramByName("od")
	runs := map[pipeline.Level]*ease.Run{}
	for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
		run, err := ease.Measure(ease.Request{
			Name: prog.Name, Source: prog.Source, Input: []byte(prog.Input),
			Machine: machine.SPARC, Level: lv, SimulateCaches: true,
		})
		if err != nil {
			panic(err)
		}
		runs[lv] = run
		fmt.Printf("%-6s: code size %5d bytes, %7d instructions executed\n",
			lv, run.CodeBytes, run.Dynamic.Exec)
	}

	fmt.Printf("\n%-10s %10s %12s %12s %12s\n", "cache", "level", "miss ratio", "fetch cost", "vs SIMPLE")
	for ci, cs := range runs[pipeline.Simple].Caches {
		if !cs.CtxSwitches {
			continue // show the context-switching configurations
		}
		for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
			st := runs[lv].Caches[ci]
			delta := 100 * float64(st.Cost-cs.Cost) / float64(cs.Cost)
			fmt.Printf("%6dKb   %10s %11.3f%% %12d %+11.2f%%\n",
				st.SizeBytes/1024, lv, 100*st.MissRatio(), st.Cost, delta)
		}
		fmt.Println()
	}
	fmt.Println("Replication grows the code, so the smallest cache can lose;")
	fmt.Println("for larger caches the reduced instruction count wins — the paper's §5.3.")
}
