// Midloop reproduces the paper's Table 1 scenario: a loop whose exit
// condition sits in the middle, which conventional loop rotation cannot
// handle but generalized code replication (JUMPS) can. The example prints
// the optimized RTLs for both levels and the dynamic instruction counts.
package main

import (
	"fmt"

	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// The paper's Table 1 kernel:
//
//	i = 1;
//	while (i <= n) { x[i-1] = x[i]; i++; }
//
// lowered with the exit test in the middle of the loop.
const src = `
int x[2000];
int n = 1500;

int main() {
	int i;
	for (i = 0; i < 2000; i++)
		x[i] = i;
	i = 1;
	while (1) {
		if (i > n)      /* exit condition in the middle of the loop */
			break;
		x[i-1] = x[i];
		i++;
	}
	printint(x[0] + x[n-1] + x[1999]);
	putchar('\n');
	return 0;
}
`

func main() {
	for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
		prog, err := mcc.Compile(src)
		if err != nil {
			panic(err)
		}
		run, err := ease.MeasureProgram(prog, ease.Request{
			Name: "midloop", Source: src,
			Machine: machine.M68020, Level: lv,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== %s: %d static, %d executed, %d unconditional jumps executed\n",
			lv, run.Static.StaticInsts, run.Dynamic.Exec, run.Dynamic.UncondJumps)
		if lv != pipeline.Simple {
			fmt.Println(prog.Func("main"))
		}
	}
	fmt.Println("With JUMPS the per-iteration PC=Ln jump of the copy loop is gone:")
	fmt.Println("the exit test was replicated at the bottom with its condition reversed,")
	fmt.Println("exactly as in the paper's Table 1.")
}
