// Unstructured shows the paper's claim that JUMPS "handles these cases as
// well as unstructured loops, which are typically not recognized as loops
// by an optimizer": a goto-built state machine full of unconditional jumps
// that conventional loop rotation (LOOPS) cannot touch, but generalized
// replication eliminates.
package main

import (
	"fmt"

	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// A small lexer-like state machine over a synthetic tape, written with
// gotos the way 1990s generated scanners were.
const src = `
int tape[512];
int counts[4];

int main() {
	int pos, state, len, c;
	for (pos = 0; pos < 512; pos++)
		tape[pos] = (pos * 7 + pos / 3) % 4;
	pos = 0; state = 0; len = 0;

scan:
	if (pos >= 512) goto done;
	c = tape[pos];
	pos++;
	if (c == 0) goto sawzero;
	if (c == 1) goto sawone;
	goto sawother;

sawzero:
	counts[0]++;
	state = 0;
	goto scan;

sawone:
	if (state == 1) goto run;
	state = 1;
	counts[1]++;
	goto scan;

run:
	len++;
	counts[2]++;
	goto scan;

sawother:
	state = 2;
	counts[3]++;
	goto scan;

done:
	printint(counts[0]); putchar(' ');
	printint(counts[1]); putchar(' ');
	printint(counts[2]); putchar(' ');
	printint(counts[3]); putchar(' ');
	printint(len);
	putchar('\n');
	return 0;
}
`

func main() {
	for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
		run, err := ease.Measure(ease.Request{
			Name: "unstructured", Source: src,
			Machine: machine.SPARC, Level: lv,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s: %4d static, %6d executed, %5d unconditional jumps executed, output %s",
			lv, run.Static.StaticInsts, run.Dynamic.Exec, run.Dynamic.UncondJumps, run.Output)
	}
	fmt.Println("\nLOOPS cannot rotate these goto loops (no recognizable termination test),")
	fmt.Println("so its jump count stays at SIMPLE's level; JUMPS removes them all.")
}
