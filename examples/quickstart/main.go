// Quickstart: compile a small mini-C function, optimize it at each level,
// and watch the unconditional jumps disappear under code replication.
package main

import (
	"fmt"

	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

const src = `
int sum3(int *a, int n) {
	int i, s;
	s = 0;
	for (i = 0; i < n; i++) {
		if (a[i] % 3 == 0)
			s += a[i];
		else
			s -= 1;
	}
	return s;
}

int data[100];

int main() {
	int i;
	for (i = 0; i < 100; i++)
		data[i] = i * 7 % 23;
	printint(sum3(data, 100));
	putchar('\n');
	return 0;
}
`

func main() {
	// Show the naive RTLs the front end produces: the for-loops create the
	// unconditional jumps the optimizer will attack.
	prog, err := mcc.Compile(src)
	if err != nil {
		panic(err)
	}
	fmt.Println("Naive RTLs for sum3 (note the PC=Ln unconditional jumps):")
	fmt.Println(prog.Func("sum3"))

	for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
		run, err := ease.Measure(ease.Request{
			Name: "quickstart", Source: src,
			Machine: machine.SPARC, Level: lv,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s: %4d static instructions, %6d executed, %4d unconditional jumps executed (%.2f%%)\n",
			lv, run.Static.StaticInsts, run.Dynamic.Exec,
			run.Dynamic.UncondJumps, 100*run.DynamicJumpFraction())
	}
}
