package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync/atomic"

	"sync"
)

// Key is the content address of one request: the SHA-256 of its canonical
// encoding (source, machine, level, options, input — everything the
// result is a pure function of).
type Key [sha256.Size]byte

// keyBuilder accumulates request fields into a SHA-256 with unambiguous
// framing: every field is length- or width-prefixed so adjacent fields
// cannot alias ("ab"+"c" vs "a"+"bc").
type keyBuilder struct{ h hash.Hash }

func newKeyBuilder(kind string) *keyBuilder {
	b := &keyBuilder{h: sha256.New()}
	b.str(kind)
	return b
}

func (b *keyBuilder) str(s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	b.h.Write(n[:])
	b.h.Write([]byte(s))
}

func (b *keyBuilder) int(v int64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(v))
	b.h.Write(n[:])
}

func (b *keyBuilder) bool(v bool) {
	if v {
		b.h.Write([]byte{1})
	} else {
		b.h.Write([]byte{0})
	}
}

func (b *keyBuilder) sum() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// centry is one cache slot; the LRU list element's Value points here.
type centry struct {
	key Key
	val any
}

// Cache is a content-addressed result cache with LRU eviction. Values are
// stored by reference and must be treated as immutable by all readers
// (the service hands out shallow copies of response structs instead of
// mutating cached ones).
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// DefaultCacheEntries bounds the cache when the configuration does not.
const DefaultCacheEntries = 1024

// NewCache returns a cache holding at most max entries (<= 0 means
// DefaultCacheEntries).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{max: max, entries: make(map[Key]*list.Element), lru: list.New()}
}

// Get returns the cached value for k and marks it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*centry).val, true
}

// Put stores v under k, evicting the least recently used entry when full.
// Storing an existing key refreshes its value and recency.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*centry).val = v
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*centry).key)
		c.evictions.Add(1)
	}
	c.entries[k] = c.lru.PushFront(&centry{key: k, val: v})
}

// Len is the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Hits is the number of Get calls that found an entry.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses is the number of Get calls that found nothing.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Evictions is the number of entries displaced by Put.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
