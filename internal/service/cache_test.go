package service

import (
	"fmt"
	"sync"
	"testing"
)

func keyFor(s string) Key {
	b := newKeyBuilder("test")
	b.str(s)
	return b.sum()
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8)
	if _, ok := c.Get(keyFor("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(keyFor("a"), "va")
	v, ok := c.Get(keyFor("a"))
	if !ok || v.(string) != "va" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheKeyFraming(t *testing.T) {
	// Length prefixes must keep adjacent fields from aliasing.
	a := newKeyBuilder("k")
	a.str("ab")
	a.str("c")
	b := newKeyBuilder("k")
	b.str("a")
	b.str("bc")
	if a.sum() == b.sum() {
		t.Fatal(`key("ab","c") == key("a","bc"): fields alias`)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Put(keyFor("a"), 1)
	c.Put(keyFor("b"), 2)
	// Touch a so b is the least recently used.
	if _, ok := c.Get(keyFor("a")); !ok {
		t.Fatal("a missing")
	}
	c.Put(keyFor("c"), 3)
	if _, ok := c.Get(keyFor("b")); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get(keyFor("a")); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get(keyFor("c")); !ok {
		t.Fatal("c should be present")
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put(keyFor("a"), 1)
	c.Put(keyFor("b"), 2)
	c.Put(keyFor("a"), 10) // refresh: a becomes most recent, no eviction
	if c.Len() != 2 || c.Evictions() != 0 {
		t.Fatalf("Len/Evictions = %d/%d, want 2/0", c.Len(), c.Evictions())
	}
	c.Put(keyFor("c"), 3) // evicts b, the LRU
	if _, ok := c.Get(keyFor("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get(keyFor("a")); !ok || v.(int) != 10 {
		t.Fatalf("Get(a) = %v, %v; want refreshed 10", v, ok)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; meaningful
// under -race.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyFor(fmt.Sprint(i % 32))
				if i%3 == 0 {
					c.Put(k, i)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds max 16", c.Len())
	}
}
