package service

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Job states. A job moves queued → running → done|failed; there are no
// other transitions.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// Job is one asynchronous batch request (today: a grid run). All fields
// are guarded by mu; handlers read consistent snapshots via View.
type Job struct {
	mu       sync.Mutex
	id       string
	kind     string
	state    string
	created  time.Time
	started  time.Time
	finished time.Time
	total    int // work units (grid cells) in the job
	done     int // work units completed so far
	err      string
	result   any
}

// JobView is the JSON shape of a job snapshot.
type JobView struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	State    string     `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Done/Total report progress in work units (grid cells).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error is set when State is "failed".
	Error string `json:"error,omitempty"`
	// Result is set when State is "done".
	Result any `json:"result,omitempty"`
}

// newJobID returns a random 16-hex-digit identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func newJob(kind string, total int) *Job {
	return &Job{
		id: newJobID(), kind: kind, state: JobQueued,
		created: time.Now(), total: total, // det:allow nodeterminism — job lifecycle timestamps
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

func (j *Job) start() {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now() // det:allow nodeterminism — job lifecycle timestamps
	j.mu.Unlock()
}

// step records one completed work unit.
func (j *Job) step() {
	j.mu.Lock()
	j.done++
	j.mu.Unlock()
}

func (j *Job) finish(result any, err error) {
	j.mu.Lock()
	j.finished = time.Now() // det:allow nodeterminism — job lifecycle timestamps
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
		j.result = result
	}
	j.mu.Unlock()
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// View returns a consistent snapshot for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, Kind: j.kind, State: j.state, Created: j.created,
		Done: j.done, Total: j.total, Error: j.err, Result: j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
