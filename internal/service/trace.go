package service

import (
	"sync"

	"repro/internal/obs"
)

// DefaultRetainTraces is how many completed jobs keep their full event
// trace when Config.RetainTraces is unset.
const DefaultRetainTraces = 16

// traceStore retains the full telemetry trace (span tree, decision log,
// VM profile) of every running job plus the last K completed ones, keyed
// by job ID. GET /jobs/{id}/trace and /jobs/{id}/events read from here.
type traceStore struct {
	mu     sync.Mutex
	retain int
	traces map[string]*obs.Collector
	done   []string // completed job IDs, oldest first
}

func newTraceStore(retain int) *traceStore {
	if retain <= 0 {
		retain = DefaultRetainTraces
	}
	return &traceStore{retain: retain, traces: map[string]*obs.Collector{}}
}

// begin allocates the job's trace collector.
func (ts *traceStore) begin(jobID string) *obs.Collector {
	c := &obs.Collector{}
	ts.mu.Lock()
	ts.traces[jobID] = c
	ts.mu.Unlock()
	return c
}

// complete marks the job's trace as finished and returns the job IDs
// whose traces were evicted to stay within the retention limit (the
// caller prunes its own job table in step).
func (ts *traceStore) complete(jobID string) []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.traces[jobID]; !ok {
		return nil
	}
	ts.done = append(ts.done, jobID)
	var evicted []string
	for len(ts.done) > ts.retain {
		evicted = append(evicted, ts.done[0])
		delete(ts.traces, ts.done[0])
		ts.done = ts.done[1:]
	}
	return evicted
}

// events returns the job's trace so far (running jobs included).
func (ts *traceStore) events(jobID string) ([]*obs.Event, bool) {
	ts.mu.Lock()
	c, ok := ts.traces[jobID]
	ts.mu.Unlock()
	if !ok {
		return nil, false
	}
	return c.Events(), true
}
