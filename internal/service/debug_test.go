package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/obs"
)

// waitJob polls a job until it leaves the queued/running states.
func waitJob(t *testing.T, srv string, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, data := getBody(t, srv+"/jobs/"+id)
		var view JobView
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatalf("unmarshal job: %v %s", err, data)
		}
		if view.State == JobDone || view.State == JobFailed {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (%d/%d)", view.State, view.Done, view.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCompileTraceLifecycle: a sync compile registers a completed job
// whose trace replays via /jobs/{id}/trace (Chrome JSON with pass spans)
// and /jobs/{id}/events (JSONL), and correlates via the X-Mccd-Job
// header.
func TestCompileTraceLifecycle(t *testing.T) {
	_, srv := newTestService(t)
	resp, data := postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, data)
	}
	var res CompileResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.JobID == "" {
		t.Fatal("compile result has no job ID")
	}
	if got := resp.Header.Get("X-Mccd-Job"); got != res.JobID {
		t.Fatalf("X-Mccd-Job = %q, want %q", got, res.JobID)
	}

	// The job is registered and already completed.
	_, data = getBody(t, srv.URL+"/jobs/"+res.JobID)
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil || view.State != JobDone {
		t.Fatalf("job view: %v %s", err, data)
	}

	// Chrome trace: a JSON array with per-pass spans and the service
	// spans (queue-wait, cache-lookup).
	resp, data = getBody(t, srv.URL+"/jobs/"+res.JobID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, data)
	}
	var evs []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace is not JSON: %v\n%s", err, data)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	cats := map[string]bool{}
	names := map[string]bool{}
	for _, e := range evs {
		cats[e.Cat] = true
		names[e.Name] = true
	}
	if !cats["pass"] {
		t.Fatalf("trace has no per-pass spans: cats %v", cats)
	}
	if !names["queue-wait"] || !names["cache-lookup"] {
		t.Fatalf("trace missing service spans: %v", names)
	}

	// JSONL events: every line parses, all stamped with the job ID.
	resp, data = getBody(t, srv.URL+"/jobs/"+res.JobID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("no JSONL events")
	}
	for _, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad JSONL line %s: %v", line, err)
		}
		if ev.Job != res.JobID {
			t.Fatalf("event %q stamped with job %q, want %q", ev.Type, ev.Job, res.JobID)
		}
	}

	// A repeat request is a cache hit: new job, trace shows the hit.
	_, data = postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc})
	var res2 CompileResult
	if err := json.Unmarshal(data, &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || res2.JobID == "" || res2.JobID == res.JobID {
		t.Fatalf("repeat: cached=%v job=%q (first %q)", res2.Cached, res2.JobID, res.JobID)
	}
	_, data = getBody(t, srv.URL+"/jobs/"+res2.JobID+"/events")
	if !bytes.Contains(data, []byte(`"outcome":"hit"`)) {
		t.Fatalf("cache-hit trace missing hit outcome:\n%s", data)
	}
}

// TestGridTraceAndDebugEvents: a grid job's trace has per-pass spans from
// every cell, and the flight recorder serves a filtered tail.
func TestGridTraceAndDebugEvents(t *testing.T) {
	_, srv := newTestService(t)
	resp, data := postJSON(t, srv.URL+"/grid", GridRequest{Programs: []string{"queens"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("grid: %d %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if got := waitJob(t, srv.URL, view.ID); got.State != JobDone {
		t.Fatalf("grid job: %+v", got)
	}

	resp, data = getBody(t, srv.URL+"/jobs/"+view.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	var evs []struct {
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	pass := 0
	machines := map[string]bool{}
	for _, e := range evs {
		if e.Cat == "pass" {
			pass++
		}
		if m, ok := e.Args["machine"].(string); ok {
			machines[m] = true
		}
	}
	if pass == 0 {
		t.Fatal("grid trace has no per-pass spans")
	}
	for _, m := range machine.All() {
		if !machines[m.Name] {
			t.Fatalf("cell stamping missing machine %s: %v", m.Name, machines)
		}
	}

	// Flight-recorder tail, filtered to this job.
	resp, data = getBody(t, srv.URL+"/debug/events?job="+view.ID+"&n=50")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/events: %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("debug/events returned nothing for the job")
	}
	if len(lines) > 50 {
		t.Fatalf("n=50 returned %d lines", len(lines))
	}
	for _, line := range lines {
		var re struct {
			Seq *uint64 `json:"seq"`
			Job string  `json:"job"`
		}
		if err := json.Unmarshal(line, &re); err != nil {
			t.Fatalf("bad line %s: %v", line, err)
		}
		if re.Seq == nil || re.Job != view.ID {
			t.Fatalf("line %s: want seq and job %q", line, view.ID)
		}
	}

	// Bad n is a 400.
	resp, _ = getBody(t, srv.URL+"/debug/events?n=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: %d, want 400", resp.StatusCode)
	}

	// pprof is mounted.
	resp, _ = getBody(t, srv.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof/cmdline: %d", resp.StatusCode)
	}
}

// TestTraceNotFound: unknown job IDs 404 on both trace endpoints.
func TestTraceNotFound(t *testing.T) {
	_, srv := newTestService(t)
	for _, p := range []string{"/jobs/deadbeef00000000/trace", "/jobs/deadbeef00000000/events"} {
		resp, _ := getBody(t, srv.URL+p)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", p, resp.StatusCode)
		}
	}
}

// TestTraceRetention: only the last RetainTraces completed jobs keep
// their trace, and the job table is pruned in step.
func TestTraceRetention(t *testing.T) {
	s := New(Config{Workers: 2, RetainTraces: 2})
	defer s.Close(context.Background())
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		res, err := s.Compile(context.Background(), CompileRequest{
			Source: tinySrc, Level: []string{"simple", "loops", "jumps"}[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.JobID)
	}
	if _, err := s.JobEvents(ids[0]); err == nil {
		t.Fatal("oldest trace survived past the retention limit")
	}
	if _, err := s.Job(ids[0]); err == nil {
		t.Fatal("oldest job not pruned from the job table")
	}
	for _, id := range ids[1:] {
		if evs, err := s.JobEvents(id); err != nil || len(evs) == 0 {
			t.Fatalf("retained job %s: %v (%d events)", id, err, len(evs))
		}
		if _, err := s.Job(id); err != nil {
			t.Fatalf("retained job %s missing from the table: %v", id, err)
		}
	}
}

// TestMetricsLintAndLabeledSeries: after traffic of every kind, /metrics
// passes the in-repo exposition lint and exposes the labeled families.
func TestMetricsLintAndLabeledSeries(t *testing.T) {
	_, srv := newTestService(t)
	postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc})
	postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc}) // cache hit
	postJSON(t, srv.URL+"/measure", MeasureRequest{Program: "queens", Machine: "sparc"})
	resp, data := postJSON(t, srv.URL+"/grid", GridRequest{Programs: []string{"queens"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("grid: %d", resp.StatusCode)
	}
	var view JobView
	json.Unmarshal(data, &view)
	waitJob(t, srv.URL, view.ID)

	_, data = getBody(t, srv.URL+"/metrics")
	out := string(data)
	if errs := obs.LintExposition(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("/metrics fails the exposition lint: %v", errs)
	}
	for _, want := range []string{
		`mccd_job_duration_seconds_bucket{kind="compile",level="JUMPS",machine="68020",le="`,
		`mccd_job_duration_seconds_bucket{kind="grid",level="JUMPS",machine="SPARC",le="`,
		`mccd_queue_wait_seconds_bucket{kind="measure",level="JUMPS",machine="SPARC",le="`,
		`mccd_cache_requests_total{kind="compile",result="hit"} 1`,
		`mccd_cache_requests_total{kind="compile",result="miss"} 1`,
		`mccd_build_info{version="`,
		"# TYPE mccd_verify_violations_by_pass_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestGridTablesDeterministicWithRecorder: the rendered tables of a
// traced, pooled grid run are byte-identical to a sequential, untraced
// bench.RunGrid — tracing and the flight recorder observe without
// perturbing.
func TestGridTablesDeterministicWithRecorder(t *testing.T) {
	s, srv := newTestService(t)
	resp, data := postJSON(t, srv.URL+"/grid",
		GridRequest{Programs: []string{"queens", "wc"}, Tables: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("grid: %d", resp.StatusCode)
	}
	var view JobView
	json.Unmarshal(data, &view)
	view = waitJob(t, srv.URL, view.ID)
	if view.State != JobDone {
		t.Fatalf("grid failed: %s", view.Error)
	}
	res, err := json.Marshal(view.Result)
	if err != nil {
		t.Fatal(err)
	}
	var grid GridResult
	if err := json.Unmarshal(res, &grid); err != nil {
		t.Fatal(err)
	}
	if s.Recorder().Total() == 0 {
		t.Fatal("flight recorder saw no events during the grid")
	}

	var queens, wc *bench.Program
	for _, p := range []struct {
		name string
		dst  **bench.Program
	}{{"queens", &queens}, {"wc", &wc}} {
		*p.dst = bench.ProgramByName(p.name)
	}
	seq, err := bench.RunGrid(context.Background(), bench.GridConfig{
		Programs: []bench.Program{*queens, *wc},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	seq.WriteAll(&want, false)
	if grid.Tables != want.String() {
		t.Fatalf("tables differ with recorder enabled:\n--- daemon ---\n%s\n--- sequential ---\n%s",
			grid.Tables, want.String())
	}
}

// TestHealthzVersion: /healthz reports the configured version.
func TestHealthzVersion(t *testing.T) {
	s := New(Config{Workers: 1, Version: "test-v1"})
	defer s.Close(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	_, data := getBody(t, srv.URL+"/healthz")
	var h health
	if err := json.Unmarshal(data, &h); err != nil || h.Version != "test-v1" {
		t.Fatalf("healthz: %v %s", err, data)
	}
	_, data = getBody(t, srv.URL+"/metrics")
	if !strings.Contains(string(data), `mccd_build_info{version="test-v1"} 1`) {
		t.Fatal("mccd_build_info missing the configured version")
	}
}
