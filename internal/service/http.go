package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/bench"
	"repro/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST /compile          mini-C source -> assembly + static/replication counters
//	POST /measure          program or source -> EASE jump/instruction/cache metrics
//	POST /grid             async batch over a program list -> job ID
//	GET  /jobs/{id}        job status and result
//	GET  /jobs/{id}/trace  the job's span tree as Chrome trace_event JSON
//	GET  /jobs/{id}/events the job's raw telemetry events as JSONL
//	GET  /jobs             all jobs
//	GET  /programs         the Table-3 program list
//	GET  /healthz          liveness + pool stats + build version
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/events     flight-recorder tail (?job= filter, ?n= limit)
//	GET  /debug/pprof/     the standard Go profiling endpoints
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("POST /measure", s.handleMeasure)
	mux.HandleFunc("POST /grid", s.handleGrid)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /programs", s.handlePrograms)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// errorBody is the JSON envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing to do about a broken client connection
}

// writeError maps service errors to HTTP statuses: validation -> 422,
// overload -> 503 (with Retry-After), timeout -> 504, unknown -> 500.
func writeError(w http.ResponseWriter, err error) {
	switch {
	case IsBadRequest(err):
		writeJSON(w, http.StatusUnprocessableEntity, errorBody{err.Error()})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.Is(err, ErrClosed), errors.Is(err, ErrPoolClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
}

// decodeBody parses a JSON request body strictly (unknown fields are an
// error, so typos in field names fail loudly).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Service) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Compile(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Mccd-Job", res.JobID)
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var req MeasureRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.Measure(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("X-Mccd-Job", res.JobID)
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleGrid(w http.ResponseWriter, r *http.Request) {
	var req GridRequest
	if !decodeBody(w, r, &req) {
		return
	}
	view, err := s.SubmitGrid(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+view.ID)
	w.Header().Set("X-Mccd-Job", view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// handleJobTrace renders the job's retained trace as a Chrome trace_event
// JSON array, loadable in about://tracing or Perfetto.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	evs, err := s.JobEvents(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	cw := obs.NewChromeWriter(w)
	for _, ev := range evs {
		cw.Emit(ev)
	}
	cw.Close() // nothing to do about a broken client connection
}

// handleJobEvents streams the job's retained trace as JSONL, one raw
// telemetry event per line.
func (s *Service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	evs, err := s.JobEvents(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	jw := obs.NewJSONLWriter(w)
	for _, ev := range evs {
		jw.Emit(ev)
	}
}

// handleDebugEvents streams the flight recorder's tail as JSONL: the most
// recent n events (?n=, default 256), optionally filtered to one job
// (?job=).
func (s *Service) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	n := 256
	if v := r.URL.Query().Get("n"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil || i < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{"bad n: " + v})
			return
		}
		n = i
	}
	tail := s.recorder.Tail(n, r.URL.Query().Get("job"))
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, re := range tail {
		enc.Encode(re) // nothing to do about a broken client connection
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	view, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

// programInfo is one GET /programs entry.
type programInfo struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
}

func (s *Service) handlePrograms(w http.ResponseWriter, r *http.Request) {
	ps := bench.Programs()
	out := make([]programInfo, 0, len(ps))
	for _, p := range ps {
		out = append(out, programInfo{p.Name, p.Class, p.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// health is the GET /healthz body.
type health struct {
	Status      string `json:"status"`
	Version     string `json:"version"`
	Workers     int    `json:"workers"`
	Busy        int64  `json:"busy"`
	QueueDepth  int    `json:"queue_depth"`
	QueueCap    int    `json:"queue_cap"`
	JobsRunning int64  `json:"jobs_running"`
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, health{
		Status:      "ok",
		Version:     s.version,
		Workers:     s.pool.Workers(),
		Busy:        s.pool.Busy(),
		QueueDepth:  s.pool.QueueDepth(),
		QueueCap:    s.pool.QueueCap(),
		JobsRunning: s.jobsRunning(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WriteProm(w)
}
