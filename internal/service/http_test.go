package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/pipeline"
)

const tinySrc = `int main() { int i; int n; n = 0; for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) n = n + i; } return n; }`

func newTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2, QueueDepth: 64})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func TestCompileEndpoint(t *testing.T) {
	_, srv := newTestService(t)
	resp, data := postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc, Machine: "sparc"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var res CompileResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.Assembly == "" || res.Static.StaticInsts == 0 || res.CodeBytes == 0 {
		t.Fatalf("thin result: %+v", res)
	}
	if res.Machine != "SPARC" || res.Level != "JUMPS" {
		t.Fatalf("machine/level = %s/%s", res.Machine, res.Level)
	}
	if res.Cached {
		t.Fatal("first request claims cached")
	}
}

func TestCompileCacheHitVisibleInMetrics(t *testing.T) {
	_, srv := newTestService(t)
	req := CompileRequest{Source: tinySrc, Level: "loops"}
	if resp, data := postJSON(t, srv.URL+"/compile", req); resp.StatusCode != 200 {
		t.Fatalf("first: %d %s", resp.StatusCode, data)
	}
	_, data := postJSON(t, srv.URL+"/compile", req)
	var res CompileResult
	json.Unmarshal(data, &res)
	if !res.Cached {
		t.Fatal("identical request was not a cache hit")
	}
	if res.ElapsedNS != 0 {
		t.Fatalf("cached result reports elapsed %d ns", res.ElapsedNS)
	}
	_, metrics := getBody(t, srv.URL+"/metrics")
	if !strings.Contains(string(metrics), "mccd_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "mccd_compile_requests_total 2") {
		t.Fatalf("metrics missing request count:\n%s", metrics)
	}
}

func TestCompileDifferentOptionsMiss(t *testing.T) {
	s, srv := newTestService(t)
	postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc, Level: "simple"})
	postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc, Level: "jumps"})
	postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc, Level: "jumps",
		Replication: ReplicationOptions{MaxSeqRTLs: 4}})
	if hits := s.cache.Hits(); hits != 0 {
		t.Fatalf("distinct requests hit the cache %d times", hits)
	}
	if n := s.cache.Len(); n != 3 {
		t.Fatalf("cache holds %d entries, want 3", n)
	}
}

func TestCompileErrors(t *testing.T) {
	_, srv := newTestService(t)
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"empty source", `{}`, http.StatusUnprocessableEntity},
		{"syntax error", `{"source":"int main( {"}`, http.StatusUnprocessableEntity},
		{"bad machine", `{"source":"int main() { return 0; }","machine":"vax"}`, http.StatusUnprocessableEntity},
		{"bad level", `{"source":"int main() { return 0; }","level":"turbo"}`, http.StatusUnprocessableEntity},
		{"unknown field", `{"source":"int main() { return 0; }","sauce":1}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/compile", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, data)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: no error envelope in %s", tc.name, data)
		}
	}
	// Wrong method on a known path.
	resp, _ := getBody(t, srv.URL+"/compile")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile = %d, want 405", resp.StatusCode)
	}
}

func TestMeasureEndpoint(t *testing.T) {
	_, srv := newTestService(t)
	resp, data := postJSON(t, srv.URL+"/measure", MeasureRequest{
		Program: "queens", Machine: "sparc", IncludeOutput: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var res MeasureResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.Dynamic.Exec == 0 || res.Output != "92" {
		t.Fatalf("queens: exec=%d output=%q", res.Dynamic.Exec, res.Output)
	}
	// Same request again: cache hit.
	_, data = postJSON(t, srv.URL+"/measure", MeasureRequest{
		Program: "queens", Machine: "sparc", IncludeOutput: true,
	})
	json.Unmarshal(data, &res)
	if !res.Cached {
		t.Fatal("identical measure was not a cache hit")
	}
}

func TestMeasureInlineSourceAndInput(t *testing.T) {
	_, srv := newTestService(t)
	src := `int main() { int c; int n; n = 0; while ((c = getchar()) != -1) { n = n + 1; } return n; }`
	input := "hello"
	resp, data := postJSON(t, srv.URL+"/measure", MeasureRequest{Source: src, Input: &input})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var res MeasureResult
	json.Unmarshal(data, &res)
	if res.ExitCode != 5 {
		t.Fatalf("exit = %d, want 5 (len of input)", res.ExitCode)
	}
}

func TestMeasureValidation(t *testing.T) {
	_, srv := newTestService(t)
	for _, tc := range []struct {
		name string
		req  MeasureRequest
	}{
		{"neither", MeasureRequest{}},
		{"both", MeasureRequest{Program: "wc", Source: "int main() { return 0; }"}},
		{"unknown program", MeasureRequest{Program: "doom"}},
	} {
		resp, data := postJSON(t, srv.URL+"/measure", tc.req)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status = %d, want 422 (body %s)", tc.name, resp.StatusCode, data)
		}
	}
}

func TestGridJobLifecycle(t *testing.T) {
	_, srv := newTestService(t)
	resp, data := postJSON(t, srv.URL+"/grid", GridRequest{
		Programs: []string{"queens", "sieve"}, Tables: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	wantTotal := 2 * len(machine.All()) * len(pipeline.AllLevels())
	if view.ID == "" || view.Total != wantTotal {
		t.Fatalf("job view: %+v", view)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+view.ID {
		t.Fatalf("Location = %q", loc)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		_, data = getBody(t, srv.URL+"/jobs/"+view.ID)
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatalf("unmarshal poll: %v", err)
		}
		if view.State == JobDone || view.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (%d/%d)", view.State, view.Done, view.Total)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.State != JobDone {
		t.Fatalf("job failed: %s", view.Error)
	}
	if view.Done != wantTotal {
		t.Fatalf("done = %d, want %d", view.Done, wantTotal)
	}
	res, err := json.Marshal(view.Result)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	var grid GridResult
	if err := json.Unmarshal(res, &grid); err != nil {
		t.Fatalf("unmarshal result: %v", err)
	}
	if len(grid.Cells) != wantTotal {
		t.Fatalf("cells = %d, want %d", len(grid.Cells), wantTotal)
	}
	if !strings.Contains(grid.Tables, "Table 4") {
		t.Fatal("rendered tables missing from result")
	}

	// The job also shows up in the listing.
	_, data = getBody(t, srv.URL+"/jobs")
	var all []JobView
	if err := json.Unmarshal(data, &all); err != nil || len(all) != 1 {
		t.Fatalf("GET /jobs: %v %s", err, data)
	}
}

func TestGridValidation(t *testing.T) {
	_, srv := newTestService(t)
	resp, _ := postJSON(t, srv.URL+"/grid", GridRequest{Programs: []string{"doom"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown program: status = %d, want 422", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	_, srv := newTestService(t)
	resp, _ := getBody(t, srv.URL+"/jobs/deadbeef00000000")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndPrograms(t *testing.T) {
	_, srv := newTestService(t)
	resp, data := getBody(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h health
	if err := json.Unmarshal(data, &h); err != nil || h.Status != "ok" || h.Workers != 2 {
		t.Fatalf("healthz body: %s", data)
	}
	_, data = getBody(t, srv.URL+"/programs")
	var ps []programInfo
	if err := json.Unmarshal(data, &ps); err != nil || len(ps) != 14 {
		t.Fatalf("programs: %v, %d entries", err, len(ps))
	}
}

func TestQueueFullSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer s.Close(context.Background())

	// Park the only worker and fill the one queue slot directly.
	release := make(chan struct{})
	defer close(release)
	running := make(chan struct{})
	s.pool.Submit(context.Background(), func(context.Context) {
		close(running)
		<-release
	})
	<-running
	s.pool.Submit(context.Background(), func(context.Context) {})

	resp, data := postJSON(t, srv.URL+"/compile", CompileRequest{Source: tinySrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// TestConcurrentCompileStress drives many concurrent /compile requests
// with a mix of sources; run with -race (as CI does) it doubles as the
// subsystem's data-race check, front end through assembly printer.
func TestConcurrentCompileStress(t *testing.T) {
	_, srv := newTestService(t)
	sources := []string{
		tinySrc,
		`int main() { int i; i = 0; do { i = i + 1; } while (i < 100); return i; }`,
		`int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); } int main() { return f(12); }`,
		`int main() { int i; int s; s = 0; for (i = 0; i < 64; i = i + 1) { if (i % 3 == 0) continue; s = s + i; } return s % 251; }`,
	}
	machines := []string{"68020", "sparc", "x86"}
	levels := []string{"simple", "loops", "jumps"}
	const goroutines = 16
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < 6; i++ {
				req := CompileRequest{
					Source:  sources[(g+i)%len(sources)],
					Machine: machines[(g+i)%len(machines)],
					Level:   levels[(g*7+i)%len(levels)],
				}
				b, _ := json.Marshal(req)
				resp, err := http.Post(srv.URL+"/compile", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// 503 under load is legitimate shedding; anything else
				// non-200 is a bug.
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					errc <- fmt.Errorf("goroutine %d: status %d: %s", g, resp.StatusCode, body)
					return
				}
				var res CompileResult
				if resp.StatusCode == http.StatusOK {
					if err := json.Unmarshal(body, &res); err != nil || res.Assembly == "" {
						errc <- fmt.Errorf("goroutine %d: bad result: %v", g, err)
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
