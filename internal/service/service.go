package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/asm"
	"repro/internal/bench"
	icache "repro/internal/cache"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrClosed reports a request after Close began.
	ErrClosed = errors.New("service: shutting down")
	// ErrNotFound reports an unknown job ID or program name.
	ErrNotFound = errors.New("service: not found")
)

// badRequestError marks client mistakes (HTTP 400/422) as opposed to
// server-side failures.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{fmt.Sprintf(format, args...)}
}

// IsBadRequest reports whether err is a request-validation failure.
func IsBadRequest(err error) bool {
	var b *badRequestError
	return errors.As(err, &b)
}

// Config sizes the service.
type Config struct {
	// Workers is the pool size (<= 0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the work queue (<= 0 = 4x workers).
	QueueDepth int
	// CacheEntries bounds the result cache (<= 0 = DefaultCacheEntries).
	CacheEntries int
	// JobTimeout bounds one synchronous compile/measure job (0 = 2m).
	JobTimeout time.Duration
	// GridTimeout bounds one async grid job (0 = 15m).
	GridTimeout time.Duration
	// FlightRecorderSize bounds the global event ring behind GET
	// /debug/events (<= 0 = obs.DefaultFlightRecorderSize).
	FlightRecorderSize int
	// RetainTraces bounds how many completed jobs keep their full trace
	// for GET /jobs/{id}/trace (<= 0 = DefaultRetainTraces).
	RetainTraces int
	// Version overrides the build version reported by GET /healthz and
	// the mccd_build_info metric ("" = ResolveVersion()).
	Version string
	// Logf, when non-nil, receives one line per noteworthy event.
	Logf func(format string, args ...any)
}

func (c Config) jobTimeout() time.Duration {
	if c.JobTimeout <= 0 {
		return 2 * time.Minute
	}
	return c.JobTimeout
}

func (c Config) gridTimeout() time.Duration {
	if c.GridTimeout <= 0 {
		return 15 * time.Minute
	}
	return c.GridTimeout
}

// metrics is the service's counter set, registered on one obs.Registry
// and rendered by GET /metrics.
type metrics struct {
	reg *obs.Registry

	reqCompile  *obs.Counter
	reqMeasure  *obs.Counter
	reqGrid     *obs.Counter
	errors      *obs.Counter
	gridCells   *obs.Counter
	compileRTLs *obs.Counter
	verifyViol  *obs.Counter
	latency     *obs.Histogram
	throughput  *obs.Histogram

	// Labeled families behind the debug plane: end-to-end and queue-wait
	// latency by {kind, level, machine}, cache lookups by {kind, result},
	// and verifier violations by offending pass.
	jobDur       *obs.HistogramVec
	queueWait    *obs.HistogramVec
	cacheReq     *obs.CounterVec
	verifyByPass *obs.CounterVec
	tvRej        *obs.CounterVec
}

// observeVerify feeds the verifier-violation counters: the legacy total
// plus the per-pass family (verify-each attributes each violation to the
// pass that introduced it). Translation-validation rejections are counted
// in their own family instead — a rejected duplication certificate is an
// optimizer-correctness signal, not a semantic-verifier one.
func (m *metrics) observeVerify(vs []verify.Violation) {
	for _, v := range vs {
		if v.Rule == verify.RuleTranslation {
			m.tvRej.WithLabelValues(v.Pass).Inc()
			continue
		}
		m.verifyViol.Inc()
		m.verifyByPass.WithLabelValues(v.Pass).Inc()
	}
}

// observeThroughput feeds the compile-throughput metrics from one optimize
// run: rtls is the program size entering the optimizer, elapsed the wall
// time of the optimize phase alone (cache hits never get here, so the
// histogram only reflects real compiles).
func (m *metrics) observeThroughput(rtls int, elapsed time.Duration) {
	if rtls <= 0 || elapsed <= 0 {
		return
	}
	m.compileRTLs.Add(int64(rtls))
	m.throughput.Observe(float64(rtls) / elapsed.Seconds())
}

func newMetrics(pool *Pool, cache *Cache, jobsRunning func() int64, version string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}
	m.reqCompile = reg.Counter("mccd_compile_requests_total", "POST /compile requests accepted")
	m.reqMeasure = reg.Counter("mccd_measure_requests_total", "POST /measure requests accepted")
	m.reqGrid = reg.Counter("mccd_grid_requests_total", "POST /grid jobs accepted")
	m.errors = reg.Counter("mccd_errors_total", "requests that ended in an error")
	m.gridCells = reg.Counter("mccd_grid_cells_total", "grid cells measured")
	reg.CounterFunc("mccd_cache_hits_total", "result cache hits", cache.Hits)
	reg.CounterFunc("mccd_cache_misses_total", "result cache misses", cache.Misses)
	reg.CounterFunc("mccd_cache_evictions_total", "result cache LRU evictions", cache.Evictions)
	reg.GaugeFunc("mccd_cache_entries", "result cache occupancy", func() int64 { return int64(cache.Len()) })
	reg.GaugeFunc("mccd_queue_depth", "tasks waiting in the work queue", func() int64 { return int64(pool.QueueDepth()) })
	reg.GaugeFunc("mccd_workers", "worker pool size", func() int64 { return int64(pool.Workers()) })
	reg.GaugeFunc("mccd_workers_busy", "workers currently running a task", pool.Busy)
	reg.CounterFunc("mccd_tasks_completed_total", "pool tasks completed", pool.Completed)
	reg.CounterFunc("mccd_task_panics_total", "pool tasks that panicked", pool.Panics)
	reg.GaugeFunc("mccd_jobs_running", "async jobs currently queued or running", jobsRunning)
	m.latency = reg.Histogram("mccd_job_seconds", "per-job wall time (compile, measure, grid cell)", nil)
	m.compileRTLs = reg.Counter("mccd_compile_rtls_total", "RTL instructions fed into the optimizer (cache misses only)")
	m.verifyViol = reg.Counter("mccd_verify_violations_total", "semantic verifier violations reported by verify-each requests")
	m.throughput = reg.Histogram("mccd_compile_rtls_per_second", "optimizer throughput per compile in input RTLs/sec", obs.ThroughputBuckets)
	m.jobDur = reg.HistogramVec("mccd_job_duration_seconds",
		"end-to-end job latency (grid jobs: per cell)", []string{"kind", "level", "machine"}, nil)
	m.queueWait = reg.HistogramVec("mccd_queue_wait_seconds",
		"time a job spent waiting in the work queue (grid jobs: per cell)", []string{"kind", "level", "machine"}, nil)
	m.cacheReq = reg.CounterVec("mccd_cache_requests_total",
		"result cache lookups by request kind and outcome", []string{"kind", "result"})
	m.verifyByPass = reg.CounterVec("mccd_verify_violations_by_pass_total",
		"semantic verifier violations by the pass that introduced them", []string{"pass"})
	m.tvRej = reg.CounterVec("mccd_tv_rejections_total",
		"duplication certificates rejected by the translation validator, by emitting pass", []string{"pass"})
	reg.GaugeVec("mccd_build_info",
		"build version carried in the labels; the value is always 1", []string{"version"}).
		WithLabelValues(version).Set(1)
	return m
}

// Service is the compile-and-measure engine behind cmd/mccd: one worker
// pool, one content-addressed result cache, and an async job table.
type Service struct {
	cfg      Config
	pool     *Pool
	cache    *Cache
	met      *metrics
	recorder *obs.FlightRecorder
	traces   *traceStore
	version  string

	// baseCtx parents every grid job; cancel aborts them if a drain
	// deadline expires.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
	grids  sync.WaitGroup // running grid coordinators, waited on by Close
}

// New builds and starts a service.
func New(cfg Config) *Service {
	s := &Service{
		cfg:      cfg,
		pool:     NewPool(cfg.Workers, cfg.QueueDepth),
		cache:    NewCache(cfg.CacheEntries),
		recorder: obs.NewFlightRecorder(cfg.FlightRecorderSize),
		traces:   newTraceStore(cfg.RetainTraces),
		version:  cfg.Version,
		jobs:     make(map[string]*Job),
	}
	if s.version == "" {
		s.version = ResolveVersion()
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.met = newMetrics(s.pool, s.cache, s.jobsRunning, s.version)
	return s
}

// Recorder exposes the flight recorder (for GET /debug/events and tests).
func (s *Service) Recorder() *obs.FlightRecorder { return s.recorder }

// Version returns the effective build version.
func (s *Service) Version() string { return s.version }

// JobEvents returns the retained trace of a job (running, or among the
// last RetainTraces completed ones).
func (s *Service) JobEvents(id string) ([]*obs.Event, error) {
	evs, ok := s.traces.events(id)
	if !ok {
		return nil, ErrNotFound
	}
	return evs, nil
}

// jobTracer builds the tracer that records one job's span tree: events
// fan out to the job's retained trace and the global flight recorder,
// each stamped with the job ID.
func (s *Service) jobTracer(id string) obs.Tracer {
	return obs.WithJob(id, obs.Multi(s.traces.begin(id), s.recorder))
}

// beginJob registers a synchronous job in the job table and starts its
// trace. Asynchronous grid jobs register inline in SubmitGrid (their
// insertion is atomic with the grids waitgroup) and call jobTracer
// directly.
func (s *Service) beginJob(job *Job) (obs.Tracer, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.jobs[job.ID()] = job
	s.mu.Unlock()
	return s.jobTracer(job.ID()), nil
}

// finishJob completes a job and prunes the job table in step with trace
// retention, so /jobs stays bounded by the last RetainTraces completed
// jobs (running jobs are never pruned).
func (s *Service) finishJob(job *Job, result any, err error) {
	job.finish(result, err)
	evicted := s.traces.complete(job.ID())
	if len(evicted) == 0 {
		return
	}
	s.mu.Lock()
	for _, id := range evicted {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
}

// Registry exposes the metric registry (for GET /metrics and tests).
func (s *Service) Registry() *obs.Registry { return s.met.reg }

// Pool exposes the worker pool so callers (cmd/mccd's grid path, tests)
// can share it.
func (s *Service) Pool() *Pool { return s.pool }

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Service) jobsRunning() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, j := range s.jobs {
		if st := j.State(); st == JobQueued || st == JobRunning {
			n++
		}
	}
	return n
}

// Close drains the service: new requests are rejected, running grid jobs
// and queued pool tasks finish (until ctx expires, at which point grids
// are canceled), and the pool shuts down.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.grids.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.cancel() // abort in-flight grids; their coordinators will exit
		<-drained
		err = ctx.Err()
	}
	if e := s.pool.Shutdown(ctx); err == nil {
		err = e
	}
	s.cancel()
	return err
}

func (s *Service) checkOpen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return nil
}

// resolveMachine maps a wire name to a machine model via the registry
// ("" = the paper's 68020 default).
func resolveMachine(name string) (*machine.Machine, error) {
	if name == "" {
		return machine.M68020, nil
	}
	m, err := machine.ByName(name)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return m, nil
}

// resolveLevel maps a wire name to a pipeline level ("" = jumps).
func resolveLevel(name string) (pipeline.Level, error) {
	if name == "" {
		return pipeline.Jumps, nil
	}
	lv, err := pipeline.ParseLevel(name)
	if err != nil {
		return 0, badRequestf("%v", err)
	}
	return lv, nil
}

// ReplicationOptions is the wire form of replicate.Options.
type ReplicationOptions struct {
	// Heuristic picks the candidate order: "", "shortest", "returns" or
	// "loops".
	Heuristic string `json:"heuristic,omitempty"`
	// MaxSeqRTLs caps replicated RTLs per jump (0 = unlimited).
	MaxSeqRTLs int `json:"maxseq,omitempty"`
	// AllowIndirect enables the §6 indirect-jump extension.
	AllowIndirect bool `json:"indirect,omitempty"`
	// Engine picks the step-1 shortest-path engine: "" or "oracle"
	// (default), or "matrix" for the Floyd–Warshall reference.
	Engine string `json:"engine,omitempty"`
}

func (o ReplicationOptions) resolve() (replicate.Options, error) {
	opts := replicate.Options{MaxSeqRTLs: o.MaxSeqRTLs, AllowIndirect: o.AllowIndirect}
	switch o.Heuristic {
	case "", "shortest":
		opts.Heuristic = replicate.HeurShortest
	case "returns":
		opts.Heuristic = replicate.HeurReturns
	case "loops":
		opts.Heuristic = replicate.HeurLoops
	default:
		return opts, badRequestf("unknown heuristic %q (want shortest, returns or loops)", o.Heuristic)
	}
	engine, err := replicate.ParseEngine(o.Engine)
	if err != nil {
		return opts, badRequestf("%v", err)
	}
	opts.Engine = engine
	return opts, nil
}

// hashOptions folds the replication options into a cache key. Engine is
// included even though both engines produce identical code: keeping it in
// the key means a request pinning the reference engine is never answered
// with a result computed by the other one.
func (b *keyBuilder) options(o ReplicationOptions) {
	b.str(o.Heuristic)
	b.int(int64(o.MaxSeqRTLs))
	b.bool(o.AllowIndirect)
	b.str(o.Engine)
}

// CompileRequest is the body of POST /compile.
type CompileRequest struct {
	// Source is the mini-C translation unit.
	Source string `json:"source"`
	// Machine is any registered machine name or alias — "68020" (default),
	// "sparc", "x86", ... (see machine.Names).
	Machine string `json:"machine,omitempty"`
	// Level is "simple", "loops", "jumps" (default) or "dups".
	Level       string             `json:"level,omitempty"`
	Replication ReplicationOptions `json:"replication,omitempty"`
	// VerifyEach runs the semantic IR verifier after every pipeline pass;
	// any violations (attributed to the offending pass) come back as
	// structured diagnostics in Static.Verify.
	VerifyEach bool `json:"verify_each,omitempty"`
	// TV runs the translation validator over the duplication engine:
	// every applied duplication must present a certificate that passes
	// cut-point bisimulation checking. Rejections come back in
	// Static.Verify with rule "translation-validation" and are counted in
	// the mccd_tv_rejections_total metric.
	TV bool `json:"tv,omitempty"`
}

// CompileResult is the body of a successful POST /compile response.
type CompileResult struct {
	Machine string `json:"machine"`
	Level   string `json:"level"`
	// Assembly is the optimized program in target assembly syntax.
	Assembly string `json:"assembly"`
	// Static carries the pipeline statistics, including the
	// replicate.Result counters (replications, jumps deleted, rollbacks,
	// RTLs copied).
	Static    pipeline.Stats `json:"static"`
	CodeBytes int64          `json:"code_bytes"`
	// Cached reports whether this response was served from the
	// content-addressed cache.
	Cached bool `json:"cached"`
	// ElapsedNS is the compile wall time (0 when Cached).
	ElapsedNS int64 `json:"elapsed_ns"`
	// JobID identifies this request's trace: GET /jobs/{id}/trace and
	// /jobs/{id}/events replay it while it is retained.
	JobID string `json:"job_id,omitempty"`
}

func compileKey(req CompileRequest) Key {
	b := newKeyBuilder("compile")
	b.str(req.Source)
	b.str(req.Machine)
	b.str(req.Level)
	b.options(req.Replication)
	b.bool(req.VerifyEach)
	b.bool(req.TV)
	return b.sum()
}

// Compile compiles req through the worker pool, serving repeats from the
// cache. The returned result is a private copy; mutating it is safe.
func (s *Service) Compile(ctx context.Context, req CompileRequest) (*CompileResult, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	if req.Source == "" {
		return nil, badRequestf("missing source")
	}
	m, err := resolveMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	lv, err := resolveLevel(req.Level)
	if err != nil {
		return nil, err
	}
	repOpts, err := req.Replication.resolve()
	if err != nil {
		return nil, err
	}
	s.met.reqCompile.Inc()
	// Canonicalize the machine name before the cache key is computed:
	// aliases ("68k", "i386") and the "" default must hit the same entry
	// as the canonical spelling.
	req.Machine = m.Name

	job := newJob("compile", 1)
	tr, err := s.beginJob(job)
	if err != nil {
		return nil, err
	}
	job.start()
	meta := jobMeta{kind: "compile", level: lv.String(), machine: m.Name, tracer: tr}

	key := compileKey(req)
	if v, ok := s.lookupCache(key, meta); ok {
		out := *v.(*CompileResult)
		out.Cached = true
		out.ElapsedNS = 0
		out.JobID = job.ID()
		job.step()
		s.finishJob(job, &out, nil)
		return &out, nil
	}
	v, err := s.runSync(ctx, meta, func(context.Context) (any, error) {
		start := time.Now() // det:allow nodeterminism — latency/queue telemetry
		prog, err := mcc.Compile(req.Source)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		inputRTLs := 0
		for _, f := range prog.Funcs {
			inputRTLs += f.NumRTLs()
		}
		optStart := time.Now() // det:allow nodeterminism — latency/queue telemetry
		st := pipeline.Optimize(prog, pipeline.Config{
			Machine: m, Level: lv, Replication: repOpts,
			Tracer: tr, VerifyEach: req.VerifyEach, TV: req.TV,
		})
		s.met.observeThroughput(inputRTLs, time.Since(optStart)) // det:allow nodeterminism — latency/queue telemetry
		s.met.observeVerify(st.Verify)
		var buf bytes.Buffer
		if err := asm.Emit(&buf, prog, m); err != nil {
			return nil, err
		}
		return &CompileResult{
			Machine: m.Name, Level: lv.String(),
			Assembly: buf.String(), Static: st,
			CodeBytes: vm.NewLayout(prog, m).CodeBytes,
			ElapsedNS: int64(time.Since(start)), // det:allow nodeterminism — latency/queue telemetry
		}, nil
	})
	if err != nil {
		s.met.errors.Inc()
		s.finishJob(job, nil, err)
		return nil, err
	}
	res := v.(*CompileResult)
	s.cache.Put(key, res)
	out := *res
	out.JobID = job.ID()
	job.step()
	s.finishJob(job, &out, nil)
	return &out, nil
}

// lookupCache checks the result cache for one sync request, recording
// the outcome as a span on the job's trace and in the labeled cache
// counters (the unlabeled hit/miss totals come from the cache itself).
func (s *Service) lookupCache(key Key, meta jobMeta) (any, bool) {
	start := time.Now() // det:allow nodeterminism — latency/queue telemetry
	v, ok := s.cache.Get(key)
	outcome := "miss"
	if ok {
		outcome = "hit"
	}
	s.met.cacheReq.WithLabelValues(meta.kind, outcome).Inc()
	if meta.tracer != nil {
		meta.tracer.Emit(&obs.Event{
			Type: obs.EvPhase, Name: "cache-lookup", Outcome: outcome,
			TimeNS: start.UnixNano(), DurNS: int64(time.Since(start)), // det:allow nodeterminism — latency/queue telemetry
		})
	}
	return v, ok
}

// MeasureRequest is the body of POST /measure: either a Table-3 program
// name or inline source.
type MeasureRequest struct {
	// Program names a Table-3 entry ("wc", "queens", ...); its canned
	// input is used unless Input is set.
	Program string `json:"program,omitempty"`
	// Source is an inline mini-C translation unit (alternative to
	// Program).
	Source string `json:"source,omitempty"`
	// Input overrides the program's standard input.
	Input *string `json:"input,omitempty"`
	// Machine is any registered machine name or alias — "68020" (default),
	// "sparc", "x86", ... (see machine.Names).
	Machine string `json:"machine,omitempty"`
	// Level is "simple", "loops", "jumps" (default) or "dups".
	Level       string             `json:"level,omitempty"`
	Replication ReplicationOptions `json:"replication,omitempty"`
	// Caches enables the Table-6 cache bank.
	Caches bool `json:"caches,omitempty"`
	// IncludeOutput echoes the program's output in the response.
	IncludeOutput bool `json:"output,omitempty"`
	// VerifyEach runs the semantic IR verifier after every pipeline pass;
	// any violations (attributed to the offending pass) come back as
	// structured diagnostics in Static.Verify.
	VerifyEach bool `json:"verify_each,omitempty"`
	// TV runs the translation validator over the duplication engine (see
	// CompileRequest.TV).
	TV bool `json:"tv,omitempty"`
}

// MeasureResult is the body of a successful POST /measure response.
type MeasureResult struct {
	Name    string `json:"name"`
	Machine string `json:"machine"`
	Level   string `json:"level"`
	// Static and Dynamic are the EASE measurements behind Tables 4 and 5.
	Static    pipeline.Stats `json:"static"`
	Dynamic   vm.Counts      `json:"dynamic"`
	CodeBytes int64          `json:"code_bytes"`
	ExitCode  int64          `json:"exit_code"`
	// Derived Table-4/§5.2 ratios.
	StaticJumpPct        float64 `json:"static_jump_pct"`
	DynamicJumpPct       float64 `json:"dynamic_jump_pct"`
	InstsBetweenBranches float64 `json:"insts_between_branches"`
	// Caches holds the Table-6 bank statistics when requested.
	Caches []icache.Stats `json:"caches,omitempty"`
	// Output is the program's output (when requested).
	Output string `json:"output,omitempty"`
	Cached bool   `json:"cached"`
	// ElapsedNS is the measurement wall time (0 when Cached).
	ElapsedNS int64 `json:"elapsed_ns"`
	// JobID identifies this request's trace: GET /jobs/{id}/trace and
	// /jobs/{id}/events replay it while it is retained.
	JobID string `json:"job_id,omitempty"`
}

func measureKey(req MeasureRequest, source, input string) Key {
	b := newKeyBuilder("measure")
	b.str(source)
	b.str(input)
	b.str(req.Machine)
	b.str(req.Level)
	b.options(req.Replication)
	b.bool(req.Caches)
	b.bool(req.IncludeOutput)
	b.bool(req.VerifyEach)
	b.bool(req.TV)
	return b.sum()
}

// Measure compiles, runs and measures req through the worker pool,
// serving repeats from the cache.
func (s *Service) Measure(ctx context.Context, req MeasureRequest) (*MeasureResult, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	name, source, input := req.Program, req.Source, ""
	switch {
	case req.Program != "" && req.Source != "":
		return nil, badRequestf("give program or source, not both")
	case req.Program != "":
		p := bench.ProgramByName(req.Program)
		if p == nil {
			return nil, badRequestf("unknown program %q (see GET /programs)", req.Program)
		}
		source, input = p.Source, p.Input
	case req.Source != "":
		name = "inline"
	default:
		return nil, badRequestf("missing program or source")
	}
	if req.Input != nil {
		input = *req.Input
	}
	m, err := resolveMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	lv, err := resolveLevel(req.Level)
	if err != nil {
		return nil, err
	}
	repOpts, err := req.Replication.resolve()
	if err != nil {
		return nil, err
	}
	s.met.reqMeasure.Inc()
	// Same alias canonicalization as Compile, for the same cache-key
	// reason.
	req.Machine = m.Name

	job := newJob("measure", 1)
	tr, err := s.beginJob(job)
	if err != nil {
		return nil, err
	}
	job.start()
	meta := jobMeta{kind: "measure", level: lv.String(), machine: m.Name, tracer: tr}

	key := measureKey(req, source, input)
	if v, ok := s.lookupCache(key, meta); ok {
		out := *v.(*MeasureResult)
		out.Cached = true
		out.ElapsedNS = 0
		out.JobID = job.ID()
		job.step()
		s.finishJob(job, &out, nil)
		return &out, nil
	}
	v, err := s.runSync(ctx, meta, func(context.Context) (any, error) {
		run, err := ease.Measure(ease.Request{
			Name: name, Source: source, Input: []byte(input),
			Machine: m, Level: lv, Replication: repOpts,
			SimulateCaches: req.Caches,
			Tracer:         tr,
			VerifyEach:     req.VerifyEach,
			TV:             req.TV,
		})
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		s.met.observeThroughput(run.InputRTLs, run.OptimizeElapsed)
		s.met.observeVerify(run.Static.Verify)
		out := &MeasureResult{
			Name: name, Machine: m.Name, Level: lv.String(),
			Static: run.Static, Dynamic: run.Dynamic,
			CodeBytes: run.CodeBytes, ExitCode: run.ExitCode,
			StaticJumpPct:        100 * run.StaticJumpFraction(),
			DynamicJumpPct:       100 * run.DynamicJumpFraction(),
			InstsBetweenBranches: run.InstsBetweenBranches(),
			Caches:               run.Caches,
			ElapsedNS:            int64(run.Elapsed),
		}
		if req.IncludeOutput {
			out.Output = string(run.Output)
		}
		return out, nil
	})
	if err != nil {
		s.met.errors.Inc()
		s.finishJob(job, nil, err)
		return nil, err
	}
	res := v.(*MeasureResult)
	s.cache.Put(key, res)
	out := *res
	out.JobID = job.ID()
	job.step()
	s.finishJob(job, &out, nil)
	return &out, nil
}

// jobMeta labels one synchronous job for the latency/queue-wait metric
// families and carries its trace sink.
type jobMeta struct {
	kind, level, machine string
	tracer               obs.Tracer
}

// runSync routes one job through the worker pool and waits for it: the
// per-job timeout and the caller's cancellation both apply, queue
// overflow surfaces as ErrQueueFull (HTTP 503), and a panicking job
// comes back as an error instead of killing a worker. The time between
// submission and a worker picking the task up is recorded as the job's
// queue-wait span and fed to the labeled queue-wait histogram.
func (s *Service) runSync(ctx context.Context, meta jobMeta, fn func(context.Context) (any, error)) (any, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.jobTimeout())
	defer cancel()
	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	start := time.Now() // det:allow nodeterminism — latency/queue telemetry
	err := s.pool.TrySubmit(ctx, func(ctx context.Context) {
		wait := time.Since(start) // det:allow nodeterminism — latency/queue telemetry
		s.met.queueWait.WithLabelValues(meta.kind, meta.level, meta.machine).Observe(wait.Seconds())
		if meta.tracer != nil {
			meta.tracer.Emit(&obs.Event{
				Type: obs.EvPhase, Name: "queue-wait",
				TimeNS: start.UnixNano(), DurNS: int64(wait),
			})
		}
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, fmt.Errorf("service: job panicked: %v", r)}
			}
		}()
		if err := ctx.Err(); err != nil {
			ch <- outcome{nil, err}
			return
		}
		v, err := fn(ctx)
		ch <- outcome{v, err}
	})
	if err != nil {
		return nil, err
	}
	select {
	case o := <-ch:
		elapsed := time.Since(start).Seconds() // det:allow nodeterminism — latency/queue telemetry
		s.met.latency.Observe(elapsed)
		s.met.jobDur.WithLabelValues(meta.kind, meta.level, meta.machine).Observe(elapsed)
		return o.v, o.err
	case <-ctx.Done():
		// The job may still run to completion on its worker; only the
		// waiter gives up.
		return nil, ctx.Err()
	}
}

// GridRequest is the body of POST /grid: an asynchronous batch over a
// program list.
type GridRequest struct {
	// Programs are Table-3 names (empty = the full set).
	Programs []string `json:"programs,omitempty"`
	// Caches enables the Table-6 cache bank.
	Caches bool `json:"caches,omitempty"`
	// CacheSizes overrides the paper's {1,2,4,8} KB bank (bytes).
	CacheSizes  []int64            `json:"cache_sizes,omitempty"`
	Replication ReplicationOptions `json:"replication,omitempty"`
	// VerifyEach runs the semantic IR verifier after every pipeline pass
	// in every cell; the first violation (attributed to the offending
	// pass) fails the job with the violation text as its error.
	VerifyEach bool `json:"verify_each,omitempty"`
	// TV runs the translation validator over every cell's duplication
	// engine (see CompileRequest.TV); a rejection fails the job.
	TV bool `json:"tv,omitempty"`
	// Tables includes the rendered Tables 3–6 text in the job result.
	Tables bool `json:"tables,omitempty"`
}

// GridCell is one grid cell summary in a job result.
type GridCell struct {
	Program   string         `json:"program"`
	Machine   string         `json:"machine"`
	Level     string         `json:"level"`
	Static    pipeline.Stats `json:"static"`
	Dynamic   vm.Counts      `json:"dynamic"`
	CodeBytes int64          `json:"code_bytes"`
	Caches    []icache.Stats `json:"caches,omitempty"`
}

// GridResult is the result payload of a finished grid job.
type GridResult struct {
	Cells []GridCell `json:"cells"`
	// Tables is the rendered Tables 3–6 text (when requested).
	Tables string `json:"tables,omitempty"`
}

// SubmitGrid validates req, registers an async job, and starts a
// coordinator goroutine that fans the grid cells out over the worker
// pool. The returned snapshot carries the job ID for GET /jobs/{id}.
func (s *Service) SubmitGrid(req GridRequest) (JobView, error) {
	if err := s.checkOpen(); err != nil {
		return JobView{}, err
	}
	repOpts, err := req.Replication.resolve()
	if err != nil {
		return JobView{}, err
	}
	progs := bench.Programs()
	if len(req.Programs) > 0 {
		chosen := make([]bench.Program, 0, len(req.Programs))
		for _, name := range req.Programs {
			p := bench.ProgramByName(name)
			if p == nil {
				return JobView{}, badRequestf("unknown program %q", name)
			}
			chosen = append(chosen, *p)
		}
		progs = chosen
	}
	s.met.reqGrid.Inc()

	job := newJob("grid", len(progs)*len(machine.All())*len(pipeline.AllLevels()))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobView{}, ErrClosed
	}
	s.jobs[job.ID()] = job
	s.grids.Add(1)
	s.mu.Unlock()
	tr := s.jobTracer(job.ID())

	go func() {
		defer s.grids.Done()
		ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.gridTimeout())
		defer cancel()
		job.start()
		start := time.Now() // det:allow nodeterminism — latency/queue telemetry
		res, err := bench.RunGrid(ctx, bench.GridConfig{
			Programs:    progs,
			Caches:      req.Caches,
			CacheSizes:  req.CacheSizes,
			Replication: repOpts,
			VerifyEach:  req.VerifyEach,
			TV:          req.TV,
			Pool:        s.pool,
			Tracer:      tr,
			OnCell: func(c *bench.Cell) {
				job.step()
				s.met.gridCells.Inc()
				s.met.latency.Observe(c.Run.Elapsed.Seconds())
				s.met.jobDur.WithLabelValues("grid", c.Level.String(), c.Machine).
					Observe(c.Run.Elapsed.Seconds())
				s.met.queueWait.WithLabelValues("grid", c.Level.String(), c.Machine).
					Observe(c.QueueWait.Seconds())
			},
		})
		if err != nil {
			s.met.errors.Inc()
			s.finishJob(job, nil, err)
			s.logf("grid job %s failed after %s: %v", job.ID(), time.Since(start).Round(time.Millisecond), err) // det:allow nodeterminism — latency/queue telemetry
			return
		}
		out := &GridResult{Cells: make([]GridCell, 0, len(res.Cells))}
		for _, c := range res.Cells {
			out.Cells = append(out.Cells, GridCell{
				Program: c.Program, Machine: c.Machine, Level: c.Level.String(),
				Static: c.Run.Static, Dynamic: c.Run.Dynamic,
				CodeBytes: c.Run.CodeBytes, Caches: c.Run.Caches,
			})
		}
		if req.Tables {
			var buf bytes.Buffer
			res.WriteAll(&buf, req.Caches)
			out.Tables = buf.String()
		}
		s.finishJob(job, out, nil)
		s.logf("grid job %s: %d cells in %s", job.ID(), len(res.Cells), time.Since(start).Round(time.Millisecond)) // det:allow nodeterminism — latency/queue telemetry
	}()
	return job.View(), nil
}

// Job returns a snapshot of the identified job.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.View(), nil
}

// Jobs returns snapshots of every known job, ordered by ID so the same
// job set always serializes the same way.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.View())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
