package service

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/pipeline"
)

// TestDeterministicAcrossConcurrency compiles the same source on a wide
// pool and a single-worker service and checks the results agree — the
// pipeline must be a pure function of its inputs regardless of what else
// shares the process.
func TestDeterministicAcrossConcurrency(t *testing.T) {
	wide := New(Config{Workers: 4})
	narrow := New(Config{Workers: 1})
	defer wide.Close(context.Background())
	defer narrow.Close(context.Background())
	req := CompileRequest{Source: tinySrc, Machine: "sparc", Level: "jumps"}
	a, err := wide.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := narrow.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Assembly != b.Assembly || !reflect.DeepEqual(a.Static, b.Static) || a.CodeBytes != b.CodeBytes {
		t.Fatalf("results diverge across pool sizes:\n%+v\n%+v", a, b)
	}
}

// TestGracefulDrain submits a grid job and immediately closes the
// service: Close must wait for the job to finish (drain), and its result
// must remain retrievable afterwards.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2})
	view, err := s.SubmitGrid(GridRequest{Programs: []string{"queens"}})
	if err != nil {
		t.Fatalf("SubmitGrid: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := s.Job(view.ID)
	if err != nil {
		t.Fatalf("Job after Close: %v", err)
	}
	if got.State != JobDone {
		t.Fatalf("job state after drain = %q (%d/%d, err %q), want done",
			got.State, got.Done, got.Total, got.Error)
	}
	if want := len(machine.All()) * len(pipeline.AllLevels()); got.Done != want {
		t.Fatalf("done = %d, want %d", got.Done, want)
	}
}

// TestClosedServiceRejects verifies every entry point refuses work after
// Close.
func TestClosedServiceRejects(t *testing.T) {
	s := New(Config{Workers: 1})
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Compile(context.Background(), CompileRequest{Source: tinySrc}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compile after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Measure(context.Background(), MeasureRequest{Program: "queens"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Measure after Close = %v, want ErrClosed", err)
	}
	if _, err := s.SubmitGrid(GridRequest{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitGrid after Close = %v, want ErrClosed", err)
	}
}

// TestEngineOptionWire covers the replication engine on the wire: both
// engines compile to identical code, the engine participates in the cache
// key (a matrix request never reuses an oracle result), unknown names are
// client errors, and real compiles feed the throughput metrics.
func TestEngineOptionWire(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())
	base := CompileRequest{Source: tinySrc, Level: "jumps"}
	oracle, err := s.Compile(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	matrixReq := base
	matrixReq.Replication.Engine = "matrix"
	matrix, err := s.Compile(context.Background(), matrixReq)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.Cached {
		t.Fatal("matrix request served from the oracle request's cache entry")
	}
	if matrix.Assembly != oracle.Assembly || !reflect.DeepEqual(matrix.Static, oracle.Static) {
		t.Fatal("engines disagree on compiled output")
	}
	bad := base
	bad.Replication.Engine = "bogus"
	if _, err := s.Compile(context.Background(), bad); !IsBadRequest(err) {
		t.Fatalf("unknown engine = %v, want bad request", err)
	}
	if n := s.met.compileRTLs.Value(); n <= 0 {
		t.Fatalf("mccd_compile_rtls_total = %d after two compiles, want > 0", n)
	}
	if n := s.met.throughput.Count(); n != 2 {
		t.Fatalf("mccd_compile_rtls_per_second count = %d, want 2", n)
	}
}

// TestVerifyEachWire covers the verify-each mode on the wire: the flag
// participates in both cache keys, a clean program reports no violations
// (and increments no violation counter), and the response carries the
// structured diagnostics via Static.Verify.
func TestVerifyEachWire(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())

	base := CompileRequest{Source: tinySrc, Level: "jumps"}
	plain, err := s.Compile(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	vreq := base
	vreq.VerifyEach = true
	verified, err := s.Compile(context.Background(), vreq)
	if err != nil {
		t.Fatal(err)
	}
	if verified.Cached {
		t.Fatal("verify_each request served from the plain request's cache entry")
	}
	if len(verified.Static.Verify) != 0 {
		t.Fatalf("clean compile reported violations: %v", verified.Static.Verify)
	}
	if plain.Assembly != verified.Assembly {
		t.Fatal("verify_each changed the compiled output")
	}
	if n := s.met.verifyViol.Value(); n != 0 {
		t.Fatalf("mccd_verify_violations_total = %d after clean compiles, want 0", n)
	}

	mplain := MeasureRequest{Program: "queens"}
	if _, err := s.Measure(context.Background(), mplain); err != nil {
		t.Fatal(err)
	}
	mver := mplain
	mver.VerifyEach = true
	mres, err := s.Measure(context.Background(), mver)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Cached {
		t.Fatal("verify_each measure served from the plain measure's cache entry")
	}
	if len(mres.Static.Verify) != 0 {
		t.Fatalf("clean measure reported violations: %v", mres.Static.Verify)
	}
}

// TestJobTimeout bounds a synchronous job: the waiter gives up even if
// the job itself would take longer.
func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 30 * time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	// Park the worker so the submitted job cannot start before the
	// timeout fires.
	release := make(chan struct{})
	defer close(release)
	running := make(chan struct{})
	s.pool.Submit(context.Background(), func(context.Context) {
		close(running)
		<-release
	})
	<-running
	_, err := s.Compile(context.Background(), CompileRequest{Source: tinySrc})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Compile with parked worker = %v, want DeadlineExceeded", err)
	}
}

// TestPanicBecomesError routes a panicking job through runSync and
// expects an error response, not a crashed worker.
func TestPanicBecomesError(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close(context.Background())
	_, err := s.runSync(context.Background(), jobMeta{kind: "test"}, func(context.Context) (any, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("runSync panic = %v, want job-panicked error", err)
	}
	// The worker survived: the next job runs fine.
	v, err := s.runSync(context.Background(), jobMeta{kind: "test"}, func(context.Context) (any, error) {
		return 7, nil
	})
	if err != nil || v.(int) != 7 {
		t.Fatalf("after panic: %v, %v", v, err)
	}
}
