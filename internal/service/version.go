package service

import "runtime/debug"

// Version is the daemon build version, injected at link time:
//
//	go build -ldflags "-X repro/internal/service.Version=v1.2.3" ./cmd/mccd
//
// Leave it empty to let ResolveVersion fall back to the VCS revision
// embedded in the build info.
var Version string

// ResolveVersion returns the effective build version: the linker-injected
// Version if set, else the VCS revision from the embedded build info
// (truncated to 12 hex digits, "-dirty" appended when the tree had local
// modifications), else "devel".
func ResolveVersion() string {
	if Version != "" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			if dirty {
				return rev + "-dirty"
			}
			return rev
		}
	}
	return "devel"
}
