// Package service is the concurrent compile-and-measure subsystem behind
// cmd/mccd: a bounded work queue drained by a fixed worker pool, a
// content-addressed result cache, an async job model for batch grid runs,
// and an HTTP/JSON API over all of it. The CLIs share the same worker
// pool through bench.RunGrid, so one execution path serves both the
// one-shot tools and the daemon.
package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Errors returned by Submit/TrySubmit.
var (
	// ErrQueueFull reports a TrySubmit against a full queue — the caller
	// should shed load (HTTP 503) rather than block.
	ErrQueueFull = errors.New("service: work queue full")
	// ErrPoolClosed reports a submit after Shutdown began.
	ErrPoolClosed = errors.New("service: pool shut down")
)

// task is one queued unit of work. The fn runs on a worker goroutine with
// the submitter's context; cancellation is cooperative (fn checks ctx).
type task struct {
	ctx context.Context
	fn  func(context.Context)
}

// Pool is a fixed-size worker pool over a bounded queue. Every worker
// recovers panics, so one bad job cannot take the pool down. Shutdown
// stops intake and drains queued work.
type Pool struct {
	mu      sync.RWMutex // guards closed and the close(tasks) transition
	closed  bool
	tasks   chan task
	wg      sync.WaitGroup
	workers int

	busy      atomic.Int64
	completed atomic.Int64
	panics    atomic.Int64
}

// NewPool starts a pool of the given size over a bounded queue. workers
// <= 0 means GOMAXPROCS; depth <= 0 means 4x the worker count.
func NewPool(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 4 * workers
	}
	p := &Pool{tasks: make(chan task, depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		p.busy.Add(1)
		p.runOne(t)
		p.busy.Add(-1)
		p.completed.Add(1)
	}
}

// runOne executes one task behind a panic barrier. A panicking job is
// counted and dropped; the submitter observes it through whatever
// completion signal its fn carries (the service layer converts panics to
// job errors with its own recover before this backstop is reached).
func (p *Pool) runOne(t task) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
		}
	}()
	t.fn(t.ctx)
}

// Submit enqueues fn, blocking while the queue is full until space frees
// up, ctx is done, or the pool shuts down.
func (p *Pool) Submit(ctx context.Context, fn func(context.Context)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	// Holding the read lock across the send is what makes Shutdown's
	// close(tasks) safe: the write lock cannot be taken while any sender
	// is blocked here, and blocked senders always drain because the
	// workers only exit after the channel is closed.
	select {
	case p.tasks <- task{ctx: ctx, fn: fn}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit enqueues fn without blocking; a full queue is ErrQueueFull.
func (p *Pool) TrySubmit(ctx context.Context, fn func(context.Context)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task{ctx: ctx, fn: fn}:
		return nil
	default:
		return ErrQueueFull
	}
}

// Shutdown stops intake, drains every queued task, and waits for the
// workers to exit or ctx to expire (queued work keeps running either
// way). Safe to call more than once.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Workers is the pool size.
func (p *Pool) Workers() int { return p.workers }

// Busy is the number of workers currently running a task.
func (p *Pool) Busy() int64 { return p.busy.Load() }

// QueueDepth is the number of tasks waiting in the queue.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// QueueCap is the queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.tasks) }

// Completed is the number of tasks that have finished (including ones
// that panicked).
func (p *Pool) Completed() int64 { return p.completed.Load() }

// Panics is the number of tasks that panicked.
func (p *Pool) Panics() int64 { return p.panics.Load() }
