package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(context.Background(), func(context.Context) {
			defer wg.Done()
			n.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d, want 4", p.Workers())
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, 0)
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d, want >= 1", p.Workers())
	}
	if p.QueueCap() != 4*p.Workers() {
		t.Fatalf("QueueCap = %d, want %d", p.QueueCap(), 4*p.Workers())
	}
	p.Shutdown(context.Background())
}

// block parks the pool's single worker until release is closed, then
// returns the gate that confirms the worker picked the task up.
func block(t *testing.T, p *Pool, release chan struct{}) {
	t.Helper()
	running := make(chan struct{})
	if err := p.Submit(context.Background(), func(context.Context) {
		close(running)
		<-release
	}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-running
}

func TestPoolTrySubmitQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	block(t, p, release)
	// Worker is busy; one slot of queue. Fill it, then overflow.
	if err := p.TrySubmit(context.Background(), func(context.Context) {}); err != nil {
		t.Fatalf("TrySubmit into empty queue: %v", err)
	}
	if err := p.TrySubmit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("TrySubmit overflow = %v, want ErrQueueFull", err)
	}
	close(release)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestPoolSubmitHonorsContext(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	block(t, p, release)
	if err := p.TrySubmit(context.Background(), func(context.Context) {}); err != nil {
		t.Fatalf("fill queue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Submit(ctx, func(context.Context) {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit on full queue = %v, want DeadlineExceeded", err)
	}
	close(release)
	p.Shutdown(context.Background())
}

func TestPoolRecoverPanics(t *testing.T) {
	p := NewPool(1, 4)
	done := make(chan struct{})
	p.Submit(context.Background(), func(context.Context) { panic("boom") })
	p.Submit(context.Background(), func(context.Context) { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not survive a panicking task")
	}
	if got := p.Panics(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	p.Shutdown(context.Background())
}

func TestPoolShutdownDrains(t *testing.T) {
	p := NewPool(2, 32)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		if err := p.Submit(context.Background(), func(context.Context) {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := n.Load(); got != 20 {
		t.Fatalf("drained %d tasks, want all 20", got)
	}
	if err := p.Submit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrPoolClosed", err)
	}
	if err := p.TrySubmit(context.Background(), func(context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("TrySubmit after Shutdown = %v, want ErrPoolClosed", err)
	}
	// Second Shutdown is a no-op.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestPoolShutdownDeadline(t *testing.T) {
	p := NewPool(1, 4)
	release := make(chan struct{})
	block(t, p, release)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck worker = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("final Shutdown: %v", err)
	}
}

// TestPoolConcurrentSubmitShutdown races many submitters against a
// shutdown; under -race this guards the closed/close(tasks) transition.
func TestPoolConcurrentSubmitShutdown(t *testing.T) {
	p := NewPool(4, 8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := p.Submit(context.Background(), func(context.Context) {}); err != nil {
					if !errors.Is(err, ErrPoolClosed) {
						t.Errorf("Submit: %v", err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
}
