package mcc

import "fmt"

// Lexer tokenizes mini-C source.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1}
}

// Lex returns all tokens in src, ending with a TEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 < len(lx.src) {
		return lx.src[lx.pos+1]
	}
	return 0
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func (lx *Lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errf("unterminated comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func (lx *Lexer) escape() (byte, error) {
	if lx.pos >= len(lx.src) {
		return 0, lx.errf("unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return c, nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	}
	return 0, lx.errf("unknown escape \\%c", c)
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	line := lx.line
	if lx.pos >= len(lx.src) {
		return Token{Kind: TEOF, Line: line}, nil
	}
	c := lx.advance()
	mk := func(k TokKind) (Token, error) { return Token{Kind: k, Line: line}, nil }
	two := func(next byte, kTwo, kOne TokKind) (Token, error) {
		if lx.peek() == next {
			lx.advance()
			return mk(kTwo)
		}
		return mk(kOne)
	}
	switch {
	case isAlpha(c):
		start := lx.pos - 1
		for lx.pos < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		word := lx.src[start:lx.pos]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Text: word, Line: line}, nil
		}
		return Token{Kind: TIdent, Text: word, Line: line}, nil
	case isDigit(c):
		var v int64
		if c == '0' && (lx.peek() == 'x' || lx.peek() == 'X') {
			lx.advance()
			if !isHex(lx.peek()) {
				return Token{}, lx.errf("malformed hex literal")
			}
			for isHex(lx.peek()) {
				d := lx.advance()
				switch {
				case isDigit(d):
					v = v*16 + int64(d-'0')
				case d >= 'a':
					v = v*16 + int64(d-'a'+10)
				default:
					v = v*16 + int64(d-'A'+10)
				}
			}
		} else {
			v = int64(c - '0')
			for isDigit(lx.peek()) {
				v = v*10 + int64(lx.advance()-'0')
			}
		}
		return Token{Kind: TNum, Val: v, Line: line}, nil
	case c == '\'':
		if lx.pos >= len(lx.src) {
			return Token{}, lx.errf("unterminated char literal")
		}
		var v byte
		var err error
		if ch := lx.advance(); ch == '\\' {
			if v, err = lx.escape(); err != nil {
				return Token{}, err
			}
		} else {
			v = ch
		}
		if lx.pos >= len(lx.src) || lx.advance() != '\'' {
			return Token{}, lx.errf("unterminated char literal")
		}
		return Token{Kind: TChar, Val: int64(v), Line: line}, nil
	case c == '"':
		var body []byte
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf("unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				e, err := lx.escape()
				if err != nil {
					return Token{}, err
				}
				body = append(body, e)
				continue
			}
			body = append(body, ch)
		}
		return Token{Kind: TStr, Text: string(body), Line: line}, nil
	case c == '(':
		return mk(TLParen)
	case c == ')':
		return mk(TRParen)
	case c == '{':
		return mk(TLBrace)
	case c == '}':
		return mk(TRBrace)
	case c == '[':
		return mk(TLBrack)
	case c == ']':
		return mk(TRBrack)
	case c == ';':
		return mk(TSemi)
	case c == ',':
		return mk(TComma)
	case c == ':':
		return mk(TColon)
	case c == '?':
		return mk(TQuest)
	case c == '~':
		return mk(TTilde)
	case c == '+':
		if lx.peek() == '+' {
			lx.advance()
			return mk(TInc)
		}
		return two('=', TPlusEq, TPlus)
	case c == '-':
		if lx.peek() == '-' {
			lx.advance()
			return mk(TDec)
		}
		return two('=', TMinusEq, TMinus)
	case c == '*':
		return two('=', TStarEq, TStar)
	case c == '/':
		return two('=', TSlashEq, TSlash)
	case c == '%':
		return two('=', TPercentEq, TPercent)
	case c == '^':
		return two('=', TCaretEq, TCaret)
	case c == '=':
		return two('=', TEq, TAssign)
	case c == '!':
		return two('=', TNe, TBang)
	case c == '&':
		if lx.peek() == '&' {
			lx.advance()
			return mk(TAndAnd)
		}
		return two('=', TAmpEq, TAmp)
	case c == '|':
		if lx.peek() == '|' {
			lx.advance()
			return mk(TOrOr)
		}
		return two('=', TPipeEq, TPipe)
	case c == '<':
		if lx.peek() == '<' {
			lx.advance()
			return two('=', TShlEq, TShl)
		}
		return two('=', TLe, TLt)
	case c == '>':
		if lx.peek() == '>' {
			lx.advance()
			return two('=', TShrEq, TShr)
		}
		return two('=', TGe, TGt)
	}
	return Token{}, lx.errf("unexpected character %q", c)
}
