package mcc

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F + 'a'; // comment
/* block
   comment */
char *s = "he\tllo";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokKind{
		TKwInt, TIdent, TAssign, TNum, TPlus, TChar, TSemi,
		TKwChar, TStar, TIdent, TAssign, TStr, TSemi, TEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Val != 0x1F {
		t.Errorf("hex literal = %d", toks[3].Val)
	}
	if toks[5].Val != 'a' {
		t.Errorf("char literal = %d", toks[5].Val)
	}
	if toks[11].Text != "he\tllo" {
		t.Errorf("string body = %q", toks[11].Text)
	}
}

func TestLexOperators(t *testing.T) {
	src := "+= -= *= /= %= &= |= ^= <<= >>= || && == != <= >= << >> ++ --"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		TPlusEq, TMinusEq, TStarEq, TSlashEq, TPercentEq, TAmpEq, TPipeEq,
		TCaretEq, TShlEq, TShrEq, TOrOr, TAndAnd, TEq, TNe, TLe, TGe,
		TShl, TShr, TInc, TDec, TEOF,
	}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"\"unterminated",
		"'a",
		"/* unterminated",
		"@",
		`"bad \q escape"`,
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("int\nx\n=\n1;")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3, 4} {
		if toks[i].Line != want {
			t.Errorf("token %d line = %d, want %d", i, toks[i].Line, want)
		}
	}
}

func TestParseUnit(t *testing.T) {
	u, err := Parse(`
int g = 3;
int arr[5];
int inferred[] = {1, 2, 3};
char msg[] = "hi";
int m[2][3];
int add(int a, int b) { return a + b; }
void nothing() { }
int main() { return add(g, 2); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Globals) != 5 || len(u.Funcs) != 3 {
		t.Fatalf("got %d globals, %d funcs", len(u.Globals), len(u.Funcs))
	}
	if u.Globals[2].Type.N != 3 {
		t.Errorf("inferred array size = %d, want 3", u.Globals[2].Type.N)
	}
	if u.Globals[3].Type.N != 3 { // "hi" + NUL
		t.Errorf("string array size = %d, want 3", u.Globals[3].Type.N)
	}
	if u.Globals[4].Type.SizeCells() != 6 {
		t.Errorf("2-D array cells = %d, want 6", u.Globals[4].Type.SizeCells())
	}
	if u.Funcs[1].Ret.Kind != TyVoid {
		t.Error("void return type lost")
	}
}

func TestParsePrecedence(t *testing.T) {
	u, err := Parse(`int main() { return 1 + 2 * 3 - 10 / 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := u.Funcs[0].Body.Body[0]
	if ret.Kind != SReturn {
		t.Fatal("expected return")
	}
	// (1 + (2*3)) - (10/2): top node is "-"
	e := ret.Expr
	if e.Kind != EBin || e.Op != "-" {
		t.Fatalf("top = %v %q", e.Kind, e.Op)
	}
	if e.X.Op != "+" || e.X.Y.Op != "*" || e.Y.Op != "/" {
		t.Error("precedence shape wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int main() { return }",            // missing expression... actually valid? no: `return }`
		"int main() { if (1) }",            // missing statement
		"int main() { x = ; }",             // missing rhs
		"int f(int) { return 0; }",         // unnamed parameter
		"int a[] ;",                        // unsized array without initializer
		"int main() { case 1: ; }",         // case outside switch is a parse error here
		"int main() { int x = (1; }",       // unbalanced paren
		"int main() { 1() ; }",             // call of non-function
		"int main() { switch (1) { x; } }", // statement before first case
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined var", `int main() { return x; }`},
		{"undefined func", `int main() { return f(); }`},
		{"arity", `int f(int a) { return a; } int main() { return f(1, 2); }`},
		{"assign to literal", `int main() { 3 = 4; return 0; }`},
		{"array assign", `int a[3]; int main() { a = 0; return 0; }`},
		{"break outside", `int main() { break; return 0; }`},
		{"continue outside", `int main() { continue; return 0; }`},
		{"goto undefined", `int main() { goto nowhere; return 0; }`},
		{"duplicate case", `int main() { switch (1) { case 1: ; case 1: ; } return 0; }`},
		{"two defaults", `int main() { switch (1) { default: ; default: ; } return 0; }`},
		{"redefinition", `int main() { int x; int x; return 0; }`},
		{"void value", `void v() {} int main() { return v(); }`},
		{"void condition", `void v() {} int main() { if (v()) return 1; return 0; }`},
		{"return value in void", `void v() { return 3; } int main() { return 0; }`},
		{"no main", `int f() { return 0; }`},
		{"bad global init", `int g = f(); int main() { return 0; }`},
		{"string too long", `char s[2] = "abc"; int main() { return 0; }`},
		{"deref int", `int main() { return *3; }`},
		{"addr of func", `int f() { return 0; } int main() { return &f; }`},
		{"intrinsic arity", `int main() { putchar(); return 0; }`},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: Compile should fail", c.name)
		}
	}
}

func TestCompileShapes(t *testing.T) {
	// The VPCC-style lowering must introduce the jumps the paper attacks.
	prog, err := Compile(`
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 10; i++)
		s += i;
	if (s > 5)
		s = 1;
	else
		s = 2;
	while (s < 100)
		s *= 2;
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	jumps := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Jmp {
				jumps++
			}
		}
	}
	// for-loop entry jump, if-else join jump, while backward jump: >= 3.
	if jumps < 3 {
		t.Errorf("naive lowering produced only %d unconditional jumps:\n%s", jumps, f)
	}
}

func TestCompileGlobalInitFolding(t *testing.T) {
	prog, err := Compile(`
int a = 2 + 3 * 4;
int b = -(1 << 4);
int c = ~0 & 0xFF;
int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string]int64{"a": 14, "b": -16, "c": 0xFF}
	for name, want := range wants {
		g := prog.Global(name)
		if g == nil || len(g.Init) != 1 || g.Init[0] != want {
			t.Errorf("global %s init = %v, want %d", name, g, want)
		}
	}
}

func TestStringInterning(t *testing.T) {
	prog, err := Compile(`
int main() {
	printstr("same");
	printstr("same");
	printstr("different");
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	strGlobals := 0
	for _, g := range prog.Globals {
		if strings.HasPrefix(g.Name, ".str") {
			strGlobals++
		}
	}
	if strGlobals != 2 {
		t.Errorf("got %d interned strings, want 2", strGlobals)
	}
}

func TestScalarLocalsRecorded(t *testing.T) {
	prog, err := Compile(`
int f(int p) {
	int x;
	int arr[4];
	int *q;
	x = p;
	q = arr;
	return x + *q;
}
int main() { return f(1); }`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("f")
	// p (param), x and q are scalar; arr is not.
	if len(f.ScalarLocals) != 3 {
		t.Errorf("ScalarLocals = %v, want 3 entries", f.ScalarLocals)
	}
	if f.NLocals != 1+1+4+1 {
		t.Errorf("NLocals = %d, want 7", f.NLocals)
	}
}

func TestSwitchLoweringShapes(t *testing.T) {
	// Dense switches become jump tables (indirect jumps); sparse ones
	// become compare chains.
	dense, err := Compile(`
int main() {
	switch (3) {
	case 1: return 1;
	case 2: return 2;
	case 3: return 3;
	case 4: return 4;
	case 5: return 5;
	}
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(dense, rtl.IJmp) != 1 {
		t.Error("dense switch should lower to one indirect jump")
	}
	sparse, err := Compile(`
int main() {
	switch (3) {
	case 1: return 1;
	case 1000: return 2;
	}
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if countKind(sparse, rtl.IJmp) != 0 {
		t.Error("sparse switch must not use a jump table")
	}
}

func countKind(p *cfg.Program, k rtl.Kind) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for ii := range b.Insts {
				if b.Insts[ii].Kind == k {
					n++
				}
			}
		}
	}
	return n
}
