// Package mcc implements the mini-C front end: lexer, parser, semantic
// checks and RTL code generation. It plays the role of VPCC in the paper —
// in particular its code generator deliberately uses the same naive lowering
// of loops and conditionals (jump-to-test loops, jump-over-else
// conditionals) that produces the unconditional jumps the optimizer then
// attacks.
package mcc

import "fmt"

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TEOF TokKind = iota
	TIdent
	TNum
	TStr
	TChar
	// keywords
	TKwInt
	TKwChar
	TKwVoid
	TKwIf
	TKwElse
	TKwWhile
	TKwFor
	TKwDo
	TKwSwitch
	TKwCase
	TKwDefault
	TKwBreak
	TKwContinue
	TKwGoto
	TKwReturn
	// punctuation and operators
	TLParen
	TRParen
	TLBrace
	TRBrace
	TLBrack
	TRBrack
	TSemi
	TComma
	TColon
	TQuest
	TAssign
	TPlusEq
	TMinusEq
	TStarEq
	TSlashEq
	TPercentEq
	TAmpEq
	TPipeEq
	TCaretEq
	TShlEq
	TShrEq
	TOrOr
	TAndAnd
	TPipe
	TCaret
	TAmp
	TEq
	TNe
	TLt
	TLe
	TGt
	TGe
	TShl
	TShr
	TPlus
	TMinus
	TStar
	TSlash
	TPercent
	TBang
	TTilde
	TInc
	TDec
)

var keywords = map[string]TokKind{
	"int": TKwInt, "char": TKwChar, "void": TKwVoid, "if": TKwIf,
	"else": TKwElse, "while": TKwWhile, "for": TKwFor, "do": TKwDo,
	"switch": TKwSwitch, "case": TKwCase, "default": TKwDefault,
	"break": TKwBreak, "continue": TKwContinue, "goto": TKwGoto,
	"return": TKwReturn,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // identifier or string body (escapes resolved)
	Val  int64  // numeric or character value
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TIdent:
		return t.Text
	case TNum:
		return fmt.Sprintf("%d", t.Val)
	case TStr:
		return fmt.Sprintf("%q", t.Text)
	case TEOF:
		return "<eof>"
	}
	return tokNames[t.Kind]
}

var tokNames = map[TokKind]string{
	TKwInt: "int", TKwChar: "char", TKwVoid: "void", TKwIf: "if",
	TKwElse: "else", TKwWhile: "while", TKwFor: "for", TKwDo: "do",
	TKwSwitch: "switch", TKwCase: "case", TKwDefault: "default",
	TKwBreak: "break", TKwContinue: "continue", TKwGoto: "goto",
	TKwReturn: "return",
	TLParen:   "(", TRParen: ")", TLBrace: "{", TRBrace: "}",
	TLBrack: "[", TRBrack: "]", TSemi: ";", TComma: ",", TColon: ":",
	TQuest: "?", TAssign: "=", TPlusEq: "+=", TMinusEq: "-=",
	TStarEq: "*=", TSlashEq: "/=", TPercentEq: "%=", TAmpEq: "&=",
	TPipeEq: "|=", TCaretEq: "^=", TShlEq: "<<=", TShrEq: ">>=",
	TOrOr: "||", TAndAnd: "&&", TPipe: "|", TCaret: "^", TAmp: "&",
	TEq: "==", TNe: "!=", TLt: "<", TLe: "<=", TGt: ">", TGe: ">=",
	TShl: "<<", TShr: ">>", TPlus: "+", TMinus: "-", TStar: "*",
	TSlash: "/", TPercent: "%", TBang: "!", TTilde: "~",
	TInc: "++", TDec: "--", TChar: "<char>",
}
