package mcc

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// Intrinsics are the runtime routines known to the compiler and executed —
// but not measured — by the VM, mirroring the paper's unmeasured C library.
// The value is the argument count; -1 marks a result-returning intrinsic
// noted separately below.
var Intrinsics = map[string]int{
	"getchar":  0, // returns next input character or -1
	"putchar":  1,
	"printint": 1, // prints a decimal integer
	"printstr": 1, // prints a NUL-terminated string at the given address
	"exit":     1,
}

// intrinsicHasResult reports whether the intrinsic produces a value.
func intrinsicHasResult(name string) bool { return name == "getchar" }

// compileError carries a source-located front-end error through panic.
type compileError struct{ err error }

func errf(line int, format string, args ...interface{}) compileError {
	return compileError{fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))}
}

type symKind uint8

const (
	symGlobal symKind = iota
	symLocal
	symFunc
)

type symbol struct {
	kind symKind
	typ  *Type
	off  int64  // symLocal frame offset
	name string // symGlobal data name
	fn   *FuncDecl
}

type scope struct {
	parent *scope
	syms   map[string]*symbol
}

func (s *scope) lookup(name string) *symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym := sc.syms[name]; sym != nil {
			return sym
		}
	}
	return nil
}

func (s *scope) define(line int, name string, sym *symbol) {
	if _, dup := s.syms[name]; dup {
		panic(errf(line, "redefinition of %q", name))
	}
	s.syms[name] = sym
}

// Compile parses and compiles mini-C source into an RTL program. The output
// is naive, machine-neutral RTL; run machine.Legalize and the optimizer
// pipeline on it before measuring anything.
func Compile(src string) (prog *cfg.Program, err error) {
	unit, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileUnit(unit)
}

// CompileUnit compiles an already-parsed unit.
func CompileUnit(unit *Unit) (prog *cfg.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				prog, err = nil, ce.err
				return
			}
			panic(r)
		}
	}()
	c := &compiler{
		prog:    &cfg.Program{},
		globals: &scope{syms: map[string]*symbol{}},
		strs:    map[string]string{},
	}
	for _, d := range unit.Globals {
		c.declareGlobal(d)
	}
	for _, fn := range unit.Funcs {
		c.globals.define(fn.Line, fn.Name, &symbol{kind: symFunc, typ: fn.Ret, fn: fn})
	}
	for _, fn := range unit.Funcs {
		c.genFunc(fn)
	}
	if c.prog.Func("main") == nil {
		return nil, fmt.Errorf("program has no main function")
	}
	return c.prog, nil
}

type compiler struct {
	prog    *cfg.Program
	globals *scope
	strs    map[string]string // literal body -> global name
	nstr    int
}

func (c *compiler) declareGlobal(d *Decl) {
	g := rtl.GlobalDef{Name: d.Name, Size: d.Type.SizeCells()}
	switch {
	case d.HasStr:
		for _, ch := range []byte(d.StrInit) {
			g.Init = append(g.Init, int64(ch))
		}
		g.Init = append(g.Init, 0)
		if int64(len(g.Init)) > g.Size {
			panic(errf(d.Line, "string initializer longer than array %q", d.Name))
		}
	case d.ArrayInit != nil:
		if int64(len(d.ArrayInit)) > g.Size {
			panic(errf(d.Line, "too many initializers for %q", d.Name))
		}
		for _, e := range d.ArrayInit {
			g.Init = append(g.Init, c.constEval(e))
		}
	case d.Init != nil:
		g.Init = []int64{c.constEval(d.Init)}
	}
	c.prog.Globals = append(c.prog.Globals, g)
	c.globals.define(d.Line, d.Name, &symbol{kind: symGlobal, typ: d.Type, name: d.Name})
}

// constEval evaluates a constant expression for a global initializer.
func (c *compiler) constEval(e *Expr) int64 {
	switch e.Kind {
	case ENum:
		return e.Val
	case ENeg:
		return -c.constEval(e.X)
	case EBitNot:
		return ^c.constEval(e.X)
	case EBin:
		x, y := c.constEval(e.X), c.constEval(e.Y)
		op, ok := binOpFor(e.Op)
		if !ok {
			panic(errf(e.Line, "unsupported constant operator %q", e.Op))
		}
		return op.Eval(x, y)
	}
	panic(errf(e.Line, "global initializer is not a constant expression"))
}

func binOpFor(op string) (rtl.BinOp, bool) {
	switch op {
	case "+":
		return rtl.Add, true
	case "-":
		return rtl.Sub, true
	case "*":
		return rtl.Mul, true
	case "/":
		return rtl.Div, true
	case "%":
		return rtl.Mod, true
	case "&":
		return rtl.And, true
	case "|":
		return rtl.Or, true
	case "^":
		return rtl.Xor, true
	case "<<":
		return rtl.Shl, true
	case ">>":
		return rtl.Shr, true
	}
	return 0, false
}

func relFor(op string) rtl.Rel {
	switch op {
	case "==":
		return rtl.Eq
	case "!=":
		return rtl.Ne
	case "<":
		return rtl.Lt
	case "<=":
		return rtl.Le
	case ">":
		return rtl.Gt
	case ">=":
		return rtl.Ge
	}
	panic(fmt.Sprintf("mcc: no relation for %q", op))
}

// internString returns the name of a global holding the NUL-terminated
// string literal.
func (c *compiler) internString(s string) string {
	if name, ok := c.strs[s]; ok {
		return name
	}
	name := fmt.Sprintf(".str%d", c.nstr)
	c.nstr++
	c.strs[s] = name
	g := rtl.GlobalDef{Name: name, Size: int64(len(s)) + 1}
	for _, ch := range []byte(s) {
		g.Init = append(g.Init, int64(ch))
	}
	g.Init = append(g.Init, 0)
	c.prog.Globals = append(c.prog.Globals, g)
	return name
}

// generator holds per-function code generation state.
type generator struct {
	c      *compiler
	f      *cfg.Func
	fd     *FuncDecl
	scope  *scope
	cur    *cfg.Block
	breaks []rtl.Label
	conts  []rtl.Label
	// user goto labels
	userLabels map[string]rtl.Label
	usedLabels map[string]int // name -> first goto line, for undefined-label errors
}

func (c *compiler) genFunc(fd *FuncDecl) {
	f := cfg.NewFunc(fd.Name, len(fd.Params))
	g := &generator{
		c: c, f: f, fd: fd,
		scope:      &scope{parent: c.globals, syms: map[string]*symbol{}},
		userLabels: map[string]rtl.Label{},
		usedLabels: map[string]int{},
	}
	for i, p := range fd.Params {
		g.scope.define(fd.Line, p.Name, &symbol{kind: symLocal, typ: p.Type, off: int64(i)})
		f.ScalarLocals = append(f.ScalarLocals, int64(i))
	}
	f.NLocals = len(fd.Params)
	g.cur = f.AppendBlock(f.NewLabel())
	g.genStmt(fd.Body)
	// Guarantee every path returns.
	if g.cur.Term() == nil {
		if fd.Ret.Kind == TyVoid {
			g.emit(rtl.Inst{Kind: rtl.Ret, Src: rtl.None()})
		} else {
			g.emit(rtl.Inst{Kind: rtl.Ret, Src: rtl.Imm(0)})
		}
	}
	// usedLabels holds gotos whose label statement never appeared.
	for name, line := range g.usedLabels {
		panic(errf(line, "goto undefined label %q", name))
	}
	c.prog.Funcs = append(c.prog.Funcs, f)
}

func (g *generator) emit(in rtl.Inst) {
	if g.cur.Term() != nil {
		// Unreachable straight-line code after a terminator: drop it.
		return
	}
	g.cur.Insts = append(g.cur.Insts, in)
}

// startBlock begins the block with the given label; the previous block
// falls through into it when not already terminated.
func (g *generator) startBlock(l rtl.Label) {
	g.cur = g.f.AppendBlock(l)
}

func (g *generator) jump(l rtl.Label) {
	g.emit(rtl.Inst{Kind: rtl.Jmp, Target: l})
}

// emitBr emits the conditional transfer for `CC rel` with true-target t and
// false-target fl, knowing the caller will continue generation at next.
func (g *generator) emitBr(rel rtl.Rel, t, fl, next rtl.Label) {
	switch {
	case fl == next:
		g.emit(rtl.Inst{Kind: rtl.Br, BrRel: rel, Target: t})
	case t == next:
		g.emit(rtl.Inst{Kind: rtl.Br, BrRel: rel.Negate(), Target: fl})
	default:
		g.emit(rtl.Inst{Kind: rtl.Br, BrRel: rel, Target: t})
		g.startBlock(g.f.NewLabel())
		g.jump(fl)
	}
}

// value is an expression result: an operand plus its mini-C type.
type value struct {
	op  rtl.Operand
	typ *Type
}

// allocLocal reserves size cells in the frame and returns the base offset.
func (g *generator) allocLocal(size int64) int64 {
	off := int64(g.f.NLocals)
	g.f.NLocals += int(size)
	return off
}

// intoReg ensures the value is in a (virtual) register.
func (g *generator) intoReg(v value) value {
	if v.op.Kind == rtl.OReg {
		return v
	}
	r := g.f.NewVReg()
	g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: v.op})
	return value{rtl.R(r), v.typ}
}

// decay converts an array value (which is an address) to a pointer value.
func decay(v value) value {
	if v.typ != nil && v.typ.Kind == TyArray {
		return value{v.op, PtrTo(v.typ.Elem)}
	}
	return v
}

// deref turns an address value into the memory operand it designates.
func (g *generator) deref(line int, addr value) (rtl.Operand, *Type) {
	t := addr.typ
	var elem *Type
	switch {
	case t.Kind == TyPtr:
		elem = t.Elem
	case t.Kind == TyArray:
		elem = t.Elem
	default:
		panic(errf(line, "dereference of non-pointer (%s)", t))
	}
	switch addr.op.Kind {
	case rtl.OAddrLocal:
		return rtl.Local(addr.op.Val), elem
	case rtl.OAddrGlobal:
		return rtl.Global(addr.op.Sym, addr.op.Val), elem
	case rtl.OReg:
		return rtl.Mem(addr.op.Reg, 0), elem
	case rtl.OImm:
		panic(errf(line, "dereference of integer constant"))
	default:
		r := g.intoReg(addr)
		return rtl.Mem(r.op.Reg, 0), elem
	}
}

// lvalue returns the memory (or register) operand designating e's storage.
func (g *generator) lvalue(e *Expr) (rtl.Operand, *Type) {
	switch e.Kind {
	case EVar:
		sym := g.scope.lookup(e.Str)
		if sym == nil {
			panic(errf(e.Line, "undefined variable %q", e.Str))
		}
		switch sym.kind {
		case symLocal:
			if sym.typ.Kind == TyArray {
				panic(errf(e.Line, "array %q is not assignable", e.Str))
			}
			return rtl.Local(sym.off), sym.typ
		case symGlobal:
			if sym.typ.Kind == TyArray {
				panic(errf(e.Line, "array %q is not assignable", e.Str))
			}
			return rtl.Global(sym.name, 0), sym.typ
		default:
			panic(errf(e.Line, "function %q used as variable", e.Str))
		}
	case EDeref:
		addr := decay(g.genExpr(e.X))
		return g.deref(e.Line, addr)
	case EIndex:
		return g.indexOperand(e)
	}
	panic(errf(e.Line, "expression is not assignable"))
}

// addressValue returns e's base address as a value (for arrays and &x).
func (g *generator) addressValue(e *Expr) value {
	switch e.Kind {
	case EVar:
		sym := g.scope.lookup(e.Str)
		if sym == nil {
			panic(errf(e.Line, "undefined variable %q", e.Str))
		}
		switch sym.kind {
		case symLocal:
			return value{rtl.AddrLocal(sym.off), sym.typ}
		case symGlobal:
			return value{rtl.AddrGlobal(sym.name, 0), sym.typ}
		default:
			panic(errf(e.Line, "cannot take the address of function %q", e.Str))
		}
	case EIndex:
		op, t := g.indexOperand(e)
		return g.operandAddress(e.Line, op, t)
	case EDeref:
		return decay(g.genExpr(e.X))
	case EStr:
		name := g.c.internString(e.Str)
		return value{rtl.AddrGlobal(name, 0), ArrayOf(CharType, int64(len(e.Str))+1)}
	}
	op, t := g.lvalue(e)
	return g.operandAddress(e.Line, op, t)
}

// operandAddress converts a memory operand back into an address value.
func (g *generator) operandAddress(line int, op rtl.Operand, t *Type) value {
	switch op.Kind {
	case rtl.OLocal:
		return value{rtl.AddrLocal(op.Val), t}
	case rtl.OGlobal:
		return value{rtl.AddrGlobal(op.Sym, op.Val), t}
	case rtl.OMem:
		if op.Index == rtl.RegNone && op.Val == 0 {
			return value{rtl.R(op.Reg), t}
		}
		r := g.f.NewVReg()
		if op.Index == rtl.RegNone {
			g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(r), Src: rtl.R(op.Reg), Src2: rtl.Imm(op.Val)})
		} else {
			// r = base + index*scale + disp
			g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(r), Src: rtl.R(op.Reg), Src2: rtl.R(op.Index)})
			if op.Val != 0 {
				g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(r), Src: rtl.R(r), Src2: rtl.Imm(op.Val)})
			}
		}
		return value{rtl.R(r), t}
	}
	panic(errf(line, "cannot take the address of this expression"))
}

// indexOperand computes the memory operand for e = X[Y].
func (g *generator) indexOperand(e *Expr) (rtl.Operand, *Type) {
	base := decay(g.addressIfArray(e.X))
	if base.typ.Kind != TyPtr {
		panic(errf(e.Line, "indexing a non-array (%s)", base.typ))
	}
	elem := base.typ.Elem
	esz := elem.SizeCells()
	idx := g.genExpr(e.Y)
	if idx.typ != nil && !idx.typ.IsScalar() {
		panic(errf(e.Line, "array index is not a scalar"))
	}
	if elem.Kind == TyArray {
		// Row of a multi-dimensional array: result is a sub-array address.
		addr := g.scaledAdd(base, idx, esz)
		// Represent the sub-array as a pseudo-memory operand via its
		// address; callers use operandAddress/deref as needed.
		op, _ := g.deref(e.Line, value{addr.op, PtrTo(elem)})
		return op, elem
	}
	// Scalar element.
	if idx.op.Kind == rtl.OImm {
		off := idx.op.Val * esz
		switch base.op.Kind {
		case rtl.OAddrLocal:
			return rtl.Local(base.op.Val + off), elem
		case rtl.OAddrGlobal:
			return rtl.Global(base.op.Sym, base.op.Val+off), elem
		case rtl.OReg:
			return rtl.Mem(base.op.Reg, off), elem
		}
	}
	// Dynamic index.
	iv := idx
	if esz != 1 {
		r := g.f.NewVReg()
		g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(r), Src: iv.op, Src2: rtl.Imm(esz)})
		iv = value{rtl.R(r), IntType}
	}
	iv = g.intoReg(iv)
	switch base.op.Kind {
	case rtl.OAddrLocal:
		return rtl.MemIdx(rtl.FP, base.op.Val, iv.op.Reg, 1), elem
	case rtl.OReg:
		return rtl.MemIdx(base.op.Reg, 0, iv.op.Reg, 1), elem
	default:
		b := g.intoReg(value{base.op, base.typ})
		return rtl.MemIdx(b.op.Reg, 0, iv.op.Reg, 1), elem
	}
}

// addressIfArray evaluates e, yielding its address value when it denotes an
// array and its ordinary value otherwise.
func (g *generator) addressIfArray(e *Expr) value {
	if t := g.staticType(e); t != nil && t.Kind == TyArray {
		return g.addressValue(e)
	}
	return g.genExpr(e)
}

// staticType gives a cheap pre-pass type for array/pointer decisions.
func (g *generator) staticType(e *Expr) *Type {
	switch e.Kind {
	case EVar:
		if sym := g.scope.lookup(e.Str); sym != nil && sym.kind != symFunc {
			return sym.typ
		}
	case EIndex:
		if t := g.staticType(e.X); t != nil && (t.Kind == TyArray || t.Kind == TyPtr) {
			return t.Elem
		}
	case EDeref:
		if t := g.staticType(e.X); t != nil && (t.Kind == TyPtr || t.Kind == TyArray) {
			return t.Elem
		}
	case EStr:
		return ArrayOf(CharType, int64(len(e.Str))+1)
	}
	return nil
}

// scaledAdd computes base + idx*scale as an address value.
func (g *generator) scaledAdd(base, idx value, scale int64) value {
	if idx.op.Kind == rtl.OImm {
		off := idx.op.Val * scale
		switch base.op.Kind {
		case rtl.OAddrLocal:
			return value{rtl.AddrLocal(base.op.Val + off), base.typ}
		case rtl.OAddrGlobal:
			return value{rtl.AddrGlobal(base.op.Sym, base.op.Val+off), base.typ}
		}
		r := g.f.NewVReg()
		g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(r), Src: base.op, Src2: rtl.Imm(off)})
		return value{rtl.R(r), base.typ}
	}
	iv := idx
	if scale != 1 {
		r := g.f.NewVReg()
		g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(r), Src: iv.op, Src2: rtl.Imm(scale)})
		iv = value{rtl.R(r), IntType}
	}
	r := g.f.NewVReg()
	g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(r), Src: base.op, Src2: iv.op})
	return value{rtl.R(r), base.typ}
}

// containsCall reports whether the expression tree performs a call.
func containsCall(e *Expr) bool {
	if e == nil {
		return false
	}
	if e.Kind == ECall {
		return true
	}
	for _, sub := range []*Expr{e.X, e.Y, e.Z} {
		if containsCall(sub) {
			return true
		}
	}
	for _, a := range e.Args {
		if containsCall(a) {
			return true
		}
	}
	return false
}

// genExpr generates code for e and returns its value.
func (g *generator) genExpr(e *Expr) value {
	switch e.Kind {
	case ENum:
		return value{rtl.Imm(e.Val), IntType}
	case EStr:
		name := g.c.internString(e.Str)
		return value{rtl.AddrGlobal(name, 0), PtrTo(CharType)}
	case EVar:
		sym := g.scope.lookup(e.Str)
		if sym == nil {
			panic(errf(e.Line, "undefined variable %q", e.Str))
		}
		if sym.kind == symFunc {
			panic(errf(e.Line, "function %q used as value", e.Str))
		}
		if sym.typ.Kind == TyArray {
			return decay(g.addressValue(e))
		}
		op, t := g.lvalue(e)
		return value{op, t}
	case EBin:
		return g.genBin(e)
	case ECmp, ELogAnd, ELogOr, ENot:
		return g.genBoolValue(e)
	case ENeg:
		x := g.genExpr(e.X)
		if x.op.Kind == rtl.OImm {
			return value{rtl.Imm(-x.op.Val), IntType}
		}
		r := g.f.NewVReg()
		g.emit(rtl.Inst{Kind: rtl.Un, UOp: rtl.Neg, Dst: rtl.R(r), Src: x.op})
		return value{rtl.R(r), IntType}
	case EBitNot:
		x := g.genExpr(e.X)
		if x.op.Kind == rtl.OImm {
			return value{rtl.Imm(^x.op.Val), IntType}
		}
		r := g.f.NewVReg()
		g.emit(rtl.Inst{Kind: rtl.Un, UOp: rtl.Not, Dst: rtl.R(r), Src: x.op})
		return value{rtl.R(r), IntType}
	case EDeref:
		op, t := g.lvalue(e)
		if t.Kind == TyArray {
			return decay(g.operandAddress(e.Line, op, t))
		}
		return value{op, t}
	case EAddr:
		v := g.addressValue(e.X)
		return value{v.op, PtrTo(v.typ)}
	case EIndex:
		op, t := g.indexOperand(e)
		if t.Kind == TyArray {
			return decay(g.operandAddress(e.Line, op, t))
		}
		return value{op, t}
	case ECall:
		return g.genCall(e)
	case EAssign:
		return g.genAssign(e)
	case EIncDec:
		return g.genIncDec(e)
	case ECond:
		r := g.f.NewVReg()
		lt, lf, le := g.f.NewLabel(), g.f.NewLabel(), g.f.NewLabel()
		g.genBranch(e.X, lt, lf, lt)
		g.startBlock(lt)
		tv := g.genExpr(e.Y)
		g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: tv.op})
		g.jump(le)
		g.startBlock(lf)
		fv := g.genExpr(e.Z)
		g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: fv.op})
		g.startBlock(le)
		return value{rtl.R(r), tv.typ}
	}
	panic(errf(e.Line, "unsupported expression"))
}

func (g *generator) genBin(e *Expr) value {
	op, ok := binOpFor(e.Op)
	if !ok {
		panic(errf(e.Line, "unknown operator %q", e.Op))
	}
	x := g.addressIfArray(e.X)
	x = decay(x)
	y := decay(g.addressIfArray(e.Y))
	// Constant folding at generation keeps initializers and sizes tidy.
	if x.op.Kind == rtl.OImm && y.op.Kind == rtl.OImm {
		return value{rtl.Imm(op.Eval(x.op.Val, y.op.Val)), IntType}
	}
	resType := IntType
	// Pointer arithmetic: scale the integer side by the element size.
	if x.typ != nil && x.typ.Kind == TyPtr && (op == rtl.Add || op == rtl.Sub) {
		if y.typ != nil && y.typ.Kind == TyPtr {
			if op != rtl.Sub {
				panic(errf(e.Line, "invalid pointer addition"))
			}
			// ptr - ptr: difference in elements.
			r := g.f.NewVReg()
			g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Sub, Dst: rtl.R(r), Src: x.op, Src2: y.op})
			if esz := x.typ.Elem.SizeCells(); esz != 1 {
				g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Div, Dst: rtl.R(r), Src: rtl.R(r), Src2: rtl.Imm(esz)})
			}
			return value{rtl.R(r), IntType}
		}
		if esz := x.typ.Elem.SizeCells(); esz != 1 {
			sy := g.f.NewVReg()
			g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(sy), Src: y.op, Src2: rtl.Imm(esz)})
			y = value{rtl.R(sy), IntType}
		}
		resType = x.typ
	} else if y.typ != nil && y.typ.Kind == TyPtr && op == rtl.Add {
		if esz := y.typ.Elem.SizeCells(); esz != 1 {
			sx := g.f.NewVReg()
			g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(sx), Src: x.op, Src2: rtl.Imm(esz)})
			x = value{rtl.R(sx), IntType}
		}
		resType = y.typ
	}
	r := g.f.NewVReg()
	g.emit(rtl.Inst{Kind: rtl.Bin, BOp: op, Dst: rtl.R(r), Src: x.op, Src2: y.op})
	return value{rtl.R(r), resType}
}

// genBoolValue materializes a boolean expression as 0/1 through branches —
// the VPCC-style lowering that feeds the replication optimizer jumps.
func (g *generator) genBoolValue(e *Expr) value {
	r := g.f.NewVReg()
	lt, lf, le := g.f.NewLabel(), g.f.NewLabel(), g.f.NewLabel()
	g.genBranch(e, lt, lf, lt)
	g.startBlock(lt)
	g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: rtl.Imm(1)})
	g.jump(le)
	g.startBlock(lf)
	g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: rtl.Imm(0)})
	g.startBlock(le)
	return value{rtl.R(r), IntType}
}

func (g *generator) genCall(e *Expr) value {
	nargs, isIntrin := Intrinsics[e.Str]
	var retType *Type = IntType
	if !isIntrin {
		sym := g.scope.lookup(e.Str)
		if sym == nil || sym.kind != symFunc {
			panic(errf(e.Line, "call of undefined function %q", e.Str))
		}
		nargs = len(sym.fn.Params)
		retType = sym.fn.Ret
	} else if !intrinsicHasResult(e.Str) {
		retType = VoidType
	}
	if len(e.Args) != nargs {
		panic(errf(e.Line, "%q expects %d arguments, got %d", e.Str, nargs, len(e.Args)))
	}
	// Evaluate arguments; materialize early ones into registers when a
	// later argument performs a call (its Arg instructions must not
	// interleave with ours).
	vals := make([]value, len(e.Args))
	for i, a := range e.Args {
		v := decay(g.addressIfArray(a))
		if v.typ != nil && v.typ.Kind == TyVoid {
			panic(errf(a.Line, "void value used as argument"))
		}
		later := false
		for _, b := range e.Args[i+1:] {
			if containsCall(b) {
				later = true
				break
			}
		}
		if later && v.op.Kind != rtl.OImm {
			v = g.intoReg(v)
		}
		vals[i] = v
	}
	for i, v := range vals {
		g.emit(rtl.Inst{Kind: rtl.Arg, ArgIdx: i, Src: v.op})
	}
	call := rtl.Inst{Kind: rtl.Call, Sym: e.Str, Dst: rtl.None()}
	if retType.Kind != TyVoid {
		r := g.f.NewVReg()
		call.Dst = rtl.R(r)
		g.emit(call)
		return value{rtl.R(r), retType}
	}
	g.emit(call)
	return value{rtl.None(), VoidType}
}

func (g *generator) genAssign(e *Expr) value {
	dst, t := g.lvalue(e.X)
	if e.Op == "" {
		v := decay(g.addressIfArray(e.Y))
		if v.typ != nil && v.typ.Kind == TyVoid {
			panic(errf(e.Line, "void value used in assignment"))
		}
		g.emit(rtl.Inst{Kind: rtl.Move, Dst: dst, Src: v.op})
		return value{dst, t}
	}
	op, ok := binOpFor(e.Op)
	if !ok {
		panic(errf(e.Line, "unknown operator %q=", e.Op))
	}
	v := decay(g.genExpr(e.Y))
	// Pointer compound assignment scales like pointer arithmetic.
	if t.Kind == TyPtr && (op == rtl.Add || op == rtl.Sub) {
		if esz := t.Elem.SizeCells(); esz != 1 {
			if v.op.Kind == rtl.OImm {
				v = value{rtl.Imm(v.op.Val * esz), IntType}
			} else {
				r := g.f.NewVReg()
				g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(r), Src: v.op, Src2: rtl.Imm(esz)})
				v = value{rtl.R(r), IntType}
			}
		}
	}
	g.emit(rtl.Inst{Kind: rtl.Bin, BOp: op, Dst: dst, Src: dst, Src2: v.op})
	return value{dst, t}
}

func (g *generator) genIncDec(e *Expr) value {
	dst, t := g.lvalue(e.X)
	delta := e.Delta
	if t.Kind == TyPtr {
		delta *= t.Elem.SizeCells()
	}
	if e.Prefix {
		g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: dst, Src: dst, Src2: rtl.Imm(delta)})
		return value{dst, t}
	}
	r := g.f.NewVReg()
	g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: dst})
	g.emit(rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: dst, Src: dst, Src2: rtl.Imm(delta)})
	return value{rtl.R(r), t}
}

// genBranch generates a conditional transfer: control reaches label t when e
// is true and fl when false; generation continues at block next (one of t,
// fl) immediately after.
func (g *generator) genBranch(e *Expr, t, fl, next rtl.Label) {
	switch e.Kind {
	case ELogAnd:
		mid := g.f.NewLabel()
		g.genBranch(e.X, mid, fl, mid)
		g.startBlock(mid)
		g.genBranch(e.Y, t, fl, next)
		return
	case ELogOr:
		mid := g.f.NewLabel()
		g.genBranch(e.X, t, mid, mid)
		g.startBlock(mid)
		g.genBranch(e.Y, t, fl, next)
		return
	case ENot:
		g.genBranch(e.X, fl, t, next)
		return
	case ECmp:
		x := decay(g.addressIfArray(e.X))
		y := decay(g.addressIfArray(e.Y))
		g.emit(rtl.Inst{Kind: rtl.Cmp, Src: x.op, Src2: y.op})
		g.emitBr(relFor(e.Op), t, fl, next)
		return
	case ENum:
		if e.Val != 0 {
			if t != next {
				g.jump(t)
			}
		} else if fl != next {
			g.jump(fl)
		}
		return
	}
	v := decay(g.genExpr(e))
	if v.typ.Kind == TyVoid {
		panic(errf(e.Line, "void value used as condition"))
	}
	g.emit(rtl.Inst{Kind: rtl.Cmp, Src: v.op, Src2: rtl.Imm(0)})
	g.emitBr(rtl.Ne, t, fl, next)
}

func (g *generator) pushScope() { g.scope = &scope{parent: g.scope, syms: map[string]*symbol{}} }
func (g *generator) popScope()  { g.scope = g.scope.parent }

func (g *generator) genStmt(s *Stmt) {
	switch s.Kind {
	case SEmpty:
	case SBlock:
		if !s.Flat {
			g.pushScope()
		}
		for _, st := range s.Body {
			g.genStmt(st)
		}
		if !s.Flat {
			g.popScope()
		}
	case SExpr:
		g.genExpr(s.Expr)
	case SDecl:
		g.genDecl(s)
	case SIf:
		lThen, lEnd := g.f.NewLabel(), g.f.NewLabel()
		if s.Else != nil {
			lElse := g.f.NewLabel()
			g.genBranch(s.Expr, lThen, lElse, lThen)
			g.startBlock(lThen)
			g.genStmt(s.Then)
			g.jump(lEnd)
			g.startBlock(lElse)
			g.genStmt(s.Else)
			g.startBlock(lEnd)
		} else {
			g.genBranch(s.Expr, lThen, lEnd, lThen)
			g.startBlock(lThen)
			g.genStmt(s.Then)
			g.startBlock(lEnd)
		}
	case SWhile:
		// VPCC shape: test at the top, unconditional jump at the bottom.
		lTest, lBody, lExit := g.f.NewLabel(), g.f.NewLabel(), g.f.NewLabel()
		g.startBlock(lTest)
		g.genBranch(s.Expr, lBody, lExit, lBody)
		g.startBlock(lBody)
		g.breaks = append(g.breaks, lExit)
		g.conts = append(g.conts, lTest)
		g.genStmt(s.Then)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.jump(lTest)
		g.startBlock(lExit)
	case SDoWhile:
		lBody, lCont, lExit := g.f.NewLabel(), g.f.NewLabel(), g.f.NewLabel()
		g.startBlock(lBody)
		g.breaks = append(g.breaks, lExit)
		g.conts = append(g.conts, lCont)
		g.genStmt(s.Then)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.startBlock(lCont)
		g.genBranch(s.Expr, lBody, lExit, lExit)
		g.startBlock(lExit)
	case SFor:
		// VPCC shape: an unconditional jump before the loop transfers to
		// the termination test placed at the end of the loop.
		g.pushScope()
		g.genStmt(s.Init)
		lBody, lCont, lTest, lExit := g.f.NewLabel(), g.f.NewLabel(), g.f.NewLabel(), g.f.NewLabel()
		if s.Expr != nil {
			g.jump(lTest)
		}
		g.startBlock(lBody)
		g.breaks = append(g.breaks, lExit)
		g.conts = append(g.conts, lCont)
		g.genStmt(s.Then)
		g.breaks = g.breaks[:len(g.breaks)-1]
		g.conts = g.conts[:len(g.conts)-1]
		g.startBlock(lCont)
		if s.Post != nil {
			g.genExpr(s.Post)
		}
		g.startBlock(lTest)
		if s.Expr != nil {
			g.genBranch(s.Expr, lBody, lExit, lExit)
		} else {
			g.jump(lBody)
		}
		g.startBlock(lExit)
		g.popScope()
	case SSwitch:
		g.genSwitch(s)
	case SBreak:
		if len(g.breaks) == 0 {
			panic(errf(s.Line, "break outside loop or switch"))
		}
		g.jump(g.breaks[len(g.breaks)-1])
		g.startBlock(g.f.NewLabel()) // unreachable continuation
	case SContinue:
		if len(g.conts) == 0 {
			panic(errf(s.Line, "continue outside loop"))
		}
		g.jump(g.conts[len(g.conts)-1])
		g.startBlock(g.f.NewLabel())
	case SGoto:
		l, ok := g.userLabels[s.Name]
		if !ok {
			l = g.f.NewLabel()
			g.userLabels[s.Name] = l
			if _, seen := g.usedLabels[s.Name]; !seen {
				g.usedLabels[s.Name] = s.Line
			}
		}
		g.jump(l)
		g.startBlock(g.f.NewLabel())
	case SLabel:
		l, ok := g.userLabels[s.Name]
		if !ok {
			l = g.f.NewLabel()
			g.userLabels[s.Name] = l
		}
		delete(g.usedLabels, s.Name)
		g.startBlock(l)
	case SReturn:
		if s.Expr != nil {
			if g.fd.Ret.Kind == TyVoid {
				panic(errf(s.Line, "return with value in void function %q", g.fd.Name))
			}
			v := decay(g.addressIfArray(s.Expr))
			if v.typ != nil && v.typ.Kind == TyVoid {
				panic(errf(s.Line, "returning a void value"))
			}
			g.emit(rtl.Inst{Kind: rtl.Ret, Src: v.op})
		} else {
			g.emit(rtl.Inst{Kind: rtl.Ret, Src: rtl.None()})
		}
		g.startBlock(g.f.NewLabel())
	default:
		panic(errf(s.Line, "unsupported statement"))
	}
}

func (g *generator) genDecl(s *Stmt) {
	d := s.Decl
	if d.Type.Kind == TyVoid {
		panic(errf(s.Line, "variable %q has void type", d.Name))
	}
	off := g.allocLocal(d.Type.SizeCells())
	g.scope.define(s.Line, d.Name, &symbol{kind: symLocal, typ: d.Type, off: off})
	if d.Type.IsScalar() {
		g.f.ScalarLocals = append(g.f.ScalarLocals, off)
	}
	switch {
	case d.HasStr:
		for i, ch := range []byte(d.StrInit) {
			g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.Local(off + int64(i)), Src: rtl.Imm(int64(ch))})
		}
		g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.Local(off + int64(len(d.StrInit))), Src: rtl.Imm(0)})
	case d.ArrayInit != nil:
		for i, e := range d.ArrayInit {
			v := g.genExpr(e)
			g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.Local(off + int64(i)), Src: v.op})
		}
	case d.Init != nil:
		v := decay(g.addressIfArray(d.Init))
		g.emit(rtl.Inst{Kind: rtl.Move, Dst: rtl.Local(off), Src: v.op})
	}
}

func (g *generator) genSwitch(s *Stmt) {
	sel := g.intoReg(g.genExpr(s.Expr))
	lEnd := g.f.NewLabel()
	lDefault := lEnd
	type caseInfo struct {
		val   int64
		label rtl.Label
	}
	var cases []caseInfo
	caseLabels := make([]rtl.Label, len(s.Cases))
	seen := map[int64]bool{}
	for i, cs := range s.Cases {
		caseLabels[i] = g.f.NewLabel()
		if cs.IsDefault {
			if lDefault != lEnd {
				panic(errf(s.Line, "multiple default cases in switch"))
			}
			lDefault = caseLabels[i]
			continue
		}
		if seen[cs.Val] {
			panic(errf(s.Line, "duplicate case value %d", cs.Val))
		}
		seen[cs.Val] = true
		cases = append(cases, caseInfo{cs.Val, caseLabels[i]})
	}
	// Dense value sets use a jump table (an indirect jump, which the
	// replication algorithm must exclude); sparse sets use a compare chain.
	lo, hi := int64(0), int64(0)
	if len(cases) > 0 {
		lo, hi = cases[0].val, cases[0].val
		for _, ci := range cases {
			if ci.val < lo {
				lo = ci.val
			}
			if ci.val > hi {
				hi = ci.val
			}
		}
	}
	span := hi - lo + 1
	if len(cases) >= 4 && span <= 3*int64(len(cases)) {
		g.emit(rtl.Inst{Kind: rtl.Cmp, Src: sel.op, Src2: rtl.Imm(lo)})
		g.emit(rtl.Inst{Kind: rtl.Br, BrRel: rtl.Lt, Target: lDefault})
		g.startBlock(g.f.NewLabel())
		g.emit(rtl.Inst{Kind: rtl.Cmp, Src: sel.op, Src2: rtl.Imm(hi)})
		g.emit(rtl.Inst{Kind: rtl.Br, BrRel: rtl.Gt, Target: lDefault})
		g.startBlock(g.f.NewLabel())
		table := make([]rtl.Label, span)
		for i := range table {
			table[i] = lDefault
		}
		for _, ci := range cases {
			table[ci.val-lo] = ci.label
		}
		g.emit(rtl.Inst{Kind: rtl.IJmp, Src: sel.op, Lo: lo, Table: table})
	} else {
		for _, ci := range cases {
			g.emit(rtl.Inst{Kind: rtl.Cmp, Src: sel.op, Src2: rtl.Imm(ci.val)})
			g.emit(rtl.Inst{Kind: rtl.Br, BrRel: rtl.Eq, Target: ci.label})
			g.startBlock(g.f.NewLabel())
		}
		g.jump(lDefault)
	}
	g.breaks = append(g.breaks, lEnd)
	for i, cs := range s.Cases {
		g.startBlock(caseLabels[i])
		for _, st := range cs.Body {
			g.genStmt(st)
		}
		// fall through to the next case, as in C
	}
	g.breaks = g.breaks[:len(g.breaks)-1]
	g.startBlock(lEnd)
}
