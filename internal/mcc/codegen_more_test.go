package mcc_test

import (
	"testing"

	"repro/internal/mcc"
	"repro/internal/vm"
)

// run compiles and executes, returning the output.
func run(t *testing.T, src, input string) string {
	t.Helper()
	prog, err := mcc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := vm.Run(prog, vm.Config{Input: []byte(input)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return string(res.Output)
}

func TestPointerCompoundAssign(t *testing.T) {
	got := run(t, `
int a[10];
int main() {
	int *p, *q;
	int i;
	for (i = 0; i < 10; i++) a[i] = i * i;
	p = a;
	p += 3;
	printint(*p); putchar(' ');
	p -= 2;
	printint(*p); putchar(' ');
	q = &a[9];
	printint(q - p); putchar(' ');
	printint(*--q); putchar(' ');
	printint(*++q);
	return 0;
}`, "")
	if got != "9 1 8 64 81" {
		t.Errorf("got %q", got)
	}
}

func TestRowPointerParameters(t *testing.T) {
	got := run(t, `
int m[3][4];
int rowsum(int *row, int n) {
	int s, j;
	s = 0;
	for (j = 0; j < n; j++)
		s += row[j];
	return s;
}
int main() {
	int i, j;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			m[i][j] = i * 10 + j;
	printint(rowsum(m[1], 4)); putchar(' ');
	printint(rowsum(m[2], 4));
	return 0;
}`, "")
	if got != "46 86" { // 10+11+12+13, 20+21+22+23
		t.Errorf("got %q", got)
	}
}

func TestNestedTernary(t *testing.T) {
	got := run(t, `
int sign(int x) { return x < 0 ? -1 : x > 0 ? 1 : 0; }
int main() {
	printint(sign(-5)); putchar(' ');
	printint(sign(0)); putchar(' ');
	printint(sign(7));
	return 0;
}`, "")
	if got != "-1 0 1" {
		t.Errorf("got %q", got)
	}
}

func TestNegativeDivisionLikeC(t *testing.T) {
	got := run(t, `
int main() {
	printint(-7 / 2); putchar(' ');
	printint(-7 % 2); putchar(' ');
	printint(7 / -2); putchar(' ');
	printint(7 % -2);
	return 0;
}`, "")
	if got != "-3 -1 -3 1" {
		t.Errorf("got %q (C truncating division)", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	got := run(t, `
int n = 0;
int bump() { n++; return 1; }
int main() {
	int x;
	x = 0 && bump();
	x = x + (1 || bump());
	printint(n); putchar(' ');
	printint(x);
	return 0;
}`, "")
	if got != "0 1" {
		t.Errorf("got %q (short-circuit evaluated operands it must skip)", got)
	}
}

func TestWhileConditionAssignment(t *testing.T) {
	got := run(t, `
int main() {
	int c, sum;
	sum = 0;
	while ((c = getchar()) != -1 && c != 'q')
		sum += c - '0';
	printint(sum);
	return 0;
}`, "123q99")
	if got != "6" {
		t.Errorf("got %q", got)
	}
}

func TestDoWhileContinue(t *testing.T) {
	// continue in a do-while must jump to the condition, not the top.
	got := run(t, `
int main() {
	int i, s;
	i = 0; s = 0;
	do {
		i++;
		if (i % 2 == 0)
			continue;
		s += i;
	} while (i < 8);
	printint(s);
	return 0;
}`, "")
	if got != "16" { // 1+3+5+7
		t.Errorf("got %q", got)
	}
}

func TestGotoOutOfNestedLoops(t *testing.T) {
	got := run(t, `
int main() {
	int i, j, found;
	found = -1;
	for (i = 0; i < 10; i++)
		for (j = 0; j < 10; j++)
			if (i * j == 42) {
				found = i * 100 + j;
				goto out;
			}
out:
	printint(found);
	return 0;
}`, "")
	if got != "607" {
		t.Errorf("got %q", got)
	}
}

func TestCharPointerWalk(t *testing.T) {
	got := run(t, `
int streq(char *a, char *b) {
	while (*a != '\0' && *a == *b) { a++; b++; }
	return *a == *b;
}
int main() {
	printint(streq("abc", "abc")); putchar(' ');
	printint(streq("abc", "abd")); putchar(' ');
	printint(streq("ab", "abc"));
	return 0;
}`, "")
	if got != "1 0 0" {
		t.Errorf("got %q", got)
	}
}

func TestGlobalPointerInitRejected(t *testing.T) {
	// Global initializers must be integer constant expressions; a string
	// constant's address is only known at load time, so the front end
	// rejects it (initialize in main instead, as the Table-3 programs do).
	if _, err := mcc.Compile(`
char *msg = "hi";
int main() { printstr(msg); return 0; }`); err == nil {
		t.Error("global pointer initializer should be rejected")
	}
}

func TestHexAndCharLiterals(t *testing.T) {
	got := run(t, `
int main() {
	printint(0xFF); putchar(' ');
	printint('A'); putchar(' ');
	printint('\n'); putchar(' ');
	printint('\\');
	return 0;
}`, "")
	if got != "255 65 10 92" {
		t.Errorf("got %q", got)
	}
}

func TestDeepExpression(t *testing.T) {
	got := run(t, `
int main() {
	int a, b, c, d;
	a = 2; b = 3; c = 5; d = 7;
	printint(((a + b) * (c - d) ^ (a << b)) & ~(d - c) | (b % a));
	return 0;
}`, "")
	want := ((2+3)*(5-7)^(2<<3)) & ^(7-5) | (3 % 2)
	if got != intToStr(want) {
		t.Errorf("got %q, want %d", got, want)
	}
}

func intToStr(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	if neg {
		return "-" + string(buf)
	}
	return string(buf)
}
