package mcc

import "fmt"

// Parser builds an AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a mini-C translation unit.
func Parse(src string) (*Unit, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.unit()
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TEOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		want := tokNames[k]
		if want == "" {
			want = fmt.Sprintf("token %d", k)
		}
		return Token{}, fmt.Errorf("line %d: expected %q, found %q", p.cur().Line, want, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", p.cur().Line, fmt.Sprintf(format, args...))
}

// isTypeStart reports whether the current token starts a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case TKwInt, TKwChar, TKwVoid:
		return true
	}
	return false
}

// baseType parses int/char/void.
func (p *Parser) baseType() (*Type, error) {
	switch p.next().Kind {
	case TKwInt:
		return IntType, nil
	case TKwChar:
		return CharType, nil
	case TKwVoid:
		return VoidType, nil
	}
	p.pos--
	return nil, p.errf("expected type, found %q", p.cur())
}

// declarator parses `*... name [N]...` and returns the full type and name.
func (p *Parser) declarator(base *Type) (*Type, string, error) {
	t := base
	for p.accept(TStar) {
		t = PtrTo(t)
	}
	nameTok, err := p.expect(TIdent)
	if err != nil {
		return nil, "", err
	}
	// Array suffixes, innermost last: int a[2][3] is array(2) of array(3).
	var dims []int64
	for p.accept(TLBrack) {
		if p.accept(TRBrack) {
			dims = append(dims, -1) // unsized; must have an initializer
			continue
		}
		n, err := p.expect(TNum)
		if err != nil {
			return nil, "", err
		}
		if _, err := p.expect(TRBrack); err != nil {
			return nil, "", err
		}
		dims = append(dims, n.Val)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = ArrayOf(t, dims[i])
	}
	return t, nameTok.Text, nil
}

// unit parses the whole translation unit.
func (p *Parser) unit() (*Unit, error) {
	u := &Unit{}
	for p.cur().Kind != TEOF {
		if !p.isTypeStart() {
			return nil, p.errf("expected declaration, found %q", p.cur())
		}
		line := p.cur().Line
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		typ, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == TLParen {
			fn, err := p.funcRest(typ, name, line)
			if err != nil {
				return nil, err
			}
			u.Funcs = append(u.Funcs, fn)
			continue
		}
		// Global variable(s).
		for {
			d, err := p.declRest(typ, name, line)
			if err != nil {
				return nil, err
			}
			u.Globals = append(u.Globals, d)
			if p.accept(TComma) {
				typ, name, err = p.declarator(base)
				if err != nil {
					return nil, err
				}
				line = p.cur().Line
				continue
			}
			break
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// declRest parses the optional initializer of a declaration.
func (p *Parser) declRest(typ *Type, name string, line int) (*Decl, error) {
	d := &Decl{Name: name, Type: typ, Line: line}
	if !p.accept(TAssign) {
		if typ.Kind == TyArray && typ.N < 0 {
			return nil, p.errf("array %q needs an explicit size or initializer", name)
		}
		return d, nil
	}
	switch {
	case p.cur().Kind == TLBrace:
		p.next()
		for p.cur().Kind != TRBrace {
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			d.ArrayInit = append(d.ArrayInit, e)
			if !p.accept(TComma) {
				break
			}
		}
		if _, err := p.expect(TRBrace); err != nil {
			return nil, err
		}
		if typ.Kind != TyArray {
			return nil, p.errf("brace initializer on non-array %q", name)
		}
		if typ.N < 0 {
			d.Type = ArrayOf(typ.Elem, int64(len(d.ArrayInit)))
		}
	case p.cur().Kind == TStr && typ.Kind == TyArray && typ.Elem.Kind == TyChar:
		s := p.next()
		d.StrInit, d.HasStr = s.Text, true
		if typ.N < 0 {
			d.Type = ArrayOf(typ.Elem, int64(len(s.Text))+1)
		}
	default:
		e, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if d.Type.Kind == TyArray && d.Type.N < 0 {
		return nil, p.errf("cannot infer size of array %q", name)
	}
	return d, nil
}

// funcRest parses a function definition after its name.
func (p *Parser) funcRest(ret *Type, name string, line int) (*FuncDecl, error) {
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name, Ret: ret, Line: line}
	if !p.accept(TRParen) {
		if p.cur().Kind == TKwVoid && p.peek().Kind == TRParen {
			p.next()
			p.next()
		} else {
			for {
				base, err := p.baseType()
				if err != nil {
					return nil, err
				}
				typ, pname, err := p.declarator(base)
				if err != nil {
					return nil, err
				}
				if typ.Kind == TyArray {
					typ = PtrTo(typ.Elem) // arrays decay in parameters
				}
				fn.Params = append(fn.Params, Param{Name: pname, Type: typ})
				if !p.accept(TComma) {
					break
				}
			}
			if _, err := p.expect(TRParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// block parses `{ stmt* }`.
func (p *Parser) block() (*Stmt, error) {
	lb, err := p.expect(TLBrace)
	if err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: SBlock, Line: lb.Line}
	for p.cur().Kind != TRBrace {
		if p.cur().Kind == TEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Body = append(blk.Body, s)
	}
	p.next()
	return blk, nil
}

// localDecls parses `type declarator (= init)? (, declarator (= init)?)* ;`
// returning one SDecl per variable wrapped in an SBlock when several.
func (p *Parser) localDecls() (*Stmt, error) {
	line := p.cur().Line
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	var decls []*Stmt
	for {
		typ, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		d, err := p.declRest(typ, name, line)
		if err != nil {
			return nil, err
		}
		decls = append(decls, &Stmt{Kind: SDecl, Line: line, Decl: d})
		if !p.accept(TComma) {
			break
		}
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &Stmt{Kind: SBlock, Line: line, Body: decls, Flat: true}, nil
}

func (p *Parser) stmt() (*Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case TLBrace:
		return p.block()
	case TSemi:
		p.next()
		return &Stmt{Kind: SEmpty, Line: t.Line}, nil
	case TKwInt, TKwChar:
		return p.localDecls()
	case TKwIf:
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: SIf, Line: t.Line, Expr: cond, Then: then}
		if p.accept(TKwElse) {
			if s.Else, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case TKwWhile:
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: SWhile, Line: t.Line, Expr: cond, Then: body}, nil
	case TKwDo:
		p.next()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TKwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &Stmt{Kind: SDoWhile, Line: t.Line, Expr: cond, Then: body}, nil
	case TKwFor:
		p.next()
		if _, err := p.expect(TLParen); err != nil {
			return nil, err
		}
		s := &Stmt{Kind: SFor, Line: t.Line}
		if p.cur().Kind == TSemi {
			p.next()
			s.Init = &Stmt{Kind: SEmpty, Line: t.Line}
		} else if p.isTypeStart() {
			init, err := p.localDecls()
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TSemi); err != nil {
				return nil, err
			}
			s.Init = &Stmt{Kind: SExpr, Line: t.Line, Expr: e}
		}
		if p.cur().Kind != TSemi {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = cond
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		if p.cur().Kind != TRParen {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Then = body
		return s, nil
	case TKwSwitch:
		return p.switchStmt()
	case TKwBreak:
		p.next()
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &Stmt{Kind: SBreak, Line: t.Line}, nil
	case TKwContinue:
		p.next()
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &Stmt{Kind: SContinue, Line: t.Line}, nil
	case TKwGoto:
		p.next()
		name, err := p.expect(TIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return &Stmt{Kind: SGoto, Line: t.Line, Name: name.Text}, nil
	case TKwReturn:
		p.next()
		s := &Stmt{Kind: SReturn, Line: t.Line}
		if p.cur().Kind != TSemi {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		if _, err := p.expect(TSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TIdent:
		if p.peek().Kind == TColon {
			p.next()
			p.next()
			return &Stmt{Kind: SLabel, Line: t.Line, Name: t.Text}, nil
		}
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TSemi); err != nil {
		return nil, err
	}
	return &Stmt{Kind: SExpr, Line: t.Line, Expr: e}, nil
}

func (p *Parser) switchStmt() (*Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(TLParen); err != nil {
		return nil, err
	}
	sel, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TLBrace); err != nil {
		return nil, err
	}
	s := &Stmt{Kind: SSwitch, Line: t.Line, Expr: sel}
	var cur *SwitchCase
	for p.cur().Kind != TRBrace {
		switch p.cur().Kind {
		case TEOF:
			return nil, p.errf("unterminated switch")
		case TKwCase:
			p.next()
			neg := p.accept(TMinus)
			v, err := p.expect2(TNum, TChar)
			if err != nil {
				return nil, err
			}
			val := v.Val
			if neg {
				val = -val
			}
			if _, err := p.expect(TColon); err != nil {
				return nil, err
			}
			cur = &SwitchCase{Val: val}
			s.Cases = append(s.Cases, cur)
		case TKwDefault:
			p.next()
			if _, err := p.expect(TColon); err != nil {
				return nil, err
			}
			cur = &SwitchCase{IsDefault: true}
			s.Cases = append(s.Cases, cur)
		default:
			if cur == nil {
				return nil, p.errf("statement before first case in switch")
			}
			st, err := p.stmt()
			if err != nil {
				return nil, err
			}
			cur.Body = append(cur.Body, st)
		}
	}
	p.next()
	return s, nil
}

func (p *Parser) expect2(k1, k2 TokKind) (Token, error) {
	if p.cur().Kind == k1 || p.cur().Kind == k2 {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %q or %q, found %q", tokNames[k1], tokNames[k2], p.cur())
}

// --- expressions ---

func (p *Parser) expr() (*Expr, error) { return p.assignExpr() }

var assignOps = map[TokKind]string{
	TAssign: "", TPlusEq: "+", TMinusEq: "-", TStarEq: "*", TSlashEq: "/",
	TPercentEq: "%", TAmpEq: "&", TPipeEq: "|", TCaretEq: "^",
	TShlEq: "<<", TShrEq: ">>",
}

func (p *Parser) assignExpr() (*Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if op, ok := assignOps[p.cur().Kind]; ok {
		line := p.next().Line
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EAssign, Line: line, X: lhs, Y: rhs, Op: op}, nil
	}
	return lhs, nil
}

func (p *Parser) condExpr() (*Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(TQuest) {
		return c, nil
	}
	t, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TColon); err != nil {
		return nil, err
	}
	f, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	return &Expr{Kind: ECond, Line: c.Line, X: c, Y: t, Z: f}, nil
}

type binLevel struct {
	toks map[TokKind]string
	kind ExprKind
}

var binLevels = []binLevel{
	{map[TokKind]string{TOrOr: "||"}, ELogOr},
	{map[TokKind]string{TAndAnd: "&&"}, ELogAnd},
	{map[TokKind]string{TPipe: "|"}, EBin},
	{map[TokKind]string{TCaret: "^"}, EBin},
	{map[TokKind]string{TAmp: "&"}, EBin},
	{map[TokKind]string{TEq: "==", TNe: "!="}, ECmp},
	{map[TokKind]string{TLt: "<", TLe: "<=", TGt: ">", TGe: ">="}, ECmp},
	{map[TokKind]string{TShl: "<<", TShr: ">>"}, EBin},
	{map[TokKind]string{TPlus: "+", TMinus: "-"}, EBin},
	{map[TokKind]string{TStar: "*", TSlash: "/", TPercent: "%"}, EBin},
}

func (p *Parser) binExpr(level int) (*Expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	lv := binLevels[level]
	for {
		op, ok := lv.toks[p.cur().Kind]
		if !ok {
			return lhs, nil
		}
		line := p.next().Line
		rhs, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: lv.kind, Line: line, X: lhs, Y: rhs, Op: op}
	}
}

func (p *Parser) unaryExpr() (*Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TMinus:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ENeg, Line: t.Line, X: x}, nil
	case TBang:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ENot, Line: t.Line, X: x}, nil
	case TTilde:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EBitNot, Line: t.Line, X: x}, nil
	case TStar:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EDeref, Line: t.Line, X: x}, nil
	case TAmp:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: EAddr, Line: t.Line, X: x}, nil
	case TInc, TDec:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		d := int64(1)
		if t.Kind == TDec {
			d = -1
		}
		return &Expr{Kind: EIncDec, Line: t.Line, X: x, Prefix: true, Delta: d}, nil
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (*Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case TLBrack:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TRBrack); err != nil {
				return nil, err
			}
			e = &Expr{Kind: EIndex, Line: t.Line, X: e, Y: idx}
		case TLParen:
			if e.Kind != EVar {
				return nil, p.errf("call of non-function expression")
			}
			p.next()
			call := &Expr{Kind: ECall, Line: t.Line, Str: e.Str}
			if !p.accept(TRParen) {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TComma) {
						break
					}
				}
				if _, err := p.expect(TRParen); err != nil {
					return nil, err
				}
			}
			e = call
		case TInc, TDec:
			p.next()
			d := int64(1)
			if t.Kind == TDec {
				d = -1
			}
			e = &Expr{Kind: EIncDec, Line: t.Line, X: e, Delta: d}
		default:
			return e, nil
		}
	}
}

func (p *Parser) primaryExpr() (*Expr, error) {
	t := p.next()
	switch t.Kind {
	case TNum, TChar:
		return &Expr{Kind: ENum, Line: t.Line, Val: t.Val}, nil
	case TStr:
		return &Expr{Kind: EStr, Line: t.Line, Str: t.Text}, nil
	case TIdent:
		return &Expr{Kind: EVar, Line: t.Line, Str: t.Text}, nil
	case TLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	p.pos--
	return nil, p.errf("unexpected %q in expression", t)
}
