package mcc

import (
	"fmt"
	"strings"
)

// TypeKind enumerates mini-C types.
type TypeKind uint8

// Type kinds.
const (
	TyInt TypeKind = iota
	TyChar
	TyVoid
	TyPtr
	TyArray
)

// Type is a mini-C type. The simulated machines are cell addressed: int,
// char and pointers all occupy one cell.
type Type struct {
	Kind TypeKind
	Elem *Type // TyPtr, TyArray
	N    int64 // TyArray length
}

// Predefined scalar types.
var (
	IntType  = &Type{Kind: TyInt}
	CharType = &Type{Kind: TyChar}
	VoidType = &Type{Kind: TyVoid}
)

// PtrTo returns the pointer type to t.
func PtrTo(t *Type) *Type { return &Type{Kind: TyPtr, Elem: t} }

// ArrayOf returns the array type of n elements of t.
func ArrayOf(t *Type, n int64) *Type { return &Type{Kind: TyArray, Elem: t, N: n} }

// SizeCells returns the type's size in memory cells.
func (t *Type) SizeCells() int64 {
	if t.Kind == TyArray {
		return t.N * t.Elem.SizeCells()
	}
	return 1
}

// IsScalar reports whether the type occupies a single cell.
func (t *Type) IsScalar() bool { return t.Kind != TyArray && t.Kind != TyVoid }

func (t *Type) String() string {
	switch t.Kind {
	case TyInt:
		return "int"
	case TyChar:
		return "char"
	case TyVoid:
		return "void"
	case TyPtr:
		return t.Elem.String() + "*"
	case TyArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.N)
	}
	return "?"
}

// ExprKind enumerates expression node kinds.
type ExprKind uint8

// Expression kinds.
const (
	ENum ExprKind = iota
	EStr
	EVar
	EBin    // X op Y (arithmetic/bitwise)
	ECmp    // X rel Y
	ELogAnd // X && Y
	ELogOr  // X || Y
	ENot    // !X
	ENeg    // -X
	EBitNot // ~X
	EDeref  // *X
	EAddr   // &X
	EIndex  // X[Y]
	ECall   // F(args)
	EAssign // X = Y, or compound when Op set (AugOp)
	EIncDec // ++/-- (Prefix, Delta = +1/-1)
	ECond   // X ? Y : Z
)

// Expr is an expression node.
type Expr struct {
	Kind    ExprKind
	Line    int
	Val     int64  // ENum value
	Str     string // EStr body; EVar/ECall name
	X, Y, Z *Expr
	Args    []*Expr // ECall
	Op      string  // EBin/ECmp operator text; EAssign compound operator ("" for plain)
	Prefix  bool    // EIncDec
	Delta   int64   // EIncDec: +1 or -1

	// Filled by the type checker.
	Type *Type
}

// StmtKind enumerates statement node kinds.
type StmtKind uint8

// Statement kinds.
const (
	SExpr StmtKind = iota
	SDecl
	SIf
	SWhile
	SFor
	SDoWhile
	SSwitch
	SBreak
	SContinue
	SGoto
	SLabel
	SReturn
	SBlock
	SEmpty
)

// SwitchCase is one case (or default, when IsDefault) of a switch.
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Body      []*Stmt
}

// Stmt is a statement node.
type Stmt struct {
	Kind  StmtKind
	Line  int
	Expr  *Expr   // SExpr, SReturn (may be nil), SIf/SWhile/SDoWhile/SSwitch condition/selector
	Init  *Stmt   // SFor init (SExpr/SDecl/SEmpty)
	Post  *Expr   // SFor increment (may be nil)
	Then  *Stmt   // SIf then, loop bodies
	Else  *Stmt   // SIf else (may be nil)
	Body  []*Stmt // SBlock
	Cases []*SwitchCase
	Name  string // SGoto/SLabel label name
	Decl  *Decl  // SDecl
	// Flat marks an SBlock that groups several declarations from one
	// source statement (`int a, b;`) and must not open a new scope.
	Flat bool
}

// Decl declares one variable (global or local).
type Decl struct {
	Name string
	Type *Type
	Line int
	// Init is a scalar initializer expression (may be nil).
	Init *Expr
	// ArrayInit is a brace initializer list for arrays (may be nil).
	ArrayInit []*Expr
	// StrInit initializes a char array from a string literal.
	StrInit string
	HasStr  bool
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *Stmt // SBlock
	Line   int
}

// Unit is a parsed translation unit.
type Unit struct {
	Globals []*Decl
	Funcs   []*FuncDecl
}

// String gives a short description of the unit, for diagnostics.
func (u *Unit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "unit: %d globals, %d funcs [", len(u.Globals), len(u.Funcs))
	for i, f := range u.Funcs {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(f.Name)
	}
	b.WriteString("]")
	return b.String()
}
