package difftest

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// TestMinimizeSyntheticPredicates: table-driven shrinks against cheap
// predicates, checking both that the result still fails and that it got
// meaningfully smaller.
func TestMinimizeSyntheticPredicates(t *testing.T) {
	for _, tc := range []struct {
		name  string
		src   string
		fails func(string) bool
		// maxLen bounds the acceptable minimized size.
		maxLen int
	}{
		{
			name: "keyword-anywhere",
			src: "int f(int a, int b) { return a + b; }\n" +
				"int main() { int x; x = 3; while (x > 0) x = x - 1; return f(x, 2); }\n",
			// The minimizer works at line granularity, so the best result
			// is main's line alone with the helper dropped.
			fails:  func(s string) bool { return strings.Contains(s, "while") },
			maxLen: 75,
		},
		{
			name:   "needs-two-lines",
			src:    "int g;\nint h;\nint main() { g = 1; h = 2; return g + h; }\n",
			fails:  func(s string) bool { return strings.Contains(s, "g = 1") && strings.Contains(s, "h = 2") },
			maxLen: 60,
		},
		{
			name: "block-removal",
			src: "int main() {\n" +
				"  int i;\n" +
				"  for (i = 0; i < 4; i++) {\n" +
				"    if (i > 2) {\n" +
				"      i = i + 0;\n" +
				"    }\n" +
				"  }\n" +
				"  return 7;\n" +
				"}\n",
			fails:  func(s string) bool { return strings.Contains(s, "return 7") },
			maxLen: 40,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Minimize(tc.src, tc.fails, MinOptions{})
			if !tc.fails(got) {
				t.Fatalf("minimized program no longer fails:\n%s", got)
			}
			if len(got) > tc.maxLen {
				t.Errorf("minimized to %d bytes, want <= %d:\n%s", len(got), tc.maxLen, got)
			}
			if len(got) > len(tc.src) {
				t.Errorf("minimizer grew the input: %d -> %d bytes", len(tc.src), len(got))
			}
		})
	}
}

// TestMinimizeNeverReturnsNonFailing: if the predicate rejects everything
// but the original, Minimize must return the original unchanged.
func TestMinimizeNeverReturnsNonFailing(t *testing.T) {
	src := "int main() { return 1; }\n"
	got := Minimize(src, func(s string) bool { return s == src }, MinOptions{})
	if got != src {
		t.Fatalf("got %q, want the original back", got)
	}
}

// TestMinimizeOracleFailure shrinks a real oracle counterexample: with the
// reducibility rollback disabled, a goto-machine seed fails the oracle, and
// the minimized program must still fail it while dropping a good share of
// the generated bulk.
func TestMinimizeOracleFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full oracle per shrink attempt")
	}
	broken := Options{
		Replication: replicate.Options{ForceKeepIrreducible: true},
		Machines:    []*machine.Machine{machine.M68020},
		Levels:      []pipeline.Level{pipeline.Jumps},
		SkipDynamic: true,
	}
	fails := func(src string) bool {
		v := Check(src, broken)
		for _, vi := range v.Violations {
			if vi.Kind == VIrreducible {
				return true
			}
		}
		return false
	}

	// Find a failing seed the same way cmd/fuzzjump -inject does.
	var src string
	for seed := int64(1); seed <= 30; seed++ {
		if s := Generate(seed); fails(s) {
			src = s
			break
		}
	}
	if src == "" {
		t.Fatal("no seed in 1..30 trips the broken rollback")
	}

	got := Minimize(src, fails, MinOptions{MaxAttempts: 300})
	if !fails(got) {
		t.Fatalf("minimized program no longer fails the oracle:\n%s", got)
	}
	if len(got) >= len(src) {
		t.Errorf("minimizer made no progress: %d -> %d bytes", len(src), len(got))
	}
	t.Logf("minimized %d -> %d bytes", len(src), len(got))
}
