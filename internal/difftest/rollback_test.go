package difftest

import (
	"testing"

	"repro/internal/mcc"
	"repro/internal/replicate"
)

// TestUndoLogRestoresGeneratedPrograms is the undo-log acceptance test at
// fuzzing scale: over a band of generated programs, force every guarded
// duplication (JUMPS splices and DUPS folds alike) to roll back and require
// the function to come back byte-identical — text, fresh-label counter and
// block count. This is the same fault the `fuzzjump -inject undo` campaign
// drives through the full oracle.
func TestUndoLogRestoresGeneratedPrograms(t *testing.T) {
	opts := replicate.Options{ForceRollback: true}
	for seed := int64(1); seed <= 25; seed++ {
		prog, err := mcc.Compile(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range prog.Funcs {
			before := f.String()
			mark := f.LabelMark()
			blocks := len(f.Blocks)
			res := replicate.DUPS(f, opts)
			if res.Replications != 0 || res.BranchesFolded != 0 {
				t.Fatalf("seed %d %s: applied work under ForceRollback: %+v", seed, f.Name, res)
			}
			if got := f.String(); got != before {
				t.Errorf("seed %d %s: rollback not byte-identical\ngot:\n%s\nwant:\n%s",
					seed, f.Name, got, before)
			}
			if got := f.LabelMark(); got != mark {
				t.Errorf("seed %d %s: label counter not rewound: got %v, want %v",
					seed, f.Name, got, mark)
			}
			if got := len(f.Blocks); got != blocks {
				t.Errorf("seed %d %s: block count changed: got %d, want %d",
					seed, f.Name, got, blocks)
			}
		}
	}
}
