package difftest

import "strings"

// MinOptions bounds the minimizer's search.
type MinOptions struct {
	// MaxAttempts caps calls to the failure predicate (0 = default 800).
	// Each attempt typically costs one full oracle check.
	MaxAttempts int
}

func (o MinOptions) maxAttempts() int {
	if o.MaxAttempts == 0 {
		return 800
	}
	return o.MaxAttempts
}

// Minimize shrinks a failing program to a smaller one that still fails.
// fails must return true for src itself; candidates that no longer compile
// must simply return false (the oracle's skipped verdict does this).
// The result is deterministic for a deterministic predicate.
//
// The search interleaves two strategies until neither makes progress or
// the attempt budget runs out: ddmin-style removal of contiguous line
// chunks (halving chunk sizes), and removal of whole brace-balanced
// regions, which unwraps loops, if-arms and goto-machine segments that
// line chunks alone cannot drop without breaking syntax.
func Minimize(src string, fails func(string) bool, o MinOptions) string {
	attempts := 0
	budget := func() bool { attempts++; return attempts <= o.maxAttempts() }
	try := func(candidate string) bool {
		if !budget() {
			return false
		}
		return fails(candidate)
	}

	lines := splitLines(src)
	// Splitting normalizes trailing newlines; if even that normalization
	// breaks the predicate, the original is already minimal for us.
	if joined := strings.Join(lines, "\n"); joined != src && !fails(joined) {
		return src
	}
	for progress := true; progress; {
		progress = false
		// Blocks first: on brace-heavy generated programs whole-region
		// removal is far more likely to keep the candidate compiling, so it
		// makes progress before the chunk sweep can exhaust the budget on
		// syntactically broken candidates.
		if next, ok := shrinkBlocks(lines, try); ok {
			lines, progress = next, true
		}
		if next, ok := shrinkChunks(lines, try); ok {
			lines, progress = next, true
		}
		if attempts > o.maxAttempts() {
			break
		}
	}
	return strings.Join(lines, "\n")
}

func splitLines(src string) []string {
	lines := strings.Split(src, "\n")
	// Drop trailing blank lines so joins stay tidy.
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// shrinkChunks is one ddmin sweep: for chunk sizes n/2, n/4, …, 1 it tries
// deleting every aligned chunk. Returns the reduced lines and whether any
// deletion stuck.
func shrinkChunks(lines []string, try func(string) bool) ([]string, bool) {
	improved := false
	for size := (len(lines) + 1) / 2; size >= 1; size /= 2 {
		for start := 0; start+size <= len(lines); {
			candidate := make([]string, 0, len(lines)-size)
			candidate = append(candidate, lines[:start]...)
			candidate = append(candidate, lines[start+size:]...)
			if try(strings.Join(candidate, "\n")) {
				lines, improved = candidate, true
				// Same start now addresses the next chunk.
				continue
			}
			start++
		}
	}
	return lines, improved
}

// shrinkBlocks tries deleting whole brace-balanced regions: for each line
// that opens at least one brace, the region through its matching close.
// The region includes the opening line, so `for (...) {` … `}` and
// `} else {` … `}` bodies vanish as a unit.
func shrinkBlocks(lines []string, try func(string) bool) ([]string, bool) {
	improved := false
	for start := 0; start < len(lines); {
		end := matchingClose(lines, start)
		if end < 0 {
			start++
			continue
		}
		candidate := make([]string, 0, len(lines)-(end-start+1))
		candidate = append(candidate, lines[:start]...)
		candidate = append(candidate, lines[end+1:]...)
		if try(strings.Join(candidate, "\n")) {
			lines, improved = candidate, true
			continue
		}
		start++
	}
	return lines, improved
}

// matchingClose returns the index of the line where the brace depth opened
// on line start returns to zero, or -1 if start opens no net braces (or
// never closes). Brace counting ignores string and char literals — good
// enough for generated programs, and a wrong count merely proposes a
// candidate the predicate rejects.
func matchingClose(lines []string, start int) int {
	depth := braceDelta(lines[start])
	if depth <= 0 {
		return -1
	}
	for i := start + 1; i < len(lines); i++ {
		depth += braceDelta(lines[i])
		if depth <= 0 {
			return i
		}
	}
	return -1
}

func braceDelta(line string) int {
	d := 0
	inStr, inChar := false, false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == '{':
			d++
		case c == '}':
			d--
		}
	}
	return d
}
