package difftest

import (
	"strings"
	"testing"

	"repro/internal/mcc"
	"repro/internal/vm"
)

// TestGenerateDeterministic: the generator is a pure function of the seed.
func TestGenerateDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts GenOptions
	}{
		{"default", GenOptions{}},
		{"nogoto", GenOptions{NoGoto: true}},
		{"noinput", GenOptions{NoInput: true}},
		{"deep", GenOptions{MaxLoopDepth: 3, StmtBudget: 40}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				a := GenerateWith(seed, tc.opts)
				b := GenerateWith(seed, tc.opts)
				if a != b {
					t.Fatalf("seed %d: two generations differ", seed)
				}
			}
		})
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		distinct[Generate(seed)] = true
	}
	if len(distinct) < 19 {
		t.Fatalf("only %d distinct programs from 20 seeds", len(distinct))
	}
}

// TestGenerateWellDefined: every generated program compiles and its
// reference interpretation terminates well under the oracle's step budget.
func TestGenerateWellDefined(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(1); seed <= seeds; seed++ {
		src := Generate(seed)
		prog, err := mcc.Compile(src)
		if err != nil {
			t.Fatalf("seed %d does not compile: %v\n%s", seed, err, src)
		}
		res, err := vm.Run(prog, vm.Config{Input: []byte("abc"), MaxSteps: 10_000_000})
		if err != nil {
			t.Fatalf("seed %d reference run: %v\n%s", seed, err, src)
		}
		if res.ExitCode < 0 || res.ExitCode > 63 {
			t.Errorf("seed %d: exit code %d outside the generator's 0..63 range", seed, res.ExitCode)
		}
	}
}

func TestGenerateOptions(t *testing.T) {
	sawGoto := false
	for seed := int64(1); seed <= 30; seed++ {
		if strings.Contains(GenerateWith(seed, GenOptions{NoGoto: true}), "goto") {
			t.Fatalf("seed %d: NoGoto program contains goto", seed)
		}
		if strings.Contains(GenerateWith(seed, GenOptions{NoInput: true}), "getchar") {
			t.Fatalf("seed %d: NoInput program contains getchar", seed)
		}
		if strings.Contains(Generate(seed), "goto") {
			sawGoto = true
		}
	}
	if !sawGoto {
		t.Error("no default-options seed in 1..30 generated a goto — grammar coverage lost")
	}
}

// TestGenerateGotoMachineCoverage: the unstructured construct the paper
// targets must actually appear with reasonable frequency.
func TestGenerateGotoMachineCoverage(t *testing.T) {
	machines := 0
	for seed := int64(1); seed <= 40; seed++ {
		// The dispatcher guard is the machine's signature line.
		if strings.Contains(Generate(seed), "<= 0) goto") {
			machines++
		}
	}
	if machines < 5 {
		t.Errorf("only %d of 40 seeds contain a goto machine", machines)
	}
}
