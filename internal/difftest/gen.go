// Package difftest is the differential-testing harness for the paper's
// central claim: code replication (JUMPS) is semantics-preserving. It
// provides a seeded random generator of well-defined mini-C programs, an
// oracle that compiles each program at SIMPLE, LOOPS and JUMPS for both
// machine models and demands identical observable behaviour plus
// structural invariants of the optimized code, and a test-case minimizer
// that shrinks a failing program to a small reproducer.
//
// The generator and oracle back three consumers: the in-tree seeded smoke
// tests, the native `go test -fuzz` targets, and cmd/fuzzjump's long
// offline campaigns.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenOptions tunes the program generator. The zero value is the default
// configuration used by the fuzz targets and cmd/fuzzjump.
type GenOptions struct {
	// MaxLoopDepth caps loop nesting (0 = default 2). Trip counts are kept
	// small, so even nested loops execute in microseconds.
	MaxLoopDepth int
	// StmtBudget caps the roughly-counted number of generated statements
	// per function body (0 = default 28).
	StmtBudget int
	// NoGoto disables the goto-machine and forward-skip constructs,
	// producing only structured control flow.
	NoGoto bool
	// NoInput disables getchar(); programs then ignore Oracle input.
	NoInput bool
}

func (o GenOptions) maxLoopDepth() int {
	if o.MaxLoopDepth == 0 {
		return 2
	}
	return o.MaxLoopDepth
}

func (o GenOptions) stmtBudget() int {
	if o.StmtBudget == 0 {
		return 28
	}
	return o.StmtBudget
}

// Generate returns the source of a random but well-defined mini-C program
// for the seed, under default options. The same seed always yields the
// same source. Every generated program terminates: loops are bounded
// counter loops, goto machines carry an explicit fuel counter, and all
// arithmetic is total (divisions and modulos have nonzero denominators,
// array indices are reduced modulo the array size). Any behavioural
// difference between optimization levels is therefore a compiler bug.
func Generate(seed int64) string { return GenerateWith(seed, GenOptions{}) }

// GenerateWith is Generate with explicit options.
func GenerateWith(seed int64, o GenOptions) string {
	g := &gen{
		r:         rand.New(rand.NewSource(seed)), // det:allow nodeterminism — seeded PRNG, deterministic per seed
		o:         o,
		protected: map[string]bool{},
	}
	return g.program()
}

// gen holds the generator state for one program. Determinism note: the
// generator must never iterate over a map — maps are membership sets only.
type gen struct {
	r *rand.Rand // det:allow nodeterminism — seeded PRNG, deterministic per seed
	o GenOptions
	b strings.Builder

	ind    int
	scopes [][]string // declared variables per lexical depth
	nvar   int
	nlabel int
	funcs  []string // earlier helper functions, each (int, int) -> int

	depth     int // statement nesting depth
	loops     int // current loop nesting
	inHelper  bool
	inMachine bool // inside a goto-machine state segment
	stmts     int  // statements emitted in the current function

	// protected holds live loop counters and goto-machine state variables;
	// assignments must not touch them or the termination argument breaks.
	protected map[string]bool
}

func (g *gen) w(format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) pushScope() { g.scopes = append(g.scopes, nil) }
func (g *gen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) declare() string {
	name := fmt.Sprintf("v%d", g.nvar)
	g.nvar++
	g.scopes[len(g.scopes)-1] = append(g.scopes[len(g.scopes)-1], name)
	return name
}

func (g *gen) declareFresh() string {
	name := g.declare()
	g.w("int %s;", name)
	return name
}

func (g *gen) label() string {
	g.nlabel++
	return fmt.Sprintf("L%d", g.nlabel)
}

func (g *gen) anyVar() string {
	var all []string
	for _, s := range g.scopes {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return "0"
	}
	return all[g.r.Intn(len(all))]
}

// assignVar picks a variable safe to overwrite (not a protected counter).
func (g *gen) assignVar() string {
	for try := 0; try < 8; try++ {
		v := g.anyVar()
		if v != "0" && !g.protected[v] {
			return v
		}
	}
	return g.declareFresh()
}

// expr produces a side-effect-free integer expression of bounded depth.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprint(g.r.Intn(100) - 50)
		case 1:
			return g.anyVar()
		default:
			return fmt.Sprintf("garr[((%s) %% 16 + 16) %% 16]", g.anyVar())
		}
	}
	a, b := g.expr(depth-1), g.expr(depth-1)
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / ((%s) %% 7 + 8))", a, b) // denominator 1..14
	case 4:
		return fmt.Sprintf("(%s %% ((%s) %% 7 + 8))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s << %d)", a, g.r.Intn(4))
	default:
		if len(g.funcs) > 0 && depth >= 2 && g.loops == 0 {
			// Calls only outside loops: chains through the helpers would
			// otherwise multiply trip counts into huge step counts.
			return fmt.Sprintf("%s(%s, %s)", g.funcs[g.r.Intn(len(g.funcs))], a, b)
		}
		return fmt.Sprintf("(%s | %s)", a, b)
	}
}

func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	case 1:
		return fmt.Sprintf("%s || %s %s %s", c, g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	}
	return c
}

// block emits a braced scope holding n statements.
func (g *gen) block(n int) {
	g.ind++
	g.pushScope()
	for i := 0; i < n; i++ {
		g.stmt()
	}
	g.popScope()
	g.ind--
}

func (g *gen) stmt() {
	g.stmts++
	if g.depth > 4 || g.stmts > g.o.stmtBudget() {
		g.w("%s = %s;", g.assignVar(), g.expr(1))
		return
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.r.Intn(15) {
	case 0, 1:
		g.w("%s = %s;", g.assignVar(), g.expr(2))
	case 2:
		g.w("garr[((%s) %% 16 + 16) %% 16] = %s;", g.anyVar(), g.expr(2))
	case 3:
		g.ifChain()
	case 4:
		g.forLoop()
	case 5:
		g.whileLoop()
	case 6:
		g.doWhileLoop()
	case 7:
		g.switchStmt()
	case 8:
		g.w("%s += %s;", g.assignVar(), g.expr(2))
	case 9:
		g.w("%s = %s ? %s : %s;", g.assignVar(), g.cond(), g.expr(1), g.expr(1))
	case 10:
		if g.o.NoGoto {
			g.w("%s = %s;", g.assignVar(), g.expr(2))
			return
		}
		g.forwardSkip()
	case 11:
		if g.o.NoGoto || g.loops > 0 || g.inMachine || g.stmts > g.o.stmtBudget()*2/3 {
			// Goto machines inside loops multiply fuel by trip counts, and
			// nesting them (or emitting them late in a large function)
			// balloons the replication search space; keep them at loop
			// depth 0, unnested, early.
			g.w("%s = %s;", g.assignVar(), g.expr(2))
			return
		}
		g.gotoMachine()
	case 12:
		if g.inHelper && g.depth > 1 {
			// Early return from a helper, always guarded so the fall-through
			// path stays live.
			g.w("if (%s) return %s;", g.cond(), g.expr(1))
			return
		}
		g.w("%s = %s;", g.assignVar(), g.expr(2))
	case 13:
		if g.o.NoInput {
			g.w("%s = %s;", g.assignVar(), g.expr(1))
			return
		}
		g.w("%s = getchar();", g.assignVar())
	default:
		g.w("%s = %s;", g.assignVar(), g.expr(2))
	}
}

// ifChain emits a switch-like if / else-if chain (1–3 arms + optional else).
func (g *gen) ifChain() {
	arms := 1 + g.r.Intn(3)
	for a := 0; a < arms; a++ {
		if a == 0 {
			g.w("if (%s) {", g.cond())
		} else {
			g.w("} else if (%s) {", g.cond())
		}
		g.block(1 + g.r.Intn(2))
	}
	if g.r.Intn(2) == 0 {
		g.w("} else {")
		g.block(1)
	}
	g.w("}")
}

func (g *gen) forLoop() {
	if g.loops >= g.o.maxLoopDepth() {
		g.w("%s = %s;", g.assignVar(), g.expr(2))
		return
	}
	g.loops++
	defer func() { g.loops-- }()
	i := g.declareFresh()
	g.protected[i] = true
	defer delete(g.protected, i)
	n := 2 + g.r.Intn(9)
	g.w("for (%s = 0; %s < %d; %s++) {", i, i, n, i)
	g.ind++
	g.pushScope()
	g.stmt()
	g.maybeBreakContinue(i, n)
	g.popScope()
	g.ind--
	g.w("}")
}

func (g *gen) whileLoop() {
	if g.loops >= g.o.maxLoopDepth() {
		g.w("%s = %s;", g.assignVar(), g.expr(2))
		return
	}
	g.loops++
	defer func() { g.loops-- }()
	i := g.declareFresh()
	g.protected[i] = true
	defer delete(g.protected, i)
	n := 2 + g.r.Intn(7)
	g.w("%s = 0;", i)
	g.w("while (%s < %d) {", i, n)
	g.ind++
	g.pushScope()
	g.stmt()
	g.w("%s++;", i)
	g.maybeBreakContinue(i, n)
	g.popScope()
	g.ind--
	g.w("}")
}

func (g *gen) doWhileLoop() {
	if g.loops >= g.o.maxLoopDepth() {
		g.w("%s = %s;", g.assignVar(), g.expr(2))
		return
	}
	g.loops++
	defer func() { g.loops-- }()
	i := g.declareFresh()
	g.protected[i] = true
	defer delete(g.protected, i)
	n := 2 + g.r.Intn(6)
	g.w("%s = 0;", i)
	g.w("do {")
	g.ind++
	g.pushScope()
	g.stmt()
	g.w("%s++;", i)
	g.popScope()
	g.ind--
	g.w("} while (%s < %d);", i, n)
}

// maybeBreakContinue occasionally emits a guarded break or continue. The
// guard compares the loop counter, so it cannot prevent the increment that
// already happened (while loops place it before this point).
func (g *gen) maybeBreakContinue(i string, n int) {
	switch g.r.Intn(4) {
	case 0:
		g.w("if (%s == %d) break;", i, n/2)
	case 1:
		g.w("if (%s == %d) continue;", i, n/2)
	}
}

func (g *gen) switchStmt() {
	g.w("switch ((%s) %% 5) {", g.anyVar())
	g.ind++
	for c := -4; c <= 4; c++ {
		if g.r.Intn(2) == 0 {
			continue
		}
		g.w("case %d:", c)
		g.ind++
		g.w("%s = %s;", g.assignVar(), g.expr(1))
		if g.r.Intn(3) > 0 {
			g.w("break;")
		}
		g.ind--
	}
	g.w("default:")
	g.ind++
	g.w("%s = %s;", g.assignVar(), g.expr(1))
	g.ind--
	g.ind--
	g.w("}")
}

// forwardSkip emits a guarded forward goto over a few statements — the
// jump-over-else shape that seeds unconditional jumps for replication.
func (g *gen) forwardSkip() {
	l := g.label()
	g.w("if (%s) goto %s;", g.cond(), l)
	for i := 0; i < 1+g.r.Intn(2); i++ {
		g.stmt()
	}
	g.w("%s: ;", l)
}

// gotoMachine emits a bounded unstructured state machine: a dispatcher
// label, K state segments each ending in an unconditional backward goto,
// and a fuel counter that guarantees termination. This is the construct
// the paper calls "unstructured loops, which are typically not recognized
// as loops by an optimizer" — LOOPS cannot touch it, JUMPS replicates it,
// and the reducibility rollback is exercised hard.
func (g *gen) gotoMachine() {
	k := 2 + g.r.Intn(3) // states
	fuel := 8 + g.r.Intn(17)
	s := g.declareFresh()
	f := g.declareFresh()
	g.protected[s] = true
	g.protected[f] = true
	defer delete(g.protected, s)
	defer delete(g.protected, f)

	step := g.label()
	out := g.label()
	states := make([]string, k)
	for i := range states {
		states[i] = g.label()
	}

	g.w("%s = ((%s) %% %d + %d) %% %d;", s, g.expr(1), k, k, k)
	g.w("%s = %d;", f, fuel)
	wasMachine := g.inMachine
	g.inMachine = true
	defer func() { g.inMachine = wasMachine }()

	g.w("%s: ;", step)
	g.w("if (%s <= 0) goto %s;", f, out)
	g.w("%s = %s - 1;", f, f)
	for i := 0; i < k-1; i++ {
		g.w("if (%s == %d) goto %s;", s, i, states[i])
	}
	g.w("goto %s;", states[k-1])
	for i, sl := range states {
		g.w("%s: ;", sl)
		g.block(1)
		// Next-state function; occasionally a direct hop to another state
		// (still fuel-guarded via the dispatcher on the next round).
		g.w("%s = ((%s + %d) %% %d + %d) %% %d;", s, g.expr(1), i, k, k, k)
		if g.r.Intn(4) == 0 && i+1 < k {
			g.w("if (%s == %d) goto %s;", s, i, states[i+1])
		}
		g.w("goto %s;", step)
	}
	g.w("%s: ;", out)
}

// helper emits one helper function f<idx>(int a, int b) and registers it.
func (g *gen) helper(idx int) {
	name := fmt.Sprintf("f%d", idx)
	g.inHelper = true
	g.stmts = 0
	g.w("int %s(int a, int b) {", name)
	g.ind++
	g.pushScope()
	g.scopes[0] = append(g.scopes[0], "a", "b")
	r := g.declareFresh()
	g.w("%s = 0;", r)
	for i := 0; i < 2+g.r.Intn(3); i++ {
		g.stmt()
	}
	g.w("return %s + %s;", r, g.expr(1))
	g.popScope()
	g.ind--
	g.w("}")
	g.funcs = append(g.funcs, name)
	g.inHelper = false
}

// program builds the full translation unit.
func (g *gen) program() string {
	g.w("int garr[16];")
	nf := 1 + g.r.Intn(3)
	for fi := 0; fi < nf; fi++ {
		g.helper(fi)
	}

	g.stmts = 0
	g.w("int main() {")
	g.ind++
	g.pushScope()
	for i := 0; i < 3; i++ {
		v := g.declareFresh()
		g.w("%s = %d;", v, g.r.Intn(40))
	}
	for i := 0; i < 5+g.r.Intn(6); i++ {
		g.stmt()
	}
	// Rarely, a guarded early return exercises return replication in main;
	// the oracle compares exit codes, so this path is still checked.
	if g.r.Intn(8) == 0 {
		g.w("if (%s) return ((%s) %% 64 + 64) %% 64;", g.cond(), g.expr(1))
	}
	// Checksum everything observable, then exit with a derived code.
	g.w("{")
	g.ind++
	g.w("int ck; int gi;")
	g.w("ck = 0;")
	g.w("for (gi = 0; gi < 16; gi++) ck = (ck * 31 + garr[gi]) %% 1000003;")
	g.w("printint(ck); putchar(' '); printint(%s);", g.anyVar())
	g.w("return ((ck) %% 64 + 64) %% 64;")
	g.ind--
	g.w("}")
	g.popScope()
	g.ind--
	g.w("}")
	return g.b.String()
}
