package difftest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// compileWithEngine compiles src at the JUMPS level with the given path
// engine, returning the OmitTimings JSONL replication decision trace and
// the final program text.
func compileWithEngine(t *testing.T, src string, engine replicate.PathEngine) (trace []byte, text string) {
	t.Helper()
	prog, err := mcc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	w.OmitTimings = true
	pipeline.Optimize(prog, pipeline.Config{
		Machine: machine.M68020,
		Level:   pipeline.Jumps,
		Replication: replicate.Options{
			Engine: engine,
			Tracer: w,
			// A tight growth cap keeps the 400 full-pipeline compiles
			// fast; every replication decision up to the cap is still
			// compared, and engine equivalence does not depend on the
			// ceiling (the replicate package cross-checks the engines
			// query-by-query on random graphs).
			MaxFuncRTLs: 1500,
		},
	})
	if err := w.Err(); err != nil {
		t.Fatalf("trace: %v", err)
	}
	var sb bytes.Buffer
	for _, f := range prog.Funcs {
		fmt.Fprintf(&sb, "%s\n", f)
	}
	return buf.Bytes(), sb.String()
}

// TestEngineEquivalenceSeeds is the fuzz-scale differential proof for the
// dual path engines (see internal/replicate/engine.go): 200 generated
// programs are compiled through the full JUMPS pipeline twice, once with
// the paper's all-pairs matrix and once with the on-demand oracle, and the
// JSONL replication decision traces — every jump considered, every
// candidate sequence with its RTL cost, every rollback and outcome — must
// be byte-identical, as must the optimized code itself.
func TestEngineEquivalenceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential sweep")
	}
	const seeds = 200
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel() // seeds are independent; the pipeline is audited for concurrent use
			src := Generate(seed)
			mTrace, mText := compileWithEngine(t, src, replicate.EngineMatrix)
			oTrace, oText := compileWithEngine(t, src, replicate.EngineOracle)
			if !bytes.Equal(mTrace, oTrace) {
				t.Fatalf("seed %d: decision traces differ\nmatrix:\n%s\noracle:\n%s", seed, clip(mTrace), clip(oTrace))
			}
			if mText != oText {
				t.Fatalf("seed %d: optimized code differs", seed)
			}
		})
	}
}
