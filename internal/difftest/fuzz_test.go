package difftest

import (
	"os"
	"testing"
)

// FuzzGenerated is the CI smoke target: the fuzzer explores the seed space
// of the program generator, and every generated program must satisfy the
// full differential oracle — both machines, all three levels. A 60-second
// `-fuzztime` run of this target is the PR gate.
func FuzzGenerated(f *testing.F) {
	// A handful of corpus seeds: each baseline entry costs a full six-cell
	// check under coverage instrumentation, and the fuzzer mutates the seed
	// space cheaply anyway.
	for seed := int64(1); seed <= 6; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := Generate(seed)
		v := Check(src, Options{
			Seed:  seed,
			Input: []byte("fuzz"),
			// Generated programs finish in well under this; a tighter
			// budget keeps throughput high.
			MaxSteps: 10_000_000,
			// Run the semantic verifier after every pass so a violation is
			// attributed to the pass that introduced it.
			VerifyEach: true,
		})
		if v.Skipped {
			t.Fatalf("seed %d skipped (generator emitted ill-defined program): %s\n%s",
				seed, v.SkipReason, src)
		}
		for _, vi := range v.Violations {
			t.Errorf("seed %d: %s", seed, vi)
		}
		if t.Failed() {
			t.Logf("program:\n%s", src)
		}
	})
}

// FuzzDifferential mutates raw mini-C source. Inputs that do not compile or
// whose reference interpretation traps are skipped by the oracle (wild code
// has no defined behaviour to compare); everything that runs cleanly must
// agree across all six optimized builds.
func FuzzDifferential(f *testing.F) {
	f.Add("int main() { return 0; }\n")
	f.Add("int main() { int i; int s; s = 0; for (i = 0; i < 9; i++) { if (i == 4) continue; s = s + i; } return s; }\n")
	f.Add("int g[4]; int main() { int i; i = 0; L: g[i] = i; i = i + 1; if (i < 4) goto L; return g[3]; }\n")
	f.Add("int main() { int c; c = getchar(); while (c >= 0) { putchar(c); c = getchar(); } return 0; }\n")
	f.Add("int f(int n) { if (n <= 1) return 1; return n * f(n - 1); } int main() { printint(f(6)); return 0; }\n")
	if b, err := os.ReadFile("../../examples/minic/midloop.c"); err == nil {
		f.Add(string(b))
	}
	for seed := int64(1); seed <= 2; seed++ {
		f.Add(Generate(seed))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		v := Check(src, Options{
			Input:      []byte("in"),
			MaxSteps:   2_000_000,
			VerifyEach: true,
		})
		if v.Skipped {
			t.Skip(v.SkipReason)
		}
		for _, vi := range v.Violations {
			t.Errorf("%s", vi)
		}
		if t.Failed() {
			t.Logf("program:\n%s", src)
		}
	})
}
