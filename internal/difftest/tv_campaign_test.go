package difftest

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// TestTVCampaign is the translation validator's false-alarm acceptance
// gate: 200 generator seeds, each compiled across the full 12-cell machine
// × level grid with TV enabled, must produce zero rejections. TV runs
// entirely at compile time, so the campaign skips execution and the
// behavioural oracle — TestOracleSmoke and the fuzz targets cover those —
// and parallelizes seeds across GOMAXPROCS workers.
func TestTVCampaign(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 20
	}
	var (
		next  int64 = 1
		mu    sync.Mutex
		wg    sync.WaitGroup
		cells = len(machine.All()) * len(pipeline.AllLevels())
	)
	take := func() (int64, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next > seeds {
			return 0, false
		}
		s := next
		next++
		return s, true
	}
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, ok := take()
				if !ok {
					return
				}
				src := Generate(s)
				for _, m := range machine.All() {
					for _, lv := range pipeline.AllLevels() {
						prog, err := mcc.Compile(src)
						if err != nil {
							t.Errorf("seed %d: %v", s, err)
							return
						}
						st := pipeline.Optimize(prog, pipeline.Config{
							Machine: m, Level: lv, TV: true,
						})
						for _, vi := range st.Verify {
							t.Errorf("seed %d %s/%s: false alarm: %s", s, m.Name, lv, vi.String())
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	t.Logf("campaign: %d seeds × %d cells, zero TV rejections", seeds, cells)
}

// TestOracleTVVerdictKind pins the oracle-side plumbing: a translation
// rule maps to the VTranslation verdict kind, and a TV-enabled oracle run
// on a clean program stays green.
func TestOracleTVVerdictKind(t *testing.T) {
	if got := kindForRule(verify.RuleTranslation); got != VTranslation {
		t.Errorf("kindForRule(RuleTranslation) = %q, want %q", got, VTranslation)
	}
	v := Check(Generate(1), Options{
		Seed: 1, TV: true,
		Machines: []*machine.Machine{machine.M68020},
		Levels:   []pipeline.Level{pipeline.Jumps, pipeline.Dups},
	})
	if v.Failed() {
		t.Fatalf("clean program failed under TV: %v", v.Violations)
	}
}
