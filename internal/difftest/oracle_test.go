package difftest

import (
	"os"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/rtl"
	"repro/internal/vm"
)

// TestOracleSmoke: generated programs pass the full oracle — every
// registered machine, all three levels, structural and behavioural
// invariants.
func TestOracleSmoke(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	wantCells := len(machine.All()) * len(pipeline.AllLevels())
	for seed := int64(1); seed <= seeds; seed++ {
		v := Check(Generate(seed), Options{Seed: seed, Input: []byte("fuzzjump!")})
		if v.Skipped {
			t.Fatalf("seed %d skipped: %s", seed, v.SkipReason)
		}
		if v.Cells != wantCells {
			t.Fatalf("seed %d: %d cells, want %d", seed, v.Cells, wantCells)
		}
		for _, vi := range v.Violations {
			t.Errorf("seed %d: %s", seed, vi)
		}
	}
}

// TestOracleOnExample: the curated mid-loop fixture passes too.
func TestOracleOnExample(t *testing.T) {
	src, err := os.ReadFile("../../examples/minic/midloop.c")
	if err != nil {
		t.Skipf("fixture not available: %v", err)
	}
	v := Check(string(src), Options{})
	if v.Skipped {
		t.Fatalf("skipped: %s", v.SkipReason)
	}
	for _, vi := range v.Violations {
		t.Errorf("%s", vi)
	}
}

func TestOracleSkipsInvalidInput(t *testing.T) {
	for _, src := range []string{
		"",
		"int main(",
		"not C at all",
		"int main() { return x; }", // undeclared
	} {
		v := Check(src, Options{})
		if !v.Skipped {
			t.Errorf("Check(%q) not skipped", src)
		}
		if v.Failed() {
			t.Errorf("Check(%q) produced violations for invalid input", src)
		}
	}
}

// TestOracleCatchesBrokenRollback is the harness self-test the issue's
// acceptance criteria demand: deliberately disabling the reducibility
// rollback (step 6 of the paper's algorithm) must be caught by the oracle
// — and quickly, well within a 60-second budget.
func TestOracleCatchesBrokenRollback(t *testing.T) {
	broken := replicate.Options{ForceKeepIrreducible: true}
	col := &obs.Collector{}
	for seed := int64(1); seed <= 30; seed++ {
		v := Check(Generate(seed), Options{
			Seed:        seed,
			Replication: broken,
			// JUMPS on the 68020 exercises replication hardest; restricting
			// the cells keeps the scan fast.
			Machines: []*machine.Machine{machine.M68020},
			Levels:   []pipeline.Level{pipeline.Jumps},
			Tracer:   col,
		})
		for _, vi := range v.Violations {
			if vi.Kind == VIrreducible {
				// The finding must also have been reported to the tracer.
				for _, ev := range col.Events() {
					if ev.Type == obs.EvFinding && ev.Outcome == string(VIrreducible) && ev.Seed == seed {
						return
					}
				}
				t.Fatal("violation found but no obs.EvFinding emitted")
			}
		}
	}
	t.Fatal("oracle did not catch the broken rollback in 30 seeds")
}

// TestOracleCatchesMiscompile: a post-pipeline corruption of the code must
// surface as a behavioural violation. This guards the oracle's comparison
// logic itself — a differential harness that cannot see injected bugs
// guards nothing.
func TestOracleCatchesMiscompile(t *testing.T) {
	corrupt := func(m *machine.Machine, lv pipeline.Level, prog *cfg.Program) {
		// Invert the sense of main's first conditional branch.
		f := prog.Func("main")
		if f == nil {
			return
		}
		for _, b := range f.Blocks {
			for ii := range b.Insts {
				if b.Insts[ii].Kind == rtl.Br {
					b.Insts[ii].BrRel = b.Insts[ii].BrRel.Negate()
					return
				}
			}
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		v := Check(Generate(seed), Options{Seed: seed, PostOptimize: corrupt})
		for _, vi := range v.Violations {
			switch vi.Kind {
			case VOutput, VExit, VTrap, VDynamic:
				return
			}
		}
	}
	t.Fatal("oracle saw no behavioural violation from an inverted branch in 5 seeds")
}

// TestOracleCatchesSemanticCorruption: a corruption that is invisible to
// execution on most inputs (a read of a never-defined register) must still
// surface, through the semantic verifier, as a semantic-violation verdict.
func TestOracleCatchesSemanticCorruption(t *testing.T) {
	corrupt := func(m *machine.Machine, lv pipeline.Level, prog *cfg.Program) {
		// Leave a virtual register in post-regalloc code: the classic
		// incomplete-rewrite bug, caught by the virtual-after-regalloc rule.
		f := prog.Func("main")
		if f == nil {
			return
		}
		b := f.Entry()
		b.Insts = append([]rtl.Inst{{
			Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(f.NewVReg()),
		}}, b.Insts...)
	}
	v := Check(Generate(1), Options{
		Seed:         1,
		PostOptimize: corrupt,
		Machines:     []*machine.Machine{machine.M68020},
		Levels:       []pipeline.Level{pipeline.Jumps},
	})
	for _, vi := range v.Violations {
		if vi.Kind == VSemantic {
			return
		}
	}
	t.Fatalf("no %s verdict from an injected semantic corruption: %v", VSemantic, v.Violations)
}

// TestOracleVerifyEachAttribution: with VerifyEach on, a corruption
// introduced mid-pipeline is reported with the offending pass's name in
// the detail, not just as a post-pipeline finding.
func TestOracleVerifyEachAttribution(t *testing.T) {
	v := Check(Generate(1), Options{
		Seed:       1,
		VerifyEach: true,
		Machines:   []*machine.Machine{machine.M68020},
		Levels:     []pipeline.Level{pipeline.Jumps},
	})
	if v.Failed() {
		t.Fatalf("clean program failed under VerifyEach: %v", v.Violations)
	}
}

// TestOracleResidualGap documents the pipeline's §5.2 conservatism: on
// goto-heavy programs the anti-churn cutoffs may leave replicable jumps
// behind, which the opt-in residual check reports.
func TestOracleResidualGap(t *testing.T) {
	if testing.Short() {
		t.Skip("offline-campaign property, slow scan")
	}
	for _, seed := range []int64{28, 56, 4, 40, 44} {
		v := Check(Generate(seed), Options{
			Seed:          seed,
			CheckResidual: true,
			Machines:      []*machine.Machine{machine.M68020},
			Levels:        []pipeline.Level{pipeline.Jumps},
		})
		for _, vi := range v.Violations {
			if vi.Kind == VResidual {
				return // gap observed, as documented
			}
			t.Fatalf("seed %d: unexpected violation %s", seed, vi)
		}
	}
	t.Skip("conservatism gap not present on probed seeds (pipeline improved?)")
}

func TestTrapKind(t *testing.T) {
	// Budget: a tight step limit.
	prog := mustCompile(t, "int main() { int i; for (i = 0; i < 100000; i++) ; return 0; }")
	_, err := vm.Run(prog, vm.Config{MaxSteps: 10})
	if err == nil || TrapKind(err) != "budget" {
		t.Errorf("TrapKind(step limit) = %v (%v)", TrapKind(err), err)
	}
	// Fault: a wild store.
	prog = mustCompile(t, "int g[2]; int main() { g[1000000000] = 1; return 0; }")
	_, err = vm.Run(prog, vm.Config{})
	if err == nil || TrapKind(err) != "fault" {
		t.Errorf("TrapKind(wild store) = %v (%v)", TrapKind(err), err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Machine: "SPARC", Level: "JUMPS", Kind: VOutput, Detail: "got x want y"}
	s := v.String()
	for _, want := range []string{"SPARC", "JUMPS", string(VOutput), "got x want y"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func mustCompile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	prog, err := mcc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
