package difftest

import (
	"errors"
	"fmt"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/rtl"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Kind is the oracle's violation taxonomy: one typed identifier per way a
// cell can fail. The constant value is the stable wire name used in
// verdict JSON, fuzzjump reports and obs finding events — consumers
// compare against the constants, never against re-spelled strings.
type Kind string

// Violation kinds reported by the oracle.
const (
	// VTrap: the optimized build trapped (memory fault, budget, runtime
	// error) although the unoptimized reference ran to completion.
	VTrap Kind = "trap"
	// VOutput: the optimized build produced different output bytes.
	VOutput Kind = "output-mismatch"
	// VExit: the optimized build returned a different exit code.
	VExit Kind = "exit-mismatch"
	// VStructure: the verifier's structure rule (cfg.ValidateProgram)
	// failed after the pipeline (dangling target, mid-block CTI, bad
	// delay-slot shape, malformed operand).
	VStructure Kind = "invalid-structure"
	// VIrreducible: a function's flow graph is irreducible after the
	// pipeline — the reducibility rollback (step 6) failed its job.
	VIrreducible Kind = "irreducible-cfg"
	// VSemantic: a semantic rule of the IR verifier (internal/verify)
	// failed — use-before-def, dead-register read, condition-code pairing,
	// delay-slot legality, or an unreachable block. With Options.VerifyEach
	// the detail names the pipeline pass that introduced the violation.
	VSemantic Kind = "semantic-violation"
	// VTranslation: the translation validator (internal/tv) rejected a
	// duplication certificate — the engine applied an edit it could not
	// prove semantics-preserving. The detail names the pipeline pass,
	// certificate kind and failed obligation.
	VTranslation Kind = "tv-rejection"
	// VResidual: after a JUMPS pipeline, re-running the replication
	// algorithm still lowers the static unconditional-jump count — a
	// replicable jump survived although no growth cap was hit.
	VResidual Kind = "residual-replicable-jump"
	// VDynamic: the EASE dynamic counters regressed — the JUMPS build
	// executed more unconditional jumps than the SIMPLE build.
	VDynamic Kind = "dynamic-jumps-regression"
	// VDynamicCond: the DUPS build executed more conditional branches than
	// the JUMPS build — conditional elimination made the program branch
	// more, which the fold profitability model must never allow.
	VDynamicCond Kind = "dynamic-cond-branches-regression"
)

// Violation is one oracle finding for one measurement cell.
type Violation struct {
	Machine string `json:"machine"`
	Level   string `json:"level"`
	Kind    Kind   `json:"kind"`
	Detail  string `json:"detail"`
}

// String renders the violation as "machine/level: kind: detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s: %s", v.Machine, v.Level, v.Kind, v.Detail)
}

// Verdict is the oracle's result for one program.
type Verdict struct {
	Seed       int64       `json:"seed,omitempty"`
	Skipped    bool        `json:"skipped,omitempty"`
	SkipReason string      `json:"skip_reason,omitempty"`
	Violations []Violation `json:"violations,omitempty"`
	// Cells is the number of (machine, level) cells measured.
	Cells int `json:"cells"`
}

// Failed reports whether any violation was found.
func (v *Verdict) Failed() bool { return len(v.Violations) > 0 }

// Options configures one oracle check. The zero value checks the whole
// machine registry at all four levels with default budgets and all
// invariants on.
type Options struct {
	// Machines to compile for (nil = the whole machine registry).
	Machines []*machine.Machine
	// Levels to compile at (nil = pipeline.AllLevels()).
	Levels []pipeline.Level
	// Replication tunes — or, for the oracle's own self-test, deliberately
	// breaks — the replication algorithm in every cell.
	Replication replicate.Options
	// MaxSteps bounds each VM execution (0 = default 50M).
	MaxSteps int64
	// Input is the byte stream getchar() consumes, identical in every run.
	Input []byte
	// Seed tags reports for generated programs (0 for external inputs).
	Seed int64
	// Tracer, when non-nil, receives one obs.EvFinding per violation.
	Tracer obs.Tracer
	// CheckResidual enables the residual-replicable-jump check. It is
	// opt-in: the Figure-3 pipeline's anti-churn cutoffs (§5.2 conservatism)
	// legitimately leave replicable jumps behind on goto-heavy programs, so
	// this reports the conservatism gap rather than a soundness bug —
	// useful in offline campaigns, wrong as a CI failure.
	CheckResidual bool
	// SkipDynamic disables the dynamic-jump-count invariant.
	SkipDynamic bool
	// VerifyEach runs the semantic verifier after every pipeline pass in
	// every cell (pipeline.Config.VerifyEach), so a violation is attributed
	// to the pass that introduced it instead of only being caught by the
	// post-pipeline check. Slower; the fuzz smoke and nightly campaigns
	// enable it.
	VerifyEach bool
	// TV runs the translation validator in every cell
	// (pipeline.Config.TV): each applied duplication must present a
	// certificate that checks out by cut-point bisimulation, and every
	// rejection becomes a VTranslation verdict attributed to the pass
	// that emitted the certificate.
	TV bool
	// PostOptimize, when non-nil, runs after the pipeline and before the
	// structural checks and execution of each cell — a fault-injection
	// hook for testing that the oracle actually catches miscompiles.
	PostOptimize func(m *machine.Machine, lv pipeline.Level, prog *cfg.Program)
}

func (o Options) machines() []*machine.Machine {
	if len(o.Machines) == 0 {
		return machine.All()
	}
	return o.Machines
}

func (o Options) levels() []pipeline.Level {
	if len(o.Levels) == 0 {
		return pipeline.AllLevels()
	}
	return o.Levels
}

func (o Options) maxSteps() int64 {
	if o.MaxSteps == 0 {
		return 50_000_000
	}
	return o.MaxSteps
}

// replication returns the replication options with a fuzzing-friendly
// growth cap: goto-heavy generated programs can otherwise balloon to the
// stock 20000-RTL ceiling, where the downstream passes (liveness, register
// allocation) dominate a cell's wall time. The cap was 6000 when step 1
// was the all-pairs Floyd–Warshall matrix; the on-demand path oracle
// removed that bottleneck (see internal/replicate/oracle.go), so the
// ceiling now doubles to 12000 while a full grid check stays in the low
// seconds.
func (o Options) replication() replicate.Options {
	r := o.Replication
	if r.MaxFuncRTLs == 0 {
		r.MaxFuncRTLs = 12000
	}
	return r
}

// Check compiles src at every configured (machine, level) cell, executes
// each build in the VM, and compares every observable — output bytes, exit
// code, trap behaviour — against the unoptimized reference interpretation.
// It also asserts the structural invariants of the optimized code: the CFG
// validates, every flow graph stays reducible, the JUMPS build executes no
// more unconditional jumps than SIMPLE, the DUPS build executes no more
// conditional branches than JUMPS, and — opt-in via CheckResidual — a
// JUMPS build leaves no replicable unconditional jump behind.
//
// Inputs that do not compile, or whose reference interpretation already
// traps, yield a skipped verdict: for arbitrary fuzzer-mutated sources
// such programs are invalid or outside the defined language subset, so
// behavioural comparison would report false positives (an optimizer may
// legitimately change what wild code does). Generator-produced programs
// are well defined by construction and never skip.
func Check(src string, o Options) *Verdict {
	v := &Verdict{Seed: o.Seed}

	ref, err := mcc.Compile(src)
	if err != nil {
		v.Skipped, v.SkipReason = true, fmt.Sprintf("does not compile: %v", err)
		return v
	}
	refRun, err := vm.Run(ref, vm.Config{Input: o.Input, MaxSteps: o.maxSteps()})
	if err != nil {
		// Structural invariants still hold for trapping programs, but
		// behaviour is compared only against a completed reference.
		v.Skipped, v.SkipReason = true, fmt.Sprintf("reference run: %v", err)
	}

	type cellCounts struct {
		ok       bool
		jumps    int64 // direct unconditional jumps (Jmp, not IJmp)
		branches int64 // conditional branches (Br)
	}
	perMachine := map[string]map[pipeline.Level]cellCounts{}

	for _, m := range o.machines() {
		perMachine[m.Name] = map[pipeline.Level]cellCounts{}
		for _, lv := range o.levels() {
			v.Cells++
			prog, err := mcc.Compile(src)
			if err != nil {
				// Unreachable: the reference compile succeeded above.
				v.add(o, m, lv, VStructure, fmt.Sprintf("recompile: %v", err))
				continue
			}
			st := pipeline.Optimize(prog, pipeline.Config{
				Machine:     m,
				Level:       lv,
				Replication: o.replication(),
				VerifyEach:  o.VerifyEach,
				TV:          o.TV,
			})
			if o.PostOptimize != nil {
				o.PostOptimize(m, lv, prog)
			}

			// Structural and semantic invariants (post-pipeline,
			// pre-execution), all through the verifier so every kind of
			// corruption shares one diagnostic format. Verify-each
			// violations carry pass attribution and supersede the
			// whole-program check: the corruption they pinpoint is the
			// same one the final state would show.
			vs := st.Verify
			if len(vs) == 0 {
				vs = verify.Program(prog, verify.Options{
					DelaySlots:   m.DelaySlots,
					PostRegalloc: true,
				})
			}
			if len(vs) > 0 {
				for _, vio := range vs {
					v.add(o, m, lv, kindForRule(vio.Rule), vio.String())
				}
				continue
			}
			if lv == pipeline.Jumps && o.CheckResidual {
				if det := residualReplicableJump(prog, o.replication()); det != "" {
					v.add(o, m, lv, VResidual, det)
				}
			}

			// Behaviour.
			run, err := vm.Run(prog, vm.Config{Input: o.Input, MaxSteps: o.maxSteps()})
			if err != nil {
				if !v.Skipped {
					v.add(o, m, lv, VTrap, fmt.Sprintf("%s: %v", TrapKind(err), err))
				}
				continue
			}
			perMachine[m.Name][lv] = cellCounts{
				ok: true,
				// Count direct jumps only: the x86 back end may lower a
				// compare chain to an indirect table dispatch at one level
				// and not another, and an IJmp executes once where the
				// chain executed zero Jmps — comparing raw UncondJumps
				// across levels would flag that legitimate trade as a
				// violation. Replication's Table-4 claim is about the
				// direct jumps it eliminates.
				jumps:    run.Counts.UncondJumps - run.Counts.IndirectJumps,
				branches: run.Counts.CondBranches,
			}
			if v.Skipped {
				// Reference trapped but the optimized build did not: for
				// budget traps this is legitimate (the optimizer removed
				// work); nothing sound to compare.
				continue
			}
			if string(run.Output) != string(refRun.Output) {
				v.add(o, m, lv, VOutput,
					fmt.Sprintf("got %q, want %q", clip(run.Output), clip(refRun.Output)))
			}
			if run.ExitCode != refRun.ExitCode {
				v.add(o, m, lv, VExit,
					fmt.Sprintf("got %d, want %d", run.ExitCode, refRun.ExitCode))
			}
		}
	}

	// EASE dynamic-count invariants: replication must never make a program
	// execute more direct unconditional jumps than the SIMPLE build on the
	// same machine (the paper's Table-4 claim, which rollback preserves),
	// and conditional elimination must never make it execute more
	// conditional branches than the JUMPS build (≤, not <: a fold only
	// fires where the analysis decides an edge, and many programs offer
	// none).
	if !o.SkipDynamic {
		for _, m := range o.machines() {
			cells := perMachine[m.Name]
			s, j := cells[pipeline.Simple], cells[pipeline.Jumps]
			if s.ok && j.ok && j.jumps > s.jumps {
				v.addNamed(o, m.Name, "JUMPS", VDynamic,
					fmt.Sprintf("JUMPS executed %d direct unconditional jumps, SIMPLE only %d", j.jumps, s.jumps))
			}
			d := cells[pipeline.Dups]
			if j.ok && d.ok && d.branches > j.branches {
				v.addNamed(o, m.Name, "DUPS", VDynamicCond,
					fmt.Sprintf("DUPS executed %d conditional branches, JUMPS only %d", d.branches, j.branches))
			}
		}
	}
	return v
}

// kindForRule maps a verifier rule to the oracle's violation taxonomy:
// the structure, reducibility and translation-validation rules keep their
// dedicated kinds, every other rule is a semantic violation.
func kindForRule(r verify.Rule) Kind {
	switch r {
	case verify.RuleStructure:
		return VStructure
	case verify.RuleIrreducible:
		return VIrreducible
	case verify.RuleTranslation:
		return VTranslation
	}
	return VSemantic
}

func (v *Verdict) add(o Options, m *machine.Machine, lv pipeline.Level, kind Kind, detail string) {
	v.addNamed(o, m.Name, lv.String(), kind, detail)
}

func (v *Verdict) addNamed(o Options, machineName, levelName string, kind Kind, detail string) {
	v.Violations = append(v.Violations, Violation{
		Machine: machineName, Level: levelName, Kind: kind, Detail: detail,
	})
	if o.Tracer != nil {
		o.Tracer.Emit(&obs.Event{
			Type: obs.EvFinding, Name: detail, Outcome: string(kind),
			Machine: machineName, Level: levelName, Seed: o.Seed,
		})
	}
}

// residualReplicableJump probes the paper's fixed-point property: after a
// JUMPS pipeline, re-running the replication algorithm on a clone of each
// function must not lower its static unconditional-jump count. Functions
// near a growth cap are exempt — the pipeline legitimately stops there.
// Returns a one-line detail for the first offending function, or "".
func residualReplicableJump(prog *cfg.Program, opts replicate.Options) string {
	opts.Tracer = nil
	for _, f := range prog.Funcs {
		if capped(f, opts) {
			continue
		}
		clone := f.Clone()
		before := countJumps(clone)
		if before == 0 {
			continue
		}
		replicate.JUMPS(clone, opts)
		if after := countJumps(clone); after < before {
			return fmt.Sprintf("function %s: %d unconditional jumps, replication would leave %d",
				f.Name, before, after)
		}
	}
	return ""
}

// capped reports whether f is close enough to a replication growth cap
// that leftover jumps are expected rather than a bug.
func capped(f *cfg.Func, opts replicate.Options) bool {
	max := opts.MaxFuncRTLs
	if max == 0 {
		max = 20000
	}
	// Within 25% of the RTL budget the pipeline may stop replicating.
	return f.NumRTLs()*4 >= max*3
}

// countJumps counts static unconditional direct jumps.
func countJumps(f *cfg.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Jmp {
				n++
			}
		}
	}
	return n
}

func clip(b []byte) string {
	const max = 64
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

// TrapKind classifies a VM error for reports: "fault" (wild memory
// access), "budget" (step limit), or "error" (other runtime errors).
func TrapKind(err error) string {
	switch {
	case errors.Is(err, vm.ErrFault):
		return "fault"
	case errors.Is(err, vm.ErrBudget):
		return "budget"
	default:
		return "error"
	}
}
