package difftest

import (
	"fmt"
	"strings"
)

// GenerateStress returns a mini-C program whose main is one large bounded
// goto state machine with the given number of states — the single-function
// shape that makes step 1 of the JUMPS algorithm the dominant compile
// cost. Each state is a tiny basic block ending in an unconditional goto,
// the dispatcher is a chain of two-RTL compare-and-branch blocks, so a
// program of S states compiles to a flow graph of roughly 2S blocks with S
// unconditional jumps: exactly the access pattern where the paper's
// all-pairs matrix pays O(V³) per sweep for a handful of single-source
// queries. The benchmark suite compiles it at the stock 20000-RTL
// replication ceiling with both path engines (see BENCH_baseline.json).
//
// Unlike Generate the program is a fixed function of states, not seeded:
// baseline numbers stay comparable across runs and machines. Like every
// generator output it terminates (an explicit fuel counter bounds the
// dispatcher and direct state-to-state hops only jump forward), prints a
// checksum, and is a valid oracle input, so correctness of stress-sized
// compiles is checked by the same differential machinery as the fuzz
// corpus.
func GenerateStress(states int) string {
	if states < 2 {
		states = 2
	}
	var b strings.Builder
	w := func(format string, args ...interface{}) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	w("int main() {")
	w("\tint s; int f; int x; int acc;")
	w("\ts = 0; f = %d; x = 1; acc = 0;", 4*states)
	w("step: ;")
	w("\tif (f <= 0) goto out;")
	w("\tf = f - 1;")
	for i := 0; i < states-1; i++ {
		w("\tif (s == %d) goto s%d;", i, i)
	}
	w("\tgoto s%d;", states-1)
	for i := 0; i < states; i++ {
		w("s%d: ;", i)
		w("\tx = (x * %d + %d) %% 9973;", 3+i%7, 1+i%11)
		w("\tacc = (acc + x) %% 100000;")
		w("\ts = (s + x) %% %d;", states)
		// Every few states, a direct state-to-state hop adds an irregular
		// edge. Hops only jump forward (to a higher state), so no cycle can
		// avoid the fuel check at the dispatcher.
		if i%5 == 2 && i+1 < states {
			w("\tif (x == %d) goto s%d;", i%97, i+1+(i*31)%(states-1-i))
		}
		w("\tgoto step;")
	}
	w("out: ;")
	w("\tprintint(acc);")
	w("\treturn 0;")
	w("}")
	return b.String()
}
