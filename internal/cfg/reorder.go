package cfg

import "repro/internal/rtl"

// DeleteJumpsToNext removes every unconditional jump whose target is the
// positionally next block; the transfer becomes a fall-through. Reports
// whether anything changed.
func DeleteJumpsToNext(f *Func) bool {
	changed := false
	for i, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Kind != rtl.Jmp {
			continue
		}
		if i+1 < len(f.Blocks) && f.Blocks[i+1].Label == t.Target {
			b.Insts = b.Insts[:len(b.Insts)-1]
			changed = true
		}
	}
	return changed
}

// fallChain returns the maximal run of blocks starting at index i that are
// glued together by implicit fall-through: every block but the last ends
// without an unconditional transfer. Returns nil if the chain runs off the
// end of the function without terminating (ill-formed region; left alone).
func fallChain(f *Func, i int) []*Block {
	var chain []*Block
	for ; i < len(f.Blocks); i++ {
		b := f.Blocks[i]
		chain = append(chain, b)
		if t := b.Term(); t != nil {
			switch t.Kind {
			case rtl.Jmp, rtl.IJmp, rtl.Ret:
				return chain
			}
		}
	}
	return nil
}

// ReorderBlocks greedily relocates fall-through chains so that unconditional
// jumps become fall-throughs ("reorder basic blocks to minimize jumps" in
// the paper's Figure 3). A chain starting at block t may move to directly
// follow a block a ending in `Jmp t` when t is not the entry, is not fallen
// into by its positional predecessor, and does not contain a. The enabling
// jump is then deleted. Runs to a fixed point; reports whether anything
// changed.
func ReorderBlocks(f *Func) bool {
	changed := false
	for pass := 0; pass < len(f.Blocks)+1; pass++ {
		moved := false
		for _, a := range f.Blocks {
			t := a.Term()
			if t == nil || t.Kind != rtl.Jmp {
				continue
			}
			tgt := f.BlockByLabel(t.Target)
			if tgt == nil || tgt.Index == 0 || tgt.Index == a.Index+1 {
				continue
			}
			// The target must not be entered by fall-through from its
			// positional predecessor.
			prev := f.Blocks[tgt.Index-1]
			if pt := prev.Term(); pt == nil || pt.Kind == rtl.Br {
				continue
			}
			chain := fallChain(f, tgt.Index)
			if chain == nil {
				continue
			}
			contains := false
			for _, c := range chain {
				if c == a || c.Index == 0 {
					contains = true
					break
				}
			}
			if contains {
				continue
			}
			// Splice the chain out and back in after a.
			inChain := make(map[*Block]bool, len(chain))
			for _, c := range chain {
				inChain[c] = true
			}
			rest := make([]*Block, 0, len(f.Blocks)-len(chain))
			for _, b := range f.Blocks {
				if !inChain[b] {
					rest = append(rest, b)
				}
			}
			out := make([]*Block, 0, len(f.Blocks))
			for _, b := range rest {
				out = append(out, b)
				if b == a {
					out = append(out, chain...)
				}
			}
			f.Blocks = out
			f.Renumber()
			// a now falls through to tgt; delete the jump.
			a.Insts = a.Insts[:len(a.Insts)-1]
			moved = true
			changed = true
			break
		}
		if !moved {
			break
		}
	}
	if DeleteJumpsToNext(f) {
		changed = true
	}
	return changed
}
