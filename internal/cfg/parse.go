package cfg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rtl"
)

// ParseFunc parses the textual form produced by Func.String:
//
//	func name(params=N, locals=M):
//	L0:
//		<instruction>
//		...
//	L1:
//		...
//
// The inverse property ParseFunc(f.String()).String() == f.String() holds
// for every function the compiler can produce, which makes the notation
// usable for test fixtures and for round-tripping optimizer dumps.
func ParseFunc(text string) (*Func, error) {
	lines := strings.Split(text, "\n")
	var f *Func
	var cur *Block
	maxLabel := rtl.Label(-1)
	maxVReg := 0
	for ln, raw := range lines {
		line := strings.TrimRight(raw, " \r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "func "):
			if f != nil {
				return nil, fmt.Errorf("cfg: line %d: second function header", ln+1)
			}
			var err error
			if f, err = parseFuncHeader(line); err != nil {
				return nil, fmt.Errorf("cfg: line %d: %v", ln+1, err)
			}
		case !strings.HasPrefix(line, "\t") && strings.HasSuffix(line, ":"):
			if f == nil {
				return nil, fmt.Errorf("cfg: line %d: label before function header", ln+1)
			}
			l, err := rtl.ParseLabel(strings.TrimSuffix(line, ":"))
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: %v", ln+1, err)
			}
			cur = f.AppendBlock(l)
			if l > maxLabel {
				maxLabel = l
			}
		case strings.HasPrefix(line, "\t"):
			if cur == nil {
				return nil, fmt.Errorf("cfg: line %d: instruction outside a block", ln+1)
			}
			in, err := rtl.ParseInst(line)
			if err != nil {
				return nil, fmt.Errorf("cfg: line %d: %v", ln+1, err)
			}
			cur.Insts = append(cur.Insts, in)
			for _, o := range []rtl.Operand{in.Dst, in.Src, in.Src2} {
				for _, r := range []rtl.Reg{o.Reg, o.Index} {
					if r.IsVirtual() && int(r-rtl.VRegBase)+1 > maxVReg {
						maxVReg = int(r-rtl.VRegBase) + 1
					}
				}
			}
		default:
			return nil, fmt.Errorf("cfg: line %d: unrecognized line %q", ln+1, line)
		}
	}
	if f == nil {
		return nil, fmt.Errorf("cfg: no function header found")
	}
	// Reserve the label and register numbers already in use.
	for f.nextLabel <= maxLabel {
		f.nextLabel++
	}
	if f.NVRegs < maxVReg {
		f.NVRegs = maxVReg
	}
	return f, nil
}

func parseFuncHeader(line string) (*Func, error) {
	// "func name(params=N, locals=M):"
	rest := strings.TrimPrefix(line, "func ")
	name, args, ok := strings.Cut(rest, "(")
	if !ok || !strings.HasSuffix(args, "):") {
		return nil, fmt.Errorf("bad function header %q", line)
	}
	args = strings.TrimSuffix(args, "):")
	f := NewFunc(strings.TrimSpace(name), 0)
	for _, kv := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad header field %q", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad header value %q", kv)
		}
		switch k {
		case "params":
			f.NParams = n
		case "locals":
			f.NLocals = n
		default:
			return nil, fmt.Errorf("unknown header field %q", k)
		}
	}
	return f, nil
}
