package cfg

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// Dot renders the function's flow graph in Graphviz dot syntax: one record
// node per basic block with its RTLs, solid edges for branch targets,
// dashed edges for fall-throughs, and bold edges for unconditional jumps —
// handy for visualizing what replication did to a function.
func Dot(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name)
	b.WriteString("\tnode [shape=box, fontname=\"monospace\", fontsize=9];\n")
	esc := func(s string) string {
		s = strings.ReplaceAll(s, "\\", "\\\\")
		s = strings.ReplaceAll(s, "\"", "\\\"")
		return s
	}
	for _, blk := range f.Blocks {
		var lines []string
		lines = append(lines, esc(blk.Label.String()+":"))
		for ii := range blk.Insts {
			lines = append(lines, esc("  "+blk.Insts[ii].String()))
		}
		fmt.Fprintf(&b, "\t%q [label=\"%s\"];\n", node(f, blk), strings.Join(lines, "\\l")+"\\l")
	}
	for _, blk := range f.Blocks {
		// After delay-slot filling the CTI is followed by its slot
		// instruction, so scan rather than relying on Term().
		var t *rtl.Inst
		for ii := len(blk.Insts) - 1; ii >= 0; ii-- {
			if blk.Insts[ii].IsCTI() {
				t = &blk.Insts[ii]
				break
			}
		}
		switch {
		case t == nil:
			if next := f.FallThrough(blk); next != nil {
				fmt.Fprintf(&b, "\t%q -> %q [style=dashed];\n", node(f, blk), node(f, next))
			}
		case t.Kind == rtl.Br:
			if tgt := f.BlockByLabel(t.Target); tgt != nil {
				fmt.Fprintf(&b, "\t%q -> %q [label=%q];\n", node(f, blk), node(f, tgt), t.BrRel.String())
			}
			if blk.Index+1 < len(f.Blocks) {
				fmt.Fprintf(&b, "\t%q -> %q [style=dashed];\n", node(f, blk), node(f, f.Blocks[blk.Index+1]))
			}
		case t.Kind == rtl.Jmp:
			if tgt := f.BlockByLabel(t.Target); tgt != nil {
				fmt.Fprintf(&b, "\t%q -> %q [style=bold];\n", node(f, blk), node(f, tgt))
			}
		case t.Kind == rtl.IJmp:
			for _, l := range t.Table {
				if tgt := f.BlockByLabel(l); tgt != nil {
					fmt.Fprintf(&b, "\t%q -> %q [style=dotted];\n", node(f, blk), node(f, tgt))
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func node(f *Func, b *Block) string {
	return fmt.Sprintf("%s_%s", f.Name, b.Label)
}
