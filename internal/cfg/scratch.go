package cfg

// Scratch is a per-function free-list of analysis buffers. The optimizer
// recomputes edges, dominators and liveness after nearly every pass; with a
// Scratch attached to the Func those recomputations reuse the previous
// buffers instead of reallocating them, which removes the bulk of the
// pipeline's allocation traffic (see docs/PERFORMANCE.md).
//
// Reuse is explicitly opted into: an analysis result (Edges, opt.Liveness,
// Dominators) stays valid until its Release method returns its buffers
// here. Forgetting to Release is safe — the buffers are garbage collected
// as before — and releasing twice is a no-op. A Scratch is confined to one
// function, so per-function parallel compilation needs no locking; it is
// deliberately not copied by Func.Clone.
type Scratch struct {
	words [][]uint64
	ints  [][]int32
	edges []*Edges
}

// Scratch returns the function's scratch arena, creating it on first use.
func (f *Func) Scratch() *Scratch {
	if f.scratch == nil {
		f.scratch = &Scratch{}
	}
	return f.scratch
}

// Words borrows a zeroed []uint64 of length n.
func (s *Scratch) Words(n int) []uint64 {
	if k := len(s.words); k > 0 {
		buf := s.words[k-1]
		s.words[k-1] = nil
		s.words = s.words[:k-1]
		if cap(buf) >= n {
			buf = buf[:n]
			for i := range buf {
				buf[i] = 0
			}
			return buf
		}
	}
	return make([]uint64, n)
}

// PutWords returns a buffer borrowed with Words.
func (s *Scratch) PutWords(buf []uint64) {
	if cap(buf) > 0 {
		s.words = append(s.words, buf[:0])
	}
}

// Ints borrows a []int32 of length n with unspecified contents.
func (s *Scratch) Ints(n int) []int32 {
	if k := len(s.ints); k > 0 {
		buf := s.ints[k-1]
		s.ints[k-1] = nil
		s.ints = s.ints[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]int32, n)
}

// PutInts returns a buffer borrowed with Ints.
func (s *Scratch) PutInts(buf []int32) {
	if cap(buf) > 0 {
		s.ints = append(s.ints, buf[:0])
	}
}

// getEdges pops a released Edges value (or returns a fresh one).
func (s *Scratch) getEdges() *Edges {
	if k := len(s.edges); k > 0 {
		e := s.edges[k-1]
		s.edges[k-1] = nil
		s.edges = s.edges[:k-1]
		e.released = false
		return e
	}
	return &Edges{}
}

// putEdges records e as reusable by the next ComputeEdges on this function.
func (s *Scratch) putEdges(e *Edges) {
	s.edges = append(s.edges, e)
}
