package cfg

import (
	"fmt"

	"repro/internal/rtl"
)

// Validate checks the structural invariants every pass must preserve:
//
//   - every branch / jump / table target resolves to a block of f;
//   - control-transfer instructions terminate their block (unless
//     delaySlots, in which case exactly one trailing slot instruction is
//     allowed after each CTI);
//   - no duplicate block labels;
//   - operands are well formed (register fields present where required);
//   - the entry block exists.
//
// It returns the first violation found, or nil. The optimizer does not call
// it on hot paths; tests and the debug tools do.
func Validate(f *Func, delaySlots bool) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("cfg: %s: no blocks", f.Name)
	}
	// One pass builds the label index and rejects duplicates; target checks
	// below are then O(1) map lookups instead of a linear Func.BlockByLabel
	// scan per target (which made Validate O(blocks x targets) on the
	// goto-heavy stress functions).
	seen := make(map[rtl.Label]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		if seen[b.Label] != nil {
			return fmt.Errorf("cfg: %s: duplicate label %s", f.Name, b.Label)
		}
		seen[b.Label] = b
	}
	checkTarget := func(b *Block, l rtl.Label) error {
		if seen[l] == nil {
			return fmt.Errorf("cfg: %s: block %s targets unknown label %s", f.Name, b.Label, l)
		}
		return nil
	}
	for _, b := range f.Blocks {
		ctiAt := -1
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if err := validOperands(f, b, in); err != nil {
				return err
			}
			switch in.Kind {
			case rtl.Br, rtl.Jmp:
				if err := checkTarget(b, in.Target); err != nil {
					return err
				}
			case rtl.IJmp:
				if len(in.Table) == 0 {
					return fmt.Errorf("cfg: %s: block %s: empty jump table", f.Name, b.Label)
				}
				for _, l := range in.Table {
					if err := checkTarget(b, l); err != nil {
						return err
					}
				}
			}
			if in.IsCTI() {
				if ctiAt >= 0 {
					return fmt.Errorf("cfg: %s: block %s has two CTIs", f.Name, b.Label)
				}
				ctiAt = ii
			}
		}
		if ctiAt >= 0 {
			trailing := len(b.Insts) - 1 - ctiAt
			switch {
			case !delaySlots && trailing != 0:
				return fmt.Errorf("cfg: %s: block %s: %d instructions after the CTI", f.Name, b.Label, trailing)
			case delaySlots && trailing != 1:
				return fmt.Errorf("cfg: %s: block %s: CTI needs exactly one delay slot, has %d", f.Name, b.Label, trailing)
			}
		}
	}
	return nil
}

// validOperands rejects malformed operand fields.
func validOperands(f *Func, b *Block, in *rtl.Inst) error {
	bad := func(what string) error {
		return fmt.Errorf("cfg: %s: block %s: %s in %q", f.Name, b.Label, what, in.String())
	}
	check := func(o rtl.Operand) error {
		switch o.Kind {
		case rtl.OReg:
			if o.Reg == rtl.RegNone {
				return bad("register operand without a register")
			}
		case rtl.OMem:
			if o.Reg == rtl.RegNone {
				return bad("memory operand without a base register")
			}
			if o.Index != rtl.RegNone && o.Scale <= 0 {
				return bad("indexed memory operand with non-positive scale")
			}
		case rtl.OGlobal, rtl.OAddrGlobal:
			if o.Sym == "" {
				return bad("global operand without a symbol")
			}
		}
		return nil
	}
	for _, o := range []rtl.Operand{in.Dst, in.Src, in.Src2} {
		if err := check(o); err != nil {
			return err
		}
	}
	switch in.Kind {
	case rtl.Move, rtl.Bin, rtl.Un:
		if in.Dst.Kind == rtl.ONone {
			return bad("assignment without a destination")
		}
		if in.Dst.Kind == rtl.OImm || in.Dst.Kind == rtl.OAddrLocal || in.Dst.Kind == rtl.OAddrGlobal {
			return bad("assignment to a constant")
		}
	case rtl.Call:
		if in.Sym == "" {
			return bad("call without a symbol")
		}
	}
	return nil
}

// ValidateProgram runs Validate over every function.
func ValidateProgram(p *Program, delaySlots bool) error {
	for _, f := range p.Funcs {
		if err := Validate(f, delaySlots); err != nil {
			return err
		}
	}
	return nil
}
