package cfg_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

func TestDotOutput(t *testing.T) {
	prog, err := mcc.Compile(`
int main() {
	int i;
	for (i = 0; i < 4; i++)
		putchar('a' + i);
	if (i > 2)
		putchar('!');
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	pipeline.Optimize(prog, pipeline.Config{Machine: machine.SPARC, Level: pipeline.Jumps})
	out := cfg.Dot(prog.Func("main"))
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	if !strings.Contains(out, "->") {
		t.Error("no edges emitted")
	}
	if !strings.Contains(out, "call putchar") {
		t.Error("instruction text missing from node labels")
	}
	// Every referenced node must be declared.
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.Index(line, " -> "); i > 0 {
			for _, name := range []string{line[:i], strings.Fields(line[i+4:])[0]} {
				name = strings.Trim(name, "\";")
				if !strings.Contains(out, name+"\" [label=") {
					t.Errorf("edge references undeclared node %s", name)
				}
			}
		}
	}
}
