package cfg_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// TestParseRoundTripCompiled: every function the compiler can produce (at
// every level, on both machines, across all Table-3-style constructs)
// round-trips through the textual notation.
func TestParseRoundTripCompiled(t *testing.T) {
	srcs := []string{
		`int main() { int i, s; s = 0; for (i = 0; i < 9; i++) s += i; printint(s); return 0; }`,
		`int g[10];
		 int f(int *p, int n) { int s; s = 0; while (n-- > 0) s += *p++; return s; }
		 int main() { int i; for (i = 0; i < 10; i++) g[i] = i; printint(f(g, 10)); return 0; }`,
		`int main() {
			int x, r;
			x = 3; r = 0;
			switch (x) { case 1: r = 1; break; case 2: r = 2; break; case 3: r = 3; break;
			             case 4: r = 4; break; case 5: r = 5; }
			printint(r > 0 ? -r : ~r);
			return 0;
		 }`,
	}
	for si, src := range srcs {
		for _, m := range machine.All() {
			for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Jumps} {
				prog, err := mcc.Compile(src)
				if err != nil {
					t.Fatalf("src %d: %v", si, err)
				}
				pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
				for _, f := range prog.Funcs {
					text := f.String()
					parsed, err := cfg.ParseFunc(text)
					if err != nil {
						t.Fatalf("src %d %s/%s %s: parse: %v\n%s", si, m.Name, lv, f.Name, err, text)
					}
					if got := parsed.String(); got != text {
						t.Fatalf("src %d %s/%s %s: round trip mismatch\n--- printed:\n%s--- reparsed:\n%s",
							si, m.Name, lv, f.Name, text, got)
					}
				}
			}
		}
	}
}

// TestParseFreshLabels: labels allocated after parsing must not collide
// with parsed ones.
func TestParseFreshLabels(t *testing.T) {
	f, err := cfg.ParseFunc("func t(params=0, locals=0):\nL7:\n\tPC = RT\n")
	if err != nil {
		t.Fatal(err)
	}
	if l := f.NewLabel(); l <= 7 {
		t.Errorf("fresh label %v collides with parsed labels", l)
	}
}

// TestParseErrors: malformed inputs produce errors, not panics.
func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"L0:\n\tPC = RT\n",                       // no header
		"func t(params=0, locals=0):\n\tPC = RT", // instruction before a label
		"func t(params=x, locals=0):\nL0:\n",     // bad header value
		"func t(params=0, locals=0):\nL0:\n\t???", // bad instruction
		"junk\n",
	} {
		if _, err := cfg.ParseFunc(text); err == nil {
			t.Errorf("ParseFunc(%q) should fail", text)
		}
	}
}
