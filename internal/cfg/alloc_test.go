package cfg

import (
	"testing"

	"repro/internal/rtl"
)

// buildChainLoop builds a function with enough structure to exercise the
// analysis arenas: a chain of conditional-branch blocks closed into a loop.
func buildChainLoop(n int) *Func {
	f := NewFunc("chain", 0)
	blocks := make([]*Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for i, b := range blocks {
		b.Insts = []rtl.Inst{
			{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(int64(i))},
			{Kind: rtl.Br, BrRel: rtl.Eq, Target: blocks[(i+3)%n].Label},
		}
	}
	blocks[n-1].Insts = []rtl.Inst{{Kind: rtl.Ret}}
	return f
}

// TestAllocsComputeEdges pins the steady-state allocation cost of the
// flow-graph analysis: once the function's scratch arena is warm, a
// ComputeEdges/Release cycle must not allocate at all.
func TestAllocsComputeEdges(t *testing.T) {
	f := buildChainLoop(64)
	ComputeEdges(f).Release() // warm the arena
	got := testing.AllocsPerRun(200, func() {
		ComputeEdges(f).Release()
	})
	if got != 0 {
		t.Errorf("warm ComputeEdges cycle allocates %.0f times, want 0", got)
	}
}

// TestAllocsComputeDominators pins the warm dominator analysis the same
// way: the int32 buffers come from the arena, so a full cycle costs
// exactly one allocation — the *Dominators descriptor.
func TestAllocsComputeDominators(t *testing.T) {
	f := buildChainLoop(64)
	e := ComputeEdges(f)
	ComputeDominators(e).Release() // warm the arena
	got := testing.AllocsPerRun(200, func() {
		ComputeDominators(e).Release()
	})
	e.Release()
	if got > 1 {
		t.Errorf("warm ComputeDominators cycle allocates %.0f times, want at most the descriptor (1)", got)
	}
}

// TestAllocsScratchBuffers pins the arena primitives themselves: borrowing
// and returning a word or int buffer of a size the freelist has seen is
// free.
func TestAllocsScratchBuffers(t *testing.T) {
	f := NewFunc("s", 0)
	scr := f.Scratch()
	scr.PutWords(scr.Words(128))
	scr.PutInts(scr.Ints(128))
	got := testing.AllocsPerRun(200, func() {
		w := scr.Words(128)
		i := scr.Ints(128)
		scr.PutInts(i)
		scr.PutWords(w)
	})
	if got != 0 {
		t.Errorf("warm Words/Ints cycle allocates %.0f times, want 0", got)
	}
}
