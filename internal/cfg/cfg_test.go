package cfg

import (
	"testing"

	"repro/internal/rtl"
)

// buildDiamond builds:
//
//	b0: cmp; br -> b2
//	b1: (fallthrough) jmp b3
//	b2: ...
//	b3: ret
func buildDiamond(t *testing.T) (*Func, []*Block) {
	t.Helper()
	f := NewFunc("d", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Eq, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(rtl.VRegBase + 1), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b3.Label},
	}
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(rtl.VRegBase + 1), Src: rtl.Imm(2)},
	}
	b3.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	return f, []*Block{b0, b1, b2, b3}
}

func TestEdgesDiamond(t *testing.T) {
	f, bs := buildDiamond(t)
	e := ComputeEdges(f)
	wantSuccs := [][]int{{1, 2}, {3}, {3}, {}}
	for i, want := range wantSuccs {
		got := e.Succs[i]
		if len(got) != len(want) {
			t.Fatalf("block %d: %d succs, want %d", i, len(got), len(want))
		}
		for j, w := range want {
			if got[j] != bs[w] {
				t.Errorf("block %d succ %d = L%d, want L%d", i, j, got[j].Label, bs[w].Label)
			}
		}
	}
	if len(e.Preds[3]) != 2 {
		t.Errorf("join block should have 2 preds, got %d", len(e.Preds[3]))
	}
}

func TestFallThrough(t *testing.T) {
	f, bs := buildDiamond(t)
	if f.FallThrough(bs[0]) != bs[1] {
		t.Error("Br block should fall through")
	}
	if f.FallThrough(bs[1]) != nil {
		t.Error("Jmp block should not fall through")
	}
	if f.FallThrough(bs[2]) != bs[3] {
		t.Error("plain block should fall through")
	}
	if f.FallThrough(bs[3]) != nil {
		t.Error("Ret block should not fall through")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f, bs := buildDiamond(t)
	// Add an orphan block.
	orphan := f.NewBlock()
	orphan.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	if !RemoveUnreachable(f) {
		t.Fatal("expected a change")
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(f.Blocks))
	}
	if f.BlockByLabel(orphan.Label) != nil {
		t.Error("orphan survived")
	}
	_ = bs
	if RemoveUnreachable(f) {
		t.Error("second run should be a no-op")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f, _ := buildDiamond(t)
	e := ComputeEdges(f)
	d := ComputeDominators(e)
	// Entry dominates everything; neither arm dominates the join.
	for i := 0; i < 4; i++ {
		if !d.Dominates(0, i) {
			t.Errorf("entry should dominate block %d", i)
		}
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("diamond arms must not dominate the join")
	}
	if d.IDom(3) != 0 {
		t.Errorf("idom(join) = %d, want 0", d.IDom(3))
	}
	if d.IDom(1) != 0 || d.IDom(2) != 0 {
		t.Error("idom(arms) should be the entry")
	}
}

// buildLoop builds a while-shape:
//
//	b0: entry (falls into b1)
//	b1: header: cmp; br -> b3 (exit)
//	b2: body: jmp b1
//	b3: ret
func buildLoop(t *testing.T) (*Func, []*Block) {
	t.Helper()
	f := NewFunc("l", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(rtl.VRegBase), Src: rtl.Imm(0)}}
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(10)},
		{Kind: rtl.Br, BrRel: rtl.Ge, Target: b3.Label},
	}
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(rtl.VRegBase), Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b1.Label},
	}
	b3.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	return f, []*Block{b0, b1, b2, b3}
}

func TestNaturalLoops(t *testing.T) {
	f, bs := buildLoop(t)
	e := ComputeEdges(f)
	d := ComputeDominators(e)
	loops := NaturalLoops(e, d)
	if len(loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != bs[1] {
		t.Errorf("header = L%d, want L%d", l.Header.Label, bs[1].Label)
	}
	if !l.Contains(1) || !l.Contains(2) {
		t.Error("loop should contain header and body")
	}
	if l.Contains(0) || l.Contains(3) {
		t.Error("loop must not contain entry or exit")
	}
	if len(l.Latches) != 1 || l.Latches[0] != bs[2] {
		t.Error("latch should be the body block")
	}
	if lh := LoopHeaderOf(loops, bs[1]); lh != l {
		t.Error("LoopHeaderOf(header) should find the loop")
	}
	if lh := LoopHeaderOf(loops, bs[2]); lh != nil {
		t.Error("LoopHeaderOf(body) should be nil")
	}
	if il := InnermostLoopContaining(loops, 2); il != l {
		t.Error("InnermostLoopContaining broken")
	}
}

func TestNestedLoops(t *testing.T) {
	// outer: b1..b4, inner: b2..b3.
	f := NewFunc("n", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock() // outer header
	b2 := f.NewBlock() // inner header
	b3 := f.NewBlock() // inner latch
	b4 := f.NewBlock() // outer latch
	b5 := f.NewBlock() // exit
	cmpbr := func(target rtl.Label) []rtl.Inst {
		return []rtl.Inst{
			{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(0)},
			{Kind: rtl.Br, BrRel: rtl.Eq, Target: target},
		}
	}
	b0.Insts = nil
	b1.Insts = cmpbr(b5.Label)
	b2.Insts = cmpbr(b4.Label)
	b3.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b2.Label}}
	b4.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b5.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	e := ComputeEdges(f)
	d := ComputeDominators(e)
	loops := NaturalLoops(e, d)
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	inner := InnermostLoopContaining(loops, b3.Index)
	if inner == nil || inner.Header != b2 {
		t.Fatal("innermost loop of inner latch should be the inner loop")
	}
	outer := InnermostLoopContaining(loops, b4.Index)
	if outer == nil || outer.Header != b1 {
		t.Fatal("innermost loop of outer latch should be the outer loop")
	}
	if inner.NumBlocks() >= outer.NumBlocks() {
		t.Error("inner loop should be smaller than outer")
	}
}

func TestReducibility(t *testing.T) {
	f, _ := buildLoop(t)
	if !IsReducible(f) {
		t.Error("while loop should be reducible")
	}
	// Make it irreducible: a second entry into the loop body.
	f2, bs := buildLoop(t)
	bs[0].Insts = append(bs[0].Insts,
		rtl.Inst{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(5)},
		rtl.Inst{Kind: rtl.Br, BrRel: rtl.Lt, Target: bs[2].Label})
	if IsReducible(f2) {
		t.Error("two-entry loop should be irreducible")
	}
}

func TestDeleteJumpsToNext(t *testing.T) {
	f := NewFunc("j", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	if !DeleteJumpsToNext(f) {
		t.Fatal("expected deletion")
	}
	if len(b0.Insts) != 0 {
		t.Error("jump not deleted")
	}
}

func TestReorderBlocks(t *testing.T) {
	// Layout: b0 jmp b2; b1 ret; b2 jmp b1 — reordering can fuse the
	// chains and delete both jumps.
	f := NewFunc("r", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(rtl.VRegBase), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(rtl.VRegBase + 1), Src: rtl.Imm(2)},
		{Kind: rtl.Jmp, Target: b1.Label},
	}
	if !ReorderBlocks(f) {
		t.Fatal("expected reordering")
	}
	jumps := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Jmp {
				jumps++
			}
		}
	}
	if jumps != 0 {
		t.Errorf("%d jumps left after reordering, want 0", jumps)
	}
	if f.Blocks[0] != b0 {
		t.Error("entry block must stay first")
	}
}

func TestCloneIndependence(t *testing.T) {
	f, bs := buildDiamond(t)
	c := f.Clone()
	// Mutating the clone must not affect the original.
	c.Blocks[0].Insts[0].Src = rtl.Imm(99)
	c.Blocks = c.Blocks[:2]
	if bs[0].Insts[0].Src.Kind == rtl.OImm {
		t.Error("clone shares instruction storage")
	}
	if len(f.Blocks) != 4 {
		t.Error("clone shares the block slice")
	}
	if c.Name != f.Name || c.NParams != f.NParams {
		t.Error("clone lost metadata")
	}
}

func TestInsertAndRemoveBlocks(t *testing.T) {
	f, bs := buildDiamond(t)
	nb := &Block{Label: f.NewLabel()}
	f.InsertBlocksAfter(1, nb)
	if f.Blocks[2] != nb || nb.Index != 2 {
		t.Fatal("insert position wrong")
	}
	if bs[3].Index != 4 {
		t.Error("renumbering broken")
	}
	f.RemoveBlocks(map[rtl.Label]bool{nb.Label: true})
	if len(f.Blocks) != 4 || bs[3].Index != 3 {
		t.Error("removal broken")
	}
}

func TestNumRTLs(t *testing.T) {
	f, _ := buildDiamond(t)
	if n := f.NumRTLs(); n != 6 {
		t.Errorf("NumRTLs = %d, want 6", n)
	}
	p := &Program{Funcs: []*Func{f, f}}
	if p.NumRTLs() != 12 {
		t.Error("program NumRTLs broken")
	}
}

func TestBlockTerm(t *testing.T) {
	f, bs := buildDiamond(t)
	_ = f
	if bs[0].Term() == nil || bs[0].Term().Kind != rtl.Br {
		t.Error("Br terminator not found")
	}
	if bs[2].Term() != nil {
		t.Error("fall-through block should have no terminator")
	}
}
