package cfg

import "repro/internal/rtl"

// Edges is a snapshot of the flow graph's successor/predecessor lists,
// indexed by Block.Index. It is invalidated by any structural change to the
// function; recompute with ComputeEdges.
type Edges struct {
	F     *Func
	Succs [][]*Block
	Preds [][]*Block
}

// ComputeEdges builds the successor and predecessor lists for f's current
// layout.
func ComputeEdges(f *Func) *Edges {
	n := len(f.Blocks)
	e := &Edges{F: f, Succs: make([][]*Block, n), Preds: make([][]*Block, n)}
	for _, b := range f.Blocks {
		for _, s := range blockSuccs(f, b) {
			e.Succs[b.Index] = append(e.Succs[b.Index], s)
			e.Preds[s.Index] = append(e.Preds[s.Index], b)
		}
	}
	return e
}

// blockSuccs lists the successors of b in f's current layout: the branch
// targets and, for non-terminated or conditionally terminated blocks, the
// positionally next block.
func blockSuccs(f *Func, b *Block) []*Block {
	var out []*Block
	addLabel := func(l rtl.Label) {
		if t := f.BlockByLabel(l); t != nil {
			for _, s := range out {
				if s == t {
					return
				}
			}
			out = append(out, t)
		}
	}
	t := b.Term()
	if t == nil {
		if b.Index+1 < len(f.Blocks) {
			out = append(out, f.Blocks[b.Index+1])
		}
		return out
	}
	switch t.Kind {
	case rtl.Jmp:
		addLabel(t.Target)
	case rtl.Br:
		if b.Index+1 < len(f.Blocks) {
			out = append(out, f.Blocks[b.Index+1])
		}
		addLabel(t.Target)
	case rtl.IJmp:
		for _, l := range t.Table {
			addLabel(l)
		}
	case rtl.Ret:
		// no successors
	}
	return out
}

// FallThrough returns the block control reaches from b without a taken
// branch: the positionally next block, or nil if b ends in an unconditional
// transfer (Jmp, IJmp, Ret) or is last.
func (f *Func) FallThrough(b *Block) *Block {
	if t := b.Term(); t != nil {
		switch t.Kind {
		case rtl.Jmp, rtl.IJmp, rtl.Ret:
			return nil
		}
	}
	if b.Index+1 < len(f.Blocks) {
		return f.Blocks[b.Index+1]
	}
	return nil
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(f *Func) map[*Block]bool {
	seen := make(map[*Block]bool, len(f.Blocks))
	if len(f.Blocks) == 0 {
		return seen
	}
	var stack []*Block
	stack = append(stack, f.Blocks[0])
	seen[f.Blocks[0]] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blockSuccs(f, b) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RemoveUnreachable deletes blocks not reachable from the entry and reports
// whether anything changed. This is the block-level half of dead code
// elimination; replication routinely strands blocks that this pass reclaims.
func RemoveUnreachable(f *Func) bool {
	seen := Reachable(f)
	if len(seen) == len(f.Blocks) {
		return false
	}
	dead := make(map[rtl.Label]bool)
	for _, b := range f.Blocks {
		if !seen[b] {
			dead[b.Label] = true
		}
	}
	if len(dead) == 0 {
		return false
	}
	f.RemoveBlocks(dead)
	return true
}
