package cfg

import "repro/internal/rtl"

// Edges is a snapshot of the flow graph's successor/predecessor lists,
// indexed by Block.Index. It is invalidated by any structural change to the
// function; recompute with ComputeEdges.
//
// The lists are views into one flat backing array (compressed sparse row
// form) owned by the Edges value. Calling Release returns the value to the
// function's Scratch arena for the next ComputeEdges to reuse; after
// Release the lists must not be used.
type Edges struct {
	F     *Func
	Succs [][]*Block
	Preds [][]*Block

	flat     []*Block   // backing for every successor and predecessor list
	hdrs     [][]*Block // backing for Succs and Preds
	labelIdx []int32    // label number -> block index, -1 if absent
	succIdx  []int32    // per-edge successor block indexes, CSR order
	offs     []int32    // per-block offsets into succIdx (len n+1)
	predOff  []int32    // per-block offsets into the predecessor half of flat
	cursor   []int32    // fill cursor for the predecessor transpose
	released bool
}

// termWithSlot returns the block's control-transfer instruction, tolerating
// the one trailing delay-slot instruction FillDelaySlots leaves after it.
// Mid-pipeline the CTI is always last (cfg.Validate pins it there), so this
// matches Term until slot filling; afterwards a block ending "Jmp; nop"
// must not read as a fall-through — post-slot analyses (the verifier's
// liveness) would otherwise walk an edge the machine never takes.
func termWithSlot(b *Block) *rtl.Inst {
	if n := len(b.Insts); n >= 2 && !b.Insts[n-1].IsCTI() && b.Insts[n-2].IsCTI() {
		return &b.Insts[n-2]
	}
	return b.Term()
}

// ComputeEdges builds the successor and predecessor lists for f's current
// layout. The result reuses buffers previously returned to the function's
// Scratch via Release; steady-state recomputation is allocation-free.
func ComputeEdges(f *Func) *Edges {
	e := f.Scratch().getEdges()
	e.build(f)
	return e
}

// Release returns the Edges value to its function's Scratch arena. Safe to
// call more than once; the lists must not be used afterwards.
func (e *Edges) Release() {
	if e == nil || e.released || e.F == nil {
		return
	}
	e.released = true
	e.F.Scratch().putEdges(e)
}

// grow32 returns buf resized to length n, reallocating only when needed.
func grow32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

func (e *Edges) build(f *Func) {
	n := len(f.Blocks)
	e.F = f

	// Dense label index: labels are allocated sequentially per function, so
	// a flat array replaces the former O(blocks) BlockByLabel scan per edge.
	maxLabel := -1
	for _, b := range f.Blocks {
		if l := int(b.Label); l > maxLabel {
			maxLabel = l
		}
	}
	e.labelIdx = grow32(e.labelIdx, maxLabel+1)
	for i := range e.labelIdx {
		e.labelIdx[i] = -1
	}
	for i, b := range f.Blocks {
		if l := int(b.Label); l >= 0 {
			e.labelIdx[l] = int32(i)
		}
	}
	lookup := func(l rtl.Label) int32 {
		if int(l) < 0 || int(l) > maxLabel {
			return -1
		}
		return e.labelIdx[int(l)]
	}

	// Pass 1: successor block indexes in CSR form. Order and de-duplication
	// match the original per-block construction: fall-through first for
	// conditional branches, table order for indirect jumps, duplicates and
	// dangling labels dropped.
	e.offs = grow32(e.offs, n+1)
	succIdx := e.succIdx[:0]
	addTarget := func(start int, t int32) []int32 {
		if t < 0 {
			return succIdx
		}
		for _, s := range succIdx[start:] {
			if s == t {
				return succIdx
			}
		}
		return append(succIdx, t)
	}
	for i, b := range f.Blocks {
		e.offs[i] = int32(len(succIdx))
		start := len(succIdx)
		t := termWithSlot(b)
		switch {
		case t == nil:
			if i+1 < n {
				succIdx = append(succIdx, int32(i+1))
			}
		case t.Kind == rtl.Jmp:
			succIdx = addTarget(start, lookup(t.Target))
		case t.Kind == rtl.Br:
			if i+1 < n {
				succIdx = append(succIdx, int32(i+1))
			}
			succIdx = addTarget(start, lookup(t.Target))
		case t.Kind == rtl.IJmp:
			for _, l := range t.Table {
				succIdx = addTarget(start, lookup(l))
			}
		case t.Kind == rtl.Ret:
			// no successors
		}
	}
	nEdges := len(succIdx)
	e.offs[n] = int32(nEdges)
	e.succIdx = succIdx

	// Pass 2: materialize the lists. flat holds the successor half followed
	// by the predecessor half; hdrs holds the per-block slice headers.
	if cap(e.flat) < 2*nEdges {
		e.flat = make([]*Block, 2*nEdges)
	} else {
		e.flat = e.flat[:2*nEdges]
	}
	if cap(e.hdrs) < 2*n {
		e.hdrs = make([][]*Block, 2*n)
	} else {
		e.hdrs = e.hdrs[:2*n]
	}
	e.Succs, e.Preds = e.hdrs[:n:n], e.hdrs[n:]

	e.predOff = grow32(e.predOff, n+1)
	for i := range e.predOff {
		e.predOff[i] = 0
	}
	for _, t := range succIdx {
		e.predOff[t+1]++
	}
	for i := 0; i < n; i++ {
		e.predOff[i+1] += e.predOff[i]
	}
	e.cursor = grow32(e.cursor, n)
	copy(e.cursor, e.predOff[:n])

	preds := e.flat[nEdges:]
	for i := 0; i < n; i++ {
		lo, hi := e.offs[i], e.offs[i+1]
		for k := lo; k < hi; k++ {
			t := succIdx[k]
			e.flat[k] = f.Blocks[t]
			preds[e.cursor[t]] = f.Blocks[i]
			e.cursor[t]++
		}
		e.Succs[i] = e.flat[lo:hi:hi]
	}
	for i := 0; i < n; i++ {
		lo, hi := e.predOff[i], e.predOff[i+1]
		e.Preds[i] = preds[lo:hi:hi]
	}
}

// FallThrough returns the block control reaches from b without a taken
// branch: the positionally next block, or nil if b ends in an unconditional
// transfer (Jmp, IJmp, Ret) or is last.
func (f *Func) FallThrough(b *Block) *Block {
	if t := b.Term(); t != nil {
		switch t.Kind {
		case rtl.Jmp, rtl.IJmp, rtl.Ret:
			return nil
		}
	}
	if b.Index+1 < len(f.Blocks) {
		return f.Blocks[b.Index+1]
	}
	return nil
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(f *Func) map[*Block]bool {
	seen := make(map[*Block]bool, len(f.Blocks))
	if len(f.Blocks) == 0 {
		return seen
	}
	e := ComputeEdges(f)
	var stack []*Block
	stack = append(stack, f.Blocks[0])
	seen[f.Blocks[0]] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range e.Succs[b.Index] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	e.Release()
	return seen
}

// RemoveUnreachable deletes blocks not reachable from the entry and reports
// whether anything changed. This is the block-level half of dead code
// elimination; replication routinely strands blocks that this pass reclaims.
// The common no-change case allocates nothing once the function's Scratch
// arena is warm.
func RemoveUnreachable(f *Func) bool {
	n := len(f.Blocks)
	if n == 0 {
		return false
	}
	e := ComputeEdges(f)
	scr := f.Scratch()
	seen := scr.Words((n + 63) / 64)
	stack := scr.Ints(n)
	top := 0
	stack[top] = 0
	top++
	seen[0] |= 1
	reached := 1
	for top > 0 {
		top--
		b := int(stack[top])
		for _, s := range e.Succs[b] {
			i := s.Index
			if seen[i>>6]&(1<<(uint(i)&63)) == 0 {
				seen[i>>6] |= 1 << (uint(i) & 63)
				reached++
				stack[top] = int32(i)
				top++
			}
		}
	}
	e.Release()
	if reached == n {
		scr.PutWords(seen)
		scr.PutInts(stack)
		return false
	}
	dead := make(map[rtl.Label]bool, n-reached)
	for i, b := range f.Blocks {
		if seen[i>>6]&(1<<(uint(i)&63)) == 0 {
			dead[b.Label] = true
		}
	}
	scr.PutWords(seen)
	scr.PutInts(stack)
	if len(dead) == 0 {
		return false
	}
	f.RemoveBlocks(dead)
	return true
}
