package cfg_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/rtl"
)

func TestValidateAcceptsPipelineOutput(t *testing.T) {
	src := `
int f(int n) { int s, i; s = 0; for (i = 0; i < n; i++) s += i; return s; }
int main() { printint(f(10)); return 0; }`
	for _, m := range machine.All() {
		for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
			prog, err := mcc.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
			if err := cfg.ValidateProgram(prog, m.DelaySlots); err != nil {
				t.Errorf("%s/%s: %v", m.Name, lv, err)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func(build func(f *cfg.Func)) error {
		f := cfg.NewFunc("t", 0)
		build(f)
		return cfg.Validate(f, false)
	}
	cases := []struct {
		name string
		err  string
		f    func(f *cfg.Func)
	}{
		{"empty", "no blocks", func(f *cfg.Func) {}},
		{"dangling target", "unknown label", func(f *cfg.Func) {
			b := f.NewBlock()
			b.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: 99}}
		}},
		{"code after CTI", "after the CTI", func(f *cfg.Func) {
			b := f.NewBlock()
			b.Insts = []rtl.Inst{
				{Kind: rtl.Ret, Src: rtl.None()},
				{Kind: rtl.Nop},
			}
		}},
		{"two CTIs", "two CTIs", func(f *cfg.Func) {
			b := f.NewBlock()
			b.Insts = []rtl.Inst{
				{Kind: rtl.Jmp, Target: b.Label},
				{Kind: rtl.Ret, Src: rtl.None()},
			}
		}},
		{"empty table", "empty jump table", func(f *cfg.Func) {
			b := f.NewBlock()
			b.Insts = []rtl.Inst{{Kind: rtl.IJmp, Src: rtl.R(rtl.VRegBase)}}
		}},
		{"assign to constant", "assignment to a constant", func(f *cfg.Func) {
			b := f.NewBlock()
			b.Insts = []rtl.Inst{
				{Kind: rtl.Move, Dst: rtl.Imm(3), Src: rtl.Imm(4)},
				{Kind: rtl.Ret, Src: rtl.None()},
			}
		}},
		{"call without symbol", "call without a symbol", func(f *cfg.Func) {
			b := f.NewBlock()
			b.Insts = []rtl.Inst{
				{Kind: rtl.Call, Dst: rtl.None()},
				{Kind: rtl.Ret, Src: rtl.None()},
			}
		}},
	}
	for _, c := range cases {
		err := mk(c.f)
		if err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.err)
		}
	}
}

func TestValidateDelaySlotDiscipline(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	// Without a slot, SPARC-mode validation must complain.
	if err := cfg.Validate(f, true); err == nil {
		t.Error("missing delay slot not caught")
	}
	b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Nop})
	if err := cfg.Validate(f, true); err != nil {
		t.Errorf("valid slotted block rejected: %v", err)
	}
}
