// Package cfg provides basic blocks, whole functions, and the control-flow
// analyses (edges, dominators, natural loops, reducibility) the optimizer
// and the code-replication algorithms are built on.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/rtl"
)

// Block is a basic block: a label followed by straight-line RTLs. The last
// instruction may be a control-transfer instruction; otherwise control falls
// through to the positionally next block.
type Block struct {
	Label rtl.Label
	Insts []rtl.Inst

	// Index is the block's position in Func.Blocks. Maintained by
	// Func.Renumber, which every structural mutation must call.
	Index int
}

// Term returns a pointer to the block's terminating control-transfer
// instruction, or nil if the block ends by falling through.
func (b *Block) Term() *rtl.Inst {
	if n := len(b.Insts); n > 0 && b.Insts[n-1].IsCTI() {
		return &b.Insts[n-1]
	}
	return nil
}

// NumRTLs returns the instruction count of the block.
func (b *Block) NumRTLs() int { return len(b.Insts) }

// Clone returns a deep copy of the block (instructions copied, same label).
func (b *Block) Clone() *Block {
	nb := &Block{Label: b.Label, Index: b.Index, Insts: make([]rtl.Inst, len(b.Insts))}
	for i := range b.Insts {
		nb.Insts[i] = b.Insts[i].Clone()
	}
	return nb
}

// Func is one function: its blocks in positional (layout) order. The entry
// block is Blocks[0].
type Func struct {
	Name    string
	NParams int
	// NLocals is the frame size in cells. Parameters occupy slots
	// 0..NParams-1; remaining locals, arrays and spill slots follow.
	NLocals int
	// NVRegs is the number of virtual registers allocated so far.
	NVRegs int
	// ScalarLocals lists the frame offsets of single-cell locals and
	// parameters; the register-assignment pass may promote these to
	// registers unless their address is taken.
	ScalarLocals []int64
	Blocks       []*Block
	// nextLabel is the next unused label number.
	nextLabel rtl.Label
	// scratch holds reusable analysis buffers (see Scratch). Lazily
	// created, never cloned: a cloned function starts with a cold arena.
	scratch *Scratch
}

// NewFunc returns an empty function.
func NewFunc(name string, nparams int) *Func {
	return &Func{Name: name, NParams: nparams}
}

// NewLabel returns a fresh, unused label.
func (f *Func) NewLabel() rtl.Label {
	l := f.nextLabel
	f.nextLabel++
	return l
}

// LabelMark returns the current fresh-label high-water mark: the label the
// next NewLabel call would return. Pair with ResetLabels to undo
// speculative label allocation.
func (f *Func) LabelMark() rtl.Label { return f.nextLabel }

// ResetLabels rewinds the fresh-label counter to a mark previously obtained
// from LabelMark. The caller must have removed every block labeled at or
// above the mark; the replication engine uses this to roll back a
// speculative splice without cloning the whole function.
func (f *Func) ResetLabels(mark rtl.Label) { f.nextLabel = mark }

// NewVReg returns a fresh virtual register.
func (f *Func) NewVReg() rtl.Reg {
	r := rtl.VRegBase + rtl.Reg(f.NVRegs)
	f.NVRegs++
	return r
}

// NewBlock appends a new empty block with a fresh label and returns it.
func (f *Func) NewBlock() *Block {
	return f.AppendBlock(f.NewLabel())
}

// AppendBlock appends a new empty block with the given (already reserved)
// label and returns it.
func (f *Func) AppendBlock(l rtl.Label) *Block {
	b := &Block{Label: l}
	f.Blocks = append(f.Blocks, b)
	f.Renumber()
	return b
}

// Renumber refreshes every block's positional Index. Call after any
// insertion, deletion or reordering of blocks.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// BlockByLabel returns the block with the given label, or nil.
func (f *Func) BlockByLabel(l rtl.Label) *Block {
	for _, b := range f.Blocks {
		if b.Label == l {
			return b
		}
	}
	return nil
}

// Entry returns the entry block (nil for an empty function).
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NumRTLs returns the total instruction count of the function.
func (f *Func) NumRTLs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Insts)
	}
	return n
}

// InsertBlocksAfter splices the given blocks immediately after block at
// position idx and renumbers.
func (f *Func) InsertBlocksAfter(idx int, blocks ...*Block) {
	tail := append([]*Block{}, f.Blocks[idx+1:]...)
	f.Blocks = append(f.Blocks[:idx+1], blocks...)
	f.Blocks = append(f.Blocks, tail...)
	f.Renumber()
}

// RemoveBlocks deletes the blocks whose labels are in the set and renumbers.
func (f *Func) RemoveBlocks(dead map[rtl.Label]bool) {
	out := f.Blocks[:0]
	for _, b := range f.Blocks {
		if !dead[b.Label] {
			out = append(out, b)
		}
	}
	f.Blocks = out
	f.Renumber()
}

// Clone returns a deep copy of the function (used for replication rollback).
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:         f.Name,
		NParams:      f.NParams,
		NLocals:      f.NLocals,
		NVRegs:       f.NVRegs,
		ScalarLocals: append([]int64(nil), f.ScalarLocals...),
		nextLabel:    f.nextLabel,
		Blocks:       make([]*Block, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		nf.Blocks[i] = b.Clone()
	}
	nf.Renumber()
	return nf
}

// Restore replaces f's contents with those of snapshot (a Clone taken
// earlier), keeping f's scratch arena so analysis buffers survive the
// rollback.
func (f *Func) Restore(snapshot *Func) {
	scr := f.scratch
	*f = *snapshot
	f.scratch = scr
}

// String renders the function as labeled RTL listing.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(params=%d, locals=%d):\n", f.Name, f.NParams, f.NLocals)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Label)
		for i := range blk.Insts {
			fmt.Fprintf(&b, "\t%s\n", &blk.Insts[i])
		}
	}
	return b.String()
}

// Program is a whole translation unit: functions plus global data.
type Program struct {
	Funcs   []*Func
	Globals []rtl.GlobalDef
}

// Clone returns a deep copy of the program: functions are cloned,
// global definitions copied. Used by tools that must mutate or re-optimize
// a program (e.g. the difftest oracle's residual-replication probe) without
// disturbing the original.
func (p *Program) Clone() *Program {
	np := &Program{
		Funcs:   make([]*Func, len(p.Funcs)),
		Globals: append([]rtl.GlobalDef(nil), p.Globals...),
	}
	for i := range np.Globals {
		np.Globals[i].Init = append([]int64(nil), np.Globals[i].Init...)
	}
	for i, f := range p.Funcs {
		np.Funcs[i] = f.Clone()
	}
	return np
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *rtl.GlobalDef {
	for i := range p.Globals {
		if p.Globals[i].Name == name {
			return &p.Globals[i]
		}
	}
	return nil
}

// NumRTLs returns the total static instruction count of the program.
func (p *Program) NumRTLs() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumRTLs()
	}
	return n
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}
