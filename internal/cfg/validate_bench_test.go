package cfg_test

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/difftest"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// stressProgram compiles the 300-state goto stress machine, optionally
// pushing it through the full SPARC JUMPS pipeline so the benchmark also
// covers the replicated (many-block, many-target) shape Validate sees in
// the difftest oracle.
func stressProgram(b *testing.B, optimize bool) (*cfg.Program, bool) {
	b.Helper()
	prog, err := mcc.Compile(difftest.GenerateStress(300))
	if err != nil {
		b.Fatal(err)
	}
	if !optimize {
		return prog, false
	}
	pipeline.Optimize(prog, pipeline.Config{Machine: machine.SPARC, Level: pipeline.Jumps})
	return prog, true
}

// BenchmarkValidateStressNaive measures Validate on the unoptimized
// 300-state stress function: hundreds of blocks, every one ending in a
// branch or jump. Before the label->block map this was O(blocks x targets).
func BenchmarkValidateStressNaive(b *testing.B) {
	prog, slots := stressProgram(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cfg.ValidateProgram(prog, slots); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidateStressJumps measures Validate on the same function after
// the SPARC JUMPS pipeline (replication grows the block count; delay slots
// change the CTI shape).
func BenchmarkValidateStressJumps(b *testing.B) {
	prog, slots := stressProgram(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cfg.ValidateProgram(prog, slots); err != nil {
			b.Fatal(err)
		}
	}
}
