package cfg

// Dominators holds the dominator sets of a function, computed by iterative
// dataflow over the block-index space. For the function sizes the optimizer
// sees (tens to a few hundred blocks) the bitset-free formulation below is
// plenty fast and much easier to audit.
type Dominators struct {
	E *Edges
	// dom[i] is the set of block indices dominating block i (including i).
	dom []map[int]bool
	// idom[i] is the immediate dominator's index, or -1 for the entry and
	// unreachable blocks.
	idom []int
}

// ComputeDominators computes dominator sets on the given edge snapshot.
func ComputeDominators(e *Edges) *Dominators {
	n := len(e.F.Blocks)
	d := &Dominators{E: e, dom: make([]map[int]bool, n), idom: make([]int, n)}
	if n == 0 {
		return d
	}
	reach := Reachable(e.F)
	all := make(map[int]bool, n)
	for i, b := range e.F.Blocks {
		if reach[b] {
			all[i] = true
		}
	}
	for i, b := range e.F.Blocks {
		if !reach[b] {
			d.dom[i] = map[int]bool{i: true}
			continue
		}
		if i == 0 {
			d.dom[i] = map[int]bool{0: true}
		} else {
			s := make(map[int]bool, len(all))
			for k := range all {
				s[k] = true
			}
			d.dom[i] = s
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			if !reach[e.F.Blocks[i]] {
				continue
			}
			var inter map[int]bool
			for _, p := range e.Preds[i] {
				if !reach[p] {
					continue
				}
				pd := d.dom[p.Index]
				if inter == nil {
					inter = make(map[int]bool, len(pd))
					for k := range pd {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !pd[k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = make(map[int]bool)
			}
			inter[i] = true
			if len(inter) != len(d.dom[i]) {
				d.dom[i] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !d.dom[i][k] {
					d.dom[i] = inter
					changed = true
					break
				}
			}
		}
	}
	for i := range d.idom {
		d.idom[i] = -1
	}
	for i := 1; i < n; i++ {
		// The immediate dominator is the dominator with the largest
		// dominator set other than i's own.
		best, bestSize := -1, -1
		for k := range d.dom[i] {
			if k == i {
				continue
			}
			if sz := len(d.dom[k]); sz > bestSize {
				best, bestSize = k, sz
			}
		}
		d.idom[i] = best
	}
	return d
}

// Dominates reports whether block a dominates block b (by index).
func (d *Dominators) Dominates(a, b int) bool {
	if b < 0 || b >= len(d.dom) || d.dom[b] == nil {
		return false
	}
	return d.dom[b][a]
}

// IDom returns the immediate dominator index of block i, or -1.
func (d *Dominators) IDom(i int) int { return d.idom[i] }

// Loop is a natural loop: a header and the set of blocks (by index) forming
// the loop body, derived from one or more back edges into the header.
type Loop struct {
	Header *Block
	// Blocks maps block index -> membership. Includes the header.
	Blocks map[int]bool
	// Latches are the sources of the back edges.
	Latches []*Block
}

// Contains reports whether the loop contains the block with the given index.
func (l *Loop) Contains(idx int) bool { return l.Blocks[idx] }

// NaturalLoops finds all natural loops of the function: for every back edge
// t->h where h dominates t, the loop body is h plus every block that can
// reach t without passing through h. Loops sharing a header are merged, as is
// conventional.
func NaturalLoops(e *Edges, d *Dominators) []*Loop {
	byHeader := make(map[*Block]*Loop)
	var order []*Block
	for _, b := range e.F.Blocks {
		for _, s := range e.Succs[b.Index] {
			if d.Dominates(s.Index, b.Index) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s.Index: true}}
					byHeader[s] = l
					order = append(order, s)
				}
				l.Latches = append(l.Latches, b)
				// Collect the body by walking predecessors from the latch.
				if !l.Blocks[b.Index] {
					l.Blocks[b.Index] = true
					stack := []*Block{b}
					for len(stack) > 0 {
						x := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						for _, p := range e.Preds[x.Index] {
							if !l.Blocks[p.Index] {
								l.Blocks[p.Index] = true
								stack = append(stack, p)
							}
						}
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// LoopHeaderOf returns the innermost loop headed by block b, or nil.
func LoopHeaderOf(loops []*Loop, b *Block) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Header == b {
			if best == nil || len(l.Blocks) < len(best.Blocks) {
				best = l
			}
		}
	}
	return best
}

// InnermostLoopContaining returns the smallest loop containing block index
// idx, or nil.
func InnermostLoopContaining(loops []*Loop, idx int) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Contains(idx) {
			if best == nil || len(l.Blocks) < len(best.Blocks) {
				best = l
			}
		}
	}
	return best
}

// IsReducible reports whether the flow graph is reducible: every retreating
// edge found by a depth-first search must be a back edge, i.e. its target
// must dominate its source. The replication algorithm rolls back any
// replication that breaks this property (step 6 of JUMPS).
func IsReducible(f *Func) bool {
	e := ComputeEdges(f)
	d := ComputeDominators(e)
	n := len(f.Blocks)
	if n == 0 {
		return true
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	ok := true
	var dfs func(i int)
	dfs = func(i int) {
		color[i] = gray
		for _, s := range e.Succs[i] {
			j := s.Index
			switch color[j] {
			case white:
				dfs(j)
			case gray:
				// Retreating edge i -> j: must be a true back edge.
				if !d.Dominates(j, i) {
					ok = false
				}
			}
		}
		color[i] = black
	}
	dfs(0)
	return ok
}
