package cfg

import "sort"

// Dominators holds the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy algorithm ("A Simple, Fast Dominance Algorithm"):
// an idom fixpoint over reverse postorder. Dominance queries answer in
// O(1) from an Euler interval numbering of the dominator tree. The
// replication sweeps recompute dominators for every jump they consider, so
// this path dominates (sic) the differential fuzzer's and the optimizer's
// profile — the earlier set-based formulation was quadratic in blocks and
// made large replicated functions take seconds per sweep.
type Dominators struct {
	E *Edges
	// idom[i] is the immediate dominator's index, or -1 for the entry and
	// unreachable blocks.
	idom []int
	// pre/post are Euler-tour interval numbers of each block in the
	// dominator tree; a dominates b iff a's interval encloses b's.
	// Unreachable blocks keep pre == 0 (no interval).
	pre, post []int
}

// ComputeDominators computes the dominator tree on the given edge snapshot.
func ComputeDominators(e *Edges) *Dominators {
	n := len(e.F.Blocks)
	d := &Dominators{E: e, idom: make([]int, n), pre: make([]int, n), post: make([]int, n)}
	for i := range d.idom {
		d.idom[i] = -1
	}
	if n == 0 {
		return d
	}

	// Reverse postorder over reachable blocks.
	post := make([]int, 0, n) // blocks in postorder
	rpoNum := make([]int, n)  // block index -> postorder number, -1 = unreachable
	visited := make([]bool, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	type frame struct{ b, succ int }
	stack := []frame{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		succs := e.Succs[fr.b]
		if fr.succ < len(succs) {
			s := succs[fr.succ].Index
			fr.succ++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		rpoNum[fr.b] = len(post)
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}

	// CHK fixpoint. intersect walks the idom chains in postorder numbers.
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] < rpoNum[b] {
				a = d.idom[a]
			}
			for rpoNum[b] < rpoNum[a] {
				b = d.idom[b]
			}
		}
		return a
	}
	d.idom[0] = 0 // temporary self-loop for the fixpoint
	for changed := true; changed; {
		changed = false
		for pi := len(post) - 1; pi >= 0; pi-- {
			b := post[pi]
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range e.Preds[b] {
				pidx := p.Index
				if rpoNum[pidx] < 0 || d.idom[pidx] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = pidx
				} else {
					newIdom = intersect(pidx, newIdom)
				}
			}
			if newIdom >= 0 && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Euler intervals of the dominator tree for O(1) Dominates.
	childHead := make([]int, n) // first child, -1 = none
	childNext := make([]int, n) // next sibling
	for i := range childHead {
		childHead[i], childNext[i] = -1, -1
	}
	// Children are linked in reverse block order, preserving determinism.
	for i := n - 1; i >= 1; i-- {
		if rpoNum[i] < 0 {
			continue
		}
		p := d.idom[i]
		childNext[i] = childHead[p]
		childHead[p] = i
	}
	clock := 0
	type eframe struct{ b, child int }
	estack := []eframe{{0, childHead[0]}}
	clock++
	d.pre[0] = clock
	for len(estack) > 0 {
		fr := &estack[len(estack)-1]
		if fr.child >= 0 {
			c := fr.child
			fr.child = childNext[c]
			clock++
			d.pre[c] = clock
			estack = append(estack, eframe{c, childHead[c]})
			continue
		}
		clock++
		d.post[fr.b] = clock
		estack = estack[:len(estack)-1]
	}

	d.idom[0] = -1 // restore the exported convention
	return d
}

// Dominates reports whether block a dominates block b (by index). Every
// block dominates itself, including unreachable blocks; otherwise only
// reachable blocks participate in dominance.
func (d *Dominators) Dominates(a, b int) bool {
	if a < 0 || b < 0 || a >= len(d.pre) || b >= len(d.pre) {
		return false
	}
	if a == b {
		return true
	}
	if d.pre[a] == 0 || d.pre[b] == 0 {
		return false
	}
	return d.pre[a] <= d.pre[b] && d.post[b] <= d.post[a]
}

// IDom returns the immediate dominator index of block i, or -1.
func (d *Dominators) IDom(i int) int { return d.idom[i] }

// Loop is a natural loop: a header and the set of blocks (by index) forming
// the loop body, derived from one or more back edges into the header.
type Loop struct {
	Header *Block
	// Blocks maps block index -> membership. Includes the header.
	Blocks map[int]bool
	// Latches are the sources of the back edges.
	Latches []*Block
}

// Contains reports whether the loop contains the block with the given index.
func (l *Loop) Contains(idx int) bool { return l.Blocks[idx] }

// BlockIndices returns the loop's block indices in ascending order. Blocks
// is a map, so ranging over it directly visits blocks in a different order
// every run; any consumer whose result depends on visit order (hoisting,
// candidate selection) must iterate through this instead to keep
// compilation deterministic.
func (l *Loop) BlockIndices() []int {
	idxs := make([]int, 0, len(l.Blocks))
	for bi := range l.Blocks {
		idxs = append(idxs, bi)
	}
	sort.Ints(idxs)
	return idxs
}

// NaturalLoops finds all natural loops of the function: for every back edge
// t->h where h dominates t, the loop body is h plus every block that can
// reach t without passing through h. Loops sharing a header are merged, as is
// conventional.
func NaturalLoops(e *Edges, d *Dominators) []*Loop {
	byHeader := make(map[*Block]*Loop)
	var order []*Block
	for _, b := range e.F.Blocks {
		for _, s := range e.Succs[b.Index] {
			if d.Dominates(s.Index, b.Index) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s.Index: true}}
					byHeader[s] = l
					order = append(order, s)
				}
				l.Latches = append(l.Latches, b)
				// Collect the body by walking predecessors from the latch.
				if !l.Blocks[b.Index] {
					l.Blocks[b.Index] = true
					stack := []*Block{b}
					for len(stack) > 0 {
						x := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						for _, p := range e.Preds[x.Index] {
							if !l.Blocks[p.Index] {
								l.Blocks[p.Index] = true
								stack = append(stack, p)
							}
						}
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// LoopHeaderOf returns the innermost loop headed by block b, or nil.
func LoopHeaderOf(loops []*Loop, b *Block) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Header == b {
			if best == nil || len(l.Blocks) < len(best.Blocks) {
				best = l
			}
		}
	}
	return best
}

// InnermostLoopContaining returns the smallest loop containing block index
// idx, or nil.
func InnermostLoopContaining(loops []*Loop, idx int) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Contains(idx) {
			if best == nil || len(l.Blocks) < len(best.Blocks) {
				best = l
			}
		}
	}
	return best
}

// IsReducible reports whether the flow graph is reducible: every retreating
// edge found by a depth-first search must be a back edge, i.e. its target
// must dominate its source. The replication algorithm rolls back any
// replication that breaks this property (step 6 of JUMPS).
func IsReducible(f *Func) bool {
	e := ComputeEdges(f)
	d := ComputeDominators(e)
	n := len(f.Blocks)
	if n == 0 {
		return true
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	ok := true
	var dfs func(i int)
	dfs = func(i int) {
		color[i] = gray
		for _, s := range e.Succs[i] {
			j := s.Index
			switch color[j] {
			case white:
				dfs(j)
			case gray:
				// Retreating edge i -> j: must be a true back edge.
				if !d.Dominates(j, i) {
					ok = false
				}
			}
		}
		color[i] = black
	}
	dfs(0)
	return ok
}
