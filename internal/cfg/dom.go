package cfg

import "math/bits"

// Dominators holds the dominator tree of a function, computed with the
// Cooper–Harvey–Kennedy algorithm ("A Simple, Fast Dominance Algorithm"):
// an idom fixpoint over reverse postorder. Dominance queries answer in
// O(1) from an Euler interval numbering of the dominator tree. The
// replication sweeps recompute dominators for every jump they consider, so
// this path dominates (sic) the differential fuzzer's and the optimizer's
// profile — the earlier set-based formulation was quadratic in blocks and
// made large replicated functions take seconds per sweep. The tree's
// storage is borrowed from the function's Scratch arena; Release returns
// it for the next ComputeDominators to reuse.
type Dominators struct {
	E *Edges
	// idom[i] is the immediate dominator's index, or -1 for the entry and
	// unreachable blocks.
	idom []int32
	// pre/post are Euler-tour interval numbers of each block in the
	// dominator tree; a dominates b iff a's interval encloses b's.
	// Unreachable blocks keep pre == 0 (no interval).
	pre, post []int32

	f   *Func
	buf []int32
}

// Release returns the tree's storage to the function's Scratch arena. Safe
// to call more than once; the tree must not be queried afterwards.
func (d *Dominators) Release() {
	if d == nil || d.buf == nil {
		return
	}
	d.f.Scratch().PutInts(d.buf)
	d.buf = nil
	d.idom, d.pre, d.post = nil, nil, nil
}

// ComputeDominators computes the dominator tree on the given edge snapshot.
// Steady-state recomputation on a warm Scratch arena is allocation-free.
func ComputeDominators(e *Edges) *Dominators {
	f := e.F
	n := len(f.Blocks)
	scr := f.Scratch()
	keep := scr.Ints(3 * n)
	d := &Dominators{E: e, f: f, buf: keep}
	d.idom, d.pre, d.post = keep[:n:n], keep[n:2*n:2*n], keep[2*n:]
	for i := 0; i < n; i++ {
		d.idom[i] = -1
		d.pre[i] = 0
		d.post[i] = 0
	}
	if n == 0 {
		return d
	}

	// Temporary arrays: rpo numbers, postorder list, dominator-tree child
	// links, and a two-word DFS stack (block, successor cursor).
	tmp := scr.Ints(6 * n)
	rpoNum := tmp[:n:n] // block index -> postorder number; -1 unreachable, -2 on stack
	postList := tmp[n : 2*n : 2*n]
	childHead := tmp[2*n : 3*n : 3*n]
	childNext := tmp[3*n : 4*n : 4*n]
	stackB := tmp[4*n : 5*n : 5*n]
	stackS := tmp[5*n:]
	for i := 0; i < n; i++ {
		rpoNum[i] = -1
	}

	// Reverse postorder over reachable blocks.
	nPost := 0
	top := 0
	stackB[top], stackS[top] = 0, 0
	top++
	rpoNum[0] = -2
	for top > 0 {
		b := stackB[top-1]
		succs := e.Succs[b]
		if int(stackS[top-1]) < len(succs) {
			s := int32(succs[stackS[top-1]].Index)
			stackS[top-1]++
			if rpoNum[s] == -1 {
				rpoNum[s] = -2
				stackB[top], stackS[top] = s, 0
				top++
			}
			continue
		}
		rpoNum[b] = int32(nPost)
		postList[nPost] = b
		nPost++
		top--
	}

	// CHK fixpoint. intersect walks the idom chains in postorder numbers.
	intersect := func(a, b int32) int32 {
		for a != b {
			for rpoNum[a] < rpoNum[b] {
				a = d.idom[a]
			}
			for rpoNum[b] < rpoNum[a] {
				b = d.idom[b]
			}
		}
		return a
	}
	d.idom[0] = 0 // temporary self-loop for the fixpoint
	for changed := true; changed; {
		changed = false
		for pi := nPost - 1; pi >= 0; pi-- {
			b := postList[pi]
			if b == 0 {
				continue
			}
			newIdom := int32(-1)
			for _, p := range e.Preds[b] {
				pidx := int32(p.Index)
				if rpoNum[pidx] < 0 || d.idom[pidx] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = pidx
				} else {
					newIdom = intersect(pidx, newIdom)
				}
			}
			if newIdom >= 0 && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Euler intervals of the dominator tree for O(1) Dominates.
	for i := 0; i < n; i++ {
		childHead[i], childNext[i] = -1, -1
	}
	// Children are linked in reverse block order, preserving determinism.
	for i := int32(n - 1); i >= 1; i-- {
		if rpoNum[i] < 0 {
			continue
		}
		p := d.idom[i]
		childNext[i] = childHead[p]
		childHead[p] = i
	}
	clock := int32(0)
	top = 0
	stackB[top], stackS[top] = 0, childHead[0]
	top++
	clock++
	d.pre[0] = clock
	for top > 0 {
		if c := stackS[top-1]; c >= 0 {
			stackS[top-1] = childNext[c]
			clock++
			d.pre[c] = clock
			stackB[top], stackS[top] = c, childHead[c]
			top++
			continue
		}
		clock++
		d.post[stackB[top-1]] = clock
		top--
	}

	d.idom[0] = -1 // restore the exported convention
	scr.PutInts(tmp)
	return d
}

// Dominates reports whether block a dominates block b (by index). Every
// block dominates itself, including unreachable blocks; otherwise only
// reachable blocks participate in dominance.
func (d *Dominators) Dominates(a, b int) bool {
	if a < 0 || b < 0 || a >= len(d.pre) || b >= len(d.pre) {
		return false
	}
	if a == b {
		return true
	}
	if d.pre[a] == 0 || d.pre[b] == 0 {
		return false
	}
	return d.pre[a] <= d.pre[b] && d.post[b] <= d.post[a]
}

// IDom returns the immediate dominator index of block i, or -1.
func (d *Dominators) IDom(i int) int { return int(d.idom[i]) }

// Loop is a natural loop: a header and the set of blocks (by index) forming
// the loop body, derived from one or more back edges into the header. The
// member set is a bitset; query it with Contains, NumBlocks, ForEachBlock
// or BlockIndices.
type Loop struct {
	Header *Block
	// Latches are the sources of the back edges.
	Latches []*Block

	bits  []uint64
	count int
}

// Contains reports whether the loop contains the block with the given index.
func (l *Loop) Contains(idx int) bool {
	return idx >= 0 && idx>>6 < len(l.bits) && l.bits[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// NumBlocks returns the number of blocks in the loop (header included).
func (l *Loop) NumBlocks() int { return l.count }

// add inserts a block index, reporting whether it was new.
func (l *Loop) add(idx int) bool {
	w := idx >> 6
	bit := uint64(1) << (uint(idx) & 63)
	if l.bits[w]&bit != 0 {
		return false
	}
	l.bits[w] |= bit
	l.count++
	return true
}

// ForEachBlock calls fn for every member block index in ascending order.
func (l *Loop) ForEachBlock(fn func(idx int)) {
	for wi, w := range l.bits {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// BlockIndices returns the loop's block indices in ascending order; any
// consumer whose result depends on visit order (hoisting, candidate
// selection) iterates through this to keep compilation deterministic.
func (l *Loop) BlockIndices() []int {
	idxs := make([]int, 0, l.count)
	l.ForEachBlock(func(idx int) { idxs = append(idxs, idx) })
	return idxs
}

// NaturalLoops finds all natural loops of the function: for every back edge
// t->h where h dominates t, the loop body is h plus every block that can
// reach t without passing through h. Loops sharing a header are merged, as is
// conventional.
func NaturalLoops(e *Edges, d *Dominators) []*Loop {
	n := len(e.F.Blocks)
	nw := (n + 63) / 64
	byHeader := make(map[*Block]*Loop)
	var loops []*Loop
	var stack []*Block
	for _, b := range e.F.Blocks {
		for _, s := range e.Succs[b.Index] {
			if d.Dominates(s.Index, b.Index) {
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, bits: make([]uint64, nw)}
					l.add(s.Index)
					byHeader[s] = l
					loops = append(loops, l)
				}
				l.Latches = append(l.Latches, b)
				// Collect the body by walking predecessors from the latch.
				if l.add(b.Index) {
					stack = append(stack[:0], b)
					for len(stack) > 0 {
						x := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						for _, p := range e.Preds[x.Index] {
							if l.add(p.Index) {
								stack = append(stack, p)
							}
						}
					}
				}
			}
		}
	}
	return loops
}

// LoopHeaderOf returns the innermost loop headed by block b, or nil.
func LoopHeaderOf(loops []*Loop, b *Block) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Header == b {
			if best == nil || l.count < best.count {
				best = l
			}
		}
	}
	return best
}

// InnermostLoopContaining returns the smallest loop containing block index
// idx, or nil.
func InnermostLoopContaining(loops []*Loop, idx int) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Contains(idx) {
			if best == nil || l.count < best.count {
				best = l
			}
		}
	}
	return best
}

// IsReducible reports whether the flow graph is reducible: every retreating
// edge found by a depth-first search must be a back edge, i.e. its target
// must dominate its source. The replication algorithm rolls back any
// replication that breaks this property (step 6 of JUMPS).
func IsReducible(f *Func) bool {
	e := ComputeEdges(f)
	d := ComputeDominators(e)
	n := len(f.Blocks)
	if n == 0 {
		d.Release()
		e.Release()
		return true
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	scr := f.Scratch()
	color := scr.Ints(n)
	for i := range color {
		color[i] = white
	}
	ok := true
	var dfs func(i int)
	dfs = func(i int) {
		color[i] = gray
		for _, s := range e.Succs[i] {
			j := s.Index
			switch color[j] {
			case white:
				dfs(j)
			case gray:
				// Retreating edge i -> j: must be a true back edge.
				if !d.Dominates(j, i) {
					ok = false
				}
			}
		}
		color[i] = black
	}
	dfs(0)
	scr.PutInts(color)
	d.Release()
	e.Release()
	return ok
}
