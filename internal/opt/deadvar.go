package opt

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// DeadVariableElimination removes register assignments whose result is
// never used, and comparisons whose condition code no branch consumes.
// Reports whether anything changed.
func DeadVariableElimination(f *cfg.Func) bool {
	e := cfg.ComputeEdges(f)
	lv := ComputeLiveness(f, e)
	changed := false
	var scratch []rtl.Reg
	var live RegSet
	var keepBuf []bool
	for _, b := range f.Blocks {
		live.CopyFrom(lv.Out[b.Index])
		// Walk backwards, deleting dead pure definitions.
		if cap(keepBuf) < len(b.Insts) {
			keepBuf = make([]bool, len(b.Insts))
		}
		keep := keepBuf[:len(b.Insts)]
		for ii := range keep {
			keep[ii] = false
		}
		for ii := len(b.Insts) - 1; ii >= 0; ii-- {
			in := &b.Insts[ii]
			d := instDef(in)
			dead := false
			switch in.Kind {
			case rtl.Move, rtl.Bin, rtl.Un:
				dead = in.Dst.Kind == rtl.OReg && !live.Has(in.Dst.Reg)
				// Self-moves are dead regardless of liveness.
				if in.Kind == rtl.Move && in.Dst.Equal(in.Src) {
					dead = true
				}
			case rtl.Cmp:
				dead = !live.Has(ccReg)
			}
			if dead {
				changed = true
				continue
			}
			keep[ii] = true
			if d != rtl.RegNone {
				live.Remove(d)
			}
			scratch = instUses(in, scratch[:0])
			for _, r := range scratch {
				live.Add(r)
			}
		}
		if changed {
			out := b.Insts[:0]
			for ii := range b.Insts {
				if keep[ii] {
					out = append(out, b.Insts[ii])
				}
			}
			b.Insts = out
		}
	}
	lv.Release()
	e.Release()
	return changed
}
