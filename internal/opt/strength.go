package opt

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// StrengthReduction replaces multiplications of basic induction variables
// by loop constants with running additions (covering Figure 3's
// "recurrences" as well). For a loop with a basic induction variable
//
//	i = i + c        (single definition of i in the loop, c constant)
//
// every in-loop computation t = i * k (k constant) becomes a derived
// variable s maintained as s = s + c*k next to i's update, initialized as
// s = i * k in the preheader; the original instruction becomes t = s.
// Reports whether anything changed.
func StrengthReduction(f *cfg.Func) bool {
	changed := false
	for iter := 0; iter < 10; iter++ {
		e := cfg.ComputeEdges(f)
		d := cfg.ComputeDominators(e)
		loops := cfg.NaturalLoops(e, d)
		d.Release()
		reduced := false
		for _, l := range loops {
			if reduceLoop(f, e, l) {
				reduced = true
				changed = true
				break // block indices moved; recompute analyses
			}
		}
		e.Release()
		if !reduced {
			break
		}
	}
	return changed
}

// bivInfo describes a basic induction variable.
type bivInfo struct {
	reg   rtl.Reg
	step  int64
	block int // block index of the update
	inst  int // instruction index of the update
}

func reduceLoop(f *cfg.Func, e *cfg.Edges, l *cfg.Loop) bool {
	// Find basic induction variables: registers with exactly one in-loop
	// definition of the shape r = r + c or r = r - c.
	defs := map[rtl.Reg][]bivInfo{}
	for _, bi := range l.BlockIndices() {
		b := f.Blocks[bi]
		for ii := range b.Insts {
			in := &b.Insts[ii]
			r := in.DefReg()
			if r == rtl.RegNone {
				continue
			}
			info := bivInfo{reg: r, block: bi, inst: ii}
			if in.Kind == rtl.Bin && in.Dst.Kind == rtl.OReg &&
				in.Src.Kind == rtl.OReg && in.Src.Reg == r && in.Src2.Kind == rtl.OImm {
				switch in.BOp {
				case rtl.Add:
					info.step = in.Src2.Val
				case rtl.Sub:
					info.step = -in.Src2.Val
				}
			}
			defs[r] = append(defs[r], info)
		}
	}
	bivs := map[rtl.Reg]bivInfo{}
	for r, infos := range defs {
		if len(infos) == 1 && infos[0].step != 0 {
			bivs[r] = infos[0]
		}
	}
	if len(bivs) == 0 {
		return false
	}
	// Find a candidate multiplication t = biv * k. Index order, not map
	// order: only one candidate is reduced per call, so the pick would
	// otherwise differ run to run.
	for _, bi := range l.BlockIndices() {
		b := f.Blocks[bi]
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if in.Kind != rtl.Bin || in.BOp != rtl.Mul || in.Dst.Kind != rtl.OReg {
				continue
			}
			var iv bivInfo
			var k int64
			switch {
			case in.Src.Kind == rtl.OReg && in.Src2.Kind == rtl.OImm:
				var ok bool
				if iv, ok = bivs[in.Src.Reg]; !ok {
					continue
				}
				k = in.Src2.Val
			case in.Src2.Kind == rtl.OReg && in.Src.Kind == rtl.OImm:
				var ok bool
				if iv, ok = bivs[in.Src2.Reg]; !ok {
					continue
				}
				k = in.Src.Val
			default:
				continue
			}
			if in.Dst.Reg == iv.reg || k == 0 {
				continue
			}
			// s tracks biv*k across the loop. Capture block pointers and
			// rewrite the multiplication before any structural change
			// invalidates indices.
			s := f.NewVReg()
			ub := f.Blocks[iv.block]
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.R(s)}
			// Insert the maintenance add right after the biv update.
			upd := rtl.Inst{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(s), Src: rtl.R(s), Src2: rtl.Imm(iv.step * k)}
			rest := append([]rtl.Inst{}, ub.Insts[iv.inst+1:]...)
			ub.Insts = append(ub.Insts[:iv.inst+1], upd)
			ub.Insts = append(ub.Insts, rest...)
			// Initialize s on loop entry.
			ph := ensurePreheader(f, e, l)
			appendBeforeTerm(ph, rtl.Inst{
				Kind: rtl.Bin, BOp: rtl.Mul,
				Dst: rtl.R(s), Src: rtl.R(iv.reg), Src2: rtl.Imm(k),
			})
			return true
		}
	}
	return false
}
