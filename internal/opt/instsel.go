package opt

import (
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// InstructionSelection combines adjacent or nearby RTLs into single legal
// machine instructions, in the VPO style: the effect of two instructions is
// symbolically composed and kept when the machine can encode it. On the
// 68020 this folds loads into memory-operand ALU instructions and rebuilds
// read-modify-write forms; on the SPARC it mostly eliminates redundant
// copies. Reports whether anything changed.
func InstructionSelection(f *cfg.Func, m *machine.Machine) bool {
	e := cfg.ComputeEdges(f)
	lv := ComputeLiveness(f, e)
	changed := false
	for _, b := range f.Blocks {
		for combineBlock(b, m, lv.Out[b.Index]) {
			changed = true
		}
	}
	lv.Release()
	e.Release()
	return changed
}

// regReads reports whether instruction in reads register r (including
// through memory addressing).
func regReads(in *rtl.Inst, r rtl.Reg) bool {
	for _, o := range in.SrcOperands() {
		if o.UsesReg(r) {
			return true
		}
	}
	if in.Dst.Kind == rtl.OMem && in.Dst.UsesReg(r) {
		return true
	}
	return false
}

// readsMemory reports whether the instruction reads any memory cell.
func readsMemory(in *rtl.Inst) bool {
	for _, o := range in.SrcOperands() {
		if o.IsMem() {
			return true
		}
	}
	return false
}

// writesMemory reports whether the instruction writes memory (calls count:
// the callee may store anywhere).
func writesMemory(in *rtl.Inst) bool {
	if in.Kind == rtl.Call {
		return true
	}
	switch in.Kind {
	case rtl.Move, rtl.Bin, rtl.Un:
		return in.Dst.IsMem()
	}
	return false
}

// operandDepsStable reports whether operand o evaluates to the same value
// at both ends of the instruction window (exclusive); the window
// instructions are insts[from+1 .. to-1].
func operandDepsStable(insts []rtl.Inst, from, to int, o rtl.Operand) bool {
	for k := from + 1; k < to; k++ {
		in := &insts[k]
		switch o.Kind {
		case rtl.OReg:
			if instDef(in) == o.Reg {
				return false
			}
		case rtl.OMem:
			if instDef(in) == o.Reg || o.Index != rtl.RegNone && instDef(in) == o.Index {
				return false
			}
			if writesMemory(in) {
				return false
			}
		case rtl.OLocal, rtl.OGlobal:
			if writesMemory(in) {
				return false
			}
		}
	}
	return true
}

// substituteReg replaces register r with operand x everywhere it is read in
// the instruction, folding address constants into memory operands where
// possible. Returns false (and leaves in untouched) if a read of r cannot
// be expressed.
func substituteReg(in *rtl.Inst, r rtl.Reg, x rtl.Operand) bool {
	repl := *in
	repl.Table = in.Table // shared; only targets matter and are unchanged
	replaceOp := func(o rtl.Operand) (rtl.Operand, bool) {
		switch o.Kind {
		case rtl.OReg:
			if o.Reg == r {
				return x, true
			}
		case rtl.OMem:
			base, idx := o.Reg, o.Index
			if base == r {
				switch x.Kind {
				case rtl.OReg:
					o.Reg = x.Reg
				case rtl.OAddrLocal:
					// M[(&fp+v) + d (+ i*s)] = local access.
					if idx == rtl.RegNone {
						return rtl.Local(x.Val + o.Val), true
					}
					return rtl.MemIdx(rtl.FP, x.Val+o.Val, idx, o.Scale), true
				default:
					return o, false
				}
			}
			if idx == r {
				if x.Kind == rtl.OReg {
					o.Index = x.Reg
				} else if x.Kind == rtl.OImm && o.Reg != r {
					// Fold a constant index into the displacement.
					o.Val += x.Val * o.Scale
					o.Index = rtl.RegNone
					o.Scale = 0
				} else {
					return o, false
				}
			}
			return o, true
		}
		return o, true
	}
	var ok bool
	for _, field := range []*rtl.Operand{&repl.Src, &repl.Src2} {
		if *field, ok = replaceOp(*field); !ok {
			return false
		}
	}
	// A memory destination's addressing registers are reads too.
	if repl.Dst.Kind == rtl.OMem {
		if repl.Dst, ok = replaceOp(repl.Dst); !ok {
			return false
		}
	}
	*in = repl
	return true
}

// combineBlock performs one round of peephole combining in b; it returns
// true if it changed anything (callers loop to a fixed point).
func combineBlock(b *cfg.Block, m *machine.Machine, liveOut RegSet) bool {
	insts := b.Insts
	for i := 0; i < len(insts); i++ {
		in := &insts[i]
		// Pattern A: Move r <- x, with exactly one later read of r in the
		// block before any redefinition; fold x into the reader.
		if in.Kind == rtl.Move && in.Dst.Kind == rtl.OReg && in.Dst.Reg.IsVirtual() {
			r := in.Dst.Reg
			if in.Src.UsesReg(r) {
				continue
			}
			useIdx, uses, redefined := scanUses(insts, i+1, r)
			if uses == 1 && (redefined || !liveOut.Has(r)) &&
				operandDepsStable(insts, i, useIdx, in.Src) {
				cand := insts[useIdx]
				if instDef(&cand) == r && regReads(&cand, r) {
					// r = r op x style: substitution still fine.
					_ = cand
				}
				if substituteReg(&cand, r, in.Src) && m.LegalInst(&cand) && !regReads(&cand, r) {
					insts[useIdx] = cand
					// Delete the move.
					b.Insts = append(insts[:i], insts[i+1:]...)
					return true
				}
			}
		}
		// Pattern B: {Bin,Un} r <- ..., immediately followed by
		// Move mem <- r with r otherwise dead: write the result directly.
		if (in.Kind == rtl.Bin || in.Kind == rtl.Un) &&
			in.Dst.Kind == rtl.OReg && in.Dst.Reg.IsVirtual() && i+1 < len(insts) {
			r := in.Dst.Reg
			nx := &insts[i+1]
			if nx.Kind == rtl.Move && nx.Dst.IsMem() && nx.Src.Kind == rtl.OReg && nx.Src.Reg == r &&
				!nx.Dst.UsesReg(r) {
				_, uses, redefined := scanUses(insts, i+2, r)
				if uses == 0 && (redefined || !liveOut.Has(r)) {
					cand := *in
					cand.Dst = nx.Dst
					if m.LegalInst(&cand) {
						insts[i] = cand
						b.Insts = append(insts[:i+1], insts[i+2:]...)
						return true
					}
				}
			}
		}
	}
	return false
}

// scanUses finds reads of r in insts[from:]: the index of the first reading
// instruction, the number of reading instructions before r is redefined,
// and whether a redefinition was found. An instruction that both reads and
// redefines r counts as a use and stops the scan after itself.
func scanUses(insts []rtl.Inst, from int, r rtl.Reg) (firstUse, uses int, redefined bool) {
	firstUse = -1
	for k := from; k < len(insts); k++ {
		in := &insts[k]
		if regReads(in, r) {
			if firstUse < 0 {
				firstUse = k
			}
			uses++
		}
		if instDef(in) == r {
			return firstUse, uses, true
		}
	}
	return firstUse, uses, false
}
