package opt

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// ensurePreheader returns the loop's preheader block, creating one when
// needed: a block positionally just before the header that receives every
// edge into the header from outside the loop. The paper's §3.3.3 points out
// that replication relocates these preheaders profitably; creating them
// lazily here reproduces that interaction.
func ensurePreheader(f *cfg.Func, e *cfg.Edges, l *cfg.Loop) *cfg.Block {
	h := l.Header
	// An existing preheader: a sole outside predecessor that falls through
	// or jumps directly to the header.
	var outside []*cfg.Block
	for _, p := range e.Preds[h.Index] {
		if !l.Contains(p.Index) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := outside[0]
		if t := p.Term(); (t == nil || t.Kind == rtl.Jmp && t.Target == h.Label) &&
			len(e.Succs[p.Index]) == 1 {
			return p
		}
	}
	// If an in-loop block falls through into the header (a fall-through
	// back edge), give it an explicit jump block first so the preheader
	// does not intercept the back edge and execute every iteration.
	if h.Index > 0 {
		prev := f.Blocks[h.Index-1]
		if l.Contains(prev.Index) && f.FallThrough(prev) == h {
			jb := &cfg.Block{
				Label: f.NewLabel(),
				Insts: []rtl.Inst{{Kind: rtl.Jmp, Target: h.Label}},
			}
			f.InsertBlocksAfter(prev.Index, jb)
		}
	}
	// Build a new preheader immediately before the header.
	ph := &cfg.Block{Label: f.NewLabel()}
	// Any outside block falling through into the header now falls into the
	// preheader instead, which falls into the header.
	f.InsertBlocksAfter(h.Index-1, ph)
	// Retarget all outside edges that *branch* to the header.
	for _, p := range outside {
		if p == ph {
			continue
		}
		for ii := range p.Insts {
			in := &p.Insts[ii]
			switch in.Kind {
			case rtl.Jmp, rtl.Br:
				if in.Target == h.Label {
					in.Target = ph.Label
				}
			case rtl.IJmp:
				for ti := range in.Table {
					if in.Table[ti] == h.Label {
						in.Table[ti] = ph.Label
					}
				}
			}
		}
	}
	return ph
}

// appendBeforeTerm adds instructions at the end of b but before its
// terminating control transfer, if any.
func appendBeforeTerm(b *cfg.Block, insts ...rtl.Inst) {
	if t := b.Term(); t != nil {
		term := *t
		b.Insts = append(b.Insts[:len(b.Insts)-1], insts...)
		b.Insts = append(b.Insts, term)
		return
	}
	b.Insts = append(b.Insts, insts...)
}

// CodeMotion hoists loop-invariant register computations into loop
// preheaders. Only pure register/constant computations are moved (no memory
// reads), and only when the destination has a single static definition in
// the loop, is not live into the header, and has no uses outside the loop.
// Reports whether anything changed.
func CodeMotion(f *cfg.Func) bool {
	changed := false
	// Loops are recomputed after each successful hoist set because
	// preheader insertion renumbers blocks.
	for iter := 0; iter < 20; iter++ {
		e := cfg.ComputeEdges(f)
		d := cfg.ComputeDominators(e)
		loops := cfg.NaturalLoops(e, d)
		d.Release()
		if len(loops) == 0 {
			e.Release()
			return changed
		}
		lv := ComputeLiveness(f, e)

		hoisted := false
		var liveOut RegSet
		for _, l := range loops {
			// Registers live out of the loop (live into any outside
			// successor of a loop block): their in-loop defs must stay.
			liveOut.Clear()
			l.ForEachBlock(func(bi int) {
				for _, s := range e.Succs[bi] {
					if !l.Contains(s.Index) {
						liveOut.UnionWith(lv.In[s.Index])
					}
				}
			})
			// Registers defined anywhere in the loop.
			definedInLoop := map[rtl.Reg]int{}
			l.ForEachBlock(func(bi int) {
				for ii := range f.Blocks[bi].Insts {
					if r := f.Blocks[bi].Insts[ii].DefReg(); r != rtl.RegNone {
						definedInLoop[r]++
					}
				}
			})
			var moves []rtl.Inst
			// In index order: hoist order decides both the preheader's
			// instruction sequence and (via definedInLoop deletions) which
			// later candidates qualify, so map order would be visible in
			// the output.
			for _, bi := range l.BlockIndices() {
				b := f.Blocks[bi]
				kept := b.Insts[:0]
				for ii := range b.Insts {
					in := b.Insts[ii]
					// Safe to hoist when: the computation is pure and its
					// sources are loop-invariant; this is the only in-loop
					// definition of the destination; the destination's
					// value neither flows into the loop from outside
					// (live-in at the header) nor out of it (live at an
					// exit) — so defs of the same register elsewhere (e.g.
					// in replicated copies of this loop) cannot interact.
					if !invariantCandidate(&in, l, definedInLoop) ||
						in.Dst.Kind != rtl.OReg || !in.Dst.Reg.IsVirtual() ||
						definedInLoop[in.Dst.Reg] != 1 ||
						lv.In[l.Header.Index].Has(in.Dst.Reg) ||
						liveOut.Has(in.Dst.Reg) {
						kept = append(kept, in)
						continue
					}
					moves = append(moves, in)
					// The hoisted destination now counts as loop-invariant
					// for later candidates in this same sweep.
					delete(definedInLoop, in.Dst.Reg)
				}
				b.Insts = kept
			}
			if len(moves) > 0 {
				ph := ensurePreheader(f, e, l)
				appendBeforeTerm(ph, moves...)
				hoisted = true
				changed = true
				break // graph changed; recompute everything
			}
		}
		lv.Release()
		e.Release()
		if !hoisted {
			return changed
		}
	}
	return changed
}

// invariantCandidate reports whether in computes a register value from
// operands invariant in the loop: constants, addresses, or registers with
// no definition inside the loop.
func invariantCandidate(in *rtl.Inst, l *cfg.Loop, definedInLoop map[rtl.Reg]int) bool {
	switch in.Kind {
	case rtl.Move, rtl.Bin, rtl.Un:
	default:
		return false
	}
	if in.Dst.Kind != rtl.OReg {
		return false
	}
	// A bare materialization (r = constant/address) costs the same inside
	// or outside the loop; hoisting it only lengthens live ranges and
	// raises register pressure, so leave it where it is.
	if in.Kind == rtl.Move && in.Src.IsImmLike() {
		return false
	}
	for _, o := range in.SrcOperands() {
		switch o.Kind {
		case rtl.OImm, rtl.OAddrLocal, rtl.OAddrGlobal:
		case rtl.OReg:
			if n, defined := definedInLoop[o.Reg]; defined && n > 0 {
				return false // source is computed inside the loop
			}
		default:
			return false // memory reads are not hoisted
		}
	}
	return true
}
