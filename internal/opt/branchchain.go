package opt

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// chainTarget follows empty blocks and jump-only blocks from label l to the
// final effective destination.
func chainTarget(f *cfg.Func, l rtl.Label) rtl.Label {
	seen := map[rtl.Label]bool{}
	for {
		if seen[l] {
			return l // cycle (empty infinite loop); leave as-is
		}
		seen[l] = true
		b := f.BlockByLabel(l)
		if b == nil {
			return l
		}
		switch {
		case len(b.Insts) == 0:
			// Empty block: falls through to the positionally next block.
			if b.Index+1 >= len(f.Blocks) {
				return l
			}
			l = f.Blocks[b.Index+1].Label
		case len(b.Insts) == 1 && b.Insts[0].Kind == rtl.Jmp:
			l = b.Insts[0].Target
		default:
			return l
		}
	}
}

// BranchChaining retargets branches, jumps and jump-table entries that lead
// to empty or jump-only blocks directly at their final destination. Reports
// whether anything changed.
func BranchChaining(f *cfg.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			switch in.Kind {
			case rtl.Jmp, rtl.Br:
				if t := chainTarget(f, in.Target); t != in.Target {
					in.Target = t
					changed = true
				}
			case rtl.IJmp:
				for ti, l := range in.Table {
					if t := chainTarget(f, l); t != l {
						in.Table[ti] = t
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// MergeBlocks coalesces straight-line block pairs: when block b transfers
// only to s (fall-through or jump) and s's only predecessor is b, s's
// instructions are appended to b and s is removed. This welds replicated
// sequences onto their origin so that local value numbering sees across the
// seam (the paper's §3.3.2 interactions). Reports whether anything changed.
func MergeBlocks(f *cfg.Func) bool {
	changed := false
	for {
		e := cfg.ComputeEdges(f)
		merged := false
		for _, b := range f.Blocks {
			succs := e.Succs[b.Index]
			if len(succs) != 1 {
				continue
			}
			s := succs[0]
			if s == b || s.Index == 0 || len(e.Preds[s.Index]) != 1 {
				continue
			}
			if t := b.Term(); t != nil && t.Kind != rtl.Jmp {
				continue // Br/IJmp/Ret with a single successor: leave alone
			}
			// Drop b's jump (if any) and inline s.
			if t := b.Term(); t != nil {
				// b jumps to s. When s does not directly follow b, merging
				// relocates s's instructions to b's position — sound only
				// if s cannot fall through (it ends in a jump, indirect
				// jump or return). Otherwise the fall-through edge would
				// silently retarget to b's positional successor.
				if s.Index != b.Index+1 {
					st := s.Term()
					if st == nil || (st.Kind != rtl.Jmp && st.Kind != rtl.IJmp && st.Kind != rtl.Ret) {
						continue
					}
				}
				b.Insts = b.Insts[:len(b.Insts)-1]
			} else if s.Index != b.Index+1 {
				continue // fall-through must be positional
			}
			b.Insts = append(b.Insts, s.Insts...)
			f.RemoveBlocks(map[rtl.Label]bool{s.Label: true})
			merged = true
			changed = true
			break
		}
		if !merged {
			return changed
		}
	}
}

// DeadCodeElimination removes unreachable blocks and is re-run after every
// structural change, per the paper's Figure 3 ordering.
func DeadCodeElimination(f *cfg.Func) bool {
	return cfg.RemoveUnreachable(f)
}
