package opt

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// buildLiveChain builds a straight chain of blocks defining and using a few
// virtual registers, closed by a backward branch so liveness iterates.
func buildLiveChain(n int) *cfg.Func {
	f := cfg.NewFunc("live", 0)
	blocks := make([]*cfg.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for i, b := range blocks {
		r := rtl.VRegBase + rtl.Reg(i%8)
		b.Insts = []rtl.Inst{
			{Kind: rtl.Move, Dst: rtl.R(r), Src: rtl.Imm(int64(i))},
			{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(r), Src: rtl.R(r), Src2: rtl.R(rtl.VRegBase + rtl.Reg((i+1)%8))},
		}
	}
	f.NVRegs = 8
	blocks[n-2].Insts = append(blocks[n-2].Insts,
		rtl.Inst{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(0)},
		rtl.Inst{Kind: rtl.Br, BrRel: rtl.Lt, Target: blocks[0].Label})
	blocks[n-1].Insts = append(blocks[n-1].Insts, rtl.Inst{Kind: rtl.Ret})
	return f
}

// TestAllocsComputeLiveness pins the steady-state cost of the dataflow
// analysis: the In/Out/gen/kill bitsets share one arena-borrowed backing,
// so a warm ComputeLiveness/Release cycle allocates only the fixed
// descriptors (the Liveness struct and its two []RegSet headers), never
// per-block or per-register memory.
func TestAllocsComputeLiveness(t *testing.T) {
	f := buildLiveChain(64)
	e := cfg.ComputeEdges(f)
	ComputeLiveness(f, e).Release() // warm the arena
	got := testing.AllocsPerRun(200, func() {
		ComputeLiveness(f, e).Release()
	})
	e.Release()
	if got > 3 {
		t.Errorf("warm ComputeLiveness cycle allocates %.0f times, want at most 3 fixed descriptors", got)
	}
}

// TestLivenessAllocsIndependentOfSize is the sharper form of the pin: the
// descriptor count must not grow with the function. A regression that
// reintroduces per-block set allocation fails this immediately.
func TestLivenessAllocsIndependentOfSize(t *testing.T) {
	count := func(n int) float64 {
		f := buildLiveChain(n)
		e := cfg.ComputeEdges(f)
		ComputeLiveness(f, e).Release()
		got := testing.AllocsPerRun(100, func() {
			ComputeLiveness(f, e).Release()
		})
		e.Release()
		return got
	}
	small, large := count(16), count(256)
	if large > small {
		t.Errorf("liveness allocations grow with block count: %0.f at 16 blocks, %.0f at 256", small, large)
	}
}
