package opt

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// v returns the i-th virtual register.
func v(i int) rtl.Reg { return rtl.VRegBase + rtl.Reg(i) }

func countKind(f *cfg.Func, k rtl.Kind) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == k {
				n++
			}
		}
	}
	return n
}

func TestBranchChainingJumpChain(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock() // jump-only block
	b2 := f.NewBlock() // empty block
	b3 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b2.Label}}
	// b2 empty: falls into b3
	b3.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	if !BranchChaining(f) {
		t.Fatal("expected chaining")
	}
	if b0.Insts[0].Target != b3.Label {
		t.Errorf("chained to %v, want %v", b0.Insts[0].Target, b3.Label)
	}
	_ = b2
}

func TestBranchChainingCycleSafe(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b2.Label}}
	b2.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	BranchChaining(f) // must terminate
}

func TestMergeBlocks(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b1.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(v(0))}}
	if !MergeBlocks(f) {
		t.Fatal("expected merge")
	}
	if len(f.Blocks) != 1 || len(f.Blocks[0].Insts) != 2 {
		t.Fatalf("merge result:\n%s", f)
	}
}

func TestMergeBlocksKeepsLoops(t *testing.T) {
	// A self-loop must not be merged away.
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = nil
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(v(0)), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b1.Label},
	}
	b2.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	before := len(f.Blocks)
	MergeBlocks(f)
	// b0 may merge into nothing (it has a successor with 2 preds), the
	// loop must survive.
	if f.BlockByLabel(b1.Label) == nil {
		t.Fatal("loop block merged away")
	}
	_ = before
}

func TestFoldConstants(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(0)), Src: rtl.Imm(2), Src2: rtl.Imm(3)},
		{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(v(1)), Src: rtl.R(v(0)), Src2: rtl.Imm(1)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(2)), Src: rtl.R(v(1)), Src2: rtl.Imm(0)},
		{Kind: rtl.Un, UOp: rtl.Neg, Dst: rtl.R(v(3)), Src: rtl.Imm(7)},
		{Kind: rtl.Ret, Src: rtl.R(v(3))},
	}
	if !FoldConstants(f) {
		t.Fatal("expected folding")
	}
	if b.Insts[0].Kind != rtl.Move || b.Insts[0].Src.Val != 5 {
		t.Errorf("2+3 not folded: %v", &b.Insts[0])
	}
	if b.Insts[1].Kind != rtl.Move {
		t.Errorf("*1 not simplified: %v", &b.Insts[1])
	}
	if b.Insts[2].Kind != rtl.Move {
		t.Errorf("+0 not simplified: %v", &b.Insts[2])
	}
	if b.Insts[3].Kind != rtl.Move || b.Insts[3].Src.Val != -7 {
		t.Errorf("neg not folded: %v", &b.Insts[3])
	}
}

func TestFoldBranchesConstantCmp(t *testing.T) {
	mk := func(rel rtl.Rel, x, y int64) *cfg.Func {
		f := cfg.NewFunc("t", 0)
		b0 := f.NewBlock()
		b1 := f.NewBlock()
		b2 := f.NewBlock()
		b0.Insts = []rtl.Inst{
			{Kind: rtl.Cmp, Src: rtl.Imm(x), Src2: rtl.Imm(y)},
			{Kind: rtl.Br, BrRel: rel, Target: b2.Label},
		}
		b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.Imm(1)}}
		b2.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.Imm(2)}}
		return f
	}
	taken := mk(rtl.Lt, 1, 2)
	if !FoldBranches(taken) {
		t.Fatal("expected fold")
	}
	if countKind(taken, rtl.Jmp) != 1 || countKind(taken, rtl.Br) != 0 {
		t.Errorf("taken branch should become a jump:\n%s", taken)
	}
	notTaken := mk(rtl.Gt, 1, 2)
	FoldBranches(notTaken)
	if countKind(notTaken, rtl.Jmp) != 0 || countKind(notTaken, rtl.Br) != 0 {
		t.Errorf("untaken branch should vanish:\n%s", notTaken)
	}
}

func TestFoldBranchToNext(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(v(0)), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b1.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	if !FoldBranches(f) {
		t.Fatal("expected fold")
	}
	if countKind(f, rtl.Br) != 0 {
		t.Error("branch to next block should be deleted")
	}
	// The now-dead Cmp goes with dead-variable elimination.
	DeadVariableElimination(f)
	if countKind(f, rtl.Cmp) != 0 {
		t.Error("orphan Cmp should be dead")
	}
}

func TestDeadVariableElimination(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)},  // dead (overwritten)
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(2)},  // live
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(3)},  // dead (never used)
		{Kind: rtl.Move, Dst: rtl.R(v(2)), Src: rtl.R(v(2))}, // self-move
		{Kind: rtl.Move, Dst: rtl.Local(0), Src: rtl.Imm(9)}, // store: kept
		{Kind: rtl.Ret, Src: rtl.R(v(0))},
	}
	if !DeadVariableElimination(f) {
		t.Fatal("expected elimination")
	}
	if len(b.Insts) != 3 {
		t.Errorf("got %d insts, want 3:\n%s", len(b.Insts), f)
	}
}

func TestDeadVarKeepsLiveAcrossBlocks(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(v(0))}}
	if DeadVariableElimination(f) {
		t.Errorf("nothing should be dead:\n%s", f)
	}
}

func TestCSELocal(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(0)), Src: rtl.R(v(9)), Src2: rtl.Imm(4)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(1)), Src: rtl.R(v(9)), Src2: rtl.Imm(4)}, // same expr
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(2)), Src: rtl.R(v(0)), Src2: rtl.R(v(1))},
		{Kind: rtl.Ret, Src: rtl.R(v(2))},
	}
	if !CommonSubexpressions(f, machine.M68020) {
		t.Fatal("expected CSE")
	}
	if b.Insts[1].Kind != rtl.Move || b.Insts[1].Src.Reg != v(0) {
		t.Errorf("redundant add not reused: %v", &b.Insts[1])
	}
}

func TestCSEConstAndCopyProp(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(7)},
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.R(v(0))},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(2)), Src: rtl.R(v(1)), Src2: rtl.Imm(1)},
		{Kind: rtl.Ret, Src: rtl.R(v(2))},
	}
	CommonSubexpressions(f, machine.M68020)
	FoldConstants(f)
	CommonSubexpressions(f, machine.M68020)
	// v2 should now be a constant 8 somewhere along the chain.
	found := false
	for ii := range b.Insts {
		in := &b.Insts[ii]
		if in.Kind == rtl.Move && in.Dst.Kind == rtl.OReg && in.Dst.Reg == v(2) &&
			in.Src.Kind == rtl.OImm && in.Src.Val == 8 {
			found = true
		}
	}
	if !found {
		t.Errorf("constant not propagated through copy:\n%s", f)
	}
}

func TestCSEStoreLoadForwarding(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.Local(0), Src: rtl.R(v(0))},
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Local(0)}, // forwarded
		{Kind: rtl.Ret, Src: rtl.R(v(1))},
	}
	if !CommonSubexpressions(f, machine.M68020) {
		t.Fatal("expected forwarding")
	}
	if b.Insts[1].Src.Kind != rtl.OReg || b.Insts[1].Src.Reg != v(0) {
		t.Errorf("load not forwarded: %v", &b.Insts[1])
	}
}

func TestCSEInvalidationByStore(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Local(0)},
		{Kind: rtl.Move, Dst: rtl.Mem(v(9), 0), Src: rtl.Imm(5)}, // may alias
		{Kind: rtl.Move, Dst: rtl.R(v(2)), Src: rtl.Local(0)},    // must reload
		{Kind: rtl.Ret, Src: rtl.R(v(2))},
	}
	CommonSubexpressions(f, machine.M68020)
	if b.Insts[2].Src.Kind != rtl.OLocal {
		t.Errorf("load wrongly forwarded across a store: %v", &b.Insts[2])
	}
}

func TestCSEInvalidationByCall(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Global("g", 0)},
		{Kind: rtl.Call, Sym: "x", Dst: rtl.None()},
		{Kind: rtl.Move, Dst: rtl.R(v(2)), Src: rtl.Global("g", 0)},
		{Kind: rtl.Ret, Src: rtl.R(v(2))},
	}
	CommonSubexpressions(f, machine.M68020)
	if b.Insts[2].Src.Kind != rtl.OGlobal {
		t.Errorf("global load wrongly forwarded across a call: %v", &b.Insts[2])
	}
}

func TestCSERespectsMachineLegality(t *testing.T) {
	// On the SPARC a store's source must stay a register: constant
	// propagation into the store must be suppressed.
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(7)},
		{Kind: rtl.Move, Dst: rtl.Local(0), Src: rtl.R(v(0))},
		{Kind: rtl.Ret, Src: rtl.None()},
	}
	CommonSubexpressions(f, machine.SPARC)
	if b.Insts[1].Src.Kind != rtl.OReg {
		t.Errorf("SPARC store source became %v", b.Insts[1].Src.Kind)
	}
	// On the 68020 the same propagation is legal and wanted.
	f2 := cfg.NewFunc("t", 0)
	b2 := f2.NewBlock()
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(7)},
		{Kind: rtl.Move, Dst: rtl.Local(0), Src: rtl.R(v(0))},
		{Kind: rtl.Ret, Src: rtl.None()},
	}
	CommonSubexpressions(f2, machine.M68020)
	if b2.Insts[1].Src.Kind != rtl.OImm {
		t.Errorf("68020 store source should take the immediate, got %v", b2.Insts[1].Src.Kind)
	}
}

// loopFunc builds: entry; header(cmp i<n; br exit); body(x = a+b; i++;
// jmp header); exit(ret x) with a,b defined in the entry.
func loopFunc() (*cfg.Func, *cfg.Block) {
	f := cfg.NewFunc("t", 0)
	entry := f.NewBlock()
	header := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	i, n, a, bb, x := v(0), v(1), v(2), v(3), v(4)
	entry.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)},
		{Kind: rtl.Move, Dst: rtl.R(n), Src: rtl.Imm(10)},
		{Kind: rtl.Move, Dst: rtl.R(a), Src: rtl.Imm(3)},
		{Kind: rtl.Move, Dst: rtl.R(bb), Src: rtl.Imm(4)},
	}
	header.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.R(n)},
		{Kind: rtl.Br, BrRel: rtl.Ge, Target: exit.Label},
	}
	body.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(x), Src: rtl.R(a), Src2: rtl.R(bb)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: header.Label},
	}
	exit.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(i)}}
	return f, body
}

func TestCodeMotionHoistsInvariant(t *testing.T) {
	f, body := loopFunc()
	if !CodeMotion(f) {
		t.Fatalf("expected hoisting:\n%s", f)
	}
	for ii := range body.Insts {
		in := &body.Insts[ii]
		if in.Kind == rtl.Bin && in.Dst.Kind == rtl.OReg && in.Dst.Reg == v(4) {
			t.Errorf("invariant not hoisted:\n%s", f)
		}
	}
	// x must still be computed somewhere before the loop.
	found := false
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].DefReg() == v(4) {
				found = true
			}
		}
	}
	if !found {
		t.Error("hoisted instruction lost")
	}
}

func TestCodeMotionKeepsVariant(t *testing.T) {
	f, body := loopFunc()
	// Make x depend on i: no longer invariant.
	body.Insts[0].Src2 = rtl.R(v(0))
	cp := countKind(f, rtl.Bin)
	CodeMotion(f)
	// The variant add must stay in the body.
	stays := false
	for ii := range body.Insts {
		if body.Insts[ii].DefReg() == v(4) {
			stays = true
		}
	}
	if !stays {
		t.Errorf("variant instruction hoisted:\n%s", f)
	}
	if countKind(f, rtl.Bin) != cp {
		t.Error("instruction count changed")
	}
}

func TestStrengthReduction(t *testing.T) {
	// for (i...) use i*8 -> becomes an addition chain.
	f := cfg.NewFunc("t", 0)
	entry := f.NewBlock()
	header := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	i, tt := v(0), v(1)
	entry.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)}}
	header.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(100)},
		{Kind: rtl.Br, BrRel: rtl.Ge, Target: exit.Label},
	}
	body.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Mul, Dst: rtl.R(tt), Src: rtl.R(i), Src2: rtl.Imm(8)},
		{Kind: rtl.Move, Dst: rtl.Local(0), Src: rtl.R(tt)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: header.Label},
	}
	exit.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	if !StrengthReduction(f) {
		t.Fatalf("expected reduction:\n%s", f)
	}
	// The multiplication must have left the loop body.
	for ii := range body.Insts {
		if body.Insts[ii].Kind == rtl.Bin && body.Insts[ii].BOp == rtl.Mul {
			t.Errorf("mul still in loop:\n%s", f)
		}
	}
}

func TestInstSelFoldsLoadCISC(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Local(3)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(1)), Src: rtl.R(v(1)), Src2: rtl.R(v(0))},
		{Kind: rtl.Ret, Src: rtl.R(v(1))},
	}
	if !InstructionSelection(f, machine.M68020) {
		t.Fatalf("expected combine:\n%s", f)
	}
	if len(b.Insts) != 2 || !b.Insts[0].Src2.Equal(rtl.Local(3)) {
		t.Errorf("load not folded:\n%s", f)
	}
	// Same input on SPARC must NOT fold (load/store machine).
	f2 := cfg.NewFunc("t", 0)
	b2 := f2.NewBlock()
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Local(3)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(1)), Src: rtl.R(v(1)), Src2: rtl.R(v(0))},
		{Kind: rtl.Ret, Src: rtl.R(v(1))},
	}
	InstructionSelection(f2, machine.SPARC)
	if len(b2.Insts) != 3 {
		t.Errorf("SPARC wrongly folded a memory operand:\n%s", f2)
	}
}

func TestInstSelStoreCombine(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(0)), Src: rtl.Local(2), Src2: rtl.Imm(1)},
		{Kind: rtl.Move, Dst: rtl.Local(2), Src: rtl.R(v(0))},
		{Kind: rtl.Ret, Src: rtl.None()},
	}
	if !InstructionSelection(f, machine.M68020) {
		t.Fatalf("expected RMW rebuild:\n%s", f)
	}
	if len(b.Insts) != 2 || !b.Insts[0].Dst.Equal(rtl.Local(2)) {
		t.Errorf("store not combined:\n%s", f)
	}
}

func TestInstSelAddressFold(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.AddrLocal(4)},
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Mem(v(0), 2)},
		{Kind: rtl.Ret, Src: rtl.R(v(1))},
	}
	if !InstructionSelection(f, machine.M68020) {
		t.Fatalf("expected address fold:\n%s", f)
	}
	if !b.Insts[0].Src.Equal(rtl.Local(6)) {
		t.Errorf("M[&fp+4 + 2] should fold to L[fp+6]:\n%s", f)
	}
}

func TestInstSelRespectsMultipleUses(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Local(3)},
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(v(1)), Src: rtl.R(v(0)), Src2: rtl.R(v(0))},
		{Kind: rtl.Ret, Src: rtl.R(v(1))},
	}
	InstructionSelection(f, machine.M68020)
	if len(b.Insts) != 3 {
		t.Errorf("two uses must not be folded (would double the load):\n%s", f)
	}
}

func TestPromoteLocals(t *testing.T) {
	f := cfg.NewFunc("t", 2)
	f.NLocals = 3
	f.ScalarLocals = []int64{0, 1, 2}
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.Local(2), Src: rtl.Local(0), Src2: rtl.Local(1)},
		{Kind: rtl.Ret, Src: rtl.Local(2)},
	}
	if !PromoteLocals(f) {
		t.Fatal("expected promotion")
	}
	for _, in := range b.Insts[len(b.Insts)-2:] {
		for _, o := range []rtl.Operand{in.Dst, in.Src, in.Src2} {
			if o.Kind == rtl.OLocal {
				t.Errorf("unpromoted local in %v", &in)
			}
		}
	}
	// Two parameters need prologue copies.
	if b.Insts[0].Kind != rtl.Move || b.Insts[0].Src.Kind != rtl.OLocal {
		t.Errorf("missing parameter prologue:\n%s", f)
	}
}

func TestPromoteLocalsRespectsAddressTaken(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	f.NLocals = 2
	f.ScalarLocals = []int64{0, 1}
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.AddrLocal(0)}, // &x escapes
		{Kind: rtl.Move, Dst: rtl.Local(0), Src: rtl.Imm(1)},
		{Kind: rtl.Move, Dst: rtl.Local(1), Src: rtl.Imm(2)},
		{Kind: rtl.Ret, Src: rtl.Local(0)},
	}
	PromoteLocals(f)
	if b.Insts[1].Dst.Kind != rtl.OLocal {
		t.Error("address-taken local was promoted")
	}
	if b.Insts[2].Dst.Kind == rtl.OLocal {
		t.Error("safe local was not promoted")
	}
}

func TestAllocateRegistersNoVRegsLeft(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	// More simultaneously-live vregs than machine registers forces spills.
	n := machine.M68020.NumRegs + 6
	for i := 0; i < n; i++ {
		b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(v(i)), Src: rtl.Imm(int64(i))})
	}
	acc := v(n)
	b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(acc), Src: rtl.Imm(0)})
	for i := 0; i < n; i++ {
		b.Insts = append(b.Insts, rtl.Inst{
			Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(acc), Src: rtl.R(acc), Src2: rtl.R(v(i)),
		})
	}
	b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Ret, Src: rtl.R(acc)})
	AllocateRegisters(f, machine.M68020)
	for _, blk := range f.Blocks {
		for ii := range blk.Insts {
			in := &blk.Insts[ii]
			for _, o := range []rtl.Operand{in.Dst, in.Src, in.Src2} {
				if o.Kind == rtl.OReg && o.Reg.IsVirtual() ||
					o.Kind == rtl.OMem && (o.Reg.IsVirtual() || o.Index != rtl.RegNone && o.Index.IsVirtual()) {
					t.Fatalf("virtual register survived allocation: %v", in)
				}
			}
		}
	}
}

func TestDelaySlotFilling(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	// The add is independent of the branch: it can fill the slot.
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(3), Src: rtl.R(4), Src2: rtl.Imm(1)},
		{Kind: rtl.Cmp, Src: rtl.R(5), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b1.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	filled, nops := FillDelaySlots(f, machine.SPARC)
	if filled != 1 {
		t.Errorf("filled = %d, want 1:\n%s", filled, f)
	}
	if nops != 1 { // the Ret has nothing to fill
		t.Errorf("nops = %d, want 1:\n%s", nops, f)
	}
	// The add must now sit after the branch.
	if b0.Insts[len(b0.Insts)-1].Kind != rtl.Bin {
		t.Errorf("slot not filled with the add:\n%s", f)
	}
}

func TestDelaySlotDependenceBlocksFill(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	// The add feeds the comparison: cannot move past it.
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(5), Src: rtl.R(4), Src2: rtl.Imm(1)},
		{Kind: rtl.Cmp, Src: rtl.R(5), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b1.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	filled, nops := FillDelaySlots(f, machine.SPARC)
	if filled != 0 || nops != 2 {
		t.Errorf("filled=%d nops=%d, want 0/2:\n%s", filled, nops, f)
	}
}

func TestDelaySlotNoopOn68020(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	filled, nops := FillDelaySlots(f, machine.M68020)
	if filled != 0 || nops != 0 || len(b.Insts) != 1 {
		t.Error("68020 has no delay slots")
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	f, _ := loopFunc()
	e := cfg.ComputeEdges(f)
	lv := ComputeLiveness(f, e)
	// n (v1) is live into the header from the entry.
	if !lv.In[1].Has(v(1)) {
		t.Errorf("n not live into header: %v", lv.In[1])
	}
	// x (v4) is not live into the entry.
	if lv.In[0].Has(v(4)) {
		t.Error("x live-in at entry")
	}
}

func TestPipelineishSanity(t *testing.T) {
	// Running every pass in sequence on the loop must terminate and keep
	// the code shape legal.
	f, _ := loopFunc()
	m := machine.M68020
	for i := 0; i < 5; i++ {
		BranchChaining(f)
		DeadCodeElimination(f)
		CommonSubexpressions(f, m)
		DeadVariableElimination(f)
		CodeMotion(f)
		StrengthReduction(f)
		FoldConstants(f)
		InstructionSelection(f, m)
		FoldBranches(f)
		MergeBlocks(f)
	}
	if !strings.Contains(f.String(), "PC = RT") {
		t.Error("return lost")
	}
}
