package opt

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// FoldConstants simplifies instructions with constant operands and applies
// algebraic identities. Reports whether anything changed.
func FoldConstants(f *cfg.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			switch in.Kind {
			case rtl.Bin:
				if in.Src.Kind == rtl.OImm && in.Src2.Kind == rtl.OImm {
					*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(in.BOp.Eval(in.Src.Val, in.Src2.Val))}
					changed = true
					continue
				}
				if simplifyAlgebraic(in) {
					changed = true
				}
			case rtl.Un:
				if in.Src.Kind == rtl.OImm {
					*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(in.UOp.Eval(in.Src.Val))}
					changed = true
				}
			}
		}
	}
	return changed
}

// simplifyAlgebraic applies identities like x+0, x*1, x*0, x-0, x<<0.
func simplifyAlgebraic(in *rtl.Inst) bool {
	imm := func(o rtl.Operand, v int64) bool { return o.Kind == rtl.OImm && o.Val == v }
	switch in.BOp {
	case rtl.Add, rtl.Or, rtl.Xor:
		if imm(in.Src2, 0) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: in.Src}
			return true
		}
		if imm(in.Src, 0) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: in.Src2}
			return true
		}
	case rtl.Sub, rtl.Shl, rtl.Shr:
		if imm(in.Src2, 0) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: in.Src}
			return true
		}
	case rtl.Mul:
		if imm(in.Src2, 1) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: in.Src}
			return true
		}
		if imm(in.Src, 1) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: in.Src2}
			return true
		}
		if imm(in.Src2, 0) || imm(in.Src, 0) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(0)}
			return true
		}
	case rtl.Div:
		if imm(in.Src2, 1) {
			*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: in.Src}
			return true
		}
	}
	return false
}

// FoldBranches performs constant folding at conditional branches (§3.3.1):
// a comparison of two constants decides the branch statically, so the
// branch is deleted or becomes an unconditional jump (which a subsequent
// replication pass can then attack). Also deletes conditional branches
// whose target is the fall-through block. Reports whether anything changed.
func FoldBranches(f *cfg.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Kind != rtl.Br {
			continue
		}
		// Branch to the positionally next block: both outcomes coincide.
		if b.Index+1 < len(f.Blocks) && f.Blocks[b.Index+1].Label == t.Target {
			b.Insts = b.Insts[:len(b.Insts)-1]
			changed = true
			continue
		}
		// A Cmp of two constants immediately before the branch decides it.
		if len(b.Insts) >= 2 {
			c := &b.Insts[len(b.Insts)-2]
			if c.Kind == rtl.Cmp && c.Src.Kind == rtl.OImm && c.Src2.Kind == rtl.OImm {
				taken := t.BrRel.Holds(c.Src.Val, c.Src2.Val)
				target := t.Target
				b.Insts = b.Insts[:len(b.Insts)-2]
				if taken {
					b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Jmp, Target: target})
				}
				changed = true
			}
		}
	}
	return changed
}
