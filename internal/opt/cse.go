package opt

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// vnState is the value-numbering state within one basic block.
type vnState struct {
	m       *machine.Machine
	constOf map[rtl.Reg]int64
	copyOf  map[rtl.Reg]rtl.Reg
	exprOf  map[string]rtl.Reg // expression key -> register holding it
	memVal  map[string]rtl.Reg // memory operand key -> register holding its value
}

func newVNState(m *machine.Machine) *vnState {
	return &vnState{
		m:       m,
		constOf: map[rtl.Reg]int64{},
		copyOf:  map[rtl.Reg]rtl.Reg{},
		exprOf:  map[string]rtl.Reg{},
		memVal:  map[string]rtl.Reg{},
	}
}

// clone copies the state for propagation into a single-predecessor
// successor (extended-basic-block value numbering).
func (s *vnState) clone() *vnState {
	c := newVNState(s.m)
	for k, v := range s.constOf {
		c.constOf[k] = v
	}
	for k, v := range s.copyOf {
		c.copyOf[k] = v
	}
	for k, v := range s.exprOf {
		c.exprOf[k] = v
	}
	for k, v := range s.memVal {
		c.memVal[k] = v
	}
	return c
}

// resolve follows copy chains to the canonical source register.
func (s *vnState) resolve(r rtl.Reg) rtl.Reg {
	for i := 0; i < 8; i++ {
		c, ok := s.copyOf[r]
		if !ok {
			return r
		}
		r = c
	}
	return r
}

// regKey is the canonical key fragment for a register; keyUsesReg searches
// for exactly this fragment.
func regKey(r rtl.Reg) string { return "r" + r.String() }

func opKey(o rtl.Operand) string {
	switch o.Kind {
	case rtl.OReg:
		return regKey(o.Reg)
	case rtl.OImm:
		return fmt.Sprintf("#%d", o.Val)
	case rtl.OLocal:
		return fmt.Sprintf("l%d", o.Val)
	case rtl.OGlobal:
		return fmt.Sprintf("g%s+%d", o.Sym, o.Val)
	case rtl.OMem:
		if o.Index == rtl.RegNone {
			return fmt.Sprintf("m%s+%d", regKey(o.Reg), o.Val)
		}
		return fmt.Sprintf("m%s+%d+%s*%d", regKey(o.Reg), o.Val, regKey(o.Index), o.Scale)
	case rtl.OAddrLocal:
		return fmt.Sprintf("al%d", o.Val)
	case rtl.OAddrGlobal:
		return fmt.Sprintf("ag%s+%d", o.Sym, o.Val)
	}
	return "?"
}

// exprKey builds a canonical key for a pure computation.
func exprKey(in *rtl.Inst) string {
	switch in.Kind {
	case rtl.Bin:
		a, b := opKey(in.Src), opKey(in.Src2)
		if in.BOp.Commutative() && b < a {
			a, b = b, a
		}
		return fmt.Sprintf("b%d|%s|%s", in.BOp, a, b)
	case rtl.Un:
		return fmt.Sprintf("u%d|%s", in.UOp, opKey(in.Src))
	}
	return ""
}

// keyUsesReg reports whether an expression/memory key mentions register r.
// Keys embed register numbers through regKey, so this is a containment
// test on the canonical fragment.
func keyUsesReg(key string, r rtl.Reg) bool {
	frag := regKey(r)
	for i := 0; i+len(frag) <= len(key); i++ {
		if key[i:i+len(frag)] == frag {
			// Avoid matching r1 inside r12: next byte must be a separator.
			j := i + len(frag)
			if j == len(key) || !(key[j] >= '0' && key[j] <= '9') {
				return true
			}
		}
	}
	return false
}

// invalidateReg drops every piece of state that mentions r.
func (s *vnState) invalidateReg(r rtl.Reg) {
	delete(s.constOf, r)
	delete(s.copyOf, r)
	for x, c := range s.copyOf {
		if c == r {
			delete(s.copyOf, x)
		}
	}
	for k, v := range s.exprOf {
		if v == r || keyUsesReg(k, r) {
			delete(s.exprOf, k)
		}
	}
	for k, v := range s.memVal {
		if v == r || keyUsesReg(k, r) {
			delete(s.memVal, k)
		}
	}
}

// invalidateMemory drops all memory-derived state (after stores and calls).
func (s *vnState) invalidateMemory() {
	s.memVal = map[string]rtl.Reg{}
	// Expressions never read memory (only Move does), so exprOf survives.
}

// substSrc rewrites one source operand using known constants, copies and
// loaded values, keeping the instruction legal for the machine. check runs
// machine legality on the whole instruction after a tentative rewrite.
func (s *vnState) substSrc(in *rtl.Inst, o *rtl.Operand) bool {
	changed := false
	try := func(repl rtl.Operand) bool {
		old := *o
		*o = repl
		if s.m == nil || s.m.LegalInst(in) {
			return true
		}
		*o = old
		return false
	}
	switch o.Kind {
	case rtl.OReg:
		r := s.resolve(o.Reg)
		if v, ok := s.constOf[r]; ok && try(rtl.Imm(v)) {
			return true
		}
		if r != o.Reg && try(rtl.R(r)) {
			changed = true
		}
	case rtl.OMem:
		// Canonicalize base/index through copies first.
		no := *o
		no.Reg = s.resolve(o.Reg)
		if no.Index != rtl.RegNone {
			no.Index = s.resolve(no.Index)
		}
		if !no.Equal(*o) && try(no) {
			changed = true
		}
		fallthrough
	case rtl.OLocal, rtl.OGlobal:
		if r, ok := s.memVal[opKey(*o)]; ok && try(rtl.R(r)) {
			return true
		}
	}
	return changed
}

// CommonSubexpressions performs value numbering with constant and copy
// propagation and store-to-load forwarding, over extended basic blocks: a
// block with exactly one predecessor inherits that predecessor's exit
// state, so availability flows down branch fans without a full dataflow
// framework. Machine legality is preserved. Reports whether anything
// changed.
func CommonSubexpressions(f *cfg.Func, m *machine.Machine) bool {
	changed := false
	e := cfg.ComputeEdges(f)
	// exit[i] is block i's end-of-block state, for forward propagation.
	exit := make([]*vnState, len(f.Blocks))
	for _, b := range f.Blocks {
		var s *vnState
		// Inherit from a single already-processed predecessor. Layout
		// order approximates reverse postorder for the fronted-generated
		// graphs; a predecessor later in layout (a back edge) simply
		// yields a fresh state.
		if preds := e.Preds[b.Index]; len(preds) == 1 && preds[0].Index < b.Index && exit[preds[0].Index] != nil {
			s = exit[preds[0].Index].clone()
		} else {
			s = newVNState(m)
		}
		for ii := range b.Insts {
			in := &b.Insts[ii]
			// Substitute into sources.
			switch in.Kind {
			case rtl.Move, rtl.Bin, rtl.Un, rtl.Cmp, rtl.Arg, rtl.Ret, rtl.IJmp:
				for _, o := range in.SrcOperands() {
					if s.substSrc(in, o) {
						changed = true
					}
				}
			}
			// Fold if fully constant now.
			if in.Kind == rtl.Bin && in.Src.Kind == rtl.OImm && in.Src2.Kind == rtl.OImm {
				*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(in.BOp.Eval(in.Src.Val, in.Src2.Val))}
				changed = true
			}
			if in.Kind == rtl.Un && in.Src.Kind == rtl.OImm {
				*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(in.UOp.Eval(in.Src.Val))}
				changed = true
			}
			// Reuse an available expression.
			if (in.Kind == rtl.Bin || in.Kind == rtl.Un) && in.Dst.Kind == rtl.OReg {
				if key := exprKey(in); key != "" {
					if r, ok := s.exprOf[key]; ok && r != in.Dst.Reg {
						*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.R(r)}
						changed = true
					}
				}
			}
			// Reuse a materialized constant or address: a second
			// `r' = &sym` becomes a copy of the first, and copy
			// propagation then retires r' entirely.
			if in.Kind == rtl.Move && in.Dst.Kind == rtl.OReg &&
				(in.Src.Kind == rtl.OAddrLocal || in.Src.Kind == rtl.OAddrGlobal || in.Src.Kind == rtl.OImm) {
				key := "mat|" + opKey(in.Src)
				if r, ok := s.exprOf[key]; ok && r != in.Dst.Reg {
					*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.R(r)}
					changed = true
				}
			}
			// Update state.
			switch in.Kind {
			case rtl.Move:
				if in.Dst.Kind == rtl.OReg {
					d := in.Dst.Reg
					s.invalidateReg(d)
					switch in.Src.Kind {
					case rtl.OImm:
						s.constOf[d] = in.Src.Val
						s.exprOf["mat|"+opKey(in.Src)] = d
					case rtl.OAddrLocal, rtl.OAddrGlobal:
						s.exprOf["mat|"+opKey(in.Src)] = d
					case rtl.OReg:
						if in.Src.Reg != d {
							s.copyOf[d] = s.resolve(in.Src.Reg)
						}
					case rtl.OLocal, rtl.OGlobal, rtl.OMem:
						s.memVal[opKey(in.Src)] = d
					}
				} else if in.Dst.IsMem() {
					s.invalidateMemory()
					if in.Src.Kind == rtl.OReg {
						s.memVal[opKey(in.Dst)] = s.resolve(in.Src.Reg)
					}
				}
			case rtl.Bin, rtl.Un:
				if in.Dst.Kind == rtl.OReg {
					d := in.Dst.Reg
					key := exprKey(in)
					usesSelf := keyUsesReg(key, d)
					s.invalidateReg(d)
					if key != "" && !usesSelf {
						s.exprOf[key] = d
					}
				} else if in.Dst.IsMem() {
					s.invalidateMemory()
				}
			case rtl.Call:
				s.invalidateMemory()
				if in.Dst.Kind == rtl.OReg {
					s.invalidateReg(in.Dst.Reg)
				}
			}
		}
		exit[b.Index] = s
	}
	return changed
}
