package opt

import (
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// opK is the canonical, comparable key for an operand. It replaces the
// fmt.Sprintf string keys the value numberer used to build for every
// instruction: a plain struct compares in a handful of instructions and
// allocates nothing. Fields that a kind does not use are left at their zero
// value so equal operands always produce equal keys (OMem without an index
// normalizes Index to RegNone / Scale to 0, which rtl.MemIdx guarantees
// already).
type opK struct {
	Kind  rtl.OpKind
	Reg   rtl.Reg
	Val   int64
	Sym   string
	Index rtl.Reg
	Scale int64
}

func opKey(o rtl.Operand) opK {
	switch o.Kind {
	case rtl.OReg:
		return opK{Kind: rtl.OReg, Reg: o.Reg}
	case rtl.OImm, rtl.OLocal, rtl.OAddrLocal:
		return opK{Kind: o.Kind, Val: o.Val}
	case rtl.OGlobal, rtl.OAddrGlobal:
		return opK{Kind: o.Kind, Sym: o.Sym, Val: o.Val}
	case rtl.OMem:
		k := opK{Kind: rtl.OMem, Reg: o.Reg, Val: o.Val, Index: rtl.RegNone}
		if o.Index != rtl.RegNone {
			k.Index, k.Scale = o.Index, o.Scale
		}
		return k
	}
	return opK{Kind: o.Kind}
}

// usesReg reports whether the keyed operand reads register r.
func (k opK) usesReg(r rtl.Reg) bool {
	switch k.Kind {
	case rtl.OReg:
		return k.Reg == r
	case rtl.OMem:
		return k.Reg == r || k.Index != rtl.RegNone && k.Index == r
	}
	return false
}

// less is an arbitrary but deterministic total order on operand keys, used
// only to pick the canonical operand order of commutative expressions.
func (k opK) less(o opK) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Reg != o.Reg {
		return k.Reg < o.Reg
	}
	if k.Val != o.Val {
		return k.Val < o.Val
	}
	if k.Sym != o.Sym {
		return k.Sym < o.Sym
	}
	if k.Index != o.Index {
		return k.Index < o.Index
	}
	return k.Scale < o.Scale
}

// exprK is the canonical key for a pure computation (kind exprBin/exprUn)
// or a materialized constant or address (kind exprMat).
type exprK struct {
	kind uint8
	op   int
	a, b opK
}

const (
	exprBin = iota + 1
	exprUn
	exprMat
)

// exprKey builds the canonical key for a pure computation; ok is false for
// instructions that are not value-numberable expressions.
func exprKey(in *rtl.Inst) (exprK, bool) {
	switch in.Kind {
	case rtl.Bin:
		a, b := opKey(in.Src), opKey(in.Src2)
		if in.BOp.Commutative() && b.less(a) {
			a, b = b, a
		}
		return exprK{kind: exprBin, op: int(in.BOp), a: a, b: b}, true
	case rtl.Un:
		return exprK{kind: exprUn, op: int(in.UOp), a: opKey(in.Src)}, true
	}
	return exprK{}, false
}

// matKey keys a materialized constant or address (`r = #5`, `r = &sym`).
func matKey(o rtl.Operand) exprK {
	return exprK{kind: exprMat, a: opKey(o)}
}

// usesReg reports whether the keyed expression reads register r.
func (k exprK) usesReg(r rtl.Reg) bool {
	return k.a.usesReg(r) || k.kind == exprBin && k.b.usesReg(r)
}

// vnState is the value-numbering state within one basic block. The maps are
// allocated lazily: most blocks never populate all four.
type vnState struct {
	m       *machine.Machine
	constOf map[rtl.Reg]int64
	copyOf  map[rtl.Reg]rtl.Reg
	exprOf  map[exprK]rtl.Reg // expression key -> register holding it
	memVal  map[opK]rtl.Reg   // memory operand key -> register holding its value
}

func newVNState(m *machine.Machine) *vnState {
	return &vnState{m: m}
}

func (s *vnState) setConst(r rtl.Reg, v int64) {
	if s.constOf == nil {
		s.constOf = map[rtl.Reg]int64{}
	}
	s.constOf[r] = v
}

func (s *vnState) setCopy(d, src rtl.Reg) {
	if s.copyOf == nil {
		s.copyOf = map[rtl.Reg]rtl.Reg{}
	}
	s.copyOf[d] = src
}

func (s *vnState) setExpr(k exprK, r rtl.Reg) {
	if s.exprOf == nil {
		s.exprOf = map[exprK]rtl.Reg{}
	}
	s.exprOf[k] = r
}

func (s *vnState) setMem(k opK, r rtl.Reg) {
	if s.memVal == nil {
		s.memVal = map[opK]rtl.Reg{}
	}
	s.memVal[k] = r
}

// clone copies the state for propagation into a single-predecessor
// successor (extended-basic-block value numbering). Empty maps stay nil.
func (s *vnState) clone() *vnState {
	c := newVNState(s.m)
	if len(s.constOf) > 0 {
		c.constOf = make(map[rtl.Reg]int64, len(s.constOf))
		for k, v := range s.constOf {
			c.constOf[k] = v
		}
	}
	if len(s.copyOf) > 0 {
		c.copyOf = make(map[rtl.Reg]rtl.Reg, len(s.copyOf))
		for k, v := range s.copyOf {
			c.copyOf[k] = v
		}
	}
	if len(s.exprOf) > 0 {
		c.exprOf = make(map[exprK]rtl.Reg, len(s.exprOf))
		for k, v := range s.exprOf {
			c.exprOf[k] = v
		}
	}
	if len(s.memVal) > 0 {
		c.memVal = make(map[opK]rtl.Reg, len(s.memVal))
		for k, v := range s.memVal {
			c.memVal[k] = v
		}
	}
	return c
}

// resolve follows copy chains to the canonical source register.
func (s *vnState) resolve(r rtl.Reg) rtl.Reg {
	for i := 0; i < 8; i++ {
		c, ok := s.copyOf[r]
		if !ok {
			return r
		}
		r = c
	}
	return r
}

// invalidateReg drops every piece of state that mentions r.
func (s *vnState) invalidateReg(r rtl.Reg) {
	delete(s.constOf, r)
	delete(s.copyOf, r)
	for x, c := range s.copyOf {
		if c == r {
			delete(s.copyOf, x)
		}
	}
	for k, v := range s.exprOf {
		if v == r || k.usesReg(r) {
			delete(s.exprOf, k)
		}
	}
	for k, v := range s.memVal {
		if v == r || k.usesReg(r) {
			delete(s.memVal, k)
		}
	}
}

// invalidateMemory drops all memory-derived state (after stores and calls).
func (s *vnState) invalidateMemory() {
	clear(s.memVal)
	// Expressions never read memory (only Move does), so exprOf survives.
}

// substSrc rewrites one source operand using known constants, copies and
// loaded values, keeping the instruction legal for the machine. check runs
// machine legality on the whole instruction after a tentative rewrite.
func (s *vnState) substSrc(in *rtl.Inst, o *rtl.Operand) bool {
	changed := false
	try := func(repl rtl.Operand) bool {
		old := *o
		*o = repl
		if s.m == nil || s.m.LegalInst(in) {
			return true
		}
		*o = old
		return false
	}
	switch o.Kind {
	case rtl.OReg:
		r := s.resolve(o.Reg)
		if v, ok := s.constOf[r]; ok && try(rtl.Imm(v)) {
			return true
		}
		if r != o.Reg && try(rtl.R(r)) {
			changed = true
		}
	case rtl.OMem:
		// Canonicalize base/index through copies first.
		no := *o
		no.Reg = s.resolve(o.Reg)
		if no.Index != rtl.RegNone {
			no.Index = s.resolve(no.Index)
		}
		if !no.Equal(*o) && try(no) {
			changed = true
		}
		fallthrough
	case rtl.OLocal, rtl.OGlobal:
		if r, ok := s.memVal[opKey(*o)]; ok && try(rtl.R(r)) {
			return true
		}
	}
	return changed
}

// CommonSubexpressions performs value numbering with constant and copy
// propagation and store-to-load forwarding, over extended basic blocks: a
// block with exactly one predecessor inherits that predecessor's exit
// state, so availability flows down branch fans without a full dataflow
// framework. Machine legality is preserved. Reports whether anything
// changed.
func CommonSubexpressions(f *cfg.Func, m *machine.Machine) bool {
	changed := false
	e := cfg.ComputeEdges(f)
	// exit[i] is block i's end-of-block state, for forward propagation.
	exit := make([]*vnState, len(f.Blocks))
	for _, b := range f.Blocks {
		var s *vnState
		// Inherit from a single already-processed predecessor. Layout
		// order approximates reverse postorder for the fronted-generated
		// graphs; a predecessor later in layout (a back edge) simply
		// yields a fresh state.
		if preds := e.Preds[b.Index]; len(preds) == 1 && preds[0].Index < b.Index && exit[preds[0].Index] != nil {
			s = exit[preds[0].Index].clone()
		} else {
			s = newVNState(m)
		}
		for ii := range b.Insts {
			in := &b.Insts[ii]
			// Substitute into sources.
			switch in.Kind {
			case rtl.Move, rtl.Bin, rtl.Un, rtl.Cmp, rtl.Arg, rtl.Ret, rtl.IJmp:
				for _, o := range in.SrcOperands() {
					if s.substSrc(in, o) {
						changed = true
					}
				}
			}
			// Fold if fully constant now.
			if in.Kind == rtl.Bin && in.Src.Kind == rtl.OImm && in.Src2.Kind == rtl.OImm {
				*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(in.BOp.Eval(in.Src.Val, in.Src2.Val))}
				changed = true
			}
			if in.Kind == rtl.Un && in.Src.Kind == rtl.OImm {
				*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.Imm(in.UOp.Eval(in.Src.Val))}
				changed = true
			}
			// Reuse an available expression.
			if (in.Kind == rtl.Bin || in.Kind == rtl.Un) && in.Dst.Kind == rtl.OReg {
				if key, ok := exprKey(in); ok {
					if r, ok := s.exprOf[key]; ok && r != in.Dst.Reg {
						*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.R(r)}
						changed = true
					}
				}
			}
			// Reuse a materialized constant or address: a second
			// `r' = &sym` becomes a copy of the first, and copy
			// propagation then retires r' entirely.
			if in.Kind == rtl.Move && in.Dst.Kind == rtl.OReg &&
				(in.Src.Kind == rtl.OAddrLocal || in.Src.Kind == rtl.OAddrGlobal || in.Src.Kind == rtl.OImm) {
				if r, ok := s.exprOf[matKey(in.Src)]; ok && r != in.Dst.Reg {
					*in = rtl.Inst{Kind: rtl.Move, Dst: in.Dst, Src: rtl.R(r)}
					changed = true
				}
			}
			// Update state.
			switch in.Kind {
			case rtl.Move:
				if in.Dst.Kind == rtl.OReg {
					d := in.Dst.Reg
					s.invalidateReg(d)
					switch in.Src.Kind {
					case rtl.OImm:
						s.setConst(d, in.Src.Val)
						s.setExpr(matKey(in.Src), d)
					case rtl.OAddrLocal, rtl.OAddrGlobal:
						s.setExpr(matKey(in.Src), d)
					case rtl.OReg:
						if in.Src.Reg != d {
							s.setCopy(d, s.resolve(in.Src.Reg))
						}
					case rtl.OLocal, rtl.OGlobal, rtl.OMem:
						s.setMem(opKey(in.Src), d)
					}
				} else if in.Dst.IsMem() {
					s.invalidateMemory()
					if in.Src.Kind == rtl.OReg {
						s.setMem(opKey(in.Dst), s.resolve(in.Src.Reg))
					}
				}
			case rtl.Bin, rtl.Un:
				if in.Dst.Kind == rtl.OReg {
					d := in.Dst.Reg
					key, keyOK := exprKey(in)
					usesSelf := keyOK && key.usesReg(d)
					s.invalidateReg(d)
					if keyOK && !usesSelf {
						s.setExpr(key, d)
					}
				} else if in.Dst.IsMem() {
					s.invalidateMemory()
				}
			case rtl.Call:
				s.invalidateMemory()
				if in.Dst.Kind == rtl.OReg {
					s.invalidateReg(in.Dst.Reg)
				}
			}
		}
		exit[b.Index] = s
	}
	e.Release()
	return changed
}
