package opt

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// regSet is a small map-based mutable register set, used for the
// allocator's sparse bookkeeping (interference adjacency, spill temps,
// Briggs neighbour counting). The dense liveness sets are RegSet bitsets.
type regSet map[rtl.Reg]struct{}

func (s regSet) add(r rtl.Reg) bool {
	if _, ok := s[r]; ok {
		return false
	}
	s[r] = struct{}{}
	return true
}

func (s regSet) has(r rtl.Reg) bool { _, ok := s[r]; return ok }

// PromoteLocals is the paper's "register assignment" phase: scalar locals
// and parameters whose address is never taken are assigned to (virtual)
// registers, turning frame traffic into register traffic. Parameters gain a
// prologue copy out of their incoming frame slot, and so does any promoted
// local that may be read before it is written: the language zero-initializes
// the frame, and the copy keeps that behaviour visible in the register —
// which also establishes the invariant the semantic verifier
// (internal/verify) checks, that every register read is preceded by a
// definition on every path from the entry. Reports whether anything changed.
func PromoteLocals(f *cfg.Func) bool {
	// Offsets whose address escapes cannot be promoted.
	blocked := map[int64]bool{}
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			ops := []rtl.Operand{in.Dst, in.Src, in.Src2}
			for _, o := range ops {
				if o.Kind == rtl.OAddrLocal {
					blocked[o.Val] = true
				}
			}
		}
	}
	promoted := map[int64]rtl.Reg{}
	for _, off := range f.ScalarLocals {
		if !blocked[off] {
			promoted[off] = f.NewVReg()
		}
	}
	if len(promoted) == 0 {
		return false
	}
	needsInit := uninitReads(f, promoted)
	rewrite := func(o *rtl.Operand) {
		if o.Kind == rtl.OLocal {
			if r, ok := promoted[o.Val]; ok {
				*o = rtl.R(r)
			}
		}
	}
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			rewrite(&in.Dst)
			rewrite(&in.Src)
			rewrite(&in.Src2)
		}
	}
	// Prologue copies: promoted parameters (the calling convention delivers
	// arguments in the frame) and promoted locals with a possibly-
	// uninitialized read (the frame slot holds the zero the program would
	// have observed). Sorted offsets keep the emitted prologue
	// deterministic.
	var prologue []rtl.Inst
	for i := 0; i < f.NParams; i++ {
		if r, ok := promoted[int64(i)]; ok {
			prologue = append(prologue, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(r), Src: rtl.Local(int64(i))})
		}
	}
	var inits []int64
	for off := range needsInit {
		if off >= int64(f.NParams) {
			inits = append(inits, off)
		}
	}
	sort.Slice(inits, func(i, j int) bool { return inits[i] < inits[j] })
	for _, off := range inits {
		prologue = append(prologue, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(promoted[off]), Src: rtl.Local(off)})
	}
	if len(prologue) > 0 {
		entry := f.Entry()
		entry.Insts = append(prologue, entry.Insts...)
	}
	return true
}

// uninitReads finds the promoted frame offsets with a read that is not
// preceded by a write on every path from the entry — a forward
// must-assigned dataflow over the promoted scalars, run before the operand
// rewrite. Parameters count as assigned at the entry (the call wrote them).
func uninitReads(f *cfg.Func, promoted map[int64]rtl.Reg) map[int64]bool {
	e := cfg.ComputeEdges(f)
	n := len(f.Blocks)
	writes := make([]map[int64]bool, n)
	for i, b := range f.Blocks {
		w := map[int64]bool{}
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if in.Dst.Kind == rtl.OLocal {
				if _, ok := promoted[in.Dst.Val]; ok {
					w[in.Dst.Val] = true
				}
			}
		}
		writes[i] = w
	}

	// in[i]: offsets assigned on every path from the entry to block i; nil
	// marks a block not yet reached (unreachable blocks stay nil and are
	// not scanned: they never execute).
	in := make([]map[int64]bool, n)
	entry := map[int64]bool{}
	for i := 0; i < f.NParams; i++ {
		if _, ok := promoted[int64(i)]; ok {
			entry[int64(i)] = true
		}
	}
	in[0] = entry
	out := func(i int) map[int64]bool {
		if in[i] == nil {
			return nil
		}
		o := make(map[int64]bool, len(in[i])+len(writes[i]))
		for off := range in[i] {
			o[off] = true
		}
		for off := range writes[i] {
			o[off] = true
		}
		return o
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < n; i++ {
			var cur map[int64]bool
			for _, p := range e.Preds[i] {
				po := out(p.Index)
				if po == nil {
					continue
				}
				if cur == nil {
					cur = po
					continue
				}
				for off := range cur {
					if !po[off] {
						delete(cur, off)
					}
				}
			}
			if cur == nil {
				continue
			}
			if in[i] != nil && len(cur) == len(in[i]) {
				same := true
				for off := range cur {
					if !in[i][off] {
						same = false
						break
					}
				}
				if same {
					continue
				}
			}
			in[i] = cur
			changed = true
		}
	}

	needs := map[int64]bool{}
	for i, b := range f.Blocks {
		if in[i] == nil {
			continue
		}
		cur := make(map[int64]bool, len(in[i]))
		for off := range in[i] {
			cur[off] = true
		}
		for ii := range b.Insts {
			in2 := &b.Insts[ii]
			for _, o := range in2.SrcOperands() {
				if o.Kind != rtl.OLocal || cur[o.Val] {
					continue
				}
				if _, ok := promoted[o.Val]; ok {
					needs[o.Val] = true
				}
			}
			if in2.Dst.Kind == rtl.OLocal {
				if _, ok := promoted[in2.Dst.Val]; ok {
					cur[in2.Dst.Val] = true
				}
			}
		}
	}
	return needs
}

// AllocateRegisters maps every virtual register to one of the machine's
// allocatable registers by graph colouring, spilling to fresh frame slots
// when the graph is uncolourable ("register allocation by register
// coloring" in Figure 3). The simulated call convention gives every frame
// its own register file, so calls clobber nothing.
func AllocateRegisters(f *cfg.Func, m *machine.Machine) {
	// Defensive: hand-constructed functions (tests, fixtures) may use
	// virtual registers the function never allocated; make sure fresh
	// temporaries cannot collide with them.
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			for _, o := range []rtl.Operand{in.Dst, in.Src, in.Src2} {
				for _, r := range []rtl.Reg{o.Reg, o.Index} {
					if r.IsVirtual() && int(r-rtl.VRegBase) >= f.NVRegs {
						f.NVRegs = int(r-rtl.VRegBase) + 1
					}
				}
			}
		}
	}
	// Conservative move coalescing (Briggs): merging copy-related,
	// non-interfering registers deletes the copies outright and shortens
	// the code the tables measure.
	for i := 0; i < 200; i++ {
		if !coalesceOne(f, m) {
			break
		}
	}
	// temps accumulates the short-range temporaries created by spilling;
	// they are never chosen as spill victims again (re-spilling them makes
	// no progress).
	temps := regSet{}
	for round := 0; round < 60; round++ {
		if tryColor(f, m, temps) {
			return
		}
	}
	panic("opt: register allocation did not converge for " + f.Name)
}

// coalesceOne finds one coalescible register copy `a = b` — both virtual,
// non-interfering, and safe by the Briggs criterion (the merged node has
// fewer than K neighbours of significant degree, so coalescing cannot turn
// a colourable graph uncolourable) — rewrites b to a everywhere and drops
// the copy. Reports whether it coalesced anything.
func coalesceOne(f *cfg.Func, m *machine.Machine) bool {
	g := buildInterference(f)
	k := m.NumRegs
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if in.Kind != rtl.Move || in.Dst.Kind != rtl.OReg || in.Src.Kind != rtl.OReg {
				continue
			}
			dst, src := in.Dst.Reg, in.Src.Reg
			if dst == src || !dst.IsVirtual() || !src.IsVirtual() {
				continue
			}
			if g.adj[dst].has(src) {
				continue // live ranges overlap; the copy is load-bearing
			}
			// Briggs: count merged neighbours with degree >= K.
			significant := 0
			seen := regSet{}
			for n := range g.adj[dst] {
				if seen.add(n) && len(g.adj[n]) >= k {
					significant++
				}
			}
			for n := range g.adj[src] {
				if seen.add(n) && len(g.adj[n]) >= k {
					significant++
				}
			}
			if significant >= k {
				continue
			}
			renameReg(f, src, dst)
			// The copy became `a = a`; delete it.
			b.Insts = append(b.Insts[:ii], b.Insts[ii+1:]...)
			return true
		}
	}
	return false
}

// renameReg rewrites every occurrence of register old to new.
func renameReg(f *cfg.Func, old, new rtl.Reg) {
	rw := func(o *rtl.Operand) {
		switch o.Kind {
		case rtl.OReg:
			if o.Reg == old {
				o.Reg = new
			}
		case rtl.OMem:
			if o.Reg == old {
				o.Reg = new
			}
			if o.Index == old {
				o.Index = new
			}
		}
	}
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			rw(&in.Dst)
			rw(&in.Src)
			rw(&in.Src2)
		}
	}
}

// interference is the allocator's view of a function: the interference
// graph over virtual registers and loop-depth-weighted use counts.
type interference struct {
	adj      map[rtl.Reg]regSet
	useCount map[rtl.Reg]int
}

// buildInterference computes the interference graph. A copy's source does
// not interfere with its destination, which both enables coalescing and
// avoids wasting a colour on pure moves.
func buildInterference(f *cfg.Func) *interference {
	e := cfg.ComputeEdges(f)
	lv := ComputeLiveness(f, e)
	// Spill costs weight each use by 10^(loop depth) so inner-loop values
	// stay in registers and cold values get spilled first.
	d := cfg.ComputeDominators(e)
	loops := cfg.NaturalLoops(e, d)
	d.Release()
	depthWeight := make([]int, len(f.Blocks))
	for i := range depthWeight {
		w := 1
		for _, l := range loops {
			if l.Contains(i) {
				w *= 10
				if w >= 10000 {
					break
				}
			}
		}
		depthWeight[i] = w
	}
	g := &interference{adj: map[rtl.Reg]regSet{}, useCount: map[rtl.Reg]int{}}
	ensure := func(r rtl.Reg) {
		if g.adj[r] == nil {
			g.adj[r] = regSet{}
		}
	}
	addEdge := func(a, b rtl.Reg) {
		if a == b || !a.IsVirtual() || !b.IsVirtual() {
			return
		}
		ensure(a)
		ensure(b)
		g.adj[a].add(b)
		g.adj[b].add(a)
	}
	var scratch []rtl.Reg
	var live RegSet
	for _, b := range f.Blocks {
		live.CopyFrom(lv.Out[b.Index])
		for ii := len(b.Insts) - 1; ii >= 0; ii-- {
			in := &b.Insts[ii]
			d := instDef(in)
			if d != rtl.RegNone && d.IsVirtual() {
				ensure(d)
				var copySrc rtl.Reg = rtl.RegNone
				if in.Kind == rtl.Move && in.Src.Kind == rtl.OReg {
					copySrc = in.Src.Reg
				}
				live.ForEach(func(l rtl.Reg) {
					if l != copySrc {
						addEdge(d, l)
					}
				})
			}
			if d != rtl.RegNone {
				live.Remove(d)
			}
			scratch = instUses(in, scratch[:0])
			for _, r := range scratch {
				live.Add(r)
				if r.IsVirtual() {
					ensure(r)
					g.useCount[r] += depthWeight[b.Index]
				}
			}
		}
	}
	lv.Release()
	e.Release()
	return g
}

// tryColor attempts one colouring; on failure it inserts spill code for the
// chosen victims and reports false.
func tryColor(f *cfg.Func, m *machine.Machine, temps regSet) bool {
	g := buildInterference(f)
	adj, useCount := g.adj, g.useCount
	if len(adj) == 0 {
		return true
	}
	// Chaitin–Briggs simplification with optimistic colouring.
	k := m.NumRegs
	degree := map[rtl.Reg]int{}
	for r, s := range adj {
		degree[r] = len(s)
	}
	removed := regSet{}
	var stack []rtl.Reg
	nodes := make([]rtl.Reg, 0, len(adj))
	for r := range adj {
		nodes = append(nodes, r)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for len(stack) < len(nodes) {
		picked := rtl.RegNone
		for _, r := range nodes {
			if !removed.has(r) && degree[r] < k {
				picked = r
				break
			}
		}
		if picked == rtl.RegNone {
			// Optimistic: push the cheapest high-degree node.
			best, bestScore := rtl.RegNone, 0.0
			for _, r := range nodes {
				if removed.has(r) {
					continue
				}
				score := float64(useCount[r]+1) / float64(degree[r]+1)
				if best == rtl.RegNone || score < bestScore {
					best, bestScore = r, score
				}
			}
			picked = best
		}
		removed.add(picked)
		stack = append(stack, picked)
		for n := range adj[picked] {
			if !removed.has(n) {
				degree[n]--
			}
		}
	}
	color := map[rtl.Reg]int{}
	var spills []rtl.Reg
	for i := len(stack) - 1; i >= 0; i-- {
		r := stack[i]
		used := make([]bool, k)
		for n := range adj[r] {
			if c, ok := color[n]; ok {
				used[c] = true
			}
		}
		assigned := -1
		for c := 0; c < k; c++ {
			if !used[c] {
				assigned = c
				break
			}
		}
		if assigned < 0 {
			spills = append(spills, r)
			continue
		}
		color[r] = assigned
	}
	if len(spills) > 0 {
		// Map each uncolourable node to a spill victim that can actually
		// relieve pressure: the node itself unless it is a spill
		// temporary, in which case the cheapest interfering non-temporary.
		victims := regSet{}
		for _, r := range spills {
			v := r
			if temps.has(r) {
				v = rtl.RegNone
				bestScore := 0.0
				for n := range adj[r] {
					if temps.has(n) {
						continue
					}
					score := float64(useCount[n]+1) / float64(len(adj[n])+1)
					// Tie-break on the register number: adj is a map, so a
					// strict < here would leave the victim to iteration
					// order and make spill slots (and thus the whole
					// compile) nondeterministic.
					if v == rtl.RegNone || score < bestScore || score == bestScore && n < v {
						v, bestScore = n, score
					}
				}
				if v == rtl.RegNone {
					v = r // pathological; spill the temp anyway
				}
			}
			victims.add(v)
		}
		// Spill in register order: the order assigns frame slots and fresh
		// temporaries, so iterating the set directly would compile the same
		// function to different (equivalent) code run to run.
		ordered := make([]rtl.Reg, 0, len(victims))
		for v := range victims {
			ordered = append(ordered, v)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
		if debugSpills != nil {
			debugSpills(f, ordered)
		}
		for _, v := range ordered {
			spillReg(f, v, temps)
		}
		return false
	}
	// Rewrite virtual registers with their colours.
	rewrite := func(o *rtl.Operand) {
		switch o.Kind {
		case rtl.OReg:
			if o.Reg.IsVirtual() {
				o.Reg = rtl.FirstAlloc + rtl.Reg(color[o.Reg])
			}
		case rtl.OMem:
			if o.Reg.IsVirtual() {
				o.Reg = rtl.FirstAlloc + rtl.Reg(color[o.Reg])
			}
			if o.Index != rtl.RegNone && o.Index.IsVirtual() {
				o.Index = rtl.FirstAlloc + rtl.Reg(color[o.Index])
			}
		}
	}
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			rewrite(&in.Dst)
			rewrite(&in.Src)
			rewrite(&in.Src2)
		}
	}
	return true
}

// spillReg rewrites every use/def of r through a dedicated frame slot with
// short-lived temporaries. A register whose only definition materializes a
// constant or address is rematerialized at each use instead of being kept
// in memory.
func spillReg(f *cfg.Func, r rtl.Reg, temps regSet) {
	if rematerialize(f, r, temps) {
		return
	}
	slot := int64(f.NLocals)
	f.NLocals++
	for _, b := range f.Blocks {
		var out []rtl.Inst
		for ii := range b.Insts {
			in := b.Insts[ii]
			reads := regReads(&in, r)
			defines := instDef(&in) == r
			if !reads && !defines {
				out = append(out, in)
				continue
			}
			t := f.NewVReg()
			temps.add(t)
			if reads {
				out = append(out, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(t), Src: rtl.Local(slot)})
				substituteReg(&in, r, rtl.R(t))
			}
			if defines {
				// Replace the defined register too.
				if in.Dst.Kind == rtl.OReg && in.Dst.Reg == r {
					in.Dst.Reg = t
				}
				out = append(out, in)
				out = append(out, rtl.Inst{Kind: rtl.Move, Dst: rtl.Local(slot), Src: rtl.R(t)})
			} else {
				out = append(out, in)
			}
		}
		b.Insts = out
	}
}

// rematerialize handles the cheap-spill case: r has exactly one definition
// and it is `r = <imm or address>`. Each use is rewritten to recompute the
// value into a fresh short-lived temporary (or to use the constant operand
// directly when no addressing is involved), and the single definition is
// left for dead-variable elimination. Reports whether it applied.
func rematerialize(f *cfg.Func, r rtl.Reg, temps regSet) bool {
	var defOp rtl.Operand
	defs := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if instDef(in) == r {
				defs++
				if defs > 1 || in.Kind != rtl.Move || !in.Src.IsImmLike() {
					return false
				}
				defOp = in.Src
			}
		}
	}
	if defs != 1 {
		return false
	}
	for _, b := range f.Blocks {
		var out []rtl.Inst
		for ii := range b.Insts {
			in := b.Insts[ii]
			if instDef(&in) == r && in.Kind == rtl.Move && in.Src.Equal(defOp) {
				continue // drop the original definition
			}
			if !regReads(&in, r) {
				out = append(out, in)
				continue
			}
			t := f.NewVReg()
			temps.add(t)
			out = append(out, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(t), Src: defOp})
			substituteReg(&in, r, rtl.R(t))
			out = append(out, in)
		}
		b.Insts = out
	}
	return true
}

// debugSpills is set by tests/debug mains to trace spill decisions. It is
// the only package-level mutable state on the optimization path (the
// concurrency audit behind internal/service relies on this): install it
// before any concurrent compilation starts, never mid-flight.
var debugSpills func(f *cfg.Func, spills []rtl.Reg)

// DebugSpillsHook installs a stderr tracer for spill decisions (debug
// aid). Not safe to call while other goroutines are compiling.
func DebugSpillsHook() {
	round := 0
	debugSpills = func(f *cfg.Func, spills []rtl.Reg) {
		round++
		fmt.Fprintf(os.Stderr, "round %d: %d spills: %v (RTLs=%d, vregs=%d)\n",
			round, len(spills), spills[:min(len(spills), 8)], f.NumRTLs(), f.NVRegs)
	}
}
