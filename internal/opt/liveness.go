// Package opt implements the standard VPO optimizations of the paper's
// Figure 3: branch chaining, dead code elimination, constant folding
// (including at conditional branches), common subexpression elimination,
// dead variable elimination, code motion, strength reduction, instruction
// selection and register allocation, plus SPARC delay-slot filling.
//
// All passes operate on the cfg/rtl representation shared with the
// code-replication algorithms in internal/replicate.
package opt

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// ccReg is a pseudo-register representing the condition code in liveness
// analysis: Cmp defines it, Br uses it. The front end always emits a Cmp and
// its Br in the same block, and every pass preserves that pairing.
const ccReg rtl.Reg = -100

// CC exposes the condition-code pseudo-register to clients of
// ComputeLiveness (the semantic verifier in internal/verify): it is
// negative, so it can never collide with a machine or virtual register.
const CC = ccReg

// instUses appends the registers (and CC pseudo-register) read by in.
func instUses(in *rtl.Inst, dst []rtl.Reg) []rtl.Reg {
	dst = in.UsedRegs(dst)
	if in.Kind == rtl.Br {
		dst = append(dst, ccReg)
	}
	return dst
}

// instDef returns the register defined by in (RegNone if none). Cmp defines
// the CC pseudo-register.
func instDef(in *rtl.Inst) rtl.Reg {
	if in.Kind == rtl.Cmp {
		return ccReg
	}
	return in.DefReg()
}

// regSet is a small mutable register set.
type regSet map[rtl.Reg]struct{}

func (s regSet) add(r rtl.Reg) bool {
	if _, ok := s[r]; ok {
		return false
	}
	s[r] = struct{}{}
	return true
}

func (s regSet) has(r rtl.Reg) bool { _, ok := s[r]; return ok }

func (s regSet) clone() regSet {
	c := make(regSet, len(s))
	for r := range s {
		c[r] = struct{}{}
	}
	return c
}

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	In  []regSet
	Out []regSet
}

// ComputeLiveness runs backward iterative liveness over the function's
// registers (including the CC pseudo-register).
func ComputeLiveness(f *cfg.Func, e *cfg.Edges) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{In: make([]regSet, n), Out: make([]regSet, n)}
	gen := make([]regSet, n)
	kill := make([]regSet, n)
	var scratch []rtl.Reg
	for i, b := range f.Blocks {
		g, k := regSet{}, regSet{}
		for ii := range b.Insts {
			in := &b.Insts[ii]
			scratch = instUses(in, scratch[:0])
			for _, r := range scratch {
				if !k.has(r) {
					g.add(r)
				}
			}
			if d := instDef(in); d != rtl.RegNone {
				k.add(d)
			}
		}
		gen[i], kill[i] = g, k
		lv.In[i], lv.Out[i] = regSet{}, regSet{}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := regSet{}
			for _, s := range e.Succs[i] {
				for r := range lv.In[s.Index] {
					out.add(r)
				}
			}
			in := gen[i].clone()
			for r := range out {
				if !kill[i].has(r) {
					in.add(r)
				}
			}
			if len(out) != len(lv.Out[i]) || len(in) != len(lv.In[i]) {
				lv.Out[i], lv.In[i] = out, in
				changed = true
				continue
			}
			same := true
			for r := range in {
				if !lv.In[i].has(r) {
					same = false
					break
				}
			}
			if same {
				for r := range out {
					if !lv.Out[i].has(r) {
						same = false
						break
					}
				}
			}
			if !same {
				lv.Out[i], lv.In[i] = out, in
				changed = true
			}
		}
	}
	return lv
}
