// Package opt implements the standard VPO optimizations of the paper's
// Figure 3: branch chaining, dead code elimination, constant folding
// (including at conditional branches), common subexpression elimination,
// dead variable elimination, code motion, strength reduction, instruction
// selection and register allocation, plus SPARC delay-slot filling.
//
// All passes operate on the cfg/rtl representation shared with the
// code-replication algorithms in internal/replicate.
package opt

import (
	"math/bits"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// ccReg is a pseudo-register representing the condition code in liveness
// analysis: Cmp defines it, Br uses it. The front end always emits a Cmp and
// its Br in the same block, and every pass preserves that pairing.
const ccReg rtl.Reg = -100

// CC exposes the condition-code pseudo-register to clients of
// ComputeLiveness (the semantic verifier in internal/verify): it is
// negative, so it can never collide with a machine or virtual register.
const CC = ccReg

// instUses appends the registers (and CC pseudo-register) read by in.
func instUses(in *rtl.Inst, dst []rtl.Reg) []rtl.Reg {
	dst = in.UsedRegs(dst)
	if in.Kind == rtl.Br {
		dst = append(dst, ccReg)
	}
	return dst
}

// instDef returns the register defined by in (RegNone if none). Cmp defines
// the CC pseudo-register.
func instDef(in *rtl.Inst) rtl.Reg {
	if in.Kind == rtl.Cmp {
		return ccReg
	}
	return in.DefReg()
}

// The liveness universe maps every register a function can mention to a
// dense bit index: the CC pseudo-register first, then the machine registers
// (FP/SP/RV and the allocatable file — at most machSpan of them, far above
// any machine model's count), then the virtual registers in allocation
// order.
const (
	ccIndex  = 0
	machBase = 1
	machSpan = 64
	virtBase = machBase + machSpan
)

// regIndex returns r's dense bit index.
func regIndex(r rtl.Reg) int {
	switch {
	case r == ccReg:
		return ccIndex
	case r >= rtl.VRegBase:
		return virtBase + int(r-rtl.VRegBase)
	default:
		return machBase + int(r)
	}
}

// indexReg inverts regIndex.
func indexReg(i int) rtl.Reg {
	switch {
	case i == ccIndex:
		return ccReg
	case i >= virtBase:
		return rtl.VRegBase + rtl.Reg(i-virtBase)
	default:
		return rtl.Reg(i - machBase)
	}
}

// RegSet is a register set stored as a dense bitset (see regIndex for the
// layout). The zero value is an empty set that grows on first Add or
// UnionWith. Sets returned by ComputeLiveness alias one backing array and
// become invalid when the Liveness is Released.
type RegSet struct {
	words []uint64
}

// Has reports whether r is in the set.
func (s RegSet) Has(r rtl.Reg) bool {
	i := regIndex(r)
	w := i >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&63)) != 0
}

// Add inserts r, growing the set if needed.
func (s *RegSet) Add(r rtl.Reg) {
	i := regIndex(r)
	w := i >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// Remove deletes r from the set.
func (s *RegSet) Remove(r rtl.Reg) {
	i := regIndex(r)
	w := i >> 6
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) & 63)
	}
}

// Clear empties the set, keeping its capacity.
func (s *RegSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom makes s an exact copy of o, reusing s's storage when possible.
func (s *RegSet) CopyFrom(o RegSet) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
}

// UnionWith adds every register of o to s.
func (s *RegSet) UnionWith(o RegSet) {
	for len(s.words) < len(o.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Empty reports whether the set has no members.
func (s RegSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in increasing dense-index order (CC,
// then machine registers, then virtual registers) — a deterministic order,
// unlike the map-based set this type replaced.
func (s RegSet) ForEach(fn func(rtl.Reg)) {
	for wi, w := range s.words {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			fn(indexReg(i))
			w &= w - 1
		}
	}
}

// Liveness holds per-block live-in/live-out register sets. All sets share
// one backing array borrowed from the function's Scratch arena; Release
// returns it for the next ComputeLiveness to reuse, after which the sets
// must not be used.
type Liveness struct {
	In  []RegSet
	Out []RegSet

	f       *cfg.Func
	backing []uint64
}

// Release returns the analysis' storage to the function's Scratch arena.
// Safe to call more than once.
func (lv *Liveness) Release() {
	if lv == nil || lv.backing == nil {
		return
	}
	lv.f.Scratch().PutWords(lv.backing)
	lv.backing = nil
	lv.In, lv.Out = nil, nil
}

// ComputeLiveness runs backward iterative liveness over the function's
// registers (including the CC pseudo-register). The per-block bitsets share
// a single scratch-arena allocation; the fixpoint itself allocates nothing.
func ComputeLiveness(f *cfg.Func, e *cfg.Edges) *Liveness {
	n := len(f.Blocks)
	nw := (virtBase + f.NVRegs + 63) / 64
	backing := f.Scratch().Words(4 * n * nw)
	// One header array feeds all four per-block set slices, so the whole
	// analysis costs three fixed allocations (the Liveness value, this
	// array, and the instUses scratch) regardless of function size.
	hdrs := make([]RegSet, 4*n)
	lv := &Liveness{
		In:      hdrs[:n:n],
		Out:     hdrs[n : 2*n : 2*n],
		f:       f,
		backing: backing,
	}
	gen := hdrs[2*n : 3*n : 3*n]
	kill := hdrs[3*n:]
	for i := 0; i < n; i++ {
		off := 4 * i * nw
		lv.In[i] = RegSet{words: backing[off : off+nw : off+nw]}
		lv.Out[i] = RegSet{words: backing[off+nw : off+2*nw : off+2*nw]}
		gen[i] = RegSet{words: backing[off+2*nw : off+3*nw : off+3*nw]}
		kill[i] = RegSet{words: backing[off+3*nw : off+4*nw : off+4*nw]}
	}
	var scratch []rtl.Reg
	for i, b := range f.Blocks {
		g, k := &gen[i], &kill[i]
		for ii := range b.Insts {
			in := &b.Insts[ii]
			scratch = instUses(in, scratch[:0])
			for _, r := range scratch {
				if !k.Has(r) {
					g.Add(r)
				}
			}
			if d := instDef(in); d != rtl.RegNone {
				k.Add(d)
			}
		}
		// The monotone fixpoint starts from In = gen, Out = empty.
		copy(lv.In[i].words, g.words)
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			outw := lv.Out[i].words
			grew := false
			for _, s := range e.Succs[i] {
				inw := lv.In[s.Index].words
				for w := range outw {
					if nv := outw[w] | inw[w]; nv != outw[w] {
						outw[w] = nv
						grew = true
					}
				}
			}
			if !grew {
				continue
			}
			inw := lv.In[i].words
			genw, killw := gen[i].words, kill[i].words
			for w := range inw {
				if nv := genw[w] | outw[w]&^killw[w]; nv != inw[w] {
					inw[w] = nv
					changed = true
				}
			}
		}
	}
	return lv
}
