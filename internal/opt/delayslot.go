package opt

import (
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// FillDelaySlots gives every branch, jump, indirect jump and return a delay
// slot, as the SPARC requires: the nearest preceding independent
// instruction moves into the slot; when none qualifies a no-op is inserted.
// Call delay slots are modelled as always filled (on a real SPARC the last
// argument move almost always occupies them), so calls get no explicit
// slot; see DESIGN.md §6. This must be the final pass — afterwards blocks
// no longer end with their terminator and the CFG passes must not run
// again. The VM executes any instructions after a CTI before honouring the
// transfer, which is exactly delay-slot semantics.
//
// Returns the number of slots filled with useful instructions and the
// number of no-ops inserted.
func FillDelaySlots(f *cfg.Func, m *machine.Machine) (filled, nops int) {
	if !m.DelaySlots {
		return 0, 0
	}
	// Work-list over labels: target-filling splits branch-target blocks,
	// whose tails must still receive slots themselves.
	queue := make([]rtl.Label, 0, len(f.Blocks))
	processed := map[rtl.Label]bool{}
	for _, b := range f.Blocks {
		queue = append(queue, b.Label)
	}
	for qi := 0; qi < len(queue); qi++ {
		b := f.BlockByLabel(queue[qi])
		if b == nil || processed[b.Label] {
			continue
		}
		processed[b.Label] = true
		n := len(b.Insts)
		if n == 0 {
			continue
		}
		var out []rtl.Inst
		for ii := 0; ii < n; ii++ {
			in := b.Insts[ii]
			if !isCTIKind(in.Kind) {
				out = append(out, in)
				continue
			}
			// First choice: pull an earlier independent instruction down.
			if si := slotCandidate(out, &in); si >= 0 {
				slot := out[si]
				out = append(out[:si], out[si+1:]...)
				out = append(out, in, slot)
				filled++
				continue
			}
			// Second choice: copy the first instruction of the branch
			// target into the slot — annulled for conditional branches so
			// the fall-through path squashes it (the SPARC ",a" form).
			if slot, ok := targetFill(f, b, &in, processed, &queue); ok {
				out = append(out, in, slot)
				filled++
				continue
			}
			// Third choice: a single-block loop (Br back to its own block,
			// the shape rotation and block merging produce). Peel the first
			// instruction off into this block and move the loop body into a
			// new tail block, so the annulled slot can replay it.
			if in.Kind == rtl.Br && in.Target == b.Label && ii == n-1 && len(out) >= 2 {
				if k := out[0].Kind; k == rtl.Move || k == rtl.Bin || k == rtl.Un {
					slot := out[0].Clone()
					tail := &cfg.Block{Label: f.NewLabel()}
					in.Annul = true
					in.Target = tail.Label
					tail.Insts = append(tail.Insts, out[1:]...)
					tail.Insts = append(tail.Insts, in, slot)
					out = out[:1]
					b.Insts = out
					f.InsertBlocksAfter(b.Index, tail)
					processed[tail.Label] = true
					filled++
					// The block was fully rewritten; nothing further to
					// process in it.
					out = b.Insts
					break
				}
			}
			out = append(out, in, rtl.Inst{Kind: rtl.Nop})
			nops++
		}
		b.Insts = out
	}
	// Target-filling a branch that was its target's only entry leaves the
	// one-instruction head stranded (every other predecessor entered at the
	// top; here there were none). No pass runs after this one, so reclaim
	// stranded heads now — ComputeEdges understands the post-slot layout.
	if filled > 0 {
		cfg.RemoveUnreachable(f)
	}
	return filled, nops
}

// targetFill tries to fill the slot of a Br/Jmp from its target block: the
// target's first instruction is copied into the slot, the target split
// after that instruction, and the transfer retargeted to the split point.
// Conditional branches become annulling so the untaken path squashes the
// copy. Returns the slot instruction on success; the CTI's target is
// updated in place.
func targetFill(f *cfg.Func, cur *cfg.Block, cti *rtl.Inst, processed map[rtl.Label]bool, queue *[]rtl.Label) (rtl.Inst, bool) {
	if cti.Kind != rtl.Br && cti.Kind != rtl.Jmp {
		return rtl.Inst{}, false
	}
	tgt := f.BlockByLabel(cti.Target)
	if tgt == nil || tgt == cur || len(tgt.Insts) < 2 {
		return rtl.Inst{}, false
	}
	t0 := tgt.Insts[0]
	switch t0.Kind {
	case rtl.Move, rtl.Bin, rtl.Un:
	default:
		return rtl.Inst{}, false
	}
	// Split the target after its first instruction; other predecessors
	// still enter at the top and fall into the tail.
	tail := &cfg.Block{Label: f.NewLabel(), Insts: append([]rtl.Inst{}, tgt.Insts[1:]...)}
	tgt.Insts = tgt.Insts[:1]
	f.InsertBlocksAfter(tgt.Index, tail)
	if processed[tgt.Label] {
		// The target's slots were already placed; the tail must not be
		// slotted again.
		processed[tail.Label] = true
	} else {
		*queue = append(*queue, tail.Label)
	}
	cti.Target = tail.Label
	if cti.Kind == rtl.Br {
		cti.Annul = true
	}
	return t0.Clone(), true
}

func isCTIKind(k rtl.Kind) bool {
	switch k {
	case rtl.Br, rtl.Jmp, rtl.IJmp, rtl.Ret:
		return true
	}
	return false
}

// slotCandidate returns the index in prefix of an instruction that can move
// after the CTI, or -1. The candidate must not feed the CTI (its condition
// code comparison, selector, or return value), must not itself transfer
// control or order-depend on argument setup, and nothing between it and the
// CTI may read what it writes or write what it reads. Up to maxSlotScan
// candidates are examined, nearest first.
func slotCandidate(prefix []rtl.Inst, cti *rtl.Inst) int {
	const maxSlotScan = 4
	tried := 0
	for i := len(prefix) - 1; i >= 0 && tried < maxSlotScan; i-- {
		switch prefix[i].Kind {
		case rtl.Cmp, rtl.Arg:
			continue // pinned before their consumer; look past them
		case rtl.Move, rtl.Bin, rtl.Un:
			tried++
			if slotMovable(prefix, i, cti) {
				return i
			}
		default:
			return -1 // never move across calls, CTIs, nops
		}
	}
	return -1
}

// slotMovable reports whether prefix[i] can move to the delay slot.
func slotMovable(prefix []rtl.Inst, i int, cti *rtl.Inst) bool {
	cand := &prefix[i]
	// The candidate moves past prefix[i+1:] and the CTI. Nothing it writes
	// may be read by them; nothing it reads may be written by them.
	var candReads, between []rtl.Reg
	candReads = instUses(cand, candReads)
	candDef := instDef(cand)
	candWritesMem := writesMemory(cand)
	candReadsMem := readsMemory(cand)
	check := func(in *rtl.Inst) bool {
		between = instUses(in, between[:0])
		if candDef != rtl.RegNone {
			for _, r := range between {
				if r == candDef {
					return false
				}
			}
			if in.Dst.Kind == rtl.OMem && in.Dst.UsesReg(candDef) {
				return false
			}
		}
		d := instDef(in)
		for _, r := range candReads {
			if r == d {
				return false
			}
		}
		if candWritesMem && (readsMemory(in) || writesMemory(in)) {
			return false
		}
		if candReadsMem && writesMemory(in) {
			return false
		}
		return true
	}
	for j := i + 1; j < len(prefix); j++ {
		if !check(&prefix[j]) {
			return false
		}
	}
	return check(cti)
}
