package opt_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/opt"
	"repro/internal/replicate"
	"repro/internal/vm"
)

// passOrderSources are small programs with diverse control flow for the
// pass-interaction fuzz below.
var passOrderSources = []string{
	`int main() {
		int i, s;
		s = 0;
		for (i = 0; i < 30; i++)
			if (i % 3 == 0) s += i; else s -= 1;
		printint(s);
		return 0;
	}`,
	`int a[16];
	int main() {
		int i, j;
		for (i = 0; i < 16; i++) a[i] = i * 5 % 7;
		j = 0;
		while (j < 16 && a[j] != 6) j++;
		printint(j); putchar(' '); printint(a[j]);
		return 0;
	}`,
	`int f(int n) { return n <= 1 ? 1 : n * f(n - 1); }
	int main() {
		int k;
		for (k = 1; k < 8; k++) { printint(f(k)); putchar(' '); }
		return 0;
	}`,
	`int main() {
		int x, steps;
		x = 0; steps = 0;
	again:
		x += 3;
		if (x % 7 == 0) goto out;
		steps++;
		if (steps < 50) goto again;
	out:
		printint(x); putchar(' '); printint(steps);
		return 0;
	}`,
}

// TestPassOrderFuzz applies random sequences of optimization passes (a
// superset of any order the pipeline would use) and checks that structure
// and behaviour survive every prefix. This catches pass-interaction bugs
// that the fixed Figure-3 order would mask.
func TestPassOrderFuzz(t *testing.T) {
	type pass struct {
		name string
		run  func(f *cfg.Func, m *machine.Machine)
	}
	passes := []pass{
		{"chain", func(f *cfg.Func, m *machine.Machine) { opt.BranchChaining(f) }},
		{"dce", func(f *cfg.Func, m *machine.Machine) { opt.DeadCodeElimination(f) }},
		{"reorder", func(f *cfg.Func, m *machine.Machine) { cfg.ReorderBlocks(f) }},
		{"promote", func(f *cfg.Func, m *machine.Machine) { opt.PromoteLocals(f) }},
		{"cse", func(f *cfg.Func, m *machine.Machine) { opt.CommonSubexpressions(f, m) }},
		{"deadvar", func(f *cfg.Func, m *machine.Machine) { opt.DeadVariableElimination(f) }},
		{"motion", func(f *cfg.Func, m *machine.Machine) { opt.CodeMotion(f) }},
		{"strength", func(f *cfg.Func, m *machine.Machine) { opt.StrengthReduction(f) }},
		{"fold", func(f *cfg.Func, m *machine.Machine) { opt.FoldConstants(f) }},
		{"foldbr", func(f *cfg.Func, m *machine.Machine) { opt.FoldBranches(f) }},
		{"instsel", func(f *cfg.Func, m *machine.Machine) { opt.InstructionSelection(f, m) }},
		{"merge", func(f *cfg.Func, m *machine.Machine) { opt.MergeBlocks(f) }},
		{"deljmp", func(f *cfg.Func, m *machine.Machine) { cfg.DeleteJumpsToNext(f) }},
		{"jumps", func(f *cfg.Func, m *machine.Machine) { replicate.JUMPS(f, replicate.Options{}) }},
		{"loops", func(f *cfg.Func, m *machine.Machine) { replicate.LOOPS(f, replicate.Options{}) }},
	}
	trials := 60
	if testing.Short() {
		trials = 10
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < trials; trial++ {
		src := passOrderSources[trial%len(passOrderSources)]
		m := machine.M68020
		if trial%2 == 1 {
			m = machine.SPARC
		}
		ref, err := mcc.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := vm.Run(ref, vm.Config{})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := mcc.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.Funcs {
			machine.Legalize(f, m)
		}
		var applied []string
		for step := 0; step < 12; step++ {
			p := passes[r.Intn(len(passes))]
			applied = append(applied, p.name)
			for _, f := range prog.Funcs {
				p.run(f, m)
			}
			if err := cfg.ValidateProgram(prog, false); err != nil {
				t.Fatalf("trial %d after %v: %v\n%s", trial, applied, err, prog)
			}
			got, err := vm.Run(prog, vm.Config{MaxSteps: 10_000_000})
			if err != nil {
				t.Fatalf("trial %d after %v: run: %v\n%s", trial, applied, err, prog)
			}
			if string(got.Output) != string(want.Output) {
				t.Fatalf("trial %d after %v: output %q, want %q\n%s",
					trial, applied, got.Output, want.Output, prog)
			}
		}
	}
}
