package rtl

import (
	"math/rand"
	"testing"
)

// randomOperand produces any operand the compiler can print.
func randomOperand(r *rand.Rand) Operand {
	switch r.Intn(7) {
	case 0:
		return R(Reg(r.Intn(30)))
	case 1:
		return R(VRegBase + Reg(r.Intn(100)))
	case 2:
		return Imm(int64(r.Intn(2000) - 1000))
	case 3:
		return Local(int64(r.Intn(40)))
	case 4:
		return Global("sym", int64(r.Intn(5)))
	case 5:
		if r.Intn(2) == 0 {
			return Mem(Reg(3+r.Intn(10)), int64(r.Intn(9)-4))
		}
		return MemIdx(Reg(3+r.Intn(10)), int64(r.Intn(5)), VRegBase+Reg(r.Intn(5)), 1+int64(r.Intn(3)))
	default:
		if r.Intn(2) == 0 {
			return AddrLocal(int64(r.Intn(20)))
		}
		return AddrGlobal("g", int64(r.Intn(4)))
	}
}

func randomReg(r *rand.Rand) Operand { return R(VRegBase + Reg(r.Intn(20))) }

// randomInst produces any instruction shape the compiler can print.
func randomInst(r *rand.Rand) Inst {
	switch r.Intn(11) {
	case 0:
		return Inst{Kind: Move, Dst: randomReg(r), Src: randomOperand(r)}
	case 1:
		return Inst{Kind: Bin, BOp: BinOp(r.Intn(10)), Dst: randomReg(r),
			Src: randomOperand(r), Src2: randomOperand(r)}
	case 2:
		return Inst{Kind: Un, UOp: UnOp(r.Intn(2)), Dst: randomReg(r), Src: randomReg(r)}
	case 3:
		return Inst{Kind: Cmp, Src: randomOperand(r), Src2: randomOperand(r)}
	case 4:
		return Inst{Kind: Br, BrRel: Rel(r.Intn(6)), Target: Label(r.Intn(50)), Annul: r.Intn(2) == 0}
	case 5:
		return Inst{Kind: Jmp, Target: Label(r.Intn(50))}
	case 6:
		tbl := make([]Label, 1+r.Intn(5))
		for i := range tbl {
			tbl[i] = Label(r.Intn(50))
		}
		return Inst{Kind: IJmp, Src: randomReg(r), Lo: int64(r.Intn(5)), Table: tbl}
	case 7:
		return Inst{Kind: Arg, ArgIdx: r.Intn(6), Src: randomOperand(r)}
	case 8:
		if r.Intn(2) == 0 {
			return Inst{Kind: Call, Sym: "fn", Dst: None()}
		}
		return Inst{Kind: Call, Sym: "fn", Dst: randomReg(r)}
	case 9:
		if r.Intn(2) == 0 {
			return Inst{Kind: Ret, Src: None()}
		}
		return Inst{Kind: Ret, Src: randomOperand(r)}
	default:
		return Inst{Kind: Nop}
	}
}

// TestParseInstRoundTrip: printing and reparsing any instruction is the
// identity (up to String equality, which covers every semantic field).
func TestParseInstRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		in := randomInst(r)
		text := in.String()
		back, err := ParseInst(text)
		if err != nil {
			t.Fatalf("trial %d: ParseInst(%q): %v", trial, text, err)
		}
		if got := back.String(); got != text {
			t.Fatalf("trial %d: round trip %q -> %q", trial, text, got)
		}
	}
}

// TestParseOperandRoundTrip does the same at operand granularity.
func TestParseOperandRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		o := randomOperand(r)
		text := o.String()
		back, err := ParseOperand(text)
		if err != nil {
			t.Fatalf("trial %d: ParseOperand(%q): %v", trial, text, err)
		}
		if !back.Equal(o) {
			t.Fatalf("trial %d: round trip %q -> %q", trial, text, back)
		}
	}
}

func TestParseOperandErrors(t *testing.T) {
	for _, s := range []string{"q9", "#x", "L[zz", "M[#3]", "&", "r-1", "M[r3+x]"} {
		if _, err := ParseOperand(s); err == nil {
			t.Errorf("ParseOperand(%q) should fail", s)
		}
	}
}

func TestParseInstErrors(t *testing.T) {
	for _, s := range []string{"", "PC =", "CC = x", "arg[x] = r3", "PC = CC <> 0, L1", "v0"} {
		if _, err := ParseInst(s); err == nil {
			t.Errorf("ParseInst(%q) should fail", s)
		}
	}
}
