package rtl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseOperand parses the textual operand notation produced by
// Operand.String: registers (r3, fp, sp, rv, v12), immediates (#5), frame
// cells (L[fp+3]), globals (L[sym] / L[sym+1]), register-indirect memory
// (M[r3+2+r4*1]) and addresses (&fp+3, &sym, &sym+1). The blank operand is
// "_".
func ParseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "_":
		return None(), nil
	case strings.HasPrefix(s, "#"):
		v, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad immediate %q", s)
		}
		return Imm(v), nil
	case strings.HasPrefix(s, "L[fp"):
		if !strings.HasSuffix(s, "]") {
			return Operand{}, fmt.Errorf("rtl: unterminated operand %q", s)
		}
		body := strings.TrimSuffix(strings.TrimPrefix(s, "L[fp"), "]")
		off, err := parseSignedOff(body)
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad frame operand %q", s)
		}
		return Local(off), nil
	case strings.HasPrefix(s, "L["):
		if !strings.HasSuffix(s, "]") {
			return Operand{}, fmt.Errorf("rtl: unterminated operand %q", s)
		}
		body := strings.TrimSuffix(strings.TrimPrefix(s, "L["), "]")
		sym, off, err := parseSymOff(body)
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad global operand %q", s)
		}
		return Global(sym, off), nil
	case strings.HasPrefix(s, "M["):
		if !strings.HasSuffix(s, "]") {
			return Operand{}, fmt.Errorf("rtl: unterminated operand %q", s)
		}
		return parseMem(s)
	case strings.HasPrefix(s, "&fp"):
		off, err := parseSignedOff(strings.TrimPrefix(s, "&fp"))
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad frame address %q", s)
		}
		return AddrLocal(off), nil
	case strings.HasPrefix(s, "&"):
		sym, off, err := parseSymOff(s[1:])
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad address %q", s)
		}
		return AddrGlobal(sym, off), nil
	}
	r, err := parseReg(s)
	if err != nil {
		return Operand{}, err
	}
	return R(r), nil
}

func parseReg(s string) (Reg, error) {
	switch s {
	case "fp":
		return FP, nil
	case "sp":
		return SP, nil
	case "rv":
		return RV, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'v') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 {
			if s[0] == 'v' {
				return VRegBase + Reg(n), nil
			}
			return Reg(n), nil
		}
	}
	return RegNone, fmt.Errorf("rtl: bad register %q", s)
}

// parseSignedOff parses "", "+3" or "-3".
func parseSignedOff(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// parseSymOff parses "sym", "sym+3" or "sym-3".
func parseSymOff(s string) (string, int64, error) {
	i := strings.IndexAny(s, "+-")
	// A leading sign cannot start a symbol.
	if i <= 0 {
		if s == "" {
			return "", 0, fmt.Errorf("empty symbol")
		}
		return s, 0, nil
	}
	off, err := strconv.ParseInt(s[i:], 10, 64)
	if err != nil {
		return "", 0, err
	}
	return s[:i], off, nil
}

// parseMem parses M[base(+disp)?(+idx*scale)?].
func parseMem(s string) (Operand, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(s, "M["), "]")
	parts := strings.Split(body, "+")
	if len(parts) == 0 {
		return Operand{}, fmt.Errorf("rtl: bad memory operand %q", s)
	}
	// A negative displacement glues to the base: "M[r3-2]".
	basePart, neg := parts[0], int64(0)
	if i := strings.Index(basePart, "-"); i > 0 {
		d, err := strconv.ParseInt(basePart[i:], 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad displacement in %q", s)
		}
		basePart, neg = basePart[:i], d
	}
	base, err := parseReg(basePart)
	if err != nil {
		return Operand{}, fmt.Errorf("rtl: bad memory base in %q", s)
	}
	op := Mem(base, neg)
	for _, p := range parts[1:] {
		if star := strings.Index(p, "*"); star >= 0 {
			idx, err := parseReg(p[:star])
			if err != nil {
				return Operand{}, fmt.Errorf("rtl: bad index register in %q", s)
			}
			scale, err := strconv.ParseInt(p[star+1:], 10, 64)
			if err != nil {
				return Operand{}, fmt.Errorf("rtl: bad scale in %q", s)
			}
			op.Index, op.Scale = idx, scale
			continue
		}
		// Displacement; String always renders it with an explicit sign
		// glued to the previous '+' (e.g. "r3+-2" never occurs — negative
		// displacements print as "r3-2", handled below).
		d, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("rtl: bad displacement in %q", s)
		}
		op.Val += d
	}
	return op, nil
}

var binOpSymbols = map[string]BinOp{
	"+": Add, "-": Sub, "*": Mul, "/": Div, "%": Mod,
	"&": And, "|": Or, "^": Xor, "<<": Shl, ">>": Shr,
}

var relSymbols = map[string]Rel{
	"==": Eq, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge,
}

// ParseLabel parses "L7".
func ParseLabel(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != 'L' {
		return NoLabel, fmt.Errorf("rtl: bad label %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return NoLabel, fmt.Errorf("rtl: bad label %q", s)
	}
	return Label(n), nil
}

// ParseInst parses one instruction in the notation produced by
// Inst.String. The inverse property `ParseInst(in.String()) == in` holds
// for every instruction the compiler can emit.
func ParseInst(line string) (Inst, error) {
	s := strings.TrimSpace(line)
	switch {
	case s == "nop":
		return Inst{Kind: Nop}, nil
	case s == "PC = RT":
		return Inst{Kind: Ret, Src: None()}, nil
	case strings.HasPrefix(s, "PC = RT, rv="):
		src, err := ParseOperand(strings.TrimPrefix(s, "PC = RT, rv="))
		if err != nil {
			return Inst{}, err
		}
		return Inst{Kind: Ret, Src: src}, nil
	case strings.HasPrefix(s, "PC = CC "):
		return parseBranch(s)
	case strings.HasPrefix(s, "PC = tbl["):
		return parseIJmp(s)
	case strings.HasPrefix(s, "PC = "):
		l, err := ParseLabel(strings.TrimPrefix(s, "PC = "))
		if err != nil {
			return Inst{}, err
		}
		return Inst{Kind: Jmp, Target: l}, nil
	case strings.HasPrefix(s, "CC = "):
		lhs, rhs, ok := strings.Cut(strings.TrimPrefix(s, "CC = "), " ? ")
		if !ok {
			return Inst{}, fmt.Errorf("rtl: bad compare %q", s)
		}
		a, err := ParseOperand(lhs)
		if err != nil {
			return Inst{}, err
		}
		b, err := ParseOperand(rhs)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Kind: Cmp, Src: a, Src2: b}, nil
	case strings.HasPrefix(s, "arg["):
		return parseArg(s)
	case strings.HasPrefix(s, "call "):
		return Inst{Kind: Call, Sym: strings.TrimPrefix(s, "call "), Dst: None()}, nil
	}
	// Assignment forms: dst = call f | dst = src | dst = a op b | dst = -x.
	dstS, rhs, ok := strings.Cut(s, " = ")
	if !ok {
		return Inst{}, fmt.Errorf("rtl: unrecognized instruction %q", s)
	}
	dst, err := ParseOperand(dstS)
	if err != nil {
		return Inst{}, err
	}
	if name, isCall := strings.CutPrefix(rhs, "call "); isCall {
		return Inst{Kind: Call, Sym: name, Dst: dst}, nil
	}
	if strings.HasPrefix(rhs, "-") && !isNumeric(rhs) {
		src, err := ParseOperand(rhs[1:])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Kind: Un, UOp: Neg, Dst: dst, Src: src}, nil
	}
	if strings.HasPrefix(rhs, "~") {
		src, err := ParseOperand(rhs[1:])
		if err != nil {
			return Inst{}, err
		}
		return Inst{Kind: Un, UOp: Not, Dst: dst, Src: src}, nil
	}
	// Binary: "a op b" with spaces around op.
	for _, opSym := range []string{" << ", " >> ", " + ", " - ", " * ", " / ", " % ", " & ", " | ", " ^ "} {
		if l, r, found := strings.Cut(rhs, opSym); found {
			a, err := ParseOperand(l)
			if err != nil {
				return Inst{}, err
			}
			b, err := ParseOperand(r)
			if err != nil {
				return Inst{}, err
			}
			return Inst{Kind: Bin, BOp: binOpSymbols[strings.TrimSpace(opSym)], Dst: dst, Src: a, Src2: b}, nil
		}
	}
	src, err := ParseOperand(rhs)
	if err != nil {
		return Inst{}, err
	}
	return Inst{Kind: Move, Dst: dst, Src: src}, nil
}

func isNumeric(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

func parseBranch(s string) (Inst, error) {
	annul := false
	if strings.HasSuffix(s, " (annul)") {
		annul = true
		s = strings.TrimSuffix(s, " (annul)")
	}
	body := strings.TrimPrefix(s, "PC = CC ")
	// "<rel> 0, L<k>"
	relS, rest, ok := strings.Cut(body, " 0, ")
	if !ok {
		return Inst{}, fmt.Errorf("rtl: bad branch %q", s)
	}
	rel, known := relSymbols[relS]
	if !known {
		return Inst{}, fmt.Errorf("rtl: bad relation %q in %q", relS, s)
	}
	l, err := ParseLabel(rest)
	if err != nil {
		return Inst{}, err
	}
	return Inst{Kind: Br, BrRel: rel, Target: l, Annul: annul}, nil
}

func parseIJmp(s string) (Inst, error) {
	// "PC = tbl[<src>-<lo>]{L1,L2,...}"
	body := strings.TrimPrefix(s, "PC = tbl[")
	head, tblS, ok := strings.Cut(body, "]{")
	if !ok || !strings.HasSuffix(tblS, "}") {
		return Inst{}, fmt.Errorf("rtl: bad indirect jump %q", s)
	}
	i := strings.LastIndex(head, "-")
	if i < 0 {
		return Inst{}, fmt.Errorf("rtl: bad indirect jump selector %q", s)
	}
	src, err := ParseOperand(head[:i])
	if err != nil {
		return Inst{}, err
	}
	lo, err := strconv.ParseInt(head[i+1:], 10, 64)
	if err != nil {
		return Inst{}, fmt.Errorf("rtl: bad table base in %q", s)
	}
	var table []Label
	for _, ls := range strings.Split(strings.TrimSuffix(tblS, "}"), ",") {
		l, err := ParseLabel(ls)
		if err != nil {
			return Inst{}, err
		}
		table = append(table, l)
	}
	return Inst{Kind: IJmp, Src: src, Lo: lo, Table: table}, nil
}

func parseArg(s string) (Inst, error) {
	// "arg[<n>] = <src>"
	idxS, rhs, ok := strings.Cut(strings.TrimPrefix(s, "arg["), "] = ")
	if !ok {
		return Inst{}, fmt.Errorf("rtl: bad argument move %q", s)
	}
	idx, err := strconv.Atoi(idxS)
	if err != nil {
		return Inst{}, fmt.Errorf("rtl: bad argument index in %q", s)
	}
	src, err := ParseOperand(rhs)
	if err != nil {
		return Inst{}, err
	}
	return Inst{Kind: Arg, ArgIdx: idx, Src: src}, nil
}
