// Package rtl defines the register transfer list (RTL) intermediate
// representation used throughout the optimizer.
//
// An RTL describes the effect of a single target-machine instruction, in the
// style of VPO (Very Portable Optimizer). Every instruction kept in the final
// code corresponds to exactly one machine instruction, so static instruction
// counts are simply RTL counts and dynamic counts are executed-RTL counts.
package rtl

import "fmt"

// Reg names a register. Registers 0..VRegBase-1 are machine registers
// (including the dedicated FP, SP and RV registers); registers >= VRegBase
// are compiler temporaries ("virtual registers") that must be mapped to
// machine registers or spilled before final code is emitted.
type Reg int32

// Dedicated machine registers, present on every target.
const (
	// RegNone marks an absent register operand field.
	RegNone Reg = -1
	// FP is the frame pointer; locals live at M[FP+offset].
	FP Reg = 0
	// SP is the stack pointer.
	SP Reg = 1
	// RV carries function return values.
	RV Reg = 2
	// FirstAlloc is the first general-purpose allocatable register.
	// A machine with K allocatable registers offers FirstAlloc ..
	// FirstAlloc+K-1.
	FirstAlloc Reg = 3
	// VRegBase is the first virtual register number.
	VRegBase Reg = 1 << 20
)

// IsVirtual reports whether r is a compiler temporary rather than a machine
// register.
func (r Reg) IsVirtual() bool { return r >= VRegBase }

// String renders machine registers as r0/fp/sp/rv and virtual registers as
// v0, v1, ...
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "r?"
	case r == FP:
		return "fp"
	case r == SP:
		return "sp"
	case r == RV:
		return "rv"
	case r >= VRegBase:
		return fmt.Sprintf("v%d", int32(r-VRegBase))
	default:
		return fmt.Sprintf("r%d", int32(r))
	}
}

// OpKind discriminates operand addressing modes.
type OpKind uint8

// Operand addressing modes.
const (
	// ONone marks an absent operand.
	ONone OpKind = iota
	// OReg is a register operand.
	OReg
	// OImm is an integer constant.
	OImm
	// OLocal is a frame slot: M[FP + Val] (Val in cells).
	OLocal
	// OGlobal is a cell in global memory: M[&Sym + Val].
	OGlobal
	// OMem is register-indirect memory: M[Reg + Val + Index*Scale].
	OMem
	// OAddrLocal is the address FP + Val (address-of a local).
	OAddrLocal
	// OAddrGlobal is the address &Sym + Val (address-of a global).
	OAddrGlobal
)

// Operand is one operand of an RTL. The memory of the simulated machines is
// cell addressed: every scalar, array element and pointer occupies one cell.
type Operand struct {
	Kind  OpKind
	Reg   Reg    // OReg register; OMem base register
	Val   int64  // OImm value; OLocal/OAddrLocal offset; OGlobal/OAddrGlobal offset; OMem displacement
	Sym   string // OGlobal/OAddrGlobal symbol name
	Index Reg    // OMem optional index register (RegNone when absent)
	Scale int64  // OMem index scale in cells (0 or 1+ when Index present)
}

// Convenience operand constructors.

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: OReg, Reg: r, Index: RegNone} }

// Imm returns an integer-constant operand.
func Imm(v int64) Operand { return Operand{Kind: OImm, Val: v, Index: RegNone} }

// Local returns a frame-slot memory operand M[FP+off].
func Local(off int64) Operand { return Operand{Kind: OLocal, Val: off, Index: RegNone} }

// Global returns a global memory operand M[&sym+off].
func Global(sym string, off int64) Operand {
	return Operand{Kind: OGlobal, Sym: sym, Val: off, Index: RegNone}
}

// Mem returns a register-indirect memory operand M[base+disp].
func Mem(base Reg, disp int64) Operand {
	return Operand{Kind: OMem, Reg: base, Val: disp, Index: RegNone}
}

// MemIdx returns an indexed memory operand M[base+disp+idx*scale].
func MemIdx(base Reg, disp int64, idx Reg, scale int64) Operand {
	return Operand{Kind: OMem, Reg: base, Val: disp, Index: idx, Scale: scale}
}

// AddrLocal returns the address of a frame slot as a value operand.
func AddrLocal(off int64) Operand { return Operand{Kind: OAddrLocal, Val: off, Index: RegNone} }

// AddrGlobal returns the address of a global cell as a value operand.
func AddrGlobal(sym string, off int64) Operand {
	return Operand{Kind: OAddrGlobal, Sym: sym, Val: off, Index: RegNone}
}

// None returns the absent operand.
func None() Operand { return Operand{Kind: ONone, Index: RegNone} }

// IsMem reports whether the operand reads or writes memory.
func (o Operand) IsMem() bool {
	return o.Kind == OLocal || o.Kind == OGlobal || o.Kind == OMem
}

// IsReg reports whether the operand is exactly a register.
func (o Operand) IsReg() bool { return o.Kind == OReg }

// IsImmLike reports whether the operand is a compile-time constant value
// (integer immediate or the address of a local/global).
func (o Operand) IsImmLike() bool {
	return o.Kind == OImm || o.Kind == OAddrLocal || o.Kind == OAddrGlobal
}

// Equal reports structural equality of operands.
func (o Operand) Equal(p Operand) bool {
	if o.Kind != p.Kind {
		return false
	}
	switch o.Kind {
	case ONone:
		return true
	case OReg:
		return o.Reg == p.Reg
	case OImm, OLocal, OAddrLocal:
		return o.Val == p.Val
	case OGlobal, OAddrGlobal:
		return o.Sym == p.Sym && o.Val == p.Val
	case OMem:
		return o.Reg == p.Reg && o.Val == p.Val && o.Index == p.Index &&
			(o.Index == RegNone || o.Scale == p.Scale)
	}
	return false
}

// UsesReg reports whether the operand reads register r (as value, base or
// index).
func (o Operand) UsesReg(r Reg) bool {
	switch o.Kind {
	case OReg:
		return o.Reg == r
	case OMem:
		return o.Reg == r || o.Index == r
	}
	return false
}

// BinOp is a two-operand arithmetic or logical operator.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}

func (b BinOp) String() string {
	if int(b) < len(binOpNames) {
		return binOpNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// Commutative reports whether x op y == y op x.
func (b BinOp) Commutative() bool {
	switch b {
	case Add, Mul, And, Or, Xor:
		return true
	}
	return false
}

// Eval applies the operator to constant inputs. Division and remainder by
// zero yield 0 (the simulated machines trap to zero rather than fault, which
// keeps constant folding total).
func (b BinOp) Eval(x, y int64) int64 {
	switch b {
	case Add:
		return x + y
	case Sub:
		return x - y
	case Mul:
		return x * y
	case Div:
		if y == 0 {
			return 0
		}
		return x / y
	case Mod:
		if y == 0 {
			return 0
		}
		return x % y
	case And:
		return x & y
	case Or:
		return x | y
	case Xor:
		return x ^ y
	case Shl:
		return x << (uint64(y) & 63)
	case Shr:
		return x >> (uint64(y) & 63)
	}
	return 0
}

// UnOp is a one-operand operator.
type UnOp uint8

// Unary operators.
const (
	Neg UnOp = iota
	Not      // bitwise complement
)

func (u UnOp) String() string {
	switch u {
	case Neg:
		return "-"
	case Not:
		return "~"
	}
	return fmt.Sprintf("un(%d)", uint8(u))
}

// Eval applies the operator to a constant input.
func (u UnOp) Eval(x int64) int64 {
	switch u {
	case Neg:
		return -x
	case Not:
		return ^x
	}
	return 0
}

// Rel is a comparison relation tested by a conditional branch against the
// condition code set by a Cmp instruction.
type Rel uint8

// Comparison relations.
const (
	Eq Rel = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

var relNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

func (r Rel) String() string {
	if int(r) < len(relNames) {
		return relNames[r]
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Negate returns the complementary relation (taken exactly when r is not).
func (r Rel) Negate() Rel {
	switch r {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	return r
}

// Swap returns the relation with the comparison operands exchanged
// (a r b == b Swap(r) a).
func (r Rel) Swap() Rel {
	switch r {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return r
}

// Holds evaluates the relation on a comparison result sign (cmp = a-b style:
// x is the first compared value, y the second).
func (r Rel) Holds(x, y int64) bool {
	switch r {
	case Eq:
		return x == y
	case Ne:
		return x != y
	case Lt:
		return x < y
	case Le:
		return x <= y
	case Gt:
		return x > y
	case Ge:
		return x >= y
	}
	return false
}

// Label names a basic block within a function. Labels are unique per
// function and never reused.
type Label int32

// NoLabel marks an absent label.
const NoLabel Label = -1

func (l Label) String() string {
	if l == NoLabel {
		return "L?"
	}
	return fmt.Sprintf("L%d", int32(l))
}

// Kind discriminates RTL instruction kinds.
type Kind uint8

// Instruction kinds.
const (
	// Move: Dst = Src.
	Move Kind = iota
	// Bin: Dst = Src BOp Src2.
	Bin
	// Un: Dst = UOp Src.
	Un
	// Cmp: CC = Src ? Src2 (sets the condition code).
	Cmp
	// Br: if CC satisfies BrRel then PC = Target. Falls through otherwise.
	Br
	// Jmp: PC = Target, unconditionally.
	Jmp
	// IJmp: PC = Table[Src - Lo]; indirect jump through a jump table.
	IJmp
	// Arg: outgoing argument number Val is Src.
	Arg
	// Call: call function Sym; if Dst is present, Dst = returned value.
	Call
	// Ret: return from function; if Src is present it is the return value.
	Ret
	// Nop: no operation (delay-slot filler).
	Nop
)

var kindNames = [...]string{
	"move", "bin", "un", "cmp", "br", "jmp", "ijmp", "arg", "call", "ret", "nop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Inst is a single RTL.
type Inst struct {
	Kind   Kind
	BOp    BinOp
	UOp    UnOp
	BrRel  Rel     // Br: relation tested against the condition code
	Dst    Operand // Move/Bin/Un destination; Call result (optional)
	Src    Operand // first source; Ret value (optional); IJmp selector; Arg value
	Src2   Operand // Bin/Cmp second source
	Target Label   // Br/Jmp destination
	Sym    string  // Call: function or intrinsic name
	Table  []Label // IJmp: jump table entries for selector values Lo..Lo+len-1
	Lo     int64   // IJmp: selector value of the first table entry
	ArgIdx int     // Arg: argument position
	// Annul marks a branch whose delay slot executes only when the branch
	// is taken (the SPARC ",a" form); when the branch falls through, the
	// following instruction is fetched but squashed.
	Annul bool
}

// IsCTI reports whether the instruction is a control-transfer instruction
// that terminates a basic block. Calls return to the following instruction
// and do not terminate blocks.
func (in *Inst) IsCTI() bool {
	switch in.Kind {
	case Br, Jmp, IJmp, Ret:
		return true
	}
	return false
}

// HasSideEffects reports whether removing the instruction could change
// program behaviour beyond its Dst result: memory stores, calls, argument
// setup and control transfers are side effects.
func (in *Inst) HasSideEffects() bool {
	switch in.Kind {
	case Br, Jmp, IJmp, Ret, Call, Arg:
		return true
	case Move, Bin, Un:
		return in.Dst.IsMem()
	case Cmp:
		return true // sets the condition code; handled by dedicated passes
	}
	return false
}

// SrcOperands returns pointers to the operands the instruction reads.
func (in *Inst) SrcOperands() []*Operand {
	switch in.Kind {
	case Move, Un, Arg, IJmp:
		return []*Operand{&in.Src}
	case Bin, Cmp:
		return []*Operand{&in.Src, &in.Src2}
	case Ret:
		if in.Src.Kind != ONone {
			return []*Operand{&in.Src}
		}
	}
	return nil
}

// UsedRegs appends to dst every register the instruction reads (including
// memory base/index registers of the destination operand) and returns the
// result.
func (in *Inst) UsedRegs(dst []Reg) []Reg {
	for _, o := range in.SrcOperands() {
		switch o.Kind {
		case OReg:
			dst = append(dst, o.Reg)
		case OMem:
			dst = append(dst, o.Reg)
			if o.Index != RegNone {
				dst = append(dst, o.Index)
			}
		}
	}
	// A memory destination reads its base/index registers.
	if in.Dst.Kind == OMem {
		dst = append(dst, in.Dst.Reg)
		if in.Dst.Index != RegNone {
			dst = append(dst, in.Dst.Index)
		}
	}
	return dst
}

// DefReg returns the register the instruction writes, or RegNone.
func (in *Inst) DefReg() Reg {
	switch in.Kind {
	case Move, Bin, Un, Call:
		if in.Dst.Kind == OReg {
			return in.Dst.Reg
		}
	}
	return RegNone
}

// Clone returns a deep copy of the instruction (the jump table, if any, is
// copied too).
func (in *Inst) Clone() Inst {
	out := *in
	if in.Table != nil {
		out.Table = append([]Label(nil), in.Table...)
	}
	return out
}

// GlobalDef describes one global datum: Size cells of memory, optionally
// initialized (missing trailing initializers are zero).
type GlobalDef struct {
	Name string
	Size int64
	Init []int64
}
