package rtl

import (
	"fmt"
	"strings"
)

// String renders the operand in a compact VPO-like notation:
// registers as-is, #imm, L[fp+3] for locals, L[sym+1] for globals,
// M[r5+2+r6*4] for indirect memory, &fp+3 / &sym for addresses.
func (o Operand) String() string {
	switch o.Kind {
	case ONone:
		return "_"
	case OReg:
		return o.Reg.String()
	case OImm:
		return fmt.Sprintf("#%d", o.Val)
	case OLocal:
		return fmt.Sprintf("L[fp%+d]", o.Val)
	case OGlobal:
		if o.Val == 0 {
			return fmt.Sprintf("L[%s]", o.Sym)
		}
		return fmt.Sprintf("L[%s%+d]", o.Sym, o.Val)
	case OMem:
		var b strings.Builder
		fmt.Fprintf(&b, "M[%s", o.Reg)
		if o.Val != 0 {
			fmt.Fprintf(&b, "%+d", o.Val)
		}
		if o.Index != RegNone {
			fmt.Fprintf(&b, "+%s*%d", o.Index, o.Scale)
		}
		b.WriteString("]")
		return b.String()
	case OAddrLocal:
		return fmt.Sprintf("&fp%+d", o.Val)
	case OAddrGlobal:
		if o.Val == 0 {
			return "&" + o.Sym
		}
		return fmt.Sprintf("&%s%+d", o.Sym, o.Val)
	}
	return "?"
}

// String renders the instruction in a VPO-like one-line notation.
func (in *Inst) String() string {
	switch in.Kind {
	case Move:
		return fmt.Sprintf("%s = %s", in.Dst, in.Src)
	case Bin:
		return fmt.Sprintf("%s = %s %s %s", in.Dst, in.Src, in.BOp, in.Src2)
	case Un:
		return fmt.Sprintf("%s = %s%s", in.Dst, in.UOp, in.Src)
	case Cmp:
		return fmt.Sprintf("CC = %s ? %s", in.Src, in.Src2)
	case Br:
		if in.Annul {
			return fmt.Sprintf("PC = CC %s 0, %s (annul)", in.BrRel, in.Target)
		}
		return fmt.Sprintf("PC = CC %s 0, %s", in.BrRel, in.Target)
	case Jmp:
		return fmt.Sprintf("PC = %s", in.Target)
	case IJmp:
		parts := make([]string, len(in.Table))
		for i, l := range in.Table {
			parts[i] = l.String()
		}
		return fmt.Sprintf("PC = tbl[%s-%d]{%s}", in.Src, in.Lo, strings.Join(parts, ","))
	case Arg:
		return fmt.Sprintf("arg[%d] = %s", in.ArgIdx, in.Src)
	case Call:
		if in.Dst.Kind != ONone {
			return fmt.Sprintf("%s = call %s", in.Dst, in.Sym)
		}
		return fmt.Sprintf("call %s", in.Sym)
	case Ret:
		if in.Src.Kind != ONone {
			return fmt.Sprintf("PC = RT, rv=%s", in.Src)
		}
		return "PC = RT"
	case Nop:
		return "nop"
	}
	return fmt.Sprintf("?%s", in.Kind)
}
