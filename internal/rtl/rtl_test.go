package rtl

import (
	"testing"
	"testing/quick"
)

func TestRelNegateInvolution(t *testing.T) {
	f := func(r8 uint8, x, y int64) bool {
		r := Rel(r8 % 6)
		if r.Negate().Negate() != r {
			return false
		}
		// Negation flips the truth value on every input.
		return r.Holds(x, y) != r.Negate().Holds(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelSwap(t *testing.T) {
	f := func(r8 uint8, x, y int64) bool {
		r := Rel(r8 % 6)
		return r.Holds(x, y) == r.Swap().Holds(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinOpCommutative(t *testing.T) {
	f := func(op8 uint8, x, y int64) bool {
		op := BinOp(op8 % 10)
		if !op.Commutative() {
			return true
		}
		return op.Eval(x, y) == op.Eval(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinOpEvalMatchesGo(t *testing.T) {
	cases := []struct {
		op   BinOp
		x, y int64
		want int64
	}{
		{Add, 3, 4, 7},
		{Sub, 3, 4, -1},
		{Mul, -3, 4, -12},
		{Div, 7, 2, 3},
		{Div, -7, 2, -3}, // truncating division, like C
		{Mod, 7, 3, 1},
		{Mod, -7, 3, -1},
		{Div, 5, 0, 0}, // division by zero is total (traps to zero)
		{Mod, 5, 0, 0},
		{And, 0b1100, 0b1010, 0b1000},
		{Or, 0b1100, 0b1010, 0b1110},
		{Xor, 0b1100, 0b1010, 0b0110},
		{Shl, 1, 4, 16},
		{Shr, -16, 2, -4}, // arithmetic shift
	}
	for _, c := range cases {
		if got := c.op.Eval(c.x, c.y); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestUnOpEval(t *testing.T) {
	if Neg.Eval(5) != -5 || Neg.Eval(-5) != 5 {
		t.Error("Neg broken")
	}
	if Not.Eval(0) != -1 {
		t.Error("Not broken")
	}
}

func TestOperandEqual(t *testing.T) {
	cases := []struct {
		a, b  Operand
		equal bool
	}{
		{R(3), R(3), true},
		{R(3), R(4), false},
		{Imm(7), Imm(7), true},
		{Imm(7), Imm(8), false},
		{Imm(7), R(7), false},
		{Local(2), Local(2), true},
		{Local(2), Local(3), false},
		{Global("x", 1), Global("x", 1), true},
		{Global("x", 1), Global("y", 1), false},
		{Mem(3, 4), Mem(3, 4), true},
		{Mem(3, 4), Mem(3, 5), false},
		{MemIdx(3, 0, 4, 1), MemIdx(3, 0, 4, 1), true},
		{MemIdx(3, 0, 4, 1), Mem(3, 0), false},
		{AddrLocal(1), AddrLocal(1), true},
		{AddrLocal(1), Local(1), false},
		{None(), None(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.equal)
		}
		if c.a.Equal(c.b) != c.b.Equal(c.a) {
			t.Errorf("Equal not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestOperandUsesReg(t *testing.T) {
	if !R(5).UsesReg(5) || R(5).UsesReg(6) {
		t.Error("OReg UsesReg broken")
	}
	m := MemIdx(3, 0, 4, 1)
	if !m.UsesReg(3) || !m.UsesReg(4) || m.UsesReg(5) {
		t.Error("OMem UsesReg broken")
	}
	if Imm(3).UsesReg(3) {
		t.Error("Imm should not use registers")
	}
}

func TestInstUsedRegsAndDef(t *testing.T) {
	in := Inst{Kind: Bin, BOp: Add, Dst: R(1), Src: R(2), Src2: Mem(3, 0)}
	regs := in.UsedRegs(nil)
	want := map[Reg]bool{2: true, 3: true}
	for _, r := range regs {
		if !want[r] {
			t.Errorf("unexpected used reg %v", r)
		}
		delete(want, r)
	}
	if len(want) != 0 {
		t.Errorf("missing used regs: %v", want)
	}
	if in.DefReg() != 1 {
		t.Errorf("DefReg = %v, want r1", in.DefReg())
	}
	// Memory destination: base registers are reads, nothing is defined.
	st := Inst{Kind: Move, Dst: MemIdx(4, 0, 5, 1), Src: R(6)}
	if st.DefReg() != RegNone {
		t.Error("store should define no register")
	}
	regs = st.UsedRegs(nil)
	got := map[Reg]bool{}
	for _, r := range regs {
		got[r] = true
	}
	for _, r := range []Reg{4, 5, 6} {
		if !got[r] {
			t.Errorf("store should read r%d", r)
		}
	}
}

func TestInstClassification(t *testing.T) {
	cti := []Inst{
		{Kind: Br}, {Kind: Jmp}, {Kind: IJmp}, {Kind: Ret},
	}
	for _, in := range cti {
		if !in.IsCTI() {
			t.Errorf("%v should be a CTI", in.Kind)
		}
	}
	notCTI := []Inst{
		{Kind: Move}, {Kind: Bin}, {Kind: Call}, {Kind: Arg}, {Kind: Nop}, {Kind: Cmp},
	}
	for _, in := range notCTI {
		if in.IsCTI() {
			t.Errorf("%v should not be a CTI", in.Kind)
		}
	}
	if (&Inst{Kind: Move, Dst: R(1), Src: Imm(0)}).HasSideEffects() {
		t.Error("register move has no side effects")
	}
	if !(&Inst{Kind: Move, Dst: Local(0), Src: Imm(0)}).HasSideEffects() {
		t.Error("store has side effects")
	}
	if !(&Inst{Kind: Call, Sym: "f"}).HasSideEffects() {
		t.Error("call has side effects")
	}
}

func TestInstClone(t *testing.T) {
	in := Inst{Kind: IJmp, Src: R(1), Table: []Label{1, 2, 3}}
	c := in.Clone()
	c.Table[0] = 99
	if in.Table[0] != 1 {
		t.Error("Clone shares the jump table")
	}
}

func TestStrings(t *testing.T) {
	// String forms are load-bearing for the examples and for CSE keys.
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Kind: Move, Dst: R(VRegBase), Src: Imm(5)}, "v0 = #5"},
		{Inst{Kind: Bin, BOp: Add, Dst: R(3), Src: R(3), Src2: Imm(1)}, "r3 = r3 + #1"},
		{Inst{Kind: Cmp, Src: Local(2), Src2: Imm(0)}, "CC = L[fp+2] ? #0"},
		{Inst{Kind: Br, BrRel: Lt, Target: 7}, "PC = CC < 0, L7"},
		{Inst{Kind: Jmp, Target: 3}, "PC = L3"},
		{Inst{Kind: Ret, Src: None()}, "PC = RT"},
		{Inst{Kind: Nop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if FP.String() != "fp" || SP.String() != "sp" || RV.String() != "rv" {
		t.Error("dedicated register names broken")
	}
}

func TestVirtualRegs(t *testing.T) {
	if VRegBase.IsVirtual() != true || FP.IsVirtual() || Reg(100).IsVirtual() {
		t.Error("IsVirtual boundary broken")
	}
}
