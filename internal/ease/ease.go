// Package ease is the measurement environment of the reproduction, playing
// the role of the paper's EASE (Environment for Architectural Study and
// Experimentation): it compiles a program with a chosen machine and
// optimization level, executes it, and collects the static, dynamic and
// cache measurements behind Tables 4–6.
package ease

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/verify"
	"repro/internal/vm"
)

// Request describes one measurement cell: program × machine × level.
type Request struct {
	Name    string
	Source  string
	Input   []byte
	Machine *machine.Machine
	Level   pipeline.Level
	// Replication tunes JUMPS (zero value = paper defaults).
	Replication replicate.Options
	// SimulateCaches enables the Table-6 cache bank (slower).
	SimulateCaches bool
	// CacheSizes overrides the paper's {1,2,4,8} KB cache sizes (bytes);
	// used for the scaled small-cache study.
	CacheSizes []int64
	// OnFetch, when set, receives every instruction fetch (address, size)
	// — e.g. to dump a trace for offline cache studies. Composes with
	// SimulateCaches.
	OnFetch func(addr, size int64)
	// MaxSteps optionally bounds execution.
	MaxSteps int64
	// Tracer, when non-nil, receives the whole measurement's telemetry:
	// phase spans (compile, optimize, layout, run), per-pass spans, the
	// replication decision log, and the VM execution profile (per-block
	// counts plus a hot-path summary). Nil disables tracing.
	Tracer obs.Tracer
	// Profile enables per-block execution counting in the VM; implied by
	// Tracer. The counts are returned in Run.Profile.
	Profile bool
	// Validate runs the semantic IR verifier (internal/verify) after the
	// optimizer and before execution: structure (targets resolve, CTIs
	// terminate blocks, delay-slot shape), reachability, condition-code
	// pairing, delay-slot legality, register discipline, use-before-def,
	// and flow-graph reducibility. A violation aborts the measurement with
	// an error. The differential oracle sets this; interactive tools
	// usually do not pay for it.
	Validate bool
	// Jobs bounds per-function parallelism inside the optimizer
	// (pipeline.Config.Jobs): 0 = GOMAXPROCS, 1 = serial. Output is
	// identical for every value.
	Jobs int
	// VerifyEach additionally runs the verifier after every pipeline pass,
	// attributing the first violation to the pass that introduced it
	// (pipeline.Config.VerifyEach). Violations do not abort: they are
	// collected in Run.Static.Verify for the caller — cmd/ease turns them
	// into a non-zero exit, mccd into a structured response diagnostic.
	VerifyEach bool
	// TV runs the translation validator over the duplication engine
	// (pipeline.Config.TV): every applied replication, fold, rotation and
	// jump deletion must present a certificate that passes cut-point
	// bisimulation checking. Rejections land in Run.Static.Verify with
	// rule "translation-validation", attributed like VerifyEach findings.
	TV bool
}

// Run is the outcome of one measurement.
type Run struct {
	Request   Request
	Static    pipeline.Stats
	Dynamic   vm.Counts
	CodeBytes int64
	Output    []byte
	ExitCode  int64
	// Caches holds the Table-6 bank statistics (nil unless requested):
	// {1,2,4,8} KB × context switches {on, off} in cache.NewPaperBank
	// order.
	Caches []cache.Stats
	// Profile holds the VM's per-block execution counts (nil unless
	// Request.Profile or Request.Tracer was set).
	Profile *vm.Profile
	// Elapsed is the wall time of the whole measurement (compile through
	// run), for progress reporting.
	Elapsed time.Duration
	// InputRTLs is the program size entering the optimizer (RTL
	// instructions over all functions) and OptimizeElapsed the wall time
	// of the optimize phase alone: together they give the compile
	// throughput (RTLs/sec) that mccd exports as a histogram and
	// BENCH_baseline.json records per pipeline level.
	InputRTLs       int
	OptimizeElapsed time.Duration
}

// StaticJumpFraction is the static fraction of instructions that are
// unconditional jumps (Table 4, "static").
func (r *Run) StaticJumpFraction() float64 {
	if r.Static.StaticInsts == 0 {
		return 0
	}
	return float64(r.Static.StaticJumps) / float64(r.Static.StaticInsts)
}

// DynamicJumpFraction is the executed fraction of instructions that are
// unconditional jumps (Table 4, "dynamic").
func (r *Run) DynamicJumpFraction() float64 {
	if r.Dynamic.Exec == 0 {
		return 0
	}
	return float64(r.Dynamic.UncondJumps) / float64(r.Dynamic.Exec)
}

// InstsBetweenBranches is the dynamic average number of instructions
// executed per control transfer (§5.2's instructions-between-branches).
func (r *Run) InstsBetweenBranches() float64 {
	if r.Dynamic.Transfers == 0 {
		return float64(r.Dynamic.Exec)
	}
	return float64(r.Dynamic.Exec) / float64(r.Dynamic.Transfers)
}

// phaseSpan emits one obs.EvPhase span when tracing is enabled.
func phaseSpan(tr obs.Tracer, name string, start time.Time) {
	if tr == nil {
		return
	}
	tr.Emit(&obs.Event{
		Type: obs.EvPhase, Name: name,
		// det:allow nodeterminism — span duration is telemetry, not compiler output.
		TimeNS: start.UnixNano(), DurNS: int64(time.Since(start)),
	})
}

// Measure compiles, optimizes, lays out, and runs one request.
func Measure(req Request) (*Run, error) {
	start := time.Now() // det:allow nodeterminism — phase/elapsed telemetry
	prog, err := mcc.Compile(req.Source)
	phaseSpan(req.Tracer, "compile", start)
	if err != nil {
		return nil, fmt.Errorf("ease: %s: %w", req.Name, err)
	}
	run, err := MeasureProgram(prog, req)
	if run != nil {
		run.Elapsed = time.Since(start) // det:allow nodeterminism — phase/elapsed telemetry
	}
	return run, err
}

// MeasureProgram measures an already-compiled (but unoptimized) program.
func MeasureProgram(prog *cfg.Program, req Request) (*Run, error) {
	start := time.Now() // det:allow nodeterminism — phase/elapsed telemetry
	inputRTLs := 0
	for _, f := range prog.Funcs {
		inputRTLs += f.NumRTLs()
	}
	st := pipeline.Optimize(prog, pipeline.Config{
		Machine:     req.Machine,
		Level:       req.Level,
		Replication: req.Replication,
		Tracer:      req.Tracer,
		VerifyEach:  req.VerifyEach,
		TV:          req.TV,
		Jobs:        req.Jobs,
	})
	optimizeElapsed := time.Since(start) // det:allow nodeterminism — phase/elapsed telemetry
	phaseSpan(req.Tracer, "optimize", start)
	if req.Validate {
		// One diagnostic format for structural and semantic checks: the
		// verifier's first rule wraps cfg.ValidateProgram, the rest add the
		// semantic invariants (see internal/verify).
		vs := verify.Program(prog, verify.Options{
			DelaySlots:   req.Machine.DelaySlots,
			PostRegalloc: true,
		})
		if err := verify.Error(vs); err != nil {
			return nil, fmt.Errorf("ease: %s (%s/%s): post-pipeline verification: %w",
				req.Name, req.Machine.Name, req.Level, err)
		}
	}
	layoutStart := time.Now() // det:allow nodeterminism — phase/elapsed telemetry
	layout := vm.NewLayout(prog, req.Machine)
	phaseSpan(req.Tracer, "layout", layoutStart)
	cfgr := vm.Config{
		Input: req.Input, MaxSteps: req.MaxSteps,
		Profile: req.Profile || req.Tracer != nil,
	}
	var bank *cache.Bank
	var fetch func(addr, size int64)
	if req.SimulateCaches {
		if req.CacheSizes != nil {
			bank = cache.NewBank(req.CacheSizes)
		} else {
			bank = cache.NewPaperBank()
		}
		fetch = bank.Fetch
	}
	if req.OnFetch != nil {
		if fetch == nil {
			fetch = req.OnFetch
		} else {
			prev := fetch
			user := req.OnFetch
			fetch = func(addr, size int64) {
				prev(addr, size)
				user(addr, size)
			}
		}
	}
	if fetch != nil {
		cfgr.Layout = layout
		cfgr.OnFetch = fetch
	}
	runStart := time.Now() // det:allow nodeterminism — phase/elapsed telemetry
	res, err := vm.Run(prog, cfgr)
	phaseSpan(req.Tracer, "run", runStart)
	if err != nil {
		return nil, fmt.Errorf("ease: %s (%s/%s): %w", req.Name, req.Machine.Name, req.Level, err)
	}
	run := &Run{
		Request:         req,
		Static:          st,
		Dynamic:         res.Counts,
		CodeBytes:       layout.CodeBytes,
		Output:          res.Output,
		ExitCode:        res.ExitCode,
		Profile:         res.Profile,
		Elapsed:         time.Since(start), // det:allow nodeterminism — phase/elapsed telemetry
		InputRTLs:       inputRTLs,
		OptimizeElapsed: optimizeElapsed,
	}
	if bank != nil {
		run.Caches = bank.Stats()
	}
	emitProfile(req.Tracer, res.Profile)
	return run, nil
}

// hotSummaryBlocks is the size of the EvHot hot-path summary.
const hotSummaryBlocks = 10

// emitProfile reports the VM execution profile to the tracer: one EvBlock
// event per executed block and an EvHot summary of the hottest blocks.
func emitProfile(tr obs.Tracer, prof *vm.Profile) {
	if tr == nil || prof == nil {
		return
	}
	for _, fp := range prof.Funcs {
		for _, b := range fp.Blocks {
			if b.Count == 0 {
				continue
			}
			tr.Emit(&obs.Event{
				Type: obs.EvBlock, Func: fp.Name, Block: b.Label,
				Count: b.Count, Insts: b.Count * int64(b.Insts),
			})
		}
	}
	for _, h := range prof.Hot(hotSummaryBlocks) {
		tr.Emit(&obs.Event{
			Type: obs.EvHot, Func: h.Func, Block: h.Label,
			Count: h.Count, Insts: h.ExecInsts, Percent: 100 * h.Frac,
		})
	}
}

// PercentChange returns 100*(new-old)/old (0 when old is 0).
func PercentChange(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}
