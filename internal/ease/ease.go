// Package ease is the measurement environment of the reproduction, playing
// the role of the paper's EASE (Environment for Architectural Study and
// Experimentation): it compiles a program with a chosen machine and
// optimization level, executes it, and collects the static, dynamic and
// cache measurements behind Tables 4–6.
package ease

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/vm"
)

// Request describes one measurement cell: program × machine × level.
type Request struct {
	Name    string
	Source  string
	Input   []byte
	Machine *machine.Machine
	Level   pipeline.Level
	// Replication tunes JUMPS (zero value = paper defaults).
	Replication replicate.Options
	// SimulateCaches enables the Table-6 cache bank (slower).
	SimulateCaches bool
	// CacheSizes overrides the paper's {1,2,4,8} KB cache sizes (bytes);
	// used for the scaled small-cache study.
	CacheSizes []int64
	// OnFetch, when set, receives every instruction fetch (address, size)
	// — e.g. to dump a trace for offline cache studies. Composes with
	// SimulateCaches.
	OnFetch func(addr, size int64)
	// MaxSteps optionally bounds execution.
	MaxSteps int64
}

// Run is the outcome of one measurement.
type Run struct {
	Request   Request
	Static    pipeline.Stats
	Dynamic   vm.Counts
	CodeBytes int64
	Output    []byte
	ExitCode  int64
	// Caches holds the Table-6 bank statistics (nil unless requested):
	// {1,2,4,8} KB × context switches {on, off} in cache.NewPaperBank
	// order.
	Caches []cache.Stats
}

// StaticJumpFraction is the static fraction of instructions that are
// unconditional jumps (Table 4, "static").
func (r *Run) StaticJumpFraction() float64 {
	if r.Static.StaticInsts == 0 {
		return 0
	}
	return float64(r.Static.StaticJumps) / float64(r.Static.StaticInsts)
}

// DynamicJumpFraction is the executed fraction of instructions that are
// unconditional jumps (Table 4, "dynamic").
func (r *Run) DynamicJumpFraction() float64 {
	if r.Dynamic.Exec == 0 {
		return 0
	}
	return float64(r.Dynamic.UncondJumps) / float64(r.Dynamic.Exec)
}

// InstsBetweenBranches is the dynamic average number of instructions
// executed per control transfer (§5.2's instructions-between-branches).
func (r *Run) InstsBetweenBranches() float64 {
	if r.Dynamic.Transfers == 0 {
		return float64(r.Dynamic.Exec)
	}
	return float64(r.Dynamic.Exec) / float64(r.Dynamic.Transfers)
}

// Measure compiles, optimizes, lays out, and runs one request.
func Measure(req Request) (*Run, error) {
	prog, err := mcc.Compile(req.Source)
	if err != nil {
		return nil, fmt.Errorf("ease: %s: %w", req.Name, err)
	}
	return MeasureProgram(prog, req)
}

// MeasureProgram measures an already-compiled (but unoptimized) program.
func MeasureProgram(prog *cfg.Program, req Request) (*Run, error) {
	st := pipeline.Optimize(prog, pipeline.Config{
		Machine:     req.Machine,
		Level:       req.Level,
		Replication: req.Replication,
	})
	layout := vm.NewLayout(prog, req.Machine)
	cfgr := vm.Config{Input: req.Input, MaxSteps: req.MaxSteps}
	var bank *cache.Bank
	var fetch func(addr, size int64)
	if req.SimulateCaches {
		if req.CacheSizes != nil {
			bank = cache.NewBank(req.CacheSizes)
		} else {
			bank = cache.NewPaperBank()
		}
		fetch = bank.Fetch
	}
	if req.OnFetch != nil {
		if fetch == nil {
			fetch = req.OnFetch
		} else {
			prev := fetch
			user := req.OnFetch
			fetch = func(addr, size int64) {
				prev(addr, size)
				user(addr, size)
			}
		}
	}
	if fetch != nil {
		cfgr.Layout = layout
		cfgr.OnFetch = fetch
	}
	res, err := vm.Run(prog, cfgr)
	if err != nil {
		return nil, fmt.Errorf("ease: %s (%s/%s): %w", req.Name, req.Machine.Name, req.Level, err)
	}
	run := &Run{
		Request:   req,
		Static:    st,
		Dynamic:   res.Counts,
		CodeBytes: layout.CodeBytes,
		Output:    res.Output,
		ExitCode:  res.ExitCode,
	}
	if bank != nil {
		run.Caches = bank.Stats()
	}
	return run, nil
}

// PercentChange returns 100*(new-old)/old (0 when old is 0).
func PercentChange(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * float64(new-old) / float64(old)
}
