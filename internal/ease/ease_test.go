package ease_test

import (
	"strings"
	"testing"

	"repro/internal/difftest"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

const src = `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 200; i++)
		s += i % 3;
	printint(s);
	return 0;
}`

func TestMeasureBasics(t *testing.T) {
	run, err := ease.Measure(ease.Request{
		Name: "t", Source: src, Machine: machine.SPARC, Level: pipeline.Jumps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(run.Output) != "199" {
		t.Errorf("output = %q", run.Output)
	}
	if run.Dynamic.Exec == 0 || run.Static.StaticInsts == 0 || run.CodeBytes == 0 {
		t.Errorf("missing measurements: %+v", run)
	}
	if run.Caches != nil {
		t.Error("caches simulated without being requested")
	}
	if f := run.DynamicJumpFraction(); f < 0 || f > 1 {
		t.Errorf("jump fraction %f out of range", f)
	}
	if run.InstsBetweenBranches() <= 0 {
		t.Error("instructions between branches not positive")
	}
}

func TestMeasureWithCaches(t *testing.T) {
	run, err := ease.Measure(ease.Request{
		Name: "t", Source: src, Machine: machine.M68020, Level: pipeline.Simple,
		SimulateCaches: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Caches) != 8 {
		t.Fatalf("got %d cache configs, want 8", len(run.Caches))
	}
	// Every instruction executed produces at least one fetch.
	for i, cs := range run.Caches {
		if cs.Fetches < run.Dynamic.Exec {
			t.Errorf("cache %d: %d fetches < %d executed", i, cs.Fetches, run.Dynamic.Exec)
		}
	}
}

func TestMeasureCustomCacheSizes(t *testing.T) {
	run, err := ease.Measure(ease.Request{
		Name: "t", Source: src, Machine: machine.SPARC, Level: pipeline.Simple,
		SimulateCaches: true, CacheSizes: []int64{128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Caches) != 2 || run.Caches[0].SizeBytes != 128 {
		t.Errorf("custom sizes not honoured: %+v", run.Caches)
	}
}

func TestMeasureCompileError(t *testing.T) {
	if _, err := ease.Measure(ease.Request{
		Name: "bad", Source: "int main( {", Machine: machine.SPARC,
	}); err == nil {
		t.Error("expected a compile error")
	}
}

func TestJumpFractionsOrdered(t *testing.T) {
	// The headline property on a single program: SIMPLE >= LOOPS >= JUMPS.
	var fr [3]float64
	for i, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
		run, err := ease.Measure(ease.Request{
			Name: "t", Source: src, Machine: machine.M68020, Level: lv,
		})
		if err != nil {
			t.Fatal(err)
		}
		fr[i] = run.DynamicJumpFraction()
	}
	if !(fr[0] >= fr[1] && fr[1] >= fr[2]) {
		t.Errorf("jump fractions not ordered: %v", fr)
	}
	if fr[2] != 0 {
		t.Errorf("JUMPS should remove every jump here, got %f", fr[2])
	}
}

func TestPercentChange(t *testing.T) {
	if ease.PercentChange(100, 110) != 10 {
		t.Error("+10% broken")
	}
	if ease.PercentChange(200, 100) != -50 {
		t.Error("-50% broken")
	}
	if ease.PercentChange(0, 5) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestMeasureValidate(t *testing.T) {
	// A goto-heavy program the replicator actually rewrites.
	loopy := difftest.GenerateWith(9, difftest.GenOptions{NoInput: true})

	// Validation on clean pipelines is silent.
	if _, err := ease.Measure(ease.Request{
		Name: "v", Source: loopy, Machine: machine.M68020, Level: pipeline.Jumps,
		Validate: true,
	}); err != nil {
		t.Fatalf("Validate rejected a clean measurement: %v", err)
	}

	// With the reducibility rollback broken, Validate must abort the
	// measurement instead of reporting numbers for a malformed program.
	_, err := ease.Measure(ease.Request{
		Name: "v", Source: loopy, Machine: machine.M68020, Level: pipeline.Jumps,
		Replication: replicate.Options{ForceKeepIrreducible: true},
		Validate:    true,
	})
	if err == nil || !strings.Contains(err.Error(), "irreducible") {
		t.Fatalf("Validate missed the irreducible graph: %v", err)
	}
}
