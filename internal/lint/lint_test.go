package lint_test

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/lint"
)

// want is one expectation seeded in a fixture with a `// want "regexp"`
// comment: a diagnostic matching the pattern must appear on that line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// collectWants scans a loaded package's comments for want expectations.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.End())
					wants = append(wants, &want{
						file: pos.Filename, line: pos.Line, pattern: re,
					})
				}
			}
		}
	}
	return wants
}

// TestFixtures runs the full analyzer suite over the seeded fixture
// packages and checks the diagnostics against the want comments: every
// finding must be expected, every expectation must be found.
func TestFixtures(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fixture := range []string{"maporder", "nodeterminism", "printdet"} {
		t.Run(fixture, func(t *testing.T) {
			pkg, err := loader.Load(filepath.Join("testdata", fixture))
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, pkg)
			if len(wants) == 0 {
				t.Fatal("fixture has no want comments; the test would pass vacuously")
			}
			diags := lint.Run(pkg, lint.Analyzers)
			for _, d := range diags {
				ok := false
				for _, w := range wants {
					if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none",
						w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// TestRepoClean is the in-tree mirror of the mcclint CI gate: every
// internal package must produce zero findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole internal tree through the source importer; skipped with -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := lint.DeterministicDirs(loader.Root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range lint.Run(pkg, lint.Analyzers) {
			t.Errorf("%s", d)
		}
	}
}

// TestDiagnosticString pins the editor-friendly rendering.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "maporder",
		Message:  "boom",
	}
	if got, wantS := d.String(), "x.go:3:7: boom (maporder)"; got != wantS {
		t.Fatalf("String() = %q, want %q", got, wantS)
	}
}

// TestAnalyzerCatalog keeps the suite stable and the policy genuinely
// repo-wide: adding an analyzer should be a conscious act that updates
// this test alongside the docs, and the discovered policy scope must
// cover (at least) the optimizer core and the translation validator.
func TestAnalyzerCatalog(t *testing.T) {
	var names []string
	for _, a := range lint.Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run function", a)
		}
		names = append(names, a.Name)
	}
	if got, wantS := fmt.Sprint(names), "[maporder nodeterminism printdet]"; got != wantS {
		t.Errorf("analyzer names = %s, want %s", got, wantS)
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := lint.DeterministicDirs(loader.Root)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, d := range dirs {
		covered[filepath.Base(d)] = true
	}
	for _, pkg := range []string{"cfg", "opt", "pipeline", "replicate", "tv", "service", "difftest"} {
		if !covered[pkg] {
			t.Errorf("policy scope misses internal/%s; got %v", pkg, dirs)
		}
	}
}
