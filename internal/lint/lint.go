// Package lint is a small, dependency-free static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis, carrying the repository's
// own analyzers. The optimizer must be a pure function of its inputs —
// the differential oracle, the result cache of mccd, and the golden trace
// tests all assume that compiling the same program twice yields the same
// bytes — so the analyzers police the two ways Go code silently breaks
// that property: map iteration order escaping into output (maporder) and
// wall-clock or random inputs (nodeterminism).
//
// A finding can be suppressed with a comment on the same or the
// preceding line:
//
//	start := time.Now() // det:allow nodeterminism — telemetry only
//
// The suppression names the analyzer and should state a reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// det:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the package via pass and reports findings with
	// pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers is the repository's analyzer suite, in reporting order.
var Analyzers = []*Analyzer{MapOrder, NoDeterminism, PrintDet}

// DeterministicDirs returns the directory of every package under
// internal/ — the determinism policy's scope. The gate started on the
// four optimizer-core packages and is now the whole internal tree: the
// validator, oracle, service, and observability layers all feed persisted
// or cached output, so they carry the same purity obligation (with
// det:allow escapes where wall time or seeded randomness is the point).
func DeterministicDirs(root string) ([]string, error) {
	return PackageDirs(filepath.Join(root, "internal"))
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to pkg and returns the diagnostics that
// survive det:allow suppression, in position order.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	sup := collectSuppressions(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		p := &Pass{
			Analyzer: a, Fset: pkg.Fset, Files: pkg.Files,
			Pkg: pkg.Types, TypesInfo: pkg.Info,
		}
		a.Run(p)
		for _, d := range p.diags {
			if !sup.allows(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressionSet records, per analyzer, the file:line positions carrying
// a det:allow comment.
type suppressionSet map[string]bool

func suppressionKey(analyzer, file string, line int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", analyzer, file, line)
}

// allows reports whether a det:allow comment for the analyzer sits on the
// diagnostic's line or the line above it.
func (s suppressionSet) allows(analyzer string, pos token.Position) bool {
	return s[suppressionKey(analyzer, pos.Filename, pos.Line)] ||
		s[suppressionKey(analyzer, pos.Filename, pos.Line-1)]
}

const suppressionMarker = "det:allow "

func collectSuppressions(pkg *Package) suppressionSet {
	sup := suppressionSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, suppressionMarker)
				if i < 0 {
					continue
				}
				rest := strings.TrimSpace(text[i+len(suppressionMarker):])
				name := rest
				if j := strings.IndexFunc(rest, func(r rune) bool {
					return r == ' ' || r == '\t'
				}); j >= 0 {
					name = rest[:j]
				}
				// Anchor the suppression at the end of the whole comment
				// group, so a multi-line explanation above the finding
				// still covers it.
				p := pkg.Fset.Position(cg.End())
				sup[suppressionKey(name, p.Filename, p.Line)] = true
			}
		}
	}
	return sup
}
