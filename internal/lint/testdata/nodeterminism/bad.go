// Package nodeterminism holds seeded findings for the nodeterminism
// analyzer.
package nodeterminism

import (
	"math/rand"
	"time"

	mrand "math/rand/v2"
)

// stamp reads the wall clock three different ways.
func stamp() (int64, time.Duration, time.Duration) {
	now := time.Now()                     // want "wall-clock read time.Now in a deterministic package"
	d := time.Since(now)                  // want "wall-clock read time.Since in a deterministic package"
	u := time.Until(now.Add(time.Second)) // want "wall-clock read time.Until in a deterministic package"
	return now.UnixNano(), d, u
}

// roll draws randomness from both math/rand generations.
func roll() int {
	a := rand.Intn(6)  // want "use of rand.Intn: randomness in a deterministic package"
	b := mrand.IntN(6) // want "use of mrand.IntN: randomness in a deterministic package"
	return a + b
}
