package nodeterminism

import "time"

// durations uses package time for arithmetic only: constructing and
// formatting durations never reads the clock.
func durations(ns int64) string {
	d := time.Duration(ns) * time.Nanosecond
	return d.String()
}

// shadowed declares a local named time; selecting from it is not a
// package reference.
func shadowed() int {
	time := struct{ Now int }{Now: 42}
	return time.Now
}

// allowed reads the clock for telemetry and says so.
func allowed() int64 {
	start := time.Now() // det:allow nodeterminism — telemetry timestamp only
	return start.UnixNano()
}

// multiline shows a suppression inside a longer comment group: the
// directive covers the line after the whole group.
func multiline() int64 {
	// det:allow nodeterminism — timestamp for a debug artifact;
	// the value never reaches compiler output.
	t := time.Now()
	return t.UnixNano()
}
