package printdet

import (
	"fmt"
	"sort"
	"strings"
)

// scalars: %v on non-map values renders deterministically.
func scalars(n int, s string, xs []int) string {
	return fmt.Sprintf("%v %v %v %d %%", n, s, xs, n)
}

// sorted canonicalizes a map before formatting — the deterministic way.
func sorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// shadowed declares a local named fmt; its methods are not package calls.
func shadowed() string {
	fmt := struct{ Sprintf func(string, ...any) string }{
		Sprintf: func(string, ...any) string { return "" },
	}
	return fmt.Sprintf("%p", nil)
}

// allowed formats a map for an ephemeral debug line and says so.
func allowed(m map[string]int) {
	fmt.Printf("debug: %v\n", m) // det:allow printdet — interactive debug output, never persisted
}

// dynamic format strings are out of scope: the analyzer only reads
// literals.
func dynamic(f string, m map[string]int) string {
	return fmt.Sprintf(f, m)
}
