// Package printdet holds seeded findings for the printdet analyzer.
package printdet

import (
	"fmt"
	"os"

	format "fmt"
)

// addresses leaks pointer values into formatted output.
func addresses(p *int) string {
	return fmt.Sprintf("at %p", p) // want "%p formats an address: nondeterministic across runs"
}

// mapValues formats maps with the default verb in several printf-family
// functions; each renders entries in iteration order.
func mapValues(m map[string]int) error {
	fmt.Printf("state: %v\n", m)          // want "map formatted with %v: iteration order is nondeterministic"
	fmt.Fprintf(os.Stdout, "got %+v", m)  // want "map formatted with %v: iteration order is nondeterministic"
	_ = format.Sprintf("%#v", m)          // want "map formatted with %v: iteration order is nondeterministic"
	return fmt.Errorf("bad state: %v", m) // want "map formatted with %v: iteration order is nondeterministic"
}

// starWidth exercises operand pairing: the '*' consumes one operand, so
// the %v that follows still lines up with the map argument.
func starWidth(w int, m map[int]bool) string {
	return fmt.Sprintf("%*d %v", w, 7, m) // want "map formatted with %v: iteration order is nondeterministic"
}

// pointerToMap is just as order-dependent once dereferenced by fmt.
func pointerToMap(m *map[string]int) string {
	return fmt.Sprintf("%v", m) // want "map formatted with %v: iteration order is nondeterministic"
}
