package maporder

import "sort"

// collectThenSort is the canonical fix: gather in any order, then sort.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// argminWithTieBreak orders equal scores by the key itself, so the result
// is a pure function of the map contents.
func argminWithTieBreak(score map[int]float64) int {
	best, bestScore := -1, 0.0
	for k, s := range score {
		if best == -1 || s < bestScore || (s == bestScore && k < best) {
			best, bestScore = k, s
		}
	}
	return best
}

// invert writes into another map: unordered into unordered.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[k2(v)] = k
	}
	return out
}

func k2(v int) int { return v }

// accumulate uses only commutative updates: sum, count, delete.
func accumulate(m map[int]int, drop map[int]bool) int {
	total := 0
	for k, v := range m {
		total += v
		drop[k] = true
		delete(drop, k-1)
	}
	return total
}

// markConst writes a constant through an index: whatever the visit order,
// the final slice is identical.
func markConst(m map[int]string, used []bool) {
	for c := range m {
		used[c] = true
	}
}

type record struct {
	key  int
	step int
}

// loopLocalField writes a field of a struct declared inside the loop; the
// struct dies with the iteration, so nothing escapes.
func loopLocalField(m map[int]int) []record {
	var recs []record
	for k, v := range m {
		r := record{key: k}
		r.step = v
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	return recs
}

type intSet map[int]bool

func (s intSet) add(v int) { s[v] = true }

// setInsert calls a method on a map receiver: moving data between
// unordered structures is order-free.
func setInsert(m map[int]int, s intSet) {
	for k := range m {
		s.add(k)
	}
}

// suppressed demonstrates det:allow: the finding on the next line is
// acknowledged and silenced with a reason.
func suppressed(m map[int]int, sink func(int)) {
	for k := range m {
		// det:allow maporder — sink is a test spy that records a set.
		sink(k)
	}
}
