// Package maporder holds seeded findings for the maporder analyzer.
// Every `want` comment names a diagnostic the fixture test demands on
// that line.
package maporder

// spillVictim mirrors the register-allocator bug class that motivated the
// analyzer: an argmax over a map with no tie-break on the key, so two
// equally-scored candidates are picked in map order.
func spillVictim(cost map[int]float64) int {
	best := -1
	var bestCost float64
	for r, c := range cost {
		if c > bestCost {
			bestCost = c // want "assignment of map-order-dependent value to bestCost escapes the map range"
			best = r     // want "assignment of map-order-dependent value to best escapes the map range"
		}
	}
	return best
}

// collectUnsorted appends map keys and never sorts them, so the slice
// order differs run to run.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append of map-order-dependent data to keys without a later sort"
	}
	return keys
}

// firstKey returns whichever key the runtime happens to visit first.
func firstKey(m map[string]bool) string {
	for k := range m {
		return k // want "return of map-order-dependent value from inside a map range"
	}
	return ""
}

// leakThroughCall hands a map key to an outside function whose behavior
// the analyzer cannot see.
func leakThroughCall(m map[int]int, sink func(int)) {
	for k := range m {
		sink(k) // want "call passes map-order-dependent data out of the map range"
	}
}

// bakeOrderIntoSlice writes a value derived from the visit order into a
// slice cell.
func bakeOrderIntoSlice(m map[int]string, out []string) {
	i := 0
	for _, v := range m {
		out[i] = v // want "indexed write of map-order-dependent data escapes the map range"
		i++
	}
}

// chainedTaint launders a value through a local before letting it escape;
// the two-round taint propagation still catches it.
func chainedTaint(m map[int]int) int {
	total := 0
	for _, v := range m {
		double := v * 2
		tmp := double
		total = tmp // want "assignment of map-order-dependent value to total escapes the map range"
	}
	return total
}
