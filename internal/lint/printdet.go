package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// PrintDet flags formatting that is nondeterministic across runs when it
// escapes into persisted output: %p renders an address (different every
// execution), and %v / %+v / %#v on a map renders entries in iteration
// order. Both break the byte-for-byte reproducibility the result cache
// and golden traces rely on. Debug-only formatting may suppress a finding
// with `det:allow printdet — <reason>`.
var PrintDet = &Analyzer{
	Name: "printdet",
	Doc: "forbid %p and %v-on-a-map in fmt format strings: addresses and " +
		"map iteration order make persisted output nondeterministic",
	Run: runPrintDet,
}

// printfFuncs maps each fmt printf-family function to the index of its
// format-string argument.
var printfFuncs = map[string]int{
	"Printf":  0,
	"Sprintf": 0,
	"Fprintf": 1,
	"Errorf":  0,
	"Appendf": 1,
}

func runPrintDet(pass *Pass) {
	for _, file := range pass.Files {
		fmtNames := fmtImportNames(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !fmtNames[id.Name] {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			fmtIdx, ok := printfFuncs[sel.Sel.Name]
			if !ok || len(call.Args) <= fmtIdx {
				return true
			}
			lit, ok := call.Args[fmtIdx].(*ast.BasicLit)
			if !ok {
				return true // dynamic format string: out of scope
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checkFormat(pass, call, format, call.Args[fmtIdx+1:])
			return true
		})
	}
}

// checkFormat walks the verbs of format, pairing each with its operand,
// and reports the nondeterministic combinations.
func checkFormat(pass *Pass, call *ast.CallExpr, format string, args []ast.Expr) {
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, and precision; '*' consumes an operand.
		for i < len(format) {
			c := format[i]
			if c == '%' { // %% is a literal percent
				break
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verb := format[i]
		switch verb {
		case 'p':
			pass.Reportf(call.Pos(),
				"%%p formats an address: nondeterministic across runs")
		case 'v':
			if arg < len(args) && isMapType(pass.TypesInfo.TypeOf(args[arg])) {
				pass.Reportf(call.Pos(),
					"map formatted with %%v: iteration order is nondeterministic")
			}
		}
		arg++
	}
}

// isMapType reports whether t (or what it points to) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	_, ok := u.(*types.Map)
	return ok
}

// fmtImportNames returns the local names under which file imports fmt.
func fmtImportNames(file *ast.File) map[string]bool {
	names := map[string]bool{}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "fmt" {
			continue
		}
		name := "fmt"
		if imp.Name != nil {
			name = imp.Name.Name
		}
		names[name] = true
	}
	return names
}
