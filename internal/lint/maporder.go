package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for … range m` statements over maps whose iteration
// order escapes the loop: the compiler's output must not depend on Go's
// randomized map order. The analyzer understands the package's
// canonicalization idioms and stays quiet for:
//
//   - writes into maps or sets keyed by the range variables (building
//     another unordered structure is order-free);
//   - delete calls, compound assignments and ++/-- (commutative
//     accumulation);
//   - appends that are later passed to a sort.*/slices.* call in the same
//     file (the collect-then-sort idiom);
//   - assignments guarded by a condition that order-compares the range
//     key itself (the deterministic argmin/argmax tie-break idiom, e.g.
//     `score < best || score == best && k < bestKey`);
//   - method calls whose receiver is itself a map (set.add(k) et al.).
//
// Everything else that moves key- or value-derived data out of the loop —
// a bare append, an unguarded assignment to an outer variable, a return,
// a call with derived arguments — is reported.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "report map iterations whose order escapes without canonicalization " +
		"(sorting, set insertion, or a key-ordered tie-break)",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		sorted := sortedObjects(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[rs.X]; !ok || !isMap(tv.Type) {
				return true
			}
			checkMapRange(pass, rs, sorted)
			return true
		})
	}
}

// sortedObjects collects every object that appears as an argument to a
// sort.* or slices.* call anywhere in the file: an append target in this
// set is canonicalized before use.
func sortedObjects(pass *Pass, file *ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange analyzes one map-range statement.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) {
	info := pass.TypesInfo
	keyObj := identObject(info, rs.Key)
	valObj := identObject(info, rs.Value)

	// Taint: the range variables plus every local assigned from them
	// inside the body. Two propagation rounds cover chained locals.
	tainted := map[types.Object]bool{}
	if keyObj != nil {
		tainted[keyObj] = true
	}
	if valObj != nil {
		tainted[valObj] = true
	}
	for round := 0; round < 2; round++ {
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := rhsFor(as, i)
				if rhs != nil && exprTainted(info, rhs, tainted) {
					if obj := identObject(info, lhs); obj != nil {
						tainted[obj] = true
					}
				}
			}
			return true
		})
	}

	c := &mapRangeChecker{
		pass: pass, rs: rs,
		keyObj: keyObj, tainted: tainted, sorted: sorted,
	}
	c.stmt(rs.Body, nil)
}

type mapRangeChecker struct {
	pass    *Pass
	rs      *ast.RangeStmt
	keyObj  types.Object
	tainted map[types.Object]bool
	sorted  map[types.Object]bool
}

// stmt walks one statement carrying the stack of enclosing if/switch
// conditions (the guards) inside the loop body.
func (c *mapRangeChecker) stmt(s ast.Stmt, guards []ast.Expr) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			c.stmt(sub, guards)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, guards)
		}
		inner := append(guards[:len(guards):len(guards)], s.Cond)
		c.stmt(s.Body, inner)
		if s.Else != nil {
			c.stmt(s.Else, inner)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, guards)
		}
		if s.Post != nil {
			c.stmt(s.Post, guards)
		}
		c.stmt(s.Body, guards)
	case *ast.RangeStmt:
		c.stmt(s.Body, guards)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, guards)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			inner := append(guards[:len(guards):len(guards)], cl.List...)
			for _, sub := range cl.Body {
				c.stmt(sub, inner)
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, guards)
	case *ast.AssignStmt:
		c.assign(s, guards)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.isTainted(r) {
				c.report(s.Pos(), "return of map-order-dependent value from inside a map range")
				return
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			c.call(call)
		}
	case *ast.DeferStmt:
		c.call(s.Call)
	case *ast.GoStmt:
		c.call(s.Call)
	}
	// IncDecStmt, DeclStmt, Branch/Empty: order-free or handled by taint.
}

// assign classifies one assignment inside the loop body.
func (c *mapRangeChecker) assign(as *ast.AssignStmt, guards []ast.Expr) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return // compound assignment: commutative accumulation
	}
	for i, lhs := range as.Lhs {
		rhs := rhsFor(as, i)
		if as.Tok == token.DEFINE {
			continue // new local: not an escape, tracked by taint
		}
		if call, ok := rhs.(*ast.CallExpr); ok && isAppend(call) {
			taintedArg := false
			for _, a := range call.Args[1:] {
				if c.isTainted(a) {
					taintedArg = true
				}
			}
			if !taintedArg {
				continue // appending order-free values: count, not order
			}
			obj := identObject(c.pass.TypesInfo, lhs)
			if obj != nil && (c.declaredInside(obj) || c.sorted[obj]) {
				continue // loop-local, or canonicalized by a later sort
			}
			c.report(as.Pos(),
				"append of map-order-dependent data to %s without a later sort", exprString(lhs))
			continue
		}
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			if tv, ok := c.pass.TypesInfo.Types[l.X]; ok && isMap(tv.Type) {
				continue // write into a map/set: unordered into unordered
			}
			// Slice/array write: a constant value lands identically
			// whatever the order; a derived value bakes the order in.
			if rhs != nil && c.isConst(rhs) {
				continue
			}
			if c.isTainted(l.X) || c.isTainted(l.Index) || (rhs != nil && c.isTainted(rhs)) {
				c.report(as.Pos(), "indexed write of map-order-dependent data escapes the map range")
			}
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
			// Resolve the root variable: writing a field of a loop-local
			// struct (info.step = …) is as local as writing the struct.
			obj := baseObject(c.pass.TypesInfo, lhs)
			if obj != nil && c.declaredInside(obj) {
				continue // loop-local: dies with the iteration
			}
			if rhs == nil || !c.isTainted(rhs) {
				continue
			}
			if c.orderGuarded(guards) {
				continue // argmin/argmax with a key-ordered tie-break
			}
			c.report(as.Pos(),
				"assignment of map-order-dependent value to %s escapes the map range; "+
					"sort the keys first or tie-break on the range key", exprString(lhs))
		}
	}
}

// call classifies one call statement inside the loop body.
func (c *mapRangeChecker) call(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "delete", "len", "cap", "print", "println", "panic":
			return // builtins: removal, queries, failure paths
		}
	case *ast.SelectorExpr:
		// A method on a map receiver (set.add, set.remove …) moves data
		// from one unordered structure to another.
		if tv, ok := c.pass.TypesInfo.Types[fun.X]; ok && isMap(tv.Type) {
			return
		}
	}
	for _, arg := range call.Args {
		if c.isTainted(arg) {
			c.report(call.Pos(),
				"call passes map-order-dependent data out of the map range")
			return
		}
	}
}

// orderGuarded reports whether any enclosing condition order-compares the
// range key itself — the total-order tie-break that makes an argmin/argmax
// deterministic.
func (c *mapRangeChecker) orderGuarded(guards []ast.Expr) bool {
	if c.keyObj == nil {
		return false
	}
	for _, g := range guards {
		found := false
		ast.Inspect(g, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || found {
				return !found
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
				if c.isKey(be.X) || c.isKey(be.Y) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (c *mapRangeChecker) isKey(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && c.pass.TypesInfo.ObjectOf(id) == c.keyObj
}

func (c *mapRangeChecker) isTainted(e ast.Expr) bool {
	return exprTainted(c.pass.TypesInfo, e, c.tainted)
}

func (c *mapRangeChecker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func (c *mapRangeChecker) declaredInside(obj types.Object) bool {
	return obj.Pos() >= c.rs.Body.Pos() && obj.Pos() <= c.rs.Body.End()
}

func (c *mapRangeChecker) report(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}

// rhsFor pairs the i-th left-hand side with its right-hand side (nil for
// multi-value calls, where taint is judged per call).
func rhsFor(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Rhs) == len(as.Lhs) {
		return as.Rhs[i]
	}
	if len(as.Rhs) == 1 {
		return as.Rhs[0]
	}
	return nil
}

// isAppend reports whether the call is the builtin append.
func isAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// identObject resolves the defining or used object behind an identifier
// expression (through a pointer deref or selector).
func identObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.StarExpr:
		return identObject(info, e.X)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// baseObject resolves the root variable of an lvalue expression: the
// object behind x in x, x.f, x.f.g, *x, x[i] and parenthesized forms.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.StarExpr:
		return baseObject(info, e.X)
	case *ast.SelectorExpr:
		return baseObject(info, e.X)
	case *ast.IndexExpr:
		return baseObject(info, e.X)
	case *ast.ParenExpr:
		return baseObject(info, e.X)
	}
	return nil
}

// exprTainted reports whether e mentions any tainted object.
func exprTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprString renders a short name for the assignment target.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	}
	return "?"
}
