package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NoDeterminism forbids the two standard-library sources of run-to-run
// variation in deterministic packages: the wall clock (time.Now and the
// helpers built on it) and math/rand (any use). Telemetry code that only
// timestamps trace events may suppress a finding with
// `det:allow nodeterminism — <reason>`.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid wall-clock reads (time.Now/Since/Until) and math/rand " +
		"in packages whose output must be reproducible",
	Run: runNoDeterminism,
}

// forbiddenTimeFuncs are the package time functions that read the clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runNoDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		// Map the file's import names to import paths, respecting renames.
		imports := map[string]string{}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			name := defaultImportName(path)
			if imp.Name != nil {
				name = imp.Name.Name
			}
			imports[name] = path
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			// Only package selectors: a local variable named "time"
			// shadows the import and is fine.
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			switch imports[id.Name] {
			case "time":
				if forbiddenTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"wall-clock read time.%s in a deterministic package", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"use of %s.%s: randomness in a deterministic package", id.Name, sel.Sel.Name)
			}
			return true
		})
	}
}

// defaultImportName is the package name an unrenamed import binds: the
// last path element ("rand" for math/rand).
func defaultImportName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
