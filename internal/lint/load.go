package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the package's import path within the module.
	Path string
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports resolve straight to their
// directories, standard-library imports go through the source importer.
// (The x/tools loaders are off-limits here — the build must work with an
// empty module cache.)
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset    *token.FileSet
	std     types.Importer
	memo    map[string]*types.Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		memo:    map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks the package in dir with full type
// information. Type errors are tolerated (the analyses degrade
// gracefully on partial information); parse errors are not.
func (l *Loader) Load(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // tolerate type errors, keep partial info
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	return &Package{
		Dir: dir, Path: path, Fset: l.fset,
		Files: files, Types: tpkg, Info: info,
	}, nil
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-internal paths load from their
// directory (memoized, cycle-guarded), everything else delegates to the
// standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	if pkg, ok := l.memo[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module)))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {},
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	l.memo[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file of dir, in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries { // ReadDir sorts by name
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// PackageDirs walks root and returns every directory holding a non-test
// Go package, skipping testdata, hidden and underscore directories. This
// is the loader's "./..." expansion.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
