package pipeline_test

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/difftest"
)

// TestDumpSeed writes one generated program to a file for inspection; it
// only runs when REPRO_DUMP_SEED is set to the seed number to dump.
func TestDumpSeed(t *testing.T) {
	env := os.Getenv("REPRO_DUMP_SEED")
	if env == "" {
		t.Skip("set REPRO_DUMP_SEED to a seed number to dump")
	}
	seed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("REPRO_DUMP_SEED=%q: %v", env, err)
	}
	os.WriteFile("/tmp/seed.c", []byte(difftest.Generate(seed)), 0644)
}
