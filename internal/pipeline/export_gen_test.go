package pipeline_test

import (
	"os"
	"testing"
)

// TestDumpSeed writes one generated program to a file for inspection; it
// only runs when REPRO_DUMP_SEED is set.
func TestDumpSeed(t *testing.T) {
	if os.Getenv("REPRO_DUMP_SEED") == "" {
		t.Skip("set REPRO_DUMP_SEED to dump")
	}
	os.WriteFile("/tmp/seed.c", []byte(generate(18)), 0644)
}
