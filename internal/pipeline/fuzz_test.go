package pipeline_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

// progGen generates random but well-defined mini-C programs: all loops are
// bounded counter loops, all divisions have non-zero denominators, all
// array indices are reduced modulo the array size, and all arithmetic is
// deterministic — so any output difference between optimization levels is
// a compiler bug.
type progGen struct {
	r   *rand.Rand
	b   strings.Builder
	ind int
	// vars in scope per depth
	scopes [][]string
	nvar   int
	funcs  []string // callable earlier functions, each (int,int)->int
	depth  int
	loops  int // current loop-nesting depth
	loopOK bool
	// protected holds live loop counters; assignments must not touch them
	// or loop bounds would no longer hold.
	protected map[string]bool
}

func (g *progGen) w(format string, args ...interface{}) {
	g.b.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *progGen) pushScope() { g.scopes = append(g.scopes, nil) }
func (g *progGen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *progGen) declare() string {
	name := fmt.Sprintf("v%d", g.nvar)
	g.nvar++
	g.scopes[len(g.scopes)-1] = append(g.scopes[len(g.scopes)-1], name)
	return name
}

func (g *progGen) anyVar() string {
	var all []string
	for _, s := range g.scopes {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return "0"
	}
	return all[g.r.Intn(len(all))]
}

// assignVar picks a variable that is safe to overwrite (not a live loop
// counter).
func (g *progGen) assignVar() string {
	for try := 0; try < 8; try++ {
		v := g.anyVar()
		if v != "0" && !g.protected[v] {
			return v
		}
	}
	return g.declareFresh()
}

// expr produces a side-effect-free integer expression.
func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprint(g.r.Intn(100) - 50)
		case 1:
			return g.anyVar()
		default:
			return fmt.Sprintf("garr[((%s) %% 16 + 16) %% 16]", g.anyVar())
		}
	}
	a, b := g.expr(depth-1), g.expr(depth-1)
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / ((%s) %% 7 + 8))", a, b) // denominator 1..14
	case 4:
		return fmt.Sprintf("(%s %% ((%s) %% 7 + 8))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	default:
		if len(g.funcs) > 0 && depth >= 2 && g.loops == 0 {
			// Calls only outside loops: call chains across the generated
			// functions would otherwise multiply loop trip counts into
			// billions of executed instructions.
			return fmt.Sprintf("%s(%s, %s)", g.funcs[g.r.Intn(len(g.funcs))], a, b)
		}
		return fmt.Sprintf("(%s | %s)", a, b)
	}
}

func (g *progGen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s %s %s", c, g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	case 1:
		return fmt.Sprintf("%s || %s %s %s", c, g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	}
	return c
}

func (g *progGen) stmt() {
	if g.depth > 4 {
		g.w("%s = %s;", g.assignVar(), g.expr(1))
		return
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.r.Intn(10) {
	case 0, 1, 2:
		g.w("%s = %s;", g.assignVar(), g.expr(2))
	case 3:
		g.w("garr[((%s) %% 16 + 16) %% 16] = %s;", g.anyVar(), g.expr(2))
	case 4:
		g.w("if (%s) {", g.cond())
		g.ind++
		g.pushScope()
		g.stmt()
		g.popScope()
		g.ind--
		if g.r.Intn(2) == 0 {
			g.w("} else {")
			g.ind++
			g.pushScope()
			g.stmt()
			g.popScope()
			g.ind--
		}
		g.w("}")
	case 5:
		if g.loops >= 2 {
			g.w("%s = %s;", g.assignVar(), g.expr(2))
			return
		}
		g.loops++
		defer func() { g.loops-- }()
		i := g.declareFresh()
		g.protected[i] = true
		defer delete(g.protected, i)
		n := 2 + g.r.Intn(9)
		g.w("for (%s = 0; %s < %d; %s++) {", i, i, n, i)
		g.ind++
		g.pushScope()
		wasLoop := g.loopOK
		g.loopOK = true
		g.stmt()
		if g.r.Intn(3) == 0 {
			g.maybeBreak(i, n)
		}
		g.loopOK = wasLoop
		g.popScope()
		g.ind--
		g.w("}")
	case 6:
		if g.loops >= 2 {
			g.w("%s = %s;", g.assignVar(), g.expr(2))
			return
		}
		g.loops++
		defer func() { g.loops-- }()
		i := g.declareFresh()
		g.protected[i] = true
		defer delete(g.protected, i)
		n := 2 + g.r.Intn(7)
		g.w("%s = 0;", i)
		g.w("while (%s < %d) {", i, n)
		g.ind++
		g.pushScope()
		wasLoop := g.loopOK
		g.loopOK = true
		g.stmt()
		g.w("%s++;", i)
		g.loopOK = wasLoop
		g.popScope()
		g.ind--
		g.w("}")
	case 7:
		g.w("switch ((%s) %% 5) {", g.anyVar())
		g.ind++
		for c := -4; c <= 4; c++ {
			if g.r.Intn(2) == 0 {
				continue
			}
			g.w("case %d:", c)
			g.ind++
			g.w("%s = %s;", g.assignVar(), g.expr(1))
			if g.r.Intn(3) > 0 {
				g.w("break;")
			}
			g.ind--
		}
		g.w("default:")
		g.ind++
		g.w("%s = %s;", g.assignVar(), g.expr(1))
		g.ind--
		g.ind--
		g.w("}")
	case 8:
		g.w("%s += %s;", g.assignVar(), g.expr(2))
	default:
		g.w("%s = %s ? %s : %s;", g.assignVar(), g.cond(), g.expr(1), g.expr(1))
	}
}

func (g *progGen) maybeBreak(i string, n int) {
	if g.r.Intn(2) == 0 {
		g.w("if (%s == %d) break;", i, n/2)
	} else {
		g.w("if (%s == %d) continue;", i, n/2)
	}
}

func (g *progGen) declareFresh() string {
	name := g.declare()
	g.w("int %s;", name)
	return name
}

// generate builds a full program for the seed.
func generate(seed int64) string {
	g := &progGen{r: rand.New(rand.NewSource(seed)), protected: map[string]bool{}}
	g.w("int garr[16];")
	// Helper functions.
	nf := 1 + g.r.Intn(3)
	for fi := 0; fi < nf; fi++ {
		name := fmt.Sprintf("f%d", fi)
		g.w("int %s(int a, int b) {", name)
		g.ind++
		g.pushScope()
		g.scopes[0] = append(g.scopes[0], "a", "b")
		r := g.declareFresh()
		g.w("%s = 0;", r)
		for i := 0; i < 2+g.r.Intn(3); i++ {
			g.stmt()
		}
		g.w("return %s + %s;", r, g.expr(1))
		g.popScope()
		g.ind--
		g.w("}")
		g.funcs = append(g.funcs, name)
	}
	g.w("int main() {")
	g.ind++
	g.pushScope()
	for i := 0; i < 3; i++ {
		v := g.declareFresh()
		g.w("%s = %d;", v, g.r.Intn(40))
	}
	for i := 0; i < 5+g.r.Intn(6); i++ {
		g.stmt()
	}
	// Checksum everything observable.
	g.w("{")
	g.ind++
	g.w("int ck; int gi;")
	g.w("ck = 0;")
	g.w("for (gi = 0; gi < 16; gi++) ck = (ck * 31 + garr[gi]) %% 1000003;")
	g.w("printint(ck); putchar(' '); printint(%s);", g.anyVar())
	g.ind--
	g.w("}")
	g.w("return 0;")
	g.popScope()
	g.ind--
	g.w("}")
	return g.b.String()
}

// TestFuzzDifferential generates random programs and requires identical
// behaviour at every optimization level on both machines.
func TestFuzzDifferential(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := generate(seed)
		ref, err := mcc.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		want, err := vm.Run(ref, vm.Config{MaxSteps: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: reference run: %v\n%s", seed, err, src)
		}
		for _, m := range []*machine.Machine{machine.M68020, machine.SPARC} {
			for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
				prog, err := mcc.Compile(src)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
				got, err := vm.Run(prog, vm.Config{MaxSteps: 50_000_000})
				if err != nil {
					t.Fatalf("seed %d %s/%s: run: %v\n--- source:\n%s\n--- optimized:\n%s",
						seed, m.Name, lv, err, src, prog)
				}
				if string(got.Output) != string(want.Output) {
					t.Fatalf("seed %d %s/%s: output %q, want %q\n--- source:\n%s",
						seed, m.Name, lv, got.Output, want.Output, src)
				}
			}
		}
	}
}
