package pipeline_test

import (
	"testing"

	"repro/internal/difftest"
)

// TestFuzzDifferential runs the shared differential oracle over a band of
// generated programs disjoint from the seeds internal/difftest uses for its
// own smoke tests. The generator and the six-cell comparison logic live in
// internal/difftest; this test keeps the pipeline package honest end to end
// (every phase at SIMPLE, LOOPS and JUMPS on both machines) without
// duplicating a second ad-hoc program generator here.
func TestFuzzDifferential(t *testing.T) {
	lo, hi := int64(201), int64(215)
	if testing.Short() {
		hi = lo + 4
	}
	for seed := lo; seed <= hi; seed++ {
		v := difftest.Check(difftest.Generate(seed), difftest.Options{
			Seed:  seed,
			Input: []byte("pipeline"),
		})
		if v.Skipped {
			t.Fatalf("seed %d skipped: %s\n%s", seed, v.SkipReason, difftest.Generate(seed))
		}
		for _, vi := range v.Violations {
			t.Errorf("seed %d: %s", seed, vi)
		}
		if t.Failed() {
			t.Fatalf("source:\n%s", difftest.Generate(seed))
		}
	}
}
