package pipeline

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/rtl"
	"repro/internal/verify"
)

// verifyEachSrc is a small program that exercises every pipeline stage:
// a call, a loop (so the loop stage iterates), and enough locals for the
// register allocator to have real work.
const verifyEachSrc = `
int g[8];
int f(int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0)
			continue;
		s = s + g[i];
	}
	return s;
}
int main() {
	int i;
	for (i = 0; i < 8; i++) g[i] = i * i;
	return f(8);
}`

func compileFor(t *testing.T, src string) *cfg.Program {
	t.Helper()
	prog, err := mcc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestVerifyEachCleanPipeline is the baseline: a healthy pipeline over a
// real program reports no violations on either machine at any level.
func TestVerifyEachCleanPipeline(t *testing.T) {
	for _, m := range machine.All() {
		for _, lv := range []Level{Simple, Loops, Jumps} {
			st := Optimize(compileFor(t, verifyEachSrc), Config{
				Machine: m, Level: lv, VerifyEach: true,
			})
			for _, vi := range st.Verify {
				t.Errorf("%s/%s: %s", m.Name, lv, vi.String())
			}
		}
	}
}

// TestVerifyEachAttribution injects a corruption right after a named pass
// (via the Config.corruptAfter test hook) and asserts the verifier blames
// exactly that pass — the property that makes verify-each a bisection
// tool rather than a smoke test.
func TestVerifyEachAttribution(t *testing.T) {
	cases := []struct {
		name     string
		machine  *machine.Machine
		pass     string // pass to corrupt after
		wantRule verify.Rule
		corrupt  func(f *cfg.Func)
	}{
		{
			// A virtual register surviving allocation: the archetypal
			// regalloc rewrite bug.
			name:     "virtual-reg-after-regalloc",
			machine:  machine.M68020,
			pass:     "regalloc",
			wantRule: verify.RuleVirtualReg,
			corrupt: func(f *cfg.Func) {
				b := f.Entry()
				b.Insts = append([]rtl.Inst{{
					Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(f.NewVReg()),
				}}, b.Insts...)
			},
		},
		{
			// A mid-loop-stage pass reading a register no path defines:
			// what a bad CSE rewrite looks like.
			name:     "use-before-def-after-cse",
			machine:  machine.M68020,
			pass:     "cse",
			wantRule: verify.RuleUseBeforeDef,
			corrupt: func(f *cfg.Func) {
				b := f.Entry()
				b.Insts = append([]rtl.Inst{{
					Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(f.NewVReg()),
				}}, b.Insts...)
			},
		},
		{
			// An illegal instruction left in a SPARC delay slot.
			name:     "illegal-delay-slot-fill",
			machine:  machine.SPARC,
			pass:     "delay-slots",
			wantRule: verify.RuleDelaySlot,
			corrupt: func(f *cfg.Func) {
				for _, b := range f.Blocks {
					n := len(b.Insts)
					if n >= 2 && b.Insts[n-2].IsCTI() {
						b.Insts[n-1] = rtl.Inst{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)}
						return
					}
				}
			},
		},
		{
			// A conditional branch whose compare was deleted, as a broken
			// dead-variables pass would.
			name:     "cc-pairing-after-dead-variables",
			machine:  machine.M68020,
			pass:     "dead-variables",
			wantRule: verify.RuleCCPairing,
			corrupt: func(f *cfg.Func) {
				for _, b := range f.Blocks {
					for i := range b.Insts {
						if b.Insts[i].Kind == rtl.Cmp {
							b.Insts[i] = rtl.Inst{Kind: rtl.Nop}
							return
						}
					}
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			corrupted := false
			var seen []verify.Violation
			st := Optimize(compileFor(t, verifyEachSrc), Config{
				Machine:    c.machine,
				Level:      Jumps,
				VerifyEach: true,
				OnViolation: func(v verify.Violation) {
					seen = append(seen, v)
				},
				corruptAfter: func(pass string, f *cfg.Func) {
					// Corrupt only the first function that runs the target
					// pass; one injection is enough to test attribution.
					if pass == c.pass && !corrupted {
						corrupted = true
						c.corrupt(f)
					}
				},
			})
			if !corrupted {
				t.Fatalf("pass %q never ran", c.pass)
			}
			if len(st.Verify) == 0 {
				t.Fatal("corruption not detected")
			}
			for _, vi := range st.Verify {
				if vi.Pass != c.pass {
					t.Errorf("violation blamed on pass %q, want %q: %s", vi.Pass, c.pass, vi.String())
				}
			}
			found := false
			for _, vi := range st.Verify {
				if vi.Rule == c.wantRule {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation in %v", c.wantRule, st.Verify)
			}
			if len(seen) != len(st.Verify) {
				t.Errorf("OnViolation saw %d violations, Stats.Verify has %d", len(seen), len(st.Verify))
			}
		})
	}
}

// TestVerifyEachStopsAfterFirstViolatingPass checks that once a pass is
// blamed, later passes of the same function go unchecked: all reported
// violations carry the first offending pass.
func TestVerifyEachStopsAfterFirstViolatingPass(t *testing.T) {
	st := Optimize(compileFor(t, verifyEachSrc), Config{
		Machine:    machine.M68020,
		Level:      Jumps,
		VerifyEach: true,
		corruptAfter: func(pass string, f *cfg.Func) {
			// Corrupt after every single pass: only the first one per
			// function may be blamed.
			b := f.Entry()
			b.Insts = append([]rtl.Inst{{
				Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(f.NewVReg()),
			}}, b.Insts...)
		},
	})
	if len(st.Verify) == 0 {
		t.Fatal("corruption not detected")
	}
	perFunc := map[string]string{}
	for _, vi := range st.Verify {
		if first, ok := perFunc[vi.Func]; ok && first != vi.Pass {
			t.Errorf("%s: violations from two passes (%q then %q): checking did not stop",
				vi.Func, first, vi.Pass)
		} else {
			perFunc[vi.Func] = vi.Pass
		}
	}
}
