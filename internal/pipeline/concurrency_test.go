package pipeline_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// TestOptimizeConcurrentInvocations verifies the whole compile+optimize
// path is safe for concurrent independent invocations: no package-level
// mutable state anywhere in mcc/pipeline/opt/replicate/cfg leaks between
// programs being optimized on different goroutines. Run under -race (as
// CI does) this is the subsystem's isolation check; the result
// comparison also catches nondeterminism that doesn't race.
//
// The audited shared state in the optimizer packages is: the machine
// models (machine.M68020/SPARC, read-only by convention and by this
// test), immutable lookup tables (mcc keywords, rtl names), the
// predefined mcc type singletons, and opt.debugSpills (nil unless a
// debug main installs it). None is written on the compile path.
func TestOptimizeConcurrentInvocations(t *testing.T) {
	const src = `
int x[100];
int main() {
	int i;
	int n;
	n = 0;
	for (i = 0; i < 100; i++)
		x[i] = i;
	i = 1;
	while (1) {
		if (i > 90)
			break;
		x[i-1] = x[i];
		i++;
	}
	for (i = 0; i < 90; i++)
		if (x[i] % 3 == 0)
			n = n + x[i];
	return n % 251;
}
`
	type cfgCase struct {
		m  *machine.Machine
		lv pipeline.Level
	}
	cases := []cfgCase{
		{machine.M68020, pipeline.Simple},
		{machine.M68020, pipeline.Jumps},
		{machine.SPARC, pipeline.Loops},
		{machine.SPARC, pipeline.Jumps},
	}

	// Reference results, computed sequentially.
	want := make([]pipeline.Stats, len(cases))
	for i, c := range cases {
		prog, err := mcc.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pipeline.Optimize(prog, pipeline.Config{
			Machine: c.m, Level: c.lv,
			Replication: replicate.Options{Heuristic: replicate.HeurReturns},
		})
	}

	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, len(cases)*rounds)
	for r := 0; r < rounds; r++ {
		for i, c := range cases {
			wg.Add(1)
			go func(i int, c cfgCase) {
				defer wg.Done()
				prog, err := mcc.Compile(src)
				if err != nil {
					errs <- err.Error()
					return
				}
				st := pipeline.Optimize(prog, pipeline.Config{
					Machine: c.m, Level: c.lv,
					Replication: replicate.Options{Heuristic: replicate.HeurReturns},
				})
				// Stats carries a slice field (Verify) since verify-each
				// landed, so compare deeply rather than with ==.
				if !reflect.DeepEqual(st, want[i]) {
					errs <- "concurrent result diverged from sequential reference"
				}
			}(i, c)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
