package pipeline

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/replicate"
	"repro/internal/rtl"
	"repro/internal/tv"
	"repro/internal/verify"
)

// TestTVCleanPipeline is the acceptance baseline: with the translation
// validator enabled, every machine at every level compiles the fixture
// with zero rejections, the engine actually emits certificates at the
// replicating levels, and the user's own OnCertificate hook keeps firing
// (the pipeline chains it, never replaces it).
func TestTVCleanPipeline(t *testing.T) {
	for _, m := range machine.All() {
		for _, lv := range AllLevels() {
			certs := 0
			st := Optimize(compileFor(t, verifyEachSrc), Config{
				Machine: m, Level: lv, TV: true,
				Replication: replicate.Options{
					OnCertificate: func(*cfg.Func, *tv.Certificate) { certs++ },
				},
			})
			for _, vi := range st.Verify {
				t.Errorf("%s/%s: %s", m.Name, lv, vi.String())
			}
			if lv >= Jumps && certs == 0 {
				t.Errorf("%s/%s: no certificates emitted at a replicating level", m.Name, lv)
			}
		}
	}
}

// TestTVCleanPipelineParallel: the per-function parallel path carries TV
// rejections (and their absence) identically to the serial path.
func TestTVCleanPipelineParallel(t *testing.T) {
	st := Optimize(compileFor(t, verifyEachSrc), Config{
		Machine: machine.M68020, Level: Jumps, TV: true, Jobs: 4,
	})
	for _, vi := range st.Verify {
		t.Errorf("parallel TV pipeline: %s", vi.String())
	}
}

// TestTVRejectionAttribution injects miscompiles through the corruptCert
// hook — which fires between certificate emission and validation, exactly
// where a buggy engine would sit — and asserts every rejection carries
// RuleTranslation and blames the replicate pass.
func TestTVRejectionAttribution(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(f *cfg.Func, c *tv.Certificate) bool // true when injected
	}{
		{
			// The certificate lies about what it did.
			name: "forged-kind",
			corrupt: func(f *cfg.Func, c *tv.Certificate) bool {
				c.Kind = "forged"
				return true
			},
		},
		{
			// The engine produced a copy that diverges from its original:
			// a real miscompile, caught by body comparison.
			name: "corrupted-copy-body",
			corrupt: func(f *cfg.Func, c *tv.Certificate) bool {
				if c.Kind != tv.KindReplication || len(c.Copies) == 0 {
					return false
				}
				cp := f.BlockByLabel(c.Copies[0].Copy)
				if cp == nil || len(cp.Insts) == 0 {
					return false
				}
				cp.Insts[0] = rtl.Inst{Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.Imm(99)}
				return true
			},
		},
		{
			// The certificate claims a different source edge than the one
			// the splice consumed.
			name: "forged-source-edge",
			corrupt: func(f *cfg.Func, c *tv.Certificate) bool {
				if c.Kind != tv.KindReplication {
					return false
				}
				c.Target = c.Block
				return true
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			injected := false
			var seen []verify.Violation
			st := Optimize(compileFor(t, verifyEachSrc), Config{
				Machine: machine.M68020,
				Level:   Jumps,
				TV:      true,
				OnViolation: func(v verify.Violation) {
					seen = append(seen, v)
				},
				corruptCert: func(f *cfg.Func, c *tv.Certificate) {
					if !injected {
						injected = tc.corrupt(f, c)
					}
				},
			})
			if !injected {
				t.Fatal("no certificate of the targeted shape was emitted")
			}
			if len(st.Verify) == 0 {
				t.Fatal("injected miscompile not rejected")
			}
			for _, vi := range st.Verify {
				if vi.Rule != verify.RuleTranslation {
					t.Errorf("rejection carries rule %q, want %q", vi.Rule, verify.RuleTranslation)
				}
				if vi.Pass != "replicate" {
					t.Errorf("rejection blamed on pass %q, want %q: %s", vi.Pass, "replicate", vi.String())
				}
			}
			if len(seen) != len(st.Verify) {
				t.Errorf("OnViolation saw %d violations, Stats.Verify has %d", len(seen), len(st.Verify))
			}
		})
	}
}

// TestVerifyEachAttributionUnderTV re-runs the PR-5 attribution suite with
// the translation validator enabled alongside verify-each: every injected
// corruption is still rejected with the correct pass named, and TV adds no
// false alarms of its own on the uncorrupted passes.
func TestVerifyEachAttributionUnderTV(t *testing.T) {
	cases := []struct {
		name     string
		machine  *machine.Machine
		pass     string
		wantRule verify.Rule
		corrupt  func(f *cfg.Func)
	}{
		{
			name:     "virtual-reg-after-regalloc",
			machine:  machine.M68020,
			pass:     "regalloc",
			wantRule: verify.RuleVirtualReg,
			corrupt: func(f *cfg.Func) {
				b := f.Entry()
				b.Insts = append([]rtl.Inst{{
					Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(f.NewVReg()),
				}}, b.Insts...)
			},
		},
		{
			name:     "use-before-def-after-cse",
			machine:  machine.M68020,
			pass:     "cse",
			wantRule: verify.RuleUseBeforeDef,
			corrupt: func(f *cfg.Func) {
				b := f.Entry()
				b.Insts = append([]rtl.Inst{{
					Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(f.NewVReg()),
				}}, b.Insts...)
			},
		},
		{
			name:     "illegal-delay-slot-fill",
			machine:  machine.SPARC,
			pass:     "delay-slots",
			wantRule: verify.RuleDelaySlot,
			corrupt: func(f *cfg.Func) {
				for _, b := range f.Blocks {
					n := len(b.Insts)
					if n >= 2 && b.Insts[n-2].IsCTI() {
						b.Insts[n-1] = rtl.Inst{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)}
						return
					}
				}
			},
		},
		{
			name:     "cc-pairing-after-dead-variables",
			machine:  machine.M68020,
			pass:     "dead-variables",
			wantRule: verify.RuleCCPairing,
			corrupt: func(f *cfg.Func) {
				for _, b := range f.Blocks {
					for i := range b.Insts {
						if b.Insts[i].Kind == rtl.Cmp {
							b.Insts[i] = rtl.Inst{Kind: rtl.Nop}
							return
						}
					}
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			corrupted := false
			st := Optimize(compileFor(t, verifyEachSrc), Config{
				Machine:    c.machine,
				Level:      Jumps,
				VerifyEach: true,
				TV:         true,
				corruptAfter: func(pass string, f *cfg.Func) {
					if pass == c.pass && !corrupted {
						corrupted = true
						c.corrupt(f)
					}
				},
			})
			if !corrupted {
				t.Fatalf("pass %q never ran", c.pass)
			}
			if len(st.Verify) == 0 {
				t.Fatal("corruption not detected")
			}
			for _, vi := range st.Verify {
				if vi.Pass != c.pass {
					t.Errorf("violation blamed on pass %q, want %q: %s", vi.Pass, c.pass, vi.String())
				}
			}
			found := false
			for _, vi := range st.Verify {
				if vi.Rule == c.wantRule {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation in %v", c.wantRule, st.Verify)
			}
		})
	}
}

// TestTVUndoInjection pins the `-inject undo` property at the pipeline
// level: force-rolling-back every guarded duplication leaves only
// jump-to-next deletions certified (rolled-back candidates emit nothing)
// and produces zero TV rejections.
func TestTVUndoInjection(t *testing.T) {
	var kinds []tv.Kind
	st := Optimize(compileFor(t, verifyEachSrc), Config{
		Machine: machine.M68020,
		Level:   Jumps,
		TV:      true,
		Replication: replicate.Options{
			ForceRollback: true,
			OnCertificate: func(_ *cfg.Func, c *tv.Certificate) {
				kinds = append(kinds, c.Kind)
			},
		},
	})
	for _, vi := range st.Verify {
		t.Errorf("undo injection produced a TV rejection: %s", vi.String())
	}
	if st.Replication.Rollbacks == 0 {
		t.Fatal("ForceRollback rolled nothing back; the injection is dead")
	}
	for _, k := range kinds {
		if k != tv.KindJumpDelete {
			t.Errorf("rolled-back candidate emitted a %s certificate", k)
		}
	}
}
