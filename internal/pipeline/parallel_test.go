package pipeline_test

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/verify"
)

// jobsFixture optimizes one compilation of the named Table-3 program with
// the given worker count and returns the final listing, the stats, and the
// timing-stripped trace stream.
func jobsFixture(t *testing.T, prog string, lv pipeline.Level, jobs int) (string, pipeline.Stats, []byte) {
	t.Helper()
	p := bench.ProgramByName(prog)
	if p == nil {
		t.Fatalf("bench corpus misses %s", prog)
	}
	cp, err := mcc.Compile(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	w.OmitTimings = true
	st := pipeline.Optimize(cp, pipeline.Config{
		Machine: machine.SPARC, Level: lv, Tracer: w, Jobs: jobs,
	})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return cp.String(), st, buf.Bytes()
}

// TestOptimizeJobsDeterministic is the acceptance property of the parallel
// driver: for every Table-3 program and level, compiling at -j 1 and -j 8
// yields byte-identical listings, identical statistics, and byte-identical
// timing-stripped trace streams (the serial func-major event order).
func TestOptimizeJobsDeterministic(t *testing.T) {
	for _, p := range bench.Programs() {
		for _, lv := range pipeline.AllLevels() {
			l1, s1, t1 := jobsFixture(t, p.Name, lv, 1)
			l8, s8, t8 := jobsFixture(t, p.Name, lv, 8)
			if l1 != l8 {
				t.Errorf("%s/%s: listings differ between -j 1 and -j 8", p.Name, lv)
			}
			if s1.StaticInsts != s8.StaticInsts || s1.StaticJumps != s8.StaticJumps ||
				s1.SlotsFilled != s8.SlotsFilled || s1.Iterations != s8.Iterations ||
				s1.Replication != s8.Replication {
				t.Errorf("%s/%s: stats differ: serial %+v parallel %+v", p.Name, lv, s1, s8)
			}
			if !bytes.Equal(t1, t8) {
				t.Errorf("%s/%s: trace streams differ between -j 1 and -j 8", p.Name, lv)
			}
		}
	}
}

// TestOptimizeJobsVerifyEach runs the parallel driver under the semantic
// verifier: a healthy pipeline must report zero violations with workers
// enabled, and the deferred OnViolation delivery must agree with
// Stats.Verify.
func TestOptimizeJobsVerifyEach(t *testing.T) {
	p := bench.ProgramByName("sort")
	if p == nil {
		t.Fatal("bench corpus misses sort")
	}
	cp, err := mcc.Compile(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	var seen []verify.Violation
	st := pipeline.Optimize(cp, pipeline.Config{
		Machine: machine.M68020, Level: pipeline.Jumps, Jobs: 8,
		VerifyEach:  true,
		OnViolation: func(v verify.Violation) { seen = append(seen, v) },
	})
	if len(st.Verify) != 0 {
		t.Fatalf("verify-each under -j 8 found violations: %v", st.Verify)
	}
	if len(seen) != len(st.Verify) {
		t.Fatalf("OnViolation delivered %d violations, stats carry %d", len(seen), len(st.Verify))
	}
}
