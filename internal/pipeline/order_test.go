package pipeline_test

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/rtl"
	"repro/internal/vm"
)

// TestPipelineOrderFinalShape checks the Figure-3 contract on the final
// code: SPARC code has a delay slot after every CTI, no machine-illegal
// operand shapes, no virtual registers, and no unconditional jumps to the
// next block.
func TestPipelineOrderFinalShape(t *testing.T) {
	src := `
int a[20];
int f(int x) { return x > 3 ? x - 1 : x + 1; }
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 20; i++)
		a[i] = f(i);
	for (i = 0; i < 20; i++)
		s += a[i];
	printint(s);
	return 0;
}`
	for _, m := range machine.All() {
		for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
			prog, err := mcc.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
			for _, f := range prog.Funcs {
				for _, b := range f.Blocks {
					for ii := range b.Insts {
						in := &b.Insts[ii]
						if !m.LegalInst(in) {
							t.Errorf("%s/%s %s: illegal final instruction %v", m.Name, lv, f.Name, in)
						}
						for _, o := range []rtl.Operand{in.Dst, in.Src, in.Src2} {
							if o.Kind == rtl.OReg && o.Reg.IsVirtual() ||
								o.Kind == rtl.OMem && (o.Reg.IsVirtual() || o.Index != rtl.RegNone && o.Index.IsVirtual()) {
								t.Errorf("%s/%s %s: virtual register in final code: %v", m.Name, lv, f.Name, in)
							}
						}
						if m.DelaySlots {
							switch in.Kind {
							case rtl.Br, rtl.Jmp, rtl.IJmp, rtl.Ret:
								if ii+1 >= len(b.Insts) {
									t.Errorf("%s/%s %s: CTI without delay slot: %v", m.Name, lv, f.Name, in)
								}
							}
						}
					}
					if !m.DelaySlots {
						// Without slots, a Jmp to the positionally next
						// block should have been removed.
						if tm := b.Term(); tm != nil && tm.Kind == rtl.Jmp &&
							b.Index+1 < len(f.Blocks) && f.Blocks[b.Index+1].Label == tm.Target {
							t.Errorf("%s/%s %s: jump to next block survived", m.Name, lv, f.Name)
						}
					}
				}
			}
		}
	}
}

// TestStatsReported checks the pipeline reports coherent statistics.
func TestStatsReported(t *testing.T) {
	prog, err := mcc.Compile(`int main() { int i; for (i = 0; i < 5; i++) putchar('x'); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	st := pipeline.Optimize(prog, pipeline.Config{Machine: machine.SPARC, Level: pipeline.Jumps})
	if st.StaticInsts != prog.NumRTLs() {
		t.Errorf("StaticInsts %d != NumRTLs %d", st.StaticInsts, prog.NumRTLs())
	}
	if st.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	if st.SlotsFilled+st.SlotsNops == 0 {
		t.Error("SPARC must have placed delay slots")
	}
	if st.StaticNops != st.SlotsNops {
		t.Errorf("static nops %d != slot nops %d", st.StaticNops, st.SlotsNops)
	}
	res, err := vm.Run(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "xxxxx") {
		t.Errorf("output %q", res.Output)
	}
}

// TestParseLevel covers the level parser used by the CLIs.
func TestParseLevel(t *testing.T) {
	for _, c := range []struct {
		in   string
		want pipeline.Level
	}{
		{"simple", pipeline.Simple}, {"SIMPLE", pipeline.Simple}, {"Simple", pipeline.Simple},
		{"loops", pipeline.Loops}, {"LOOPS", pipeline.Loops}, {"LoOpS", pipeline.Loops},
		{"jumps", pipeline.Jumps}, {"JUMPS", pipeline.Jumps}, {"Jumps", pipeline.Jumps},
	} {
		got, err := pipeline.ParseLevel(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := pipeline.ParseLevel("turbo"); err == nil {
		t.Error("ParseLevel should reject unknown levels")
	}
	if pipeline.Simple.String() != "SIMPLE" || pipeline.Jumps.String() != "JUMPS" {
		t.Error("Level.String broken")
	}
}
