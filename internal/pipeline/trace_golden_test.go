package pipeline_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// traceFixture compiles the midloop example with a timing-stripped JSONL
// sink and returns the emitted byte stream. Everything left after
// OmitTimings is a pure function of the input program, so the stream is
// byte-for-byte reproducible.
func traceFixture(t *testing.T, lv pipeline.Level) []byte {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "minic", "midloop.c"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mcc.Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	w.OmitTimings = true
	pipeline.Optimize(prog, pipeline.Config{Machine: machine.SPARC, Level: lv, Tracer: w})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden locks the telemetry schema: the trace of a fixed fixture
// at each level must match the checked-in golden file exactly. Regenerate
// with `go test ./internal/pipeline -run TraceGolden -update` after an
// intentional schema change.
func TestTraceGolden(t *testing.T) {
	for _, lv := range pipeline.AllLevels() {
		got := traceFixture(t, lv)
		golden := filepath.Join("testdata", "midloop_"+lv.String()+".trace.jsonl")
		if *update {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run with -update to create)", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: trace diverges from golden file (rerun with -update if the schema change is intentional)", golden)
		}
	}
}

// TestTraceDeterministic double-checks the property the golden test relies
// on: two runs of the same compilation produce identical streams.
func TestTraceDeterministic(t *testing.T) {
	a := traceFixture(t, pipeline.Jumps)
	b := traceFixture(t, pipeline.Jumps)
	if !bytes.Equal(a, b) {
		t.Error("timing-stripped traces differ between runs")
	}
}

// TestTraceContent checks the JUMPS-level stream is valid JSONL and holds
// the events the acceptance criteria name: pass spans with size deltas and
// at least one replication decision carrying both candidate costs.
func TestTraceContent(t *testing.T) {
	raw := traceFixture(t, pipeline.Jumps)
	var passes, decisions int
	sawReplicatePass := false
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		if ev.TimeNS != 0 || ev.DurNS != 0 {
			t.Fatalf("OmitTimings leaked a timestamp: %q", line)
		}
		switch ev.Type {
		case obs.EvPass:
			passes++
			if ev.Name == "" || ev.RTLsBefore == 0 {
				t.Errorf("pass span missing name or sizes: %q", line)
			}
			if ev.Name == "replicate" {
				sawReplicatePass = true
			}
		case obs.EvDecision:
			decisions++
			if len(ev.Candidates) == 0 || ev.Outcome == "" {
				t.Errorf("decision without candidates/outcome: %q", line)
			}
			for _, c := range ev.Candidates {
				if c.RTLs <= 0 || c.Kind == "" {
					t.Errorf("candidate without cost: %q", line)
				}
			}
		}
	}
	if passes == 0 || decisions == 0 || !sawReplicatePass {
		t.Errorf("trace incomplete: %d passes, %d decisions, replicate pass seen=%v",
			passes, decisions, sawReplicatePass)
	}
}

// TestPipelineRollbackSurfaced: compiling wc for the 68020 at JUMPS is
// known to trigger a step-6 reducibility rollback; the pipeline stats and
// the -explain narrative must both surface it.
func TestPipelineRollbackSurfaced(t *testing.T) {
	p := bench.ProgramByName("wc")
	if p == nil {
		t.Fatal("bench corpus misses wc")
	}
	prog, err := mcc.Compile(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	col := &obs.Collector{}
	st := pipeline.Optimize(prog, pipeline.Config{Machine: machine.M68020, Level: pipeline.Jumps, Tracer: col})
	if st.Replication.Rollbacks < 1 {
		t.Fatalf("expected at least one rollback, got %+v", st.Replication)
	}
	var narrative bytes.Buffer
	obs.Explain(&narrative, col.Events())
	if !bytes.Contains(narrative.Bytes(), []byte("ROLLED BACK")) {
		t.Errorf("explain narrative does not name the rollback:\n%s", narrative.String())
	}
}
