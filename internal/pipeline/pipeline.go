// Package pipeline drives the optimization phases in the order of the
// paper's Figure 3, parameterized by the optimization level under study:
//
//	SIMPLE — the standard optimizations only,
//	LOOPS  — plus conventional loop-condition replication,
//	JUMPS  — plus generalized code replication,
//	DUPS   — plus conditional elimination by code duplication.
package pipeline

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfg"
	"repro/internal/encode"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/replicate"
	"repro/internal/rtl"
	"repro/internal/tv"
	"repro/internal/verify"
)

// Level is the optimization level of the paper's experiments.
type Level uint8

// Optimization levels.
const (
	Simple Level = iota
	Loops
	Jumps
	// Dups extends Jumps with conditional elimination by code duplication:
	// conditional branches whose outcome is decided on an incoming path are
	// removed by duplicating the test block on that path with the branch
	// folded to the decided transfer.
	Dups
)

// String returns the level's canonical upper-case spelling (e.g. "JUMPS").
func (l Level) String() string {
	switch l {
	case Simple:
		return "SIMPLE"
	case Loops:
		return "LOOPS"
	case Jumps:
		return "JUMPS"
	case Dups:
		return "DUPS"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// AllLevels lists the four optimization levels in ascending order (the
// paper's three plus DUPS); tools that sweep every level (tables, the
// difftest oracle) range over this instead of hard-coding the enum.
func AllLevels() []Level { return []Level{Simple, Loops, Jumps, Dups} }

// ParseLevel converts a string (any case) to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "simple":
		return Simple, nil
	case "loops":
		return Loops, nil
	case "jumps":
		return Jumps, nil
	case "dups":
		return Dups, nil
	}
	return Simple, fmt.Errorf("pipeline: unknown level %q (want simple, loops, jumps or dups)", s)
}

// Config selects the machine, level and replication options.
type Config struct {
	Machine *machine.Machine
	Level   Level
	// Replication tunes the replication passes (LOOPS, JUMPS and DUPS;
	// ignored at SIMPLE).
	Replication replicate.Options
	// MaxIterations caps the do-while loop of Figure 3 (0 = default 30).
	MaxIterations int
	// Tracer, when non-nil, receives telemetry: one obs.EvPass span per
	// optimization pass (wall time, iteration, RTL/block deltas), one
	// obs.EvPhase span per function, and — unless Replication.Tracer
	// overrides it — the replication decision log. Nil disables tracing;
	// the instrumented paths then cost a single nil check.
	Tracer obs.Tracer
	// VerifyEach runs the semantic IR verifier (internal/verify) after
	// every pass and attributes the first violation to the pass that
	// introduced it: violations land in Stats.Verify, are emitted as
	// obs.EvVerify trace events, and are handed to OnViolation. After a
	// function's first violating pass its remaining passes go unchecked —
	// the damage is already attributed, and a corrupt function would drown
	// the report in downstream noise. This is a debugging mode: every
	// check recomputes edges, liveness and dominators.
	VerifyEach bool
	// TV runs the translation validator (internal/tv) over every
	// certificate the replication engine emits: each applied duplication
	// is checked by cut-point bisimulation in the state it left behind,
	// with fold evidence re-derived rather than trusted. Rejections carry
	// verify.RuleTranslation and flow through the same attribution
	// machinery as verify-each findings — pass/stage/iter stamped,
	// recorded in Stats.Verify, emitted as obs.EvVerify events, handed to
	// OnViolation — and a function's first rejection stops further
	// validation for it. TV and VerifyEach are independent; either can be
	// enabled alone. Unlike VerifyEach, TV's cost is proportional to the
	// duplications actually applied, not to the pass count.
	TV bool
	// OnViolation, when non-nil, receives every verify-each and
	// translation-validation violation as it is found (the same data that
	// accumulates in Stats.Verify). With Jobs > 1 the calls are deferred
	// and delivered in function order once every function finishes, so
	// the sequence stays deterministic.
	OnViolation func(verify.Violation)
	// Jobs bounds how many functions Optimize works on concurrently inside
	// one translation unit: 0 means GOMAXPROCS, 1 forces the serial path.
	// The output is identical for every value — functions share no mutable
	// state, per-function trace events are buffered and replayed in
	// function order (the same func-major order the serial path emits),
	// and statistics merge in function order.
	Jobs int

	// corruptAfter, when non-nil, mutates the function after the named
	// pass runs and before its verify-each check — the fault-injection
	// hook behind this package's pass-attribution tests.
	corruptAfter func(pass string, f *cfg.Func)
	// corruptCert, when non-nil, mutates every certificate after the
	// engine emits it and before the validator sees it — the
	// fault-injection hook behind this package's TV rejection tests.
	corruptCert func(f *cfg.Func, cert *tv.Certificate)
}

func (c Config) maxIterations() int {
	if c.MaxIterations == 0 {
		return 30
	}
	return c.MaxIterations
}

func (c Config) jobs() int {
	if c.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Jobs
}

// Stats summarizes what the pipeline did.
type Stats struct {
	// StaticInsts is the final static instruction count.
	StaticInsts int
	// StaticJumps / StaticBranches / StaticNops count final unconditional
	// jumps (incl. indirect), conditional branches and no-ops.
	StaticJumps    int
	StaticIndirect int
	StaticBranches int
	StaticNops     int
	// SlotsFilled / SlotsNops report delay-slot filling (SPARC only).
	SlotsFilled int
	SlotsNops   int
	// Iterations is the number of Figure-3 loop iterations used.
	Iterations int
	// Replication aggregates the replication activity over every function
	// and iteration: jumps replaced, trivial jump-to-next deletions,
	// reducibility rollbacks, and RTLs copied (Table-5 code growth,
	// explained per-jump by the decision log).
	Replication replicate.Result
	// Verify holds the semantic-verifier violations found by verify-each
	// mode and the certificate rejections found by translation validation
	// (empty unless Config.VerifyEach or Config.TV; a healthy pipeline
	// reports none). Each violation names the pass that introduced it.
	Verify []verify.Violation `json:"verify,omitempty"`
}

// Optimize runs the full Figure-3 pipeline over every function of the
// program and returns static statistics of the final code. Functions are
// independent, so with Config.Jobs != 1 they are optimized concurrently;
// the result — code, statistics, trace-event order, violation order — is
// byte-identical to the serial run.
func Optimize(p *cfg.Program, c Config) Stats {
	var st Stats
	if jobs := c.jobs(); jobs > 1 && len(p.Funcs) > 1 {
		optimizeParallel(p, c, jobs, &st)
	} else {
		for _, f := range p.Funcs {
			mergeFuncStats(&st, optimizeFunc(f, c))
		}
	}
	count(p, &st)
	return st
}

// mergeFuncStats folds one function's statistics into the unit's. Called
// in function order on both the serial and the parallel path.
func mergeFuncStats(st *Stats, st0 Stats) {
	st.SlotsFilled += st0.SlotsFilled
	st.SlotsNops += st0.SlotsNops
	if st0.Iterations > st.Iterations {
		st.Iterations = st0.Iterations
	}
	st.Replication.Merge(st0.Replication)
	st.Verify = append(st.Verify, st0.Verify...)
}

// bufTracer accumulates one function's trace events so the parallel driver
// can replay them to the real tracer in function order — reproducing the
// func-major event order of the serial path.
type bufTracer struct{ events []*obs.Event }

func (t *bufTracer) Emit(ev *obs.Event) { t.events = append(t.events, ev) }

// optimizeParallel fans the functions out over a bounded worker pool.
// Determinism: workers share nothing (each function carries its own
// scratch arena, and the concurrency tests audit the package-level state);
// anything order-sensitive — tracer events, OnViolation callbacks, stats
// merging — is buffered per function and delivered in function order after
// the pool drains.
func optimizeParallel(p *cfg.Program, c Config, jobs int, st *Stats) {
	n := len(p.Funcs)
	if jobs > n {
		jobs = n
	}
	results := make([]Stats, n)
	// One buffer array per distinct sink. When Replication.Tracer is nil it
	// inherits the (buffered) pipeline tracer inside replicatePass, so the
	// decision log interleaves with the pass spans exactly as on the serial
	// path.
	var pbufs, rbufs []bufTracer
	if c.Tracer != nil {
		pbufs = make([]bufTracer, n)
	}
	if c.Replication.Tracer != nil {
		rbufs = make([]bufTracer, n)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cf := c
				cf.OnViolation = nil // delivered post-merge, in func order
				if pbufs != nil {
					cf.Tracer = &pbufs[i]
				}
				if rbufs != nil {
					cf.Replication.Tracer = &rbufs[i]
				}
				results[i] = optimizeFunc(p.Funcs[i], cf)
			}
		}()
	}
	wg.Wait()
	for i := range results {
		if pbufs != nil {
			for _, e := range pbufs[i].events {
				c.Tracer.Emit(e)
			}
		}
		if rbufs != nil {
			for _, e := range rbufs[i].events {
				c.Replication.Tracer.Emit(e)
			}
		}
		if c.OnViolation != nil {
			for _, v := range results[i].Verify {
				c.OnViolation(v)
			}
		}
		mergeFuncStats(st, results[i])
	}
}

// replicatePass runs the configured replication algorithm.
func replicatePass(f *cfg.Func, c Config) replicate.Result {
	opts := c.Replication
	if opts.Tracer == nil {
		opts.Tracer = c.Tracer
	}
	switch c.Level {
	case Loops:
		return replicate.LOOPS(f, opts)
	case Jumps:
		return replicate.JUMPS(f, opts)
	case Dups:
		return replicate.DUPS(f, opts)
	}
	return replicate.Result{}
}

// passRunner instruments the Figure-3 passes of one function: when a
// tracer is configured, every pass is wrapped in an obs.EvPass span
// carrying the pipeline stage, iteration number, wall time, and RTL/block
// deltas. With tracing disabled (tr == nil) each pass costs one nil check.
type passRunner struct {
	tr    obs.Tracer
	f     *cfg.Func
	stage string
	iter  int
	// ver holds the verify-each state (nil unless Config.VerifyEach).
	ver *verifier
}

// verifier is the per-function verify-each state: the rule options evolve
// as the pipeline crosses its phase boundaries (regalloc forbids virtual
// registers, delay-slot filling changes the legal block shape), and
// checking stops at the first violating pass so the attribution stays
// sharp.
type verifier struct {
	cfg *Config
	// slotsAfterFill: the machine has delay slots, so the delay-slots pass
	// switches the verifier to the filled shape.
	slotsAfterFill bool
	// checkEach: run the full semantic rule set after every pass
	// (Config.VerifyEach). TV-only mode still routes its certificate
	// rejections through the verifier for attribution but skips the
	// per-pass rule sweep.
	checkEach bool
	opts      verify.Options
	// tvPending buffers translation-validation rejections found since the
	// last pass boundary; verify() attributes them to the pass that just
	// ran (only the replicate pass emits certificates) and flushes.
	tvPending  []verify.Violation
	violations []verify.Violation
	stopped    bool
}

func (p *passRunner) run(name string, pass func() bool) bool {
	if p.tr == nil && p.ver == nil {
		return pass()
	}
	if p.tr == nil {
		changed := pass()
		p.verify(name)
		return changed
	}
	rtlsBefore, blocksBefore := p.f.NumRTLs(), len(p.f.Blocks)
	start := time.Now() // det:allow nodeterminism — pass-timing telemetry only
	changed := pass()
	p.tr.Emit(&obs.Event{
		Type: obs.EvPass, Name: name, Func: p.f.Name,
		Stage: p.stage, Iter: p.iter, Changed: changed,
		RTLsBefore: rtlsBefore, RTLsAfter: p.f.NumRTLs(),
		BlocksBefore: blocksBefore, BlocksAfter: len(p.f.Blocks),
		// det:allow nodeterminism — trace-event duration, not compiler output.
		TimeNS: start.UnixNano(), DurNS: int64(time.Since(start)),
	})
	p.verify(name)
	return changed
}

// verify runs the semantic verifier after one pass (verify-each mode) and
// attributes any violations to it.
func (p *passRunner) verify(name string) {
	v := p.ver
	if v == nil {
		return
	}
	// Phase boundaries change which rules apply from here on.
	switch name {
	case "regalloc":
		v.opts.PostRegalloc = true
	case "delay-slots":
		v.opts.DelaySlots = v.slotsAfterFill
	}
	if v.cfg.corruptAfter != nil {
		v.cfg.corruptAfter(name, p.f)
	}
	if len(v.tvPending) > 0 {
		vs := v.tvPending
		v.tvPending = nil
		p.report(name, vs)
	}
	if v.stopped || !v.checkEach {
		return
	}
	p.report(name, verify.Func(p.f, v.opts))
}

// report attributes freshly-found violations to the named pass, records
// them, and stops further checks for this function.
func (p *passRunner) report(pass string, vs []verify.Violation) {
	if len(vs) == 0 {
		return
	}
	v := p.ver
	v.stopped = true
	for i := range vs {
		vs[i].Pass, vs[i].Stage, vs[i].Iter = pass, p.stage, p.iter
		if p.tr != nil {
			p.tr.Emit(&obs.Event{
				Type: obs.EvVerify, Name: pass, Func: vs[i].Func,
				Block: vs[i].Block, Rule: string(vs[i].Rule),
				Detail: vs[i].Detail, Stage: p.stage, Iter: p.iter,
			})
		}
		if v.cfg.OnViolation != nil {
			v.cfg.OnViolation(vs[i])
		}
	}
	v.violations = append(v.violations, vs...)
}

func optimizeFunc(f *cfg.Func, c Config) Stats {
	m := c.Machine
	var st Stats
	funcStart := time.Now() // det:allow nodeterminism — phase-timing telemetry only
	pr := &passRunner{tr: c.Tracer, f: f, stage: "prologue"}
	if c.VerifyEach || c.TV {
		pr.ver = &verifier{
			cfg:            &c,
			slotsAfterFill: m.DelaySlots,
			checkEach:      c.VerifyEach,
			// Mid-pipeline, stranded-but-unreachable blocks are legitimate:
			// replication and branch chaining leave them for the next
			// dead-code pass. The final post-pipeline check re-enables the
			// rule.
			opts: verify.Options{SkipUnreachable: true},
		}
	}
	if c.TV {
		// Validate each certificate synchronously, in exactly the state
		// the engine left behind (later edits may rearrange the layout the
		// certificate describes). Rejections buffer in the verifier and
		// are attributed at the pass boundary.
		userHook := c.Replication.OnCertificate
		ver := pr.ver
		c.Replication.OnCertificate = func(fn *cfg.Func, cert *tv.Certificate) {
			if userHook != nil {
				userHook(fn, cert)
			}
			if c.corruptCert != nil {
				c.corruptCert(fn, cert)
			}
			if ver.stopped {
				return
			}
			ver.tvPending = append(ver.tvPending, tv.Validate(fn, cert)...)
		}
	}
	replicateHere := func() bool {
		r := replicatePass(f, c)
		st.Replication.Merge(r)
		return r.Changed
	}

	// Shape the naive front-end RTLs for the target machine.
	pr.run("legalize", func() bool { machine.Legalize(f, m); return false })

	// Figure 3, prologue: branch chaining; dead code elimination; reorder
	// basic blocks to minimize jumps; code replication; dead code
	// elimination.
	pr.run("branch-chaining", func() bool { return opt.BranchChaining(f) })
	pr.run("dead-code", func() bool { return opt.DeadCodeElimination(f) })
	pr.run("reorder-blocks", func() bool { return cfg.ReorderBlocks(f) })
	pr.run("replicate", replicateHere)
	pr.run("dead-code", func() bool { return opt.DeadCodeElimination(f) })

	// Register assignment: promote scalars to registers.
	pr.run("promote-locals", func() bool { return opt.PromoteLocals(f) })

	// Figure 3, main do-while loop. Replication only counts as progress
	// while it still lowers the function's unconditional-jump count —
	// interactions are otherwise "treated conservatively to avoid the
	// potential of replication ad infinitum" (§5.2).
	iters := 0
	replicating := true
	pr.stage = "loop"
	for iters < c.maxIterations() {
		iters++
		pr.iter = iters
		changed := false
		changed = pr.run("cse", func() bool { return opt.CommonSubexpressions(f, m) }) || changed
		changed = pr.run("dead-variables", func() bool { return opt.DeadVariableElimination(f) }) || changed
		changed = pr.run("code-motion", func() bool { return opt.CodeMotion(f) }) || changed
		changed = pr.run("strength-reduction", func() bool { return opt.StrengthReduction(f) }) || changed
		changed = pr.run("fold-constants", func() bool { return opt.FoldConstants(f) }) || changed
		changed = pr.run("instruction-selection", func() bool { return opt.InstructionSelection(f, m) }) || changed
		changed = pr.run("branch-chaining", func() bool { return opt.BranchChaining(f) }) || changed
		changed = pr.run("fold-branches", func() bool { return opt.FoldBranches(f) }) || changed
		changed = pr.run("delete-jumps-to-next", func() bool { return cfg.DeleteJumpsToNext(f) }) || changed
		if replicating {
			before := progressMetric(f, c.Level)
			foldsBefore := st.Replication.BranchesFolded
			repChanged := pr.run("replicate", replicateHere)
			pr.run("dead-code", func() bool { return opt.DeadCodeElimination(f) })
			after := progressMetric(f, c.Level)
			if after < before || st.Replication.BranchesFolded > foldsBefore {
				changed = true
			} else if repChanged {
				// Replication churned without net progress: stop invoking
				// it for this function.
				replicating = false
			}
		}
		changed = pr.run("dead-code", func() bool { return opt.DeadCodeElimination(f) }) || changed
		changed = pr.run("merge-blocks", func() bool { return opt.MergeBlocks(f) }) || changed
		if !changed {
			break
		}
	}
	st.Iterations = iters

	pr.stage, pr.iter = "finish", 0

	// Safety: anything an optimization left in a machine-illegal shape is
	// re-expanded (idempotent for already-legal code).
	pr.run("legalize", func() bool { machine.Legalize(f, m); return false })

	// Machines with displacement-dependent encodings (the x86): rewrite
	// long equality compare chains into jump tables before register
	// allocation, while the selector is still a virtual register.
	if m.Encoder != nil {
		pr.run("lower-jump-tables", func() bool { return encode.LowerJumpTables(f, m) })
	}

	// Register allocation by colouring, then final cleanups.
	pr.run("regalloc", func() bool { opt.AllocateRegisters(f, m); return false })
	pr.run("dead-variables", func() bool { return opt.DeadVariableElimination(f) })
	pr.run("branch-chaining", func() bool { return opt.BranchChaining(f) })
	pr.run("delete-jumps-to-next", func() bool { return cfg.DeleteJumpsToNext(f) })
	pr.run("dead-code", func() bool { return opt.DeadCodeElimination(f) })

	// Filling of delay slots for RISCs: the final pass.
	pr.run("delay-slots", func() bool {
		st.SlotsFilled, st.SlotsNops = opt.FillDelaySlots(f, m)
		return st.SlotsFilled+st.SlotsNops > 0
	})

	if pr.ver != nil {
		// Whole-function epilogue check: the per-pass checks tolerate
		// unreachable blocks (the next dead-code pass reclaims them), but
		// nothing runs after this point, so the final code must not carry
		// any. TV-only mode has no epilogue obligation — certificates were
		// all discharged at pass boundaries.
		if pr.ver.checkEach && !pr.ver.stopped {
			pr.ver.opts.SkipUnreachable = false
			pr.report("post-pipeline", verify.Func(f, pr.ver.opts))
		}
		st.Verify = pr.ver.violations
	}

	if c.Tracer != nil {
		c.Tracer.Emit(&obs.Event{
			Type: obs.EvPhase, Name: "optimize-func", Func: f.Name,
			Iter: iters, RTLsAfter: f.NumRTLs(), BlocksAfter: len(f.Blocks),
			// det:allow nodeterminism — trace-event duration, not compiler output.
			TimeNS: funcStart.UnixNano(), DurNS: int64(time.Since(funcStart)),
		})
	}
	return st
}

// staticJumpCount counts unconditional direct jumps in the function.
func staticJumpCount(f *cfg.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Jmp {
				n++
			}
		}
	}
	return n
}

// progressMetric is the static count replication must keep lowering for
// the Figure-3 loop to keep invoking it: the unconditional-jump count
// (§5.2). DUPS uses the same metric so its jump-replication phase walks
// the identical trajectory the JUMPS level would — a fold's progress is
// dynamic, invisible to any static count, so the loop in optimizeFunc
// credits it from the BranchesFolded delta instead.
func progressMetric(f *cfg.Func, l Level) int {
	return staticJumpCount(f)
}

// count fills the static instruction statistics.
func count(p *cfg.Program, st *Stats) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for ii := range b.Insts {
				st.StaticInsts++
				switch b.Insts[ii].Kind {
				case rtl.Jmp:
					st.StaticJumps++
				case rtl.IJmp:
					st.StaticJumps++
					st.StaticIndirect++
				case rtl.Br:
					st.StaticBranches++
				case rtl.Nop:
					st.StaticNops++
				}
			}
		}
	}
}
