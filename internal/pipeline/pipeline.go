// Package pipeline drives the optimization phases in the order of the
// paper's Figure 3, parameterized by the optimization level under study:
//
//	SIMPLE — the standard optimizations only,
//	LOOPS  — plus conventional loop-condition replication,
//	JUMPS  — plus generalized code replication.
package pipeline

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/replicate"
	"repro/internal/rtl"
)

// Level is the optimization level of the paper's experiments.
type Level uint8

// Optimization levels.
const (
	Simple Level = iota
	Loops
	Jumps
)

func (l Level) String() string {
	switch l {
	case Simple:
		return "SIMPLE"
	case Loops:
		return "LOOPS"
	case Jumps:
		return "JUMPS"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParseLevel converts a string (any case) to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "simple", "SIMPLE":
		return Simple, nil
	case "loops", "LOOPS":
		return Loops, nil
	case "jumps", "JUMPS":
		return Jumps, nil
	}
	return Simple, fmt.Errorf("pipeline: unknown level %q (want simple, loops or jumps)", s)
}

// Config selects the machine, level and replication options.
type Config struct {
	Machine *machine.Machine
	Level   Level
	// Replication tunes the JUMPS algorithm (ignored for other levels).
	Replication replicate.Options
	// MaxIterations caps the do-while loop of Figure 3 (0 = default 30).
	MaxIterations int
}

func (c Config) maxIterations() int {
	if c.MaxIterations == 0 {
		return 30
	}
	return c.MaxIterations
}

// Stats summarizes what the pipeline did.
type Stats struct {
	// StaticInsts is the final static instruction count.
	StaticInsts int
	// StaticJumps / StaticBranches / StaticNops count final unconditional
	// jumps (incl. indirect), conditional branches and no-ops.
	StaticJumps    int
	StaticIndirect int
	StaticBranches int
	StaticNops     int
	// SlotsFilled / SlotsNops report delay-slot filling (SPARC only).
	SlotsFilled int
	SlotsNops   int
	// Iterations is the number of Figure-3 loop iterations used.
	Iterations int
}

// Optimize runs the full Figure-3 pipeline over every function of the
// program and returns static statistics of the final code.
func Optimize(p *cfg.Program, c Config) Stats {
	var st Stats
	for _, f := range p.Funcs {
		st0 := optimizeFunc(f, c)
		st.SlotsFilled += st0.SlotsFilled
		st.SlotsNops += st0.SlotsNops
		if st0.Iterations > st.Iterations {
			st.Iterations = st0.Iterations
		}
	}
	count(p, &st)
	return st
}

// replicatePass runs the configured replication algorithm.
func replicatePass(f *cfg.Func, c Config) bool {
	switch c.Level {
	case Loops:
		return replicate.LOOPS(f)
	case Jumps:
		return replicate.JUMPS(f, c.Replication)
	}
	return false
}

func optimizeFunc(f *cfg.Func, c Config) Stats {
	m := c.Machine
	var st Stats

	// Shape the naive front-end RTLs for the target machine.
	machine.Legalize(f, m)

	// Figure 3, prologue: branch chaining; dead code elimination; reorder
	// basic blocks to minimize jumps; code replication; dead code
	// elimination.
	opt.BranchChaining(f)
	opt.DeadCodeElimination(f)
	cfg.ReorderBlocks(f)
	replicatePass(f, c)
	opt.DeadCodeElimination(f)

	// Register assignment: promote scalars to registers.
	opt.PromoteLocals(f)

	// Figure 3, main do-while loop. Replication only counts as progress
	// while it still lowers the function's unconditional-jump count —
	// interactions are otherwise "treated conservatively to avoid the
	// potential of replication ad infinitum" (§5.2).
	iters := 0
	replicating := true
	for iters < c.maxIterations() {
		iters++
		changed := false
		changed = opt.CommonSubexpressions(f, m) || changed
		changed = opt.DeadVariableElimination(f) || changed
		changed = opt.CodeMotion(f) || changed
		changed = opt.StrengthReduction(f) || changed
		changed = opt.FoldConstants(f) || changed
		changed = opt.InstructionSelection(f, m) || changed
		changed = opt.BranchChaining(f) || changed
		changed = opt.FoldBranches(f) || changed
		changed = cfg.DeleteJumpsToNext(f) || changed
		if replicating {
			before := staticJumpCount(f)
			repChanged := replicatePass(f, c)
			opt.DeadCodeElimination(f)
			after := staticJumpCount(f)
			if after < before {
				changed = true
			} else if repChanged {
				// Replication churned without net progress: stop invoking
				// it for this function.
				replicating = false
			}
		}
		changed = opt.DeadCodeElimination(f) || changed
		changed = opt.MergeBlocks(f) || changed
		if !changed {
			break
		}
	}
	st.Iterations = iters

	// Safety: anything an optimization left in a machine-illegal shape is
	// re-expanded (idempotent for already-legal code).
	machine.Legalize(f, m)

	// Register allocation by colouring, then final cleanups.
	opt.AllocateRegisters(f, m)
	opt.DeadVariableElimination(f)
	opt.BranchChaining(f)
	cfg.DeleteJumpsToNext(f)
	opt.DeadCodeElimination(f)

	// Filling of delay slots for RISCs: the final pass.
	st.SlotsFilled, st.SlotsNops = opt.FillDelaySlots(f, m)
	return st
}

// staticJumpCount counts unconditional direct jumps in the function.
func staticJumpCount(f *cfg.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Jmp {
				n++
			}
		}
	}
	return n
}

// count fills the static instruction statistics.
func count(p *cfg.Program, st *Stats) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for ii := range b.Insts {
				st.StaticInsts++
				switch b.Insts[ii].Kind {
				case rtl.Jmp:
					st.StaticJumps++
				case rtl.IJmp:
					st.StaticJumps++
					st.StaticIndirect++
				case rtl.Br:
					st.StaticBranches++
				case rtl.Nop:
					st.StaticNops++
				}
			}
		}
	}
}
