package pipeline_test

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/replicate"
	"repro/internal/vm"
)

// programs exercises every front-end construct; each entry is differential
// tested: the optimized output at every level on every machine must match
// the unoptimized run.
var programs = []struct {
	name  string
	src   string
	input string
}{
	{"sumloop", `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 100; i++)
		s += i;
	printint(s);
	return 0;
}`, ""},
	{"midloopexit", `
int x[64];
int n = 20;
int main() {
	int i;
	for (i = 0; i < 64; i++)
		x[i] = i * 3;
	i = 1;
	while (1) {
		if (i >= n)
			break;
		x[i-1] = x[i];
		i++;
	}
	for (i = 0; i < 21; i++) {
		printint(x[i]);
		putchar(' ');
	}
	return 0;
}`, ""},
	{"ifelse", `
int f(int i, int n) {
	if (i > 5)
		i = i / n;
	else
		i = i * n;
	return i;
}
int main() {
	int i;
	for (i = 0; i < 12; i++) {
		printint(f(i, 3));
		putchar(' ');
	}
	return 0;
}`, ""},
	{"gcdfib", `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int gcd(int a, int b) {
	while (b != 0) { int t; t = a % b; a = b; b = t; }
	return a;
}
int main() {
	printint(fib(12)); putchar(' ');
	printint(gcd(462, 1071));
	return 0;
}`, ""},
	{"matrix", `
int a[8][8], b[8][8], c[8][8];
int main() {
	int i, j, k, s;
	for (i = 0; i < 8; i++)
		for (j = 0; j < 8; j++) {
			a[i][j] = i + j;
			b[i][j] = i - j;
		}
	for (i = 0; i < 8; i++)
		for (j = 0; j < 8; j++) {
			s = 0;
			for (k = 0; k < 8; k++)
				s += a[i][k] * b[k][j];
			c[i][j] = s;
		}
	s = 0;
	for (i = 0; i < 8; i++)
		s += c[i][i];
	printint(s);
	return 0;
}`, ""},
	{"switchy", `
int classify(int c) {
	switch (c) {
	case ' ': case '\t': case '\n': return 0;
	case '0': case '1': case '2': case '3': case '4':
	case '5': case '6': case '7': case '8': case '9': return 1;
	default: return 2;
	}
}
int main() {
	int c, words, digits, others;
	words = 0; digits = 0; others = 0;
	while ((c = getchar()) != -1) {
		switch (classify(c)) {
		case 0: words++; break;
		case 1: digits++; break;
		default: others++;
		}
	}
	printint(words); putchar(' ');
	printint(digits); putchar(' ');
	printint(others);
	return 0;
}`, "ab 12 cd\t34\n99 zz"},
	{"gotoloop", `
int main() {
	int i, j, s;
	s = 0;
	i = 0;
top:
	j = 0;
inner:
	s += i * j;
	j++;
	if (j < 5) goto inner;
	i++;
	if (i < 5) goto top;
	printint(s);
	return 0;
}`, ""},
	{"pointers", `
int buf[32];
int sum(int *p, int n) {
	int s;
	s = 0;
	while (n-- > 0)
		s += *p++;
	return s;
}
int main() {
	int i;
	for (i = 0; i < 32; i++)
		buf[i] = i * i - 3;
	printint(sum(buf, 32)); putchar(' ');
	printint(sum(&buf[8], 4));
	return 0;
}`, ""},
	{"shortcircuit", `
int calls = 0;
int noisy(int v) { calls++; return v; }
int main() {
	int a;
	a = 0;
	if (noisy(0) && noisy(1)) a = 1;
	if (noisy(1) || noisy(0)) a += 2;
	if (noisy(1) && noisy(1) && noisy(0)) a += 4;
	printint(a); putchar(' ');
	printint(calls);
	return 0;
}`, ""},
	{"strings", `
int length(char *s) {
	int n;
	n = 0;
	while (s[n] != '\0') n++;
	return n;
}
int main() {
	char buf[32];
	int i, n;
	char *msg = "replication";
	n = length(msg);
	for (i = 0; i < n; i++)
		buf[i] = msg[n - 1 - i];
	buf[n] = '\0';
	printstr(buf); putchar(' ');
	printint(n);
	return 0;
}`, ""},
	{"ternary", `
int main() {
	int i, s;
	s = 0;
	for (i = -5; i < 6; i++)
		s += i < 0 ? -i : i * 2;
	printint(s);
	return 0;
}`, ""},
	{"dowhile", `
int main() {
	int i, n, steps;
	n = 27; steps = 0;
	do {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps++;
	} while (n != 1);
	printint(steps);
	i = 10;
	do { i--; } while (i);
	putchar(' ');
	printint(i);
	return 0;
}`, ""},
}

func levels() []pipeline.Level {
	return []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps}
}

func machines() []*machine.Machine {
	return machine.All()
}

// TestDifferential checks that every optimization level on every machine
// preserves program behaviour.
func TestDifferential(t *testing.T) {
	for _, pr := range programs {
		unit, err := mcc.Parse(pr.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", pr.name, err)
		}
		ref, err := mcc.CompileUnit(unit)
		if err != nil {
			t.Fatalf("%s: compile: %v", pr.name, err)
		}
		want, err := vm.Run(ref, vm.Config{Input: []byte(pr.input)})
		if err != nil {
			t.Fatalf("%s: reference run: %v", pr.name, err)
		}
		for _, m := range machines() {
			for _, lv := range levels() {
				t.Run(fmt.Sprintf("%s/%s/%s", pr.name, m.Name, lv), func(t *testing.T) {
					prog, err := mcc.Compile(pr.src)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
					got, err := vm.Run(prog, vm.Config{Input: []byte(pr.input)})
					if err != nil {
						t.Fatalf("optimized run: %v\n%s", err, prog)
					}
					if string(got.Output) != string(want.Output) {
						t.Fatalf("output mismatch:\n got %q\nwant %q", got.Output, want.Output)
					}
					if got.ExitCode != want.ExitCode {
						t.Fatalf("exit code %d, want %d", got.ExitCode, want.ExitCode)
					}
				})
			}
		}
	}
}

// TestJumpsRemovesUncondJumps checks the paper's headline claim on this
// test set: after JUMPS, executed unconditional jumps all but vanish, while
// SIMPLE retains them.
func TestJumpsRemovesUncondJumps(t *testing.T) {
	for _, pr := range programs {
		for _, m := range machines() {
			simple, err := mcc.Compile(pr.src)
			if err != nil {
				t.Fatalf("%s: %v", pr.name, err)
			}
			pipeline.Optimize(simple, pipeline.Config{Machine: m, Level: pipeline.Simple})
			rs, err := vm.Run(simple, vm.Config{Input: []byte(pr.input)})
			if err != nil {
				t.Fatalf("%s simple: %v", pr.name, err)
			}
			jumps, err := mcc.Compile(pr.src)
			if err != nil {
				t.Fatalf("%s: %v", pr.name, err)
			}
			pipeline.Optimize(jumps, pipeline.Config{Machine: m, Level: pipeline.Jumps})
			rj, err := vm.Run(jumps, vm.Config{Input: []byte(pr.input)})
			if err != nil {
				t.Fatalf("%s jumps: %v", pr.name, err)
			}
			sj := rs.Counts.UncondJumps - rs.Counts.IndirectJumps
			jj := rj.Counts.UncondJumps - rj.Counts.IndirectJumps
			if jj > sj {
				t.Errorf("%s/%s: JUMPS executed more direct jumps (%d) than SIMPLE (%d)",
					pr.name, m.Name, jj, sj)
			}
			// Squashed annulled delay slots count as executed no-ops, so a
			// sub-percent wobble on tiny programs is expected; anything
			// beyond 1% is a real regression.
			if float64(rj.Counts.Exec) > 1.01*float64(rs.Counts.Exec) {
				t.Errorf("%s/%s: JUMPS executed more instructions (%d) than SIMPLE (%d)",
					pr.name, m.Name, rj.Counts.Exec, rs.Counts.Exec)
			}
		}
	}
}

// TestLevelsWithOptions exercises the §6 extensions: a replication length
// cap and indirect-jump termination keep the program correct.
func TestLevelsWithOptions(t *testing.T) {
	opts := []replicate.Options{
		{MaxSeqRTLs: 4},
		{AllowIndirect: true},
		{Heuristic: replicate.HeurReturns},
		{Heuristic: replicate.HeurLoops},
		{Heuristic: replicate.HeurFrequency},
		{NoLoopCompletion: true},
	}
	for _, pr := range programs {
		ref, err := mcc.Compile(pr.src)
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		want, err := vm.Run(ref, vm.Config{Input: []byte(pr.input)})
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		for oi, o := range opts {
			prog, err := mcc.Compile(pr.src)
			if err != nil {
				t.Fatalf("%s: %v", pr.name, err)
			}
			pipeline.Optimize(prog, pipeline.Config{
				Machine: machine.SPARC, Level: pipeline.Jumps, Replication: o,
			})
			got, err := vm.Run(prog, vm.Config{Input: []byte(pr.input)})
			if err != nil {
				t.Fatalf("%s opts[%d]: %v", pr.name, oi, err)
			}
			if string(got.Output) != string(want.Output) {
				t.Errorf("%s opts[%d]: output %q, want %q", pr.name, oi, got.Output, want.Output)
			}
		}
	}
}
