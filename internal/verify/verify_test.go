package verify_test

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/rtl"
	"repro/internal/verify"
)

// v returns the operand form of virtual register n.
func v(n int) rtl.Operand { return rtl.R(rtl.VRegBase + rtl.Reg(n)) }

// TestRules exercises every verifier rule with a minimal hand-built
// offending function and asserts both the rule id and the blamed block.
func TestRules(t *testing.T) {
	cases := []struct {
		name      string
		opts      verify.Options
		build     func(f *cfg.Func)
		wantRule  verify.Rule
		wantBlock string
	}{
		{
			name: "structure/dangling-target",
			build: func(f *cfg.Func) {
				b := f.NewBlock()
				b.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: 99}}
			},
			wantRule:  verify.RuleStructure,
			wantBlock: "",
		},
		{
			name: "unreachable-block",
			build: func(f *cfg.Func) {
				b0 := f.NewBlock()
				b0.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
				b1 := f.NewBlock()
				b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
			},
			wantRule:  verify.RuleUnreachable,
			wantBlock: "L1",
		},
		{
			name: "cc-pairing/branch-without-compare",
			build: func(f *cfg.Func) {
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b0.Insts = []rtl.Inst{{Kind: rtl.Br, BrRel: rtl.Eq, Target: b1.Label}}
				b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
			},
			wantRule:  verify.RuleCCPairing,
			wantBlock: "L0",
		},
		{
			name: "cc-pairing/call-clobbers-cc",
			build: func(f *cfg.Func) {
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b0.Insts = []rtl.Inst{
					{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)},
					{Kind: rtl.Call, Sym: "g", Dst: rtl.None()},
					{Kind: rtl.Br, BrRel: rtl.Eq, Target: b1.Label},
				}
				b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
			},
			wantRule:  verify.RuleCCPairing,
			wantBlock: "L0",
		},
		{
			name: "delay-slot/annul-before-filling",
			build: func(f *cfg.Func) {
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b0.Insts = []rtl.Inst{
					{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)},
					{Kind: rtl.Br, BrRel: rtl.Eq, Target: b1.Label, Annul: true},
				}
				b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
			},
			wantRule:  verify.RuleDelaySlot,
			wantBlock: "L0",
		},
		{
			name: "delay-slot/annul-on-non-branch",
			build: func(f *cfg.Func) {
				b := f.NewBlock()
				b.Insts = []rtl.Inst{
					{Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.Imm(1), Annul: true},
					{Kind: rtl.Ret, Src: rtl.R(rtl.RV)},
				}
			},
			wantRule:  verify.RuleDelaySlot,
			wantBlock: "L0",
		},
		{
			name: "delay-slot/illegal-slot-instruction",
			opts: verify.Options{DelaySlots: true},
			build: func(f *cfg.Func) {
				b := f.NewBlock()
				b.Insts = []rtl.Inst{
					{Kind: rtl.Ret, Src: rtl.None()},
					{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)},
				}
			},
			wantRule:  verify.RuleDelaySlot,
			wantBlock: "L0",
		},
		{
			name: "virtual-after-regalloc",
			opts: verify.Options{PostRegalloc: true},
			build: func(f *cfg.Func) {
				b := f.NewBlock()
				b.Insts = []rtl.Inst{
					{Kind: rtl.Move, Dst: v(0), Src: rtl.Imm(1)},
					{Kind: rtl.Ret, Src: rtl.None()},
				}
			},
			wantRule:  verify.RuleVirtualReg,
			wantBlock: "L0",
		},
		{
			name: "dead-reg-use",
			opts: verify.Options{PostRegalloc: true},
			build: func(f *cfg.Func) {
				b := f.NewBlock()
				// r3 is read but never defined: live at the entry, the
				// signature of the PR 4 spill-victim coloring bug.
				b.Insts = []rtl.Inst{
					{Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: rtl.R(rtl.FirstAlloc)},
					{Kind: rtl.Ret, Src: rtl.R(rtl.RV)},
				}
			},
			wantRule:  verify.RuleDeadReg,
			wantBlock: "L0",
		},
		{
			name: "use-before-def",
			build: func(f *cfg.Func) {
				b0 := f.NewBlock() // L0: branch to L2 or fall into L1
				b1 := f.NewBlock() // L1: defines v0
				b2 := f.NewBlock() // L2: does not define v0
				b3 := f.NewBlock() // L3: reads v0 — undefined via L2
				b0.Insts = []rtl.Inst{
					{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)},
					{Kind: rtl.Br, BrRel: rtl.Eq, Target: b2.Label},
				}
				b1.Insts = []rtl.Inst{
					{Kind: rtl.Move, Dst: v(0), Src: rtl.Imm(5)},
					{Kind: rtl.Jmp, Target: b3.Label},
				}
				b2.Insts = []rtl.Inst{{Kind: rtl.Nop}}
				b3.Insts = []rtl.Inst{
					{Kind: rtl.Move, Dst: rtl.R(rtl.RV), Src: v(0)},
					{Kind: rtl.Ret, Src: rtl.R(rtl.RV)},
				}
			},
			wantRule:  verify.RuleUseBeforeDef,
			wantBlock: "L3",
		},
		{
			name: "irreducible-cfg",
			build: func(f *cfg.Func) {
				b0 := f.NewBlock()
				b1 := f.NewBlock()
				b2 := f.NewBlock()
				// L1 and L2 form a cycle entered at both ends: no single
				// header dominates it, so the graph is irreducible.
				b0.Insts = []rtl.Inst{
					{Kind: rtl.Cmp, Src: rtl.Imm(1), Src2: rtl.Imm(2)},
					{Kind: rtl.Br, BrRel: rtl.Eq, Target: b2.Label},
				}
				b1.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b2.Label}}
				b2.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
			},
			wantRule:  verify.RuleIrreducible,
			wantBlock: "",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := cfg.NewFunc("t", 0)
			c.build(f)
			vs := verify.Func(f, c.opts)
			for _, vi := range vs {
				if vi.Rule == c.wantRule && vi.Block == c.wantBlock {
					return
				}
			}
			t.Errorf("violations %v missing rule %q on block %q", vs, c.wantRule, c.wantBlock)
		})
	}
}

// TestStructureGatesSemanticRules checks that a structurally broken
// function reports only the structure violation: the semantic analyses
// assume well-formed blocks and must not run (or panic) on garbage.
func TestStructureGatesSemanticRules(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b := f.NewBlock()
	b.Insts = []rtl.Inst{
		{Kind: rtl.Jmp, Target: 99},            // dangling target
		{Kind: rtl.Move, Dst: v(0), Src: v(1)}, // code after CTI, use-before-def
	}
	vs := verify.Func(f, verify.Options{PostRegalloc: true})
	if len(vs) != 1 || vs[0].Rule != verify.RuleStructure {
		t.Errorf("want exactly one structure violation, got %v", vs)
	}
}

// TestMaxViolations checks the per-function findings cap.
func TestMaxViolations(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	for i := 0; i < 20; i++ {
		b := f.NewBlock()
		b.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	}
	vs := verify.Func(f, verify.Options{})
	if len(vs) != 8 {
		t.Errorf("default cap: got %d violations, want 8", len(vs))
	}
	vs = verify.Func(f, verify.Options{MaxViolations: 3})
	if len(vs) != 3 {
		t.Errorf("explicit cap: got %d violations, want 3", len(vs))
	}
}

// TestError checks the violation-list folding.
func TestError(t *testing.T) {
	if err := verify.Error(nil); err != nil {
		t.Errorf("Error(nil) = %v, want nil", err)
	}
	one := verify.Violation{Rule: verify.RuleDeadReg, Func: "f", Block: "L0", Detail: "d"}
	if err := verify.Error([]verify.Violation{one}); err == nil ||
		!strings.Contains(err.Error(), "dead-reg-use") {
		t.Errorf("single violation error = %v", err)
	}
	two := []verify.Violation{one, {Rule: verify.RuleCCPairing, Func: "f", Detail: "d2"}}
	if err := verify.Error(two); err == nil || !strings.Contains(err.Error(), "and 1 more") {
		t.Errorf("two-violation error = %v", err)
	}
}

// TestViolationString checks the diagnostic format, pass attribution
// included.
func TestViolationString(t *testing.T) {
	vi := verify.Violation{
		Rule: verify.RuleUseBeforeDef, Func: "main", Block: "L3",
		Pass: "cse", Iter: 2, Detail: "oops",
	}
	want := `verify: main: block L3: use-before-def: oops (after pass "cse", iteration 2)`
	if got := vi.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestCleanPipelineOutput is the positive control: the optimizer's output
// for a real program must satisfy every rule on both machines at every
// level.
func TestCleanPipelineOutput(t *testing.T) {
	src := `
int g[16];
int fib(int n) { if (n <= 1) return n; return fib(n-1) + fib(n-2); }
int main() {
	int i;
	for (i = 0; i < 16; i++) g[i] = fib(i);
	while (i > 0) { i--; putchar(48 + g[i] % 10); }
	return 0;
}`
	for _, m := range machine.All() {
		for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
			prog, err := mcc.Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
			vs := verify.Program(prog, verify.Options{
				DelaySlots:   m.DelaySlots,
				PostRegalloc: true,
			})
			if len(vs) != 0 {
				t.Errorf("%s/%s: %v", m.Name, lv, vs)
			}
		}
	}
}
