package verify

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// checkUseBeforeDef flags instructions that read a virtual register not
// defined on every path from the entry — a must-be-defined forward dataflow
// (the dual of reaching definitions: a use is flagged only when NO
// definition reaches it on some path, so conditionally-defined temporaries
// guarded by the same condition never false-positive... they do not arise:
// every pass that introduces a virtual register, promotion, CSE and
// strength reduction, makes its definition dominate every use, so a
// violation here means a pass moved or deleted a def out from under a use).
//
// Machine registers are exempt: before allocation the frame/stack/result
// registers are legitimately read without a visible definition, and after
// allocation checkDeadRegs covers them precisely via liveness. The
// condition code is exempt too — checkCCPairing enforces the stricter
// same-block discipline.
func checkUseBeforeDef(f *cfg.Func, add addFunc, full func() bool) {
	e := cfg.ComputeEdges(f)
	n := len(f.Blocks)

	// defs[i]: virtual registers defined anywhere in block i.
	defs := make([]map[rtl.Reg]bool, n)
	for i, b := range f.Blocks {
		s := map[rtl.Reg]bool{}
		for ii := range b.Insts {
			if d := b.Insts[ii].DefReg(); d.IsVirtual() {
				s[d] = true
			}
		}
		defs[i] = s
	}

	// in[i]: virtual registers defined on EVERY path from the entry to the
	// start of block i; nil = not yet known (optimistic top). The entry's
	// in-set is the empty set regardless of any back edge into it.
	in := make([]map[rtl.Reg]bool, n)
	in[0] = map[rtl.Reg]bool{}
	out := func(i int) map[rtl.Reg]bool {
		if in[i] == nil {
			return nil
		}
		o := make(map[rtl.Reg]bool, len(in[i])+len(defs[i]))
		for r := range in[i] {
			o[r] = true
		}
		for r := range defs[i] {
			o[r] = true
		}
		return o
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < n; i++ {
			var cur map[rtl.Reg]bool
			for _, p := range e.Preds[i] {
				po := out(p.Index)
				if po == nil {
					continue // unknown predecessor: stay optimistic
				}
				if cur == nil {
					cur = po
					continue
				}
				for r := range cur {
					if !po[r] {
						delete(cur, r)
					}
				}
			}
			if cur == nil || (in[i] != nil && equalSets(cur, in[i])) {
				continue
			}
			in[i] = cur
			changed = true
		}
	}

	// Linear scan of every reached block against its must-defined set.
	var scratch []rtl.Reg
	for i, b := range f.Blocks {
		if in[i] == nil {
			continue // unreachable: its own rule reports it
		}
		cur := make(map[rtl.Reg]bool, len(in[i]))
		for r := range in[i] {
			cur[r] = true
		}
		for ii := range b.Insts {
			if full() {
				return
			}
			inst := &b.Insts[ii]
			scratch = inst.UsedRegs(scratch[:0])
			for _, r := range scratch {
				if r.IsVirtual() && !cur[r] {
					add(RuleUseBeforeDef, b.Label.String(),
						"%q reads %s, which is not defined on every path from the entry",
						inst.String(), r)
				}
			}
			if d := inst.DefReg(); d.IsVirtual() {
				cur[d] = true
			}
		}
	}
}

// equalSets reports whether a and b hold the same registers (b may be nil).
func equalSets(a, b map[rtl.Reg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}
