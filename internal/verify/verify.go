// Package verify is the semantic IR verifier: a set of rules that go
// beyond the structural checks of cfg.Validate and hold for the output of
// every well-behaved optimization pass. It is the reproduction's analogue
// of LLVM's -verify-each machine verifier: the pipeline can run it after
// every pass and attribute the first violation to the pass that introduced
// it (see pipeline.Config.VerifyEach).
//
// The rules, in checking order:
//
//	structure              cfg.Validate: targets resolve, CTIs terminate
//	                       blocks, delay-slot shape, well-formed operands
//	unreachable-block      every block is reachable from the entry
//	cc-pairing             every conditional branch is preceded by a
//	                       compare in its own block, with no intervening
//	                       call (calls clobber the condition code)
//	delay-slot             after delay-slot filling: only Move/Bin/Un/Nop
//	                       in a slot, the annul bit only on branches
//	virtual-after-regalloc no virtual register survives register allocation
//	dead-reg-use           after register allocation: no allocatable
//	                       register is live at function entry (a register
//	                       read before any definition)
//	use-before-def         no instruction reads a virtual register that is
//	                       not defined on every path from the entry
//	irreducible-cfg        the flow graph stays reducible (the property
//	                       replication's step-6 rollback exists to protect)
//	translation-validation a duplication certificate failed cut-point
//	                       bisimulation checking (emitted by internal/tv,
//	                       not by Func/Program — see pipeline.Config.TV)
//
// A structural violation stops the remaining rules for that function: the
// semantic analyses assume resolvable targets and well-formed blocks.
package verify

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/opt"
	"repro/internal/rtl"
)

// Rule identifies one verifier rule in diagnostics and trace events.
type Rule string

// The verifier's rules. The constant value is the stable rule id used in
// diagnostics, obs trace events, and the mccd wire format.
const (
	RuleStructure    Rule = "structure"
	RuleUnreachable  Rule = "unreachable-block"
	RuleCCPairing    Rule = "cc-pairing"
	RuleDelaySlot    Rule = "delay-slot"
	RuleVirtualReg   Rule = "virtual-after-regalloc"
	RuleDeadReg      Rule = "dead-reg-use"
	RuleUseBeforeDef Rule = "use-before-def"
	RuleIrreducible  Rule = "irreducible-cfg"
	// RuleTranslation is reported by the translation validator
	// (internal/tv) when a duplication certificate fails cut-point
	// bisimulation checking; Func/Program never emit it themselves.
	RuleTranslation Rule = "translation-validation"
)

// Violation is one verifier finding. Pass, Stage and Iter are filled by
// verify-each mode (pipeline attribution); plain Func/Program calls leave
// them empty.
type Violation struct {
	Rule  Rule   `json:"rule"`
	Func  string `json:"func"`
	Block string `json:"block,omitempty"`
	// Pass, Stage and Iter attribute the violation to the pipeline pass
	// after which it first appeared ("" when the verifier ran standalone).
	Pass   string `json:"pass,omitempty"`
	Stage  string `json:"stage,omitempty"`
	Iter   int    `json:"iter,omitempty"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	s := "verify: " + v.Func
	if v.Block != "" {
		s += ": block " + v.Block
	}
	s += fmt.Sprintf(": %s: %s", v.Rule, v.Detail)
	if v.Pass != "" {
		s += fmt.Sprintf(" (after pass %q", v.Pass)
		if v.Iter > 0 {
			s += fmt.Sprintf(", iteration %d", v.Iter)
		}
		s += ")"
	}
	return s
}

// Error folds a violation list into a single error: nil when empty, the
// first violation's text (with a count of the rest) otherwise.
func Error(vs []Violation) error {
	switch len(vs) {
	case 0:
		return nil
	case 1:
		return errors.New(vs[0].String())
	}
	return fmt.Errorf("%s (and %d more)", vs[0], len(vs)-1)
}

// Options selects which rules apply; the zero value checks an unoptimized
// (pre-regalloc, no delay slots) function.
type Options struct {
	// DelaySlots marks code in filled-delay-slot shape (after the
	// delay-slots pass on a machine that has them): the structural check
	// then requires one slot instruction per CTI and the delay-slot rule
	// checks slot legality.
	DelaySlots bool
	// PostRegalloc marks code after register allocation: virtual registers
	// are forbidden and the dead-register rule applies.
	PostRegalloc bool
	// SkipUnreachable disables the unreachable-block rule. Verify-each mode
	// sets it for mid-pipeline checks: replication and branch chaining
	// legitimately strand blocks that the very next dead-code pass reclaims.
	SkipUnreachable bool
	// MaxViolations caps the findings per function (0 = 8): one corrupt
	// pass tends to violate the same rule in many blocks.
	MaxViolations int
}

func (o Options) maxViolations() int {
	if o.MaxViolations <= 0 {
		return 8
	}
	return o.MaxViolations
}

// Func runs every applicable rule over one function and returns the
// violations found, in rule order (structure first, reducibility last).
func Func(f *cfg.Func, o Options) []Violation {
	var vs []Violation
	limit := o.maxViolations()
	full := func() bool { return len(vs) >= limit }
	add := func(rule Rule, block string, format string, args ...any) {
		vs = append(vs, Violation{
			Rule: rule, Func: f.Name, Block: block,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// Structural sanity gates everything else: the semantic analyses below
	// assume resolvable targets and well-formed blocks.
	if err := cfg.Validate(f, o.DelaySlots); err != nil {
		add(RuleStructure, "", "%v", err)
		return vs
	}

	if !o.SkipUnreachable {
		reach := cfg.Reachable(f)
		for _, b := range f.Blocks {
			if full() {
				return vs
			}
			if !reach[b] {
				add(RuleUnreachable, b.Label.String(), "block is unreachable from the entry")
			}
		}
	}

	checkCCPairing(f, o, add, full)
	if full() {
		return vs
	}
	if o.DelaySlots {
		checkDelaySlots(f, add, full)
		if full() {
			return vs
		}
	}
	if o.PostRegalloc {
		checkNoVirtual(f, add, full)
		if full() {
			return vs
		}
		checkDeadRegs(f, add, full)
		if full() {
			return vs
		}
	}
	checkUseBeforeDef(f, add, full)
	if full() {
		return vs
	}
	// Reducibility is the mid-pipeline invariant replication relies on.
	// Delay-slot target-filling may retarget a loop's backedge into the
	// tail of a split header, legitimately giving the loop a second entry,
	// so the rule retires once slots are filled.
	if !o.DelaySlots && !cfg.IsReducible(f) {
		add(RuleIrreducible, "", "flow graph is irreducible")
	}
	return vs
}

// Program runs Func over every function of the program.
func Program(p *cfg.Program, o Options) []Violation {
	var vs []Violation
	for _, f := range p.Funcs {
		vs = append(vs, Func(f, o)...)
	}
	return vs
}

// checkCCPairing enforces the condition-code discipline the whole backend
// relies on (see opt.CC): a conditional branch must be preceded by a
// compare in its own block, with no call in between (the callee's compares
// clobber the condition code). It also polices the annul bit, which only
// delay-slot filling may set, and only on branches.
func checkCCPairing(f *cfg.Func, o Options, add addFunc, full func() bool) {
	for _, b := range f.Blocks {
		ccValid := false
		for ii := range b.Insts {
			if full() {
				return
			}
			in := &b.Insts[ii]
			switch in.Kind {
			case rtl.Cmp:
				ccValid = true
			case rtl.Call:
				ccValid = false
			case rtl.Br:
				if !ccValid {
					add(RuleCCPairing, b.Label.String(),
						"branch %q has no live compare in its block", in.String())
				}
			}
			if in.Annul {
				switch {
				case in.Kind != rtl.Br:
					add(RuleDelaySlot, b.Label.String(),
						"annul bit on non-branch %q", in.String())
				case !o.DelaySlots:
					add(RuleDelaySlot, b.Label.String(),
						"annul bit on %q before delay-slot filling", in.String())
				}
			}
		}
	}
}

// checkDelaySlots enforces slot legality after filling: the instruction
// occupying a CTI's delay slot must be a simple data instruction or a Nop —
// never a compare, call, argument store, or another CTI. (cfg.Validate has
// already pinned the CTI to the second-to-last position.)
func checkDelaySlots(f *cfg.Func, add addFunc, full func() bool) {
	for _, b := range f.Blocks {
		if full() {
			return
		}
		n := len(b.Insts)
		if n < 2 || !b.Insts[n-2].IsCTI() {
			continue
		}
		slot := &b.Insts[n-1]
		switch slot.Kind {
		case rtl.Move, rtl.Bin, rtl.Un, rtl.Nop:
		default:
			add(RuleDelaySlot, b.Label.String(),
				"illegal instruction %q in a delay slot", slot.String())
		}
	}
}

// checkNoVirtual rejects any virtual register surviving allocation.
func checkNoVirtual(f *cfg.Func, add addFunc, full func() bool) {
	var scratch []rtl.Reg
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if full() {
				return
			}
			in := &b.Insts[ii]
			scratch = operandRegs(in, scratch[:0])
			for _, r := range scratch {
				if r.IsVirtual() {
					add(RuleVirtualReg, b.Label.String(),
						"virtual register %s in %q after register allocation", r, in.String())
					break
				}
			}
		}
	}
}

// checkDeadRegs reuses the register allocator's own liveness analysis
// (opt.ComputeLiveness): after allocation, an allocatable register that is
// live at the function entry is read on some path before any instruction
// defines it — the classic symptom of a coloring bug assigning two
// interfering ranges the same register.
func checkDeadRegs(f *cfg.Func, add addFunc, full func() bool) {
	e := cfg.ComputeEdges(f)
	lv := opt.ComputeLiveness(f, e)
	var bad []rtl.Reg
	lv.In[0].ForEach(func(r rtl.Reg) {
		if r.IsVirtual() || (r >= rtl.FirstAlloc && r < rtl.VRegBase) {
			bad = append(bad, r)
		}
	})
	lv.Release()
	e.Release()
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	entry := f.Entry().Label.String()
	for _, r := range bad {
		if full() {
			return
		}
		add(RuleDeadReg, entry,
			"register %s is live at the function entry: read before any definition", r)
	}
}

// addFunc is the violation accumulator threaded through the rule checkers.
type addFunc func(rule Rule, block string, format string, args ...any)

// operandRegs appends every register field of the instruction's operands
// (Dst, Src, Src2; register and memory base/index) to dst.
func operandRegs(in *rtl.Inst, dst []rtl.Reg) []rtl.Reg {
	for _, o := range []*rtl.Operand{&in.Dst, &in.Src, &in.Src2} {
		switch o.Kind {
		case rtl.OReg:
			dst = append(dst, o.Reg)
		case rtl.OMem:
			dst = append(dst, o.Reg)
			if o.Index != rtl.RegNone {
				dst = append(dst, o.Index)
			}
		}
	}
	return dst
}
