// Package encode assigns byte offsets and exact encoded sizes to every
// instruction of a program, for machines whose direct jumps come in
// displacement-dependent forms (the x86's 2-byte short rel8 vs 5/6-byte
// near rel32 encodings).
//
// The core is a branch-displacement fixpoint in the style of Dickson's
// linear-time x86 jump-encoding algorithm: every variable-length jump
// starts in its short form, and a monotone worklist promotes a jump to the
// near form whenever its displacement — measured from the end of the
// short-form instruction to the target block — falls outside the short
// range. Sizes only ever grow, so displacements between any jump and its
// target only ever grow in magnitude; a promotion can never be undone and
// the iteration terminates at the least fixed point, which is also the
// minimum-size feasible assignment (the classic Szymanski result; the
// package's property tests check it against brute force).
//
// Machines without an Encoder degenerate to flat InstSize prefix sums, so
// vm.NewLayout routes every machine through LayoutProgram and the encoded
// addresses feed the instruction-cache simulations unchanged.
//
// The package also hosts the jump-table lowering for long switch-chains
// (see lower.go) and is documented with a worked example in
// docs/MACHINES.md.
package encode

import (
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// Form is the encoding form the fixpoint assigned to an instruction.
type Form uint8

// Forms: fixed-size instructions, and the two jump encodings.
const (
	// FormFixed marks instructions whose size never depends on layout.
	FormFixed Form = iota
	// FormShort marks a variable jump in its short (rel8-style) form.
	FormShort
	// FormNear marks a variable jump promoted to the near (rel32) form.
	FormNear
)

func (f Form) String() string {
	switch f {
	case FormShort:
		return "short"
	case FormNear:
		return "near"
	}
	return "fixed"
}

// Func is the encoded layout of one function: per-instruction offsets
// (relative to the function start), exact byte sizes, and the form the
// fixpoint chose, plus convergence statistics for the monotonicity checks.
type Func struct {
	// Name is the function name.
	Name string
	// Off[bi][ii] is the function-relative byte offset of instruction ii
	// of block bi; Size its encoded size, Form its chosen form.
	Off  [][]int64
	Size [][]int64
	Form [][]Form
	// BlockOff[bi] is the function-relative offset of block bi's start.
	BlockOff []int64
	// Bytes is the total encoded size of the function.
	Bytes int64
	// Passes counts fixpoint iterations until convergence (always ≥ 1;
	// every pass but the last promotes at least one jump, so Passes is
	// bounded by the variable-jump count plus one).
	Passes int
	// Promotions counts short→near promotions over the whole run.
	Promotions int
	// Short and Near count the variable jumps by final form.
	Short, Near int
}

// varJump is one fixpoint work item: a variable-length jump, its position,
// and its form pair.
type varJump struct {
	bi, ii int
	target int // block index of the jump target
	form   machine.JumpForm
}

// LayoutFunc computes the encoded layout of one function on m. For
// machines without an Encoder every instruction is fixed-size and the
// result is a plain InstSize prefix sum in one pass.
func LayoutFunc(f *cfg.Func, m *machine.Machine) *Func {
	ef := &Func{
		Name:     f.Name,
		Off:      make([][]int64, len(f.Blocks)),
		Size:     make([][]int64, len(f.Blocks)),
		Form:     make([][]Form, len(f.Blocks)),
		BlockOff: make([]int64, len(f.Blocks)),
	}
	blockIdx := make(map[rtl.Label]int, len(f.Blocks))
	for bi, b := range f.Blocks {
		blockIdx[b.Label] = bi
		ef.Off[bi] = make([]int64, len(b.Insts))
		ef.Size[bi] = make([]int64, len(b.Insts))
		ef.Form[bi] = make([]Form, len(b.Insts))
	}

	// Seed: fixed sizes from the machine model, variable jumps short.
	var vars []varJump
	for bi, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if m.Encoder != nil {
				if jf, ok := m.Encoder.Form(in.Kind); ok {
					if ti, ok := blockIdx[in.Target]; ok {
						vars = append(vars, varJump{bi: bi, ii: ii, target: ti, form: jf})
						ef.Size[bi][ii] = jf.ShortBytes
						ef.Form[bi][ii] = FormShort
						continue
					}
				}
			}
			ef.Size[bi][ii] = m.InstSize(in)
		}
	}

	// Monotone fixpoint: recompute offsets, promote every still-short jump
	// whose displacement no longer fits, repeat until stable. Promotions
	// only grow sizes, displacements only grow in magnitude, so no
	// promotion is ever revisited and the loop runs at most len(vars)+1
	// passes.
	for {
		ef.Passes++
		off := int64(0)
		for bi := range f.Blocks {
			ef.BlockOff[bi] = off
			for ii := range ef.Size[bi] {
				ef.Off[bi][ii] = off
				off += ef.Size[bi][ii]
			}
		}
		ef.Bytes = off
		changed := false
		for i := range vars {
			v := &vars[i]
			if ef.Form[v.bi][v.ii] != FormShort {
				continue
			}
			disp := ef.BlockOff[v.target] - (ef.Off[v.bi][v.ii] + v.form.ShortBytes)
			if !v.form.Fits(disp) {
				ef.Form[v.bi][v.ii] = FormNear
				ef.Size[v.bi][v.ii] = v.form.NearBytes
				ef.Promotions++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i := range vars {
		if ef.Form[vars[i].bi][vars[i].ii] == FormShort {
			ef.Short++
		} else {
			ef.Near++
		}
	}
	return ef
}

// Program is the encoded layout of a whole program: function layouts plus
// program-relative base addresses (functions are aligned to the machine's
// instruction alignment, matching the vm layout convention).
type Program struct {
	// Machine is the model the layout was computed for.
	Machine *machine.Machine
	// Funcs holds one layout per function, in program order.
	Funcs []*Func
	// FuncBase[fi] is the program-relative base address of function fi.
	FuncBase []int64
	// CodeBytes is the total code size in bytes.
	CodeBytes int64
}

// LayoutProgram lays out every function of the program contiguously in
// program order, running the displacement fixpoint per function (direct
// jumps never cross functions; calls are fixed-size).
func LayoutProgram(p *cfg.Program, m *machine.Machine) *Program {
	ep := &Program{Machine: m}
	addr := int64(0)
	for _, f := range p.Funcs {
		if rem := addr % m.Align; rem != 0 {
			addr += m.Align - rem
		}
		ef := LayoutFunc(f, m)
		ep.FuncBase = append(ep.FuncBase, addr)
		ep.Funcs = append(ep.Funcs, ef)
		addr += ef.Bytes
	}
	ep.CodeBytes = addr
	return ep
}
