package encode_test

import (
	"testing"

	"repro/internal/difftest"
	"repro/internal/encode"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// TestFixpointFuzzedCFGs runs the layout fixpoint over 200 generated
// programs at the highest optimization level and checks the invariants the
// algorithm's termination and optimality arguments rest on: convergence
// within vars+1 passes, offset/size consistency, every short jump in range,
// and every near jump still out of short range at the final layout (sizes
// only grow, so a jump that failed the short test once can never fit again
// — if one did, a promotion was wrong).
func TestFixpointFuzzedCFGs(t *testing.T) {
	m := machine.X86
	for seed := int64(0); seed < 200; seed++ {
		src := difftest.Generate(seed)
		prog, err := mcc.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: pipeline.Jumps})
		for _, f := range prog.Funcs {
			ef := encode.LayoutFunc(f, m)
			vars := ef.Short + ef.Near
			if ef.Passes > vars+1 {
				t.Errorf("seed %d %s: %d passes for %d variable jumps (non-monotone?)",
					seed, f.Name, ef.Passes, vars)
			}
			if ef.Promotions != ef.Near {
				t.Errorf("seed %d %s: %d promotions but %d near jumps (oscillation)",
					seed, f.Name, ef.Promotions, ef.Near)
			}
			checkLayoutConsistent(t, seed, f.Name, ef, m)

			// Determinism: a second run over the same function must agree
			// byte for byte.
			ef2 := encode.LayoutFunc(f, m)
			if ef2.Bytes != ef.Bytes || ef2.Passes != ef.Passes || ef2.Near != ef.Near {
				t.Errorf("seed %d %s: second layout differs (%d/%d bytes)",
					seed, f.Name, ef.Bytes, ef2.Bytes)
			}
		}
	}
}

// checkLayoutConsistent re-derives the prefix sums and the displacement
// conditions from the final sizes and compares them against the layout.
func checkLayoutConsistent(t *testing.T, seed int64, name string, ef *encode.Func, m *machine.Machine) {
	t.Helper()
	off := int64(0)
	for bi := range ef.Off {
		if ef.BlockOff[bi] != off {
			t.Errorf("seed %d %s: block %d offset %d, want %d", seed, name, bi, ef.BlockOff[bi], off)
			return
		}
		for ii := range ef.Off[bi] {
			if ef.Off[bi][ii] != off {
				t.Errorf("seed %d %s: inst %d/%d offset %d, want %d",
					seed, name, bi, ii, ef.Off[bi][ii], off)
				return
			}
			off += ef.Size[bi][ii]
		}
	}
	if ef.Bytes != off {
		t.Errorf("seed %d %s: total %d bytes, prefix sum %d", seed, name, ef.Bytes, off)
	}
}

// TestFixpointShortJumpsFit walks every final-form jump of the fuzz corpus
// and verifies the assigned form against the final displacements: short
// jumps fit, near jumps would not have fit short.
func TestFixpointShortJumpsFit(t *testing.T) {
	m := machine.X86
	for seed := int64(0); seed < 50; seed++ {
		prog, err := mcc.Compile(difftest.Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: pipeline.Jumps})
		for _, f := range prog.Funcs {
			ef := encode.LayoutFunc(f, m)
			blockIdx := make(map[int32]int, len(f.Blocks))
			for bi, b := range f.Blocks {
				blockIdx[int32(b.Label)] = bi
			}
			for bi, b := range f.Blocks {
				for ii := range b.Insts {
					form := ef.Form[bi][ii]
					if form == encode.FormFixed {
						continue
					}
					jf, ok := m.Encoder.Form(b.Insts[ii].Kind)
					if !ok {
						t.Fatalf("seed %d %s: variable form on non-jump", seed, f.Name)
					}
					ti := blockIdx[int32(b.Insts[ii].Target)]
					disp := ef.BlockOff[ti] - (ef.Off[bi][ii] + jf.ShortBytes)
					switch form {
					case encode.FormShort:
						if !jf.Fits(disp) {
							t.Errorf("seed %d %s: short jump at %d/%d has out-of-range disp %d",
								seed, f.Name, bi, ii, disp)
						}
						if ef.Size[bi][ii] != jf.ShortBytes {
							t.Errorf("seed %d %s: short jump sized %d", seed, f.Name, ef.Size[bi][ii])
						}
					case encode.FormNear:
						if jf.Fits(disp) {
							t.Errorf("seed %d %s: near jump at %d/%d would fit short (disp %d) — not minimal",
								seed, f.Name, bi, ii, disp)
						}
						if ef.Size[bi][ii] != jf.NearBytes {
							t.Errorf("seed %d %s: near jump sized %d", seed, f.Name, ef.Size[bi][ii])
						}
					}
				}
			}
		}
	}
}
