package encode

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// buildSynthetic constructs a random small function out of 1-byte Nop
// padding and direct jumps: the only instruction shapes the layout fixpoint
// cares about. The verifier never sees these functions.
func buildSynthetic(r *rand.Rand) *cfg.Func {
	f := cfg.NewFunc("synth", 0)
	nBlocks := 3 + r.Intn(6)
	blocks := make([]*cfg.Block, nBlocks)
	for i := range blocks {
		blocks[i] = f.AppendBlock(f.NewLabel())
	}
	for _, b := range blocks {
		for n := r.Intn(90); n > 0; n-- {
			b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Nop})
		}
		target := blocks[r.Intn(nBlocks)].Label
		switch r.Intn(3) {
		case 0: // fallthrough
		case 1:
			b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Jmp, Target: target})
		case 2:
			b.Insts = append(b.Insts,
				rtl.Inst{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(0)},
				rtl.Inst{Kind: rtl.Br, BrRel: rtl.Eq, Target: target})
		}
	}
	return f
}

// bruteForceMin enumerates every short/near assignment of the function's
// variable jumps and returns the minimum total byte size over the feasible
// ones (a short jump is feasible iff its displacement fits the short range).
func bruteForceMin(t *testing.T, f *cfg.Func, m *machine.Machine) int64 {
	t.Helper()
	blockIdx := make(map[rtl.Label]int, len(f.Blocks))
	for bi, b := range f.Blocks {
		blockIdx[b.Label] = bi
	}
	var vars []varJump
	fixed := make([][]int64, len(f.Blocks))
	for bi, b := range f.Blocks {
		fixed[bi] = make([]int64, len(b.Insts))
		for ii := range b.Insts {
			in := &b.Insts[ii]
			if jf, ok := m.Encoder.Form(in.Kind); ok {
				if ti, ok := blockIdx[in.Target]; ok {
					vars = append(vars, varJump{bi: bi, ii: ii, target: ti, form: jf})
					continue
				}
			}
			fixed[bi][ii] = m.InstSize(in)
		}
	}
	if len(vars) > 14 {
		t.Fatalf("synthetic function has %d variable jumps; brute force capped at 14", len(vars))
	}
	best := int64(-1)
	for mask := 0; mask < 1<<len(vars); mask++ {
		size := make([][]int64, len(fixed))
		for bi := range fixed {
			size[bi] = append([]int64(nil), fixed[bi]...)
		}
		for vi, v := range vars {
			if mask&(1<<vi) != 0 {
				size[v.bi][v.ii] = v.form.NearBytes
			} else {
				size[v.bi][v.ii] = v.form.ShortBytes
			}
		}
		off := make([][]int64, len(size))
		blockOff := make([]int64, len(size))
		total := int64(0)
		for bi := range size {
			blockOff[bi] = total
			off[bi] = make([]int64, len(size[bi]))
			for ii, sz := range size[bi] {
				off[bi][ii] = total
				total += sz
			}
		}
		feasible := true
		for vi, v := range vars {
			if mask&(1<<vi) != 0 {
				continue
			}
			disp := blockOff[v.target] - (off[v.bi][v.ii] + v.form.ShortBytes)
			if !v.form.Fits(disp) {
				feasible = false
				break
			}
		}
		if feasible && (best < 0 || total < best) {
			best = total
		}
	}
	if best < 0 {
		t.Fatal("no feasible assignment (all-near is always feasible; bug in brute force)")
	}
	return best
}

// TestFixpointOptimalBruteForce checks the Szymanski property on randomly
// generated small functions: the fixpoint's total byte size equals the
// minimum over every feasible short/near assignment.
func TestFixpointOptimalBruteForce(t *testing.T) {
	m := machine.X86
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := buildSynthetic(r)
		ef := LayoutFunc(f, m)
		want := bruteForceMin(t, f, m)
		if ef.Bytes != want {
			t.Errorf("seed %d: fixpoint %d bytes, brute-force optimum %d", seed, ef.Bytes, want)
		}
	}
}

// padBlock returns a block holding n one-byte Nops.
func padBlock(f *cfg.Func, n int) *cfg.Block {
	b := f.AppendBlock(f.NewLabel())
	for ; n > 0; n-- {
		b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Nop})
	}
	return b
}

// TestFixpointBoundary pins the exact rel8 boundary: a forward jump over
// 127 padding bytes stays short (disp = +127), over 128 it must go near.
func TestFixpointBoundary(t *testing.T) {
	m := machine.X86
	for _, tc := range []struct {
		pad  int
		form Form
	}{
		{126, FormShort}, {127, FormShort}, {128, FormNear},
	} {
		f := cfg.NewFunc("b", 0)
		head := f.AppendBlock(f.NewLabel())
		padBlock(f, tc.pad)
		tail := f.AppendBlock(f.NewLabel())
		tail.Insts = append(tail.Insts, rtl.Inst{Kind: rtl.Ret})
		head.Insts = append(head.Insts, rtl.Inst{Kind: rtl.Jmp, Target: tail.Label})
		ef := LayoutFunc(f, m)
		if got := ef.Form[0][0]; got != tc.form {
			t.Errorf("pad %d: jump form %s, want %s", tc.pad, got, tc.form)
		}
	}
}

// TestFixpointBackwardBoundary pins the backward rel8 boundary: the
// displacement is measured from the end of the 2-byte short form, so a
// backward jump reaching 126 padding bytes back (disp = -128) still fits
// and one byte more does not.
func TestFixpointBackwardBoundary(t *testing.T) {
	m := machine.X86
	for _, tc := range []struct {
		pad  int
		form Form
	}{
		{126, FormShort}, {127, FormNear},
	} {
		f := cfg.NewFunc("b", 0)
		target := f.AppendBlock(f.NewLabel())
		target.Insts = append(target.Insts, rtl.Inst{Kind: rtl.Nop})
		padBlock(f, tc.pad-1)
		jb := f.AppendBlock(f.NewLabel())
		jb.Insts = append(jb.Insts, rtl.Inst{Kind: rtl.Jmp, Target: target.Label})
		ef := LayoutFunc(f, m)
		if got := ef.Form[2][0]; got != tc.form {
			t.Errorf("pad %d: backward jump form %s, want %s", tc.pad, got, tc.form)
		}
	}
}

// TestCascadePromotion builds a genuine cascade: j1 fits short while j2 is
// short, but j2 must go near on its own displacement, and the 3 bytes it
// gains push j1 over the rel8 limit too. The fixpoint needs one pass per
// promotion plus a final quiescent pass — exactly the vars+1 bound.
func TestCascadePromotion(t *testing.T) {
	m := machine.X86
	f := cfg.NewFunc("c", 0)
	j1 := f.AppendBlock(f.NewLabel())
	padBlock(f, 118)
	j2 := f.AppendBlock(f.NewLabel())
	padBlock(f, 6)
	t1 := f.AppendBlock(f.NewLabel())
	t1.Insts = append(t1.Insts, rtl.Inst{Kind: rtl.Nop})
	padBlock(f, 130)
	t2 := f.AppendBlock(f.NewLabel())
	t2.Insts = append(t2.Insts, rtl.Inst{Kind: rtl.Ret})
	// All-short layout: j1@0, j2@120, t1@128, t2@259.
	// j1 → t1: disp 126, fits. j2 → t2: disp 137, promote (pass 1).
	// j2 near: t1 moves to 131, j1's disp becomes 129, promote (pass 2).
	j1.Insts = append(j1.Insts, rtl.Inst{Kind: rtl.Jmp, Target: t1.Label})
	j2.Insts = append(j2.Insts, rtl.Inst{Kind: rtl.Jmp, Target: t2.Label})
	ef := LayoutFunc(f, m)
	if ef.Promotions != 2 || ef.Near != 2 || ef.Short != 0 {
		t.Errorf("promotions=%d near=%d short=%d, want 2/2/0", ef.Promotions, ef.Near, ef.Short)
	}
	if ef.Passes != 3 {
		t.Errorf("fixpoint took %d passes, want 3 (promote, cascade, quiesce)", ef.Passes)
	}
	if ef.Form[0][0] != FormNear || ef.Form[2][0] != FormNear {
		t.Errorf("forms %s/%s, want near/near", ef.Form[0][0], ef.Form[2][0])
	}
}

// TestLayoutProgramEncoderless checks the degenerate path: machines without
// an Encoder must lay out as plain InstSize prefix sums.
func TestLayoutProgramEncoderless(t *testing.T) {
	for _, m := range machine.All() {
		if m.Encoder != nil {
			continue
		}
		f := cfg.NewFunc("g", 0)
		b := f.AppendBlock(f.NewLabel())
		b.Insts = append(b.Insts,
			rtl.Inst{Kind: rtl.Jmp, Target: b.Label},
		)
		ef := LayoutFunc(f, m)
		if ef.Short != 0 || ef.Near != 0 {
			t.Errorf("%s: encoder-less machine reported variable jumps", m.Name)
		}
		if ef.Passes != 1 {
			t.Errorf("%s: encoder-less layout took %d passes, want 1", m.Name, ef.Passes)
		}
		if want := m.InstSize(&b.Insts[0]); ef.Bytes != want {
			t.Errorf("%s: %d bytes, want flat InstSize sum %d", m.Name, ef.Bytes, want)
		}
	}
}
