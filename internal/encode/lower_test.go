package encode

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// buildChain constructs a compare chain testing sel against the given keys,
// each dispatching to its own case block, falling through to a default
// block. Layout: chain blocks, default, then the case blocks.
func buildChain(keys []int64) (*cfg.Func, rtl.Operand) {
	f := cfg.NewFunc("chain", 0)
	sel := rtl.R(f.NewVReg())
	caseLabels := make([]rtl.Label, len(keys))
	for i := range keys {
		caseLabels[i] = f.NewLabel()
	}
	defLabel := f.NewLabel()
	for i, k := range keys {
		b := f.AppendBlock(f.NewLabel())
		b.Insts = []rtl.Inst{
			{Kind: rtl.Cmp, Src: sel, Src2: rtl.Imm(k)},
			{Kind: rtl.Br, BrRel: rtl.Eq, Target: caseLabels[i]},
		}
	}
	db := f.AppendBlock(defLabel)
	db.Insts = []rtl.Inst{{Kind: rtl.Ret}}
	for i := range keys {
		cb := f.AppendBlock(caseLabels[i])
		cb.Insts = []rtl.Inst{
			{Kind: rtl.Move, Dst: sel, Src: rtl.Imm(int64(i))},
			{Kind: rtl.Jmp, Target: defLabel},
		}
	}
	return f, sel
}

func TestLowerDenseChain(t *testing.T) {
	keys := []int64{10, 11, 13, 14, 15}
	f, sel := buildChain(keys)
	if !LowerJumpTables(f, machine.X86) {
		t.Fatal("dense 5-key chain not lowered")
	}
	// Head rewritten to the low-bound check.
	head := f.Blocks[0]
	if len(head.Insts) != 2 || head.Insts[0].Kind != rtl.Cmp || head.Insts[0].Src2.Val != 10 ||
		head.Insts[1].Kind != rtl.Br || head.Insts[1].BrRel != rtl.Lt {
		t.Fatalf("head is not the low-bound check: %v", head.Insts)
	}
	hi := f.Blocks[1]
	if len(hi.Insts) != 2 || hi.Insts[0].Src2.Val != 15 || hi.Insts[1].BrRel != rtl.Gt {
		t.Fatalf("second block is not the high-bound check: %v", hi.Insts)
	}
	tbl := f.Blocks[2]
	ij := tbl.Insts[0]
	if len(tbl.Insts) != 1 || ij.Kind != rtl.IJmp || !ij.Src.Equal(sel) || ij.Lo != 10 {
		t.Fatalf("third block is not the table dispatch: %v", tbl.Insts)
	}
	if len(ij.Table) != 6 {
		t.Fatalf("table spans %d entries, want 6", len(ij.Table))
	}
	// The hole at key 12 must dispatch to the default.
	def := head.Insts[1].Target
	if ij.Table[2] != def {
		t.Errorf("hole entry dispatches to %v, want default %v", ij.Table[2], def)
	}
	// Interior chain blocks are gone: head + 2 new + default + 5 cases.
	if len(f.Blocks) != 9 {
		t.Errorf("%d blocks after lowering, want 9", len(f.Blocks))
	}
	// Indices must be fresh after the splice.
	for i, b := range f.Blocks {
		if b.Index != i {
			t.Errorf("block %d carries stale index %d", i, b.Index)
		}
	}
}

func TestLowerRejectsShortChain(t *testing.T) {
	f, _ := buildChain([]int64{1, 2, 3})
	if LowerJumpTables(f, machine.X86) {
		t.Error("3-key chain lowered; minimum is 4")
	}
}

func TestLowerRejectsSparseChain(t *testing.T) {
	f, _ := buildChain([]int64{0, 100, 200, 300})
	if LowerJumpTables(f, machine.X86) {
		t.Error("span-301 chain lowered past the density bound")
	}
}

func TestLowerCapsTableSpan(t *testing.T) {
	// Dense enough for the density factor (span 518 ≤ 3·200) but over
	// maxTableSpan. The full chain must not become one oversized table; a
	// narrower suffix may still be lowered (it is semantically a smaller
	// switch), so the invariant is a bound on every emitted table.
	keys := make([]int64, 0, 200)
	for i := int64(0); i < 200; i++ {
		keys = append(keys, i*520/200)
	}
	seen := map[int64]bool{}
	uniq := keys[:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	f, _ := buildChain(uniq)
	LowerJumpTables(f, machine.X86)
	if head := f.Blocks[0]; head.Insts[0].Kind != rtl.Cmp || head.Insts[0].Src2.Val != uniq[0] {
		t.Errorf("head of an over-wide chain was rewritten: %v", head.Insts)
	}
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == rtl.IJmp && int64(len(tm.Table)) > maxTableSpan {
			t.Errorf("emitted table spans %d entries, cap is %d", len(tm.Table), maxTableSpan)
		}
	}
}

func TestLowerRejectsMidChainEntry(t *testing.T) {
	// A second predecessor into an interior chain block means that block
	// tests a key suffix; a table cannot express that entry point.
	f, _ := buildChain([]int64{1, 2, 3, 4})
	interior := f.Blocks[2].Label
	extra := f.AppendBlock(f.NewLabel())
	extra.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: interior}}
	if LowerJumpTables(f, machine.X86) {
		t.Error("chain with a mid-chain entry lowered")
	}
}

func TestLowerRejectsEncoderless(t *testing.T) {
	f, _ := buildChain([]int64{1, 2, 3, 4})
	if LowerJumpTables(f, machine.SPARC) {
		t.Error("lowering fired on a machine without an encoder")
	}
}

func TestLowerDuplicateKeyStopsChain(t *testing.T) {
	// A repeated key ends the collected chain at the first occurrence: a
	// single table must never hold two tests of the same key. Here every
	// duplicate-free run is shorter than the 4-link minimum, so nothing
	// may be lowered at all.
	f, _ := buildChain([]int64{5, 6, 5, 7})
	if LowerJumpTables(f, machine.X86) {
		t.Error("chain with duplicate key lowered")
	}
}

func TestLowerMixedSelectorsStopChain(t *testing.T) {
	f, sel := buildChain([]int64{1, 2, 3, 4})
	// Retarget the third link's compare to a different register: the chain
	// must break there and the 2-link prefix is too short to lower.
	other := rtl.R(f.NewVReg())
	f.Blocks[2].Insts[0].Src = other
	_ = sel
	if LowerJumpTables(f, machine.X86) {
		t.Error("chain over two different selectors lowered")
	}
}
