package encode

import (
	"repro/internal/cfg"
	"repro/internal/machine"
	"repro/internal/rtl"
)

// Lowering thresholds, mirroring the front end's dense-switch heuristic
// (internal/mcc): a table needs at least minTableCases tested keys, the
// key span must stay within densityFactor times the case count (holes
// dispatch to the default), and very wide tables are rejected outright.
const (
	minTableCases = 4
	densityFactor = 3
	maxTableSpan  = 512
)

// chainLink is one matched compare block: it tests the selector against
// one constant and branches to that key's case label.
type chainLink struct {
	bi     int // block index
	val    int64
	target rtl.Label
}

// LowerJumpTables rewrites long equality compare chains — the shape sparse
// switches and if-else-if ladders compile to — into a two-sided bounds
// check plus an indirect jump through a dense table:
//
//	head: cmp sel, #lo;  br lt default
//	      cmp sel, #hi;  br gt default
//	      ijmp sel, lo, [case_lo .. case_hi]   (holes → default)
//
// It runs in the pipeline's finish stage for machines with an Encoder
// (before register allocation, so the selector is still a virtual
// register), and only fires when every interior chain block has the chain
// as its single predecessor — a mid-chain entry tests a key suffix, which
// a table cannot express. Interior blocks are removed; the case labels and
// the default keep their blocks. Reports whether anything changed.
func LowerJumpTables(f *cfg.Func, m *machine.Machine) bool {
	if m.Encoder == nil {
		return false
	}
	changed := false
	// Re-derive predecessor counts after every rewrite: removing a chain
	// changes the edges the next match depends on.
	for bi := 0; bi < len(f.Blocks); bi++ {
		if lowerChainAt(f, bi) {
			changed = true
		}
	}
	return changed
}

// predCounts counts predecessors per block label (fallthrough included).
func predCounts(f *cfg.Func) map[rtl.Label]int {
	preds := make(map[rtl.Label]int, len(f.Blocks))
	for _, b := range f.Blocks {
		t := b.Term()
		switch {
		case t == nil:
			if ft := f.FallThrough(b); ft != nil {
				preds[ft.Label]++
			}
		case t.Kind == rtl.Jmp:
			preds[t.Target]++
		case t.Kind == rtl.Br:
			preds[t.Target]++
			if ft := f.FallThrough(b); ft != nil {
				preds[ft.Label]++
			}
		case t.Kind == rtl.IJmp:
			for _, l := range t.Table {
				preds[l]++
			}
		}
	}
	return preds
}

// matchLink matches one compare-chain block — exactly [cmp sel,#k; br eq L]
// with an optional trailing jmp — and returns the selector, key, case
// target and the next block index in the chain (-1 when the block does not
// match or the chain leaves the function's block order).
func matchLink(f *cfg.Func, bi int) (sel rtl.Operand, val int64, target rtl.Label, next int, ok bool) {
	b := f.Blocks[bi]
	n := len(b.Insts)
	if n != 2 && n != 3 {
		return
	}
	cmp, br := &b.Insts[0], &b.Insts[1]
	if cmp.Kind != rtl.Cmp || cmp.Src.Kind != rtl.OReg || cmp.Src2.Kind != rtl.OImm {
		return
	}
	if br.Kind != rtl.Br || br.BrRel != rtl.Eq {
		return
	}
	var nb *cfg.Block
	if n == 3 {
		if b.Insts[2].Kind != rtl.Jmp {
			return
		}
		nb = f.BlockByLabel(b.Insts[2].Target)
	} else {
		nb = f.FallThrough(b)
	}
	if nb == nil {
		return
	}
	return cmp.Src, cmp.Src2.Val, br.Target, nb.Index, true
}

// lowerChainAt matches and rewrites the compare chain starting at block
// bi; reports whether it rewrote anything.
func lowerChainAt(f *cfg.Func, bi int) bool {
	sel, val, target, next, ok := matchLink(f, bi)
	if !ok {
		return false
	}
	preds := predCounts(f)
	links := []chainLink{{bi: bi, val: val, target: target}}
	seen := map[int64]bool{val: true}
	defBlock := next
	for {
		s2, v2, t2, n2, ok := matchLink(f, defBlock)
		if !ok || !s2.Equal(sel) || seen[v2] || preds[f.Blocks[defBlock].Label] != 1 {
			break
		}
		links = append(links, chainLink{bi: defBlock, val: v2, target: t2})
		seen[v2] = true
		defBlock = n2
	}
	if len(links) < minTableCases {
		return false
	}
	lo, hi := links[0].val, links[0].val
	for _, l := range links {
		if l.val < lo {
			lo = l.val
		}
		if l.val > hi {
			hi = l.val
		}
	}
	span := hi - lo + 1
	if span > densityFactor*int64(len(links)) || span > maxTableSpan {
		return false
	}
	// No case label or the default may be an interior chain block: the
	// rewrite deletes those blocks.
	interior := make(map[rtl.Label]bool, len(links)-1)
	for _, l := range links[1:] {
		interior[f.Blocks[l.bi].Label] = true
	}
	def := f.Blocks[defBlock].Label
	if interior[def] {
		return false
	}
	for _, l := range links {
		if interior[l.target] {
			return false
		}
	}

	table := make([]rtl.Label, span)
	for i := range table {
		table[i] = def
	}
	for _, l := range links {
		table[l.val-lo] = l.target
	}

	// Rewrite the head in place, splice the bounds check and the table
	// dispatch right after it (pure fallthrough between the three), and
	// drop the interior links.
	head := f.Blocks[bi]
	head.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: sel, Src2: rtl.Imm(lo)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: def},
	}
	bHi := &cfg.Block{Label: f.NewLabel(), Insts: []rtl.Inst{
		{Kind: rtl.Cmp, Src: sel, Src2: rtl.Imm(hi)},
		{Kind: rtl.Br, BrRel: rtl.Gt, Target: def},
	}}
	bTbl := &cfg.Block{Label: f.NewLabel(), Insts: []rtl.Inst{
		{Kind: rtl.IJmp, Src: sel, Lo: lo, Table: table},
	}}
	f.InsertBlocksAfter(bi, bHi, bTbl)
	f.RemoveBlocks(interior)
	return true
}
