package tv

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/rtl"
	"repro/internal/verify"
)

// Validate checks one certificate against the function in its
// post-transformation state — the state the engine's OnCertificate callback
// observes, where every original block still coexists with its copies —
// and returns the violations found (nil when the certificate checks out).
// Violations carry verify.RuleTranslation; the caller (normally the
// pipeline's TV phase) stamps pass/stage/iteration attribution.
func Validate(f *cfg.Func, c *Certificate) []verify.Violation {
	v := &checker{f: f, c: c}
	switch c.Kind {
	case KindJumpDelete:
		v.checkJumpDelete()
	case KindReplication:
		v.checkReplication()
	case KindFold:
		v.checkFold()
	case KindRotation:
		v.checkRotation()
	default:
		v.failf(c.Block, "unknown certificate kind %q", c.Kind)
	}
	return v.vs
}

// checker carries one validation run's state: the function, the
// certificate, and the violations accumulated so far.
type checker struct {
	f  *cfg.Func
	c  *Certificate
	vs []verify.Violation
}

// failf records one violation anchored at the given block.
func (v *checker) failf(block rtl.Label, format string, args ...any) {
	v.vs = append(v.vs, verify.Violation{
		Rule:   verify.RuleTranslation,
		Func:   v.c.Func,
		Block:  block.String(),
		Detail: string(v.c.Kind) + " certificate: " + fmt.Sprintf(format, args...),
	})
}

func (v *checker) block(l rtl.Label) *cfg.Block { return v.f.BlockByLabel(l) }

// next returns b's positional successor, or nil at the end of the layout.
func (v *checker) next(b *cfg.Block) *cfg.Block {
	if b.Index+1 < len(v.f.Blocks) {
		return v.f.Blocks[b.Index+1]
	}
	return nil
}

// img is the image relation of the bisimulation: y is an image of x when
// it is x itself or a certificate-listed copy of x. Every control-flow
// edge leaving a copy must land on an image of the corresponding edge of
// its original.
func (v *checker) img(y, x rtl.Label) bool {
	if y == x {
		return true
	}
	for _, p := range v.c.Copies {
		if p.Orig == x && p.Copy == y {
			return true
		}
	}
	return false
}

// isAux reports whether l is one of the certificate's auxiliary jump
// blocks.
func (v *checker) isAux(l rtl.Label) bool {
	for _, a := range v.c.Aux {
		if a == l {
			return true
		}
	}
	return false
}

// deref resolves a fall-through destination through an auxiliary jump
// block: a copy whose branch kept both explicit targets falls into a
// fresh single-jump block that forwards to the real destination. Non-aux
// labels resolve to themselves.
func (v *checker) deref(l rtl.Label) (rtl.Label, bool) {
	if !v.isAux(l) {
		return l, true
	}
	b := v.block(l)
	if b == nil || len(b.Insts) != 1 || b.Insts[0].Kind != rtl.Jmp {
		return l, false
	}
	return b.Insts[0].Target, true
}

// instEqual is structural instruction equality (rtl.Inst is not
// ==-comparable because of the jump-table slice).
func instEqual(a, b *rtl.Inst) bool {
	if a.Kind != b.Kind || a.BOp != b.BOp || a.UOp != b.UOp || a.BrRel != b.BrRel ||
		!a.Dst.Equal(b.Dst) || !a.Src.Equal(b.Src) || !a.Src2.Equal(b.Src2) ||
		a.Target != b.Target || a.Sym != b.Sym || a.Lo != b.Lo ||
		a.ArgIdx != b.ArgIdx || a.Annul != b.Annul || len(a.Table) != len(b.Table) {
		return false
	}
	for i := range a.Table {
		if a.Table[i] != b.Table[i] {
			return false
		}
	}
	return true
}

// body returns a block's instructions with the terminating control
// transfer (if any) stripped: the straight-line computation whose equality
// makes copy and original indistinguishable between cut points.
func body(b *cfg.Block) []rtl.Inst {
	if b.Term() != nil {
		return b.Insts[:len(b.Insts)-1]
	}
	return b.Insts
}

// bodiesEqual compares two straight-line instruction sequences.
func bodiesEqual(a, b []rtl.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !instEqual(&a[i], &b[i]) {
			return false
		}
	}
	return true
}

// checkJumpDelete validates the trivial replication: the jump is gone and
// the source block now falls through to exactly the block it used to jump
// to.
func (v *checker) checkJumpDelete() {
	b := v.block(v.c.Block)
	if b == nil {
		v.failf(v.c.Block, "source block not found")
		return
	}
	if v.block(v.c.Target) == nil {
		v.failf(v.c.Target, "target block not found")
		return
	}
	if b.Term() != nil {
		v.failf(v.c.Block, "source block still ends in a control transfer")
		return
	}
	if n := v.next(b); n == nil || n.Label != v.c.Target {
		v.failf(v.c.Block, "source block does not fall through to the deleted jump's target %v", v.c.Target)
	}
}

// checkReplication validates a JUMPS splice: the source falls into a
// faithful copy of its old jump target, every copy's body equals its
// original's, every edge leaving a copy lands on an image of the
// corresponding original edge, and every step-5 retarget lands on a
// listed copy of exactly the block it used to target.
func (v *checker) checkReplication() {
	c := v.c
	b := v.block(c.Block)
	if b == nil {
		v.failf(c.Block, "source block not found")
		return
	}
	if len(c.Copies) == 0 {
		v.failf(c.Block, "no copies listed")
		return
	}
	if b.Term() != nil {
		v.failf(c.Block, "source block still ends in a control transfer")
	} else if n := v.next(b); n == nil || n.Label != c.Copies[0].Copy {
		v.failf(c.Block, "source block does not fall into the first copy %v", c.Copies[0].Copy)
	}
	if c.Copies[0].Orig != c.Target {
		v.failf(c.Block, "first copy replicates %v, not the jump target %v", c.Copies[0].Orig, c.Target)
	}
	for _, al := range c.Aux {
		ab := v.block(al)
		if ab == nil || len(ab.Insts) != 1 || ab.Insts[0].Kind != rtl.Jmp {
			v.failf(al, "auxiliary block is not a single unconditional jump")
		}
	}
	for _, pair := range c.Copies {
		v.checkCopy(pair)
	}
	for _, r := range c.Retargets {
		v.checkRetarget(r)
	}
}

// checkCopy discharges one copy's cut-point obligations: body equality and
// edge correspondence under the image relation.
func (v *checker) checkCopy(pair CopyPair) {
	orig := v.block(pair.Orig)
	cp := v.block(pair.Copy)
	if orig == nil || cp == nil {
		v.failf(pair.Copy, "copy pair (%v, %v): block not found", pair.Orig, pair.Copy)
		return
	}
	if !bodiesEqual(body(cp), body(orig)) {
		v.failf(pair.Copy, "copy body diverges from original %v", pair.Orig)
		return
	}
	v.checkEdges(orig, cp)
}

// checkEdges checks that every control-flow edge leaving the copy lands on
// an image of the corresponding edge of the original — including the
// deleted-jump, appended-jump, branch-reversal and auxiliary-block shapes
// the splice produces.
func (v *checker) checkEdges(orig, cp *cfg.Block) {
	// The source block's own jump was consumed by this very splice; its
	// original terminator is reconstructed from the certificate's edge.
	var synth rtl.Inst
	oterm := orig.Term()
	if orig.Label == v.c.Block {
		synth = rtl.Inst{Kind: rtl.Jmp, Target: v.c.Target}
		oterm = &synth
	}
	origFall := rtl.NoLabel
	if nb := v.next(orig); nb != nil {
		origFall = nb.Label
	}
	cterm := cp.Term()
	copyFall := rtl.NoLabel
	if nb := v.next(cp); nb != nil {
		l, ok := v.deref(nb.Label)
		if !ok {
			v.failf(cp.Label, "fall-through runs into a malformed auxiliary block %v", nb.Label)
			return
		}
		copyFall = l
	}

	// singleSucc extracts the copy's unique successor when the original
	// has exactly one (fall-through or unconditional jump).
	singleSucc := func() (rtl.Label, bool) {
		switch {
		case cterm == nil:
			return copyFall, true
		case cterm.Kind == rtl.Jmp:
			return cterm.Target, true
		}
		return rtl.NoLabel, false
	}

	switch {
	case oterm == nil:
		succ, ok := singleSucc()
		if !ok {
			v.failf(cp.Label, "copy of fall-through block %v ends in a %v", orig.Label, cterm.Kind)
			return
		}
		if origFall == rtl.NoLabel {
			if succ != rtl.NoLabel {
				v.failf(cp.Label, "copy has a successor but original %v has none", orig.Label)
			}
		} else if !v.img(succ, origFall) {
			v.failf(cp.Label, "copy continues to %v, which is no image of the original fall-through %v", succ, origFall)
		}
	case oterm.Kind == rtl.Jmp:
		succ, ok := singleSucc()
		if !ok {
			v.failf(cp.Label, "copy of jump block %v ends in a %v", orig.Label, cterm.Kind)
			return
		}
		if !v.img(succ, oterm.Target) {
			v.failf(cp.Label, "copy continues to %v, which is no image of the jump target %v", succ, oterm.Target)
		}
	case oterm.Kind == rtl.Br:
		if cterm == nil || cterm.Kind != rtl.Br {
			v.failf(cp.Label, "copy of branch block %v does not end in a conditional branch", orig.Label)
			return
		}
		if cterm.Annul != oterm.Annul {
			v.failf(cp.Label, "copy branch annul bit diverges from original %v", orig.Label)
		}
		switch {
		case cterm.BrRel == oterm.BrRel:
			if !v.img(cterm.Target, oterm.Target) {
				v.failf(cp.Label, "copy branches to %v, which is no image of the original target %v", cterm.Target, oterm.Target)
			}
			if origFall == rtl.NoLabel {
				if copyFall != rtl.NoLabel {
					v.failf(cp.Label, "copy has a fall-through but original %v has none", orig.Label)
				}
			} else if !v.img(copyFall, origFall) {
				v.failf(cp.Label, "copy falls to %v, which is no image of the original fall-through %v", copyFall, origFall)
			}
		case cterm.BrRel == oterm.BrRel.Negate():
			// Branch reversal: the copy's layout swapped the two edges.
			if origFall == rtl.NoLabel {
				v.failf(cp.Label, "reversed branch but original %v has no fall-through", orig.Label)
				return
			}
			if !v.img(cterm.Target, origFall) {
				v.failf(cp.Label, "reversed branch targets %v, which is no image of the original fall-through %v", cterm.Target, origFall)
			}
			if !v.img(copyFall, oterm.Target) {
				v.failf(cp.Label, "reversed branch falls to %v, which is no image of the original target %v", copyFall, oterm.Target)
			}
		default:
			v.failf(cp.Label, "copy branch relation matches neither the original nor its reversal")
		}
	case oterm.Kind == rtl.IJmp:
		if cterm == nil || cterm.Kind != rtl.IJmp {
			v.failf(cp.Label, "copy of indirect-jump block %v does not end in an indirect jump", orig.Label)
			return
		}
		if !cterm.Src.Equal(oterm.Src) || cterm.Lo != oterm.Lo || len(cterm.Table) != len(oterm.Table) {
			v.failf(cp.Label, "copy jump-table selector diverges from original %v", orig.Label)
			return
		}
		for i := range cterm.Table {
			if !v.img(cterm.Table[i], oterm.Table[i]) {
				v.failf(cp.Label, "jump-table entry %d maps to %v, which is no image of %v", i, cterm.Table[i], oterm.Table[i])
			}
		}
	case oterm.Kind == rtl.Ret:
		if cterm == nil || !instEqual(cterm, oterm) {
			v.failf(cp.Label, "copy of return block %v does not end in the same return", orig.Label)
		}
	}
}

// checkRetarget validates one step-5 redirect: the block's branch now
// points at New, and New is a certificate-listed copy of exactly Old.
func (v *checker) checkRetarget(r Retarget) {
	b := v.block(r.Block)
	if b == nil {
		v.failf(r.Block, "retargeted block not found")
		return
	}
	t := b.Term()
	if t == nil || t.Kind != rtl.Br {
		v.failf(r.Block, "retargeted block does not end in a conditional branch")
		return
	}
	if t.Target != r.New {
		v.failf(r.Block, "branch targets %v, certificate claims %v", t.Target, r.New)
		return
	}
	for _, p := range v.c.Copies {
		if p.Orig == r.Old && p.Copy == r.New {
			return
		}
	}
	v.failf(r.Block, "retarget lands on %v, which is not a listed copy of %v", r.New, r.Old)
}

// checkFold validates a DUPS conditional elimination: the copy is the test
// block with only its branch replaced by a transfer to the decided
// direction, the incoming edge was rewired onto the copy per the recorded
// shape, and the decision itself re-derives from scratch (the fold leg of
// the bisimulation — see checkFoldEvidence).
func (v *checker) checkFold() {
	c := v.c
	p := v.block(c.Block)
	t := v.block(c.Target)
	cp := v.block(c.Copy)
	if p == nil || t == nil || cp == nil {
		v.failf(c.Block, "predecessor %v, test %v or copy %v not found", c.Block, c.Target, c.Copy)
		return
	}
	tterm := t.Term()
	if tterm == nil || tterm.Kind != rtl.Br {
		v.failf(c.Target, "test block does not end in a conditional branch")
		return
	}
	tnext := v.next(t)
	if tnext == nil {
		v.failf(c.Target, "test block has no fall-through for the untaken direction")
		return
	}
	wantDest := tterm.Target
	if !c.Taken {
		wantDest = tnext.Label
	}
	if c.Dest != wantDest {
		v.failf(c.Copy, "folded transfer goes to %v, but the %v direction of the test is %v",
			c.Dest, map[bool]string{true: "taken", false: "fall-through"}[c.Taken], wantDest)
	}
	cterm := cp.Term()
	if cterm == nil || cterm.Kind != rtl.Jmp || cterm.Target != c.Dest {
		v.failf(c.Copy, "copy does not end in an unconditional jump to the decided destination %v", c.Dest)
	}
	if !bodiesEqual(body(cp), body(t)) {
		v.failf(c.Copy, "copy body diverges from the test block %v", c.Target)
		return
	}
	switch c.Edge {
	case EdgeJump:
		if p.Term() != nil {
			v.failf(c.Block, "predecessor still ends in a control transfer on a dissolved-jump edge")
		} else if n := v.next(p); n == nil || n.Label != c.Copy {
			v.failf(c.Block, "predecessor does not fall into the copy %v", c.Copy)
		}
	case EdgeFall:
		if pt := p.Term(); pt != nil && pt.Kind != rtl.Br {
			v.failf(c.Block, "fall-through edge from a block ending in a %v", pt.Kind)
		} else if n := v.next(p); n == nil || n.Label != c.Copy {
			v.failf(c.Block, "copy %v is not spliced into the fall-through edge", c.Copy)
		}
	case EdgeBrTaken:
		if pt := p.Term(); pt == nil || pt.Kind != rtl.Br || pt.Target != c.Copy {
			v.failf(c.Block, "predecessor's branch-taken edge does not land on the copy %v", c.Copy)
		}
	default:
		v.failf(c.Block, "unknown edge shape %q", c.Edge)
		return
	}
	v.checkFoldEvidence(p, t)
}

// checkFoldEvidence re-derives the folded branch's outcome along the edge
// from p into t using the validator's own constant environment and
// sign-set algebra (sym.go), and requires the derivation to travel the
// certificate's recorded route to its recorded verdict. The optimizer's
// conclusion is never trusted: a fold whose evidence does not reproduce is
// rejected even if the structural rewiring is perfect.
func (v *checker) checkFoldEvidence(p, t *cfg.Block) {
	c := v.c
	ci := lastCmp(t.Insts)
	if ci < 0 {
		v.failf(c.Target, "test block computes no condition of its own")
		return
	}
	tCmp := &t.Insts[ci]
	q := t.Term().BrRel

	env := newSymEnv()
	for i := range p.Insts {
		env.exec(&p.Insts[i])
	}
	for i := 0; i < ci; i++ {
		env.exec(&t.Insts[i])
	}

	switch c.Evidence.Route {
	case RouteConst:
		x, okx := env.lookup(tCmp.Src)
		y, oky := env.lookup(tCmp.Src2)
		if !okx || !oky {
			v.failf(c.Target, "constant evidence: compared operands are not constants on this path")
			return
		}
		if x != c.Evidence.X || y != c.Evidence.Y {
			v.failf(c.Target, "constant evidence mismatch: path proves (%d, %d), certificate claims (%d, %d)",
				x, y, c.Evidence.X, c.Evidence.Y)
			return
		}
		if q.Holds(x, y) != c.Taken {
			v.failf(c.Target, "constant evidence decides the branch against the folded direction")
		}
	case RouteRel:
		if c.Edge == EdgeJump {
			v.failf(c.Target, "relational evidence cannot flow across an unconditional jump")
			return
		}
		pt := p.Term()
		if pt == nil || pt.Kind != rtl.Br {
			v.failf(c.Block, "relational evidence requires the predecessor to end in a conditional branch")
			return
		}
		pi := lastCmp(p.Insts)
		if pi < 0 {
			v.failf(c.Block, "relational evidence requires a comparison in the predecessor")
			return
		}
		pc := &p.Insts[pi]
		if !carriable(pc.Src) || !carriable(pc.Src2) {
			v.failf(c.Block, "relational evidence operands cannot be carried across blocks")
			return
		}
		if !pc.Src.Equal(c.Evidence.RelX) || !pc.Src2.Equal(c.Evidence.RelY) {
			v.failf(c.Block, "relational evidence operands do not match the predecessor's comparison")
			return
		}
		rel := pt.BrRel
		if c.Edge == EdgeFall {
			rel = rel.Negate()
		}
		if rel != c.Evidence.Rel {
			v.failf(c.Block, "edge carries relation %v, certificate claims %v", rel, c.Evidence.Rel)
			return
		}
		if !unclobbered(pc.Src, pc.Src2, p.Insts[pi+1:]) || !unclobbered(pc.Src, pc.Src2, t.Insts[:ci]) {
			v.failf(c.Target, "compared operands are not provably stable between the two tests")
			return
		}
		var qr rtl.Rel
		switch {
		case tCmp.Src.Equal(pc.Src) && tCmp.Src2.Equal(pc.Src2):
			qr = q
		case tCmp.Src.Equal(pc.Src2) && tCmp.Src2.Equal(pc.Src):
			qr = q.Swap()
		default:
			v.failf(c.Target, "folded comparison does not test the evidence operands")
			return
		}
		decided, outcome := implies(rel, qr)
		if !decided {
			v.failf(c.Target, "relational evidence does not decide the branch")
		} else if outcome != c.Taken {
			v.failf(c.Target, "relational evidence decides the branch against the folded direction")
		}
	default:
		v.failf(c.Target, "unknown evidence route %q", c.Evidence.Route)
	}
}

// checkRotation validates a LOOPS rotation: the jump block's appended tail
// is the loop test's body followed by a branch whose taken and
// fall-through edges are the test's two successors, directly or reversed.
func (v *checker) checkRotation() {
	c := v.c
	p := v.block(c.Block)
	h := v.block(c.Target)
	if p == nil || h == nil {
		v.failf(c.Block, "jump block %v or test block %v not found", c.Block, c.Target)
		return
	}
	if c.CopyLen < 2 || c.CopyLen != len(h.Insts) {
		v.failf(c.Block, "rotation copied %d instructions, test block %v has %d", c.CopyLen, c.Target, len(h.Insts))
		return
	}
	if len(p.Insts) < c.CopyLen {
		v.failf(c.Block, "jump block is shorter than the rotated test")
		return
	}
	hterm := h.Term()
	if hterm == nil || hterm.Kind != rtl.Br {
		v.failf(c.Target, "rotated block does not end in a conditional branch")
		return
	}
	hnext := v.next(h)
	if hnext == nil {
		v.failf(c.Target, "rotated test has no fall-through successor")
		return
	}
	tail := p.Insts[len(p.Insts)-c.CopyLen:]
	if !bodiesEqual(tail[:c.CopyLen-1], h.Insts[:len(h.Insts)-1]) {
		v.failf(c.Block, "rotated test body diverges from the loop test %v", c.Target)
		return
	}
	br := &tail[c.CopyLen-1]
	if br.Kind != rtl.Br {
		v.failf(c.Block, "rotated test does not end in a conditional branch")
		return
	}
	if br.Annul != hterm.Annul {
		v.failf(c.Block, "rotated branch annul bit diverges from the loop test")
	}
	pnext := v.next(p)
	if pnext == nil {
		v.failf(c.Block, "rotated block has no fall-through successor")
		return
	}
	switch {
	case br.BrRel == hterm.BrRel:
		if br.Target != hterm.Target || pnext.Label != hnext.Label {
			v.failf(c.Block, "rotated branch edges (%v, %v) do not match the loop test's (%v, %v)",
				br.Target, pnext.Label, hterm.Target, hnext.Label)
		}
	case br.BrRel == hterm.BrRel.Negate():
		if br.Target != hnext.Label || pnext.Label != hterm.Target {
			v.failf(c.Block, "reversed rotated branch edges (%v, %v) do not swap the loop test's (%v, %v)",
				br.Target, pnext.Label, hterm.Target, hnext.Label)
		}
	default:
		v.failf(c.Block, "rotated branch relation matches neither the loop test nor its reversal")
	}
}
