package tv

import "repro/internal/rtl"

// This file is the validator's own decision procedure for fold evidence.
// It deliberately re-implements — rather than imports — the optimizer's
// per-path constant propagation, operand-stability check and relation
// sign-set algebra: the whole point of re-deriving a fold's outcome is
// that a bug in the optimizer's copy of the analysis cannot vouch for
// itself. Only the IR's ground truth (operand equality, operator
// evaluation, rtl.Rel.Holds) is shared, because that *is* the semantics
// being preserved.

// symEnv tracks the constant values a straight-line path proves for
// registers and unaliased frame slots. Everything starts unknown; the
// simulation only ever narrows unknowns to constants observed on the path
// itself, so lookups are sound on any execution that follows the path.
type symEnv struct {
	regs   map[rtl.Reg]int64
	locals map[int64]int64
}

func newSymEnv() *symEnv {
	return &symEnv{regs: map[rtl.Reg]int64{}, locals: map[int64]int64{}}
}

// lookup resolves an operand to a constant proven on the simulated path.
func (e *symEnv) lookup(o rtl.Operand) (int64, bool) {
	switch o.Kind {
	case rtl.OImm:
		return o.Val, true
	case rtl.OReg:
		v, ok := e.regs[o.Reg]
		return v, ok
	case rtl.OLocal:
		v, ok := e.locals[o.Val]
		return v, ok
	}
	return 0, false
}

// set records dst's value after an instruction: a proven constant, or
// unknown (which erases any prior fact). A store through memory may alias
// any addressable frame slot, so it erases every tracked local.
func (e *symEnv) set(dst rtl.Operand, v int64, known bool) {
	switch dst.Kind {
	case rtl.OReg:
		if known {
			e.regs[dst.Reg] = v
		} else {
			delete(e.regs, dst.Reg)
		}
	case rtl.OLocal:
		if known {
			e.locals[dst.Val] = v
		} else {
			delete(e.locals, dst.Val)
		}
	case rtl.OMem, rtl.OGlobal:
		clear(e.locals)
	}
}

// exec simulates one instruction. Control-transfer instructions, compares
// and argument stores have no tracked effect on registers or locals.
func (e *symEnv) exec(in *rtl.Inst) {
	switch in.Kind {
	case rtl.Move:
		v, ok := e.lookup(in.Src)
		e.set(in.Dst, v, ok)
	case rtl.Bin:
		x, okx := e.lookup(in.Src)
		y, oky := e.lookup(in.Src2)
		if okx && oky {
			e.set(in.Dst, in.BOp.Eval(x, y), true)
		} else {
			e.set(in.Dst, 0, false)
		}
	case rtl.Un:
		if x, ok := e.lookup(in.Src); ok {
			e.set(in.Dst, in.UOp.Eval(x), true)
		} else {
			e.set(in.Dst, 0, false)
		}
	case rtl.Call:
		// The callee's frame is separate (registers survive) but it may
		// store through any pointer it was handed.
		clear(e.locals)
		if in.Dst.Kind != rtl.ONone {
			e.set(in.Dst, 0, false)
		}
	}
}

// carriable reports whether a relational fact about the operand survives
// crossing a block boundary: registers, immediates and frame slots do;
// anything reached through memory indirection does not.
func carriable(o rtl.Operand) bool {
	switch o.Kind {
	case rtl.OReg, rtl.OImm, rtl.OLocal:
		return true
	}
	return false
}

// unclobbered reports whether executing insts provably leaves the values
// of both operands unchanged: no instruction defines a register either
// reads, and no store or call can alias a frame slot either reads.
func unclobbered(x, y rtl.Operand, insts []rtl.Inst) bool {
	readsReg := func(r rtl.Reg) bool {
		return (x.Kind == rtl.OReg && x.Reg == r) || (y.Kind == rtl.OReg && y.Reg == r)
	}
	readsLocal := func(off int64, any bool) bool {
		if x.Kind == rtl.OLocal && (any || x.Val == off) {
			return true
		}
		return y.Kind == rtl.OLocal && (any || y.Val == off)
	}
	for i := range insts {
		in := &insts[i]
		if d := in.DefReg(); d != rtl.RegNone && readsReg(d) {
			return false
		}
		switch in.Kind {
		case rtl.Move, rtl.Bin, rtl.Un:
			switch in.Dst.Kind {
			case rtl.OLocal:
				if readsLocal(in.Dst.Val, false) {
					return false
				}
			case rtl.OMem, rtl.OGlobal:
				if readsLocal(0, true) {
					return false
				}
			}
		case rtl.Call:
			if readsLocal(0, true) {
				return false
			}
		}
	}
	return true
}

// signSet encodes a relation as the subset of {<, ==, >} that satisfies
// it, so implication between two relations over the same operand pair is
// set containment and exclusion is empty intersection.
type signSet uint8

const (
	signLt signSet = 1 << iota
	signEq
	signGt
	signAll = signLt | signEq | signGt
)

// signsOf returns the relation's sign set.
func signsOf(r rtl.Rel) signSet {
	switch r {
	case rtl.Eq:
		return signEq
	case rtl.Ne:
		return signLt | signGt
	case rtl.Lt:
		return signLt
	case rtl.Le:
		return signLt | signEq
	case rtl.Gt:
		return signGt
	case rtl.Ge:
		return signGt | signEq
	}
	return signAll
}

// implies reports whether "x known y" forces "x query y" true (decided
// true), forces it false (decided false), or leaves it open.
func implies(known, query rtl.Rel) (decided, outcome bool) {
	ks, qs := signsOf(known), signsOf(query)
	switch {
	case ks&^qs == 0:
		return true, true
	case ks&qs == 0:
		return true, false
	}
	return false, false
}

// lastCmp returns the index of the last comparison before the block's
// terminator, or -1 when the block computes no condition of its own.
func lastCmp(insts []rtl.Inst) int {
	for i := len(insts) - 2; i >= 0; i-- {
		if insts[i].Kind == rtl.Cmp {
			return i
		}
	}
	return -1
}
