// Package tv is the translation validator for the duplication engine: a
// per-transformation equivalence checker in the Pnueli/Necula tradition,
// specialized to the four structural edits internal/replicate performs.
//
// The engine emits one Certificate per *applied* duplication (rolled-back
// candidates emit nothing — see replicate.Options.OnCertificate), recording
// the source edge, the replicated block range, every retargeted branch, and
// — for a folded conditional — the decided transfer plus the evidence that
// decided it. Validate then checks the certificate against the
// post-transformation flow graph, on which every original block still
// coexists with its copies, so equivalence reduces to a cut-point
// bisimulation with block entries as cut points and the identity variable
// map:
//
//   - each copy's body (everything up to the terminator) must be
//     instruction-for-instruction equal to its original's, so symbolic
//     simulation of the duplicated path against the original path is the
//     identity between cut points;
//   - each copy's outgoing edges must correspond to its original's under
//     the image relation img(Y, X) ≡ Y = X or (X, Y) ∈ Copies — including
//     the branch-reversal case (negated relation with swapped taken and
//     fall-through edges) and fall-through edges routed through an
//     auxiliary single-jump block;
//   - every branch retargeted from an original onto a copy must land on a
//     certificate-listed copy of exactly the block it used to target.
//
// The relation {(copy, original)} ∪ identity is then a bisimulation: every
// step from a copy is matched by the corresponding step from its original
// into related states with equal variable maps, coinductively for cycles
// among copies.
//
// A fold certificate carries one extra obligation: the copy's conditional
// branch was replaced by an unconditional transfer to the direction the
// optimizer claims is decided on the duplicated edge. Validate discharges
// it by re-deriving the outcome from scratch — its own constant
// environment, operand-stability check, and relation sign-set algebra
// (sym.go), deliberately independent of the optimizer's implementation —
// and rejects the certificate unless the re-derivation reaches the same
// verdict as the recorded Evidence.
//
// Validation failures are reported as verify.Violations with
// verify.RuleTranslation so the pipeline's verify-each machinery attributes
// them to pass, stage and iteration (see pipeline.Config.TV).
package tv

import "repro/internal/rtl"

// Kind identifies which structural edit a certificate describes.
type Kind string

// The certificate kinds, one per duplication-engine edit.
const (
	// KindReplication is a JUMPS step-4/5 splice: an unconditional jump
	// replaced by copies of the blocks on a path from its target.
	KindReplication Kind = "replication"
	// KindJumpDelete is the trivial JUMPS case: a jump to the positionally
	// next block deleted outright (nothing is copied).
	KindJumpDelete Kind = "jump-delete"
	// KindFold is a DUPS conditional elimination: a test block duplicated
	// onto one incoming edge with its branch folded to the decided
	// transfer.
	KindFold Kind = "fold"
	// KindRotation is a LOOPS rotation: a jump to a loop's pure
	// termination test replaced in place by an adjusted copy of the test.
	KindRotation Kind = "rotation"
)

// CopyPair records that block Copy was spliced in as a copy of block Orig.
type CopyPair struct {
	Orig rtl.Label `json:"orig"`
	Copy rtl.Label `json:"copy"`
}

// Retarget records one branch rewritten from an original block onto its
// copy (JUMPS step 5 preserving loop structure, or a fold's branch-taken
// edge).
type Retarget struct {
	// Block is the label of the block whose terminating branch was
	// rewritten.
	Block rtl.Label `json:"block"`
	// Old and New are the branch target before and after the rewrite; New
	// must be a certificate-listed copy of Old.
	Old rtl.Label `json:"old"`
	New rtl.Label `json:"new"`
}

// EdgeShape classifies the incoming edge a fold acted on, mirroring the
// engine's edge kinds.
type EdgeShape string

// The fold edge shapes.
const (
	// EdgeJump: the predecessor ended in an unconditional jump to the test
	// block; the fold dissolved the jump and the copy became the
	// predecessor's fall-through.
	EdgeJump EdgeShape = "jump"
	// EdgeBrTaken: the predecessor's conditional branch targeted the test
	// block; the taken edge was retargeted onto the copy.
	EdgeBrTaken EdgeShape = "br-taken"
	// EdgeFall: control fell through into the test block; the copy was
	// spliced between predecessor and test.
	EdgeFall EdgeShape = "fall"
)

// EvidenceRoute names which of the two decision procedures decided a
// folded branch.
type EvidenceRoute string

// The fold evidence routes.
const (
	// RouteConst: both compared values are constants on the path through
	// the predecessor.
	RouteConst EvidenceRoute = "const"
	// RouteRel: the predecessor's own terminating test compared the same
	// operands and the edge direction implies the outcome.
	RouteRel EvidenceRoute = "rel"
)

// Evidence is the reason a fold's branch outcome was decided. The
// validator re-derives the outcome from the flow graph and requires the
// re-derivation to travel the recorded route to the recorded verdict — the
// evidence is checked, never trusted.
type Evidence struct {
	Route EvidenceRoute `json:"route"`
	// X and Y are the constant operand values of the folded comparison
	// (RouteConst only).
	X int64 `json:"x,omitempty"`
	Y int64 `json:"y,omitempty"`
	// RelX and RelY are the operands of the predecessor's dominating test
	// and Rel the relation known to hold between them on the folded edge
	// (RouteRel only).
	RelX rtl.Operand `json:"rel_x"`
	RelY rtl.Operand `json:"rel_y"`
	Rel  rtl.Rel     `json:"rel,omitempty"`
}

// Certificate describes one applied duplication in enough detail for
// Validate to check it against the post-transformation function. Fields
// beyond Kind/Func/Block/Target apply only to the kinds noted.
type Certificate struct {
	Kind Kind   `json:"kind"`
	Func string `json:"func"`
	// Block is the source block of the rewritten edge: the block whose
	// jump was replaced (replication, jump-delete, rotation) or the
	// predecessor whose edge was folded (fold).
	Block rtl.Label `json:"block"`
	// Target is the original destination of that edge: the deleted jump's
	// target, the head of the replicated sequence, the duplicated test
	// block, or the rotated loop test.
	Target rtl.Label `json:"target"`

	// Copies lists the spliced copies in replica order (replication only;
	// Copies[0].Orig is Target and Copies[0].Copy the block the source
	// now falls into).
	Copies []CopyPair `json:"copies,omitempty"`
	// Aux lists the auxiliary single-jump blocks the splice created for
	// fall-through edges neither side of a copied branch could satisfy.
	Aux []rtl.Label `json:"aux,omitempty"`
	// FallsTo is the label execution reaches after the last replica block
	// by fall-through, or rtl.NoLabel for a favoring-returns sequence.
	FallsTo rtl.Label `json:"falls_to,omitempty"`
	// Retargets lists every branch redirected from an original onto a
	// copy (replication step 5).
	Retargets []Retarget `json:"retargets,omitempty"`

	// Copy is the folded copy's label (fold only).
	Copy rtl.Label `json:"copy,omitempty"`
	// Edge is the shape of the incoming edge the fold acted on.
	Edge EdgeShape `json:"edge,omitempty"`
	// Taken reports the decided branch direction and Dest the transfer
	// target the fold installed (the branch target when taken, the test
	// block's fall-through otherwise).
	Taken bool      `json:"taken,omitempty"`
	Dest  rtl.Label `json:"dest,omitempty"`
	// Evidence is the decision evidence the validator re-derives.
	Evidence Evidence `json:"evidence"`

	// CopyLen is the number of instructions the rotation appended in
	// place of the jump (rotation only); it must equal the test block's
	// length.
	CopyLen int `json:"copy_len,omitempty"`
}
