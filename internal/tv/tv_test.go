// Package tv_test drives the validator with certificates harvested from
// the real replication engine and then tampers with them: every doctored
// certificate (or doctored function) must be rejected. The engine lives in
// internal/replicate, which imports this package for the Certificate type —
// hence the external test package.
package tv_test

import (
	"encoding/json"
	"testing"

	"repro/internal/cfg"
	"repro/internal/replicate"
	"repro/internal/rtl"
	"repro/internal/tv"
)

// Fixtures. The fold fixture deliberately contains no unconditional jump,
// so DUPS' leading JUMPS leg is a no-op and the fold leg fires on the
// fall-through edge with constant evidence.
const (
	replicableSrc = `func r(params=0, locals=0):
L0:
	v0 = #1
	PC = L2
L1:
	v0 = #2
L2:
	PC = RT, rv=v0
`
	constFallSrc = `func cf(params=0, locals=0):
L0:
	v0 = #0
L1:
	CC = v0 ? #0
	PC = CC > 0, L3
L2:
	PC = RT, rv=v0
L3:
	v0 = #5
	PC = RT, rv=v0
`
	whileShapeSrc = `func w(params=1, locals=1):
L0:
	v0 = L[fp+0]
	PC = L2
L1:
	v0 = v0 - #1
L2:
	CC = v0 ? #0
	PC = CC > 0, L1
L3:
	PC = RT, rv=v0
`
)

// harvest runs one engine pass over src and returns the post-state
// function snapshot and certificate of the first emission matching kind.
func harvest(t *testing.T, src string, kind tv.Kind, pass func(*cfg.Func, replicate.Options) replicate.Result) (*cfg.Func, *tv.Certificate) {
	t.Helper()
	f, err := cfg.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	var snap *cfg.Func
	var cert *tv.Certificate
	pass(f, replicate.Options{
		OnCertificate: func(fn *cfg.Func, c *tv.Certificate) {
			if c.Kind != kind || cert != nil {
				return
			}
			snap, cert = fn.Clone(), c
		},
	})
	if cert == nil {
		t.Fatalf("no %s certificate emitted for:\n%s", kind, src)
	}
	if vs := tv.Validate(snap, cert); len(vs) != 0 {
		t.Fatalf("clean %s certificate rejected: %v", kind, vs)
	}
	return snap, cert
}

// TestTamperedCertificatesRejected: each scenario perturbs one aspect of a
// genuine certificate (or of the function it describes) and expects the
// validator to produce at least one translation-validation violation.
func TestTamperedCertificatesRejected(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		kind   tv.Kind
		pass   func(*cfg.Func, replicate.Options) replicate.Result
		tamper func(f *cfg.Func, c *tv.Certificate)
	}{
		{
			name: "replication/wrong-target", src: replicableSrc,
			kind: tv.KindReplication, pass: replicate.JUMPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) { c.Target = c.Block },
		},
		{
			name: "replication/corrupted-copy-body", src: replicableSrc,
			kind: tv.KindReplication, pass: replicate.JUMPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) {
				// A real miscompile: the copy returns a different register
				// than the original it claims to mirror.
				cp := f.BlockByLabel(c.Copies[0].Copy)
				cp.Insts[len(cp.Insts)-1].Src = rtl.R(rtl.VRegBase + 7)
			},
		},
		{
			name: "replication/unlisted-copy", src: replicableSrc,
			kind: tv.KindReplication, pass: replicate.JUMPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) { c.Copies = nil },
		},
		{
			name: "fold/flipped-direction", src: constFallSrc,
			kind: tv.KindFold, pass: replicate.DUPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) { c.Taken = !c.Taken },
		},
		{
			name: "fold/forged-constant", src: constFallSrc,
			kind: tv.KindFold, pass: replicate.DUPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) { c.Evidence.X = c.Evidence.X + 1 },
		},
		{
			name: "fold/wrong-route", src: constFallSrc,
			kind: tv.KindFold, pass: replicate.DUPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) { c.Evidence.Route = tv.RouteRel },
		},
		{
			name: "fold/miscompiled-transfer", src: constFallSrc,
			kind: tv.KindFold, pass: replicate.DUPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) {
				// The folded copy jumps to the wrong arm of the test.
				cp := f.BlockByLabel(c.Copy)
				tb := f.BlockByLabel(c.Target)
				term := cp.Term()
				if term.Target == tb.Term().Target {
					term.Target = f.Blocks[tb.Index+1].Label
				} else {
					term.Target = tb.Term().Target
				}
			},
		},
		{
			name: "rotation/wrong-length", src: whileShapeSrc,
			kind: tv.KindRotation, pass: replicate.LOOPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) { c.CopyLen = 3 },
		},
		{
			name: "rotation/unswapped-negation", src: whileShapeSrc,
			kind: tv.KindRotation, pass: replicate.LOOPS,
			tamper: func(f *cfg.Func, c *tv.Certificate) {
				// Negating the rotated branch without swapping its edges
				// inverts the loop exit condition — a classic rotation bug.
				p := f.BlockByLabel(c.Block)
				br := p.Term()
				br.BrRel = br.BrRel.Negate()
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, cert := harvest(t, tc.src, tc.kind, tc.pass)
			certCopy := *cert
			tc.tamper(snap, &certCopy)
			if vs := tv.Validate(snap, &certCopy); len(vs) == 0 {
				t.Errorf("tampered certificate accepted:\n%s", snap)
			}
		})
	}
}

// TestUnknownKindRejected: a certificate of a kind the validator does not
// know is never silently accepted.
func TestUnknownKindRejected(t *testing.T) {
	f, err := cfg.ParseFunc(replicableSrc)
	if err != nil {
		t.Fatal(err)
	}
	vs := tv.Validate(f, &tv.Certificate{Kind: "mystery", Func: "r"})
	if len(vs) == 0 {
		t.Fatal("unknown certificate kind accepted")
	}
}

// TestCertificateJSONRoundTrip: certificates are wire-stable — they travel
// through trace files and test reports, so marshalling must round-trip.
func TestCertificateJSONRoundTrip(t *testing.T) {
	_, cert := harvest(t, constFallSrc, tv.KindFold, replicate.DUPS)
	b, err := json.Marshal(cert)
	if err != nil {
		t.Fatal(err)
	}
	var back tv.Certificate
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != cert.Kind || back.Func != cert.Func || back.Block != cert.Block ||
		back.Dest != cert.Dest || back.Taken != cert.Taken ||
		back.Evidence != cert.Evidence {
		t.Errorf("round trip changed the certificate:\n got %+v\nwant %+v", back, *cert)
	}
}
