package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ease"
	"repro/internal/obs"
	"repro/internal/replicate"
	"repro/internal/verify"
)

// Pool is the subset of the service worker pool the grid runner needs.
// service.Pool satisfies it; bench deliberately does not import the
// service package so the dependency points service → bench, letting the
// daemon route grid cells through the same pool that serves its
// synchronous requests.
type Pool interface {
	Submit(ctx context.Context, fn func(context.Context)) error
}

// GridConfig describes one full experiment grid run.
type GridConfig struct {
	// Programs to measure (nil = the full Table-3 set).
	Programs []Program
	// Caches enables the Table-6 cache bank (roughly 8x slower).
	Caches bool
	// CacheSizes overrides the paper's {1,2,4,8} KB bank (bytes).
	CacheSizes []int64
	// Replication tunes the JUMPS algorithm.
	Replication replicate.Options
	// VerifyEach runs the semantic IR verifier (internal/verify) after
	// every pipeline pass in every cell; the first violation fails the
	// grid run with the offending pass named in the error.
	VerifyEach bool
	// TV runs the translation validator over every cell's duplication
	// engine (ease.Request.TV): a rejected certificate fails the grid run
	// the same way a VerifyEach violation does.
	TV bool
	// Progress, when non-nil, receives one line per completed cell.
	// Writes are serialized, so any io.Writer is safe.
	Progress io.Writer
	// Pool, when non-nil, runs cells concurrently through the shared
	// worker pool; nil runs them sequentially on the calling goroutine.
	Pool Pool
	// OnCell, when non-nil, is called (serialized) after each completed
	// cell — the daemon uses it for job progress and latency metrics.
	OnCell func(*Cell)
	// Tracer, when non-nil, receives the whole grid's telemetry: a
	// queue-wait span and the full EASE span tree (phases, per-pass
	// spans, decision log, VM profile) per cell, with each cell's events
	// stamped with its machine and level so concurrent cells stay
	// distinguishable. Tracing never changes the measured results: the
	// rendered tables are byte-identical with and without it.
	Tracer obs.Tracer
}

// cellStamp stamps a cell's grid coordinates onto every event that does
// not already carry them (on a copy — emitted events are immutable by
// the Tracer contract).
type cellStamp struct {
	machine string
	level   string
	next    obs.Tracer
}

func (t cellStamp) Emit(ev *obs.Event) {
	cp := *ev
	if cp.Machine == "" {
		cp.Machine = t.machine
	}
	if cp.Level == "" {
		cp.Level = t.level
	}
	t.next.Emit(&cp)
}

// cellSpec is one grid position, fixed before execution so results land
// at deterministic indices regardless of completion order.
type cellSpec struct {
	prog  Program
	mach  int // index into machines
	level int // index into levels
}

// RunGrid measures every (program × machine × level) cell of the
// configured grid. Results are identical to the sequential RunAllSizes
// byte for byte: cells are preassigned slice positions in canonical
// order, so concurrency changes only the wall-clock time and the order
// of progress lines.
func RunGrid(ctx context.Context, cfg GridConfig) (*Results, error) {
	progs := cfg.Programs
	if progs == nil {
		progs = Programs()
	}
	var res Results
	res.CacheSizes = cfg.CacheSizes
	if res.CacheSizes == nil {
		res.CacheSizes = []int64{1 * 1024, 2 * 1024, 4 * 1024, 8 * 1024}
	}

	specs := make([]cellSpec, 0, len(progs)*len(machines)*len(levels))
	for _, p := range progs {
		for mi := range machines {
			for li := range levels {
				specs = append(specs, cellSpec{p, mi, li})
			}
		}
	}
	res.Cells = make([]Cell, len(specs))

	var mu sync.Mutex // serializes progress writes, OnCell, and firstErr
	var firstErr error
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	runCell := func(i int, wait time.Duration) {
		sp := specs[i]
		m, lv := machines[sp.mach], levels[sp.level]
		tr := cfg.Tracer
		if tr != nil {
			tr = cellStamp{machine: m.Name, level: lv.String(), next: tr}
			tr.Emit(&obs.Event{
				Type: obs.EvPhase, Name: "queue-wait", Func: sp.prog.Name,
				TimeNS: time.Now().Add(-wait).UnixNano(), DurNS: int64(wait), // det:allow nodeterminism — queue-wait telemetry
			})
		}
		run, err := ease.Measure(ease.Request{
			Name:           sp.prog.Name,
			Source:         sp.prog.Source,
			Input:          []byte(sp.prog.Input),
			Machine:        m,
			Level:          lv,
			Replication:    cfg.Replication,
			SimulateCaches: cfg.Caches,
			CacheSizes:     cfg.CacheSizes,
			VerifyEach:     cfg.VerifyEach,
			TV:             cfg.TV,
			Tracer:         tr,
		})
		if err != nil {
			fail(err)
			return
		}
		if err := verify.Error(run.Static.Verify); err != nil {
			fail(fmt.Errorf("bench: %s (%s/%s): %w", sp.prog.Name, m.Name, lv, err))
			return
		}
		res.Cells[i] = Cell{
			Program: sp.prog.Name, Machine: m.Name, Level: lv,
			Run: run, QueueWait: wait,
		}
		mu.Lock()
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "measured %-10s %-6s %-6s exec=%d in %s\n",
				sp.prog.Name, m.Name, lv, run.Dynamic.Exec,
				run.Elapsed.Round(time.Millisecond))
		}
		if cfg.OnCell != nil {
			cfg.OnCell(&res.Cells[i])
		}
		mu.Unlock()
	}

	if cfg.Pool == nil {
		for i := range specs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runCell(i, 0)
			if firstErr != nil {
				return nil, firstErr
			}
		}
	} else {
		var wg sync.WaitGroup
		for i := range specs {
			if ctx.Err() != nil {
				break
			}
			i := i
			wg.Add(1)
			submitted := time.Now() // det:allow nodeterminism — queue-wait telemetry
			err := cfg.Pool.Submit(ctx, func(ctx context.Context) {
				defer wg.Done()
				if ctx.Err() != nil {
					return
				}
				runCell(i, time.Since(submitted)) // det:allow nodeterminism — queue-wait telemetry
			})
			if err != nil {
				wg.Done()
				fail(err)
				break
			}
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &res, nil
}
