package bench

// grep, sort — the pattern matcher and the line sorter of Table 3.

const grepSrc = `
/* grep - pattern search (Table 3). The first input line is the pattern; a
 * recursive matcher supporting ^ $ . * + and [...] / [^...] character
 * classes (with ranges) follows, like the original's regular expressions.
 * Matching lines print with their line number; the match count ends the
 * output. */
char pat[128];
char line[256];

/* classend returns the index just past a [...] class starting at re[i]. */
int classend(char *re, int i) {
	i++;
	if (re[i] == '^')
		i++;
	if (re[i] == ']')
		i++;
	while (re[i] != '\0' && re[i] != ']')
		i++;
	if (re[i] == ']')
		i++;
	return i;
}

/* inclass tests c against the class [start..end). */
int inclass(char *re, int start, int end, int c) {
	int i, neg, hit;
	i = start + 1;
	neg = 0;
	if (re[i] == '^') {
		neg = 1;
		i++;
	}
	hit = 0;
	while (i < end - 1) {
		if (re[i+1] == '-' && i + 2 < end - 1) {
			if (c >= re[i] && c <= re[i+2])
				hit = 1;
			i += 3;
			continue;
		}
		if (re[i] == c)
			hit = 1;
		i++;
	}
	if (neg)
		return !hit;
	return hit;
}

/* single tests one pattern atom starting at re[i] against character c;
 * atomlen receives the atom's length via a global. */
int atomlen = 0;

int single(char *re, int i, int c) {
	if (re[i] == '[') {
		int e;
		e = classend(re, i);
		atomlen = e - i;
		if (c == '\0')
			return 0;
		return inclass(re, i, e, c);
	}
	atomlen = 1;
	if (c == '\0')
		return 0;
	if (re[i] == '.')
		return 1;
	return re[i] == c;
}

/* matchhere is used before its definition; mini-C resolves calls at the
 * unit level, so no forward declaration is needed. */
int matchstar(char *re, int ri, int alen, char *text) {
	int ti;
	ti = 0;
	/* longest-match first would need backtracking storage; shortest-first
	 * suffices for these patterns, like the K&P matcher */
	do {
		if (matchhere(re, ri + alen + 1, text + ti))
			return 1;
	} while (single(re, ri, text[ti++]));
	return 0;
}

int matchplus(char *re, int ri, int alen, char *text) {
	if (!single(re, ri, text[0]))
		return 0;
	return matchstar(re, ri, alen, text + 1);
}

int matchhere(char *re, int ri, char *text) {
	int alen;
	if (re[ri] == '\0')
		return 1;
	if (re[ri] == '$' && re[ri+1] == '\0')
		return *text == '\0';
	/* peek at the atom to find its extent */
	single(re, ri, 'x');
	alen = atomlen;
	if (re[ri + alen] == '*')
		return matchstar(re, ri, alen, text);
	if (re[ri + alen] == '+')
		return matchplus(re, ri, alen, text);
	if (single(re, ri, *text))
		return matchhere(re, ri + alen, text + 1);
	return 0;
}

int match(char *re, char *text) {
	if (re[0] == '^')
		return matchhere(re, 1, text);
	do {
		if (matchhere(re, 0, text))
			return 1;
	} while (*text++ != '\0');
	return 0;
}

/* readline reads one line into buf; returns length or -1 at EOF. */
int readline(char *buf, int max) {
	int c, n;
	n = 0;
	while ((c = getchar()) != -1 && c != '\n') {
		if (n < max - 1)
			buf[n++] = c;
	}
	buf[n] = '\0';
	if (c == -1 && n == 0)
		return -1;
	return n;
}

int main() {
	int lineno, matched;
	matched = 0;
	if (readline(pat, 128) < 0)
		return 1;
	lineno = 0;
	while (readline(line, 256) >= 0) {
		lineno++;
		if (match(pat, line)) {
			printint(lineno);
			putchar(':');
			printstr(line);
			putchar('\n');
			matched++;
		}
	}
	printint(matched);
	putchar('\n');
	return 0;
}
`

const sortSrc = `
/* sort - sort lines of input (Table 3), bottom-up merge sort over line
 * indices, like the original's merge phases. */
char text[4096];
int start[300];
int len[300];
int idx[300];
int tmp[300];
int nlines = 0;
int used = 0;

int readline() {
	int c, n;
	if (nlines >= 300)
		return -1;
	n = 0;
	c = getchar();
	if (c == -1)
		return -1;
	start[nlines] = used;
	while (c != -1 && c != '\n') {
		if (used < 4095) {
			text[used++] = c;
			n++;
		}
		c = getchar();
	}
	text[used++] = '\0';
	len[nlines] = n;
	nlines++;
	return n;
}

int cmp(int a, int b) {
	char *p, *q;
	p = &text[start[a]];
	q = &text[start[b]];
	while (*p != '\0' && *p == *q) {
		p++;
		q++;
	}
	return *p - *q;
}

/* merge idx[lo..mid-1] and idx[mid..hi-1] using tmp. */
void merge(int lo, int mid, int hi) {
	int i, j, k;
	i = lo; j = mid; k = lo;
	while (i < mid && j < hi) {
		if (cmp(idx[i], idx[j]) <= 0)
			tmp[k++] = idx[i++];
		else
			tmp[k++] = idx[j++];
	}
	while (i < mid)
		tmp[k++] = idx[i++];
	while (j < hi)
		tmp[k++] = idx[j++];
	for (i = lo; i < hi; i++)
		idx[i] = tmp[i];
}

int main() {
	int i, width, lo, mid, hi;
	while (readline() >= 0)
		;
	for (i = 0; i < nlines; i++)
		idx[i] = i;
	width = 1;
	while (width < nlines) {
		lo = 0;
		while (lo < nlines) {
			mid = lo + width;
			if (mid > nlines)
				mid = nlines;
			hi = lo + 2 * width;
			if (hi > nlines)
				hi = nlines;
			if (mid < hi)
				merge(lo, mid, hi);
			lo = hi;
		}
		width = 2 * width;
	}
	for (i = 0; i < nlines; i++) {
		printstr(&text[start[idx[i]]]);
		putchar('\n');
	}
	return 0;
}
`
