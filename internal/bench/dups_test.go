package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// TestDupsReducesDynamicCondBranches pins the DUPS acceptance claim on the
// Table-3 suite: per program the DUPS build executes no more conditional
// branches than the JUMPS build, and over the whole suite strictly fewer —
// all within the stock §5.2 growth caps (the defaults, nothing loosened).
func TestDupsReducesDynamicCondBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite VM measurement")
	}
	m := machine.M68020
	var totJ, totD int64
	for _, p := range bench.Programs() {
		runs := map[pipeline.Level]*ease.Run{}
		for _, lv := range []pipeline.Level{pipeline.Jumps, pipeline.Dups} {
			run, err := ease.Measure(ease.Request{
				Name: p.Name, Source: p.Source, Input: []byte(p.Input),
				Machine: m, Level: lv,
			})
			if err != nil {
				t.Fatalf("%s at %s: %v", p.Name, lv, err)
			}
			runs[lv] = run
		}
		j := runs[pipeline.Jumps].Dynamic.CondBranches
		d := runs[pipeline.Dups].Dynamic.CondBranches
		if d > j {
			t.Errorf("%s: DUPS executed %d conditional branches, JUMPS only %d", p.Name, d, j)
		}
		// Growth caps respected: the fold budget shares MaxReplications
		// (default 500) with the JUMPS leg, and the function RTL ceiling
		// (default 20000) bounds the whole unit well above any suite
		// program.
		rep := runs[pipeline.Dups].Static.Replication
		if rep.Replications+rep.BranchesFolded > 500 {
			t.Errorf("%s: duplication budget exceeded: %+v", p.Name, rep)
		}
		totJ += j
		totD += d
	}
	if totD >= totJ {
		t.Errorf("suite total: DUPS executed %d conditional branches, JUMPS %d — want strictly fewer", totD, totJ)
	}
}
