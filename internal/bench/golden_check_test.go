package bench_test

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

// TestGoldenOutputs pins every Table-3 program's exact output at the
// highest optimization level on every registered machine against the
// recorded digests: any behavioural drift in the front end, optimizer,
// replication or VM shows up here first. The digests are machine-
// independent (program output only), so the same table covers the whole
// registry — including the x86's jump-table lowering and small register
// file.
func TestGoldenOutputs(t *testing.T) {
	for _, p := range bench.Programs() {
		want, ok := goldenOutputs[p.Name]
		if !ok {
			t.Errorf("%s: no golden digest recorded (REPRO_GEN_GOLDENS=1 regenerates)", p.Name)
			continue
		}
		for _, m := range machine.All() {
			prog, err := mcc.Compile(p.Source)
			if err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: pipeline.Jumps})
			res, err := vm.Run(prog, vm.Config{Input: []byte(p.Input)})
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, m.Name, err)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256(res.Output)); got != want {
				t.Errorf("%s/%s: output digest %s, want %s (output %.80q)",
					p.Name, m.Name, got, want, res.Output)
			}
		}
	}
}
