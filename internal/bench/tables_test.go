package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// TestTable3Listing checks the test-set listing covers all 14 programs.
func TestTable3Listing(t *testing.T) {
	var b strings.Builder
	bench.Table3(&b)
	out := b.String()
	for _, p := range bench.Programs() {
		if !strings.Contains(out, p.Name) {
			t.Errorf("Table 3 listing misses %s", p.Name)
		}
	}
	for _, cls := range []string{"Utilities", "Benchmarks", "User code"} {
		if !strings.Contains(out, cls) {
			t.Errorf("Table 3 listing misses class %s", cls)
		}
	}
}

// TestProgramsWellFormed checks the registry invariants.
func TestProgramsWellFormed(t *testing.T) {
	ps := bench.Programs()
	if len(ps) != 14 {
		t.Fatalf("test set has %d programs, want 14 (Table 3)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate program %s", p.Name)
		}
		seen[p.Name] = true
		if p.Source == "" || p.Description == "" {
			t.Errorf("%s: incomplete metadata", p.Name)
		}
	}
	if bench.ProgramByName("wc") == nil || bench.ProgramByName("nosuch") != nil {
		t.Error("ProgramByName broken")
	}
}

// TestTablesRenderEndToEnd runs the full grid on a single program subset
// by reusing RunAllSizes with tiny caches, then checks the renderers
// produce the expected row skeletons. This is the cmd/tables path without
// the full 84-cell cost.
func TestTablesRenderEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid measurement")
	}
	res, err := bench.RunAllSizes(true, []int64{256}, replicate.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b4, b5, b6, bd strings.Builder
	res.Table4(&b4)
	res.Table5(&b5)
	res.Table6(&b6)
	res.BranchDistance(&bd)
	if !strings.Contains(b4.String(), "SIMPLE") || !strings.Contains(b4.String(), "std. deviation") {
		t.Errorf("Table 4 skeleton wrong:\n%s", b4.String())
	}
	for _, name := range []string{"cal", "deroff", "average"} {
		if !strings.Contains(b5.String(), name) {
			t.Errorf("Table 5 misses row %s", name)
		}
	}
	if !strings.Contains(b6.String(), "256b-JUMPS") {
		t.Errorf("Table 6 misses custom size header:\n%s", b6.String())
	}
	if !strings.Contains(bd.String(), "no-ops eliminated") {
		t.Errorf("branch distance misses the no-op summary:\n%s", bd.String())
	}
	// The grid must hold every program × machine × level cell.
	if want := 14 * len(machine.All()) * len(pipeline.AllLevels()); len(res.Cells) != want {
		t.Errorf("grid has %d cells, want %d", len(res.Cells), want)
	}
}
