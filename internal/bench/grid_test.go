package bench_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/pipeline"
	"repro/internal/service"
)

// subset picks a few fast Table-3 programs for grid tests.
func subset(t *testing.T, names ...string) []bench.Program {
	t.Helper()
	out := make([]bench.Program, 0, len(names))
	for _, n := range names {
		p := bench.ProgramByName(n)
		if p == nil {
			t.Fatalf("unknown program %q", n)
		}
		out = append(out, *p)
	}
	return out
}

// TestRunGridParallelMatchesSequential renders the full table set from a
// sequential run and a 4-worker pool run and requires byte identity —
// the acceptance bar for the -j flag.
func TestRunGridParallelMatchesSequential(t *testing.T) {
	progs := subset(t, "queens", "sieve", "bubblesort")
	seq, err := bench.RunGrid(context.Background(), bench.GridConfig{Programs: progs})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	pool := service.NewPool(4, 0)
	defer pool.Shutdown(context.Background())
	par, err := bench.RunGrid(context.Background(), bench.GridConfig{Programs: progs, Pool: pool})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	var a, b bytes.Buffer
	seq.WriteAll(&a, false)
	par.WriteAll(&b, false)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("parallel tables differ from sequential:\n--- seq ---\n%s\n--- par ---\n%s", a.String(), b.String())
	}
	// Cell order itself is deterministic too.
	for i := range seq.Cells {
		s, p := seq.Cells[i], par.Cells[i]
		if s.Program != p.Program || s.Machine != p.Machine || s.Level != p.Level {
			t.Fatalf("cell %d order differs: %v vs %v", i, s, p)
		}
		if s.Run.Dynamic != p.Run.Dynamic || !reflect.DeepEqual(s.Run.Static, p.Run.Static) {
			t.Fatalf("cell %d measurements differ", i)
		}
	}
}

// TestRunGridProgressSerialized routes progress through a plain
// bytes.Buffer (not concurrency-safe by itself) from a 4-worker run;
// -race verifies RunGrid serializes the writes, and every line must be
// complete.
func TestRunGridProgressSerialized(t *testing.T) {
	var progress bytes.Buffer
	pool := service.NewPool(4, 0)
	defer pool.Shutdown(context.Background())
	_, err := bench.RunGrid(context.Background(), bench.GridConfig{
		Programs: subset(t, "queens", "sieve"),
		Pool:     pool,
		Progress: &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 programs × 3 machines × 4 levels.
	lines := bytes.Split(bytes.TrimRight(progress.Bytes(), "\n"), []byte("\n"))
	if len(lines) != 24 {
		t.Fatalf("progress lines = %d, want 24", len(lines))
	}
	for _, ln := range lines {
		if !bytes.HasPrefix(ln, []byte("measured ")) {
			t.Fatalf("torn progress line: %q", ln)
		}
	}
}

// TestRunGridOnCell counts cell callbacks and checks they carry results.
func TestRunGridOnCell(t *testing.T) {
	var n int
	_, err := bench.RunGrid(context.Background(), bench.GridConfig{
		Programs: subset(t, "queens"),
		OnCell: func(c *bench.Cell) {
			n++
			if c.Run == nil || c.Run.Dynamic.Exec == 0 {
				t.Errorf("OnCell with empty run: %+v", c)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One program across the full 3-machine × 4-level grid.
	if n != 12 {
		t.Fatalf("OnCell calls = %d, want 12", n)
	}
}

// TestRunGridVerifyEach runs a slice of the grid with the semantic
// verifier after every pipeline pass: a healthy pipeline must survive
// every cell, and the measurements must match a plain run (verification
// observes, never rewrites).
func TestRunGridVerifyEach(t *testing.T) {
	progs := subset(t, "queens", "sieve")
	plain, err := bench.RunGrid(context.Background(), bench.GridConfig{Programs: progs})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	verified, err := bench.RunGrid(context.Background(), bench.GridConfig{
		Programs:   progs,
		VerifyEach: true,
	})
	if err != nil {
		t.Fatalf("verify-each grid failed: %v", err)
	}
	for i := range plain.Cells {
		p, v := plain.Cells[i], verified.Cells[i]
		if p.Run.Dynamic != v.Run.Dynamic || p.Run.CodeBytes != v.Run.CodeBytes {
			t.Fatalf("cell %d: verify-each changed the measurement", i)
		}
	}
}

// TestRunGridCancel aborts a run mid-flight.
func TestRunGridCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	_, err := bench.RunGrid(ctx, bench.GridConfig{
		OnCell: func(*bench.Cell) {
			n++
			if n == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResultsGetIndexed exercises the map-backed Get, including the
// rebuild after Cells grows.
func TestResultsGetIndexed(t *testing.T) {
	res, err := bench.RunGrid(context.Background(), bench.GridConfig{
		Programs: subset(t, "queens", "sieve"),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Get("sieve", "SPARC", pipeline.Jumps)
	if c == nil || c.Program != "sieve" || c.Machine != "SPARC" || c.Level != pipeline.Jumps {
		t.Fatalf("Get returned %+v", c)
	}
	if res.Get("sieve", "SPARC", pipeline.Loops) == c {
		t.Fatal("distinct levels returned the same cell")
	}
	if res.Get("wc", "SPARC", pipeline.Jumps) != nil {
		t.Fatal("Get found a program that was not measured")
	}
	// Append more cells by hand: the index must catch up.
	extra := res.Cells[0]
	extra.Program = "phantom"
	res.Cells = append(res.Cells, extra)
	if got := res.Get("phantom", extra.Machine, extra.Level); got == nil {
		t.Fatal("Get missed a cell appended after the index was built")
	}
}
