package bench

// compact, deroff — the compressor and the nroff filter of Table 3 — and
// mincost, the VLSI circuit partitioning application.

const compactSrc = `
/* compact - file compression (Table 3): a static Huffman coder. Reads the
 * input, builds a Huffman tree from byte frequencies, then re-reads the
 * buffered input and emits the bit stream packed into printable output.
 * Finishes with original/compressed bit counts. */
int freq[256];
int left[512];
int right[512];
int weight[512];
int parent[512];
int codebits[256];
int codelen[256];
char buf[8192];
int nbuf = 0;

/* heap of tree node ids ordered by weight */
int heap[512];
int nheap = 0;

void heappush(int v) {
	int i, p, t;
	heap[nheap++] = v;
	i = nheap - 1;
	while (i > 0) {
		p = (i - 1) / 2;
		if (weight[heap[p]] <= weight[heap[i]])
			break;
		t = heap[p]; heap[p] = heap[i]; heap[i] = t;
		i = p;
	}
}

int heappop() {
	int top, i, c, t;
	top = heap[0];
	heap[0] = heap[--nheap];
	i = 0;
	while (1) {
		c = 2 * i + 1;
		if (c >= nheap)
			break;
		if (c + 1 < nheap && weight[heap[c+1]] < weight[heap[c]])
			c++;
		if (weight[heap[i]] <= weight[heap[c]])
			break;
		t = heap[i]; heap[i] = heap[c]; heap[c] = t;
		i = c;
	}
	return top;
}

/* walk assigns code lengths and bit patterns by descending the tree. */
void walk(int node, int bits, int depth) {
	if (node < 256) {
		codebits[node] = bits;
		codelen[node] = depth;
		if (depth == 0)
			codelen[node] = 1;
		return;
	}
	walk(left[node], bits * 2, depth + 1);
	walk(right[node], bits * 2 + 1, depth + 1);
}

int outbits = 0;
int outcount = 0;
char bits[65536];

void putbit(int b) {
	if (outcount < 65536)
		bits[outcount] = b;
	outbits = outbits * 2 + b;
	outcount++;
	if (outcount % 6 == 0) {
		/* pack six bits into one printable character */
		putchar('0' + outbits % 64 / 8);
		outbits = 0;
	}
}

int main() {
	int c, i, next, a, b, root, leaves;
	while ((c = getchar()) != -1 && nbuf < 8192) {
		freq[c]++;
		buf[nbuf++] = c;
	}
	leaves = 0;
	for (i = 0; i < 256; i++) {
		if (freq[i] > 0) {
			weight[i] = freq[i];
			heappush(i);
			leaves++;
		}
	}
	if (leaves == 0)
		return 0;
	next = 256;
	while (nheap > 1) {
		a = heappop();
		b = heappop();
		left[next] = a;
		right[next] = b;
		weight[next] = weight[a] + weight[b];
		parent[a] = next;
		parent[b] = next;
		heappush(next);
		next++;
	}
	root = heappop();
	walk(root, 0, 0);
	for (i = 0; i < nbuf; i++) {
		int j, n, bits;
		c = buf[i];
		n = codelen[c];
		bits = codebits[c];
		for (j = n - 1; j >= 0; j--)
			putbit((bits >> j) & 1);
	}
	putchar('\n');
	printint(nbuf * 8);
	putchar('/');
	printint(outcount);
	putchar('\n');
	/* decode-verify: walk the tree over the emitted bit stream and check
	 * the round trip reproduces the input exactly */
	{
		int bi, node, oi, bad;
		bi = 0; oi = 0; bad = 0;
		while (bi < outcount && oi < nbuf) {
			node = root;
			while (node >= 256 && bi < outcount) {
				if (bits[bi])
					node = right[node];
				else
					node = left[node];
				bi++;
			}
			if (node >= 256)
				break;
			if (node != buf[oi])
				bad++;
			oi++;
		}
		if (bad == 0 && oi == nbuf)
			printstr("roundtrip ok\n");
		else {
			printstr("roundtrip FAILED ");
			printint(bad);
			putchar(' ');
			printint(oi);
			putchar('\n');
		}
	}
	return 0;
}
`

const deroffSrc = `
/* deroff - remove nroff/troff constructs (Table 3). Like the original it
 * understands request lines, font and size escapes, special-character
 * sequences, table (.TS/.TE) and equation (.EQ/.EN) blocks, and strips
 * them all, leaving running text. A -w-style word mode triggers when the
 * first input line is ".wordmode". */
char line[512];
int intable = 0;
int ineqn = 0;
int wordmode = 0;
int lines = 0;
int dropped = 0;
int words = 0;

int readline() {
	int c, n;
	n = 0;
	while ((c = getchar()) != -1 && c != '\n') {
		if (n < 511)
			line[n++] = c;
	}
	line[n] = '\0';
	if (c == -1 && n == 0)
		return -1;
	return n;
}

int startswith(char *p, char *q) {
	while (*q != '\0') {
		if (*p != *q)
			return 0;
		p++;
		q++;
	}
	return 1;
}

int isword(int c) {
	if (c >= 'a' && c <= 'z') return 1;
	if (c >= 'A' && c <= 'Z') return 1;
	if (c >= '0' && c <= '9') return 1;
	return 0;
}

/* request processes a dot-request line; returns 1 when the line is
 * consumed entirely. */
int request() {
	dropped++;
	if (startswith(line, ".TS"))
		intable = 1;
	else if (startswith(line, ".TE"))
		intable = 0;
	else if (startswith(line, ".EQ"))
		ineqn = 1;
	else if (startswith(line, ".EN"))
		ineqn = 0;
	else if (startswith(line, ".wordmode"))
		wordmode = 1;
	return 1;
}

/* escape consumes a backslash sequence starting at line[i] (the char
 * after the backslash); returns the new index and emits any replacement
 * text through putchar. */
int escape(int i, int emitmode) {
	int c;
	c = line[i];
	if (c == '\0')
		return i;
	switch (c) {
	case 'f':
		/* \fB, \fI, \fP, \f(XX */
		i++;
		if (line[i] == '(') {
			i++;
			if (line[i] != '\0') i++;
			if (line[i] != '\0') i++;
		} else if (line[i] != '\0') {
			i++;
		}
		return i;
	case 's':
		/* \s+2, \s-2, \s0 */
		i++;
		if (line[i] == '+' || line[i] == '-')
			i++;
		while (line[i] >= '0' && line[i] <= '9')
			i++;
		return i;
	case '(':
		/* special character \(em, \(bu ... prints as a dash */
		i++;
		if (line[i] != '\0') i++;
		if (line[i] != '\0') i++;
		if (emitmode)
			putchar('-');
		return i;
	case '*':
		/* string interpolation \*x or \*(xx: dropped */
		i++;
		if (line[i] == '(') {
			i++;
			if (line[i] != '\0') i++;
			if (line[i] != '\0') i++;
		} else if (line[i] != '\0') {
			i++;
		}
		return i;
	case '-':
	case ' ':
	case '&':
		if (emitmode && c != '&')
			putchar(c);
		return i + 1;
	default:
		if (emitmode)
			putchar(c);
		return i + 1;
	}
}

/* bodyline prints a text line with escapes stripped. */
void bodyline() {
	int i, emitted, c;
	emitted = 0;
	i = 0;
	while (line[i] != '\0') {
		c = line[i];
		if (c == '\\') {
			i = escape(i + 1, !wordmode);
			emitted++;
			continue;
		}
		if (wordmode) {
			/* word mode: emit each word on its own line */
			if (isword(c)) {
				int start;
				start = i;
				while (isword(line[i]))
					i++;
				if (i - start >= 2) {
					int k;
					for (k = start; k < i; k++)
						putchar(line[k]);
					putchar('\n');
					words++;
				}
				continue;
			}
			i++;
			continue;
		}
		putchar(c);
		emitted++;
		i++;
	}
	if (!wordmode && emitted > 0)
		putchar('\n');
}

int main() {
	while (readline() >= 0) {
		lines++;
		if (line[0] == '.' || line[0] == '\'') {
			request();
			continue;
		}
		if (intable || ineqn) {
			dropped++;
			continue;
		}
		bodyline();
	}
	printint(lines);
	putchar(' ');
	printint(dropped);
	putchar(' ');
	printint(words);
	putchar('\n');
	return 0;
}
`

const mincostSrc = `
/* mincost - VLSI circuit partitioning (Table 3's user application): a
 * Kernighan-Lin style bipartitioning pass over a synthetic netlist. The
 * circuit is a deterministic pseudo-random graph; the program swaps node
 * pairs between the two halves to minimize the cut cost and reports the
 * final cut. */
int adj[24][24];
int side[24];
int locked[24];
int nnodes = 24;
int seed = 99;

int nextrand() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

/* external - internal cost of node v in the current partition. */
int dvalue(int v) {
	int i, d;
	d = 0;
	for (i = 0; i < nnodes; i++) {
		if (adj[v][i] == 0)
			continue;
		if (side[i] != side[v])
			d += adj[v][i];
		else
			d -= adj[v][i];
	}
	return d;
}

int cutcost() {
	int i, j, cut;
	cut = 0;
	for (i = 0; i < nnodes; i++)
		for (j = i + 1; j < nnodes; j++)
			if (adj[i][j] != 0 && side[i] != side[j])
				cut += adj[i][j];
	return cut;
}

int main() {
	int i, j, pass, besti, bestj, gain, g, swaps, t;
	/* synthetic netlist: sparse weighted graph with clustered structure */
	for (i = 0; i < nnodes; i++) {
		for (j = i + 1; j < nnodes; j++) {
			int w;
			w = 0;
			if (nextrand() % 100 < 12)
				w = 1 + nextrand() % 9;
			if (i / 8 == j / 8 && nextrand() % 100 < 30)
				w = 1 + nextrand() % 9;
			adj[i][j] = w;
			adj[j][i] = w;
		}
	}
	for (i = 0; i < nnodes; i++)
		side[i] = i % 2;
	printint(cutcost());
	putchar(' ');
	for (pass = 0; pass < 4; pass++) {
		for (i = 0; i < nnodes; i++)
			locked[i] = 0;
		swaps = 0;
		while (swaps < nnodes / 2) {
			besti = -1;
			bestj = -1;
			gain = -100000;
			for (i = 0; i < nnodes; i++) {
				if (locked[i] || side[i] != 0)
					continue;
				for (j = 0; j < nnodes; j++) {
					if (locked[j] || side[j] != 1)
						continue;
					g = dvalue(i) + dvalue(j) - 2 * adj[i][j];
					if (g > gain) {
						gain = g;
						besti = i;
						bestj = j;
					}
				}
			}
			if (besti < 0 || gain <= 0)
				break;
			t = side[besti]; side[besti] = side[bestj]; side[bestj] = t;
			locked[besti] = 1;
			locked[bestj] = 1;
			swaps++;
		}
		if (swaps == 0)
			break;
	}
	printint(cutcost());
	putchar('\n');
	return 0;
}
`
