package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// Cell is one measured (program, machine, level) combination.
type Cell struct {
	// Program and Machine name the grid coordinates; Level is the
	// optimization level of this cell.
	Program string
	Machine string
	Level   pipeline.Level
	// Run carries the cell's full EASE measurement.
	Run *ease.Run
	// QueueWait is how long the cell sat in the worker pool's queue
	// before a worker picked it up (0 when run sequentially). It feeds
	// the daemon's queue-wait histogram and never affects the tables.
	QueueWait time.Duration
}

// cellKey indexes the grid by (program, machine, level).
type cellKey struct {
	prog, mach string
	level      pipeline.Level
}

// Results holds every cell of the experiment grid.
type Results struct {
	// Cells holds every measured grid cell, in measurement order.
	Cells []Cell
	// CacheSizes are the simulated cache sizes (bytes) in bank order.
	CacheSizes []int64

	// index maps (program, machine, level) to a Cells position. Built
	// lazily on first Get and rebuilt if Cells has grown since, so table
	// rendering stays O(1) per lookup as the program set grows.
	mu      sync.Mutex
	index   map[cellKey]int
	indexed int // len(Cells) when index was built
}

// Get returns the cell for (program, machine, level), or nil.
func (r *Results) Get(prog, mach string, lv pipeline.Level) *Cell {
	r.mu.Lock()
	if r.index == nil || r.indexed != len(r.Cells) {
		r.index = make(map[cellKey]int, len(r.Cells))
		for i := range r.Cells {
			c := &r.Cells[i]
			r.index[cellKey{c.Program, c.Machine, c.Level}] = i
		}
		r.indexed = len(r.Cells)
	}
	i, ok := r.index[cellKey{prog, mach, lv}]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	return &r.Cells[i]
}

// Levels in table order: the full pipeline enum, so new levels (DUPS)
// appear as extra columns without touching the renderers.
var levels = pipeline.AllLevels()

// optLevels is every level above SIMPLE — the columns reported as percent
// change from the SIMPLE baseline.
func optLevels() []pipeline.Level { return levels[1:] }

// Machines in table order: the whole registry, which lists SPARC first to
// match the paper's Table 5 and appends the machines the paper did not
// measure (the x86) after the original pair.
var machines = machine.All()

// RunAll measures every (program × machine × level) cell. With caches true
// the Table-6 cache bank is simulated as well (roughly 8× slower).
// progress, when non-nil, receives one line per completed cell.
func RunAll(caches bool, repOpts replicate.Options, progress io.Writer) (*Results, error) {
	return RunAllSizes(caches, nil, repOpts, progress)
}

// RunAllSizes is RunAll with custom cache sizes (nil = the paper's). Both
// are thin sequential wrappers over RunGrid, the execution path shared
// with cmd/mccd's worker pool.
func RunAllSizes(caches bool, cacheSizes []int64, repOpts replicate.Options, progress io.Writer) (*Results, error) {
	return RunGrid(context.Background(), GridConfig{
		Caches:      caches,
		CacheSizes:  cacheSizes,
		Replication: repOpts,
		Progress:    progress,
	})
}

// meanStd returns the mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Table4 renders the paper's Table 4: percent of instructions that are
// unconditional jumps, static and dynamic, per machine and level.
func (r *Results) Table4(w io.Writer) {
	nl := len(levels)
	fmt.Fprintln(w, "Table 4: Percent of Instructions that are Unconditional Jumps")
	head := func(first string) {
		fmt.Fprintf(w, "%-10s %-16s", first, "")
		for li := 0; li < 2*nl; li++ {
			name := ""
			if li == 0 {
				name = "static"
			} else if li == nl {
				name = "dynamic"
			}
			if li == nl {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, " %8s", name)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %-16s", "machine", "")
		for li := 0; li < 2*nl; li++ {
			if li == nl {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, " %8s", levels[li%nl].String())
		}
		fmt.Fprintln(w)
	}
	head("")
	row := func(name, label string, vals [2][]float64) {
		fmt.Fprintf(w, "%-10s %-16s", name, label)
		for si := 0; si < 2; si++ {
			if si == 1 {
				fmt.Fprint(w, "  ")
			}
			for li := 0; li < nl; li++ {
				fmt.Fprintf(w, " %7.2f%%", vals[si][li])
			}
		}
		fmt.Fprintln(w)
	}
	for _, m := range machines {
		rows := [2][]([]float64){make([][]float64, nl), make([][]float64, nl)}
		for _, p := range Programs() {
			for li, lv := range levels {
				c := r.Get(p.Name, m.Name, lv)
				if c == nil {
					continue
				}
				rows[0][li] = append(rows[0][li], 100*c.Run.StaticJumpFraction())
				rows[1][li] = append(rows[1][li], 100*c.Run.DynamicJumpFraction())
			}
		}
		var mean, std [2][]float64
		for si := 0; si < 2; si++ {
			mean[si] = make([]float64, nl)
			std[si] = make([]float64, nl)
			for li := 0; li < nl; li++ {
				mean[si][li], std[si][li] = meanStd(rows[si][li])
			}
		}
		row(m.Name, "average", mean)
		row("", "std. deviation", std)
	}
}

// programOrder is the row order of the paper's Table 5.
var programOrder = []string{
	"cal", "quicksort", "wc", "grep", "sort", "od", "mincost",
	"bubblesort", "matmult", "banner", "sieve", "compact", "queens", "deroff",
}

// Table5 renders the paper's Table 5: static and dynamic instruction
// counts, with every level above SIMPLE as percent change from SIMPLE.
func (r *Results) Table5(w io.Writer) {
	fmt.Fprintln(w, "Table 5: Number of Static and Dynamic Instructions")
	opt := optLevels()
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n", m.Name)
		fmt.Fprintf(w, "%-12s %10s", "program", "static")
		for _, lv := range opt {
			fmt.Fprintf(w, " %9s", lv.String())
		}
		fmt.Fprintf(w, "   %14s", "dynamic")
		for _, lv := range opt {
			fmt.Fprintf(w, " %9s", lv.String())
		}
		fmt.Fprintln(w)
		stat := make([][]float64, len(opt))
		dyn := make([][]float64, len(opt))
		var statS, dynS []float64
		for _, name := range programOrder {
			cs := r.Get(name, m.Name, pipeline.Simple)
			if cs == nil {
				continue
			}
			cells := make([]*Cell, len(opt))
			missing := false
			for i, lv := range opt {
				if cells[i] = r.Get(name, m.Name, lv); cells[i] == nil {
					missing = true
				}
			}
			if missing {
				continue
			}
			fmt.Fprintf(w, "%-12s %10d", name, cs.Run.Static.StaticInsts)
			for i, c := range cells {
				d := ease.PercentChange(int64(cs.Run.Static.StaticInsts), int64(c.Run.Static.StaticInsts))
				stat[i] = append(stat[i], d)
				fmt.Fprintf(w, " %+8.2f%%", d)
			}
			fmt.Fprintf(w, "   %14d", cs.Run.Dynamic.Exec)
			for i, c := range cells {
				d := ease.PercentChange(cs.Run.Dynamic.Exec, c.Run.Dynamic.Exec)
				dyn[i] = append(dyn[i], d)
				fmt.Fprintf(w, " %+8.2f%%", d)
			}
			fmt.Fprintln(w)
			statS = append(statS, float64(cs.Run.Static.StaticInsts))
			dynS = append(dynS, float64(cs.Run.Dynamic.Exec))
		}
		ms, _ := meanStd(statS)
		md, _ := meanStd(dynS)
		fmt.Fprintf(w, "%-12s %10.0f", "average", ms)
		for i := range opt {
			m, _ := meanStd(stat[i])
			fmt.Fprintf(w, " %+8.2f%%", m)
		}
		fmt.Fprintf(w, "   %14.0f", md)
		for i := range opt {
			m, _ := meanStd(dyn[i])
			fmt.Fprintf(w, " %+8.2f%%", m)
		}
		fmt.Fprintln(w)
	}
}

// bankIndex returns the bank index for (sizeBytes, ctx) given the bank's
// size list.
func bankIndex(sizes []int64, sizeBytes int64, ctx bool) int {
	i := 0
	for _, sz := range sizes {
		for _, c := range []bool{true, false} {
			if sz == sizeBytes && c == ctx {
				return i
			}
			i++
		}
	}
	return -1
}

// Table6 renders the paper's Table 6: change in miss ratio (percentage
// points) and instruction fetch cost (percent) for direct-mapped caches of
// 1/2/4/8 KB, context switches on/off, every level above SIMPLE vs SIMPLE.
func (r *Results) Table6(w io.Writer) {
	fmt.Fprintln(w, "Table 6: Percent Change in Miss Ratio and Instruction Fetch Cost")
	fmt.Fprintln(w, "         for Direct-Mapped Caches (vs SIMPLE)")
	sizes := r.CacheSizes
	szName := func(sz int64) string {
		if sz >= 1024 && sz%1024 == 0 {
			return fmt.Sprintf("%dKb", sz/1024)
		}
		return fmt.Sprintf("%db", sz)
	}
	header := func(metric string) {
		fmt.Fprintf(w, "\n%s\n%-10s %-4s", metric, "machine", "ctx")
		for _, sz := range sizes {
			for _, lv := range optLevels() {
				fmt.Fprintf(w, "  %9s", szName(sz)+"-"+lv.String())
			}
		}
		fmt.Fprintln(w)
	}
	header("Cache Miss Ratio (difference in percentage points)")
	for _, m := range machines {
		for _, ctx := range []bool{true, false} {
			ctxs := "on"
			if !ctx {
				ctxs = "off"
			}
			fmt.Fprintf(w, "%-10s %-4s", m.Name, ctxs)
			for _, sz := range sizes {
				bi := bankIndex(sizes, sz, ctx)
				for _, lv := range optLevels() {
					var deltas []float64
					for _, p := range Programs() {
						cs := r.Get(p.Name, m.Name, pipeline.Simple)
						cx := r.Get(p.Name, m.Name, lv)
						if cs == nil || cx == nil || cs.Run.Caches == nil || cx.Run.Caches == nil {
							continue
						}
						deltas = append(deltas,
							100*(cx.Run.Caches[bi].MissRatio()-cs.Run.Caches[bi].MissRatio()))
					}
					mean, _ := meanStd(deltas)
					fmt.Fprintf(w, "  %+9.2f%%", mean)
				}
			}
			fmt.Fprintln(w)
		}
	}
	header("Instruction Fetch Cost (percent change)")
	for _, m := range machines {
		for _, ctx := range []bool{true, false} {
			ctxs := "on"
			if !ctx {
				ctxs = "off"
			}
			fmt.Fprintf(w, "%-10s %-4s", m.Name, ctxs)
			for _, sz := range sizes {
				bi := bankIndex(sizes, sz, ctx)
				for _, lv := range optLevels() {
					var deltas []float64
					for _, p := range Programs() {
						cs := r.Get(p.Name, m.Name, pipeline.Simple)
						cx := r.Get(p.Name, m.Name, lv)
						if cs == nil || cx == nil || cs.Run.Caches == nil || cx.Run.Caches == nil {
							continue
						}
						deltas = append(deltas, ease.PercentChange(cs.Run.Caches[bi].Cost, cx.Run.Caches[bi].Cost))
					}
					mean, _ := meanStd(deltas)
					fmt.Fprintf(w, "  %+9.2f%%", mean)
				}
			}
			fmt.Fprintln(w)
		}
	}
	_ = cache.Stats{} // keep the dependency explicit for documentation
}

// BranchDistance renders the §5.2 statistics: average dynamic instructions
// between control transfers, and executed no-ops on the SPARC.
func (r *Results) BranchDistance(w io.Writer) {
	fmt.Fprintln(w, "Instructions between branches and executed no-ops (§5.2)")
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n%-12s %10s %10s %10s %12s %12s\n",
			m.Name, "program", "SIMPLE", "JUMPS", "delta", "noops-S", "noops-J")
		var ds, dj, deltas []float64
		var nopS, nopJ int64
		for _, name := range programOrder {
			cs := r.Get(name, m.Name, pipeline.Simple)
			cj := r.Get(name, m.Name, pipeline.Jumps)
			if cs == nil || cj == nil {
				continue
			}
			a := cs.Run.InstsBetweenBranches()
			b := cj.Run.InstsBetweenBranches()
			fmt.Fprintf(w, "%-12s %10.2f %10.2f %+10.2f %12d %12d\n",
				name, a, b, b-a, cs.Run.Dynamic.Nops, cj.Run.Dynamic.Nops)
			ds = append(ds, a)
			dj = append(dj, b)
			deltas = append(deltas, b-a)
			nopS += cs.Run.Dynamic.Nops
			nopJ += cj.Run.Dynamic.Nops
		}
		ma, _ := meanStd(ds)
		mb, _ := meanStd(dj)
		mdel, _ := meanStd(deltas)
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %+10.2f %12d %12d\n",
			"average", ma, mb, mdel, nopS, nopJ)
		if m.DelaySlots && nopS > 0 {
			fmt.Fprintf(w, "no-ops eliminated by JUMPS: %.1f%%\n",
				100*float64(nopS-nopJ)/float64(nopS))
		}
	}
}

// CodeSize renders the encoded-code-size table: per machine, the encoded
// byte footprint of every program at SIMPLE and the percent change at
// every level above it. For machines with displacement-dependent jump
// encodings (the x86) the bytes come from internal/encode's fixpoint —
// short forms where they fit — so replication's size cost shows up in
// real bytes, not RTL counts.
func (r *Results) CodeSize(w io.Writer) {
	opt := optLevels()
	fmt.Fprintln(w, "Encoded Code Size (bytes; change vs SIMPLE)")
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n%-12s %10s", m.Name, "program", "SIMPLE")
		for _, lv := range opt {
			fmt.Fprintf(w, " %9s", lv.String())
		}
		fmt.Fprintln(w)
		var base []float64
		deltas := make([][]float64, len(opt))
		for _, name := range programOrder {
			cs := r.Get(name, m.Name, pipeline.Simple)
			if cs == nil {
				continue
			}
			cells := make([]*Cell, len(opt))
			missing := false
			for i, lv := range opt {
				if cells[i] = r.Get(name, m.Name, lv); cells[i] == nil {
					missing = true
				}
			}
			if missing {
				continue
			}
			fmt.Fprintf(w, "%-12s %10d", name, cs.Run.CodeBytes)
			for i, c := range cells {
				d := ease.PercentChange(cs.Run.CodeBytes, c.Run.CodeBytes)
				deltas[i] = append(deltas[i], d)
				fmt.Fprintf(w, " %+8.2f%%", d)
			}
			fmt.Fprintln(w)
			base = append(base, float64(cs.Run.CodeBytes))
		}
		mb, _ := meanStd(base)
		fmt.Fprintf(w, "%-12s %10.0f", "average", mb)
		for i := range opt {
			m, _ := meanStd(deltas[i])
			fmt.Fprintf(w, " %+8.2f%%", m)
		}
		fmt.Fprintln(w)
	}
}

// CondBranches renders the DUPS-level claim: dynamic conditional branches
// executed at JUMPS and at DUPS, with the change. Conditional elimination
// must never increase the count (the difftest oracle enforces ≤ per
// program); this table shows how much it removes on the Table-3 suite.
func (r *Results) CondBranches(w io.Writer) {
	fmt.Fprintln(w, "Dynamic Conditional Branches (JUMPS vs DUPS)")
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n%-12s %14s %14s %10s\n",
			m.Name, "program", "JUMPS", "DUPS", "delta")
		var totJ, totD int64
		for _, name := range programOrder {
			cj := r.Get(name, m.Name, pipeline.Jumps)
			cd := r.Get(name, m.Name, pipeline.Dups)
			if cj == nil || cd == nil {
				continue
			}
			j := cj.Run.Dynamic.CondBranches
			d := cd.Run.Dynamic.CondBranches
			fmt.Fprintf(w, "%-12s %14d %14d %+9.2f%%\n",
				name, j, d, ease.PercentChange(j, d))
			totJ += j
			totD += d
		}
		fmt.Fprintf(w, "%-12s %14d %14d %+9.2f%%\n",
			"total", totJ, totD, ease.PercentChange(totJ, totD))
	}
}

// Table3 renders the test-set listing.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Test Set of C Programs")
	ps := Programs()
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Class < ps[j].Class })
	last := ""
	for _, p := range ps {
		cls := p.Class
		if cls == last {
			cls = ""
		} else {
			last = cls
		}
		fmt.Fprintf(w, "%-12s %-12s %s\n", cls, p.Name, p.Description)
	}
}

// WriteAll renders every table to w.
func (r *Results) WriteAll(w io.Writer, withCaches bool) {
	Table3(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.Table4(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.Table5(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	if withCaches {
		r.Table6(w)
		fmt.Fprintln(w, strings.Repeat("-", 72))
	}
	r.CodeSize(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.CondBranches(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.BranchDistance(w)
}
