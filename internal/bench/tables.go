package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/ease"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// Cell is one measured (program, machine, level) combination.
type Cell struct {
	// Program and Machine name the grid coordinates; Level is the
	// optimization level of this cell.
	Program string
	Machine string
	Level   pipeline.Level
	// Run carries the cell's full EASE measurement.
	Run *ease.Run
	// QueueWait is how long the cell sat in the worker pool's queue
	// before a worker picked it up (0 when run sequentially). It feeds
	// the daemon's queue-wait histogram and never affects the tables.
	QueueWait time.Duration
}

// cellKey indexes the grid by (program, machine, level).
type cellKey struct {
	prog, mach string
	level      pipeline.Level
}

// Results holds every cell of the experiment grid.
type Results struct {
	// Cells holds every measured grid cell, in measurement order.
	Cells []Cell
	// CacheSizes are the simulated cache sizes (bytes) in bank order.
	CacheSizes []int64

	// index maps (program, machine, level) to a Cells position. Built
	// lazily on first Get and rebuilt if Cells has grown since, so table
	// rendering stays O(1) per lookup as the program set grows.
	mu      sync.Mutex
	index   map[cellKey]int
	indexed int // len(Cells) when index was built
}

// Get returns the cell for (program, machine, level), or nil.
func (r *Results) Get(prog, mach string, lv pipeline.Level) *Cell {
	r.mu.Lock()
	if r.index == nil || r.indexed != len(r.Cells) {
		r.index = make(map[cellKey]int, len(r.Cells))
		for i := range r.Cells {
			c := &r.Cells[i]
			r.index[cellKey{c.Program, c.Machine, c.Level}] = i
		}
		r.indexed = len(r.Cells)
	}
	i, ok := r.index[cellKey{prog, mach, lv}]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	return &r.Cells[i]
}

// Levels in table order.
var levels = []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps}

// Machines in table order: the whole registry, which lists SPARC first to
// match the paper's Table 5 and appends the machines the paper did not
// measure (the x86) after the original pair.
var machines = machine.All()

// RunAll measures every (program × machine × level) cell. With caches true
// the Table-6 cache bank is simulated as well (roughly 8× slower).
// progress, when non-nil, receives one line per completed cell.
func RunAll(caches bool, repOpts replicate.Options, progress io.Writer) (*Results, error) {
	return RunAllSizes(caches, nil, repOpts, progress)
}

// RunAllSizes is RunAll with custom cache sizes (nil = the paper's). Both
// are thin sequential wrappers over RunGrid, the execution path shared
// with cmd/mccd's worker pool.
func RunAllSizes(caches bool, cacheSizes []int64, repOpts replicate.Options, progress io.Writer) (*Results, error) {
	return RunGrid(context.Background(), GridConfig{
		Caches:      caches,
		CacheSizes:  cacheSizes,
		Replication: repOpts,
		Progress:    progress,
	})
}

// meanStd returns the mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Table4 renders the paper's Table 4: percent of instructions that are
// unconditional jumps, static and dynamic, per machine and level.
func (r *Results) Table4(w io.Writer) {
	fmt.Fprintln(w, "Table 4: Percent of Instructions that are Unconditional Jumps")
	fmt.Fprintf(w, "%-10s %-16s %8s %8s %8s   %8s %8s %8s\n",
		"", "", "static", "", "", "dynamic", "", "")
	fmt.Fprintf(w, "%-10s %-16s %8s %8s %8s   %8s %8s %8s\n",
		"machine", "", "SIMPLE", "LOOPS", "JUMPS", "SIMPLE", "LOOPS", "JUMPS")
	for _, m := range machines {
		var rows [2][3][]float64 // [static/dynamic][level]samples
		for _, p := range Programs() {
			for li, lv := range levels {
				c := r.Get(p.Name, m.Name, lv)
				if c == nil {
					continue
				}
				rows[0][li] = append(rows[0][li], 100*c.Run.StaticJumpFraction())
				rows[1][li] = append(rows[1][li], 100*c.Run.DynamicJumpFraction())
			}
		}
		var mean, std [2][3]float64
		for si := 0; si < 2; si++ {
			for li := 0; li < 3; li++ {
				mean[si][li], std[si][li] = meanStd(rows[si][li])
			}
		}
		fmt.Fprintf(w, "%-10s %-16s %7.2f%% %7.2f%% %7.2f%%   %7.2f%% %7.2f%% %7.2f%%\n",
			m.Name, "average", mean[0][0], mean[0][1], mean[0][2], mean[1][0], mean[1][1], mean[1][2])
		fmt.Fprintf(w, "%-10s %-16s %7.2f%% %7.2f%% %7.2f%%   %7.2f%% %7.2f%% %7.2f%%\n",
			"", "std. deviation", std[0][0], std[0][1], std[0][2], std[1][0], std[1][1], std[1][2])
	}
}

// programOrder is the row order of the paper's Table 5.
var programOrder = []string{
	"cal", "quicksort", "wc", "grep", "sort", "od", "mincost",
	"bubblesort", "matmult", "banner", "sieve", "compact", "queens", "deroff",
}

// Table5 renders the paper's Table 5: static and dynamic instruction
// counts, with LOOPS and JUMPS as percent change from SIMPLE.
func (r *Results) Table5(w io.Writer) {
	fmt.Fprintln(w, "Table 5: Number of Static and Dynamic Instructions")
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n", m.Name)
		fmt.Fprintf(w, "%-12s %10s %9s %9s   %14s %9s %9s\n",
			"program", "static", "LOOPS", "JUMPS", "dynamic", "LOOPS", "JUMPS")
		var statL, statJ, dynL, dynJ []float64
		var statS, dynS []float64
		for _, name := range programOrder {
			cs := r.Get(name, m.Name, pipeline.Simple)
			cl := r.Get(name, m.Name, pipeline.Loops)
			cj := r.Get(name, m.Name, pipeline.Jumps)
			if cs == nil || cl == nil || cj == nil {
				continue
			}
			sl := ease.PercentChange(int64(cs.Run.Static.StaticInsts), int64(cl.Run.Static.StaticInsts))
			sj := ease.PercentChange(int64(cs.Run.Static.StaticInsts), int64(cj.Run.Static.StaticInsts))
			dl := ease.PercentChange(cs.Run.Dynamic.Exec, cl.Run.Dynamic.Exec)
			dj := ease.PercentChange(cs.Run.Dynamic.Exec, cj.Run.Dynamic.Exec)
			fmt.Fprintf(w, "%-12s %10d %+8.2f%% %+8.2f%%   %14d %+8.2f%% %+8.2f%%\n",
				name, cs.Run.Static.StaticInsts, sl, sj, cs.Run.Dynamic.Exec, dl, dj)
			statL = append(statL, sl)
			statJ = append(statJ, sj)
			dynL = append(dynL, dl)
			dynJ = append(dynJ, dj)
			statS = append(statS, float64(cs.Run.Static.StaticInsts))
			dynS = append(dynS, float64(cs.Run.Dynamic.Exec))
		}
		ms, _ := meanStd(statS)
		md, _ := meanStd(dynS)
		ml, _ := meanStd(statL)
		mj, _ := meanStd(statJ)
		mdl, _ := meanStd(dynL)
		mdj, _ := meanStd(dynJ)
		fmt.Fprintf(w, "%-12s %10.0f %+8.2f%% %+8.2f%%   %14.0f %+8.2f%% %+8.2f%%\n",
			"average", ms, ml, mj, md, mdl, mdj)
	}
}

// bankIndex returns the bank index for (sizeBytes, ctx) given the bank's
// size list.
func bankIndex(sizes []int64, sizeBytes int64, ctx bool) int {
	i := 0
	for _, sz := range sizes {
		for _, c := range []bool{true, false} {
			if sz == sizeBytes && c == ctx {
				return i
			}
			i++
		}
	}
	return -1
}

// Table6 renders the paper's Table 6: change in miss ratio (percentage
// points) and instruction fetch cost (percent) for direct-mapped caches of
// 1/2/4/8 KB, context switches on/off, LOOPS and JUMPS vs SIMPLE.
func (r *Results) Table6(w io.Writer) {
	fmt.Fprintln(w, "Table 6: Percent Change in Miss Ratio and Instruction Fetch Cost")
	fmt.Fprintln(w, "         for Direct-Mapped Caches (vs SIMPLE)")
	sizes := r.CacheSizes
	szName := func(sz int64) string {
		if sz >= 1024 && sz%1024 == 0 {
			return fmt.Sprintf("%dKb", sz/1024)
		}
		return fmt.Sprintf("%db", sz)
	}
	header := func(metric string) {
		fmt.Fprintf(w, "\n%s\n%-10s %-4s", metric, "machine", "ctx")
		for _, sz := range sizes {
			fmt.Fprintf(w, "  %8s-LOOPS %8s-JUMPS", szName(sz), szName(sz))
		}
		fmt.Fprintln(w)
	}
	header("Cache Miss Ratio (difference in percentage points)")
	for _, m := range machines {
		for _, ctx := range []bool{true, false} {
			ctxs := "on"
			if !ctx {
				ctxs = "off"
			}
			fmt.Fprintf(w, "%-10s %-4s", m.Name, ctxs)
			for _, sz := range sizes {
				bi := bankIndex(sizes, sz, ctx)
				for _, lv := range []pipeline.Level{pipeline.Loops, pipeline.Jumps} {
					var deltas []float64
					for _, p := range Programs() {
						cs := r.Get(p.Name, m.Name, pipeline.Simple)
						cx := r.Get(p.Name, m.Name, lv)
						if cs == nil || cx == nil || cs.Run.Caches == nil || cx.Run.Caches == nil {
							continue
						}
						deltas = append(deltas,
							100*(cx.Run.Caches[bi].MissRatio()-cs.Run.Caches[bi].MissRatio()))
					}
					mean, _ := meanStd(deltas)
					fmt.Fprintf(w, "  %+14.2f%%", mean)
				}
			}
			fmt.Fprintln(w)
		}
	}
	header("Instruction Fetch Cost (percent change)")
	for _, m := range machines {
		for _, ctx := range []bool{true, false} {
			ctxs := "on"
			if !ctx {
				ctxs = "off"
			}
			fmt.Fprintf(w, "%-10s %-4s", m.Name, ctxs)
			for _, sz := range sizes {
				bi := bankIndex(sizes, sz, ctx)
				for _, lv := range []pipeline.Level{pipeline.Loops, pipeline.Jumps} {
					var deltas []float64
					for _, p := range Programs() {
						cs := r.Get(p.Name, m.Name, pipeline.Simple)
						cx := r.Get(p.Name, m.Name, lv)
						if cs == nil || cx == nil || cs.Run.Caches == nil || cx.Run.Caches == nil {
							continue
						}
						deltas = append(deltas, ease.PercentChange(cs.Run.Caches[bi].Cost, cx.Run.Caches[bi].Cost))
					}
					mean, _ := meanStd(deltas)
					fmt.Fprintf(w, "  %+14.2f%%", mean)
				}
			}
			fmt.Fprintln(w)
		}
	}
	_ = cache.Stats{} // keep the dependency explicit for documentation
}

// BranchDistance renders the §5.2 statistics: average dynamic instructions
// between control transfers, and executed no-ops on the SPARC.
func (r *Results) BranchDistance(w io.Writer) {
	fmt.Fprintln(w, "Instructions between branches and executed no-ops (§5.2)")
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n%-12s %10s %10s %10s %12s %12s\n",
			m.Name, "program", "SIMPLE", "JUMPS", "delta", "noops-S", "noops-J")
		var ds, dj, deltas []float64
		var nopS, nopJ int64
		for _, name := range programOrder {
			cs := r.Get(name, m.Name, pipeline.Simple)
			cj := r.Get(name, m.Name, pipeline.Jumps)
			if cs == nil || cj == nil {
				continue
			}
			a := cs.Run.InstsBetweenBranches()
			b := cj.Run.InstsBetweenBranches()
			fmt.Fprintf(w, "%-12s %10.2f %10.2f %+10.2f %12d %12d\n",
				name, a, b, b-a, cs.Run.Dynamic.Nops, cj.Run.Dynamic.Nops)
			ds = append(ds, a)
			dj = append(dj, b)
			deltas = append(deltas, b-a)
			nopS += cs.Run.Dynamic.Nops
			nopJ += cj.Run.Dynamic.Nops
		}
		ma, _ := meanStd(ds)
		mb, _ := meanStd(dj)
		mdel, _ := meanStd(deltas)
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %+10.2f %12d %12d\n",
			"average", ma, mb, mdel, nopS, nopJ)
		if m.DelaySlots && nopS > 0 {
			fmt.Fprintf(w, "no-ops eliminated by JUMPS: %.1f%%\n",
				100*float64(nopS-nopJ)/float64(nopS))
		}
	}
}

// CodeSize renders the encoded-code-size table: per machine, the encoded
// byte footprint of every program at SIMPLE and the percent change at LOOPS
// and JUMPS. For machines with displacement-dependent jump encodings (the
// x86) the bytes come from internal/encode's fixpoint — short forms where
// they fit — so replication's size cost shows up in real bytes, not RTL
// counts.
func (r *Results) CodeSize(w io.Writer) {
	fmt.Fprintln(w, "Encoded Code Size (bytes; LOOPS/JUMPS as change vs SIMPLE)")
	for _, m := range machines {
		fmt.Fprintf(w, "\n%s\n%-12s %10s %9s %9s\n", m.Name, "program", "SIMPLE", "LOOPS", "JUMPS")
		var base []float64
		var dl, dj []float64
		for _, name := range programOrder {
			cs := r.Get(name, m.Name, pipeline.Simple)
			cl := r.Get(name, m.Name, pipeline.Loops)
			cj := r.Get(name, m.Name, pipeline.Jumps)
			if cs == nil || cl == nil || cj == nil {
				continue
			}
			l := ease.PercentChange(cs.Run.CodeBytes, cl.Run.CodeBytes)
			j := ease.PercentChange(cs.Run.CodeBytes, cj.Run.CodeBytes)
			fmt.Fprintf(w, "%-12s %10d %+8.2f%% %+8.2f%%\n", name, cs.Run.CodeBytes, l, j)
			base = append(base, float64(cs.Run.CodeBytes))
			dl = append(dl, l)
			dj = append(dj, j)
		}
		mb, _ := meanStd(base)
		ml, _ := meanStd(dl)
		mj, _ := meanStd(dj)
		fmt.Fprintf(w, "%-12s %10.0f %+8.2f%% %+8.2f%%\n", "average", mb, ml, mj)
	}
}

// Table3 renders the test-set listing.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Test Set of C Programs")
	ps := Programs()
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Class < ps[j].Class })
	last := ""
	for _, p := range ps {
		cls := p.Class
		if cls == last {
			cls = ""
		} else {
			last = cls
		}
		fmt.Fprintf(w, "%-12s %-12s %s\n", cls, p.Name, p.Description)
	}
}

// WriteAll renders every table to w.
func (r *Results) WriteAll(w io.Writer, withCaches bool) {
	Table3(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.Table4(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.Table5(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	if withCaches {
		r.Table6(w)
		fmt.Fprintln(w, strings.Repeat("-", 72))
	}
	r.CodeSize(w)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	r.BranchDistance(w)
}
