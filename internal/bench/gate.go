package bench

import (
	"fmt"
	"io"
)

// GateRow is one pipeline level's perf-gate verdict: the committed
// baseline's measurement and floor next to the freshly measured values.
type GateRow struct {
	Level string
	// BaseRTLsPerSec / BaseAllocsPerOp are the committed measurements.
	BaseRTLsPerSec  float64
	BaseAllocsPerOp int64
	// MinRTLsPerSec / MaxAllocsPerOp are the committed floors, widened by
	// the gate's tolerance band.
	MinRTLsPerSec  float64
	MaxAllocsPerOp int64
	// GotRTLsPerSec / GotAllocsPerOp are the fresh measurements.
	GotRTLsPerSec  float64
	GotAllocsPerOp int64
	// ThroughputOK / AllocsOK are the two verdicts; Pass is their
	// conjunction.
	ThroughputOK bool
	AllocsOK     bool
	Pass         bool
}

// Gate compares fresh suite measurements against the baseline's committed
// floors. tol widens the band: throughput may drop to (1-tol) of the floor
// and allocations rise to (1+tol) of the cap before a level fails. Returns
// one row per committed floor and an error naming every failing level (nil
// when all pass).
func (bl *Baseline) Gate(fresh []SuiteResult, tol float64) ([]GateRow, error) {
	if tol < 0 {
		return nil, fmt.Errorf("bench: negative gate tolerance %v", tol)
	}
	byLevel := map[string]SuiteResult{}
	for _, s := range fresh {
		byLevel[s.Level] = s
	}
	base := map[string]SuiteResult{}
	for _, s := range bl.Suite {
		base[s.Level] = s
	}
	var rows []GateRow
	var failures []string
	for _, fl := range bl.Floors {
		got, ok := byLevel[fl.Level]
		if !ok {
			return nil, fmt.Errorf("bench: fresh measurements miss level %s", fl.Level)
		}
		row := GateRow{
			Level:           fl.Level,
			BaseRTLsPerSec:  base[fl.Level].RTLsPerSec,
			BaseAllocsPerOp: base[fl.Level].AllocsPerOp,
			MinRTLsPerSec:   fl.MinRTLsPerSec * (1 - tol),
			MaxAllocsPerOp:  int64(float64(fl.MaxAllocsPerOp) * (1 + tol)),
			GotRTLsPerSec:   got.RTLsPerSec,
			GotAllocsPerOp:  got.AllocsPerOp,
		}
		row.ThroughputOK = row.GotRTLsPerSec >= row.MinRTLsPerSec
		row.AllocsOK = row.GotAllocsPerOp <= row.MaxAllocsPerOp
		row.Pass = row.ThroughputOK && row.AllocsOK
		if !row.Pass {
			failures = append(failures, fl.Level)
		}
		rows = append(rows, row)
	}
	if len(failures) > 0 {
		return rows, fmt.Errorf("bench: perf gate failed for %v", failures)
	}
	return rows, nil
}

// mark renders one verdict as the summary table's pass/fail cell.
func mark(ok bool) string {
	if ok {
		return "✅"
	}
	return "❌"
}

// WriteGateSummary renders the gate rows as a GitHub-flavored Markdown
// delta table (the perf-gate job appends it to $GITHUB_STEP_SUMMARY).
func WriteGateSummary(w io.Writer, rows []GateRow, tol float64) error {
	if _, err := fmt.Fprintf(w, "### Perf gate (tolerance %.0f%%)\n\n", 100*tol); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| Level | RTLs/sec (base) | RTLs/sec (now) | Δ | floor | allocs/op (base) | allocs/op (now) | Δ | cap | verdict |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|:---:|"); err != nil {
		return err
	}
	pct := func(base, got float64) string {
		if base == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(got-base)/base)
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %.0f | %.0f | %s | ≥%.0f %s | %d | %d | %s | ≤%d %s | %s |\n",
			r.Level,
			r.BaseRTLsPerSec, r.GotRTLsPerSec, pct(r.BaseRTLsPerSec, r.GotRTLsPerSec),
			r.MinRTLsPerSec, mark(r.ThroughputOK),
			r.BaseAllocsPerOp, r.GotAllocsPerOp, pct(float64(r.BaseAllocsPerOp), float64(r.GotAllocsPerOp)),
			r.MaxAllocsPerOp, mark(r.AllocsOK),
			mark(r.Pass)); err != nil {
			return err
		}
	}
	return nil
}
