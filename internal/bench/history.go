package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// HistoryRecord is one appended line of a baseline history file
// (BENCH_history.jsonl): the full baseline plus the moment it was
// measured, so throughput can be tracked across commits and CI runs
// without overwriting the committed baseline.
type HistoryRecord struct {
	// Time is when the baseline was measured (UTC, RFC 3339).
	Time time.Time `json:"time"`
	// Baseline is the measurement itself (its Schema field identifies the
	// record format).
	Baseline *Baseline `json:"baseline"`
}

// AppendHistory appends the baseline as one JSONL record to path,
// creating the file if needed. Appends are atomic at the line level
// (O_APPEND, single write), so concurrent CI runs interleave whole
// records rather than corrupting each other.
func AppendHistory(path string, bl *Baseline, at time.Time) error {
	if err := bl.Validate(); err != nil {
		return fmt.Errorf("bench: refusing to append invalid baseline: %w", err)
	}
	line, err := json.Marshal(HistoryRecord{Time: at.UTC(), Baseline: bl})
	if err != nil {
		return err
	}
	line = append(line, '\n')
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadHistory reads every record of a history file in append order,
// validating each baseline. A missing file is an empty history, not an
// error.
func LoadHistory(path string) ([]HistoryRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec HistoryRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("bench: %s line %d: %w", path, line, err)
		}
		if rec.Baseline == nil {
			return nil, fmt.Errorf("bench: %s line %d: record has no baseline", path, line)
		}
		// Only current-schema records are validated strictly: a history
		// file accumulated across CI runs legitimately carries records from
		// before a schema bump, and those stay readable as-is.
		if rec.Baseline.Schema == BaselineSchema {
			if err := rec.Baseline.Validate(); err != nil {
				return nil, fmt.Errorf("bench: %s line %d: %w", path, line, err)
			}
		} else if rec.Baseline.Schema <= 0 || rec.Baseline.Schema > BaselineSchema {
			return nil, fmt.Errorf("bench: %s line %d: unknown schema %d", path, line, rec.Baseline.Schema)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return out, nil
}
