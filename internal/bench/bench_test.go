package bench_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/vm"
)

// TestProgramsCompileAndRun checks every Table-3 program compiles and runs
// to completion unoptimized.
func TestProgramsCompileAndRun(t *testing.T) {
	for _, p := range bench.Programs() {
		t.Run(p.Name, func(t *testing.T) {
			prog, err := mcc.Compile(p.Source)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := vm.Run(prog, vm.Config{Input: []byte(p.Input)})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ExitCode != 0 {
				t.Fatalf("exit code %d, output %q", res.ExitCode, res.Output)
			}
			if len(res.Output) == 0 {
				t.Fatalf("no output")
			}
			if p.WantOutput != "" && string(res.Output) != p.WantOutput {
				t.Fatalf("output %q, want %q", res.Output, p.WantOutput)
			}
			t.Logf("%s: %d insts, %d bytes output", p.Name, res.Counts.Exec, len(res.Output))
		})
	}
}

// TestProgramsDifferential checks output equivalence across every machine
// and optimization level against the unoptimized run.
func TestProgramsDifferential(t *testing.T) {
	for _, p := range bench.Programs() {
		ref, err := mcc.Compile(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		want, err := vm.Run(ref, vm.Config{Input: []byte(p.Input)})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, m := range machine.All() {
			for _, lv := range []pipeline.Level{pipeline.Simple, pipeline.Loops, pipeline.Jumps} {
				t.Run(fmt.Sprintf("%s/%s/%s", p.Name, m.Name, lv), func(t *testing.T) {
					prog, err := mcc.Compile(p.Source)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
					got, err := vm.Run(prog, vm.Config{Input: []byte(p.Input)})
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if string(got.Output) != string(want.Output) {
						t.Fatalf("output mismatch\n got: %.120q\nwant: %.120q", got.Output, want.Output)
					}
				})
			}
		}
	}
}
