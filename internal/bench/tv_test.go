package bench

import (
	"testing"
	"time"

	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// optimizeSuite compiles and optimizes the full Table-3 suite over every
// machine × level cell, returns the total optimize wall time, and fails
// the test on any verifier violation.
func optimizeSuite(t *testing.T, tv bool) time.Duration {
	t.Helper()
	var total time.Duration
	for _, p := range Programs() {
		prog, err := mcc.Compile(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, m := range machines {
			for _, lv := range levels {
				cell := prog.Clone()
				start := time.Now()
				st := pipeline.Optimize(cell, pipeline.Config{Machine: m, Level: lv, TV: tv})
				total += time.Since(start)
				for _, vi := range st.Verify {
					t.Errorf("%s %s/%s: %s", p.Name, m.Name, lv, vi.String())
				}
			}
		}
	}
	return total
}

// TestSuiteTVClean is the Table-3 acceptance gate: the full suite × 4
// levels × 3 machines validates with zero TV rejections.
func TestSuiteTVClean(t *testing.T) {
	optimizeSuite(t, true)
}

// TestSuiteTVOverhead is the -tv cost smoke check: validating every
// certificate across the whole suite must stay under 2× the plain compile
// time. The bound has a lot of headroom — TV's cost is proportional to the
// handful of duplications per function, not to program size — so a trip
// here means the validator grew a real hot spot, not that a shared runner
// was noisy.
func TestSuiteTVOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing smoke, skipped in short mode")
	}
	base := optimizeSuite(t, false)
	withTV := optimizeSuite(t, true)
	ratio := float64(withTV) / float64(base)
	t.Logf("suite optimize: %s plain, %s with TV (%.2fx)", base, withTV, ratio)
	if ratio >= 2.0 {
		t.Errorf("-tv suite overhead %.2fx, want < 2x", ratio)
	}
}
