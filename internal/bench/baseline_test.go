package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
)

// testBaseline returns a structurally valid baseline for serialization
// tests (no measurement).
func testBaseline() *Baseline {
	return &Baseline{
		Schema:  BaselineSchema,
		Machine: "68020",
		Suite: []SuiteResult{
			{Level: "SIMPLE", NsPerOp: 100, AllocsPerOp: 5, BytesPerOp: 50, RTLs: 1000, RTLsPerSec: 1e10},
			{Level: "LOOPS", NsPerOp: 110, AllocsPerOp: 5, BytesPerOp: 50, RTLs: 1000, RTLsPerSec: 9e9},
			{Level: "JUMPS", NsPerOp: 120, AllocsPerOp: 5, BytesPerOp: 50, RTLs: 1000, RTLsPerSec: 8e9},
			{Level: "DUPS", NsPerOp: 125, AllocsPerOp: 5, BytesPerOp: 50, RTLs: 1000, RTLsPerSec: 7e9},
		},
		Stress: []StressResult{
			{Engine: "oracle", States: 300, RTLs: 4000, NsPerOp: 1000, RTLsPerSec: 4e9},
			{Engine: "matrix", States: 300, RTLs: 4000, NsPerOp: 8000, RTLsPerSec: 5e8},
		},
		StressSpeedup: 8,
		Encoded:       testEncoded(),
		Floors: []Floor{
			{Level: "SIMPLE", MinRTLsPerSec: 4e9, MaxAllocsPerOp: 6},
			{Level: "LOOPS", MinRTLsPerSec: 3.6e9, MaxAllocsPerOp: 6},
			{Level: "JUMPS", MinRTLsPerSec: 3.2e9, MaxAllocsPerOp: 6},
			{Level: "DUPS", MinRTLsPerSec: 2.8e9, MaxAllocsPerOp: 6},
		},
	}
}

// testEncoded returns a structurally valid encoded section covering the
// whole machine × level registry grid.
func testEncoded() []EncodedResult {
	var out []EncodedResult
	for _, m := range machine.All() {
		for _, lv := range pipeline.AllLevels() {
			er := EncodedResult{Machine: m.Name, Level: lv.String(), CodeBytes: 1000}
			if m.Encoder != nil {
				er.ShortJumps, er.NearJumps = 40, 2
			}
			out = append(out, er)
		}
	}
	return out
}

func TestBaselineRoundTrip(t *testing.T) {
	bl := testBaseline()
	if err := bl.Validate(); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := bl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StressSpeedup != bl.StressSpeedup || len(got.Suite) != 4 || len(got.Stress) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestBaselineValidateRejects(t *testing.T) {
	cases := map[string]func(*Baseline){
		"bad schema":      func(b *Baseline) { b.Schema = 99 },
		"no machine":      func(b *Baseline) { b.Machine = "" },
		"missing level":   func(b *Baseline) { b.Suite = b.Suite[:2] },
		"zero ns":         func(b *Baseline) { b.Suite[0].NsPerOp = 0 },
		"missing engine":  func(b *Baseline) { b.Stress = b.Stress[:1] },
		"zero states":     func(b *Baseline) { b.Stress[0].States = 0 },
		"zero speedup":    func(b *Baseline) { b.StressSpeedup = 0 },
		"negative rtls/s": func(b *Baseline) { b.Suite[1].RTLsPerSec = -1 },
		"no encoded":      func(b *Baseline) { b.Encoded = nil },
		"missing cell":    func(b *Baseline) { b.Encoded = b.Encoded[1:] },
		"zero code bytes": func(b *Baseline) { b.Encoded[0].CodeBytes = 0 },
		"no x86 jumps": func(b *Baseline) {
			for i := range b.Encoded {
				b.Encoded[i].ShortJumps, b.Encoded[i].NearJumps = 0, 0
			}
		},
		"zero allocs":        func(b *Baseline) { b.Suite[0].AllocsPerOp = 0 },
		"zero bytes":         func(b *Baseline) { b.Suite[2].BytesPerOp = 0 },
		"no floors":          func(b *Baseline) { b.Floors = nil },
		"missing floor":      func(b *Baseline) { b.Floors = b.Floors[1:] },
		"zero floor":         func(b *Baseline) { b.Floors[0].MinRTLsPerSec = 0 },
		"unknown floor":      func(b *Baseline) { b.Floors[0].Level = "TURBO" },
		"inconsistent floor": func(b *Baseline) { b.Floors[1].MinRTLsPerSec = 1e12 },
		"alloc floor broken": func(b *Baseline) { b.Floors[2].MaxAllocsPerOp = 1 },
	}
	for name, mutate := range cases {
		bl := testBaseline()
		mutate(bl)
		if err := bl.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken baseline", name)
		}
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("unparsable file accepted")
	}
}

// TestStressSourceCompiles pins the stress generator's output to stay
// within the mini-C subset and produce the single-large-function shape the
// step-1 benchmarks rely on, and checks the suite RTL counter is sane.
func TestStressSourceCompiles(t *testing.T) {
	prog, err := mcc.Compile(StressSource(40))
	if err != nil {
		t.Fatalf("stress source no longer compiles: %v", err)
	}
	if len(prog.Funcs) != 1 {
		t.Fatalf("stress program has %d functions, want 1", len(prog.Funcs))
	}
	if blocks := len(prog.Funcs[0].Blocks); blocks < 80 {
		t.Errorf("stress function has only %d blocks for 40 states", blocks)
	}
	rtls, err := SuiteRTLs()
	if err != nil {
		t.Fatal(err)
	}
	if rtls <= 0 {
		t.Fatal("empty suite")
	}
}
