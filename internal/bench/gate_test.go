package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gateFixture returns a committed baseline and a fresh measurement that
// exactly matches it.
func gateFixture() (*Baseline, []SuiteResult) {
	bl := fakeBaseline(100)
	fresh := append([]SuiteResult(nil), bl.Suite...)
	return bl, fresh
}

func TestGatePasses(t *testing.T) {
	bl, fresh := gateFixture()
	rows, err := bl.Gate(fresh, 0)
	if err != nil {
		t.Fatalf("identical measurements failed the gate: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.Pass || !r.ThroughputOK || !r.AllocsOK {
			t.Errorf("%s: unexpected failure: %+v", r.Level, r)
		}
	}
}

func TestGateCatchesThroughputRegression(t *testing.T) {
	bl, fresh := gateFixture()
	// Drop LOOPS throughput below the 40% floor.
	fresh[1].RTLsPerSec = bl.Suite[1].RTLsPerSec * FloorThroughputFactor * 0.5
	rows, err := bl.Gate(fresh, 0)
	if err == nil {
		t.Fatal("halved throughput passed the gate")
	}
	if !strings.Contains(err.Error(), "LOOPS") {
		t.Errorf("failure does not name the level: %v", err)
	}
	if rows[1].Pass || !rows[1].AllocsOK || rows[1].ThroughputOK {
		t.Errorf("wrong verdict split: %+v", rows[1])
	}
	// The other levels still pass.
	if !rows[0].Pass || !rows[2].Pass || !rows[3].Pass {
		t.Errorf("unrelated levels failed: %+v %+v %+v", rows[0], rows[2], rows[3])
	}
}

func TestGateCatchesAllocRegression(t *testing.T) {
	bl, fresh := gateFixture()
	fresh[2].AllocsPerOp = bl.Floors[2].MaxAllocsPerOp * 2
	if _, err := bl.Gate(fresh, 0); err == nil {
		t.Fatal("doubled allocations passed the gate")
	}
}

func TestGateToleranceBand(t *testing.T) {
	bl, fresh := gateFixture()
	// 5% below the floor: fails at tol 0, passes at tol 0.10.
	fresh[0].RTLsPerSec = bl.Floors[0].MinRTLsPerSec * 0.95
	if _, err := bl.Gate(fresh, 0); err == nil {
		t.Fatal("sub-floor throughput passed without tolerance")
	}
	if _, err := bl.Gate(fresh, 0.10); err != nil {
		t.Fatalf("10%% tolerance did not absorb a 5%% dip: %v", err)
	}
	if _, err := bl.Gate(fresh, -1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestGateMissingLevel(t *testing.T) {
	bl, fresh := gateFixture()
	if _, err := bl.Gate(fresh[:3], 0); err == nil {
		t.Fatal("gate accepted measurements missing a level")
	}
}

func TestWriteGateSummary(t *testing.T) {
	bl, fresh := gateFixture()
	fresh[1].RTLsPerSec = 1 // force one failing row
	rows, _ := bl.Gate(fresh, 0.05)
	var sb strings.Builder
	if err := WriteGateSummary(&sb, rows, 0.05); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### Perf gate", "| Level |", "| SIMPLE |", "| LOOPS |", "| JUMPS |", "| DUPS |", "✅", "❌", "5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary misses %q:\n%s", want, out)
		}
	}
}

// TestLoadBaselineRequiresEncoded pins the validation error for a baseline
// file whose encoded section was dropped: loading must fail and name the
// missing cell rather than silently accepting a partial baseline.
func TestLoadBaselineRequiresEncoded(t *testing.T) {
	bl := fakeBaseline(100)
	bl.Encoded = nil
	path := filepath.Join(t.TempDir(), "noenc.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bl.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = LoadBaseline(path)
	if err == nil {
		t.Fatal("baseline without an encoded section accepted")
	}
	if !strings.Contains(err.Error(), "encoded section is missing cell") {
		t.Errorf("unexpected error: %v", err)
	}
}
