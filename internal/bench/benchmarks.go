package bench

// The five classic benchmarks of Table 3. Where the originals read no
// input, numbers come from an in-program linear congruential generator so
// the measured code includes the generation loop, just as the originals
// included their own initialization.

const bubblesortSrc = `
/* bubblesort - sort numbers (Table 3). */
int a[700];
int n = 700;
int seed = 42;

int nextrand() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

int main() {
	int i, j, t, swapped;
	for (i = 0; i < n; i++)
		a[i] = nextrand() % 10000;
	i = n - 1;
	while (i > 0) {
		swapped = 0;
		for (j = 0; j < i; j++) {
			if (a[j] > a[j+1]) {
				t = a[j];
				a[j] = a[j+1];
				a[j+1] = t;
				swapped = 1;
			}
		}
		if (!swapped)
			break;
		i--;
	}
	/* verify and checksum */
	t = 0;
	for (i = 0; i < n; i++) {
		if (i > 0 && a[i-1] > a[i]) {
			printstr("unsorted!\n");
			return 1;
		}
		t = (t * 31 + a[i]) & 0xffffff;
	}
	printint(t);
	putchar('\n');
	return 0;
}
`

const matmultSrc = `
/* matmult - matrix multiplication (Table 3). */
int a[40][40];
int b[40][40];
int c[40][40];
int n = 40;

int main() {
	int i, j, k, s;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			a[i][j] = i + 2 * j;
			b[i][j] = i - j;
		}
	}
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			s = 0;
			for (k = 0; k < n; k++)
				s += a[i][k] * b[k][j];
			c[i][j] = s;
		}
	}
	s = 0;
	for (i = 0; i < n; i++)
		s += c[i][i] + c[i][n - 1 - i];
	printint(s);
	putchar('\n');
	return 0;
}
`

const sieveSrc = `
/* sieve - iteration benchmark (Table 3): sieve of Eratosthenes, repeated. */
char flags[8191];
int size = 8190;

int main() {
	int iter, i, k, count;
	count = 0;
	for (iter = 0; iter < 12; iter++) {
		count = 0;
		for (i = 0; i <= size; i++)
			flags[i] = 1;
		for (i = 2; i <= size; i++) {
			if (flags[i]) {
				k = i + i;
				while (k <= size) {
					flags[k] = 0;
					k += i;
				}
				count++;
			}
		}
	}
	printint(count);
	putchar('\n');
	return 0;
}
`

const queensSrc = `
/* queens - 8-queens problem (Table 3): counts the 92 solutions. */
int col[8];
int used[8];
int diag1[15];
int diag2[15];
int solutions = 0;

void place(int row) {
	int c;
	for (c = 0; c < 8; c++) {
		if (used[c] || diag1[row + c] || diag2[row - c + 7])
			continue;
		if (row == 7) {
			solutions++;
			continue;
		}
		col[row] = c;
		used[c] = 1;
		diag1[row + c] = 1;
		diag2[row - c + 7] = 1;
		place(row + 1);
		used[c] = 0;
		diag1[row + c] = 0;
		diag2[row - c + 7] = 0;
	}
}

int main() {
	place(0);
	printint(solutions);
	return 0;
}
`

const quicksortSrc = `
/* quicksort - iterative quicksort with an explicit stack (Table 3). */
int a[3000];
int n = 3000;
int stack[64];
int seed = 7;

int nextrand() {
	seed = (seed * 1103515245 + 12345) & 0x7fffffff;
	return seed;
}

void isort(int lo, int hi) {
	int i, j, v;
	for (i = lo + 1; i <= hi; i++) {
		v = a[i];
		j = i - 1;
		while (j >= lo && a[j] > v) {
			a[j+1] = a[j];
			j--;
		}
		a[j+1] = v;
	}
}

int main() {
	int i, sp, lo, hi, p, t, mid;
	for (i = 0; i < n; i++)
		a[i] = nextrand() % 100000;
	sp = 0;
	stack[sp++] = 0;
	stack[sp++] = n - 1;
	while (sp > 0) {
		hi = stack[--sp];
		lo = stack[--sp];
		if (hi - lo < 12) {
			isort(lo, hi);
			continue;
		}
		/* median-of-three pivot */
		mid = lo + (hi - lo) / 2;
		if (a[mid] < a[lo]) { t = a[mid]; a[mid] = a[lo]; a[lo] = t; }
		if (a[hi] < a[lo]) { t = a[hi]; a[hi] = a[lo]; a[lo] = t; }
		if (a[hi] < a[mid]) { t = a[hi]; a[hi] = a[mid]; a[mid] = t; }
		p = a[mid];
		i = lo;
		t = hi;
		while (i <= t) {
			while (a[i] < p) i++;
			while (a[t] > p) t--;
			if (i <= t) {
				int tmp;
				tmp = a[i]; a[i] = a[t]; a[t] = tmp;
				i++;
				t--;
			}
		}
		if (lo < t) {
			stack[sp++] = lo;
			stack[sp++] = t;
		}
		if (i < hi) {
			stack[sp++] = i;
			stack[sp++] = hi;
		}
	}
	t = 0;
	for (i = 0; i < n; i++) {
		if (i > 0 && a[i-1] > a[i]) {
			printstr("unsorted!\n");
			return 1;
		}
		t = (t * 33 + a[i]) & 0xffffff;
	}
	printint(t);
	putchar('\n');
	return 0;
}
`
