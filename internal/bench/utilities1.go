package bench

// banner, cal, wc, od — the smaller UNIX utilities of Table 3.

const bannerSrc = `
/* banner - banner generator (Table 3). Prints input words in large
 * letters built from a full 5x7 bit-pattern font for A-Z, 0-9 and
 * punctuation, like the original. */
int font[40][7];
int ready = 0;

void glyph7(int g, int r0, int r1, int r2, int r3, int r4, int r5, int r6) {
	font[g][0] = r0; font[g][1] = r1; font[g][2] = r2; font[g][3] = r3;
	font[g][4] = r4; font[g][5] = r5; font[g][6] = r6;
}

/* initfont fills in the glyphs; patterns are 5-bit rows, MSB left. */
void initfont() {
	glyph7(0,  14, 17, 17, 31, 17, 17, 17);  /* A */
	glyph7(1,  30, 17, 17, 30, 17, 17, 30);  /* B */
	glyph7(2,  14, 17, 16, 16, 16, 17, 14);  /* C */
	glyph7(3,  30, 17, 17, 17, 17, 17, 30);  /* D */
	glyph7(4,  31, 16, 16, 30, 16, 16, 31);  /* E */
	glyph7(5,  31, 16, 16, 30, 16, 16, 16);  /* F */
	glyph7(6,  14, 17, 16, 23, 17, 17, 15);  /* G */
	glyph7(7,  17, 17, 17, 31, 17, 17, 17);  /* H */
	glyph7(8,  14,  4,  4,  4,  4,  4, 14);  /* I */
	glyph7(9,   7,  2,  2,  2,  2, 18, 12);  /* J */
	glyph7(10, 17, 18, 20, 24, 20, 18, 17);  /* K */
	glyph7(11, 16, 16, 16, 16, 16, 16, 31);  /* L */
	glyph7(12, 17, 27, 21, 21, 17, 17, 17);  /* M */
	glyph7(13, 17, 25, 21, 19, 17, 17, 17);  /* N */
	glyph7(14, 14, 17, 17, 17, 17, 17, 14);  /* O */
	glyph7(15, 30, 17, 17, 30, 16, 16, 16);  /* P */
	glyph7(16, 14, 17, 17, 17, 21, 18, 13);  /* Q */
	glyph7(17, 30, 17, 17, 30, 20, 18, 17);  /* R */
	glyph7(18, 15, 16, 16, 14,  1,  1, 30);  /* S */
	glyph7(19, 31,  4,  4,  4,  4,  4,  4);  /* T */
	glyph7(20, 17, 17, 17, 17, 17, 17, 14);  /* U */
	glyph7(21, 17, 17, 17, 17, 17, 10,  4);  /* V */
	glyph7(22, 17, 17, 17, 21, 21, 27, 17);  /* W */
	glyph7(23, 17, 10,  4,  4,  4, 10, 17);  /* X */
	glyph7(24, 17, 17, 10,  4,  4,  4,  4);  /* Y */
	glyph7(25, 31,  1,  2,  4,  8, 16, 31);  /* Z */
	glyph7(26, 14, 17, 19, 21, 25, 17, 14);  /* 0 */
	glyph7(27,  4, 12,  4,  4,  4,  4, 14);  /* 1 */
	glyph7(28, 14, 17,  1,  2,  4,  8, 31);  /* 2 */
	glyph7(29, 31,  2,  4,  2,  1, 17, 14);  /* 3 */
	glyph7(30,  2,  6, 10, 18, 31,  2,  2);  /* 4 */
	glyph7(31, 31, 16, 30,  1,  1, 17, 14);  /* 5 */
	glyph7(32,  6,  8, 16, 30, 17, 17, 14);  /* 6 */
	glyph7(33, 31,  1,  2,  4,  8,  8,  8);  /* 7 */
	glyph7(34, 14, 17, 17, 14, 17, 17, 14);  /* 8 */
	glyph7(35, 14, 17, 17, 15,  1,  2, 12);  /* 9 */
	glyph7(36,  0,  0,  0,  0,  0,  0,  0);  /* space */
	glyph7(37,  4,  4,  4,  4,  4,  0,  4);  /* ! */
	glyph7(38,  0,  0,  0, 31,  0,  0,  0);  /* - */
	glyph7(39,  0,  0,  0,  0,  0,  4,  8);  /* , */
	ready = 1;
}

/* glyph maps a character to a font index, -1 if unprintable. */
int glyph(int c) {
	if (c >= 'a' && c <= 'z')
		c = c - 'a' + 'A';
	if (c >= 'A' && c <= 'Z')
		return c - 'A';
	if (c >= '0' && c <= '9')
		return c - '0' + 26;
	if (c == ' ')
		return 36;
	if (c == '!')
		return 37;
	if (c == '-')
		return 38;
	if (c == ',')
		return 39;
	return -1;
}

char line[128];

int main() {
	int n, i, row, g, bits, col;
	if (!ready)
		initfont();
	n = 0;
	while ((i = getchar()) != -1 && i != '\n' && n < 100)
		line[n++] = i;
	for (row = 0; row < 7; row++) {
		for (i = 0; i < n; i++) {
			g = glyph(line[i]);
			if (g < 0)
				continue;
			bits = font[g][row];
			for (col = 4; col >= 0; col--) {
				if (bits & (1 << col))
					putchar('#');
				else
					putchar(' ');
			}
			putchar(' ');
		}
		putchar('\n');
	}
	return 0;
}
`

const calSrc = `
/* cal - calendar generator (Table 3): prints the 12 months of a year. */
char mnames[60] = "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec";

int leap(int y) {
	if (y % 400 == 0) return 1;
	if (y % 100 == 0) return 0;
	return y % 4 == 0;
}

/* mdays dispatches through a dense jump table — an indirect jump, which
 * code replication must leave in place. */
int mdays(int m, int y) {
	switch (m) {
	case 0: return 31;
	case 1: return leap(y) ? 29 : 28;
	case 2: return 31;
	case 3: return 30;
	case 4: return 31;
	case 5: return 30;
	case 6: return 31;
	case 7: return 31;
	case 8: return 30;
	case 9: return 31;
	case 10: return 30;
	case 11: return 31;
	default: return 0;
	}
}

/* weekday of 1 January for the year (0 = Sunday), by counting from 1753. */
int jan1(int y) {
	int d, i;
	d = 1;  /* 1 Jan 1753 was a Monday */
	for (i = 1753; i < y; i++) {
		d += 365;
		if (leap(i))
			d++;
	}
	return d % 7;
}

void printnum2(int v) {
	if (v < 10) {
		putchar(' ');
		printint(v);
	} else {
		printint(v);
	}
}

int main() {
	int year, c, m, dim, dow, d, i;
	year = 0;
	while ((c = getchar()) != -1 && c >= '0' && c <= '9')
		year = year * 10 + c - '0';
	if (year < 1753 || year > 2400) {
		printstr("cal: bad year\n");
		return 1;
	}
	dow = jan1(year);
	for (m = 0; m < 12; m++) {
		for (i = 0; i < 3; i++)
			putchar(mnames[m * 4 + i]);
		putchar(' ');
		printint(year);
		putchar('\n');
		printstr("Su Mo Tu We Th Fr Sa\n");
		dim = mdays(m, year);
		for (i = 0; i < dow; i++)
			printstr("   ");
		for (d = 1; d <= dim; d++) {
			printnum2(d);
			dow++;
			if (dow == 7) {
				dow = 0;
				putchar('\n');
			} else {
				putchar(' ');
			}
		}
		if (dow != 0)
			putchar('\n');
		putchar('\n');
	}
	return 0;
}
`

const wcSrc = `
/* wc - word count (Table 3): lines, words, characters. */
int main() {
	int c, lines, words, chars, inword;
	lines = 0; words = 0; chars = 0; inword = 0;
	while ((c = getchar()) != -1) {
		chars++;
		if (c == '\n')
			lines++;
		if (c == ' ' || c == '\t' || c == '\n') {
			inword = 0;
		} else if (!inword) {
			inword = 1;
			words++;
		}
	}
	printint(lines); putchar(' ');
	printint(words); putchar(' ');
	printint(chars); putchar('\n');
	return 0;
}
`

const odSrc = `
/* od - octal dump (Table 3): offsets and 8 octal words per line. */
void printoct(int v, int width) {
	int digits[12];
	int n, i;
	n = 0;
	if (v == 0)
		digits[n++] = 0;
	while (v > 0) {
		digits[n++] = v % 8;
		v = v / 8;
	}
	for (i = width - n; i > 0; i--)
		putchar('0');
	while (n > 0)
		putchar('0' + digits[--n]);
}

int main() {
	int c, off, col;
	off = 0;
	col = 0;
	while ((c = getchar()) != -1) {
		if (col == 0) {
			printoct(off, 7);
			putchar(' ');
		}
		printoct(c, 3);
		off++;
		col++;
		if (col == 8) {
			col = 0;
			putchar('\n');
		} else {
			putchar(' ');
		}
	}
	if (col != 0)
		putchar('\n');
	printoct(off, 7);
	putchar('\n');
	return 0;
}
`
