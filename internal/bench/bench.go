// Package bench holds the paper's Table-3 test set — eight UNIX utilities,
// five benchmarks and one user application, rewritten in mini-C with
// deterministic synthetic inputs — plus the experiment harness that
// regenerates Tables 4, 5 and 6.
//
// The original programs processed real files on real hardware; the
// rewrites below preserve each program's control-flow character (tight
// loops, mid-loop exits, early returns, switches, gotos) at roughly one
// tenth of the paper's dynamic instruction counts so a full table run
// finishes in seconds. See DESIGN.md §2 for the substitution rationale.
package bench

import "strings"

// Program is one entry of the paper's Table 3.
type Program struct {
	// Name is the Table-3 row label (and the wire name in POST /measure).
	Name string
	// Class is the Table-3 grouping: "Utilities", "Benchmarks" or "User code".
	Class string
	// Description is the one-line purpose from the paper's table.
	Description string
	// Source is the mini-C translation unit.
	Source string
	// Input is the program's canned standard input.
	Input string
	// WantOutput, when non-empty, is checked by the test suite to pin the
	// program's behaviour.
	WantOutput string
}

// Programs returns the paper's test set in Table-3 order.
func Programs() []Program {
	return []Program{
		{"banner", "Utilities", "banner generator", bannerSrc, "REPRO 92\n", ""},
		{"cal", "Utilities", "calendar generator", calSrc, "1992\n", ""},
		{"compact", "Utilities", "file compression", compactSrc, textInput(40), ""},
		{"deroff", "Utilities", "remove nroff constructs", deroffSrc, nroffInput(30), ""},
		{"grep", "Utilities", "pattern search", grepSrc, "liq[^xyz]o[r-t]+ [jk]ug+s$\n" + textInput(40), ""},
		{"od", "Utilities", "octal dump", odSrc, textInput(24), ""},
		{"sort", "Utilities", "sort or merge files", sortSrc, linesInput(160), ""},
		{"wc", "Utilities", "word count", wcSrc, textInput(60), ""},
		{"bubblesort", "Benchmarks", "sort numbers", bubblesortSrc, "", ""},
		{"matmult", "Benchmarks", "matrix multiplication", matmultSrc, "", ""},
		{"sieve", "Benchmarks", "iteration", sieveSrc, "", ""},
		{"queens", "Benchmarks", "8-queens problem", queensSrc, "", "92"},
		{"quicksort", "Benchmarks", "sort numbers (iterative)", quicksortSrc, "", ""},
		{"mincost", "User code", "VLSI circuit partitioning", mincostSrc, "", ""},
	}
}

// ProgramByName returns the named program, or nil.
func ProgramByName(name string) *Program {
	ps := Programs()
	for i := range ps {
		if ps[i].Name == name {
			return &ps[i]
		}
	}
	return nil
}

// textInput builds a deterministic prose-like input of n paragraphs.
func textInput(n int) string {
	para := "the quick brown fox jumps over the lazy dog 0123456789\n" +
		"pack my box with five dozen liquor jugs\n" +
		"how vexingly quick daft zebras jump and banana anna ana\n"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(para)
	}
	return b.String()
}

// nroffInput builds an nroff-style document of n sections, exercising
// requests, font/size escapes, special characters, and table/equation
// blocks that deroff must skip.
func nroffInput(n int) string {
	sect := ".TH REPRO 1\n.SH NAME\nrepro \\- reproduce a paper\n" +
		".PP\nThis \\fBparagraph\\fP has \\fIfont\\fR and \\s+2size\\s0 escapes.\n" +
		"A special char \\(em dash and a \\*(xx string here.\n" +
		".TS\ncol1\tcol2\nskip\tme\n.TE\n" +
		".EQ\nx sup 2 + y sup 2\n.EN\n" +
		".br\nplain body line that should survive the filter\n"
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(sect)
	}
	return b.String()
}

// linesInput builds n pseudo-random short lines for the sort utility.
func linesInput(n int) string {
	var b strings.Builder
	seed := 12345
	for i := 0; i < n; i++ {
		seed = (seed*1103515245 + 12345) & 0x7fffffff
		ln := 3 + seed%9
		for j := 0; j < ln; j++ {
			seed = (seed*1103515245 + 12345) & 0x7fffffff
			b.WriteByte(byte('a' + seed%26))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
