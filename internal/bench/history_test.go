package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/replicate"
)

// fakeBaseline builds a structurally valid baseline without measuring.
func fakeBaseline(ns int64) *Baseline {
	bl := &Baseline{Schema: BaselineSchema, Machine: "68020", StressSpeedup: 3.5}
	for _, lv := range []string{"SIMPLE", "LOOPS", "JUMPS", "DUPS"} {
		bl.Suite = append(bl.Suite, SuiteResult{
			Level: lv, NsPerOp: ns, AllocsPerOp: 1, BytesPerOp: 1,
			RTLs: 1000, RTLsPerSec: float64(1000) * 1e9 / float64(ns),
		})
	}
	for _, eng := range []replicate.PathEngine{replicate.EngineOracle, replicate.EngineMatrix} {
		bl.Stress = append(bl.Stress, StressResult{
			Engine: eng.String(), States: 10, RTLs: 500,
			NsPerOp: ns, RTLsPerSec: float64(500) * 1e9 / float64(ns),
		})
	}
	bl.Encoded = testEncoded()
	bl.Floors = DeriveFloors(bl.Suite)
	return bl
}

// TestHistoryToleratesLegacySchema: a history file accumulated across CI
// runs carries records from before a schema bump; loading must keep them
// without forcing them through the current schema's validation.
func TestHistoryToleratesLegacySchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	legacy := fakeBaseline(100)
	legacy.Schema = BaselineSchema - 1
	legacy.Floors = nil // schema 2 had no floors section
	// Written raw: AppendHistory itself (correctly) refuses non-current
	// schemas.
	line, err := json.Marshal(HistoryRecord{Time: time.Unix(0, 0).UTC(), Baseline: legacy})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, fakeBaseline(200), time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Baseline.Schema != BaselineSchema-1 {
		t.Fatalf("legacy record lost: %d records", len(recs))
	}
}

func TestHistoryAppendAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")

	// Missing file loads as empty history.
	recs, err := LoadHistory(path)
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing file: %v, %d records", err, len(recs))
	}

	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	if err := AppendHistory(path, fakeBaseline(100), t0); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, fakeBaseline(200), t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	recs, err = LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loaded %d records, want 2", len(recs))
	}
	if !recs[0].Time.Equal(t0) || recs[0].Baseline.Suite[0].NsPerOp != 100 {
		t.Fatalf("first record: %+v", recs[0])
	}
	if recs[1].Baseline.Suite[0].NsPerOp != 200 {
		t.Fatalf("second record: %+v", recs[1])
	}

	// The file is one JSON object per line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("file has %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"time":`) {
			t.Fatalf("unexpected line shape: %s", l)
		}
	}
}

func TestHistoryRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	bad := fakeBaseline(100)
	bad.Schema = 999
	if err := AppendHistory(path, bad, time.Now()); err == nil {
		t.Fatal("appended a baseline with a bogus schema")
	}
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(path); err == nil {
		t.Fatal("loaded a corrupt history file")
	}
}
