package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"testing"

	"repro/internal/cfg"
	"repro/internal/difftest"
	"repro/internal/encode"
	"repro/internal/machine"
	"repro/internal/mcc"
	"repro/internal/pipeline"
	"repro/internal/replicate"
)

// BaselineSchema is the schema version written into BENCH_baseline.json;
// bump it when the shape of Baseline changes incompatibly. Schema 2 added
// the Encoded section (per machine×level suite code bytes and jump forms);
// schema 3 added the Floors section (per-level throughput and allocation
// acceptance bounds enforced by the CI perf gate) and made the suite's
// allocation measurements mandatory; schema 4 added the DUPS level — the
// suite, encoded and floors sections grew from three levels to four (12
// encoded cells), so older files fail the per-level completeness checks.
const BaselineSchema = 4

// Floor-derivation factors: the committed floor admits throughput down to
// FloorThroughputFactor of the measured value and allocation counts up to
// FloorAllocFactor of it. The wide throughput band absorbs hardware and
// load variance between the machine that measured the baseline and the CI
// runner; allocation counts are near-deterministic, so their band is tight.
const (
	FloorThroughputFactor = 0.40
	FloorAllocFactor      = 1.15
)

// DefaultStressStates is the standard size of the synthetic stress
// function (difftest.GenerateStress) used by the committed baseline: large
// enough that step 1 dominates the matrix engine's compile time (~1700
// blocks before replication), small enough that the matrix leg still
// finishes in well under a minute.
const DefaultStressStates = 300

// Baseline is the machine-readable performance baseline committed as
// BENCH_baseline.json. Regenerate it with `go run ./cmd/bench` (see
// docs/PERFORMANCE.md); CI only validates that the committed file parses
// and is self-consistent, so numbers from different hardware never fail a
// build.
type Baseline struct {
	// Schema identifies the file format (BaselineSchema).
	Schema int `json:"schema"`
	// Machine is the machine model every compile benchmark targets.
	Machine string `json:"machine"`
	// Suite holds one entry per pipeline level: the full Table-3 program
	// suite compiled front-to-back at that level.
	Suite []SuiteResult `json:"suite"`
	// Stress holds one entry per path engine: the synthetic stress
	// function compiled at the stock 20000-RTL replication ceiling.
	Stress []StressResult `json:"stress"`
	// StressSpeedup is the matrix/oracle wall-time ratio of the stress
	// compiles — the headline number of the on-demand engine (≥3 is the
	// acceptance floor; see docs/PERFORMANCE.md for measured values).
	StressSpeedup float64 `json:"stress_speedup"`
	// Encoded holds the encoded code size of the whole Table-3 suite for
	// every machine × level cell, with the displacement fixpoint's jump
	// form split. Unlike the timing sections these numbers are
	// deterministic (pure layout, no clocks), so CI can compare them
	// exactly.
	Encoded []EncodedResult `json:"encoded"`
	// Floors holds the perf-gate acceptance bounds per pipeline level,
	// derived from the committed suite measurements (DeriveFloors). CI
	// re-measures the suite and fails the build when a level's throughput
	// drops below MinRTLsPerSec or its allocation count rises above
	// MaxAllocsPerOp (cmd/bench -gate).
	Floors []Floor `json:"floors"`
}

// Floor is one level's perf-gate acceptance bound.
type Floor struct {
	// Level is the pipeline level name ("SIMPLE", "LOOPS", "JUMPS",
	// "DUPS").
	Level string `json:"level"`
	// MinRTLsPerSec is the lowest acceptable suite compile throughput.
	MinRTLsPerSec float64 `json:"min_rtls_per_sec"`
	// MaxAllocsPerOp is the highest acceptable allocation count per suite
	// compile.
	MaxAllocsPerOp int64 `json:"max_allocs_per_op"`
}

// DeriveFloors computes the perf-gate bounds from measured suite results.
func DeriveFloors(suite []SuiteResult) []Floor {
	floors := make([]Floor, 0, len(suite))
	for _, s := range suite {
		floors = append(floors, Floor{
			Level:          s.Level,
			MinRTLsPerSec:  s.RTLsPerSec * FloorThroughputFactor,
			MaxAllocsPerOp: int64(float64(s.AllocsPerOp) * FloorAllocFactor),
		})
	}
	return floors
}

// EncodedResult reports the encoded layout of the whole Table-3 suite on
// one machine at one level.
type EncodedResult struct {
	// Machine and Level name the cell.
	Machine string `json:"machine"`
	Level   string `json:"level"`
	// CodeBytes is the summed encoded size of every suite program.
	CodeBytes int64 `json:"code_bytes"`
	// ShortJumps and NearJumps count the variable jumps by the form the
	// fixpoint assigned (both zero on machines without an Encoder).
	ShortJumps int `json:"short_jumps"`
	NearJumps  int `json:"near_jumps"`
}

// SuiteResult reports compiling the whole Table-3 suite at one level.
type SuiteResult struct {
	// Level is the pipeline level name ("SIMPLE", "LOOPS", "JUMPS",
	// "DUPS").
	Level string `json:"level"`
	// NsPerOp is the wall time per suite compile (all 14 programs).
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the allocation count per suite compile.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is the allocated bytes per suite compile.
	BytesPerOp int64 `json:"bytes_per_op"`
	// RTLs is the total input size: RTL instructions entering the
	// optimizer per suite compile, summed over all programs and functions.
	RTLs int64 `json:"rtls"`
	// RTLsPerSec is compile throughput: RTLs / (NsPerOp in seconds).
	RTLsPerSec float64 `json:"rtls_per_sec"`
}

// StressResult reports compiling the synthetic stress function with one
// path engine.
type StressResult struct {
	// Engine is the step-1 path engine ("oracle" or "matrix").
	Engine string `json:"engine"`
	// States is the difftest.GenerateStress size used.
	States int `json:"states"`
	// RTLs is the function's RTL count entering the optimizer.
	RTLs int64 `json:"rtls"`
	// NsPerOp is the wall time per stress compile.
	NsPerOp int64 `json:"ns_per_op"`
	// RTLsPerSec is input-RTL throughput of the whole pipeline compile.
	RTLsPerSec float64 `json:"rtls_per_sec"`
}

// progRTLs sums the RTL counts of every function of a compiled program.
func progRTLs(p *cfg.Program) int64 {
	var n int64
	for _, f := range p.Funcs {
		n += int64(f.NumRTLs())
	}
	return n
}

// SuiteRTLs returns the total optimizer-input size of the Table-3 suite in
// RTL instructions (the numerator of the suite throughput metrics).
func SuiteRTLs() (int64, error) {
	var total int64
	for _, p := range Programs() {
		prog, err := mcc.Compile(p.Source)
		if err != nil {
			return 0, fmt.Errorf("bench: compile %s: %w", p.Name, err)
		}
		total += progRTLs(prog)
	}
	return total, nil
}

// CompileSuiteBench returns a benchmark function that compiles every
// Table-3 program front-to-back (parse + optimize) at the given level.
// Shared by the root `go test -bench` macro benchmarks and cmd/bench.
func CompileSuiteBench(m *machine.Machine, lv pipeline.Level) func(b *testing.B) {
	progs := Programs()
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for pi := range progs {
				prog, err := mcc.Compile(progs[pi].Source)
				if err != nil {
					b.Fatal(err)
				}
				pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
			}
		}
	}
}

// StressSource returns the mini-C source of the standard stress shape at
// the given size (difftest.GenerateStress re-exported so cmd/bench and the
// root benchmarks agree on the exact program).
func StressSource(states int) string { return difftest.GenerateStress(states) }

// StressCompileBench returns a benchmark function that compiles the
// synthetic stress function at the JUMPS level with the given path engine
// and the stock 20000-RTL replication ceiling. Shared by the root
// `go test -bench` macro benchmarks and cmd/bench.
func StressCompileBench(engine replicate.PathEngine, states int) func(b *testing.B) {
	src := StressSource(states)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prog, err := mcc.Compile(src)
			if err != nil {
				b.Fatal(err)
			}
			pipeline.Optimize(prog, pipeline.Config{
				Machine:     machine.M68020,
				Level:       pipeline.Jumps,
				Replication: replicate.Options{Engine: engine},
			})
		}
	}
}

// MeasureEncoded lays out the whole Table-3 suite on every registered
// machine at every level and returns the per-cell encoded sizes in
// canonical (machine × level) order. Deterministic: same sources, same
// bytes, on any host.
func MeasureEncoded() ([]EncodedResult, error) {
	var out []EncodedResult
	for _, m := range machine.All() {
		for _, lv := range pipeline.AllLevels() {
			er := EncodedResult{Machine: m.Name, Level: lv.String()}
			for _, p := range Programs() {
				prog, err := mcc.Compile(p.Source)
				if err != nil {
					return nil, fmt.Errorf("bench: compile %s: %w", p.Name, err)
				}
				pipeline.Optimize(prog, pipeline.Config{Machine: m, Level: lv})
				ep := encode.LayoutProgram(prog, m)
				er.CodeBytes += ep.CodeBytes
				for _, ef := range ep.Funcs {
					er.ShortJumps += ef.Short
					er.NearJumps += ef.Near
				}
			}
			out = append(out, er)
		}
	}
	return out, nil
}

// RunBaseline measures the full baseline: the Table-3 suite compile at
// every pipeline level plus the stress compile with both path engines.
// states sizes the stress function (0 = DefaultStressStates). Progress
// lines go to progress when non-nil (the runs take tens of seconds).
func RunBaseline(states int, progress io.Writer) (*Baseline, error) {
	if states == 0 {
		states = DefaultStressStates
	}
	logf := func(format string, args ...interface{}) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	bl := &Baseline{Schema: BaselineSchema, Machine: machine.M68020.Name}
	var err error
	if bl.Suite, err = RunSuite(progress); err != nil {
		return nil, err
	}

	stressProg, err := mcc.Compile(StressSource(states))
	if err != nil {
		return nil, fmt.Errorf("bench: compile stress: %w", err)
	}
	stressRTLs := progRTLs(stressProg)
	var byEngine [2]int64
	for _, engine := range []replicate.PathEngine{replicate.EngineOracle, replicate.EngineMatrix} {
		logf("stress compile (%d states, %d RTLs) with %s engine...", states, stressRTLs, engine)
		r := testing.Benchmark(StressCompileBench(engine, states))
		ns := r.NsPerOp()
		byEngine[engine] = ns
		bl.Stress = append(bl.Stress, StressResult{
			Engine:     engine.String(),
			States:     states,
			RTLs:       stressRTLs,
			NsPerOp:    ns,
			RTLsPerSec: float64(stressRTLs) * 1e9 / float64(ns),
		})
	}
	bl.StressSpeedup = float64(byEngine[replicate.EngineMatrix]) / float64(byEngine[replicate.EngineOracle])

	logf("encoded layout of the suite on %d machines...", len(machine.All()))
	bl.Encoded, err = MeasureEncoded()
	if err != nil {
		return nil, err
	}
	bl.Floors = DeriveFloors(bl.Suite)
	return bl, nil
}

// RunSuite measures only the Table-3 suite compile benchmarks (the part of
// the baseline the perf gate compares): much faster than RunBaseline since
// the stress compiles and the 12-cell encoded layout are skipped.
func RunSuite(progress io.Writer) ([]SuiteResult, error) {
	suiteRTLs, err := SuiteRTLs()
	if err != nil {
		return nil, err
	}
	var out []SuiteResult
	for _, lv := range pipeline.AllLevels() {
		if progress != nil {
			fmt.Fprintf(progress, "suite compile at %s...\n", lv)
		}
		r := testing.Benchmark(CompileSuiteBench(machine.M68020, lv))
		ns := r.NsPerOp()
		out = append(out, SuiteResult{
			Level:       lv.String(),
			NsPerOp:     ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			RTLs:        suiteRTLs,
			RTLsPerSec:  float64(suiteRTLs) * 1e9 / float64(ns),
		})
	}
	return out, nil
}

// WriteJSON writes the baseline as indented JSON.
func (bl *Baseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bl)
}

// LoadBaseline reads and validates a baseline file; it returns an error
// when the file is missing, unparsable, or structurally inconsistent (the
// CI smoke gate).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := bl.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &bl, nil
}

// Validate checks the baseline's structural invariants: known schema, one
// suite entry per pipeline level with every measurement populated
// (including the allocation columns the perf gate relies on), both engines
// in the stress comparison, the full encoded grid, and self-consistent
// floors — the committed measurements must satisfy their own bounds.
func (bl *Baseline) Validate() error {
	if bl.Schema != BaselineSchema {
		return fmt.Errorf("schema %d, want %d", bl.Schema, BaselineSchema)
	}
	if bl.Machine == "" {
		return fmt.Errorf("missing machine name")
	}
	levels := map[string]SuiteResult{}
	for _, s := range bl.Suite {
		if s.NsPerOp <= 0 || s.RTLs <= 0 || s.RTLsPerSec <= 0 {
			return fmt.Errorf("suite level %q: non-positive measurement", s.Level)
		}
		if s.AllocsPerOp <= 0 || s.BytesPerOp <= 0 {
			return fmt.Errorf("suite level %q: missing allocation measurements", s.Level)
		}
		levels[s.Level] = s
	}
	for _, lv := range pipeline.AllLevels() {
		if _, ok := levels[lv.String()]; !ok {
			return fmt.Errorf("suite is missing level %s", lv)
		}
	}
	floors := map[string]bool{}
	for _, fl := range bl.Floors {
		s, ok := levels[fl.Level]
		if !ok {
			return fmt.Errorf("floor for unknown level %q", fl.Level)
		}
		if fl.MinRTLsPerSec <= 0 || fl.MaxAllocsPerOp <= 0 {
			return fmt.Errorf("floor %s: non-positive bound", fl.Level)
		}
		if s.RTLsPerSec < fl.MinRTLsPerSec || s.AllocsPerOp > fl.MaxAllocsPerOp {
			return fmt.Errorf("floor %s: committed measurement violates its own bound", fl.Level)
		}
		floors[fl.Level] = true
	}
	for _, lv := range pipeline.AllLevels() {
		if !floors[lv.String()] {
			return fmt.Errorf("floors section is missing level %s", lv)
		}
	}
	engines := map[string]bool{}
	for _, s := range bl.Stress {
		if s.NsPerOp <= 0 || s.RTLs <= 0 || s.States <= 0 {
			return fmt.Errorf("stress engine %q: non-positive measurement", s.Engine)
		}
		engines[s.Engine] = true
	}
	if !engines[replicate.EngineOracle.String()] || !engines[replicate.EngineMatrix.String()] {
		got := make([]string, 0, len(engines))
		for e := range engines {
			got = append(got, e)
		}
		sort.Strings(got)
		return fmt.Errorf("stress comparison must cover both engines, got %v", got)
	}
	if bl.StressSpeedup <= 0 {
		return fmt.Errorf("non-positive stress speedup")
	}
	cells := map[string]EncodedResult{}
	for _, e := range bl.Encoded {
		if e.CodeBytes <= 0 {
			return fmt.Errorf("encoded %s/%s: non-positive code bytes", e.Machine, e.Level)
		}
		if e.ShortJumps < 0 || e.NearJumps < 0 {
			return fmt.Errorf("encoded %s/%s: negative jump counts", e.Machine, e.Level)
		}
		cells[e.Machine+"/"+e.Level] = e
	}
	for _, m := range machine.All() {
		for _, lv := range pipeline.AllLevels() {
			e, ok := cells[m.Name+"/"+lv.String()]
			if !ok {
				return fmt.Errorf("encoded section is missing cell %s/%s", m.Name, lv)
			}
			if m.Encoder != nil && e.ShortJumps+e.NearJumps == 0 {
				return fmt.Errorf("encoded %s/%s: no variable jumps on an encoder machine", m.Name, lv)
			}
			if m.Encoder == nil && e.ShortJumps+e.NearJumps != 0 {
				return fmt.Errorf("encoded %s/%s: variable jumps on an encoder-less machine", m.Name, lv)
			}
		}
	}
	return nil
}
