package replicate

import (
	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/tv"
)

// DUPS is the fourth optimization level's replication pass: conditional
// elimination through code duplication (after Breitner; see PAPERS.md)
// layered over the generalized JUMPS replication. A conditional branch
// whose outcome is already decided when control arrives along one incoming
// edge — because the compared values are constants on that path, or because
// a dominating test on the same comparison implies the result — is
// eliminated on that edge by duplicating the test block with the branch
// folded to the decided transfer.
//
// The two legs are staged, not interleaved: conditional elimination waits
// until jump replication has nothing left to do. While JUMPS still makes
// progress DUPS is JUMPS, so the function walks the identical pass
// trajectory it would at the JUMPS level — folding earlier perturbs the
// replicator's candidate choices and can cost more downstream branch
// eliminations than the folds save (fuzz seed 60 caught exactly that).
// Only at that fixpoint does a fold fire, a strict improvement on the
// JUMPS-final flow graph; the unconditional jump it leaves in the copy is
// replicated away by the trailing JUMPS sweep, exactly as the paper's
// replication kills the jumps ordinary code generation leaves behind.
func DUPS(f *cfg.Func, opts Options) Result {
	res := JUMPS(f, opts)
	if res.Changed {
		return res
	}
	res.Merge(condElim(f, opts))
	if res.Changed {
		res.Merge(JUMPS(f, opts))
	}
	return res
}

// condElim repeatedly folds decided conditional branches until a sweep
// finds nothing foldable or the growth budget is exhausted. Every applied
// fold consumes the decided edge it acted on, and failed (rolled-back)
// edges are blacklisted for the invocation, so each sweep makes strict
// progress on the ProfitFolds metric or terminates the pass.
func condElim(f *cfg.Func, opts Options) Result {
	var res Result
	blacklist := map[jumpKey]bool{}
	g := newBudget(f, opts, ProfitFolds)
	for !g.exhausted(f) {
		if foldSweep(f, opts, g, blacklist, &res) == 0 {
			break
		}
		res.Changed = true
	}
	return res
}

// edgeKind classifies how control flows from a predecessor into the test
// block under consideration.
type edgeKind uint8

// The incoming-edge shapes conditional elimination understands.
const (
	// edgeJump: the predecessor ends in an unconditional jump to the test
	// block. Folding dissolves the jump too — the copy is spliced in as
	// the predecessor's fall-through, removing one dynamic unconditional
	// jump and one dynamic conditional branch per traversal.
	edgeJump edgeKind = iota
	// edgeBrTaken: the predecessor's conditional branch targets the test
	// block; the taken edge is retargeted onto the folded copy.
	edgeBrTaken
	// edgeFall: control falls through into the test block (from a
	// terminator-less block or a branch's fall-through); the folded copy
	// is spliced between the two blocks.
	edgeFall
)

// shape maps the engine's edge kind to its certificate counterpart.
func (k edgeKind) shape() tv.EdgeShape {
	switch k {
	case edgeJump:
		return tv.EdgeJump
	case edgeBrTaken:
		return tv.EdgeBrTaken
	}
	return tv.EdgeFall
}

// dupEdge is one incoming edge of a conditional test block.
type dupEdge struct {
	t    *cfg.Block
	kind edgeKind
}

// edgesOf enumerates p's outgoing edges in the shapes conditional
// elimination can rewire (indirect jumps are excluded: a jump-table entry
// is not an edge the engine retargets).
func edgesOf(f *cfg.Func, p *cfg.Block) []dupEdge {
	var out []dupEdge
	t := p.Term()
	next := func() *cfg.Block {
		if p.Index+1 < len(f.Blocks) {
			return f.Blocks[p.Index+1]
		}
		return nil
	}
	switch {
	case t == nil:
		if nb := next(); nb != nil {
			out = append(out, dupEdge{t: nb, kind: edgeFall})
		}
	case t.Kind == rtl.Jmp:
		if tb := f.BlockByLabel(t.Target); tb != nil {
			out = append(out, dupEdge{t: tb, kind: edgeJump})
		}
	case t.Kind == rtl.Br:
		if tb := f.BlockByLabel(t.Target); tb != nil {
			out = append(out, dupEdge{t: tb, kind: edgeBrTaken})
		}
		if nb := next(); nb != nil {
			out = append(out, dupEdge{t: nb, kind: edgeFall})
		}
	}
	return out
}

// foldable reports whether t is a test block a fold could act on: it ends
// in a conditional branch fed by a comparison of its own, has a layout
// fall-through for the untaken direction, and is not degenerate (a branch
// to its own fall-through decides nothing).
func foldable(f *cfg.Func, t *cfg.Block) bool {
	tt := t.Term()
	if tt == nil || tt.Kind != rtl.Br {
		return false
	}
	if t.Index+1 >= len(f.Blocks) || tt.Target == f.Blocks[t.Index+1].Label {
		return false
	}
	return lastCmpBefore(t) >= 0
}

// foldSweep walks the blocks once, folding every decided incoming edge of
// every test block it can. Returns the number of folds applied.
func foldSweep(f *cfg.Func, opts Options, g *budget, blacklist map[jumpKey]bool, res *Result) int {
	made := 0
	for pi := 0; pi < len(f.Blocks); pi++ {
		if g.exhausted(f) {
			break
		}
		p := f.Blocks[pi]
		for _, e := range edgesOf(f, p) {
			t := e.t
			if t == p || !foldable(f, t) {
				continue
			}
			key := jumpKey{p.Label, t.Label}
			if blacklist[key] {
				continue
			}
			if opts.MaxSeqRTLs > 0 && len(t.Insts) > opts.MaxSeqRTLs {
				continue
			}
			// A branch-taken edge parks its copy at the end of the layout,
			// which requires the last block not to fall off the end.
			if e.kind == edgeBrTaken {
				if lt := f.Blocks[len(f.Blocks)-1].Term(); lt == nil || lt.Kind == rtl.Br {
					continue
				}
			}
			decided, taken, ev := decideEdge(p, t, e.kind)
			if !decided {
				continue
			}
			meta := []obs.Candidate{{Kind: obs.KindFold, RTLs: len(t.Insts), Blocks: 1}}
			if !applyFold(f, opts, p, t, e.kind, taken, ev) {
				blacklist[key] = true
				res.Rollbacks++
				meta[0].RolledBack = true
				emitDecision(opts, f, key.block, key.target, meta, obs.OutRolledBack)
				continue
			}
			meta[0].Applied = true
			res.BranchesFolded++
			res.RTLsCopied += len(t.Insts)
			emitDecision(opts, f, key.block, key.target, meta, obs.OutApplied)
			made++
			g.spent(f)
			// The fold rewired p and shifted the layout; stale edge data
			// for p is discarded and the walk resumes on the next block
			// (later sweeps revisit whatever remains).
			break
		}
	}
	return made
}

// applyFold duplicates t as a copy whose conditional branch is replaced by
// the decided transfer, and rewires the edge from p onto the copy — all
// under the engine's reducibility guard, so a fold that would break the
// flow graph's reducibility (for example by giving a natural loop a second
// entry) is rolled back byte-identically.
func applyFold(f *cfg.Func, opts Options, p, t *cfg.Block, kind edgeKind, taken bool, ev tv.Evidence) bool {
	dest := t.Term().Target
	if !taken {
		dest = f.Blocks[t.Index+1].Label
	}
	var copyLabel rtl.Label
	ok := applyGuarded(f, opts, func(u *undoLog) {
		nb := t.Clone()
		nb.Label = f.NewLabel()
		copyLabel = nb.Label
		// The comparison (and everything before it) is kept — values and
		// the condition code are computed exactly as in the original — and
		// only the branch is folded to the decided transfer.
		nb.Insts[len(nb.Insts)-1] = rtl.Inst{Kind: rtl.Jmp, Target: dest}
		switch kind {
		case edgeJump:
			u.truncated(p, len(p.Insts))
			p.Insts = p.Insts[:len(p.Insts)-1]
			f.InsertBlocksAfter(p.Index, nb)
			u.insertedBlocks(p.Index, 1)
		case edgeFall:
			f.InsertBlocksAfter(p.Index, nb)
			u.insertedBlocks(p.Index, 1)
		case edgeBrTaken:
			at := len(f.Blocks) - 1
			f.InsertBlocksAfter(at, nb)
			u.insertedBlocks(at, 1)
			pt := p.Term()
			u.retargeted(pt, pt.Target)
			pt.Target = nb.Label
		}
	})
	if ok && opts.OnCertificate != nil {
		opts.OnCertificate(f, &tv.Certificate{
			Kind: tv.KindFold, Func: f.Name,
			Block: p.Label, Target: t.Label, Copy: copyLabel,
			Edge: kind.shape(), Taken: taken, Dest: dest, Evidence: ev,
		})
	}
	return ok
}

// lastCmpBefore returns the index of the last comparison before t's
// terminator (the one its conditional branch tests), or -1 when the block
// computes no condition of its own (the condition code then flows in from
// a predecessor — out of scope for a per-edge fold).
func lastCmpBefore(t *cfg.Block) int {
	for i := len(t.Insts) - 2; i >= 0; i-- {
		if t.Insts[i].Kind == rtl.Cmp {
			return i
		}
	}
	return -1
}

// relFact is relational knowledge carried along an edge: "x rel y held when
// control left the predecessor's test".
type relFact struct {
	x, y rtl.Operand
	rel  rtl.Rel
	ok   bool
}

// decideEdge reports whether t's conditional branch outcome is known when
// control enters t along the given edge from p, and if so which way the
// branch goes. Two routes decide it: the compared values are constants on
// the path through p (per-path constant propagation over registers and
// unaliased frame slots), or p's own terminating test compared the same
// operands and the edge direction implies the result (sign-set
// implication between the two relations). The returned evidence names the
// route and its inputs for the fold's translation-validation certificate,
// which the validator re-derives rather than trusts.
func decideEdge(p, t *cfg.Block, kind edgeKind) (bool, bool, tv.Evidence) {
	ci := lastCmpBefore(t)
	if ci < 0 {
		return false, false, tv.Evidence{}
	}
	tCmp := &t.Insts[ci]
	q := t.Term().BrRel

	env := newConstEnv()
	for i := range p.Insts {
		env.step(&p.Insts[i])
	}

	// Relational knowledge from p's own test, valid only on conditional
	// edges and only while neither compared operand can have changed
	// between the two comparisons.
	var fact relFact
	if pt := p.Term(); pt != nil && pt.Kind == rtl.Br && kind != edgeJump {
		if pi := lastCmpBefore(p); pi >= 0 {
			pc := &p.Insts[pi]
			if comparableOperand(pc.Src) && comparableOperand(pc.Src2) &&
				operandsStable(pc.Src, pc.Src2, p.Insts[pi+1:]) {
				rel := pt.BrRel
				if kind == edgeFall {
					rel = rel.Negate()
				}
				fact = relFact{x: pc.Src, y: pc.Src2, rel: rel, ok: true}
			}
		}
	}
	if fact.ok && !operandsStable(fact.x, fact.y, t.Insts[:ci]) {
		fact.ok = false
	}
	for i := 0; i < ci; i++ {
		env.step(&t.Insts[i])
	}

	// Constant route: both compared values are known on this path.
	if x, okx := env.value(tCmp.Src); okx {
		if y, oky := env.value(tCmp.Src2); oky {
			return true, q.Holds(x, y), tv.Evidence{Route: tv.RouteConst, X: x, Y: y}
		}
	}

	// Dominating-test route: p compared the same operands (directly or
	// swapped) and the known relation implies or excludes t's.
	if fact.ok {
		var qr rtl.Rel
		matched := false
		switch {
		case tCmp.Src.Equal(fact.x) && tCmp.Src2.Equal(fact.y):
			qr, matched = q, true
		case tCmp.Src.Equal(fact.y) && tCmp.Src2.Equal(fact.x):
			qr, matched = q.Swap(), true
		}
		if matched {
			ev := tv.Evidence{Route: tv.RouteRel, RelX: fact.x, RelY: fact.y, Rel: fact.rel}
			ks, qs := relSigns(fact.rel), relSigns(qr)
			switch {
			case ks&^qs == 0:
				return true, true, ev
			case ks&qs == 0:
				return true, false, ev
			}
		}
	}
	return false, false, tv.Evidence{}
}

// relSigns encodes a relation as the set of comparison outcomes
// ({<, ==, >}) that satisfy it. Implication between two relations on the
// same operand pair reduces to set algebra: known ⊆ query means the query
// must hold; known ∩ query = ∅ means it cannot.
func relSigns(r rtl.Rel) uint8 {
	const lt, eq, gt = 1, 2, 4
	switch r {
	case rtl.Eq:
		return eq
	case rtl.Ne:
		return lt | gt
	case rtl.Lt:
		return lt
	case rtl.Le:
		return lt | eq
	case rtl.Gt:
		return gt
	case rtl.Ge:
		return gt | eq
	}
	return lt | eq | gt
}

// comparableOperand reports whether relational knowledge about the operand
// can be carried across blocks: registers, immediates and frame slots
// qualify; anything reached through memory indirection does not.
func comparableOperand(o rtl.Operand) bool {
	switch o.Kind {
	case rtl.OReg, rtl.OImm, rtl.OLocal:
		return true
	}
	return false
}

// operandsStable reports whether executing insts cannot change the values
// the two operands denote: no instruction defines a register either reads,
// and no store or call can alias a frame slot either reads.
func operandsStable(x, y rtl.Operand, insts []rtl.Inst) bool {
	usesReg := func(r rtl.Reg) bool {
		return (x.Kind == rtl.OReg && x.Reg == r) || (y.Kind == rtl.OReg && y.Reg == r)
	}
	usesLocal := func(off int64, any bool) bool {
		if x.Kind == rtl.OLocal && (any || x.Val == off) {
			return true
		}
		return y.Kind == rtl.OLocal && (any || y.Val == off)
	}
	for i := range insts {
		in := &insts[i]
		if d := in.DefReg(); d != rtl.RegNone && usesReg(d) {
			return false
		}
		switch in.Kind {
		case rtl.Move, rtl.Bin, rtl.Un:
			switch in.Dst.Kind {
			case rtl.OLocal:
				if usesLocal(in.Dst.Val, false) {
					return false
				}
			case rtl.OMem, rtl.OGlobal:
				// A store through a pointer may alias any addressable
				// frame slot.
				if usesLocal(0, true) {
					return false
				}
			}
		case rtl.Call:
			// The callee may write any addressable frame slot through a
			// pointer (registers are per-frame and survive).
			if usesLocal(0, true) {
				return false
			}
		}
	}
	return true
}

// constEnv is the per-path constant environment of decideEdge: known
// constant values of registers and unaliased frame slots. It starts empty
// (everything unknown) at the predecessor's entry, which is sound — the
// analysis only ever narrows an "unknown" to a proven constant observed on
// the simulated path itself.
type constEnv struct {
	regs   map[rtl.Reg]int64
	locals map[int64]int64
}

func newConstEnv() *constEnv {
	return &constEnv{regs: map[rtl.Reg]int64{}, locals: map[int64]int64{}}
}

// value resolves an operand to a known constant.
func (e *constEnv) value(o rtl.Operand) (int64, bool) {
	switch o.Kind {
	case rtl.OImm:
		return o.Val, true
	case rtl.OReg:
		v, ok := e.regs[o.Reg]
		return v, ok
	case rtl.OLocal:
		v, ok := e.locals[o.Val]
		return v, ok
	}
	return 0, false
}

// assign records a known (or unknown) value for a destination operand;
// stores through memory conservatively clear every tracked frame slot
// (pointer writes may alias any addressable local).
func (e *constEnv) assign(o rtl.Operand, v int64, known bool) {
	switch o.Kind {
	case rtl.OReg:
		if known {
			e.regs[o.Reg] = v
		} else {
			delete(e.regs, o.Reg)
		}
	case rtl.OLocal:
		if known {
			e.locals[o.Val] = v
		} else {
			delete(e.locals, o.Val)
		}
	case rtl.OMem, rtl.OGlobal:
		clear(e.locals)
	}
}

// step simulates one instruction's effect on the environment.
func (e *constEnv) step(in *rtl.Inst) {
	switch in.Kind {
	case rtl.Move:
		v, ok := e.value(in.Src)
		e.assign(in.Dst, v, ok)
	case rtl.Bin:
		x, okx := e.value(in.Src)
		y, oky := e.value(in.Src2)
		if okx && oky {
			e.assign(in.Dst, in.BOp.Eval(x, y), true)
		} else {
			e.assign(in.Dst, 0, false)
		}
	case rtl.Un:
		x, ok := e.value(in.Src)
		if ok {
			e.assign(in.Dst, in.UOp.Eval(x), true)
		} else {
			e.assign(in.Dst, 0, false)
		}
	case rtl.Call:
		// The callee runs in its own frame (registers are per-frame) but
		// may write any addressable local or global through a pointer.
		clear(e.locals)
		if in.Dst.Kind != rtl.ONone {
			e.assign(in.Dst, 0, false)
		}
	}
	// Cmp, Br, Jmp, IJmp, Arg, Ret, Nop: no tracked effect.
}

// countDecidedEdges is the ProfitFolds metric: the number of incoming
// edges on which a foldable test block's branch outcome is already known.
func countDecidedEdges(f *cfg.Func) int {
	n := 0
	for _, p := range f.Blocks {
		for _, e := range edgesOf(f, p) {
			if e.t == p || !foldable(f, e.t) {
				continue
			}
			if d, _, _ := decideEdge(p, e.t, e.kind); d {
				n++
			}
		}
	}
	return n
}

// countBranches returns the static number of conditional branches.
func countBranches(f *cfg.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Br {
				n++
			}
		}
	}
	return n
}
