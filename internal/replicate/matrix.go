// Package replicate implements the paper's contribution: the JUMPS
// algorithm, which removes unconditional jumps by replicating the shortest
// sequence of basic blocks reachable from the jump target, and the LOOPS
// algorithm, the conventional loop-condition replication it is compared
// against.
package replicate

import (
	"math"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// inf is the "no path" distance.
const inf = math.MaxInt32

// pathMatrix holds all-pairs shortest paths over the flow graph, where the
// length of a path is the total number of RTLs in the traversed blocks
// (both endpoints included). Built once per sweep with Warshall/Floyd, as
// in step 1 of the paper's algorithm, and then used for every lookup.
type pathMatrix struct {
	f    *cfg.Func
	cost []int   // RTL count per block
	dist [][]int // dist[i][j]: min RTLs over paths i..j (inclusive); inf if none
	next [][]int // next[i][j]: successor of i on the shortest path to j
}

// newPathMatrix builds the matrix. Self-reflexive transitions are excluded,
// as are all transitions out of blocks ending in indirect jumps (their
// replication is handled only as sequence terminators, and only in the §6
// extension mode).
func newPathMatrix(f *cfg.Func, e *cfg.Edges) *pathMatrix {
	n := len(f.Blocks)
	m := &pathMatrix{
		f:    f,
		cost: make([]int, n),
		dist: make([][]int, n),
		next: make([][]int, n),
	}
	for i, b := range f.Blocks {
		m.cost[i] = len(b.Insts)
		m.dist[i] = make([]int, n)
		m.next[i] = make([]int, n)
		for j := range m.dist[i] {
			m.dist[i][j] = inf
			m.next[i][j] = -1
		}
	}
	for i, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Kind == rtl.IJmp {
			continue // paths may not traverse indirect jumps
		}
		for _, s := range e.Succs[i] {
			j := s.Index
			if j == i {
				continue // no self-reflexive transitions
			}
			if d := m.cost[i] + m.cost[j]; d < m.dist[i][j] {
				m.dist[i][j] = d
				m.next[i][j] = j
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k || m.dist[i][k] == inf {
				continue
			}
			dik := m.dist[i][k]
			for j := 0; j < n; j++ {
				if j == k || m.dist[k][j] == inf {
					continue
				}
				if d := dik + m.dist[k][j] - m.cost[k]; d < m.dist[i][j] {
					m.dist[i][j] = d
					m.next[i][j] = m.next[i][k]
				}
			}
		}
	}
	return m
}

// path returns the block-index sequence of the shortest path from i to j
// (inclusive of both), or nil if none exists. For i == j it returns the
// single-block path.
func (m *pathMatrix) path(i, j int) []int {
	if i == j {
		return []int{i}
	}
	if m.next[i][j] < 0 {
		return nil
	}
	seq := []int{i}
	for i != j {
		i = m.next[i][j]
		seq = append(seq, i)
		if len(seq) > len(m.cost)+1 {
			return nil // corrupt matrix; fail safe
		}
	}
	return seq
}
