// The all-pairs shortest-path engine behind the paper's step 1: picking,
// for each unconditional jump, the cheapest replication sequence reachable
// from its target. See dup.go for the package documentation.
package replicate

import "math"

// inf is the "no path" distance.
const inf = math.MaxInt32

// pathMatrix holds all-pairs shortest paths over the flow graph snapshot,
// where the length of a path is the total number of RTLs in the traversed
// blocks (both endpoints included). Built eagerly with Warshall/Floyd, as
// in step 1 of the paper's algorithm, and then used for every lookup of
// the sweep. This is the EngineMatrix implementation, kept as the
// differential reference for the on-demand pathOracle (see oracle.go);
// both answer every dist/path query identically.
type pathMatrix struct {
	snap *graphSnapshot
	d    [][]int // d[i][j]: min RTLs over paths i..j (inclusive); inf if none
}

// newPathMatrix builds the all-pairs matrix from the snapshot.
func newPathMatrix(snap *graphSnapshot) *pathMatrix {
	n := len(snap.cost)
	m := &pathMatrix{snap: snap, d: make([][]int, n)}
	for i := range m.d {
		m.d[i] = make([]int, n)
		for j := range m.d[i] {
			m.d[i][j] = inf
		}
	}
	for i, succs := range snap.succs {
		for _, j := range succs {
			if d := snap.cost[i] + snap.cost[j]; d < m.d[i][j] {
				m.d[i][j] = d
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k || m.d[i][k] == inf {
				continue
			}
			dik := m.d[i][k]
			for j := 0; j < n; j++ {
				if j == k || m.d[k][j] == inf {
					continue
				}
				if d := dik + m.d[k][j] - snap.cost[k]; d < m.d[i][j] {
					m.d[i][j] = d
				}
			}
		}
	}
	return m
}

func (m *pathMatrix) cost(i int) int    { return m.snap.cost[i] }
func (m *pathMatrix) dist(i, j int) int { return m.d[i][j] }

// path returns the canonical shortest block sequence from i to j
// (inclusive of both), or nil if none exists.
func (m *pathMatrix) path(i, j int) []int {
	row := m.d[i]
	return canonPath(m.snap, func(x int) int {
		if x == i {
			return m.snap.cost[i]
		}
		return row[x]
	}, i, j)
}
