package replicate

import (
	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/tv"
)

// LOOPS is the conventional loop-condition replication the paper measures
// as its middle optimization level: an unconditional jump preceding a loop
// or at the end of a loop, whose target is the loop's (pure) termination
// test, is replaced by a copy of the test with the condition adjusted so
// the copy falls through to the block positionally following the jump.
// Depending on the original layout this removes one jump at the loop entry
// or one jump per iteration. Only opts.Tracer is consulted from the
// options; the Result carries the rotation counters.
func LOOPS(f *cfg.Func, opts Options) Result {
	var res Result
	for iter := 0; iter < 100; iter++ {
		if !rotateOne(f, opts, &res) {
			break
		}
		res.Changed = true
	}
	return res
}

// pureTestBlock reports whether h consists only of side-effect-free value
// computations feeding a comparison and conditional branch — the shape of a
// loop termination test that may be duplicated freely.
func pureTestBlock(h *cfg.Block) bool {
	n := len(h.Insts)
	if n < 2 {
		return false
	}
	t := h.Term()
	if t == nil || t.Kind != rtl.Br {
		return false
	}
	for i := 0; i < n-1; i++ {
		in := &h.Insts[i]
		switch in.Kind {
		case rtl.Cmp:
		case rtl.Move, rtl.Bin, rtl.Un:
			if in.Dst.IsMem() {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// rotateOne finds one qualifying jump and replaces it; returns false when
// none remains.
func rotateOne(f *cfg.Func, opts Options, res *Result) bool {
	e := cfg.ComputeEdges(f)
	d := cfg.ComputeDominators(e)
	loops := cfg.NaturalLoops(e, d)
	d.Release()
	defer e.Release()
	for _, p := range f.Blocks {
		t := p.Term()
		if t == nil || t.Kind != rtl.Jmp || p.Index+1 >= len(f.Blocks) {
			continue
		}
		h := f.BlockByLabel(t.Target)
		if h == nil {
			continue
		}
		// The target must be the (pure) termination test of a natural loop:
		// either its header (while-shape) or its bottom test (for-shape).
		l := cfg.InnermostLoopContaining(loops, h.Index)
		if l == nil || !pureTestBlock(h) {
			continue
		}
		// The test block must have exactly one in-loop and one exit
		// successor.
		succs := e.Succs[h.Index]
		if len(succs) != 2 {
			continue
		}
		var inLoop, exit *cfg.Block
		for _, s := range succs {
			if l.Contains(s.Index) {
				inLoop = s
			} else {
				exit = s
			}
		}
		if inLoop == nil || exit == nil {
			continue
		}
		// LOOPS only handles the conventional shapes: the jump precedes the
		// loop (jump to the test at the bottom) or is the loop's latch.
		next := f.Blocks[p.Index+1]
		hterm := h.Term()
		var branchTo *cfg.Block
		switch next {
		case inLoop:
			branchTo = exit // copy falls into the body, branches out on exit
		case exit:
			branchTo = inLoop // copy falls out of the loop, branches back in
		default:
			continue
		}
		// Build the replicated, adjusted test.
		rep := make([]rtl.Inst, 0, len(h.Insts))
		for i := 0; i < len(h.Insts)-1; i++ {
			rep = append(rep, h.Insts[i].Clone())
		}
		br := hterm.Clone()
		// The original branch transfers to hterm.Target and falls through
		// to h's positional successor. Express "go to branchTo" as the
		// taken direction.
		if hterm.Target == branchTo.Label {
			// Same direction: keep the relation.
		} else {
			br.BrRel = br.BrRel.Negate()
			br.Target = branchTo.Label
		}
		rep = append(rep, br)
		cand := []obs.Candidate{{Kind: obs.KindRotation, RTLs: len(rep), Blocks: 1}}
		// The splice below reuses p.Insts' backing array, invalidating t;
		// capture the jump's identity for the decision log first.
		jumpBlock, jumpTarget := p.Label, t.Target
		snapshot := f.Clone()
		p.Insts = append(p.Insts[:len(p.Insts)-1], rep...)
		if !cfg.IsReducible(f) {
			f.Restore(snapshot)
			res.Rollbacks++
			cand[0].RolledBack = true
			emitDecision(opts, f, jumpBlock, jumpTarget, cand, obs.OutRolledBack)
			return rotateNextAfterRollback(f)
		}
		res.Replications++
		res.RTLsCopied += len(rep)
		if opts.OnCertificate != nil {
			opts.OnCertificate(f, &tv.Certificate{
				Kind: tv.KindRotation, Func: f.Name,
				Block: jumpBlock, Target: jumpTarget, CopyLen: len(rep),
			})
		}
		cand[0].Applied = true
		emitDecision(opts, f, jumpBlock, jumpTarget, cand, obs.OutApplied)
		return true
	}
	return false
}

// rotateNextAfterRollback exists to keep rotateOne's control flow simple: a
// rollback means this particular jump is unprofitable; scanning resumes on
// the next driver iteration, which will skip it because the shape check
// fails identically, so simply report no change.
func rotateNextAfterRollback(*cfg.Func) bool { return false }
