package replicate

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/rtl"
)

func v(i int) rtl.Reg { return rtl.VRegBase + rtl.Reg(i) }

func countJumpsIn(f *cfg.Func) int { return countJumps(f) }

// runnableSanity checks structural invariants after replication: every
// branch target resolves, the graph stays reducible, and exactly the
// expected entry block leads.
func runnableSanity(t *testing.T, f *cfg.Func) {
	t.Helper()
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			in := &b.Insts[ii]
			switch in.Kind {
			case rtl.Br, rtl.Jmp:
				if f.BlockByLabel(in.Target) == nil {
					t.Fatalf("dangling target %v in:\n%s", in.Target, f)
				}
			case rtl.IJmp:
				for _, l := range in.Table {
					if f.BlockByLabel(l) == nil {
						t.Fatalf("dangling table target %v in:\n%s", l, f)
					}
				}
			}
		}
	}
	if !cfg.IsReducible(f) {
		t.Fatalf("irreducible graph after replication:\n%s", f)
	}
}

// TestPathMatrixShortest verifies the Floyd–Warshall distances use RTL
// counts of the traversed blocks.
func TestPathMatrixShortest(t *testing.T) {
	// b0 -> b1 (3 RTLs) -> b3 and b0 -> b2 (1 RTL) -> b3.
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(v(0)), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(1)},
		{Kind: rtl.Move, Dst: rtl.R(v(2)), Src: rtl.Imm(2)},
		{Kind: rtl.Jmp, Target: b3.Label},
	}
	b2.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(3)}}
	b3.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	e := cfg.ComputeEdges(f)
	for _, engine := range []PathEngine{EngineMatrix, EngineOracle} {
		m := newPathFinder(f, e, engine)
		// Shortest b0..b3 goes through b2: 2 + 1 + 1 RTLs.
		if d := m.dist(0, 3); d != 4 {
			t.Errorf("%v: dist(0, 3) = %d, want 4", engine, d)
		}
		p := m.path(0, 3)
		if len(p) != 3 || p[1] != 2 {
			t.Errorf("%v: path = %v, want [0 2 3]", engine, p)
		}
		// Self distance is not defined (non-reflexive; the graph is acyclic
		// so no cycle through b0 exists either).
		if m.dist(0, 0) != inf {
			t.Errorf("%v: self-reflexive transition recorded", engine)
		}
	}
}

func TestPathMatrixExcludesIndirect(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.IJmp, Src: rtl.R(v(0)), Lo: 0, Table: []rtl.Label{b1.Label, b2.Label}}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	b2.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	e := cfg.ComputeEdges(f)
	for _, engine := range []PathEngine{EngineMatrix, EngineOracle} {
		m := newPathFinder(f, e, engine)
		if m.dist(0, 1) != inf || m.dist(0, 2) != inf {
			t.Errorf("%v: paths must not traverse indirect jumps", engine)
		}
	}
}

// TestTable2Return: a jump to a return-terminated block is replaced by a
// copy of that block (favoring returns), as in the paper's Table 2.
func TestTable2Return(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock() // then-part, ends with jump over else
	b1 := f.NewBlock() // else-part
	b2 := f.NewBlock() // join + return
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(2)}}
	b2.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(v(0))}}
	res := JUMPS(f, Options{})
	if !res.Changed {
		t.Fatalf("expected replication:\n%s", f)
	}
	// The Result must carry the replication counters: one jump replaced by
	// a copy of the 1-RTL return block, nothing rolled back or deleted.
	if res.Replications != 1 || res.RTLsCopied != 1 {
		t.Errorf("counters = %+v, want 1 replication of 1 RTL", res)
	}
	if res.Rollbacks != 0 || res.JumpsDeleted != 0 {
		t.Errorf("unexpected rollback/deletion counters: %+v", res)
	}
	runnableSanity(t, f)
	if countJumpsIn(f) != 0 {
		t.Errorf("jump not eliminated:\n%s", f)
	}
	// Both paths should now end in their own return.
	rets := 0
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == rtl.Ret {
			rets++
		}
	}
	if rets < 2 {
		t.Errorf("paths not separated (%d returns):\n%s", rets, f)
	}
}

// buildWhileLoop returns the canonical while shape with its latch jump:
// entry, header (test), body... latch jmp header, exit(ret).
func buildWhileLoop() (*cfg.Func, *cfg.Block, *cfg.Block) {
	f := cfg.NewFunc("t", 0)
	entry := f.NewBlock()
	header := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()
	i := v(0)
	entry.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)}}
	header.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(10)},
		{Kind: rtl.Br, BrRel: rtl.Ge, Target: exit.Label},
	}
	body.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: header.Label},
	}
	exit.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(i)}}
	return f, header, body
}

// TestRotationEmergesFromJUMPS: the latch jump of a while loop is replaced
// by a reversed copy of the test — loop rotation as a special case.
func TestRotationEmergesFromJUMPS(t *testing.T) {
	f, _, body := buildWhileLoop()
	if !JUMPS(f, Options{}).Changed {
		t.Fatalf("expected replication:\n%s", f)
	}
	runnableSanity(t, f)
	if countJumpsIn(f) != 0 {
		t.Errorf("latch jump survived:\n%s", f)
	}
	// The body's copy of the test must branch backwards with the reversed
	// relation (continue while i < 10).
	next := f.Blocks[body.Index+1]
	tm := next.Term()
	if tm == nil || tm.Kind != rtl.Br || tm.BrRel != rtl.Lt {
		t.Errorf("expected reversed branch after body:\n%s", f)
	}
}

// TestLOOPSRotation: the restricted LOOPS pass does the same on the
// conventional shapes.
func TestLOOPSRotation(t *testing.T) {
	f, _, _ := buildWhileLoop()
	res := LOOPS(f, Options{})
	if !res.Changed {
		t.Fatalf("expected rotation:\n%s", f)
	}
	// One rotation copying the 2-RTL test (Cmp + Br), no rollbacks.
	if res.Replications != 1 || res.RTLsCopied != 2 || res.Rollbacks != 0 {
		t.Errorf("counters = %+v, want 1 rotation of 2 RTLs", res)
	}
	runnableSanity(t, f)
	if countJumpsIn(f) != 0 {
		t.Errorf("LOOPS left the latch jump:\n%s", f)
	}
}

// TestLOOPSKeepsImpureTests: a loop whose test contains a call (the
// getchar idiom) is out of scope for conventional rotation.
func TestLOOPSKeepsImpureTests(t *testing.T) {
	f, header, _ := buildWhileLoop()
	header.Insts = append([]rtl.Inst{{Kind: rtl.Call, Sym: "getchar", Dst: rtl.R(v(0))}}, header.Insts...)
	if LOOPS(f, Options{}).Changed {
		t.Errorf("LOOPS must skip impure tests:\n%s", f)
	}
}

// TestFigure1LoopReplication reproduces the paper's Figure 1: a jump into
// a region that reaches a natural loop; without copying the whole loop it
// would gain a second entry (irreducible), so the bare candidate is rolled
// back and the loop-completed one applied.
func TestFigure1LoopReplication(t *testing.T) {
	// Layout: b0(entry: br b2) b1(jmp b4) b2..b3 b4(pre) b5(header)
	// b6(latch: br b5) b7(ret). The jump b1->b4 reaches the loop {5,6}.
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock() // loop header
	b6 := f.NewBlock() // latch, conditional back edge
	b7 := f.NewBlock()
	i := v(0)
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b4.Label},
	}
	b2.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(2)}}
	b4.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)}}
	b5.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)},
	}
	b6.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(10)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b5.Label},
	}
	b7.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(i)}}
	res := JUMPS(f, Options{})
	if !res.Changed {
		t.Fatalf("expected replication:\n%s", f)
	}
	// The applied sequence pulls the whole natural loop in; the counters
	// must record the copy volume.
	if res.Replications < 1 || res.RTLsCopied == 0 {
		t.Errorf("applied replication not counted: %+v", res)
	}
	runnableSanity(t, f)
	// The original loop must have exactly one header still: count blocks
	// containing the add; the loop body should have been copied (2 copies).
	adds := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Bin {
				adds++
			}
		}
	}
	if adds < 2 {
		t.Errorf("loop body not replicated (step 3):\n%s", f)
	}
}

// TestFigure1NoCompletionLeavesJump: with step 3 disabled, the same shape
// must either roll back (jump survives) or still be reducible — never
// irreducible.
func TestFigure1NoCompletionStaysReducible(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b4 := f.NewBlock()
	b5 := f.NewBlock()
	b6 := f.NewBlock()
	b7 := f.NewBlock()
	i := v(0)
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b4.Label}}
	b2.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(2)}}
	b4.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)}}
	b5.Insts = []rtl.Inst{{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)}}
	b6.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(10)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b5.Label},
	}
	b7.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(i)}}
	JUMPS(f, Options{NoLoopCompletion: true})
	runnableSanity(t, f)
}

// TestMaxSeqRTLsCap: a tight cap rejects candidates and leaves the jump.
func TestMaxSeqRTLsCap(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(2)}}
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(3)},
		{Kind: rtl.Move, Dst: rtl.R(v(2)), Src: rtl.Imm(4)},
		{Kind: rtl.Move, Dst: rtl.R(v(3)), Src: rtl.Imm(5)},
		{Kind: rtl.Ret, Src: rtl.R(v(0))},
	}
	if JUMPS(f, Options{MaxSeqRTLs: 2}).Changed {
		t.Errorf("cap of 2 should reject the 4-RTL sequence:\n%s", f)
	}
	if !JUMPS(f, Options{MaxSeqRTLs: 10}).Changed {
		t.Error("cap of 10 should allow it")
	}
}

// TestIndirectTermination: the §6 extension lets a sequence end at an
// indirect jump; without it the jump survives.
func TestIndirectTermination(t *testing.T) {
	build := func() *cfg.Func {
		f := cfg.NewFunc("t", 0)
		b0 := f.NewBlock()
		b1 := f.NewBlock()
		b2 := f.NewBlock() // ends in IJmp; no return anywhere reachable
		b3 := f.NewBlock()
		b4 := f.NewBlock()
		b0.Insts = []rtl.Inst{
			{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(0)},
			{Kind: rtl.Jmp, Target: b2.Label},
		}
		b1.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)}}
		b2.Insts = []rtl.Inst{
			{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(7)},
			{Kind: rtl.IJmp, Src: rtl.R(v(0)), Lo: 0, Table: []rtl.Label{b3.Label, b4.Label}},
		}
		b3.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b3.Label}} // infinite
		b4.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b4.Label}} // infinite
		return f
	}
	f := build()
	JUMPS(f, Options{})
	// b0's jump to the IJmp block cannot be replaced without the
	// extension (no return-terminated path; fall-through path would have
	// to traverse the indirect jump).
	if b := f.Blocks[0]; b.Term() == nil || b.Term().Kind != rtl.Jmp {
		t.Errorf("jump should survive without AllowIndirect:\n%s", f)
	}
	f2 := build()
	JUMPS(f2, Options{AllowIndirect: true})
	if b := f2.Blocks[0]; b.Term() != nil && b.Term().Kind == rtl.Jmp {
		t.Errorf("jump should be replaced with AllowIndirect:\n%s", f2)
	}
	runnableSanity(t, f2)
}

// TestInfiniteLoopSkipped: a jump into an infinite loop offers no
// replacement (no return, no reconnection) and must be left alone.
func TestInfiniteLoopSkipped(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b1.Label},
	}
	if JUMPS(f, Options{}).Changed {
		// Deleting a jump-to-next is permitted; anything beyond must not
		// corrupt the graph.
		runnableSanity(t, f)
	}
	// The self-loop must still exist.
	found := false
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == rtl.Jmp && tm.Target == b.Label {
			found = true
		}
	}
	if !found {
		t.Errorf("infinite loop destroyed:\n%s", f)
	}
}

// TestJumpToNextDeleted: the trivial case is handled by deletion, not
// replication.
func TestJumpToNextDeleted(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	res := JUMPS(f, Options{})
	if !res.Changed {
		t.Fatal("expected the jump to be deleted")
	}
	if res.JumpsDeleted != 1 || res.Replications != 0 || res.RTLsCopied != 0 {
		t.Errorf("deletion must be counted as JumpsDeleted, not a replication: %+v", res)
	}
	if f.NumRTLs() != 1 {
		t.Errorf("expected only the return to remain:\n%s", f)
	}
}

// TestHeuristics: favoring returns vs loops pick different sequences; both
// remain correct (structural sanity) and both eliminate the jump.
func TestHeuristics(t *testing.T) {
	for _, h := range []Heuristic{HeurShortest, HeurReturns, HeurLoops} {
		f, _, _ := buildWhileLoop()
		JUMPS(f, Options{Heuristic: h})
		runnableSanity(t, f)
		if countJumpsIn(f) != 0 {
			t.Errorf("heuristic %d left jumps:\n%s", h, f)
		}
	}
}

// TestGrowthCap: MaxFuncRTLs stops replication.
func TestGrowthCap(t *testing.T) {
	f, _, _ := buildWhileLoop()
	before := f.NumRTLs()
	JUMPS(f, Options{MaxFuncRTLs: 1}) // already over budget: nothing happens
	if f.NumRTLs() != before {
		t.Error("growth cap ignored")
	}
}

// TestStep5Redirect reproduces Figure 2's concern: replication initiated
// inside a loop redirects the conditional branches of uncopied loop blocks
// to the copies, and the result stays reducible.
func TestStep5Redirect(t *testing.T) {
	// Unstructured loop: b1 <- b3 jump; b2 branches conditionally to b1.
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()
	i := v(0)
	b0.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)}}
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(100)},
		{Kind: rtl.Br, BrRel: rtl.Ge, Target: b4.Label},
	}
	b3.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b1.Label}}
	b4.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(i)}}
	JUMPS(f, Options{})
	runnableSanity(t, f)
	if countJumpsIn(f) != 0 {
		t.Errorf("back-edge jump survived:\n%s", f)
	}
}

// TestNoCandidateLeavesFunctionUntouched: a jump into an isolated infinite
// loop (no return path, no reconnection path) has no candidates; after
// attempting it the function must be byte-identical.
func TestNoCandidateLeavesFunctionUntouched(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Insts = []rtl.Inst{{Kind: rtl.Jmp, Target: b2.Label}}
	b1.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.None()}}
	b2.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b2.Label},
	}
	before := f.String()
	if JUMPS(f, Options{}).Changed {
		t.Error("nothing should be replaceable")
	}
	if f.String() != before {
		t.Errorf("function mutated:\nbefore:\n%s\nafter:\n%s", before, f.String())
	}
}

// TestRollbackCountedAndLogged reproduces the paper's Figure-1 dynamics in
// miniature: the bare favoring-returns candidate copies the loop header but
// not the latch, creating a second loop entry; step 6 rolls it back and the
// loop-completed candidate applies. Both sides must show up in the Result
// counters and in the decision log, with the rolled-back candidate marked.
func TestRollbackCountedAndLogged(t *testing.T) {
	f := cfg.NewFunc("t", 0)
	b0 := f.NewBlock()
	b1 := f.NewBlock() // jmp b3 (the jump under test)
	b2 := f.NewBlock()
	b3 := f.NewBlock() // preheader
	b4 := f.NewBlock() // loop header, exits to b6
	b5 := f.NewBlock() // latch, back edge to b4
	b6 := f.NewBlock() // return
	i := v(0)
	b0.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(0)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b2.Label},
	}
	b1.Insts = []rtl.Inst{
		{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(1)},
		{Kind: rtl.Jmp, Target: b3.Label},
	}
	b2.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(v(1)), Src: rtl.Imm(2)}}
	b3.Insts = []rtl.Inst{{Kind: rtl.Move, Dst: rtl.R(i), Src: rtl.Imm(0)}}
	b4.Insts = []rtl.Inst{
		{Kind: rtl.Bin, BOp: rtl.Add, Dst: rtl.R(i), Src: rtl.R(i), Src2: rtl.Imm(1)},
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(10)},
		{Kind: rtl.Br, BrRel: rtl.Ge, Target: b6.Label},
	}
	b5.Insts = []rtl.Inst{
		{Kind: rtl.Cmp, Src: rtl.R(i), Src2: rtl.Imm(5)},
		{Kind: rtl.Br, BrRel: rtl.Lt, Target: b4.Label},
	}
	b6.Insts = []rtl.Inst{{Kind: rtl.Ret, Src: rtl.R(i)}}

	col := &obs.Collector{}
	res := JUMPS(f, Options{Tracer: col})
	runnableSanity(t, f)
	if !res.Changed || res.Replications != 1 || res.Rollbacks != 1 {
		t.Fatalf("want 1 replication after 1 rollback, got %+v:\n%s", res, f)
	}
	if res.RTLsCopied == 0 {
		t.Errorf("RTLs copied not counted: %+v", res)
	}

	var decisions []*obs.Event
	for _, ev := range col.Events() {
		if ev.Type == obs.EvDecision {
			decisions = append(decisions, ev)
		}
	}
	if len(decisions) != 1 {
		t.Fatalf("want 1 decision event, got %d", len(decisions))
	}
	d := decisions[0]
	if d.Outcome != obs.OutApplied || len(d.Candidates) < 2 {
		t.Fatalf("decision = %+v, want applied with >= 2 candidates", d)
	}
	first, second := d.Candidates[0], d.Candidates[1]
	if !first.RolledBack || first.Applied {
		t.Errorf("first candidate should be marked rolled back: %+v", first)
	}
	if !second.Applied || !second.LoopCompleted {
		t.Errorf("second candidate should be the applied loop-completed one: %+v", second)
	}
	if first.RTLs == 0 || second.RTLs <= first.RTLs {
		t.Errorf("candidate costs missing or unordered: %+v vs %+v", first, second)
	}
}

// TestDecisionLogBothKinds: a rotated while loop offers both a
// favoring-returns and a favoring-loops candidate; the decision event must
// record both with their costs.
func TestDecisionLogBothKinds(t *testing.T) {
	f, _, _ := buildWhileLoop()
	col := &obs.Collector{}
	JUMPS(f, Options{Tracer: col})
	kinds := map[string]bool{}
	for _, ev := range col.Events() {
		if ev.Type != obs.EvDecision {
			continue
		}
		for _, c := range ev.Candidates {
			if c.RTLs <= 0 {
				t.Errorf("candidate without cost: %+v", c)
			}
			kinds[c.Kind] = true
		}
	}
	if !kinds[obs.KindReturns] || !kinds[obs.KindLoops] {
		t.Errorf("want both candidate kinds in the log, got %v", kinds)
	}
}
