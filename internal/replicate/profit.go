package replicate

import "repro/internal/cfg"

// Profit is the pluggable profitability model of the generic duplication
// engine: it names the static metric a duplication pass is driving down.
// The engine's budget re-evaluates the metric after every applied
// duplication and cuts the pass off (§5.2 conservatism) once maxFutile
// consecutive applications stop lowering it.
type Profit interface {
	// Name identifies the model in traces and tests.
	Name() string
	// Metric returns the model's current static count for f; lower is
	// better, and a pass that stops lowering it is cut off.
	Metric(f *cfg.Func) int
}

// ProfitJumps is the paper's objective: the static count of direct
// unconditional jumps. JUMPS replication uses it — a replication only
// counts as progress while the function's jump count keeps falling.
var ProfitJumps Profit = profitJumps{}

type profitJumps struct{}

func (profitJumps) Name() string { return "jumps" }

func (profitJumps) Metric(f *cfg.Func) int { return countJumps(f) }

// ProfitFolds is the DUPS objective: the number of decided predecessor
// edges — incoming edges on which a conditional branch's outcome is already
// known (constant operands or a dominating test on the same comparison).
// Each applied fold consumes its decided edge, so the metric normally falls
// monotonically; cascaded folds through freshly duplicated blocks may
// create new decided edges, which the budget's futility cutoff and the RTL
// ceiling keep bounded.
var ProfitFolds Profit = profitFolds{}

type profitFolds struct{}

func (profitFolds) Name() string { return "folds" }

func (profitFolds) Metric(f *cfg.Func) int { return countDecidedEdges(f) }
