package replicate

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// PathEngine selects the implementation of step 1 of the JUMPS algorithm:
// the shortest-RTL-path computation over the flow graph that every
// candidate replication sequence is read from.
type PathEngine uint8

// The available path engines.
const (
	// EngineOracle is the default: an on-demand single-source engine that
	// runs Dijkstra lazily from each queried jump target and memoizes the
	// result for the lifetime of the sweep. Only jump targets are ever
	// queried, so the all-pairs work of the paper's step 1 is skipped; on
	// large functions this is the difference between O(J·E·log V) and
	// O(V³) per sweep.
	EngineOracle PathEngine = iota
	// EngineMatrix is the paper's formulation: the all-pairs Warshall/Floyd
	// matrix built eagerly once per sweep. Retained as the differential
	// reference — both engines answer every query identically (asserted by
	// the engine-equivalence tests), so the matrix mode exists for
	// cross-checking and benchmarking, not for production use.
	EngineMatrix
)

// String returns the wire name of the engine ("oracle" or "matrix").
func (e PathEngine) String() string {
	switch e {
	case EngineOracle:
		return "oracle"
	case EngineMatrix:
		return "matrix"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// ParseEngine converts a wire/CLI name to a PathEngine ("" = oracle).
func ParseEngine(s string) (PathEngine, error) {
	switch s {
	case "", "oracle":
		return EngineOracle, nil
	case "matrix":
		return EngineMatrix, nil
	}
	return EngineOracle, fmt.Errorf("replicate: unknown path engine %q (want oracle or matrix)", s)
}

// pathFinder abstracts step 1 for the sweep: per-block RTL costs, pairwise
// shortest distances (RTL count over the path, both endpoints included),
// and canonical shortest paths. Both implementations answer from a
// snapshot of the flow graph taken at construction (sweep start) — the
// sweep deliberately keeps using that snapshot while replications mutate
// the function, exactly as the paper's once-per-sweep matrix does; the
// next sweep constructs a fresh finder, which is the invalidation point.
type pathFinder interface {
	// cost returns the snapshot RTL count of block i.
	cost(i int) int
	// dist returns the minimal RTL count over paths i..j (both endpoints
	// included), or inf if no path exists. i == j is not a valid query
	// (callers special-case the single-block path).
	dist(i, j int) int
	// path returns the canonical shortest block-index sequence from i to j
	// (inclusive), the single-block path for i == j, or nil if none exists.
	path(i, j int) []int
}

// newPathFinder builds the configured engine over the current flow graph.
func newPathFinder(f *cfg.Func, e *cfg.Edges, engine PathEngine) pathFinder {
	snap := snapshotGraph(f, e)
	if engine == EngineMatrix {
		return newPathMatrix(snap)
	}
	return newPathOracle(snap)
}

// graphSnapshot captures the flow graph's costs and transitions at sweep
// start: per-block RTL counts plus successor/predecessor adjacency with the
// paper's step-1 exclusions applied (no self-reflexive transitions, no
// transitions out of blocks ending in indirect jumps — a jump table cannot
// be spliced into straight-line code). Both engines and the shared path
// reconstruction read only this snapshot, which is what makes their
// answers identical while the sweep mutates the underlying function.
type graphSnapshot struct {
	cost  []int
	succs [][]int
	preds [][]int
}

// snapshotGraph captures f's blocks and edges. The adjacency rows are
// views into two shared backing arrays (one per direction), sized by a
// counting pass, so a snapshot costs a fixed handful of allocations rather
// than one per block.
func snapshotGraph(f *cfg.Func, e *cfg.Edges) *graphSnapshot {
	n := len(f.Blocks)
	s := &graphSnapshot{
		cost:  make([]int, n),
		succs: make([][]int, n),
		preds: make([][]int, n),
	}
	keep := func(i, j int) bool {
		if j == i {
			return false // no self-reflexive transitions
		}
		if t := f.Blocks[i].Term(); t != nil && t.Kind == rtl.IJmp {
			return false // paths may not traverse indirect jumps
		}
		return true
	}
	outDeg := make([]int, n)
	inDeg := make([]int, n)
	total := 0
	for i, b := range f.Blocks {
		s.cost[i] = len(b.Insts)
		for _, sb := range e.Succs[i] {
			if keep(i, sb.Index) {
				outDeg[i]++
				inDeg[sb.Index]++
				total++
			}
		}
	}
	sBack := make([]int, total)
	pBack := make([]int, total)
	so, po := 0, 0
	for i := 0; i < n; i++ {
		s.succs[i] = sBack[so : so : so+outDeg[i]]
		so += outDeg[i]
		s.preds[i] = pBack[po : po : po+inDeg[i]]
		po += inDeg[i]
	}
	for i := range f.Blocks {
		for _, sb := range e.Succs[i] {
			if j := sb.Index; keep(i, j) {
				s.succs[i] = append(s.succs[i], j)
				s.preds[j] = append(s.preds[j], i)
			}
		}
	}
	return s
}

// canonPath reconstructs the canonical shortest path from src to dst out
// of single-source distances alone, so every engine that computes correct
// distances yields byte-identical candidate sequences. distTo(x) must
// return the minimal RTL count src..x (both endpoints included), inf when
// unreachable, and cost[src] for x == src (the trivial path).
//
// The canonical choice: walking backwards from dst, always take the
// lowest-indexed predecessor that lies on some shortest path and has not
// been visited yet (the visit guard makes zero-cost cycles, which tie with
// their own repetitions, terminate). Returns nil when reconstruction fails
// (unreachable dst, or a pathological all-visited frontier).
func canonPath(snap *graphSnapshot, distTo func(int) int, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if distTo(dst) >= inf {
		return nil
	}
	n := len(snap.cost)
	seq := make([]int, 0, 8)
	seq = append(seq, dst)
	inSeq := make(map[int]bool, 8)
	inSeq[dst] = true
	x := dst
	for x != src {
		if len(seq) > n {
			return nil // fail safe; cannot happen with consistent distances
		}
		dx := distTo(x)
		best := -1
		for _, p := range snap.preds[x] {
			if inSeq[p] || (best >= 0 && p >= best) {
				continue
			}
			if dp := distTo(p); dp < inf && dp+snap.cost[x] == dx {
				best = p
			}
		}
		if best < 0 {
			return nil
		}
		seq = append(seq, best)
		inSeq[best] = true
		x = best
	}
	// Built back-to-front; reverse in place.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}
