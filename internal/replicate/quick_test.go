package replicate

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/rtl"
	"repro/internal/vm"
)

// runFunc executes a standalone function as a program's main and returns
// the function's return value.
func runFunc(f *cfg.Func) (int64, error) {
	prog := &cfg.Program{Funcs: []*cfg.Func{f}}
	res, err := vm.Run(prog, vm.Config{MaxSteps: 1_000_000})
	if err != nil {
		return 0, err
	}
	return res.ExitCode, nil
}

// randomDAGFunc builds a random but well-formed acyclic flow graph over a
// handful of virtual registers and frame slots. Acyclicity guarantees
// termination, so the function's return value is a complete semantic
// fingerprint. (Loops are covered by the mini-C fuzz tests; this drills
// the pure CFG surgery on shapes the front end would never emit.)
func randomDAGFunc(r *rand.Rand) *cfg.Func {
	f := cfg.NewFunc("main", 0)
	f.NLocals = 8
	n := 3 + r.Intn(10)
	blocks := make([]*cfg.Block, n)
	for i := 0; i < n; i++ {
		blocks[i] = f.NewBlock()
	}
	reg := func() rtl.Operand { return rtl.R(rtl.VRegBase + rtl.Reg(r.Intn(5))) }
	operand := func() rtl.Operand {
		switch r.Intn(4) {
		case 0:
			return rtl.Imm(int64(r.Intn(64) - 32))
		case 1:
			return rtl.Local(int64(r.Intn(8)))
		default:
			return reg()
		}
	}
	for i, b := range blocks {
		// Straight-line body.
		for k := 0; k < 1+r.Intn(4); k++ {
			switch r.Intn(4) {
			case 0:
				b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Move, Dst: reg(), Src: operand()})
			case 1:
				b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Move, Dst: rtl.Local(int64(r.Intn(8))), Src: reg()})
			default:
				ops := []rtl.BinOp{rtl.Add, rtl.Sub, rtl.Mul, rtl.And, rtl.Or, rtl.Xor}
				b.Insts = append(b.Insts, rtl.Inst{
					Kind: rtl.Bin, BOp: ops[r.Intn(len(ops))],
					Dst: reg(), Src: reg(), Src2: operand(),
				})
			}
		}
		// Terminator: forward-only edges keep the graph acyclic.
		isLast := i == n-1
		choice := r.Intn(4)
		if isLast {
			choice = 3
		}
		switch choice {
		case 0: // fall through
		case 1:
			tgt := blocks[i+1+r.Intn(n-i-1)]
			b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Jmp, Target: tgt.Label})
		case 2:
			tgt := blocks[i+1+r.Intn(n-i-1)]
			rels := []rtl.Rel{rtl.Eq, rtl.Ne, rtl.Lt, rtl.Le, rtl.Gt, rtl.Ge}
			b.Insts = append(b.Insts,
				rtl.Inst{Kind: rtl.Cmp, Src: reg(), Src2: operand()},
				rtl.Inst{Kind: rtl.Br, BrRel: rels[r.Intn(len(rels))], Target: tgt.Label})
		default:
			b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Ret, Src: reg()})
		}
	}
	return f
}

// fingerprint executes the function and returns its result. The graphs are
// acyclic so execution always terminates quickly.
func fingerprint(t *testing.T, f *cfg.Func) int64 {
	t.Helper()
	res, err := runFunc(f)
	if err != nil {
		t.Fatalf("execution failed: %v\n%s", err, f)
	}
	return res
}

// TestQuickJUMPSPreservesSemantics: on hundreds of random flow graphs, the
// JUMPS transformation must preserve the computed value, keep the graph
// reducible, and leave no dangling labels.
func TestQuickJUMPSPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		f := randomDAGFunc(r)
		if !cfg.IsReducible(f) {
			t.Fatalf("trial %d: DAG claimed irreducible:\n%s", trial, f)
		}
		before := fingerprint(t, f)
		opts := Options{}
		switch trial % 4 {
		case 1:
			opts.Heuristic = HeurReturns
		case 2:
			opts.Heuristic = HeurLoops
		case 3:
			opts.MaxSeqRTLs = 3
		}
		JUMPS(f, opts)
		runnableSanity(t, f)
		after := fingerprint(t, f)
		if before != after {
			t.Fatalf("trial %d: value changed %d -> %d\n%s", trial, before, after, f)
		}
	}
}

// TestQuickLOOPSPreservesSemantics does the same for the LOOPS baseline.
func TestQuickLOOPSPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		f := randomDAGFunc(r)
		before := fingerprint(t, f)
		LOOPS(f, Options{})
		runnableSanity(t, f)
		if after := fingerprint(t, f); after != before {
			t.Fatalf("trial %d: value changed %d -> %d\n%s", trial, before, after, f)
		}
	}
}

// TestQuickJumpsReduced: on random DAGs, JUMPS leaves no direct jumps at
// all — every jump in a DAG has a favoring-returns replacement.
func TestQuickJumpsReduced(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		f := randomDAGFunc(r)
		JUMPS(f, Options{})
		cfg.RemoveUnreachable(f)
		if n := countJumps(f); n != 0 {
			t.Fatalf("trial %d: %d jumps left:\n%s", trial, n, f)
		}
	}
}
