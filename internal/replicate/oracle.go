package replicate

// pathOracle is the EngineOracle implementation of step 1: instead of the
// paper's eager all-pairs matrix it answers shortest-path queries on
// demand, running a single-source Dijkstra (with RTL-count node weights)
// from each queried source the first time that source is seen and
// memoizing the distance row for the lifetime of the sweep.
//
// The JUMPS sweep only ever queries paths *from jump targets* — one source
// per unconditional jump, typically a handful per function — so on large
// functions almost all of the O(V³) Floyd–Warshall work is wasted; the
// oracle does O(E·log V) per distinct target instead. Like the matrix, the
// oracle answers from the graphSnapshot taken at sweep start: replications
// that mutate the function mid-sweep do not perturb memoized rows (the
// stale-by-design semantics the paper prescribes for the matrix), and the
// next sweep's fresh snapshot is the invalidation point. Memoized rows
// from an earlier sweep are never carried over, so only sources that are
// actually re-queried after a CFG mutation get recomputed — the
// incremental win over rebuilding a full matrix every sweep.
type pathOracle struct {
	snap *graphSnapshot
	rows map[int][]int // memoized single-source distances, keyed by source
}

// newPathOracle builds an empty oracle over the snapshot; all work is
// deferred to the first query per source.
func newPathOracle(snap *graphSnapshot) *pathOracle {
	return &pathOracle{snap: snap, rows: make(map[int][]int)}
}

func (o *pathOracle) cost(i int) int { return o.snap.cost[i] }

func (o *pathOracle) dist(i, j int) int { return o.row(i)[j] }

// path returns the canonical shortest block sequence from i to j
// (inclusive of both), or nil if none exists.
func (o *pathOracle) path(i, j int) []int {
	row := o.row(i)
	return canonPath(o.snap, func(x int) int {
		if x == i {
			return o.snap.cost[i]
		}
		return row[x]
	}, i, j)
}

// row returns the memoized single-source distance row for src, computing
// it with Dijkstra on first use. row[src] is the cost of the cyclic path
// src..src when one exists (matching the matrix diagonal); the trivial
// single-block "path" is special-cased by callers, never read from the
// row.
func (o *pathOracle) row(src int) []int {
	if d, ok := o.rows[src]; ok {
		return d
	}
	d := o.dijkstra(src)
	o.rows[src] = d
	return d
}

// dijkstra computes shortest RTL-count distances from src over the
// snapshot. The metric matches the matrix exactly: a path's length is the
// sum of the RTL counts of every block on it, both endpoints included, so
// relaxation along edge u→v is d(v) = d(u) + cost(v) with d(src) seeded to
// cost(src). Distances to src itself are then re-derived through its
// in-edges (the cheapest cycle through src), reproducing the matrix
// diagonal; unreachable blocks stay at inf.
func (o *pathOracle) dijkstra(src int) []int {
	snap := o.snap
	n := len(snap.cost)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = inf
	}
	done := make([]bool, n)
	h := distHeap{nodes: make([]heapNode, 0, 16)}
	dist[src] = snap.cost[src]
	h.push(heapNode{dist[src], src})
	for h.len() > 0 {
		nd := h.pop()
		u := nd.node
		if done[u] || nd.dist > dist[u] {
			continue // stale heap entry
		}
		done[u] = true
		du := dist[u]
		for _, v := range snap.succs[u] {
			if d := du + snap.cost[v]; d < dist[v] {
				dist[v] = d
				h.push(heapNode{d, v})
			}
		}
	}
	// The matrix's diagonal d[src][src] is the cheapest cycle through src
	// (inf when none); recover it from the settled distances so dist(i, i)
	// queries agree between engines.
	cyc := inf
	for _, p := range snap.preds[src] {
		if dist[p] < inf {
			if d := dist[p] + snap.cost[src]; d < cyc {
				cyc = d
			}
		}
	}
	dist[src] = cyc
	return dist
}

// heapNode is one binary-heap entry: a (distance, block) pair. Entries are
// never updated in place; superseded ones are dropped lazily at pop.
type heapNode struct {
	dist int
	node int
}

// distHeap is a minimal binary min-heap over heapNodes, ordered by
// distance (ties broken by block index, which keeps pop order — though not
// the computed distances — deterministic across runs).
type distHeap struct {
	nodes []heapNode
}

func (h *distHeap) len() int { return len(h.nodes) }

func (h *distHeap) less(a, b heapNode) bool {
	return a.dist < b.dist || a.dist == b.dist && a.node < b.node
}

func (h *distHeap) push(n heapNode) {
	h.nodes = append(h.nodes, n)
	i := len(h.nodes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.nodes[i], h.nodes[p]) {
			break
		}
		h.nodes[i], h.nodes[p] = h.nodes[p], h.nodes[i]
		i = p
	}
}

func (h *distHeap) pop() heapNode {
	top := h.nodes[0]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes = h.nodes[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.nodes) && h.less(h.nodes[l], h.nodes[smallest]) {
			smallest = l
		}
		if r < len(h.nodes) && h.less(h.nodes[r], h.nodes[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.nodes[i], h.nodes[smallest] = h.nodes[smallest], h.nodes[i]
		i = smallest
	}
	return top
}
