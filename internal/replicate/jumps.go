package replicate

import (
	"time"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/tv"
)

// Heuristic selects between the two candidate replication sequences of
// step 2 of the JUMPS algorithm.
type Heuristic uint8

// Heuristics for choosing a replication sequence.
const (
	// HeurShortest picks whichever candidate sequence replicates fewer
	// RTLs (the paper's guiding principle of minimal code growth).
	HeurShortest Heuristic = iota
	// HeurReturns prefers sequences ending in a return.
	HeurReturns
	// HeurLoops prefers sequences reconnecting to the fall-through block.
	HeurLoops
	// HeurFrequency estimates execution frequency statically: jumps inside
	// loops prefer the favoring-loops sequence (the rotation keeps the hot
	// path falling through), jumps outside loops prefer favoring returns
	// (separating cold exit paths); ties fall back to fewest RTLs.
	HeurFrequency
)

// String returns the wire name of the heuristic.
func (h Heuristic) String() string {
	switch h {
	case HeurShortest:
		return "shortest"
	case HeurReturns:
		return "returns"
	case HeurLoops:
		return "loops"
	case HeurFrequency:
		return "frequency"
	}
	return "heuristic(?)"
}

// Options configures the JUMPS algorithm.
type Options struct {
	// Heuristic picks between favoring-returns and favoring-loops
	// candidates. The non-preferred candidate is still attempted when the
	// preferred one fails the reducibility check (step 6).
	Heuristic Heuristic
	// MaxSeqRTLs caps the replicated RTLs per jump (0 = unlimited); the
	// paper's §6 suggests this to curb code growth for small caches.
	MaxSeqRTLs int
	// AllowIndirect enables the §6 extension: a block ending in an
	// indirect jump may terminate a replication sequence.
	AllowIndirect bool
	// NoLoopCompletion disables step 3 (whole-natural-loop inclusion);
	// used for ablation only — expect more reducibility rollbacks.
	NoLoopCompletion bool
	// MaxFuncRTLs stops replication once a function reaches this many RTLs
	// (0 = default 20000); a safety valve against pathological growth.
	MaxFuncRTLs int
	// MaxReplications bounds replications per invocation (0 = default 500).
	MaxReplications int
	// Engine selects the step-1 shortest-path implementation: the default
	// on-demand oracle (EngineOracle) or the paper's eager all-pairs matrix
	// (EngineMatrix), kept as a differential reference. Both produce
	// identical candidate sequences and decision traces.
	Engine PathEngine
	// Tracer, when non-nil, receives one obs.EvDecision event per jump
	// considered: the candidate sequences with their RTL costs, which were
	// rolled back, and the outcome.
	Tracer obs.Tracer
	// ForceKeepIrreducible is a fault-injection switch for the differential
	// oracle's self-test (internal/difftest, cmd/fuzzjump -inject): when
	// set, step 6 keeps a splice even though it made the flow graph
	// irreducible, instead of rolling it back. Never set it outside tests —
	// it deliberately breaks the algorithm's central safety property.
	ForceKeepIrreducible bool
	// ForceRollback is the complementary fault injection: when set, every
	// guarded duplication is rolled back as if the reducibility check had
	// failed, exercising the undo log's byte-identical restore on every
	// attempt. Never set it outside tests.
	ForceRollback bool
	// OnCertificate, when non-nil, receives one translation-validation
	// certificate per *applied* duplication, invoked synchronously right
	// after the edit is kept — rolled-back candidates emit nothing — with
	// the function in exactly the state the certificate describes. The
	// pipeline's TV mode installs a validator here (see
	// pipeline.Config.TV). Certificate construction is skipped entirely
	// when the hook is nil, keeping the hot path allocation-free.
	OnCertificate func(*cfg.Func, *tv.Certificate)
}

// Result reports what one replication invocation (JUMPS or LOOPS) did to a
// function. Counters accumulate across the invocation's internal sweeps.
type Result struct {
	// Changed reports whether the function was modified at all.
	Changed bool
	// Replications is the number of jumps replaced by replicated code.
	Replications int
	// JumpsDeleted counts the trivial case: jumps to the positionally next
	// block, removed without copying anything.
	JumpsDeleted int
	// Rollbacks counts candidate splices undone by the reducibility check
	// (step 6).
	Rollbacks int
	// RTLsCopied is the total size of all applied replication sequences —
	// the function's code growth due to replication before cleanup passes.
	RTLsCopied int
	// BranchesFolded counts conditional branches eliminated on a duplicated
	// edge by the DUPS level's conditional-elimination pass.
	BranchesFolded int
}

// Merge accumulates o into r (used by the pipeline to aggregate over
// functions and iterations).
func (r *Result) Merge(o Result) {
	r.Changed = r.Changed || o.Changed
	r.Replications += o.Replications
	r.JumpsDeleted += o.JumpsDeleted
	r.Rollbacks += o.Rollbacks
	r.RTLsCopied += o.RTLsCopied
	r.BranchesFolded += o.BranchesFolded
}

func (o Options) maxFuncRTLs() int {
	if o.MaxFuncRTLs == 0 {
		return 20000
	}
	return o.MaxFuncRTLs
}

func (o Options) maxReplications() int {
	if o.MaxReplications == 0 {
		return 500
	}
	return o.MaxReplications
}

// jumpKey identifies one unconditional jump for the per-invocation
// blacklist of failed replications.
type jumpKey struct {
	block  rtl.Label
	target rtl.Label
}

// countJumps returns the static number of unconditional (direct) jumps.
func countJumps(f *cfg.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Insts {
			if b.Insts[ii].Kind == rtl.Jmp {
				n++
			}
		}
	}
	return n
}

// JUMPS applies the generalized code-replication algorithm to f until no
// further unconditional jump can be replaced, the growth budget is
// exhausted, or progress stalls. The Result reports whether anything
// changed along with per-function replication counters. Unreachable blocks
// may remain; callers run dead code elimination afterwards, per Figure 3.
func JUMPS(f *cfg.Func, opts Options) Result {
	var res Result
	blacklist := map[jumpKey]bool{}
	g := newBudget(f, opts, ProfitJumps)
	for !g.exhausted(f) {
		made := sweep(f, opts, blacklist, g, &res)
		if made == 0 {
			break
		}
		res.Changed = true
	}
	return res
}

// sweep builds the shortest-path engine once (step 1) and then walks the
// blocks replacing jumps (steps 2–6), reusing the engine for every lookup
// exactly as the paper describes for its matrix. Returns the number of
// replications made.
func sweep(f *cfg.Func, opts Options, blacklist map[jumpKey]bool, g *budget, res *Result) int {
	e := cfg.ComputeEdges(f)
	m := newPathFinder(f, e, opts.Engine)
	// Label-space view of the engine: rows were assigned in block order at
	// snapshot time.
	rowOf := make(map[rtl.Label]int, len(f.Blocks))
	labelOf := make([]rtl.Label, len(f.Blocks))
	for i, b := range f.Blocks {
		rowOf[b.Label] = i
		labelOf[i] = b.Label
	}
	made := 0

	for bi := 0; bi < len(f.Blocks); bi++ {
		if g.exhausted(f) {
			break
		}
		b := f.Blocks[bi]
		t := b.Term()
		if t == nil || t.Kind != rtl.Jmp {
			continue
		}
		key := jumpKey{b.Label, t.Target}
		if blacklist[key] {
			continue
		}
		tgt := f.BlockByLabel(t.Target)
		if tgt == nil {
			continue
		}
		// A jump to the positionally next block is simply deleted.
		if tgt.Index == b.Index+1 {
			b.Insts = b.Insts[:len(b.Insts)-1]
			res.JumpsDeleted++
			if opts.OnCertificate != nil {
				opts.OnCertificate(f, &tv.Certificate{
					Kind: tv.KindJumpDelete, Func: f.Name,
					Block: key.block, Target: key.target,
				})
			}
			emitDecision(opts, f, key.block, key.target, nil, obs.OutDeleted)
			made++
			continue
		}
		// The engine only knows blocks that existed when it was built;
		// jumps into fresh copies wait for the next sweep.
		if _, ok := rowOf[tgt.Label]; !ok {
			continue
		}
		// Flow analyses are cheap and must be current for steps 3, 5, 6.
		// The loops (independent bitsets) outlive the release of both.
		e := cfg.ComputeEdges(f)
		d := cfg.ComputeDominators(e)
		loops := cfg.NaturalLoops(e, d)
		d.Release()
		e.Release()

		cands := candidates(f, m, rowOf, labelOf, loops, opts, b, tgt)
		meta := candidateMeta(cands)
		applied := -1
		for ci, c := range cands {
			if attemptReplication(f, loops, b.Index, c, opts) {
				applied = ci
				break
			}
			meta[ci].RolledBack = true
			res.Rollbacks++
			b = f.Blocks[bi]
		}
		if applied < 0 {
			blacklist[key] = true
			outcome := obs.OutRolledBack
			if len(cands) == 0 {
				outcome = obs.OutNoCandidates
			}
			emitDecision(opts, f, key.block, key.target, meta, outcome)
			continue
		}
		meta[applied].Applied = true
		res.Replications++
		res.RTLsCopied += cands[applied].rtls
		emitDecision(opts, f, key.block, key.target, meta, obs.OutApplied)
		made++
		g.spent(f)
	}
	return made
}

// candidate is one possible replication sequence for a jump.
type candidate struct {
	seq []rtl.Label // block labels in replica order
	// fallsTo is the label execution reaches after the last replica block
	// by fall-through (favoring loops), or NoLabel when the sequence ends
	// in a return / indirect jump (favoring returns).
	fallsTo rtl.Label
	rtls    int
	// kind and completed describe the candidate for the decision log:
	// obs.KindReturns or obs.KindLoops, and whether step 3 pulled a whole
	// natural loop into the sequence.
	kind      string
	completed bool
}

// candidateMeta converts candidates to their telemetry descriptions.
func candidateMeta(cands []candidate) []obs.Candidate {
	if len(cands) == 0 {
		return nil
	}
	meta := make([]obs.Candidate, len(cands))
	for i, c := range cands {
		meta[i] = obs.Candidate{Kind: c.kind, RTLs: c.rtls, Blocks: len(c.seq), LoopCompleted: c.completed}
	}
	return meta
}

// emitDecision reports one considered jump to the configured tracer.
func emitDecision(opts Options, f *cfg.Func, block, target rtl.Label, meta []obs.Candidate, outcome string) {
	if opts.Tracer == nil {
		return
	}
	opts.Tracer.Emit(&obs.Event{
		Type: obs.EvDecision, Func: f.Name,
		Block: block.String(), Target: target.String(),
		Heuristic: opts.Heuristic.String(), Candidates: meta, Outcome: outcome,
		// det:allow nodeterminism — decision-log timestamp, not compiler output.
		TimeNS: time.Now().UnixNano(),
	})
}

// candidates computes the step-2 options for replacing b's jump to tgt,
// ordered by the configured heuristic: favoring returns (a path to a
// return) and favoring loops (a path reconnecting to the block positionally
// following b). Step 3 (natural-loop completion) is applied to each.
func candidates(f *cfg.Func, m pathFinder, rowOf map[rtl.Label]int, labelOf []rtl.Label,
	loops []*cfg.Loop, opts Options, b, tgt *cfg.Block) []candidate {
	var out []candidate
	tr := rowOf[tgt.Label]

	toLabels := func(rows []int) []rtl.Label {
		ls := make([]rtl.Label, len(rows))
		for i, r := range rows {
			ls[i] = labelOf[r]
		}
		return ls
	}
	// For each option, the bare path is tried first and the loop-completed
	// sequence (step 3) kept as the fallback: completion exists to repair
	// the two-entry loops that partial replication can create (Figure 1),
	// and when the bare path already yields a reducible graph — the common
	// rotation of a bottom-test loop — it would only inflate code size.
	addVariants := func(kind string, path []rtl.Label, fallsTo rtl.Label) {
		bare, okBare := finishCandidate(f, loops, opts, b, path, fallsTo, false)
		if okBare {
			bare.kind = kind
			out = append(out, bare)
		}
		if opts.NoLoopCompletion {
			return
		}
		full, okFull := finishCandidate(f, loops, opts, b, path, fallsTo, true)
		if okFull && (!okBare || len(full.seq) != len(bare.seq)) {
			full.kind = kind
			full.completed = true
			out = append(out, full)
		}
	}

	// Favoring returns: shortest path from tgt to any return block (or, in
	// the §6 extension, to an indirect-jump block).
	bestRet, bestRetDist := -1, inf
	for _, rb := range f.Blocks {
		term := rb.Term()
		if term == nil {
			continue
		}
		isEnd := term.Kind == rtl.Ret || opts.AllowIndirect && term.Kind == rtl.IJmp
		if !isEnd {
			continue
		}
		rr, known := rowOf[rb.Label]
		if !known {
			continue
		}
		var dd int
		if rb == tgt {
			dd = m.cost(tr)
		} else if d := m.dist(tr, rr); d < inf {
			dd = d
		} else {
			continue
		}
		if dd < bestRetDist {
			bestRet, bestRetDist = rr, dd
		}
	}
	if bestRet >= 0 {
		if p := m.path(tr, bestRet); p != nil {
			addVariants(obs.KindReturns, toLabels(p), rtl.NoLabel)
		}
	}

	// Favoring loops: shortest path from tgt to the block positionally
	// following b, replicating everything but that final block.
	if b.Index+1 < len(f.Blocks) {
		fb := f.Blocks[b.Index+1]
		if fr, known := rowOf[fb.Label]; known && fb != tgt && m.dist(tr, fr) < inf {
			if p := m.path(tr, fr); len(p) >= 2 {
				addVariants(obs.KindLoops, toLabels(p[:len(p)-1]), fb.Label)
			}
		}
	}

	// Order by heuristic; the runner tries candidates in order, falling to
	// the next on a reducibility rollback. Within equal preference the
	// bare variant stays ahead of its loop-completed fallback because the
	// sort is stable and bare sequences are never longer.
	h := opts.Heuristic
	if h == HeurFrequency {
		if cfg.InnermostLoopContaining(loops, b.Index) != nil {
			h = HeurLoops
		} else {
			h = HeurReturns
		}
	}
	sortCandidates(out, h)
	return out
}

// sortCandidates stably orders candidates per the (already frequency-
// resolved) heuristic.
func sortCandidates(cs []candidate, h Heuristic) {
	less := func(a, b candidate) bool {
		switch h {
		case HeurReturns:
			if (a.fallsTo == rtl.NoLabel) != (b.fallsTo == rtl.NoLabel) {
				return a.fallsTo == rtl.NoLabel
			}
		case HeurLoops:
			if (a.fallsTo == rtl.NoLabel) != (b.fallsTo == rtl.NoLabel) {
				return a.fallsTo != rtl.NoLabel
			}
		}
		return a.rtls < b.rtls
	}
	// Insertion sort keeps it stable and the slices are tiny.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && less(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// finishCandidate turns a path into a replication sequence, optionally
// applying step 3 (loop completion), and enforces the length cap.
func finishCandidate(f *cfg.Func, loops []*cfg.Loop, opts Options, b *cfg.Block, path []rtl.Label, fallsTo rtl.Label, complete bool) (candidate, bool) {
	seq := make([]rtl.Label, 0, len(path))
	inSeq := map[rtl.Label]bool{}
	appendBlock := func(l rtl.Label) {
		if !inSeq[l] {
			inSeq[l] = true
			seq = append(seq, l)
		}
	}
	prev := b
	for _, pl := range path {
		pb := f.BlockByLabel(pl)
		if pb == nil {
			return candidate{}, false
		}
		if inSeq[pl] {
			prev = pb
			continue
		}
		l := cfg.LoopHeaderOf(loops, pb)
		if l != nil && complete && !l.Contains(prev.Index) {
			// Step 3: pull the entire natural loop in, in positional order.
			// When this happens for the very first collected block, control
			// enters the replica by falling out of the jump block, so the
			// copy of the jump target must come first: rotate the segment
			// to start at the header. (Mid-path segments are entered via
			// explicitly retargeted branches, so positional order is fine.)
			var segment []rtl.Label
			for _, lb := range f.Blocks {
				if l.Contains(lb.Index) {
					segment = append(segment, lb.Label)
				}
			}
			if len(seq) == 0 {
				for si, sl := range segment {
					if sl == pl {
						rot := make([]rtl.Label, 0, len(segment))
						rot = append(rot, segment[si:]...)
						rot = append(rot, segment[:si]...)
						segment = rot
						break
					}
				}
			}
			for _, sl := range segment {
				appendBlock(sl)
			}
		} else {
			appendBlock(pl)
		}
		prev = pb
	}
	rtls := 0
	for _, l := range seq {
		rtls += len(f.BlockByLabel(l).Insts)
	}
	if opts.MaxSeqRTLs > 0 && rtls > opts.MaxSeqRTLs {
		return candidate{}, false
	}
	return candidate{seq: seq, fallsTo: fallsTo, rtls: rtls}, true
}

// attemptReplication performs steps 4–6 for one candidate: splice the
// copies in place of the jump, adjust control flow, redirect in-loop
// branches, and verify reducibility via the engine's guard, rolling
// everything back through the undo log on failure (see dup.go).
func attemptReplication(f *cfg.Func, loops []*cfg.Loop, bIdx int, c candidate, opts Options) bool {
	b := f.Blocks[bIdx]
	// The certificate is built alongside the edit (splice fills in the
	// copies, the step-5 loop redirects append below) but emitted only if
	// the guard keeps it; a rolled-back candidate leaves no trace.
	var cert *tv.Certificate
	if opts.OnCertificate != nil {
		cert = &tv.Certificate{
			Kind: tv.KindReplication, Func: f.Name,
			Block: b.Label, Target: b.Term().Target, FallsTo: c.fallsTo,
		}
	}
	// Step 5 needs the membership of the loop the jump lives in, captured
	// by label before splicing invalidates indices.
	var loopLabels map[rtl.Label]bool
	if l := cfg.InnermostLoopContaining(loops, b.Index); l != nil {
		loopLabels = map[rtl.Label]bool{}
		l.ForEachBlock(func(bi int) {
			loopLabels[f.Blocks[bi].Label] = true
		})
	}
	ok := applyGuarded(f, opts, func(u *undoLog) {
		u.truncated(b, len(b.Insts))
		firstCopy, inserted := splice(f, b, c, cert)
		u.insertedBlocks(bIdx, inserted)
		// Step 5: preserve loop structure around partially copied loops.
		if loopLabels != nil {
			for _, r := range redirectLoopBranches(f, loopLabels, firstCopy) {
				u.retargeted(r.inst, r.old)
				if cert != nil {
					cert.Retargets = append(cert.Retargets, tv.Retarget{
						Block: r.block, Old: r.old, New: r.inst.Target,
					})
				}
			}
		}
	})
	if ok && cert != nil {
		opts.OnCertificate(f, cert)
	}
	return ok
}

// splice replaces b's terminating jump with copies of the candidate blocks
// (step 4): fresh labels, intra-replica retargeting with forward
// preference, branch reversal where the replica's layout requires it, and
// elimination of jumps that became fall-throughs. It returns the mapping
// from each original block label to the label of its first copy, and the
// number of blocks inserted after b (for the rollback undo log). A non-nil
// cert collects the copy pairs and auxiliary jump blocks for translation
// validation.
func splice(f *cfg.Func, b *cfg.Block, c candidate, cert *tv.Certificate) (map[rtl.Label]rtl.Label, int) {
	n := len(c.seq)
	copies := make([]*cfg.Block, n)
	// copyOf[label] lists replica indices holding copies of that label.
	copyOf := map[rtl.Label][]int{}
	originals := make([]*cfg.Block, n)
	for i, l := range c.seq {
		orig := f.BlockByLabel(l)
		originals[i] = orig
		nb := orig.Clone()
		nb.Label = f.NewLabel()
		copies[i] = nb
		copyOf[orig.Label] = append(copyOf[orig.Label], i)
	}
	// Record original -> first-copy labels now, before fix-up inserts
	// auxiliary jump blocks into the copies slice.
	first := make(map[rtl.Label]rtl.Label, n)
	for i, orig := range originals {
		if _, ok := first[orig.Label]; !ok {
			first[orig.Label] = copies[i].Label
		}
	}
	if cert != nil {
		cert.Copies = make([]tv.CopyPair, n)
		for i, orig := range originals {
			cert.Copies[i] = tv.CopyPair{Orig: orig.Label, Copy: copies[i].Label}
		}
	}
	// mapped resolves a control-flow target from replica position i:
	// forward copy first, then backward copy, then the original.
	mapped := func(i int, target rtl.Label) rtl.Label {
		idxs := copyOf[target]
		if len(idxs) == 0 {
			return target
		}
		for _, j := range idxs {
			if j > i {
				return copies[j].Label
			}
		}
		return copies[idxs[len(idxs)-1]].Label
	}

	// Auxiliary jump blocks created during fix-up, keyed by the replica
	// position they follow; spliced into the final layout afterwards so
	// positions stay stable during the sweep.
	aux := map[int][]*cfg.Block{}
	for i, nb := range copies {
		orig := originals[i]
		// wantNext is what the replica falls into after this block.
		wantNext := rtl.NoLabel
		if i+1 < n {
			wantNext = copies[i+1].Label
		} else if c.fallsTo != rtl.NoLabel {
			wantNext = c.fallsTo
		}
		term := nb.Term()
		switch {
		case term == nil:
			// Original fell through to its positional successor.
			var ft rtl.Label = rtl.NoLabel
			if orig.Index+1 < len(f.Blocks) {
				ft = f.Blocks[orig.Index+1].Label
			}
			tgt := mapped(i, ft)
			if tgt != wantNext && ft != rtl.NoLabel {
				nb.Insts = append(nb.Insts, rtl.Inst{Kind: rtl.Jmp, Target: tgt})
			}
		case term.Kind == rtl.Jmp:
			tgt := mapped(i, term.Target)
			if tgt == wantNext {
				nb.Insts = nb.Insts[:len(nb.Insts)-1]
			} else {
				term.Target = tgt
			}
		case term.Kind == rtl.Br:
			var ft rtl.Label = rtl.NoLabel
			if orig.Index+1 < len(f.Blocks) {
				ft = f.Blocks[orig.Index+1].Label
			}
			tTaken := mapped(i, term.Target)
			tFall := mapped(i, ft)
			switch {
			case tFall == wantNext:
				term.Target = tTaken
			case tTaken == wantNext && tFall != rtl.NoLabel:
				// Reverse the branch so the replica's layout falls through
				// (step 4's branch reversal).
				term.BrRel = term.BrRel.Negate()
				term.Target = tFall
			default:
				// Neither side matches the layout: keep the branch and add
				// an explicit jump block for the fall-through edge, spliced
				// in after this copy once the fix-up sweep finishes.
				term.Target = tTaken
				if ft != rtl.NoLabel {
					ab := &cfg.Block{
						Label: f.NewLabel(),
						Insts: []rtl.Inst{{Kind: rtl.Jmp, Target: tFall}},
					}
					aux[i] = append(aux[i], ab)
					if cert != nil {
						cert.Aux = append(cert.Aux, ab.Label)
					}
				}
			}
		case term.Kind == rtl.IJmp:
			for ti := range term.Table {
				term.Table[ti] = mapped(i, term.Table[ti])
			}
		case term.Kind == rtl.Ret:
			// Nothing to adjust.
		}
	}

	// Delete the jump and splice the copies right after b; execution falls
	// from b into the first copy, and from the last copy into c.fallsTo
	// (which is exactly the block positionally after b) when favoring
	// loops.
	b.Insts = b.Insts[:len(b.Insts)-1]
	final := make([]*cfg.Block, 0, len(copies)+len(aux))
	for i, nb := range copies {
		final = append(final, nb)
		final = append(final, aux[i]...)
	}
	f.InsertBlocksAfter(b.Index, final...)
	return first, len(final)
}

// loopRedirect is one step-5 rewrite: the retarget record for the undo
// log plus the owning block's label for the certificate.
type loopRedirect struct {
	inst  *rtl.Inst
	old   rtl.Label
	block rtl.Label
}

// redirectLoopBranches implements step 5: when the replication was
// initiated from inside a natural loop and copied part of that loop, the
// conditional branches of uncopied loop blocks that target copied blocks
// are redirected to the copies, preventing partially overlapping loops.
// It returns the rewrites it made so a rollback can reverse them (and the
// certificate can list them).
func redirectLoopBranches(f *cfg.Func, loopLabels map[rtl.Label]bool, firstCopy map[rtl.Label]rtl.Label) []loopRedirect {
	var undo []loopRedirect
	for _, x := range f.Blocks {
		if !loopLabels[x.Label] {
			continue
		}
		if _, wasCopied := firstCopy[x.Label]; wasCopied {
			continue
		}
		t := x.Term()
		if t == nil || t.Kind != rtl.Br {
			continue
		}
		if nc, ok := firstCopy[t.Target]; ok {
			undo = append(undo, loopRedirect{inst: t, old: t.Target, block: x.Label})
			t.Target = nc
		}
	}
	return undo
}
