// Package replicate implements the code-duplication optimizations of the
// pipeline: the paper's LOOPS loop-condition rotation and generalized JUMPS
// replication (which remove unconditional jumps), and the DUPS level's
// conditional-jump elimination in the style of Breitner's "Conditional
// Elimination through Code Duplication" (which removes conditional branches
// whose outcome is already decided on an incoming path).
//
// All three are built on one generic duplication engine (this file): every
// speculative structural edit — splicing copied blocks, truncating a jump,
// retargeting branches — is recorded in an undo log and applied under a
// reducibility guard, so a failed attempt rolls the function back
// byte-identically without cloning it. Pass-specific policy lives in
// pluggable profitability models (profit.go) that drive the shared growth
// budget (§5.2 conservatism: bounded replications, a function-size ceiling,
// and a futility cutoff).
package replicate

import (
	"repro/internal/cfg"
	"repro/internal/rtl"
)

// undoLog records the structural edits of one speculative duplication so
// rollback can reverse them exactly. It is deliberately not a
// whole-function clone (see PR 8's allocation diet): a duplication only
// truncates instruction slices (the backing arrays keep the removed
// instructions), inserts fresh blocks at one position, retargets branch
// instructions in place, and advances the fresh-label counter — four edit
// kinds, each reversed precisely, restoring the function byte for byte.
type undoLog struct {
	f         *cfg.Func
	labelMark rtl.Label
	truncs    []trunc
	retargets []retarget
	// insertAt/insertN describe one run of blocks inserted after position
	// insertAt (insertN == 0 when nothing was inserted).
	insertAt, insertN int
}

// trunc records one block whose instruction slice was truncated (the
// replaced terminator survives in the backing array past the new length).
type trunc struct {
	b        *cfg.Block
	savedLen int
}

// retarget records one branch rewrite so the undo log can reverse it. The
// instruction pointer stays valid because nothing appends to the owning
// block's Insts between rewrite and rollback.
type retarget struct {
	inst *rtl.Inst
	old  rtl.Label
}

// beginUndo opens an undo log for f, capturing the fresh-label high-water
// mark so speculative labels are rewound on rollback.
func beginUndo(f *cfg.Func) *undoLog {
	return &undoLog{f: f, labelMark: f.LabelMark(), insertAt: -1}
}

// truncated records that b's instruction slice is about to shrink from
// savedLen (call before the edit truncates it).
func (u *undoLog) truncated(b *cfg.Block, savedLen int) {
	u.truncs = append(u.truncs, trunc{b: b, savedLen: savedLen})
}

// retargeted records that inst's Target was old before the edit rewrote it.
func (u *undoLog) retargeted(inst *rtl.Inst, old rtl.Label) {
	u.retargets = append(u.retargets, retarget{inst: inst, old: old})
}

// insertedBlocks records that n fresh blocks were spliced in immediately
// after position at. One run per log — duplications insert their copies in
// a single InsertBlocksAfter call.
func (u *undoLog) insertedBlocks(at, n int) {
	u.insertAt, u.insertN = at, n
}

// rollback reverses every recorded edit in the safe order — branch targets
// first, then the inserted blocks, then the truncations, and finally the
// fresh-label counter — leaving the function byte-identical to the state
// beginUndo observed.
func (u *undoLog) rollback() {
	for _, r := range u.retargets {
		r.inst.Target = r.old
	}
	if u.insertN > 0 {
		f := u.f
		f.Blocks = append(f.Blocks[:u.insertAt+1], f.Blocks[u.insertAt+1+u.insertN:]...)
		f.Renumber()
	}
	for _, t := range u.truncs {
		t.b.Insts = t.b.Insts[:t.savedLen]
	}
	u.f.ResetLabels(u.labelMark)
}

// applyGuarded performs one speculative duplication: edit applies the
// structural change, recording everything it does into the fresh undo log
// it is handed. The edit is kept only if the flow graph remains reducible
// (the algorithms' central safety property, step 6 of the paper); otherwise
// — or always, under the ForceRollback fault injection — the undo log rolls
// the function back byte-identically and applyGuarded reports false.
func applyGuarded(f *cfg.Func, opts Options, edit func(*undoLog)) bool {
	u := beginUndo(f)
	edit(u)
	if opts.ForceRollback || (!cfg.IsReducible(f) && !opts.ForceKeepIrreducible) {
		u.rollback()
		return false
	}
	return true
}

// maxFutile bounds consecutive duplications that fail to lower the
// profitability model's metric; the paper notes that interactions must be
// "treated conservatively to avoid the potential of replication ad
// infinitum".
const maxFutile = 16

// budget tracks the §5.2 growth caps for one duplication pass over one
// function: a bound on applied duplications, a function-size ceiling, and —
// when a profitability model is attached — the futility cutoff on that
// model's metric.
type budget struct {
	opts   Options
	profit Profit
	reps   int
	futile int
	best   int
}

// newBudget opens a budget for one pass over f driven by the given
// profitability model (nil disables the futility cutoff for passes whose
// every application makes strict progress by construction).
func newBudget(f *cfg.Func, opts Options, p Profit) *budget {
	g := &budget{opts: opts, profit: p}
	if p != nil {
		g.best = p.Metric(f)
	}
	return g
}

// exhausted reports whether the pass must stop: duplication bound reached,
// function grown past its RTL ceiling, or the futility cutoff tripped.
func (g *budget) exhausted(f *cfg.Func) bool {
	return g.reps >= g.opts.maxReplications() ||
		g.futile >= maxFutile ||
		f.NumRTLs() > g.opts.maxFuncRTLs()
}

// spent accounts one applied duplication and re-evaluates the profitability
// metric for the futility cutoff.
func (g *budget) spent(f *cfg.Func) {
	g.reps++
	if g.profit == nil {
		return
	}
	if now := g.profit.Metric(f); now < g.best {
		g.best = now
		g.futile = 0
	} else {
		g.futile++
	}
}
