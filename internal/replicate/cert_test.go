package replicate

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/tv"
)

// Certificate emission tests: every applied duplication must hand the
// OnCertificate hook a certificate that the translation validator accepts
// *at emission time* — the validator contract is that the function is in
// exactly the state the certificate describes when the hook fires, so all
// checking here happens synchronously inside the hook.

// certCollector returns Options wired to validate each certificate as it
// is emitted and to record it (with the kind tally) for later assertions.
func certCollector(t *testing.T) (Options, *[]*tv.Certificate) {
	t.Helper()
	certs := &[]*tv.Certificate{}
	opts := Options{
		OnCertificate: func(f *cfg.Func, c *tv.Certificate) {
			if vs := tv.Validate(f, c); len(vs) != 0 {
				t.Errorf("%s certificate rejected at emission: %v\nfunc:\n%s", c.Kind, vs, f)
			}
			*certs = append(*certs, c)
		},
	}
	return opts, certs
}

func kindCount(certs []*tv.Certificate, k tv.Kind) int {
	n := 0
	for _, c := range certs {
		if c.Kind == k {
			n++
		}
	}
	return n
}

const (
	// replicableSrc: L0 jumps over the else-part to the return block; the
	// paper's Table-2 shape, replicated by copying the return.
	replicableSrc = `func r(params=0, locals=0):
L0:
	v0 = #1
	PC = L2
L1:
	v0 = #2
L2:
	PC = RT, rv=v0
`
	// jumpToNextSrc: the jump targets the positionally next block, so the
	// sweep deletes it outright (and must certify the deletion).
	jumpToNextSrc = `func d(params=0, locals=0):
L0:
	v0 = #1
	PC = L1
L1:
	PC = RT, rv=v0
`
	// whileShapeSrc: the entry jumps to the loop's pure termination test at
	// the bottom; LOOPS replaces the jump with an adjusted copy of the test.
	whileShapeSrc = `func w(params=1, locals=1):
L0:
	v0 = L[fp+0]
	PC = L2
L1:
	v0 = v0 - #1
L2:
	CC = v0 ? #0
	PC = CC > 0, L1
L3:
	PC = RT, rv=v0
`
)

func TestCertificateJumpsReplication(t *testing.T) {
	f := mustParse(t, replicableSrc)
	opts, certs := certCollector(t)
	res := JUMPS(f, opts)
	if !res.Changed || res.Replications != 1 {
		t.Fatalf("want 1 replication, got %+v:\n%s", res, f)
	}
	if n := kindCount(*certs, tv.KindReplication); n != 1 {
		t.Fatalf("want 1 replication certificate, got %d (%d total)", n, len(*certs))
	}
	c := (*certs)[0]
	if c.Func != "r" || len(c.Copies) != 1 {
		t.Errorf("certificate = %+v, want func r with one copy pair", c)
	}
}

func TestCertificateJumpDelete(t *testing.T) {
	f := mustParse(t, jumpToNextSrc)
	opts, certs := certCollector(t)
	res := JUMPS(f, opts)
	if res.JumpsDeleted != 1 {
		t.Fatalf("want 1 jump deleted, got %+v:\n%s", res, f)
	}
	if n := kindCount(*certs, tv.KindJumpDelete); n != 1 {
		t.Fatalf("want 1 jump-delete certificate, got %d", n)
	}
}

func TestCertificateRotation(t *testing.T) {
	f := mustParse(t, whileShapeSrc)
	opts, certs := certCollector(t)
	res := LOOPS(f, opts)
	if !res.Changed || res.Replications != 1 {
		t.Fatalf("want 1 rotation, got %+v:\n%s", res, f)
	}
	if n := kindCount(*certs, tv.KindRotation); n != 1 {
		t.Fatalf("want 1 rotation certificate, got %d", n)
	}
	if c := (*certs)[0]; c.CopyLen != 2 {
		t.Errorf("rotation CopyLen = %d, want 2 (Cmp + Br)", c.CopyLen)
	}
}

// TestCertificateFoldConstRoute: both folds on the constant-decided fixture
// certify with constant-environment evidence.
func TestCertificateFoldConstRoute(t *testing.T) {
	f := mustParse(t, constDecidedSrc)
	opts, certs := certCollector(t)
	res := condElim(f, opts)
	if res.BranchesFolded != 2 {
		t.Fatalf("want 2 folds, got %+v:\n%s", res, f)
	}
	if n := kindCount(*certs, tv.KindFold); n != 2 {
		t.Fatalf("want 2 fold certificates, got %d", n)
	}
	for _, c := range *certs {
		if c.Kind == tv.KindFold && c.Evidence.Route != tv.RouteConst {
			t.Errorf("fold evidence route = %q, want %q", c.Evidence.Route, tv.RouteConst)
		}
	}
}

// TestCertificateFoldRelRoute: the dominating-test fixture folds with
// relation (sign-set) evidence — no constant in sight.
func TestCertificateFoldRelRoute(t *testing.T) {
	f := mustParse(t, domDecidedSrc)
	opts, certs := certCollector(t)
	res := condElim(f, opts)
	if res.BranchesFolded == 0 {
		t.Fatalf("want at least one fold, got %+v:\n%s", res, f)
	}
	folds := 0
	for _, c := range *certs {
		if c.Kind != tv.KindFold {
			continue
		}
		folds++
		if c.Evidence.Route != tv.RouteRel {
			t.Errorf("fold evidence route = %q, want %q", c.Evidence.Route, tv.RouteRel)
		}
	}
	if folds == 0 {
		t.Fatal("no fold certificate emitted")
	}
}

// TestCertificateDUPSEndToEnd: the staged DUPS driver over the constant
// fixture — every certificate of every leg validates at emission.
func TestCertificateDUPSEndToEnd(t *testing.T) {
	f := mustParse(t, constDecidedSrc)
	opts, certs := certCollector(t)
	res := DUPS(f, opts)
	if !res.Changed {
		t.Fatalf("DUPS made no change:\n%s", f)
	}
	if len(*certs) == 0 {
		t.Fatal("DUPS applied edits but emitted no certificates")
	}
}

// TestForceRollbackEmitsNoCertificates pins the `-inject undo` property:
// a candidate that is rolled back never reaches the certificate hook, so
// force-rolling-back everything yields zero certificates.
func TestForceRollbackEmitsNoCertificates(t *testing.T) {
	for _, src := range []string{replicableSrc, constDecidedSrc, domDecidedSrc} {
		f := mustParse(t, src)
		var certs []*tv.Certificate
		opts := Options{
			ForceRollback: true,
			OnCertificate: func(_ *cfg.Func, c *tv.Certificate) {
				certs = append(certs, c)
			},
		}
		JUMPS(f, opts)
		condElim(f, opts)
		for _, c := range certs {
			// Jump-to-next deletion is not a guarded edit (it cannot break
			// reducibility), so its certificate legitimately survives undo
			// injection; everything else must not.
			if c.Kind != tv.KindJumpDelete {
				t.Errorf("rolled-back candidate emitted a %s certificate", c.Kind)
			}
		}
	}
}
