package replicate

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// Fixtures for the DUPS conditional-elimination tests.
const (
	// constDecidedSrc: both incoming edges of the test block L2 decide its
	// branch — L0 reaches it with v0 = 1 over an unconditional jump (taken:
	// 1 > 0), L1 falls in with v0 = 0 (not taken).
	constDecidedSrc = `func f(params=0, locals=0):
L0:
	v0 = #1
	PC = L2
L1:
	v0 = #0
L2:
	CC = v0 ? #0
	PC = CC > 0, L4
L3:
	v1 = #7
	PC = RT, rv=v1
L4:
	v1 = #9
	PC = RT, rv=v1
`
	// domDecidedSrc: L0's own test dominates L1's — on the taken edge
	// (v0 < v1) the query "v0 >= v1" is disjoint, so L1's branch is decided
	// not-taken without knowing either value.
	domDecidedSrc = `func g(params=2, locals=2):
L0:
	v0 = L[fp+0]
	v1 = L[fp+1]
	CC = v0 ? v1
	PC = CC < 0, L2
L1:
	PC = RT, rv=v0
L2:
	CC = v0 ? v1
	PC = CC >= 0, L4
L3:
	PC = RT, rv=v1
L4:
	v0 = v0 + v1
	PC = RT, rv=v0
`
	// undecidedSrc: the test block's operands are unknown on every edge and
	// no dominating test exists — conditional elimination must do nothing.
	undecidedSrc = `func h(params=1, locals=1):
L0:
	v0 = L[fp+0]
L1:
	CC = v0 ? #3
	PC = CC > 0, L3
L2:
	PC = RT, rv=v0
L3:
	v0 = v0 + #1
	PC = RT, rv=v0
`
)

func mustParse(t *testing.T, src string) *cfg.Func {
	t.Helper()
	f, err := cfg.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCondElimConstantEdges folds both incoming edges of a test block whose
// comparison is constant on each path: the unconditional-jump predecessor
// gets the folded copy as its new fall-through (killing the jump too), the
// fall-through predecessor gets it spliced in between. After cleanup no
// conditional branch survives on any reachable path.
func TestCondElimConstantEdges(t *testing.T) {
	f := mustParse(t, constDecidedSrc)
	res := condElim(f, Options{})
	if !res.Changed || res.BranchesFolded != 2 {
		t.Fatalf("want 2 folds, got %+v:\n%s", res, f)
	}
	cfg.RemoveUnreachable(f)
	if n := countBranches(f); n != 0 {
		t.Errorf("want 0 reachable conditional branches, got %d:\n%s", n, f)
	}
	if err := cfg.Validate(f, false); err != nil {
		t.Fatal(err)
	}
	if !cfg.IsReducible(f) {
		t.Fatalf("fold broke reducibility:\n%s", f)
	}
}

// TestCondElimDominatingTest folds a branch whose outcome is implied by the
// predecessor's own test on the same operands, with no constant in sight.
func TestCondElimDominatingTest(t *testing.T) {
	f := mustParse(t, domDecidedSrc)
	res := condElim(f, Options{})
	if !res.Changed || res.BranchesFolded == 0 {
		t.Fatalf("want at least one fold, got %+v:\n%s", res, f)
	}
	if err := cfg.Validate(f, false); err != nil {
		t.Fatal(err)
	}
	// The taken edge from L0 must now reach a folded copy that transfers
	// straight to the not-taken destination (the original L3 epilogue).
	br := f.Blocks[0].Term()
	if br == nil || br.Kind != rtl.Br {
		t.Fatalf("entry branch gone:\n%s", f)
	}
	nb := f.BlockByLabel(br.Target)
	if nb == nil {
		t.Fatalf("entry branch targets nothing:\n%s", f)
	}
	if tm := nb.Term(); tm == nil || tm.Kind == rtl.Br {
		t.Errorf("folded copy still ends in a conditional branch:\n%s", f)
	}
}

// TestCondElimUndecided pins the conservative side: no constants, no
// dominating test, no folds.
func TestCondElimUndecided(t *testing.T) {
	f := mustParse(t, undecidedSrc)
	before := f.String()
	res := condElim(f, Options{})
	if res.Changed || res.BranchesFolded != 0 {
		t.Fatalf("expected no folds, got %+v:\n%s", res, f)
	}
	if got := f.String(); got != before {
		t.Errorf("function mutated without folds:\n%s", got)
	}
}

// TestCondElimCallInvalidatesLocals pins the aliasing rule: a call may
// write any addressable frame slot, so a local-operand comparison decided
// before the call must not be considered decided after it.
func TestCondElimCallInvalidatesLocals(t *testing.T) {
	src := `func k(params=0, locals=1):
L0:
	L[fp+0] = #1
	v0 = call f0
	PC = L2
L1:
	v1 = #0
L2:
	CC = L[fp+0] ? #0
	PC = CC > 0, L4
L3:
	PC = RT, rv=#7
L4:
	PC = RT, rv=#9
`
	f := mustParse(t, src)
	res := condElim(f, Options{})
	if res.BranchesFolded != 0 {
		t.Fatalf("folded through a call's potential frame write: %+v:\n%s", res, f)
	}
}

// TestDupsRunsJumpsLeg pins that DUPS subsumes JUMPS: on the paper's Table
// 1 shape (no decidable branch) it performs exactly the JUMPS replication.
func TestDupsRunsJumpsLeg(t *testing.T) {
	fd := mustParse(t, table1Src)
	fj := mustParse(t, table1Src)
	rd := DUPS(fd, Options{})
	rj := JUMPS(fj, Options{})
	if !rd.Changed || rd.Replications != rj.Replications {
		t.Fatalf("DUPS jumps leg diverged: DUPS %+v, JUMPS %+v", rd, rj)
	}
	if got, want := fd.String(), fj.String(); got != want {
		t.Errorf("DUPS output differs from JUMPS on an undecidable function:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestForceRollbackByteIdentical is the undo-log acceptance test: with the
// ForceRollback fault injection every guarded duplication must be rolled
// back to a byte-identical function — text, label counter and block count —
// for both the conditional-elimination and the JUMPS splice paths.
func TestForceRollbackByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		run  func(f *cfg.Func, o Options) Result
	}{
		{"condElim/const", constDecidedSrc, condElim},
		{"condElim/dom", domDecidedSrc, condElim},
		{"jumps/table1", table1Src, JUMPS},
		{"jumps/table2", table2Src, JUMPS},
		{"dups/const", constDecidedSrc, DUPS},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := mustParse(t, tc.src)
			before := f.String()
			mark := f.LabelMark()
			blocks := len(f.Blocks)
			res := tc.run(f, Options{ForceRollback: true})
			if res.Replications != 0 || res.BranchesFolded != 0 {
				t.Fatalf("applied work under ForceRollback: %+v", res)
			}
			if res.Rollbacks == 0 {
				t.Fatalf("no rollbacks recorded — fixture exercised nothing: %+v", res)
			}
			if got := f.String(); got != before {
				t.Errorf("rollback not byte-identical:\ngot:\n%s\nwant:\n%s", got, before)
			}
			if got := f.LabelMark(); got != mark {
				t.Errorf("label counter not rewound: got %v, want %v", got, mark)
			}
			if got := len(f.Blocks); got != blocks {
				t.Errorf("block count changed: got %d, want %d", got, blocks)
			}
		})
	}
}

// TestProfitModels pins the two profitability metrics on a known shape.
func TestProfitModels(t *testing.T) {
	f := mustParse(t, constDecidedSrc)
	if got := ProfitJumps.Metric(f); got != 1 {
		t.Errorf("ProfitJumps = %d, want 1", got)
	}
	// Both incoming edges of L2 are decided (constant on each path).
	if got := ProfitFolds.Metric(f); got != 2 {
		t.Errorf("ProfitFolds = %d, want 2", got)
	}
	if ProfitJumps.Name() == ProfitFolds.Name() {
		t.Error("profit models must have distinct names")
	}
}
