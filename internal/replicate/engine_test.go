package replicate

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/rtl"
)

// fixtureSrcs names every RTL-text fixture of the package; the engine
// differential tests run each through both path engines.
var fixtureSrcs = map[string]string{
	"table1":   table1Src,
	"table2":   table2Src,
	"forShape": forShapeSrc,
}

// jumpsTrace runs JUMPS over a fresh parse of src with the given engine and
// returns the OmitTimings JSONL decision trace plus the resulting function
// text and counters.
func jumpsTrace(t *testing.T, src string, engine PathEngine, opts Options) (trace []byte, text string, res Result) {
	t.Helper()
	f, err := cfg.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	w.OmitTimings = true
	opts.Engine = engine
	opts.Tracer = w
	res = JUMPS(f, opts)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), f.String(), res
}

// TestEngineEquivalenceFixtures is the differential proof artifact for the
// dual-engine design: every fixture, under every heuristic and the main
// option toggles, must produce byte-identical JSONL decision traces — and
// therefore identical candidate sequences, rollbacks, and final code —
// whether step 1 is answered by the all-pairs matrix or the on-demand
// oracle.
func TestEngineEquivalenceFixtures(t *testing.T) {
	variants := []Options{
		{},
		{Heuristic: HeurReturns},
		{Heuristic: HeurLoops},
		{Heuristic: HeurFrequency},
		{MaxSeqRTLs: 4},
		{NoLoopCompletion: true},
		{AllowIndirect: true},
	}
	for name, src := range fixtureSrcs {
		for vi, opts := range variants {
			t.Run(fmt.Sprintf("%s/variant%d", name, vi), func(t *testing.T) {
				mTrace, mText, mRes := jumpsTrace(t, src, EngineMatrix, opts)
				oTrace, oText, oRes := jumpsTrace(t, src, EngineOracle, opts)
				if !bytes.Equal(mTrace, oTrace) {
					t.Errorf("decision traces differ:\nmatrix:\n%s\noracle:\n%s", mTrace, oTrace)
				}
				if mText != oText {
					t.Errorf("resulting functions differ:\nmatrix:\n%s\noracle:\n%s", mText, oText)
				}
				if mRes != oRes {
					t.Errorf("results differ: matrix %+v, oracle %+v", mRes, oRes)
				}
			})
		}
	}
}

// TestEngineEquivalenceRandomGraphs cross-checks the two engines
// exhaustively at the query level: on randomly wired flow graphs, every
// pairwise distance and every canonical path must agree. This covers
// queries the sweep never issues (i == j diagonals, unreachable pairs,
// dense fan-in ties) and pins the engines to each other independently of
// JUMPS.
func TestEngineEquivalenceRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for g := 0; g < 60; g++ {
		n := 2 + rng.Intn(12)
		f := cfg.NewFunc(fmt.Sprintf("g%d", g), 0)
		blocks := make([]*cfg.Block, n)
		for i := range blocks {
			blocks[i] = f.NewBlock()
		}
		for i, b := range blocks {
			// 1–8 RTLs of padding, then a terminator: return, jump, branch,
			// or fall-through (no terminator).
			for k, nr := 0, 1+rng.Intn(8); k < nr; k++ {
				b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Move, Dst: rtl.R(v(0)), Src: rtl.Imm(int64(k))})
			}
			tgt := blocks[rng.Intn(n)].Label
			switch rng.Intn(4) {
			case 0:
				b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Ret, Src: rtl.None()})
			case 1:
				b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Jmp, Target: tgt})
			case 2:
				b.Insts = append(b.Insts,
					rtl.Inst{Kind: rtl.Cmp, Src: rtl.R(v(0)), Src2: rtl.Imm(0)},
					rtl.Inst{Kind: rtl.Br, BrRel: rtl.Lt, Target: tgt})
			case 3:
				if i == n-1 {
					b.Insts = append(b.Insts, rtl.Inst{Kind: rtl.Ret, Src: rtl.None()})
				}
			}
		}
		e := cfg.ComputeEdges(f)
		snap := snapshotGraph(f, e)
		m := newPathMatrix(snap)
		o := newPathOracle(snap)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if md, od := m.dist(i, j), o.dist(i, j); md != od {
					t.Fatalf("graph %d: dist(%d,%d): matrix %d, oracle %d", g, i, j, md, od)
				}
				mp, op := m.path(i, j), o.path(i, j)
				if fmt.Sprint(mp) != fmt.Sprint(op) {
					t.Fatalf("graph %d: path(%d,%d): matrix %v, oracle %v", g, i, j, mp, op)
				}
				// A non-nil path must really be a path of the claimed length.
				if mp != nil && i != j {
					total := 0
					for _, x := range mp {
						total += snap.cost[x]
					}
					if total != m.dist(i, j) {
						t.Fatalf("graph %d: path(%d,%d) = %v costs %d, dist says %d", g, i, j, mp, total, m.dist(i, j))
					}
					for k := 0; k+1 < len(mp); k++ {
						found := false
						for _, s := range snap.succs[mp[k]] {
							if s == mp[k+1] {
								found = true
							}
						}
						if !found {
							t.Fatalf("graph %d: path(%d,%d) = %v has no edge %d->%d", g, i, j, mp, mp[k], mp[k+1])
						}
					}
				}
			}
		}
	}
}

// TestParseEngine pins the wire names.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PathEngine
		err  bool
	}{
		{"", EngineOracle, false},
		{"oracle", EngineOracle, false},
		{"matrix", EngineMatrix, false},
		{"floyd", EngineOracle, true},
	} {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	if EngineOracle.String() != "oracle" || EngineMatrix.String() != "matrix" {
		t.Error("String() names drifted from wire names")
	}
}
