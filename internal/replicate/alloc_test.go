package replicate

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// buildBranchy builds a synthetic function of n conditional-branch blocks
// with scattered targets — enough edges for the snapshot pin below.
func buildBranchy(n int) *cfg.Func {
	f := cfg.NewFunc("branchy", 0)
	blocks := make([]*cfg.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	for i, b := range blocks {
		b.Insts = []rtl.Inst{
			{Kind: rtl.Cmp, Src: rtl.R(rtl.VRegBase), Src2: rtl.Imm(int64(i))},
			{Kind: rtl.Br, BrRel: rtl.Eq, Target: blocks[(i+7)%n].Label},
		}
	}
	blocks[n-1].Insts = []rtl.Inst{{Kind: rtl.Ret}}
	return f
}

// TestAllocsSnapshotGraph pins the sweep's step-1 snapshot cost: the
// adjacency rows are views into two shared backing arrays, so the
// allocation count is a small constant independent of the block count —
// not one slice per block.
func TestAllocsSnapshotGraph(t *testing.T) {
	count := func(n int) float64 {
		f := buildBranchy(n)
		e := cfg.ComputeEdges(f)
		got := testing.AllocsPerRun(50, func() {
			snapshotGraph(f, e)
		})
		e.Release()
		return got
	}
	small, large := count(16), count(256)
	if large > small {
		t.Errorf("snapshotGraph allocations grow with block count: %.0f at 16 blocks, %.0f at 256", small, large)
	}
	if small > 8 {
		t.Errorf("snapshotGraph allocates %.0f times, want a small constant (<=8)", small)
	}
}

// TestAllocsRollbackNoClone pins the undo-log rollback by budget: the
// whole JUMPS run on the Table-1 fixture must stay within an allocation
// count far below what a single clone-per-attempt rollback scheme costs on
// the same input, so reintroducing f.Clone() into attemptReplication trips
// the bound immediately.
func TestAllocsRollbackNoClone(t *testing.T) {
	base, err := cfg.ParseFunc(table1Src)
	if err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		g := base.Clone()
		JUMPS(g, Options{})
	})
	t.Logf("JUMPS on Table-1 fixture: %.0f allocs per run (incl. the fixture clone)", got)
	if got > 350 {
		t.Errorf("JUMPS on the Table-1 fixture allocates %.0f times per run, want <=350 (undo-log rollback)", got)
	}
}
