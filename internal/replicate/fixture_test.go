package replicate

import (
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/rtl"
)

// The RTL-text fixtures, shared between the per-table tests below and the
// engine-equivalence differential test (engine_test.go).
const (
	// table1Src is the paper's Table 1 control flow: a loop whose exit test
	// sits at the top and whose body ends with the unconditional jump back.
	// v0=d[0], v1=d[1], v2=a[0]; "L[n]" is the loop bound.
	table1Src = `func copyloop(params=0, locals=0):
L0:
	v1 = #1
	v2 = &x
L1:
	v0 = v1
	v2 = v2 + #1
	v1 = v1 + #1
	CC = v0 ? L[n]
	PC = CC >= 0, L3
L2:
	M[v2] = M[v2+1]
	PC = L1
L3:
	PC = RT
`
	// table2Src is the paper's Table 2 control flow: an if-then-else whose
	// then-part jumps over the else-part to the join+return.
	table2Src = `func f(params=2, locals=2):
L0:
	CC = L[fp+0] ? #5
	PC = CC <= 0, L2
L1:
	v0 = L[fp+0]
	v0 = v0 / L[fp+1]
	L[fp+0] = v0
	PC = L3
L2:
	v0 = L[fp+0]
	v0 = v0 * L[fp+1]
	L[fp+0] = v0
L3:
	PC = RT, rv=L[fp+0]
`
	// forShapeSrc is a for-loop with the entry jump to the bottom test.
	forShapeSrc = `func main(params=0, locals=0):
L0:
	v0 = #0
	v1 = #0
	PC = L2
L1:
	v0 = v0 + v1
	v1 = v1 + #1
L2:
	CC = v1 ? #10
	PC = CC < 0, L1
L3:
	PC = RT, rv=v0
`
)

// TestTable1Fixture drives JUMPS over the paper's Table 1 control flow,
// written directly in the textual RTL notation: a loop whose exit test sits
// at the top (label L15 in the paper) and whose body ends with the
// unconditional jump back. After replication the jump is gone and a
// reversed copy of the test closes the loop at the bottom — the exact
// transformation of the table.
func TestTable1Fixture(t *testing.T) {
	f, err := cfg.ParseFunc(table1Src)
	if err != nil {
		t.Fatal(err)
	}
	if !JUMPS(f, Options{}).Changed {
		t.Fatalf("expected replication:\n%s", f)
	}
	cfg.RemoveUnreachable(f)
	if countJumps(f) != 0 {
		t.Fatalf("unconditional jump survived:\n%s", f)
	}
	if err := cfg.Validate(f, false); err != nil {
		t.Fatal(err)
	}
	// The replica of the test must branch *backwards* with the reversed
	// relation (continue while < 0), like the paper's `PC=NZ<0,L000`.
	text := f.String()
	if !strings.Contains(text, "CC < 0") {
		t.Errorf("reversed test not found:\n%s", text)
	}
	// The body block must now fall through into the replicated test.
	body := f.BlockByLabel(2)
	if body == nil {
		t.Fatalf("body block gone:\n%s", text)
	}
	if tm := body.Term(); tm != nil {
		t.Errorf("body should fall through into the replicated test:\n%s", text)
	}
}

// TestTable2Fixture drives JUMPS over the paper's Table 2 control flow: an
// if-then-else whose then-part jumps over the else-part to the join+return.
// The replication copies the epilogue so both paths return separately.
func TestTable2Fixture(t *testing.T) {
	f, err := cfg.ParseFunc(table2Src)
	if err != nil {
		t.Fatal(err)
	}
	if !JUMPS(f, Options{}).Changed {
		t.Fatalf("expected replication:\n%s", f)
	}
	cfg.RemoveUnreachable(f)
	if countJumps(f) != 0 {
		t.Fatalf("jump survived:\n%s", f)
	}
	rets := 0
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == rtl.Ret {
			rets++
		}
	}
	if rets != 2 {
		t.Errorf("want two separate returns (paper Table 2), got %d:\n%s", rets, f)
	}
}

// TestForShapeFixture pins the for-loop entry-jump rotation: the jump to
// the bottom test is replaced by a reversed guard, with no loop completion
// (the compact result, not a copied loop nest).
func TestForShapeFixture(t *testing.T) {
	f, err := cfg.ParseFunc(forShapeSrc)
	if err != nil {
		t.Fatal(err)
	}
	before := f.NumRTLs()
	if !JUMPS(f, Options{}).Changed {
		t.Fatalf("expected replication:\n%s", f)
	}
	cfg.RemoveUnreachable(f)
	if countJumps(f) != 0 {
		t.Fatalf("jump survived:\n%s", f)
	}
	// Rotation adds only the guard (cmp+branch), not a copy of the loop.
	if grown := f.NumRTLs() - before; grown > 2 {
		t.Errorf("rotation grew the function by %d RTLs (loop completion fired needlessly):\n%s", grown, f)
	}
	if v, err := runFunc(f); err != nil || v != 45 {
		t.Errorf("sum = %d, err %v", v, err)
	}
}
