package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file adds labeled metric vectors to the registry: families of
// counters, gauges and histograms keyed by a fixed set of label names.
// Children are created on first use (WithLabelValues) and rendered in the
// Prometheus text exposition format with a deterministic order — label
// names in registration order, children sorted by their label values — so
// two scrapes of the same state are byte-identical.

// labelChild is one (label values → metric) entry of a vector.
type labelChild[M any] struct {
	// expo is the rendered label portion `name="value",...` — the sort key
	// and the exposition text.
	expo   string
	metric M
}

// vec is the shared child table behind CounterVec/GaugeVec/HistogramVec.
type vec[M any] struct {
	name   string
	labels []string
	newM   func() M

	mu       sync.Mutex
	children map[string]*labelChild[M]
}

func newVec[M any](name string, labels []string, newM func() M) *vec[M] {
	if len(labels) == 0 {
		panic("obs: metric vector " + name + " needs at least one label")
	}
	return &vec[M]{
		name: name, labels: append([]string(nil), labels...),
		newM: newM, children: map[string]*labelChild[M]{},
	}
}

// with returns the child for the given label values, creating it on first
// use. The value count must match the label count (a programming error,
// like a duplicate registration).
func (v *vec[M]) with(values []string) M {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d",
			v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.metric
	}
	var sb strings.Builder
	for i, l := range v.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	c := &labelChild[M]{expo: sb.String(), metric: v.newM()}
	v.children[key] = c
	return c.metric
}

// sorted returns the children ordered by their rendered label text, so
// exposition output is deterministic regardless of creation order.
func (v *vec[M]) sorted() []*labelChild[M] {
	v.mu.Lock()
	out := make([]*labelChild[M], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].expo < out[j].expo })
	return out
}

// labelEscaper applies the exposition format's label-value escapes: the
// backslash, the double quote, and the line feed.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value for the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

// A CounterVec is a family of counters keyed by label values.
type CounterVec struct{ v *vec[*Counter] }

// WithLabelValues returns the counter for the given label values,
// creating it on first use.
func (cv *CounterVec) WithLabelValues(values ...string) *Counter { return cv.v.with(values) }

// A GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ v *vec[*Gauge] }

// WithLabelValues returns the gauge for the given label values, creating
// it on first use.
func (gv *GaugeVec) WithLabelValues(values ...string) *Gauge { return gv.v.with(values) }

// A HistogramVec is a family of histograms (sharing one bucket layout)
// keyed by label values.
type HistogramVec struct{ v *vec[*Histogram] }

// WithLabelValues returns the histogram for the given label values,
// creating it on first use.
func (hv *HistogramVec) WithLabelValues(values ...string) *Histogram { return hv.v.with(values) }

// CounterVec registers and returns a counter family with the given label
// names.
func (r *Registry) CounterVec(name, help string, labels []string) *CounterVec {
	cv := &CounterVec{newVec(name, labels, func() *Counter { return &Counter{} })}
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		for _, c := range cv.v.sorted() {
			fmt.Fprintf(w, "%s{%s} %d\n", n, c.expo, c.metric.Value())
		}
	}})
	return cv
}

// GaugeVec registers and returns a gauge family with the given label
// names.
func (r *Registry) GaugeVec(name, help string, labels []string) *GaugeVec {
	gv := &GaugeVec{newVec(name, labels, func() *Gauge { return &Gauge{} })}
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		for _, c := range gv.v.sorted() {
			fmt.Fprintf(w, "%s{%s} %d\n", n, c.expo, c.metric.Value())
		}
	}})
	return gv
}

// HistogramVec registers and returns a histogram family with the given
// label names and bucket upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	hv := &HistogramVec{newVec(name, labels, func() *Histogram { return NewHistogram(bs) })}
	r.register(metric{name, help, "histogram", func(w io.Writer, n string) {
		for _, c := range hv.v.sorted() {
			writeHistogram(w, n, c.expo+",", c.metric.Snapshot())
		}
	}})
	return hv
}
