package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Collector is an in-memory Tracer, used by the -explain renderer and by
// tests.
type Collector struct {
	mu     sync.Mutex
	events []*Event
}

// Emit implements Tracer.
func (c *Collector) Emit(ev *Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns the collected events in emission order.
func (c *Collector) Events() []*Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Event(nil), c.events...)
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// JSONLWriter streams events as JSON Lines: one event object per line, in
// emission order.
type JSONLWriter struct {
	// OmitTimings strips TimeNS/DurNS before encoding, making the stream
	// deterministic for a deterministic compilation (golden tests).
	OmitTimings bool

	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLWriter returns a JSONL sink writing to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Emit implements Tracer. Encoding errors are sticky and reported by Err.
func (j *JSONLWriter) Emit(ev *Event) {
	if j.OmitTimings && (ev.TimeNS != 0 || ev.DurNS != 0) {
		cp := *ev
		cp.TimeNS, cp.DurNS = 0, 0
		ev = &cp
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
