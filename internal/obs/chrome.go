package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ChromeWriter renders the trace in the Chrome trace_event JSON array
// format, loadable in about://tracing or https://ui.perfetto.dev. Events
// with a duration become complete ("X") slices; the rest become instants
// ("i"). Events are buffered until Close, which writes the array.
type ChromeWriter struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
}

type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"` // microseconds
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	S    string `json:"s,omitempty"` // instant scope
	Args *Event `json:"args,omitempty"`
}

// NewChromeWriter returns a Chrome trace sink writing to w on Close.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	return &ChromeWriter{w: w}
}

// Emit implements Tracer.
func (c *ChromeWriter) Emit(ev *Event) {
	ce := chromeEvent{
		Name: chromeName(ev),
		Cat:  ev.Type,
		TS:   ev.TimeNS / 1000,
		PID:  1,
		TID:  1,
		Args: ev,
	}
	if ev.DurNS > 0 {
		ce.Ph = "X"
		ce.Dur = ev.DurNS / 1000
		if ce.Dur == 0 {
			ce.Dur = 1 // sub-microsecond slices would be invisible
		}
	} else {
		ce.Ph, ce.S = "i", "t"
	}
	c.mu.Lock()
	c.events = append(c.events, ce)
	c.mu.Unlock()
}

// chromeName builds a display name for the timeline.
func chromeName(ev *Event) string {
	switch ev.Type {
	case EvPass:
		return fmt.Sprintf("%s %s", ev.Func, ev.Name)
	case EvPhase:
		return ev.Name
	case EvDecision:
		return fmt.Sprintf("%s: jump %s -> %s (%s)", ev.Func, ev.Block, ev.Target, ev.Outcome)
	case EvBlock, EvHot:
		return fmt.Sprintf("%s %s ×%d", ev.Func, ev.Block, ev.Count)
	}
	return ev.Type
}

// Close rebases timestamps so the trace starts at zero and writes the JSON
// array. The writer must not be used afterwards.
func (c *ChromeWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var base int64 = -1
	for _, ce := range c.events {
		if base == -1 || ce.TS < base {
			base = ce.TS
		}
	}
	for i := range c.events {
		c.events[i].TS -= base
	}
	enc := json.NewEncoder(c.w)
	return enc.Encode(c.events)
}
