package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ChromeWriter renders the trace in the Chrome trace_event JSON array
// format, loadable in about://tracing or https://ui.perfetto.dev. Events
// with a duration become complete ("X") slices; the rest become instants
// ("i"). Events are mapped to one pid with one tid lane per function
// (lane 0 holds function-less events: service and phase spans); Close
// emits thread_name metadata so the lanes are labeled in the viewer.
// Events are buffered until Close, which writes the array.
type ChromeWriter struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
	tids   map[string]int
	lanes  []string // lane names in tid order, index 0 = the service lane
}

type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"` // microseconds
	Dur  int64  `json:"dur,omitempty"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
	S    string `json:"s,omitempty"` // instant scope
	Args any    `json:"args,omitempty"`
}

// chromePID is the single process every event maps to.
const chromePID = 1

// serviceLane names the tid-0 lane holding events without a function.
const serviceLane = "service"

// NewChromeWriter returns a Chrome trace sink writing to w on Close.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	return &ChromeWriter{
		w:     w,
		tids:  map[string]int{"": 0},
		lanes: []string{serviceLane},
	}
}

// tid maps a function name to its lane, assigning lanes in first-seen
// order (deterministic for a deterministic event stream). Must be called
// with mu held.
func (c *ChromeWriter) tid(fn string) int {
	if id, ok := c.tids[fn]; ok {
		return id
	}
	id := len(c.lanes)
	c.tids[fn] = id
	c.lanes = append(c.lanes, fn)
	return id
}

// Emit implements Tracer.
func (c *ChromeWriter) Emit(ev *Event) {
	ce := chromeEvent{
		Name: chromeName(ev),
		Cat:  ev.Type,
		TS:   ev.TimeNS / 1000,
		PID:  chromePID,
		Args: ev,
	}
	if ev.DurNS > 0 {
		ce.Ph = "X"
		ce.Dur = ev.DurNS / 1000
		if ce.Dur == 0 {
			ce.Dur = 1 // sub-microsecond slices would be invisible
		}
	} else {
		ce.Ph, ce.S = "i", "t"
	}
	c.mu.Lock()
	ce.TID = c.tid(ev.Func)
	c.events = append(c.events, ce)
	c.mu.Unlock()
}

// chromeName builds a display name for the timeline.
func chromeName(ev *Event) string {
	switch ev.Type {
	case EvPass:
		return fmt.Sprintf("%s %s", ev.Func, ev.Name)
	case EvPhase:
		return ev.Name
	case EvDecision:
		return fmt.Sprintf("%s: jump %s -> %s (%s)", ev.Func, ev.Block, ev.Target, ev.Outcome)
	case EvBlock, EvHot:
		return fmt.Sprintf("%s %s ×%d", ev.Func, ev.Block, ev.Count)
	case EvVerify:
		return fmt.Sprintf("%s: %s violated after %s", ev.Func, ev.Rule, ev.Name)
	}
	return ev.Type
}

// Close rebases timestamps so the trace starts at zero, prepends the
// thread_name metadata naming each lane, and writes the JSON array. The
// writer must not be used afterwards.
func (c *ChromeWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var base int64 = -1
	for _, ce := range c.events {
		if base == -1 || ce.TS < base {
			base = ce.TS
		}
	}
	for i := range c.events {
		c.events[i].TS -= base
	}
	meta := make([]chromeEvent, 0, len(c.lanes))
	for tid, name := range c.lanes {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: tid,
			Args: map[string]string{"name": name},
		})
	}
	enc := json.NewEncoder(c.w)
	return enc.Encode(append(meta, c.events...))
}
