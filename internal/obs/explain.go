package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Explain renders a collected trace as a human-readable narrative: every
// replication decision with its candidate costs and rollbacks, a per-pass
// activity summary, the hot-block profile (when present), and totals. It is
// the renderer behind mcc/ease -explain.
func Explain(w io.Writer, events []*Event) {
	explainDecisions(w, events)
	explainPasses(w, events)
	explainHot(w, events)
}

func candidateString(c Candidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{%d rtls/%d blocks", c.Kind, c.RTLs, c.Blocks)
	if c.LoopCompleted {
		b.WriteString(", loop-completed")
	}
	b.WriteString("}")
	if c.RolledBack {
		b.WriteString(" ROLLED BACK (irreducible)")
	}
	return b.String()
}

func explainDecisions(w io.Writer, events []*Event) {
	var decisions []*Event
	for _, ev := range events {
		if ev.Type == EvDecision {
			decisions = append(decisions, ev)
		}
	}
	if len(decisions) == 0 {
		fmt.Fprintln(w, "no replication decisions (level below JUMPS/LOOPS, or no unconditional jumps)")
		return
	}
	fmt.Fprintf(w, "replication decisions (%d jumps considered):\n", len(decisions))
	applied, rollbacks, deleted, kept, rtlsCopied := 0, 0, 0, 0, 0
	for _, ev := range decisions {
		fmt.Fprintf(w, "  %s: jump %s -> %s", ev.Func, ev.Block, ev.Target)
		for _, c := range ev.Candidates {
			if c.RolledBack {
				rollbacks++
			}
		}
		switch ev.Outcome {
		case OutDeleted:
			deleted++
			fmt.Fprintf(w, ": target is the next block; jump deleted\n")
			continue
		case OutNoCandidates:
			kept++
			fmt.Fprintf(w, ": no candidate sequence (no return path or reconnection); jump kept\n")
			continue
		}
		if ev.Heuristic != "" {
			fmt.Fprintf(w, " [%s]", ev.Heuristic)
		}
		fmt.Fprint(w, ": ")
		parts := make([]string, 0, len(ev.Candidates))
		for _, c := range ev.Candidates {
			parts = append(parts, candidateString(c))
		}
		fmt.Fprint(w, strings.Join(parts, "; "))
		switch ev.Outcome {
		case OutApplied:
			applied++
			for _, c := range ev.Candidates {
				if c.Applied {
					rtlsCopied += c.RTLs
					fmt.Fprintf(w, " => applied %s (+%d rtls)", c.Kind, c.RTLs)
					break
				}
			}
			fmt.Fprintln(w)
		case OutRolledBack:
			kept++
			fmt.Fprintln(w, " => every candidate rolled back; jump kept")
		default:
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "  totals: %d applied (+%d rtls copied), %d reducibility rollbacks, %d jumps-to-next deleted, %d kept\n",
		applied, rtlsCopied, rollbacks, deleted, kept)
}

func explainPasses(w io.Writer, events []*Event) {
	type passAgg struct {
		name    string
		runs    int
		changed int
		dRTLs   int
		dur     time.Duration
	}
	var order []string
	agg := map[string]*passAgg{}
	for _, ev := range events {
		if ev.Type != EvPass {
			continue
		}
		a := agg[ev.Name]
		if a == nil {
			a = &passAgg{name: ev.Name}
			agg[ev.Name] = a
			order = append(order, ev.Name)
		}
		a.runs++
		if ev.Changed {
			a.changed++
		}
		a.dRTLs += ev.RTLsAfter - ev.RTLsBefore
		a.dur += time.Duration(ev.DurNS)
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintln(w, "pass activity:")
	fmt.Fprintf(w, "  %-22s %5s %8s %7s %10s\n", "pass", "runs", "changed", "dRTLs", "time")
	for _, name := range order {
		a := agg[name]
		fmt.Fprintf(w, "  %-22s %5d %8d %+7d %10s\n", a.name, a.runs, a.changed, a.dRTLs, a.dur.Round(time.Microsecond))
	}
}

func explainHot(w io.Writer, events []*Event) {
	printed := false
	for _, ev := range events {
		if ev.Type != EvHot {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "hot blocks (by executed instructions):")
			printed = true
		}
		fmt.Fprintf(w, "  %-12s %-6s %6.2f%%  (%d entries, %d insts)\n",
			ev.Func, ev.Block, ev.Percent, ev.Count, ev.Insts)
	}
}
