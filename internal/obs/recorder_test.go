package obs

import (
	"fmt"
	"sync"
	"testing"
)

func recEvent(job string, i int) *Event {
	return &Event{Type: EvPhase, Job: job, Name: fmt.Sprintf("e%d", i)}
}

func TestFlightRecorderTail(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		r.Emit(recEvent("a", i))
	}
	tail := r.Tail(0, "")
	if len(tail) != 5 {
		t.Fatalf("tail = %d events, want 5", len(tail))
	}
	for i, re := range tail {
		if re.Seq != uint64(i) || re.Name != fmt.Sprintf("e%d", i) {
			t.Fatalf("tail[%d] = seq %d %q", i, re.Seq, re.Name)
		}
	}
	if got := r.Tail(2, ""); len(got) != 2 || got[0].Name != "e3" || got[1].Name != "e4" {
		t.Fatalf("Tail(2) = %v", got)
	}
}

func TestFlightRecorderWrapAround(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(recEvent("a", i))
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	tail := r.Tail(0, "")
	if len(tail) != 4 {
		t.Fatalf("retained %d, want capacity 4", len(tail))
	}
	if tail[0].Name != "e6" || tail[3].Name != "e9" {
		t.Fatalf("ring retained wrong window: %q..%q", tail[0].Name, tail[3].Name)
	}
}

func TestFlightRecorderJobIndex(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 6; i++ {
		job := "a"
		if i%2 == 1 {
			job = "b"
		}
		r.Emit(recEvent(job, i))
	}
	r.Emit(&Event{Type: EvPhase, Name: "nojob"}) // unindexed
	a := r.Tail(0, "a")
	if len(a) != 3 {
		t.Fatalf("job a has %d events, want 3", len(a))
	}
	for _, re := range a {
		if re.Job != "a" {
			t.Fatalf("job filter leaked %q", re.Job)
		}
	}
	if got := r.Tail(1, "b"); len(got) != 1 || got[0].Name != "e5" {
		t.Fatalf("Tail(1, b) = %v", got)
	}
	if got := r.Tail(0, "missing"); len(got) != 0 {
		t.Fatalf("unknown job returned %d events", len(got))
	}
}

// TestFlightRecorderIndexPruned checks the per-job index follows ring
// eviction: once a job's events fall off the ring, the index forgets the
// job instead of growing without bound.
func TestFlightRecorderIndexPruned(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 4; i++ {
		r.Emit(recEvent("old", i))
	}
	for i := 0; i < 4; i++ {
		r.Emit(recEvent("new", i))
	}
	if got := r.Tail(0, "old"); len(got) != 0 {
		t.Fatalf("evicted job still has %d indexed events", len(got))
	}
	r.mu.Lock()
	_, stale := r.byJob["old"]
	r.mu.Unlock()
	if stale {
		t.Fatal("evicted job still present in the index")
	}
	if got := r.Tail(0, "new"); len(got) != 4 {
		t.Fatalf("surviving job has %d events, want 4", len(got))
	}
}

// TestFlightRecorderConcurrent is meaningful under -race.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			job := fmt.Sprintf("j%d", g%3)
			for i := 0; i < 200; i++ {
				r.Emit(recEvent(job, i))
				if i%17 == 0 {
					r.Tail(8, job)
					r.Tail(8, "")
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 8*200 {
		t.Fatalf("total = %d, want %d", r.Total(), 8*200)
	}
}

func TestWithJobStamps(t *testing.T) {
	var col Collector
	tr := WithJob("abc", &col)
	orig := &Event{Type: EvPass, Name: "cse"}
	tr.Emit(orig)
	if orig.Job != "" {
		t.Fatal("WithJob mutated the caller's event")
	}
	evs := col.Events()
	if len(evs) != 1 || evs[0].Job != "abc" || evs[0].Name != "cse" {
		t.Fatalf("stamped event = %+v", evs[0])
	}
	if WithJob("abc", nil) != nil {
		t.Fatal("WithJob(nil) must stay nil (disabled convention)")
	}
}
