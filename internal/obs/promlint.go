package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the repo's own Prometheus text exposition linter, used by
// the CI observability smoke (via cmd/promlint) and the registry's unit
// tests. It checks the structural rules a scraper relies on:
//
//   - every sample belongs to a family announced by a # TYPE line, and
//     HELP/TYPE metadata pairs up (at most one each, HELP before TYPE,
//     both before the samples);
//   - counter family names end in _total;
//   - histogram families have, per label set: le bucket bounds that parse
//     as floats and strictly ascend, cumulative bucket counts that never
//     decrease, a final le="+Inf" bucket, and _count equal to the +Inf
//     bucket's value.

// promFamily accumulates what the linter has seen of one metric family.
type promFamily struct {
	help, typ   string
	samples     int
	buckets     map[string][]promBucket // histogram buckets by non-le label set
	infCount    map[string]float64      // +Inf bucket value by label set
	countSample map[string]float64      // _count value by label set
}

// promBucket is one histogram bucket sample.
type promBucket struct {
	le    float64
	count float64
	raw   string // the le value as written, for messages
}

// LintExposition checks Prometheus text exposition read from r and
// returns every violation found (nil means clean).
func LintExposition(r io.Reader) []error {
	var errs []error
	errorf := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	fams := map[string]*promFamily{}
	fam := func(name string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{
				buckets:     map[string][]promBucket{},
				infCount:    map[string]float64{},
				countSample: map[string]float64{},
			}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			f := fam(name)
			if f.help != "" {
				errorf(lineNo, "duplicate HELP for %s", name)
			}
			if f.typ != "" {
				errorf(lineNo, "HELP for %s after its TYPE (want HELP first)", name)
			}
			if f.samples > 0 {
				errorf(lineNo, "HELP for %s after its samples", name)
			}
			f.help = rest
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				errorf(lineNo, "malformed TYPE line %q", line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				errorf(lineNo, "unknown metric type %q for %s", typ, name)
			}
			f := fam(name)
			if f.typ != "" {
				errorf(lineNo, "duplicate TYPE for %s", name)
			}
			if f.samples > 0 {
				errorf(lineNo, "TYPE for %s after its samples", name)
			}
			f.typ = typ
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				errorf(lineNo, "counter %s does not end in _total", name)
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are fine.
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				errorf(lineNo, "%v", err)
				continue
			}
			base, sample := baseName(name, fams)
			f, ok := fams[base]
			if !ok || f.typ == "" {
				errorf(lineNo, "sample %s without a preceding TYPE", name)
				continue
			}
			f.samples++
			if f.typ != "histogram" {
				continue
			}
			le, rest := splitLE(labels)
			switch sample {
			case "_bucket":
				if le == "" {
					errorf(lineNo, "%s_bucket without an le label", base)
					continue
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						errorf(lineNo, "%s_bucket le=%q is not a float", base, le)
						continue
					}
				} else {
					f.infCount[rest] = value
				}
				f.buckets[rest] = append(f.buckets[rest], promBucket{le: bound, count: value, raw: le})
			case "_count":
				f.countSample[rest] = value
			case "_sum":
				// Nothing to cross-check against on its own.
			default:
				errorf(lineNo, "histogram %s has non-histogram sample %s", base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}

	// Whole-family checks, in name order for deterministic output.
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.help != "" && f.typ == "" {
			errs = append(errs, fmt.Errorf("%s: HELP without a TYPE", name))
		}
		// A TYPE with no samples yet is legal: label vectors only
		// materialize children on first use.
		if f.typ != "histogram" {
			continue
		}
		labelSets := make([]string, 0, len(f.buckets))
		for labels := range f.buckets {
			labelSets = append(labelSets, labels)
		}
		sort.Strings(labelSets)
		for _, labels := range labelSets {
			bs := f.buckets[labels]
			at := name
			if labels != "" {
				at = name + "{" + labels + "}"
			}
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					errs = append(errs, fmt.Errorf("%s: le buckets out of order (%s after %s)",
						at, bs[i].raw, bs[i-1].raw))
				}
				if bs[i].count < bs[i-1].count {
					errs = append(errs, fmt.Errorf("%s: bucket counts not cumulative (le=%s drops to %g)",
						at, bs[i].raw, bs[i].count))
				}
			}
			inf, ok := f.infCount[labels]
			if !ok {
				errs = append(errs, fmt.Errorf("%s: missing le=\"+Inf\" bucket", at))
				continue
			}
			if count, ok := f.countSample[labels]; ok && count != inf {
				errs = append(errs, fmt.Errorf("%s: _count %g != +Inf bucket %g", at, count, inf))
			}
		}
	}
	return errs
}

// baseName strips a histogram sample suffix when the base is a known
// histogram family; the second result is the suffix ("" for plain
// samples).
func baseName(name string, fams map[string]*promFamily) (string, string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && f.typ == "histogram" {
			return base, suffix
		}
	}
	return name, ""
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", 0, fmt.Errorf("sample %q has no value", line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %q: bad value: %v", line, err)
	}
	return name, labels, value, nil
}

// splitLE removes the le label from a label list, returning its value and
// the remaining labels (still in their original order).
func splitLE(labels string) (le, rest string) {
	var kept []string
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabels splits a rendered label list on commas outside quotes.
func splitLabels(labels string) []string {
	var out []string
	var sb strings.Builder
	inQuotes, escaped := false, false
	for _, r := range labels {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuotes = !inQuotes
		case r == ',' && !inQuotes:
			out = append(out, sb.String())
			sb.Reset()
			continue
		}
		sb.WriteRune(r)
	}
	if sb.Len() > 0 {
		out = append(out, sb.String())
	}
	return out
}
