package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live tracers must be nil (the disabled sentinel)")
	}
	c := &Collector{}
	if Multi(nil, c, nil) != Tracer(c) {
		t.Error("Multi of one live tracer must return it unwrapped")
	}
	c2 := &Collector{}
	m := Multi(c, nil, c2)
	m.Emit(&Event{Type: EvPhase, Name: "x"})
	if c.Len() != 1 || c2.Len() != 1 {
		t.Errorf("fan-out missed a sink: %d, %d", c.Len(), c2.Len())
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := &Collector{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Emit(&Event{Type: EvPass})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Errorf("lost events: %d", c.Len())
	}
}

func TestJSONLWriterOmitTimings(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.OmitTimings = true
	orig := &Event{Type: EvPass, Name: "cse", Func: "main", Changed: true,
		RTLsBefore: 10, RTLsAfter: 8, TimeNS: 123456789, DurNS: 42}
	w.Emit(orig)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if orig.TimeNS == 0 {
		t.Error("OmitTimings must copy, not mutate the caller's event")
	}
	line := buf.String()
	if strings.Contains(line, "t_ns") || strings.Contains(line, "dur_ns") {
		t.Errorf("timings leaked: %s", line)
	}
	var back Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "cse" || back.RTLsAfter != 8 || !back.Changed {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestJSONLWriterOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit(&Event{Type: EvPhase, Name: "compile"})
	line := strings.TrimSpace(buf.String())
	if line != `{"type":"phase","name":"compile"}` {
		t.Errorf("unused fields not omitted: %s", line)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = json.Unmarshal([]byte("{"), &struct{}{})

func TestJSONLWriterStickyError(t *testing.T) {
	w := NewJSONLWriter(failWriter{})
	w.Emit(&Event{Type: EvPhase})
	if w.Err() == nil {
		t.Fatal("write error not reported")
	}
	first := w.Err()
	w.Emit(&Event{Type: EvPhase})
	if w.Err() != first {
		t.Error("error not sticky")
	}
}

func TestChromeWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeWriter(&buf)
	w.Emit(&Event{Type: EvPass, Name: "cse", Func: "f", TimeNS: 5_000_000, DurNS: 2_000_000})
	w.Emit(&Event{Type: EvDecision, Func: "f", Block: "L1", Target: "L9",
		Outcome: OutApplied, TimeNS: 6_000_000})
	w.Emit(&Event{Type: EvPass, Name: "tiny", Func: "f", TimeNS: 7_000_000, DurNS: 10})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var all []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &all); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	// Drop the thread_name metadata; this test covers the event slices.
	var evs []map[string]any
	for _, e := range all {
		if e["ph"] != "M" {
			evs = append(evs, e)
		}
	}
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	if evs[0]["ph"] != "X" || evs[0]["dur"] != float64(2000) {
		t.Errorf("span not a complete slice: %v", evs[0])
	}
	if evs[0]["ts"] != float64(0) {
		t.Errorf("timestamps not rebased to zero: %v", evs[0])
	}
	if evs[1]["ph"] != "i" || evs[1]["s"] != "t" {
		t.Errorf("durationless event not an instant: %v", evs[1])
	}
	if evs[2]["dur"] != float64(1) {
		t.Errorf("sub-microsecond slice not clamped to 1us: %v", evs[2])
	}
	if name, _ := evs[1]["name"].(string); !strings.Contains(name, "L1") || !strings.Contains(name, "L9") {
		t.Errorf("decision display name misses the jump: %v", evs[1])
	}
}

func TestExplainNamesRollbacks(t *testing.T) {
	events := []*Event{
		{Type: EvDecision, Func: "main", Block: "L2", Target: "L7",
			Heuristic: "shortest", Outcome: OutApplied,
			Candidates: []Candidate{
				{Kind: KindReturns, RTLs: 4, Blocks: 2, RolledBack: true},
				{Kind: KindReturns, RTLs: 9, Blocks: 4, LoopCompleted: true, Applied: true},
			}},
		{Type: EvDecision, Func: "main", Block: "L5", Target: "L6", Outcome: OutDeleted},
		{Type: EvPass, Name: "cse", Func: "main", Changed: true, RTLsBefore: 12, RTLsAfter: 10},
	}
	var buf bytes.Buffer
	Explain(&buf, events)
	out := buf.String()
	for _, want := range []string{
		"ROLLED BACK (irreducible)",
		"loop-completed",
		"applied returns (+9 rtls)",
		"jump deleted",
		"1 reducibility rollbacks",
		"cse",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output misses %q:\n%s", want, out)
		}
	}
}

func TestExplainEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	Explain(&buf, nil)
	if !strings.Contains(buf.String(), "no replication decisions") {
		t.Errorf("empty trace not handled: %s", buf.String())
	}
}
