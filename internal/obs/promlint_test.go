package obs

import (
	"strings"
	"testing"
)

func lintString(s string) []error { return LintExposition(strings.NewReader(s)) }

func TestLintCleanExposition(t *testing.T) {
	clean := `# HELP req_total requests
# TYPE req_total counter
req_total{kind="compile"} 4
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{kind="x",le="0.5"} 1
lat_seconds_bucket{kind="x",le="2"} 3
lat_seconds_bucket{kind="x",le="+Inf"} 4
lat_seconds_sum{kind="x"} 2.5
lat_seconds_count{kind="x"} 4
# TYPE up gauge
up 1
`
	if errs := lintString(clean); len(errs) != 0 {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestLintRegistryOutputIsClean(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.Gauge("g", "g").Set(2)
	r.Histogram("h", "h", []float64{0.1, 1}).Observe(0.5)
	r.CounterVec("cv_total", "cv", []string{"k"}).WithLabelValues("x").Inc()
	r.HistogramVec("hv", "hv", []string{"k"}, nil).WithLabelValues("x").Observe(0.2)
	var sb strings.Builder
	r.WriteProm(&sb)
	if errs := LintExposition(strings.NewReader(sb.String())); len(errs) != 0 {
		t.Fatalf("registry exposition fails lint: %v\n%s", errs, sb.String())
	}
}

func TestLintViolations(t *testing.T) {
	for _, tc := range []struct {
		name string
		expo string
		want string // substring expected in some error
	}{
		{"counter without _total",
			"# TYPE bad counter\nbad 1\n", "does not end in _total"},
		{"sample without TYPE",
			"orphan 1\n", "without a preceding TYPE"},
		{"duplicate TYPE",
			"# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"duplicate HELP",
			"# HELP x one\n# HELP x two\n# TYPE x gauge\nx 1\n", "duplicate HELP"},
		{"HELP after TYPE",
			"# TYPE x gauge\n# HELP x late\nx 1\n", "after its TYPE"},
		{"TYPE after samples",
			"# TYPE x gauge\nx 1\n# TYPE y gauge\ny 1\n# HELP x late\n", "after its samples"},
		{"unknown type",
			"# TYPE x widget\nx 1\n", "unknown metric type"},
		{"HELP without TYPE",
			"# HELP x lonely\n", "HELP without a TYPE"},
		{"non-float le",
			"# TYPE h histogram\nh_bucket{le=\"wide\"} 1\n", "is not a float"},
		{"bucket without le",
			"# TYPE h histogram\nh_bucket{kind=\"x\"} 1\n", "without an le label"},
		{"le out of order",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\n",
			"out of order"},
		{"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n",
			"not cumulative"},
		{"missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "missing le=\"+Inf\""},
		{"count mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n", "_count 4 != +Inf bucket 3"},
		{"bad value",
			"# TYPE x gauge\nx notanumber\n", "bad value"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			errs := lintString(tc.expo)
			if len(errs) == 0 {
				t.Fatalf("lint accepted bad exposition:\n%s", tc.expo)
			}
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("no error containing %q, got: %v", tc.want, errs)
		})
	}
}

func TestLintLabelSetsIndependent(t *testing.T) {
	// Two label sets interleaved: each must be checked on its own.
	expo := `# TYPE h histogram
h_bucket{k="a",le="1"} 1
h_bucket{k="b",le="1"} 9
h_bucket{k="a",le="+Inf"} 2
h_bucket{k="b",le="+Inf"} 9
h_count{k="a"} 2
h_count{k="b"} 9
`
	if errs := lintString(expo); len(errs) != 0 {
		t.Fatalf("interleaved label sets flagged: %v", errs)
	}
}
