package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestChromeNames covers the display-name builder across every event
// type, including the default branch.
func TestChromeNames(t *testing.T) {
	for _, tc := range []struct {
		ev   Event
		want string
	}{
		{Event{Type: EvPass, Func: "main", Name: "cse"}, "main cse"},
		{Event{Type: EvPhase, Name: "optimize"}, "optimize"},
		{Event{Type: EvDecision, Func: "f", Block: "L1", Target: "L2", Outcome: OutDeleted},
			"f: jump L1 -> L2 (deleted)"},
		{Event{Type: EvBlock, Func: "f", Block: "L3", Count: 7}, "f L3 ×7"},
		{Event{Type: EvHot, Func: "f", Block: "L3", Count: 9}, "f L3 ×9"},
		{Event{Type: EvVerify, Func: "f", Rule: "cc-pairing", Name: "regalloc"},
			"f: cc-pairing violated after regalloc"},
		{Event{Type: EvFinding}, "finding"},
	} {
		if got := chromeName(&tc.ev); got != tc.want {
			t.Errorf("chromeName(%s) = %q, want %q", tc.ev.Type, got, tc.want)
		}
	}
}

// TestChromeEscaping feeds names that need JSON escaping and checks the
// output is still a valid trace with the text intact.
func TestChromeEscaping(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeWriter(&buf)
	nasty := `say "hi"` + "\n\\backslash"
	w.Emit(&Event{Type: EvPhase, Name: nasty, TimeNS: 1000})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("escaped name broke the JSON: %v\n%s", err, buf.String())
	}
	found := false
	for _, e := range evs {
		if e["name"] == nasty {
			found = true
		}
	}
	if !found {
		t.Fatalf("name did not round-trip through escaping:\n%s", buf.String())
	}
}

// TestChromeTIDMapping checks the pid/tid model: one pid, lane 0 for
// function-less events, one lane per function in first-seen order, and a
// thread_name metadata record per lane.
func TestChromeTIDMapping(t *testing.T) {
	var buf bytes.Buffer
	w := NewChromeWriter(&buf)
	w.Emit(&Event{Type: EvPhase, Name: "queue-wait", TimeNS: 1000, DurNS: 1000})
	w.Emit(&Event{Type: EvPass, Name: "cse", Func: "alpha", TimeNS: 2000, DurNS: 1000})
	w.Emit(&Event{Type: EvPass, Name: "cse", Func: "beta", TimeNS: 3000, DurNS: 1000})
	w.Emit(&Event{Type: EvPass, Name: "dead-code", Func: "alpha", TimeNS: 4000, DurNS: 1000})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	laneNames := map[int]string{}
	tidOf := map[string]int{}
	for _, e := range evs {
		if e.PID != chromePID {
			t.Fatalf("event %q on pid %d, want %d", e.Name, e.PID, chromePID)
		}
		if e.Ph == "M" {
			if e.Name != "thread_name" {
				t.Fatalf("unexpected metadata %q", e.Name)
			}
			laneNames[e.TID] = e.Args["name"].(string)
			continue
		}
		if fn, ok := e.Args["func"].(string); ok {
			tidOf[fn] = e.TID
		} else {
			tidOf[""] = e.TID
		}
	}
	if laneNames[0] != serviceLane {
		t.Fatalf("lane 0 named %q, want %q", laneNames[0], serviceLane)
	}
	if tidOf[""] != 0 {
		t.Fatalf("function-less event on tid %d, want 0", tidOf[""])
	}
	if tidOf["alpha"] != 1 || tidOf["beta"] != 2 {
		t.Fatalf("first-seen lane order broken: alpha=%d beta=%d", tidOf["alpha"], tidOf["beta"])
	}
	if laneNames[1] != "alpha" || laneNames[2] != "beta" {
		t.Fatalf("lane names %v, want alpha/beta on 1/2", laneNames)
	}
}

// errWriter fails every write.
type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }

// TestChromeCloseError propagates the sink's write error out of Close.
func TestChromeCloseError(t *testing.T) {
	sentinel := errors.New("disk full")
	w := NewChromeWriter(errWriter{sentinel})
	w.Emit(&Event{Type: EvPhase, Name: "optimize", TimeNS: 1000, DurNS: 5})
	if err := w.Close(); !errors.Is(err, sentinel) {
		t.Fatalf("Close = %v, want the writer's error", err)
	}
}

// TestChromeEmptyClose writes a valid (metadata-only) array even with no
// events.
func TestChromeEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	if err := NewChromeWriter(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	var evs []map[string]any
	if err := json.Unmarshal([]byte(out), &evs); err != nil {
		t.Fatalf("empty trace is not a JSON array: %v", err)
	}
}
