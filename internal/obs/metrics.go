package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file adds the service-facing half of the telemetry layer: cheap
// always-on counters, gauges and histograms collected into a Registry and
// rendered in the Prometheus text exposition format. Where the Tracer
// model (obs.go) records *what the compiler did* to one program, metrics
// record *what the process is doing* over time — request totals, cache
// hit ratios, queue depths, latency distributions.
//
// All metric types are safe for concurrent use and update via atomics, so
// hot paths pay one atomic add per observation.

// A Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into cumulative buckets with fixed
// upper bounds, plus a running sum and count — enough to render the
// Prometheus histogram form and derive mean latency.
//
// Writers serialize on a mutex and bracket their update with a sequence
// counter (a seqlock); Snapshot readers retry until they observe a quiet
// even sequence, so a scrape always sees sum, count and buckets from one
// consistent instant without ever blocking an Observe.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows

	mu     sync.Mutex    // serializes writers; readers never take it
	seq    atomic.Uint64 // odd while a write is in flight
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// DefaultLatencyBuckets suits compile/measure jobs: 1ms up to 60s.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// ThroughputBuckets suits compile-throughput observations in RTLs/sec:
// roughly log-spaced from a pathological 100 RTLs/sec (the matrix engine
// on the stress function) up past the small-program regime where the
// per-compile fixed cost dominates (see BENCH_baseline.json).
var ThroughputBuckets = []float64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000,
}

// NewHistogram builds a histogram with the given bucket upper bounds
// (sorted ascending; a +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.seq.Add(1) // odd: update in flight
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Store(math.Float64bits(math.Float64frombits(h.sum.Load()) + v))
	h.seq.Add(1) // even: consistent again
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is one consistent observation of a histogram: the
// per-bucket counts (the +Inf bucket last), the sum and the count all
// belong to the same instant, so cumulating Counts always lands exactly
// on Count.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (ascending; +Inf implicit).
	Bounds []float64
	// Counts are per-bucket observation counts, len(Bounds)+1 with the
	// +Inf bucket last. Not cumulative.
	Counts []int64
	// Sum and Count are the running sum and total observation count.
	Sum   float64
	Count int64
}

// Snapshot returns a consistent view of the histogram (see the type
// comment on Histogram for the seqlock protocol).
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	for {
		s1 := h.seq.Load()
		if s1%2 != 0 {
			runtime.Gosched()
			continue
		}
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		sum := math.Float64frombits(h.sum.Load())
		count := h.count.Load()
		if h.seq.Load() == s1 {
			return HistogramSnapshot{Bounds: h.bounds, Counts: counts, Sum: sum, Count: count}
		}
	}
}

// metric is one registered entry; write renders it in exposition format.
type metric struct {
	name, help, typ string
	write           func(w io.Writer, name string)
}

// A Registry holds named metrics and renders them in registration order.
// Metric names must be unique; registering a duplicate panics (it is a
// programming error, like a duplicate flag).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic("obs: duplicate metric " + m.name)
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time (for counts maintained elsewhere, e.g. cache hits).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	}})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render time
// (for instantaneous values like queue depth).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}})
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := NewHistogram(bounds)
	r.register(metric{name, help, "histogram", func(w io.Writer, n string) {
		writeHistogram(w, n, "", h.Snapshot())
	}})
	return h
}

// writeHistogram renders one histogram snapshot in exposition format.
// labelPrefix is either empty or a rendered `k="v",...,` label list
// (trailing comma included) that precedes the le label.
func writeHistogram(w io.Writer, name, labelPrefix string, s HistogramSnapshot) {
	var cum int64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, formatFloat(b), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, cum)
	if labelPrefix != "" {
		labelPrefix = "{" + strings.TrimSuffix(labelPrefix, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelPrefix, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelPrefix, s.Count)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every metric in the Prometheus text exposition
// format, in registration order.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.write(w, m.name)
	}
}
