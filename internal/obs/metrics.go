package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file adds the service-facing half of the telemetry layer: cheap
// always-on counters, gauges and histograms collected into a Registry and
// rendered in the Prometheus text exposition format. Where the Tracer
// model (obs.go) records *what the compiler did* to one program, metrics
// record *what the process is doing* over time — request totals, cache
// hit ratios, queue depths, latency distributions.
//
// All metric types are safe for concurrent use and update via atomics, so
// hot paths pay one atomic add per observation.

// A Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into cumulative buckets with fixed
// upper bounds, plus a running sum and count — enough to render the
// Prometheus histogram form and derive mean latency.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
	count  atomic.Int64
}

// DefaultLatencyBuckets suits compile/measure jobs: 1ms up to 60s.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// ThroughputBuckets suits compile-throughput observations in RTLs/sec:
// roughly log-spaced from a pathological 100 RTLs/sec (the matrix engine
// on the stress function) up past the small-program regime where the
// per-compile fixed cost dominates (see BENCH_baseline.json).
var ThroughputBuckets = []float64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000,
}

// NewHistogram builds a histogram with the given bucket upper bounds
// (sorted ascending; a +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered entry; write renders it in exposition format.
type metric struct {
	name, help, typ string
	write           func(w io.Writer, name string)
}

// A Registry holds named metrics and renders them in registration order.
// Metric names must be unique; registering a duplicate panics (it is a
// programming error, like a duplicate flag).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{names: map[string]bool{}} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.name] {
		panic("obs: duplicate metric " + m.name)
	}
	r.names[m.name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, c.Value())
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time (for counts maintained elsewhere, e.g. cache hits).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(metric{name, help, "counter", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, g.Value())
	}})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render time
// (for instantaneous values like queue depth).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(metric{name, help, "gauge", func(w io.Writer, n string) {
		fmt.Fprintf(w, "%s %d\n", n, fn())
	}})
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := NewHistogram(bounds)
	r.register(metric{name, help, "histogram", func(w io.Writer, n string) {
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %s\n", n, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count())
	}})
	return h
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders every metric in the Prometheus text exposition
// format, in registration order.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		m.write(w, m.name)
	}
}
