package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "requests by kind", []string{"kind", "result"})
	// Create children out of sorted order to prove render order is
	// deterministic by label values, not creation order.
	cv.WithLabelValues("measure", "miss").Add(2)
	cv.WithLabelValues("compile", "hit").Inc()
	cv.WithLabelValues("compile", "miss").Add(3)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	wantOrder := []string{
		`req_total{kind="compile",result="hit"} 1`,
		`req_total{kind="compile",result="miss"} 3`,
		`req_total{kind="measure",result="miss"} 2`,
	}
	last := -1
	for _, w := range wantOrder {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
		if i < last {
			t.Fatalf("series out of order (%q before its predecessor):\n%s", w, out)
		}
		last = i
	}
	// Same label values return the same child.
	if cv.WithLabelValues("compile", "hit").Value() != 1 {
		t.Fatal("WithLabelValues did not return the existing child")
	}
}

func TestVecDeterministicAcrossCreationOrder(t *testing.T) {
	render := func(order [][2]string) string {
		r := NewRegistry()
		gv := r.GaugeVec("g", "", []string{"a", "b"})
		for _, o := range order {
			gv.WithLabelValues(o[0], o[1]).Set(1)
		}
		var sb strings.Builder
		r.WriteProm(&sb)
		return sb.String()
	}
	a := render([][2]string{{"x", "1"}, {"y", "2"}, {"x", "0"}})
	b := render([][2]string{{"x", "0"}, {"y", "2"}, {"x", "1"}})
	if a != b {
		t.Fatalf("exposition depends on creation order:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "latency by kind", []string{"kind"}, []float64{0.5, 2})
	hv.WithLabelValues("compile").Observe(0.1)
	hv.WithLabelValues("compile").Observe(1)
	hv.WithLabelValues("grid").Observe(3)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{kind="compile",le="0.5"} 1`,
		`lat_seconds_bucket{kind="compile",le="2"} 2`,
		`lat_seconds_bucket{kind="compile",le="+Inf"} 2`,
		`lat_seconds_sum{kind="compile"} 1.1`,
		`lat_seconds_count{kind="compile"} 2`,
		`lat_seconds_bucket{kind="grid",le="+Inf"} 1`,
		`lat_seconds_count{kind="grid"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition(strings.NewReader(out)); len(errs) != 0 {
		t.Fatalf("vec exposition fails its own lint: %v", errs)
	}
}

func TestVecLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("e_total", "", []string{"v"})
	cv.WithLabelValues(`a"b` + "\n" + `c\d`).Inc()
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	if !strings.Contains(out, `v="a\"b\nc\\d"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("x_total", "", []string{"a", "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	cv.WithLabelValues("only-one")
}

// TestVecConcurrent is meaningful under -race.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c_total", "", []string{"i"})
	hv := r.HistogramVec("h", "", []string{"i"}, []float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := string(rune('a' + g%4))
			for j := 0; j < 500; j++ {
				cv.WithLabelValues(lbl).Inc()
				hv.WithLabelValues(lbl).Observe(float64(j % 3))
			}
		}(g)
	}
	var render sync.WaitGroup
	render.Add(1)
	go func() {
		defer render.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WriteProm(&sb)
		}
	}()
	wg.Wait()
	render.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += cv.WithLabelValues(l).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
}
