// Package obs is the compiler's zero-dependency telemetry layer: a small
// structured-event model (pass spans, replication decisions, VM execution
// profiles) with pluggable sinks — an in-memory collector, a JSONL stream
// writer, and a Chrome trace_event writer for about://tracing.
//
// The disabled state is a nil Tracer: instrumented code guards every event
// construction with a single nil check, so hot paths pay nothing when
// telemetry is off.
package obs

// Event types. Every event carries Type plus the subset of fields its type
// defines; unused fields are omitted from serialized forms.
const (
	// EvPhase is a coarse span around one compilation stage of a
	// measurement: "compile", "optimize", "layout", "run".
	EvPhase = "phase"
	// EvPass is one optimization pass applied to one function: name,
	// pipeline stage and iteration, changed flag, RTL/block deltas, timing.
	EvPass = "pass"
	// EvDecision is one unconditional jump considered for replication: the
	// candidate sequences with their RTL costs, the heuristic in force,
	// which candidates were rolled back by the reducibility check, and the
	// outcome.
	EvDecision = "decision"
	// EvBlock is a per-block dynamic execution count from the VM profile.
	EvBlock = "block"
	// EvHot is one entry of the hot-path summary: a top block by executed
	// instructions, with its share of the total.
	EvHot = "hot"
	// EvFinding is one differential-oracle violation (internal/difftest):
	// the machine/level cell it occurred in, the violation kind in Outcome,
	// the generator seed (when the program was generated), and a one-line
	// detail in Name. cmd/fuzzjump streams these as its JSONL failure
	// report.
	EvFinding = "finding"
	// EvVerify is one semantic-verifier violation found by verify-each mode
	// (internal/verify via pipeline.Config.VerifyEach): the offending pass
	// in Name (with Stage/Iter placing it in the Figure-3 pipeline), the
	// function and block, the rule id in Rule, and a one-line explanation
	// in Detail.
	EvVerify = "verify"
)

// Decision outcomes.
const (
	// OutApplied: a candidate sequence was spliced in for the jump.
	OutApplied = "applied"
	// OutDeleted: the jump targeted the positionally next block and was
	// simply deleted.
	OutDeleted = "deleted"
	// OutNoCandidates: no replication sequence exists (e.g. a jump into an
	// infinite loop); the jump is kept.
	OutNoCandidates = "no-candidates"
	// OutRolledBack: every candidate was undone by the reducibility check;
	// the jump is kept and blacklisted for this invocation.
	OutRolledBack = "rolled-back"
)

// Candidate kinds.
const (
	// KindReturns: a sequence ending in a return (or, with the §6
	// extension, an indirect jump) — the paper's "favoring returns".
	KindReturns = "returns"
	// KindLoops: a sequence reconnecting to the block after the jump —
	// the paper's "favoring loops".
	KindLoops = "loops"
	// KindRotation: the conventional LOOPS-level loop-condition rotation
	// (a reversed copy of a pure termination test).
	KindRotation = "rotation"
	// KindFold: the DUPS-level conditional elimination — a test block
	// duplicated onto an incoming edge with its branch folded to the
	// decided transfer.
	KindFold = "fold"
)

// Candidate describes one replication sequence considered for a jump.
type Candidate struct {
	Kind string `json:"kind"`
	// RTLs is the sequence's replication cost in copied RTLs; Blocks the
	// number of blocks it copies.
	RTLs   int `json:"rtls"`
	Blocks int `json:"blocks"`
	// LoopCompleted marks a step-3 variant: a natural loop on the path was
	// pulled in whole to keep the graph reducible.
	LoopCompleted bool `json:"loop_completed,omitempty"`
	// RolledBack marks a candidate that was spliced and then undone because
	// the result was irreducible (step 6).
	RolledBack bool `json:"rolled_back,omitempty"`
	// Applied marks the candidate that was kept.
	Applied bool `json:"applied,omitempty"`
}

// Event is one telemetry event. The Type constants above document which
// fields each event kind populates.
type Event struct {
	Type string `json:"type"`
	// Job is the service job the event belongs to (stamped by WithJob;
	// empty for CLI traces).
	Job string `json:"job,omitempty"`
	// Name is the span name: the pass name for EvPass, the stage name for
	// EvPhase.
	Name string `json:"name,omitempty"`
	// Func is the function the event concerns.
	Func string `json:"func,omitempty"`

	// Stage and Iter place an EvPass event in the Figure-3 pipeline:
	// "prologue" (before the do-while loop), "loop" with Iter >= 1, or
	// "finish" (register allocation and final cleanups).
	Stage string `json:"stage,omitempty"`
	Iter  int    `json:"iter,omitempty"`
	// Changed reports whether the pass modified the function.
	Changed bool `json:"changed,omitempty"`
	// RTL and block counts around a pass (or phase).
	RTLsBefore   int `json:"rtls_before,omitempty"`
	RTLsAfter    int `json:"rtls_after,omitempty"`
	BlocksBefore int `json:"blocks_before,omitempty"`
	BlocksAfter  int `json:"blocks_after,omitempty"`

	// EvDecision: the jump considered (Block's terminator targeting
	// Target), the heuristic in force, the candidates in attempt order,
	// and the outcome.
	Block      string      `json:"block,omitempty"`
	Target     string      `json:"target,omitempty"`
	Heuristic  string      `json:"heuristic,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
	Outcome    string      `json:"outcome,omitempty"`

	// EvFinding: the measurement cell the oracle violation occurred in
	// (Machine/Level), and the generator seed that produced the program
	// (0 when the input came from elsewhere, e.g. a fuzzing corpus).
	Machine string `json:"machine,omitempty"`
	Level   string `json:"level,omitempty"`
	Seed    int64  `json:"seed,omitempty"`

	// EvVerify: the semantic-verifier rule that fired and its one-line
	// explanation (the pass lives in Name, the location in Func/Block).
	Rule   string `json:"rule,omitempty"`
	Detail string `json:"detail,omitempty"`

	// EvBlock / EvHot: dynamic execution counts. Count is the number of
	// times the block was entered, Insts the instructions it executed in
	// total, Percent Insts' share of the program's executed instructions.
	Count   int64   `json:"count,omitempty"`
	Insts   int64   `json:"insts,omitempty"`
	Percent float64 `json:"percent,omitempty"`

	// TimeNS is the event's wall-clock start (UnixNano); DurNS its
	// duration. Both are stripped by sinks configured for deterministic
	// output.
	TimeNS int64 `json:"t_ns,omitempty"`
	DurNS  int64 `json:"dur_ns,omitempty"`
}

// Tracer consumes telemetry events. Implementations must be safe for
// concurrent use; emitted events must not be mutated afterwards by either
// side. A nil Tracer means telemetry is disabled — instrumented code checks
// for nil before building an event.
type Tracer interface {
	Emit(ev *Event)
}

// Multi fans events out to every non-nil tracer. It returns nil when none
// remain (so the result still works as the "disabled" sentinel), the tracer
// itself when exactly one remains, and a fan-out otherwise.
func Multi(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}

type multiTracer []Tracer

func (m multiTracer) Emit(ev *Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// WithJob returns a tracer that stamps every event with the given job ID
// before forwarding to next (on a copy — emitted events are immutable by
// the Tracer contract). A nil next yields nil, preserving the disabled
// convention.
func WithJob(job string, next Tracer) Tracer {
	if next == nil {
		return nil
	}
	return jobTracer{job: job, next: next}
}

type jobTracer struct {
	job  string
	next Tracer
}

func (t jobTracer) Emit(ev *Event) {
	cp := *ev
	cp.Job = t.job
	t.next.Emit(&cp)
}
