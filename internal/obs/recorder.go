package obs

import "sync"

// FlightRecorder is an always-on, bounded ring-buffer sink: it retains
// the last N events emitted anywhere in the process, each stamped with a
// monotone sequence number, and indexes them by job ID so the debug plane
// can answer "what did job X just do?" without per-job sinks. Older
// events fall off the ring; the per-job index is pruned in step, so
// memory stays O(N) regardless of uptime.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []*RecordedEvent // ring, position = seq % len(buf)
	next  uint64           // sequence number of the next event
	byJob map[string][]uint64
}

// RecordedEvent is one flight-recorder entry: the event plus its global
// sequence number (the JSONL key of GET /debug/events).
type RecordedEvent struct {
	Seq uint64 `json:"seq"`
	*Event
}

// DefaultFlightRecorderSize is the ring capacity used when none is given.
const DefaultFlightRecorderSize = 4096

// NewFlightRecorder returns a recorder retaining the last size events
// (<= 0 = DefaultFlightRecorderSize).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{
		buf:   make([]*RecordedEvent, size),
		byJob: map[string][]uint64{},
	}
}

// Emit implements Tracer. The event is retained as-is (events are
// immutable once emitted, per the Tracer contract).
func (r *FlightRecorder) Emit(ev *Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	pos := r.next % uint64(len(r.buf))
	if old := r.buf[pos]; old != nil && old.Job != "" {
		// The evicted event is the globally oldest one, so within its
		// job's (ascending) index it is necessarily the head entry.
		seqs := r.byJob[old.Job]
		if len(seqs) > 0 && seqs[0] == old.Seq {
			seqs = seqs[1:]
			if len(seqs) == 0 {
				delete(r.byJob, old.Job)
			} else {
				r.byJob[old.Job] = seqs
			}
		}
	}
	rec := &RecordedEvent{Seq: r.next, Event: ev}
	r.buf[pos] = rec
	if ev.Job != "" {
		r.byJob[ev.Job] = append(r.byJob[ev.Job], r.next)
	}
	r.next++
}

// Total is the number of events ever emitted (retained or not).
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Cap is the ring capacity.
func (r *FlightRecorder) Cap() int { return len(r.buf) }

// Tail returns up to n most recent events in emission order, filtered to
// one job when job is non-empty (n <= 0 = everything retained).
func (r *FlightRecorder) Tail(n int, job string) []*RecordedEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if job != "" {
		seqs := r.byJob[job]
		if n > 0 && len(seqs) > n {
			seqs = seqs[len(seqs)-n:]
		}
		out := make([]*RecordedEvent, 0, len(seqs))
		for _, seq := range seqs {
			out = append(out, r.buf[seq%uint64(len(r.buf))])
		}
		return out
	}
	retained := uint64(len(r.buf))
	if r.next < retained {
		retained = r.next
	}
	if n > 0 && uint64(n) < retained {
		retained = uint64(n)
	}
	out := make([]*RecordedEvent, 0, retained)
	for seq := r.next - retained; seq < r.next; seq++ {
		out = append(out, r.buf[seq%uint64(len(r.buf))])
	}
	return out
}
