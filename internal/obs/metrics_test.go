package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	g := r.Gauge("g", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v, want 56.05", got)
	}
	// Bucket occupancy: (<=0.1)=1, (<=1)=2, (<=10)=1, +Inf=1.
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	// Boundary value lands in its bucket (le is inclusive).
	h.Observe(0.1)
	if got := h.counts[0].Load(); got != 2 {
		t.Fatalf("le=0.1 bucket after boundary observe = %d, want 2", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Add(3)
	r.GaugeFunc("depth", "queue depth", func() int64 { return 9 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 3",
		"# HELP depth queue depth",
		"depth 9",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 1.1",
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestMetricsConcurrent is meaningful under -race: all metric types must
// take concurrent updates.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 6))
			}
		}()
	}
	var render sync.WaitGroup
	render.Add(1)
	go func() {
		defer render.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WriteProm(&sb)
		}
	}()
	wg.Wait()
	render.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

// TestHistogramSnapshotConsistent is the torn-read regression test: under
// concurrent observation of a fixed value, every snapshot must be
// internally consistent — buckets summing exactly to count, and sum equal
// to count times the observed value. Before the seqlock, a scrape could
// see count updated but sum (or a bucket) not yet.
func TestHistogramSnapshotConsistent(t *testing.T) {
	h := NewHistogram([]float64{0.5, 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(1)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := h.Snapshot()
		var cum int64
		for _, c := range s.Counts {
			cum += c
		}
		if cum != s.Count {
			t.Fatalf("torn snapshot: buckets sum to %d, count %d", cum, s.Count)
		}
		if s.Sum != float64(s.Count) {
			t.Fatalf("torn snapshot: sum %v with count %d (observing 1.0)", s.Sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}
