package machine

import (
	"fmt"
	"strings"
)

// all is the machine registry in canonical table order (the paper lists
// SPARC first in Table 5; the x86 extension comes last).
var all = []*Machine{SPARC, M68020, X86}

// All returns the registered machines in canonical table order. Tools that
// sweep the machine axis (bench grids, the difftest oracle, fuzz
// campaigns, the daemon) range over this instead of hard-coding a model
// list, so a new machine reaches every experiment from one place.
func All() []*Machine {
	// A copy: callers sort and slice their machine lists.
	ms := make([]*Machine, len(all))
	copy(ms, all)
	return ms
}

// Names returns the canonical machine names in registry order.
func Names() []string {
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name
	}
	return names
}

// ByName resolves a machine name or alias (case-insensitive) to its model.
// Every tool that accepts a machine on a flag or wire field resolves it
// here, so the alias set stays uniform and a new machine cannot silently
// fall into a boolean-keyed default.
func ByName(name string) (*Machine, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "68020", "68k", "m68020", "m68k":
		return M68020, nil
	case "sparc":
		return SPARC, nil
	case "x86", "i386", "386", "ia32":
		return X86, nil
	}
	return nil, fmt.Errorf("machine: unknown machine %q (want %s)",
		name, strings.Join(Names(), ", "))
}
